module endbox

go 1.24
