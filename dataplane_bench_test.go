package endbox

// Benchmarks for the sharded, pipelined server data plane. The headline
// comparison — monolithic (1-shard, the pre-dataplane single-lock table)
// vs. sharded at 1/8/64 clients — seeds BENCH_dataplane.json; the batched
// ingress benchmark mirrors BenchmarkBatchSend for the receive direction.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"endbox/internal/packet"
	"endbox/mbox"
)

// benchDeployment builds a deployment with n connected NOP clients.
func benchDeployment(b *testing.B, clients int, opts ...Option) (*Deployment, []*Client) {
	b.Helper()
	d, err := New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	cls := make([]*Client, clients)
	for i := range cls {
		cli, err := d.AddClient(context.Background(), fmt.Sprintf("bench-%d", i),
			ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP})
		if err != nil {
			b.Fatal(err)
		}
		cls[i] = cli
	}
	return d, cls
}

// BenchmarkDataPlaneThroughput measures the client->network path with many
// clients sending concurrently, comparing the monolithic session table
// (shards=1) against the sharded one. Each goroutine is pinned to one
// client, so the measured contention is the server's: session lookup,
// statistics and policy — exactly what the sharding attacks.
func BenchmarkDataPlaneThroughput(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		for _, cfg := range []struct {
			name   string
			shards int
		}{
			{"monolithic", 1},
			{"sharded", 16},
		} {
			b.Run(fmt.Sprintf("%s/clients=%d", cfg.name, clients), func(b *testing.B) {
				_, cls := benchDeployment(b, clients, WithShards(cfg.shards))
				pkt := testPacket(1500)
				var next atomic.Int64
				b.ReportAllocs()
				b.SetBytes(1500)
				b.SetParallelism(clients) // >= one goroutine per client even on 1 CPU
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					cli := cls[int(next.Add(1)-1)%clients]
					for pb.Next() {
						if err := cli.SendPacket(pkt); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkDataPlanePath is the acceptance comparison: the shipped data
// plane (sharded session table + batched ecalls) against the monolithic
// baseline (1-shard table, one ecall per packet) on hardware-mode clients,
// where every saved enclave transition is real CPU time. Both rows move
// the same bytes; MB/s is directly comparable.
func BenchmarkDataPlanePath(b *testing.B) {
	const batchSize = 32
	for _, clients := range []int{8, 64} {
		for _, cfg := range []struct {
			name      string
			shards    int
			batched   bool
			conntrack bool
		}{
			{"monolithic", 1, false, false},
			{"sharded+batched", 16, true, false},
			// The stateful variant pins that adding flow tracking to the
			// in-enclave pipeline does not add per-batch allocations to
			// the shipped data plane.
			{"sharded+batched+conntrack", 16, true, true},
		} {
			b.Run(fmt.Sprintf("%s/clients=%d", cfg.name, clients), func(b *testing.B) {
				d, err := New(WithShards(cfg.shards))
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				cls := make([]*Client, clients)
				for i := range cls {
					spec := ClientSpec{Mode: ModeHardware, BurnCPU: true, UseCase: UseCaseNOP}
					if cfg.conntrack {
						spec.Pipeline = mbox.Chain(mbox.ConnTrack(mbox.ConnTrackOptions{}))
					}
					cli, err := d.AddClient(context.Background(), fmt.Sprintf("hw-%d", i), spec)
					if err != nil {
						b.Fatal(err)
					}
					cls[i] = cli
				}
				batch := make([][]byte, batchSize)
				for i := range batch {
					batch[i] = testPacket(1500)
				}
				var next atomic.Int64
				b.ReportAllocs()
				b.SetBytes(batchSize * 1500)
				b.SetParallelism(clients)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					cli := cls[int(next.Add(1)-1)%clients]
					for pb.Next() {
						if cfg.batched {
							if _, err := cli.SendPackets(batch); err != nil {
								b.Error(err)
								return
							}
						} else {
							for _, pkt := range batch {
								if err := cli.SendPacket(pkt); err != nil {
									b.Error(err)
									return
								}
							}
						}
					}
				})
			})
		}
	}
}

// BenchmarkBatchIngress compares per-frame and batched frame handling on a
// hardware-mode client, where each saved enclave transition is real time —
// the ingress mirror of BenchmarkBatchSend.
func BenchmarkBatchIngress(b *testing.B) {
	const burst = 32
	for _, batched := range []bool{false, true} {
		name := "HandleFrame"
		if batched {
			name = "HandleFrames"
		}
		b.Run(name, func(b *testing.B) {
			ct := &captureTransport{Transport: NewInProcessTransport()}
			d, err := New(WithTransport(ct))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			cli, err := d.AddClient(context.Background(), "bench", ClientSpec{
				Mode:    ModeHardware,
				BurnCPU: true,
				UseCase: UseCaseNOP,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Capture a sealed burst once; replay protection is per-frame
			// nonce-window based, so re-opening the same frames each
			// iteration would be rejected — instead seal fresh bursts
			// inside the loop but keep the sealing cost out of the
			// measured path via StopTimer/StartTimer.
			ip := packet.NewUDP(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 8, 0, 2),
				80, 40000, []byte("ingress-burst-payload"))
			b.ReportAllocs()
			b.SetBytes(burst * int64(len(ip)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ct.mu.Lock()
				ct.capture = true
				ct.mu.Unlock()
				for j := 0; j < burst; j++ {
					if err := d.Server.VPN().SendTo("bench", ip, false); err != nil {
						b.Fatal(err)
					}
				}
				frames := ct.take()
				b.StartTimer()
				if batched {
					if n, err := cli.HandleFrames(frames); err != nil || n != burst {
						b.Fatalf("HandleFrames = %d, %v", n, err)
					}
				} else {
					for _, f := range frames {
						if err := cli.HandleFrame(f); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}
