package endbox

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"endbox/internal/config"
	"endbox/internal/packet"
	"endbox/internal/vpn"
	"endbox/mbox"
)

// flowCap is a custom middlebox element registered through the public
// mbox API: it forwards the first LIMIT packets and drops the rest — a
// minimal stateful function an application might plug into its enclaves.
type flowCap struct {
	mbox.Base
	limit uint64
	seen  atomic.Uint64
}

func (*flowCap) Class() string { return "FlowCap" }

func (e *flowCap) Configure(args []string, _ *mbox.Context) error {
	e.limit = 3
	for _, arg := range args {
		val, ok := strings.CutPrefix(arg, "LIMIT ")
		if !ok {
			return fmt.Errorf("FlowCap: unknown argument %q", arg)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return fmt.Errorf("FlowCap: bad LIMIT %q", val)
		}
		e.limit = n
	}
	return nil
}

func (*flowCap) InPorts() int  { return mbox.AnyPorts }
func (*flowCap) OutPorts() int { return 1 }

func (e *flowCap) Push(_ int, p *mbox.Packet) {
	if e.seen.Add(1) > e.limit {
		p.Drop(e.Name())
		return
	}
	e.Forward(0, p)
}

// TakeState keeps the count across hot-swaps.
func (e *flowCap) TakeState(old mbox.Element) {
	if prev, ok := old.(*flowCap); ok {
		e.seen.Store(prev.seen.Load())
	}
}

var registerFlowCapOnce sync.Once

func registerFlowCap(t *testing.T) {
	t.Helper()
	registerFlowCapOnce.Do(func() {
		if err := mbox.Register("FlowCap", func() mbox.Element { return &flowCap{} }); err != nil {
			t.Fatalf("Register(FlowCap): %v", err)
		}
	})
}

// TestCustomElementEndToEnd registers a custom element via the public
// mbox API and runs it inside client enclaves over both transports: the
// element's verdicts must reach the application (ErrDropped past the
// limit), the accepted packets must reach the managed network, and
// PipelineStats must attribute the drops to the element instance.
func TestCustomElementEndToEnd(t *testing.T) {
	registerFlowCap(t)

	run := func(t *testing.T, transport Transport) {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()

		var delivered atomic.Int64
		opts := []Option{WithObserver(ObserverFuncs{
			OnDelivered: func(string, []byte) { delivered.Add(1) },
		})}
		if transport != nil {
			opts = append(opts, WithTransport(transport))
		}
		d, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()

		cap := mbox.Custom("FlowCap", "LIMIT 3")
		cap.Name = "cap"
		cli, err := d.AddClient(ctx, "capped", ClientSpec{
			Mode:     ModeSimulation,
			Pipeline: mbox.Chain(cap),
		})
		if err != nil {
			t.Fatal(err)
		}

		pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 40000, 80, []byte("x"))
		for i := 0; i < 3; i++ {
			if err := cli.SendPacket(pkt); err != nil {
				t.Fatalf("packet %d within limit: %v", i, err)
			}
		}
		for i := 0; i < 2; i++ {
			if err := cli.SendPacket(pkt); !errors.Is(err, vpn.ErrDropped) {
				t.Fatalf("packet past limit: err = %v, want ErrDropped", err)
			}
		}

		// UDP delivery is asynchronous; wait for the accepted packets.
		deadline := time.Now().Add(5 * time.Second)
		for delivered.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := delivered.Load(); got != 3 {
			t.Errorf("delivered = %d, want 3", got)
		}

		stats, err := cli.PipelineStats()
		if err != nil {
			t.Fatal(err)
		}
		var capStats ElementStats
		for _, s := range stats {
			if s.Name == "cap" {
				capStats = s
			}
		}
		if capStats.Class != "FlowCap" || capStats.Packets != 5 || capStats.Drops != 2 {
			t.Errorf("cap stats = %+v, want Class FlowCap, 5 packets, 2 drops", capStats)
		}
	}

	t.Run("inprocess", func(t *testing.T) { run(t, nil) })
	t.Run("udp", func(t *testing.T) { run(t, NewUDPTransport("127.0.0.1:0")) })
}

// TestRolloutTargeted rolls a new pipeline out to a label-selected subset
// of clients: the targeted group hot-swaps, the rest of the fleet stays
// on its configuration, and both keep passing traffic.
func TestRolloutTargeted(t *testing.T) {
	ctx := context.Background()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	add := func(id, ring string) *Client {
		cli, err := d.AddClient(ctx, id, ClientSpec{
			Mode:     ModeSimulation,
			Pipeline: mbox.Stock(UseCaseNOP),
			Labels:   map[string]string{"ring": ring},
		})
		if err != nil {
			t.Fatalf("AddClient(%s): %v", id, err)
		}
		return cli
	}
	canary1 := add("canary-1", "canary")
	canary2 := add("canary-2", "canary")
	stable := add("stable-1", "stable")

	res, err := d.Rollout(ctx, Rollout{
		Version:      1,
		GraceSeconds: 60,
		Pipeline:     mbox.Chain(mbox.Firewall("drop dst host 203.0.113.9", "allow all")),
		RuleSets:     CommunityRuleSets(),
		Target:       Selector{Labels: map[string]string{"ring": "canary"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"canary-1", "canary-2"}; len(res.Clients) != 2 || res.Clients[0] != want[0] || res.Clients[1] != want[1] {
		t.Errorf("rollout clients = %v, want %v", res.Clients, want)
	}

	if v := canary1.AppliedVersion(); v != 1 {
		t.Errorf("canary-1 at v%d, want 1 (err: %v)", v, canary1.LastUpdateError())
	}
	if v := canary2.AppliedVersion(); v != 1 {
		t.Errorf("canary-2 at v%d, want 1 (err: %v)", v, canary2.LastUpdateError())
	}
	if v := stable.AppliedVersion(); v != 0 {
		t.Errorf("stable-1 hot-swapped to v%d, want 0 (not targeted)", v)
	}

	// The canaries enforce the new firewall; the stable client does not.
	blocked := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(203, 0, 113, 9), 40000, 80, []byte("x"))
	if err := canary1.SendPacket(blocked); !errors.Is(err, vpn.ErrDropped) {
		t.Errorf("canary firewall not active: %v", err)
	}
	if err := stable.SendPacket(blocked); err != nil {
		t.Errorf("stable client wrongly enforcing the canary pipeline: %v", err)
	}
	// Both versions pass the server's policy.
	ok := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 40000, 80, []byte("x"))
	if err := canary1.SendPacket(ok); err != nil {
		t.Errorf("targeted client blocked: %v", err)
	}
	if err := stable.SendPacket(ok); err != nil {
		t.Errorf("untargeted client blocked: %v", err)
	}

	// Promoting globally converges the rest of the fleet.
	if _, err := d.Rollout(ctx, Rollout{
		Version:      2,
		GraceSeconds: 60,
		Pipeline:     mbox.Stock(UseCaseFW),
		RuleSets:     CommunityRuleSets(),
	}); err != nil {
		t.Fatal(err)
	}
	for _, cli := range []*Client{canary1, canary2, stable} {
		if v := cli.AppliedVersion(); v != 2 {
			t.Errorf("after global rollout: at v%d, want 2 (err: %v)", v, cli.LastUpdateError())
		}
	}
}

// TestRolloutByID targets explicit client IDs and validates before
// publishing: a bad pipeline must fail typed, with nothing announced.
func TestRolloutByID(t *testing.T) {
	ctx := context.Background()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	a, err := d.AddClient(ctx, "a", ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AddClient(ctx, "b", ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := d.Rollout(ctx, Rollout{
		Version:  1,
		Pipeline: mbox.Raw("FromDevice -> Frobnicator -> ToDevice;"),
		Target:   Selector{IDs: []string{"a"}},
	}); !errors.Is(err, ErrBadPipeline) {
		t.Fatalf("bad rollout pipeline: err = %v, want ErrBadPipeline", err)
	}
	if v := a.AppliedVersion(); v != 0 {
		t.Fatalf("failed rollout still applied v%d", v)
	}

	if _, err := d.Rollout(ctx, Rollout{
		Version:      1,
		GraceSeconds: 60,
		Pipeline:     mbox.Stock(UseCaseFW),
		RuleSets:     CommunityRuleSets(),
		Target:       Selector{IDs: []string{"a"}},
	}); err != nil {
		t.Fatal(err)
	}
	if v := a.AppliedVersion(); v != 1 {
		t.Errorf("a at v%d, want 1 (err: %v)", v, a.LastUpdateError())
	}
	if v := b.AppliedVersion(); v != 0 {
		t.Errorf("b at v%d, want 0", v)
	}
}

// TestAddClientBadPipeline pins the typed validation at the API boundary:
// specs that select nothing, an unknown use case, or a configuration that
// cannot build must fail with ErrBadPipeline before any enclave exists.
func TestAddClientBadPipeline(t *testing.T) {
	ctx := context.Background()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for name, spec := range map[string]ClientSpec{
		"empty spec":       {Mode: ModeSimulation},
		"unknown use case": {Mode: ModeSimulation, UseCase: UseCase(99)},
		"bad click config": {Mode: ModeSimulation, ClickConfig: "FromDevice -> -> ToDevice;"},
		"unknown class":    {Mode: ModeSimulation, ClickConfig: "FromDevice -> Frobnicator -> ToDevice;"},
		"bad element args": {Mode: ModeSimulation, Pipeline: mbox.Chain(mbox.Firewall("frobnicate all"))},
		"unknown rule set": {Mode: ModeSimulation, Pipeline: mbox.Chain(mbox.IDS("no-such-set"))},
	} {
		if _, err := d.AddClient(ctx, "bad-"+name, spec); !errors.Is(err, ErrBadPipeline) {
			t.Errorf("%s: err = %v, want ErrBadPipeline", name, err)
		}
	}
	// The IDs must be reusable after the typed failures.
	if _, err := d.AddClient(ctx, "bad-empty spec", ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP}); err != nil {
		t.Errorf("ID not reusable after failed validation: %v", err)
	}
}

// TestStockPipelineFacadeParity proves each stock mbox pipeline compiles
// to exactly the legacy StandardConfig string for all five use cases —
// the contract that makes UseCase/StandardConfig safe deprecated shims.
func TestStockPipelineFacadeParity(t *testing.T) {
	rules := CommunityRuleSets()
	for _, uc := range []UseCase{UseCaseNOP, UseCaseLB, UseCaseFW, UseCaseIDPS, UseCaseDDoS} {
		cfg, err := mbox.Compile(mbox.Stock(uc), rules)
		if err != nil {
			t.Fatalf("Stock(%v): %v", uc, err)
		}
		if want := StandardConfig(uc); cfg != want {
			t.Errorf("Stock(%v) = %q, StandardConfig = %q", uc, cfg, want)
		}
	}
}

// swapProbe is the element the concurrent-registration test deploys.
type swapProbe struct {
	mbox.Base
}

func (*swapProbe) Class() string                           { return "SwapProbe" }
func (*swapProbe) Configure([]string, *mbox.Context) error { return nil }
func (*swapProbe) InPorts() int                            { return mbox.AnyPorts }
func (*swapProbe) OutPorts() int                           { return 1 }
func (e *swapProbe) Push(_ int, p *mbox.Packet)            { e.Forward(0, p) }

// TestConcurrentRegisterAndHotSwap registers element classes from
// concurrent goroutines while clients hot-swap to a pipeline using a
// registered element — the registry ownership model under -race.
func TestConcurrentRegisterAndHotSwap(t *testing.T) {
	ctx := context.Background()
	if err := mbox.Register("SwapProbe", func() mbox.Element { return &swapProbe{} }); err != nil &&
		!errors.Is(err, ErrBadPipeline) {
		t.Fatal(err)
	}

	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	clients := make([]*Client, 3)
	for i := range clients {
		cli, err := d.AddClient(ctx, fmt.Sprintf("swap-%d", i), ClientSpec{
			Mode: ModeSimulation, Pipeline: mbox.Stock(UseCaseNOP),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cli
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two goroutines race to register fresh classes (and collide with
	// each other on purpose: exactly one wins each name).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := mbox.Register(fmt.Sprintf("BgElem%d", i), func() mbox.Element { return &swapProbe{} })
				if err != nil && !errors.Is(err, ErrBadPipeline) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	// Meanwhile every client hot-swaps through pipelines using the
	// registered element.
	probe := mbox.Custom("SwapProbe")
	probe.Name = "probe"
	for v := uint64(1); v <= 5; v++ {
		if _, err := d.Rollout(ctx, Rollout{
			Version:      v,
			GraceSeconds: 300,
			Pipeline:     mbox.Chain(mbox.Count("c"), probe),
			RuleSets:     CommunityRuleSets(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("x"))
	for i, cli := range clients {
		if v := cli.AppliedVersion(); v != 5 {
			t.Errorf("client %d at v%d, want 5 (err: %v)", i, v, cli.LastUpdateError())
		}
		if err := cli.SendPacket(pkt); err != nil {
			t.Errorf("client %d traffic after swaps: %v", i, err)
		}
		stats, err := cli.PipelineStats()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, s := range stats {
			if s.Name == "probe" && s.Class == "SwapProbe" && s.Packets == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("client %d: probe element missing from stats: %+v", i, stats)
		}
	}
}

// TestBootFetchIgnoresTargetedVersions pins the boot-time contract: a
// "give me the current configuration" fetch (version 0) resolves to the
// latest GLOBAL version, not a canary version a targeted rollout pushed
// past it — otherwise every untargeted late joiner would boot stale.
func TestBootFetchIgnoresTargetedVersions(t *testing.T) {
	ctx := context.Background()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.AddClient(ctx, "canary", ClientSpec{
		Mode: ModeSimulation, UseCase: UseCaseNOP,
		Labels: map[string]string{"ring": "canary"},
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := d.Rollout(ctx, Rollout{
		Version: 1, GraceSeconds: 60,
		Pipeline: mbox.Stock(UseCaseNOP), RuleSets: CommunityRuleSets(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Rollout(ctx, Rollout{
		Version: 2, GraceSeconds: 60,
		Pipeline: mbox.Stock(UseCaseFW), RuleSets: CommunityRuleSets(),
		Target: Selector{Labels: map[string]string{"ring": "canary"}},
	}); err != nil {
		t.Fatal(err)
	}

	blob, err := d.FetchConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := config.Open(blob, d.CA.PublicKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Version != 1 {
		t.Errorf("boot fetch resolved to v%d, want the global v1 (v2 is canary-only)", u.Version)
	}
	// The targeted version stays explicitly fetchable.
	if _, err := d.FetchConfig(2); err != nil {
		t.Errorf("targeted version not fetchable: %v", err)
	}
}

// TestKeepaliveReannouncesTarget simulates a targeted client that missed
// the rollout's one-shot announcement (lost datagram, reconnect): the
// periodic keepalive must re-announce the client's required version —
// its targeted one, not the global current — so it converges instead of
// being rejected forever once the group's grace expires.
func TestKeepaliveReannouncesTarget(t *testing.T) {
	ctx := context.Background()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli, err := d.AddClient(ctx, "missed", ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP})
	if err != nil {
		t.Fatal(err)
	}

	// Publish the targeted update and arm the policy WITHOUT the rollout
	// ping reaching the client — the "lost announcement" state.
	u := &Update{
		Version: 1, GraceSeconds: 60,
		ClickConfig: StandardConfig(UseCaseFW), RuleSets: CommunityRuleSets(),
	}
	blob, err := config.Seal(u, d.CA.SignConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Server.Configs().Publish(1, blob); err != nil {
		t.Fatal(err)
	}
	if err := d.Server.VPN().Policy().AnnounceTarget([]string{"missed"}, 1, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if v := cli.AppliedVersion(); v != 0 {
		t.Fatalf("client applied v%d before any announcement", v)
	}

	// The next keepalive must carry the client's targeted version.
	if err := d.Server.BroadcastPing(); err != nil {
		t.Fatal(err)
	}
	if v := cli.AppliedVersion(); v != 1 {
		t.Errorf("keepalive did not re-announce the target: at v%d, want 1 (err: %v)", v, cli.LastUpdateError())
	}
}
