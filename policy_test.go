package endbox

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"endbox/mbox"
)

// policyTransports runs a subtest over the in-process transport and real
// UDP sockets: attested-identity refusals must carry their typed errors
// across both.
func policyTransports(t *testing.T, fn func(t *testing.T, opts []Option)) {
	t.Run("inprocess", func(t *testing.T) { fn(t, nil) })
	t.Run("udp", func(t *testing.T) {
		fn(t, []Option{WithTransport(NewUDPTransport("127.0.0.1:0"))})
	})
}

// pollFor polls cond until it holds or the budget expires.
func pollFor(budget time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(budget)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMeasurementDeniedOverTransports checks that a client whose build was
// never allowlisted is refused at enrolment with ErrMeasurementDenied —
// and that the sentinel survives errors.Is on both transports (over UDP
// the error crosses the wire as text and is re-typed by the link).
func TestMeasurementDeniedOverTransports(t *testing.T) {
	policyTransports(t, func(t *testing.T, opts []Option) {
		d, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()

		spec := ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP, BuildVersion: "9.9.9-rogue"}
		if _, err := d.AddClient(context.Background(), "rogue", spec); !errors.Is(err, ErrMeasurementDenied) {
			t.Fatalf("unapproved build admitted: err = %v, want ErrMeasurementDenied", err)
		}
	})
}

// TestFleetVersioningE2E drives the whole attested-identity policy flow
// through the facade on both transports: two registered builds, a
// measurement-sealed canary that updates only the new build while the old
// build keeps its last-known-good configuration, then live revocation —
// sessions evicted with observer events, re-admission and resume refused
// with typed errors.
func TestFleetVersioningE2E(t *testing.T) {
	policyTransports(t, func(t *testing.T, opts []Option) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		budget := 5 * time.Second

		var mu sync.Mutex
		var revokedSessions []string
		pol := NewPolicy()
		opts = append(opts,
			WithPolicy(pol),
			WithSealToMeasurement(),
			WithObserver(ObserverFuncs{
				OnRevoked: func(clientID, build string) {
					mu.Lock()
					revokedSessions = append(revokedSessions, clientID+"@"+build)
					mu.Unlock()
				},
			}),
		)
		d, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()

		if _, err := d.RegisterBuild("v1", ""); err != nil {
			t.Fatal(err)
		}
		v2meas, err := d.RegisterBuild("v2", "2.0.0")
		if err != nil {
			t.Fatal(err)
		}

		oldSpec := ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP}
		newSpec := oldSpec
		newSpec.BuildVersion = "2.0.0"
		cliOld, err := d.AddClient(ctx, "e2e-v1", oldSpec)
		if err != nil {
			t.Fatal(err)
		}
		cliNew, err := d.AddClient(ctx, "e2e-v2", newSpec)
		if err != nil {
			t.Fatal(err)
		}

		// Fleet-wide baseline both builds apply: the canary's rollback
		// point and the LKG the old build must keep.
		if _, err := d.Rollout(ctx, Rollout{Version: 1, GraceSeconds: 60, Pipeline: mbox.Chain(mbox.Firewall("allow all"))}); err != nil {
			t.Fatal(err)
		}
		if !pollFor(budget, func() bool {
			return cliOld.AppliedVersion() == 1 && cliNew.AppliedVersion() == 1
		}) {
			t.Fatalf("baseline never applied: v1=%d v2=%d", cliOld.AppliedVersion(), cliNew.AppliedVersion())
		}

		// Measurement-sealed canary to exactly the v2 build. Promotion
		// announces version 2 fleet-wide, but the blob is encrypted under
		// v2's per-measurement key: the v1 client cannot open it.
		res, err := d.RolloutCanary(ctx, CanaryRollout{
			Rollout: Rollout{
				Version:      2,
				GraceSeconds: 60,
				Pipeline:     mbox.Chain(mbox.Firewall("allow all")),
				Target:       Selector{Measurements: []Measurement{v2meas}},
			},
			Fraction: 1,
			Deadline: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Promoted || len(res.Canary) != 1 || res.Canary[0] != "e2e-v2" {
			t.Fatalf("canary result %+v, want promoted cohort [e2e-v2]", res)
		}
		if !pollFor(budget, func() bool { return cliNew.AppliedVersion() == 2 }) {
			t.Fatalf("v2 client never converged to the canary version")
		}
		if v := cliOld.AppliedVersion(); v != 1 {
			t.Fatalf("sealed update leaked to the v1 client (applied v%d, want LKG v1)", v)
		}

		// Live revocation: the v1 session is evicted (observer fires), the
		// v2 session survives, and v1 can neither re-enrol nor resume.
		state, err := d.ResumeState("e2e-v1")
		if err != nil {
			t.Fatal(err)
		}
		if err := d.RevokeBuild("v1"); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		revoked := append([]string{}, revokedSessions...)
		mu.Unlock()
		if len(revoked) != 1 || revoked[0] != "e2e-v1@v1" {
			t.Fatalf("revocation events %v, want [e2e-v1@v1]", revoked)
		}
		st := d.LifecycleStats()
		if st.Sessions.Revoked != 1 {
			t.Fatalf("Sessions.Revoked = %d, want 1", st.Sessions.Revoked)
		}
		if st.Sessions.ByBuild["v2"] != 1 {
			t.Fatalf("ByBuild = %v, want v2:1", st.Sessions.ByBuild)
		}
		if _, ok := st.Sessions.ByBuild["v1"]; ok {
			t.Fatalf("v1 sessions survived revocation: %v", st.Sessions.ByBuild)
		}
		if _, err := d.AddClient(ctx, "e2e-v1-late", oldSpec); !errors.Is(err, ErrMeasurementDenied) {
			t.Fatalf("revoked build re-admitted: err = %v, want ErrMeasurementDenied", err)
		}
		if _, err := d.ResumeClient(ctx, state, oldSpec); err == nil ||
			!(errors.Is(err, ErrBuildRevoked) || errors.Is(err, ErrMeasurementDenied)) {
			t.Fatalf("revoked build resumed: err = %v, want ErrBuildRevoked", err)
		}

		// The surviving build still takes updates after the revocation.
		if _, err := d.Rollout(ctx, Rollout{
			Version:      3,
			GraceSeconds: 60,
			Pipeline:     mbox.Chain(mbox.Firewall("allow all")),
			Target:       Selector{Measurements: []Measurement{v2meas}},
		}); err != nil {
			t.Fatal(err)
		}
		if !pollFor(budget, func() bool { return cliNew.AppliedVersion() == 3 }) {
			t.Fatalf("v2 client stuck on v%d after revocation", cliNew.AppliedVersion())
		}
	})
}
