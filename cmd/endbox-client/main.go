// Command endbox-client is the EndBox client over real UDP: it creates the
// (simulated) SGX enclave, registers its platform, runs remote attestation
// against the server's CA, fetches the current middlebox configuration,
// connects the VPN, and then sends ICMP pings through the tunnel, printing
// round-trip times. Configuration updates announced by the server are
// fetched and hot-swapped automatically.
//
// It is a thin wrapper around internal/udptransport's client link — the
// same code a Deployment uses when configured with the UDP transport.
//
//	endbox-client -server 127.0.0.1:11940 -id laptop-1 -pings 10
//
// Pair it with cmd/endbox-server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/config"
	"endbox/internal/core"
	"endbox/internal/netsim"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/udptransport"
	"endbox/internal/vpn"
	"endbox/mbox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		server      = flag.String("server", "127.0.0.1:11940", "endbox-server UDP address")
		id          = flag.String("id", "client-1", "client identifier")
		pipeline    = flag.String("pipeline", "", "boot with this raw Click pipeline instead of the fetched configuration (validated locally; server updates still apply)")
		pings       = flag.Int("pings", 10, "tunnelled pings to send")
		period      = flag.Duration("interval", 500*time.Millisecond, "ping interval")
		timeout     = flag.Duration("timeout", 30*time.Second, "attestation/handshake deadline")
		arqTimeout  = flag.Duration("arq-timeout", 200*time.Millisecond, "initial control-path retransmit timeout")
		arqRetries  = flag.Int("arq-retries", 5, "control-path retransmit budget per transfer")
		arqOff      = flag.Bool("arq-off", false, "disable the control-path ARQ layer (fire-and-forget)")
		lossDrop    = flag.Float64("loss", 0, "simulated control-path drop probability [0,1] (demo/testing)")
		lossDup     = flag.Float64("loss-dup", 0, "simulated duplicate probability [0,1]")
		lossReorder = flag.Float64("loss-reorder", 0, "simulated reorder probability [0,1]")
		lossSeed    = flag.Int64("loss-seed", 2, "seed for the deterministic loss model")
		flowCap     = flag.Int("flow-capacity", 0, "bound on concurrently tracked flows in the enclave flow table (0 = default 16384)")
		flowTTL     = flag.Duration("flow-ttl", 0, "flow idle timeout before expiry (0 = default 2m)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	dialOpts := []udptransport.DialOption{
		udptransport.LinkRetransmit(udptransport.RetransmitConfig{
			Timeout:    *arqTimeout,
			MaxRetries: *arqRetries,
			Disable:    *arqOff,
		}),
	}
	if *lossDrop > 0 || *lossDup > 0 || *lossReorder > 0 {
		faults := netsim.NewFaults(*lossSeed, *lossDrop, *lossDup, *lossReorder)
		dialOpts = append(dialOpts, udptransport.LinkSendFilter(faults.Filter))
	}
	link, err := udptransport.Dial(ctx, *server, dialOpts...)
	if err != nil {
		return err
	}
	defer link.Close()

	// Platform setup: CPU, quoting enclave, IAS registration (which also
	// returns the CA public key that real deployments bake into the
	// enclave image at build time).
	cpu := sgx.NewCPU("machine-" + *id)
	qe, err := attest.NewQuotingEnclave(cpu, "platform-"+*id)
	if err != nil {
		return err
	}
	caPub, err := link.Register(ctx, qe.PlatformID(), qe.VerificationKey())
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	fmt.Println("platform registered; CA key received")

	// Fetch the current middlebox configuration before connecting (paper
	// §III-E: the config server is publicly readable so clients can always
	// obtain up-to-date configurations before connecting).
	blob, err := link.FetchConfig(ctx, 0)
	if err != nil {
		return fmt.Errorf("initial configuration: %w", err)
	}
	initial, err := config.Open(blob, caPub, nil)
	if err != nil {
		return fmt.Errorf("initial configuration: %w", err)
	}
	fmt.Printf("boot configuration v%d fetched (%d rule sets)\n", initial.Version, len(initial.RuleSets))

	// An explicit -pipeline overrides the fetched boot configuration; it
	// is compiled and validated here (against the fetched rule sets) so a
	// typo fails before the enclave is even created.
	bootCfg := initial.ClickConfig
	if *pipeline != "" {
		bootCfg, err = mbox.Compile(mbox.Raw(*pipeline), initial.RuleSets)
		if err != nil {
			return fmt.Errorf("-pipeline: %w", err)
		}
		fmt.Println("boot configuration overridden by -pipeline")
	}

	// RTT bookkeeping for the tunnelled pings. Replies arrive on the
	// link's dispatch goroutine, so the state is mutex-guarded.
	var (
		mu       sync.Mutex
		sentAt   = make(map[uint16]time.Time)
		received = 0
	)
	done := make(chan struct{})

	cli, err := core.NewClient(core.ClientOptions{
		ID:            *id,
		CPU:           cpu,
		Mode:          sgx.ModeHardware,
		CAPub:         caPub,
		QE:            qe,
		Enroll:        func(q attest.Quote) (*attest.Provision, error) { return link.Enroll(ctx, q) },
		ClickConfig:   bootCfg,
		RuleSets:      initial.RuleSets,
		ConfigVersion: initial.Version,
		BatchEcalls:   true,
		FlowCapacity:  *flowCap,
		FlowTTL:       *flowTTL,
		FetchConfig:   func(v uint64) ([]byte, error) { return link.FetchConfig(context.Background(), v) },
		Send:          link.SendFrame,
		Deliver: func(ip []byte) {
			var p packet.IPv4
			if p.Parse(ip) != nil || p.Protocol != packet.ProtoICMP {
				return
			}
			icmp, err := packet.ParseICMP(p.Payload)
			if err != nil || icmp.Type != packet.ICMPEchoReply {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if t0, ok := sentAt[icmp.Seq]; ok {
				fmt.Printf("ping seq=%d rtt=%v (through the enclave, both directions)\n",
					icmp.Seq, time.Since(t0).Round(10*time.Microsecond))
				delete(sentAt, icmp.Seq)
				received++
				if received == *pings {
					close(done)
				}
			}
		},
	})
	if err != nil {
		return err
	}
	defer cli.Close()
	fmt.Println("enclave created, attested and provisioned")

	// Pump inbound frames into the client, then shake hands over UDP.
	link.SetDeliver(func(frame []byte) error {
		if err := cli.HandleFrame(frame); err != nil {
			log.Printf("inbound frame: %v", err)
		}
		return nil
	})
	err = cli.Connect(ctx, func(hello *vpn.ClientHello) (*vpn.ServerHello, error) {
		return link.Hello(ctx, hello)
	})
	if err != nil {
		return fmt.Errorf("VPN handshake: %w", err)
	}
	fmt.Println("VPN connected")

	// Tunnelled pings to a host "in the managed network" (the demo server
	// echoes them).
	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(10, 0, 0, 1)
	lastVersion := cli.AppliedVersion()
	for seq := uint16(1); int(seq) <= *pings; seq++ {
		mu.Lock()
		sentAt[seq] = time.Now()
		mu.Unlock()
		ping := packet.NewICMPEcho(src, dst, packet.ICMPEchoRequest, 7, seq, []byte("endbox-demo"))
		if err := cli.SendPacket(ping); err != nil {
			log.Printf("ping seq=%d: %v", seq, err)
		}
		if err := cli.SendPing(); err != nil { // keepalive with config version
			log.Printf("keepalive: %v", err)
		}
		if v := cli.AppliedVersion(); v != lastVersion {
			fmt.Printf("configuration hot-swapped to v%d\n", v)
			lastVersion = v
		}
		time.Sleep(*period)
	}

	select {
	case <-done:
	case <-time.After(3 * time.Second):
	}
	mu.Lock()
	got := received
	mu.Unlock()
	fmt.Printf("done: %d/%d pings answered, configuration v%d\n", got, *pings, cli.AppliedVersion())
	if st := link.ARQStats(); st.TransfersSent > 0 {
		fmt.Printf("control-path ARQ: %d transfers sent, %d segments, %d retransmits (%d fast), %d duplicate segments absorbed\n",
			st.TransfersSent, st.SegmentsSent, st.Retransmits+st.FastRetransmit, st.FastRetransmit, st.DupSegments)
	}
	return nil
}
