// Command endbox-client is the EndBox client over real UDP: it creates the
// (simulated) SGX enclave, registers its platform, runs remote attestation
// against the server's CA, fetches the current middlebox configuration,
// connects the VPN, and then sends ICMP pings through the tunnel, printing
// round-trip times. Configuration updates announced by the server are
// fetched and hot-swapped automatically.
//
// It is a thin wrapper around internal/udptransport's client link — the
// same code a Deployment uses when configured with the UDP transport.
//
//	endbox-client -server 127.0.0.1:11940 -id laptop-1 -pings 10
//
// Pair it with cmd/endbox-server.
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/config"
	"endbox/internal/core"
	"endbox/internal/netsim"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/udptransport"
	"endbox/internal/vpn"
	"endbox/mbox"
)

// resumeFile is the on-disk resume state (-resume-state): everything a
// restarted client process needs to re-establish its session in one round
// trip. The sealed blobs only unseal on the same (simulated) CPU, and the
// ticket only opens under the server's in-memory ticket key, so the file
// is not a credential on its own.
type resumeFile struct {
	ClientID       string            `json:"client_id"`
	CAPub          ed25519.PublicKey `json:"ca_pub"`
	SealedIdentity []byte            `json:"sealed_identity"`
	Secret         []byte            `json:"secret"`
	Ticket         []byte            `json:"ticket"`
	Version        uint64            `json:"version"`
}

func loadResumeState(path string) (*resumeFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st resumeFile
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, err
	}
	if len(st.Ticket) == 0 || len(st.Secret) == 0 || len(st.SealedIdentity) == 0 || len(st.CAPub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("incomplete resume state")
	}
	return &st, nil
}

func saveResumeState(path, id string, caPub ed25519.PublicKey, cli *core.Client) error {
	secret, err := cli.ResumeSecret()
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(resumeFile{
		ClientID:       id,
		CAPub:          caPub,
		SealedIdentity: cli.SealedIdentity(),
		Secret:         secret,
		Ticket:         cli.Ticket(),
		Version:        cli.AppliedVersion(),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o600)
}

// loadLKG reads a persisted last-known-good version (-lkg-state); 0 when
// the file is absent or unreadable — the client then simply has no local
// revert point until its first clean version change.
func loadLKG(path string) uint64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("lkg state %s unusable (%v); starting without a revert point", path, err)
		}
		return 0
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		log.Printf("lkg state %s unusable (%v); starting without a revert point", path, err)
		return 0
	}
	return v
}

func saveLKG(path string, v uint64) {
	if v == 0 {
		return
	}
	if err := os.WriteFile(path, []byte(strconv.FormatUint(v, 10)+"\n"), 0o600); err != nil {
		log.Printf("lkg state not saved: %v", err)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		server      = flag.String("server", "127.0.0.1:11940", "endbox-server UDP address")
		id          = flag.String("id", "client-1", "client identifier")
		build       = flag.String("build", "", "client enclave build version: participates in the measurement, so the server's -allow-builds/-revoke policy sees this client as that build (empty = the default build)")
		pipeline    = flag.String("pipeline", "", "boot with this raw Click pipeline instead of the fetched configuration (validated locally; server updates still apply)")
		pings       = flag.Int("pings", 10, "tunnelled pings to send")
		period      = flag.Duration("interval", 500*time.Millisecond, "ping interval")
		timeout     = flag.Duration("timeout", 30*time.Second, "attestation/handshake deadline")
		arqTimeout  = flag.Duration("arq-timeout", 200*time.Millisecond, "initial control-path retransmit timeout")
		arqRetries  = flag.Int("arq-retries", 5, "control-path retransmit budget per transfer")
		arqOff      = flag.Bool("arq-off", false, "disable the control-path ARQ layer (fire-and-forget)")
		lossDrop    = flag.Float64("loss", 0, "simulated control-path drop probability [0,1] (demo/testing)")
		lossDup     = flag.Float64("loss-dup", 0, "simulated duplicate probability [0,1]")
		lossReorder = flag.Float64("loss-reorder", 0, "simulated reorder probability [0,1]")
		lossSeed    = flag.Int64("loss-seed", 2, "seed for the deterministic loss model")
		flowCap     = flag.Int("flow-capacity", 0, "bound on concurrently tracked flows in the enclave flow table (0 = default 16384)")
		flowTTL     = flag.Duration("flow-ttl", 0, "flow idle timeout before expiry (0 = default 2m)")
		flood       = flag.Int("flood", 0, "before pinging, push this many spoofed SYN-flood packets through the tunnel — a self-inflicted DDoS that exercises the enclave's ConnTrack/FlowRateLimit pipeline (pair with endbox-server -usecase ddos)")
		resumePath  = flag.String("resume-state", "", "resume-state file: written after connecting; when present and valid, a fast resume (one round trip, no attestation) replaces the full handshake")
		lkgPath     = flag.String("lkg-state", "", "last-known-good state file: persists the last configuration version that ran cleanly, so a restarted client can self-revert to it if a freshly applied configuration trips quarantine")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	dialOpts := []udptransport.DialOption{
		udptransport.LinkRetransmit(udptransport.RetransmitConfig{
			Timeout:    *arqTimeout,
			MaxRetries: *arqRetries,
			Disable:    *arqOff,
		}),
	}
	if *lossDrop > 0 || *lossDup > 0 || *lossReorder > 0 {
		faults := netsim.NewFaults(*lossSeed, *lossDrop, *lossDup, *lossReorder)
		dialOpts = append(dialOpts, udptransport.LinkSendFilter(faults.Filter))
	}
	link, err := udptransport.Dial(ctx, *server, dialOpts...)
	if err != nil {
		return err
	}
	defer link.Close()

	// A prior run's resume state lets this one skip platform registration,
	// attestation and the full handshake: one MsgResume round trip instead
	// (the state file holds the sealed session secret, the resumption
	// ticket and the sealed enclave identity — all useless off this CPU).
	var state *resumeFile
	if *resumePath != "" {
		st, err := loadResumeState(*resumePath)
		switch {
		case err == nil && st.ClientID == *id:
			state = st
		case err == nil:
			log.Printf("resume state %s belongs to %q, not %q; ignoring", *resumePath, st.ClientID, *id)
		case !errors.Is(err, os.ErrNotExist):
			log.Printf("resume state %s unusable (%v); falling back to full attestation", *resumePath, err)
		}
	}

	// A persisted last-known-good version gives the fresh process a local
	// revert point: if the configuration it applies next trips quarantine,
	// it can fall back without waiting for the server.
	var lkg uint64
	if *lkgPath != "" {
		if lkg = loadLKG(*lkgPath); lkg != 0 {
			fmt.Printf("last-known-good v%d loaded from %s\n", lkg, *lkgPath)
		}
	}

	cpu := sgx.NewCPU("machine-" + *id)

	// RTT bookkeeping for the tunnelled pings. Replies arrive on the
	// link's dispatch goroutine, so the state is mutex-guarded.
	var (
		mu       sync.Mutex
		sentAt   = make(map[uint16]time.Time)
		received = 0
	)
	done := make(chan struct{})
	deliver := func(ip []byte) {
		var p packet.IPv4
		if p.Parse(ip) != nil || p.Protocol != packet.ProtoICMP {
			return
		}
		icmp, err := packet.ParseICMP(p.Payload)
		if err != nil || icmp.Type != packet.ICMPEchoReply {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if t0, ok := sentAt[icmp.Seq]; ok {
			fmt.Printf("ping seq=%d rtt=%v (through the enclave, both directions)\n",
				icmp.Seq, time.Since(t0).Round(10*time.Microsecond))
			delete(sentAt, icmp.Seq)
			received++
			if received == *pings {
				close(done)
			}
		}
	}

	var caPub ed25519.PublicKey
	establish := func(st *resumeFile) (*core.Client, error) {
		var qe *attest.QuotingEnclave
		if st != nil {
			caPub = st.CAPub
			fmt.Println("resume state loaded; skipping platform registration and attestation")
		} else {
			// Platform setup: CPU, quoting enclave, IAS registration
			// (which also returns the CA public key that real deployments
			// bake into the enclave image at build time).
			var err error
			qe, err = attest.NewQuotingEnclave(cpu, "platform-"+*id)
			if err != nil {
				return nil, err
			}
			caPub, err = link.Register(ctx, qe.PlatformID(), qe.VerificationKey())
			if err != nil {
				return nil, fmt.Errorf("register: %w", err)
			}
			fmt.Println("platform registered; CA key received")
		}

		// Fetch the current middlebox configuration before connecting
		// (paper §III-E: the config server is publicly readable so clients
		// can always obtain up-to-date configurations before connecting).
		blob, err := link.FetchConfig(ctx, 0)
		if err != nil {
			return nil, fmt.Errorf("initial configuration: %w", err)
		}
		initial, err := config.Open(blob, caPub, nil)
		if err != nil {
			return nil, fmt.Errorf("initial configuration: %w", err)
		}
		fmt.Printf("boot configuration v%d fetched (%d rule sets)\n", initial.Version, len(initial.RuleSets))

		// An explicit -pipeline overrides the fetched boot configuration;
		// it is compiled and validated here (against the fetched rule sets)
		// so a typo fails before the enclave is even created.
		bootCfg := initial.ClickConfig
		if *pipeline != "" {
			bootCfg, err = mbox.Compile(mbox.Raw(*pipeline), initial.RuleSets)
			if err != nil {
				return nil, fmt.Errorf("-pipeline: %w", err)
			}
			fmt.Println("boot configuration overridden by -pipeline")
		}

		copts := core.ClientOptions{
			ID:            *id,
			BuildVersion:  *build,
			CPU:           cpu,
			Mode:          sgx.ModeHardware,
			CAPub:         caPub,
			ClickConfig:   bootCfg,
			RuleSets:      initial.RuleSets,
			ConfigVersion: initial.Version,
			BatchEcalls:   true,
			FlowCapacity:  *flowCap,
			FlowTTL:       *flowTTL,
			FailurePolicy: click.FailurePolicy{Contain: true},
			LKGVersion:    lkg,
			OnElementFault: func(f click.ElementFault) {
				if f.Quarantined {
					log.Printf("element %s quarantined after repeated panics; self-reverting to last-known-good", f.Element)
				} else {
					log.Printf("element %s fault contained: %v", f.Element, f.Err)
				}
			},
			OnUpdateFailed: func(version uint64, err error) {
				log.Printf("configuration v%d rejected: %v (server notified)", version, err)
			},
			FetchConfig: func(v uint64) ([]byte, error) { return link.FetchConfig(context.Background(), v) },
			Send:        link.SendFrame,
			SendControl: link.SendControlFrame,
			Deliver:     deliver,
		}
		if st != nil {
			copts.SealedIdentity = st.SealedIdentity
		} else {
			copts.QE = qe
			copts.Enroll = func(q attest.Quote) (*attest.Provision, error) { return link.Enroll(ctx, q) }
		}
		cli, err := core.NewClient(copts)
		if err != nil {
			return nil, err
		}

		// Pump inbound frames into the client, then establish the session.
		link.SetDeliver(func(frame []byte) error {
			if err := cli.HandleFrame(frame); err != nil {
				log.Printf("inbound frame: %v", err)
			}
			return nil
		})
		if st != nil {
			err = cli.Resume(ctx, st.Secret, st.Ticket, func(r *vpn.ResumeRequest) (*vpn.ResumeReply, error) {
				return link.Resume(ctx, r)
			})
			if err != nil {
				cli.Close()
				return nil, fmt.Errorf("fast resume: %w", err)
			}
			fmt.Println("VPN resumed (no attestation, no key exchange)")
			return cli, nil
		}
		fmt.Println("enclave created, attested and provisioned")
		err = cli.Connect(ctx, func(hello *vpn.ClientHello) (*vpn.ServerHello, error) {
			return link.Hello(ctx, hello)
		})
		if err != nil {
			cli.Close()
			return nil, fmt.Errorf("VPN handshake: %w", err)
		}
		fmt.Println("VPN connected")
		return cli, nil
	}

	cli, err := establish(state)
	if err != nil && state != nil {
		// A stale ticket (server restart, eviction past the ticket TTL)
		// is recoverable: discard the state and attest from scratch.
		log.Printf("%v; falling back to full attestation", err)
		os.Remove(*resumePath)
		cli, err = establish(nil)
	}
	if err != nil {
		return err
	}
	defer cli.Close()

	if *resumePath != "" {
		if err := saveResumeState(*resumePath, *id, caPub, cli); err != nil {
			log.Printf("resume state not saved: %v", err)
		} else {
			fmt.Printf("resume state saved to %s\n", *resumePath)
		}
	}

	// Optional self-inflicted DDoS: spoofed SYNs from all over 100.64/10
	// pushed through the tunnel. The client-side middlebox pipeline sees
	// them before the wire does, so with a ddos pipeline most are dropped
	// or rate-limited inside the enclave — the flow-table counters printed
	// afterwards show the table staying bounded while it happens.
	if *flood > 0 {
		victim := packet.AddrFrom(10, 99, 0, 1)
		gen := netsim.NewSYNFlood(42, victim, 443)
		var floodDropped int
		for i := 0; i < *flood; i++ {
			if err := cli.SendPacket(gen.Next()); err != nil {
				if errors.Is(err, vpn.ErrDropped) {
					floodDropped++
					continue
				}
				return fmt.Errorf("flood packet %d: %w", i, err)
			}
		}
		fmt.Printf("flood: %d spoofed SYNs sent, %d dropped by the enclave pipeline\n", *flood, floodDropped)
		if fs, err := cli.FlowStats(); err == nil {
			fmt.Printf("flood: flow table %d/%d active, %d evicted, %d expired\n",
				fs.Active, fs.Capacity, fs.Evicted, fs.Expired)
		}
	}

	// Tunnelled pings to a host "in the managed network" (the demo server
	// echoes them).
	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(10, 0, 0, 1)
	lastVersion := cli.AppliedVersion()
	for seq := uint16(1); int(seq) <= *pings; seq++ {
		mu.Lock()
		sentAt[seq] = time.Now()
		mu.Unlock()
		ping := packet.NewICMPEcho(src, dst, packet.ICMPEchoRequest, 7, seq, []byte("endbox-demo"))
		if err := cli.SendPacket(ping); err != nil {
			log.Printf("ping seq=%d: %v", seq, err)
		}
		if err := cli.SendPing(); err != nil { // keepalive with config version
			log.Printf("keepalive: %v", err)
		}
		if v := cli.AppliedVersion(); v != lastVersion {
			fmt.Printf("configuration hot-swapped to v%d\n", v)
			lastVersion = v
			if *lkgPath != "" {
				saveLKG(*lkgPath, cli.LKGVersion())
			}
		}
		time.Sleep(*period)
	}

	select {
	case <-done:
	case <-time.After(3 * time.Second):
	}
	mu.Lock()
	got := received
	mu.Unlock()
	fmt.Printf("done: %d/%d pings answered, configuration v%d\n", got, *pings, cli.AppliedVersion())
	if *lkgPath != "" {
		saveLKG(*lkgPath, cli.LKGVersion())
	}
	if st := link.ARQStats(); st.TransfersSent > 0 {
		fmt.Printf("control-path ARQ: %d transfers sent, %d segments, %d retransmits (%d fast), %d duplicate segments absorbed\n",
			st.TransfersSent, st.SegmentsSent, st.Retransmits+st.FastRetransmit, st.FastRetransmit, st.DupSegments)
	}
	return nil
}
