// Command endbox-client is the EndBox client over real UDP: it creates the
// (simulated) SGX enclave, registers its platform, runs remote attestation
// against the server's CA, fetches the current middlebox configuration,
// connects the VPN, and then sends ICMP pings through the tunnel, printing
// round-trip times. Configuration updates announced by the server are
// fetched and hot-swapped automatically.
//
//	endbox-client -server 127.0.0.1:11940 -id laptop-1 -pings 10
//
// Pair it with cmd/endbox-server.
package main

import (
	"crypto/ed25519"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"endbox/internal/attest"
	"endbox/internal/config"
	"endbox/internal/core"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/udptransport"
	"endbox/internal/vpn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// link is the client's UDP endpoint: a request/response helper plus an
// async dispatch loop for pushed data frames.
type link struct {
	conn    *net.UDPConn
	control chan []byte // control responses (type+body)
	frames  chan []byte // pushed data frames
}

func dial(server string) (*link, error) {
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	l := &link{
		conn:    conn,
		control: make(chan []byte, 4),
		frames:  make(chan []byte, 256),
	}
	go l.readLoop()
	return l, nil
}

func (l *link) readLoop() {
	buf := make([]byte, udptransport.MaxDatagram)
	for {
		n, err := l.conn.Read(buf)
		if err != nil {
			close(l.frames)
			return
		}
		msg := append([]byte(nil), buf[:n]...)
		msgType, body, err := udptransport.Decode(msg)
		if err != nil {
			continue
		}
		if msgType == udptransport.MsgFrame {
			select {
			case l.frames <- body:
			default: // shed on overload like a real NIC queue
			}
			continue
		}
		select {
		case l.control <- msg:
		default:
		}
	}
}

// request performs one control round trip with retries.
func (l *link) request(datagram []byte) (byte, []byte, error) {
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := l.conn.Write(datagram); err != nil {
			return 0, nil, err
		}
		select {
		case resp := <-l.control:
			msgType, body, err := udptransport.Decode(resp)
			if err != nil {
				return 0, nil, err
			}
			if msgType == udptransport.MsgError {
				return 0, nil, fmt.Errorf("server: %s", body)
			}
			return msgType, body, nil
		case <-time.After(2 * time.Second):
		}
	}
	return 0, nil, fmt.Errorf("no response from server")
}

func run() error {
	var (
		server = flag.String("server", "127.0.0.1:11940", "endbox-server UDP address")
		id     = flag.String("id", "client-1", "client identifier")
		pings  = flag.Int("pings", 10, "tunnelled pings to send")
		period = flag.Duration("interval", 500*time.Millisecond, "ping interval")
	)
	flag.Parse()

	l, err := dial(*server)
	if err != nil {
		return err
	}
	defer l.conn.Close()

	// Platform setup: CPU, quoting enclave, IAS registration (which also
	// returns the CA public key that real deployments bake into the
	// enclave image at build time).
	cpu := sgx.NewCPU("machine-" + *id)
	qe, err := attest.NewQuotingEnclave(cpu, "platform-"+*id)
	if err != nil {
		return err
	}
	regMsg, err := udptransport.EncodeJSON(udptransport.MsgRegister, udptransport.Register{
		PlatformID: qe.PlatformID(),
		Key:        qe.VerificationKey(),
	})
	if err != nil {
		return err
	}
	msgType, body, err := l.request(regMsg)
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	if msgType != udptransport.MsgRegisterOK {
		return fmt.Errorf("register: unexpected response %c", msgType)
	}
	caPub := ed25519.PublicKey(append([]byte(nil), body...))
	fmt.Println("platform registered; CA key received")

	// Fetch the current middlebox configuration before connecting (paper
	// §III-E: the config server is publicly readable so clients can always
	// obtain up-to-date configurations before connecting).
	blob, err := fetchConfig(l, 0)
	if err != nil {
		return fmt.Errorf("initial configuration: %w", err)
	}
	initial, err := config.Open(blob, caPub, nil)
	if err != nil {
		return fmt.Errorf("initial configuration: %w", err)
	}
	fmt.Printf("boot configuration v%d fetched (%d rule sets)\n", initial.Version, len(initial.RuleSets))

	// RTT bookkeeping for the tunnelled pings.
	sentAt := make(map[uint16]time.Time)
	done := make(chan struct{})
	received := 0

	cli, err := core.NewClient(core.ClientOptions{
		ID:            *id,
		CPU:           cpu,
		Mode:          sgx.ModeHardware,
		CAPub:         caPub,
		QE:            qe,
		Enroll:        func(q attest.Quote) (*attest.Provision, error) { return enroll(l, q) },
		ClickConfig:   initial.ClickConfig,
		RuleSets:      initial.RuleSets,
		ConfigVersion: initial.Version,
		BatchEcalls:   true,
		FetchConfig:   func(v uint64) ([]byte, error) { return fetchConfig(l, v) },
		Send: func(frame []byte) error {
			_, err := l.conn.Write(udptransport.Encode(udptransport.MsgFrame, frame))
			return err
		},
		Deliver: func(ip []byte) {
			var p packet.IPv4
			if p.Parse(ip) != nil || p.Protocol != packet.ProtoICMP {
				return
			}
			icmp, err := packet.ParseICMP(p.Payload)
			if err != nil || icmp.Type != packet.ICMPEchoReply {
				return
			}
			if t0, ok := sentAt[icmp.Seq]; ok {
				fmt.Printf("ping seq=%d rtt=%v (through the enclave, both directions)\n",
					icmp.Seq, time.Since(t0).Round(10*time.Microsecond))
				delete(sentAt, icmp.Seq)
				received++
				if received >= *pings {
					close(done)
				}
			}
		},
	})
	if err != nil {
		return err
	}
	defer cli.Close()
	fmt.Println("enclave created, attested and provisioned")

	// VPN handshake over UDP.
	err = cli.Connect(func(hello *vpn.ClientHello) (*vpn.ServerHello, error) {
		msg, err := udptransport.EncodeJSON(udptransport.MsgHello, hello)
		if err != nil {
			return nil, err
		}
		msgType, body, err := l.request(msg)
		if err != nil {
			return nil, err
		}
		if msgType != udptransport.MsgServerHello {
			return nil, fmt.Errorf("unexpected handshake response %c", msgType)
		}
		var sh vpn.ServerHello
		if err := udptransport.DecodeJSON(body, &sh); err != nil {
			return nil, err
		}
		return &sh, nil
	})
	if err != nil {
		return fmt.Errorf("VPN handshake: %w", err)
	}
	fmt.Println("VPN connected")

	// Pump inbound frames into the client.
	go func() {
		for frame := range l.frames {
			if err := cli.HandleFrame(frame); err != nil {
				log.Printf("inbound frame: %v", err)
			}
		}
	}()

	// Tunnelled pings to a host "in the managed network" (the demo server
	// echoes them).
	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(10, 0, 0, 1)
	lastVersion := cli.AppliedVersion()
	for seq := uint16(1); int(seq) <= *pings; seq++ {
		sentAt[seq] = time.Now()
		ping := packet.NewICMPEcho(src, dst, packet.ICMPEchoRequest, 7, seq, []byte("endbox-demo"))
		if err := cli.SendPacket(ping); err != nil {
			log.Printf("ping seq=%d: %v", seq, err)
		}
		if err := cli.SendPing(); err != nil { // keepalive with config version
			log.Printf("keepalive: %v", err)
		}
		if v := cli.AppliedVersion(); v != lastVersion {
			fmt.Printf("configuration hot-swapped to v%d\n", v)
			lastVersion = v
		}
		time.Sleep(*period)
	}

	select {
	case <-done:
	case <-time.After(3 * time.Second):
	}
	fmt.Printf("done: %d/%d pings answered, configuration v%d\n", received, *pings, cli.AppliedVersion())
	return nil
}

// enroll performs remote attestation over UDP.
func enroll(l *link, quote attest.Quote) (*attest.Provision, error) {
	msg, err := udptransport.EncodeJSON(udptransport.MsgQuote, quote)
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(msg)
	if err != nil {
		return nil, err
	}
	if msgType != udptransport.MsgProvision {
		return nil, fmt.Errorf("unexpected enrolment response %c", msgType)
	}
	var prov attest.Provision
	if err := udptransport.DecodeJSON(body, &prov); err != nil {
		return nil, err
	}
	return &prov, nil
}

// fetchConfig retrieves a configuration blob (version 0 = latest). Blobs
// arrive as a stream of chunk datagrams.
func fetchConfig(l *link, version uint64) ([]byte, error) {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], version)
	if _, err := l.conn.Write(udptransport.Encode(udptransport.MsgFetch, v[:])); err != nil {
		return nil, err
	}
	chunks := make(map[int][]byte)
	want := -1
	deadline := time.After(5 * time.Second)
	for {
		select {
		case resp := <-l.control:
			msgType, body, err := udptransport.Decode(resp)
			if err != nil {
				return nil, err
			}
			switch msgType {
			case udptransport.MsgError:
				return nil, fmt.Errorf("server: %s", body)
			case udptransport.MsgConfig:
				idx, total, data, err := udptransport.DecodeChunk(body)
				if err != nil {
					return nil, err
				}
				want = total
				chunks[idx] = append([]byte(nil), data...)
				if len(chunks) == want {
					var blob []byte
					for i := 0; i < want; i++ {
						part, ok := chunks[i]
						if !ok {
							return nil, fmt.Errorf("missing config chunk %d", i)
						}
						blob = append(blob, part...)
					}
					return blob, nil
				}
			}
		case <-deadline:
			return nil, fmt.Errorf("configuration fetch timed out (%d/%d chunks)", len(chunks), want)
		}
	}
}
