// Command endbox-server runs the managed network's server side over real
// UDP: the attestation endpoints (IAS registration + CA enrolment), the
// VPN server, the configuration file server, and a demo "network" that
// echoes tunnelled packets back to their sender.
//
//	endbox-server -listen 127.0.0.1:11940
//	endbox-server -listen 127.0.0.1:11940 -usecase IDPS -grace 30 -update-after 20
//
// Pair it with cmd/endbox-client.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/config"
	"endbox/internal/core"
	"endbox/internal/packet"
	"endbox/internal/udptransport"
	"endbox/internal/vpn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type server struct {
	core *core.Server
	ias  *attest.IAS
	ca   *attest.CA

	conn *net.UDPConn

	mu    sync.Mutex
	addrs map[string]*net.UDPAddr // client ID -> last UDP address
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:11940", "UDP address to listen on")
		useCase     = flag.String("usecase", "FW", "initial middlebox use case (NOP|LB|FW|IDPS|DDoS)")
		grace       = flag.Int("grace", 30, "grace period in seconds for configuration updates")
		updateAfter = flag.Int("update-after", 0, "publish a demo configuration update after N seconds (0 = never)")
	)
	flag.Parse()

	uc, err := parseUseCase(*useCase)
	if err != nil {
		return err
	}

	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	ias, err := attest.NewIAS()
	if err != nil {
		return err
	}
	ca, err := attest.NewCA(ias)
	if err != nil {
		return err
	}
	ca.AllowMeasurement(core.ClientImage(ca.PublicKey()).Measure())

	s := &server{ias: ias, ca: ca, conn: conn, addrs: make(map[string]*net.UDPAddr)}

	coreSrv, err := core.NewServer(core.ServerOptions{
		CA: ca,
		Deliver: func(clientID string, ip []byte) {
			// Demo "managed network": echo packets back to the sender,
			// answering ICMP echo requests properly.
			var p packet.IPv4
			if p.Parse(ip) != nil {
				return
			}
			echo := p.Clone()
			echo.Src, echo.Dst = p.Dst, p.Src
			if echo.Protocol == packet.ProtoICMP {
				if icmp, err := packet.ParseICMP(echo.Payload); err == nil && icmp.Type == packet.ICMPEchoRequest {
					icmp.Type = packet.ICMPEchoReply
					echo.Payload = icmp.Marshal()
				}
			}
			if err := s.core.VPN().SendTo(clientID, echo.Marshal(), false); err != nil {
				log.Printf("echo to %s: %v", clientID, err)
			}
		},
		SendTo: s.sendFrame,
	})
	if err != nil {
		return err
	}
	s.core = coreSrv

	// Publish the initial configuration as version 1 so clients can fetch
	// it (they boot with the same use case, so this also exercises the
	// update path when -update-after fires).
	if err := coreSrv.PublishUpdate(&config.Update{
		Version:      1,
		GraceSeconds: uint32(*grace),
		ClickConfig:  click.StandardConfig(uc),
		RuleSets:     core.CommunityRuleSets(),
	}); err != nil {
		return err
	}

	if *updateAfter > 0 {
		go func() {
			time.Sleep(time.Duration(*updateAfter) * time.Second)
			log.Printf("publishing demo update v2 (use case FW with tightened rules)")
			err := coreSrv.PublishUpdate(&config.Update{
				Version:      2,
				GraceSeconds: uint32(*grace),
				ClickConfig:  click.StandardConfig(click.UseCaseFW),
				RuleSets:     core.CommunityRuleSets(),
			})
			if err != nil {
				log.Printf("update failed: %v", err)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "endbox-server listening on %s (use case %s, CA ready)\n", *listen, uc)
	return s.serve()
}

func parseUseCase(s string) (click.UseCase, error) {
	for _, uc := range click.AllUseCases {
		if uc.String() == s {
			return uc, nil
		}
	}
	return 0, fmt.Errorf("unknown use case %q", s)
}

// sendFrame transmits a sealed frame to a client's last known UDP address.
func (s *server) sendFrame(clientID string, frame []byte) error {
	s.mu.Lock()
	addr, ok := s.addrs[clientID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("no address for client %q", clientID)
	}
	_, err := s.conn.WriteToUDP(udptransport.Encode(udptransport.MsgFrame, frame), addr)
	return err
}

// serve is the datagram dispatch loop.
func (s *server) serve() error {
	buf := make([]byte, udptransport.MaxDatagram)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		msgType, body, err := udptransport.Decode(buf[:n])
		if err != nil {
			continue
		}
		resp := s.handle(msgType, body, from)
		if resp != nil {
			if _, err := s.conn.WriteToUDP(resp, from); err != nil {
				log.Printf("reply to %s: %v", from, err)
			}
		}
	}
}

// handle processes one message and returns the response datagram (nil for
// one-way messages).
func (s *server) handle(msgType byte, body []byte, from *net.UDPAddr) []byte {
	switch msgType {
	case udptransport.MsgRegister:
		var reg udptransport.Register
		if err := udptransport.DecodeJSON(body, &reg); err != nil {
			return udptransport.Errorf("register: %v", err)
		}
		s.ias.RegisterPlatformKey(reg.PlatformID, reg.Key)
		log.Printf("registered platform %s", reg.PlatformID)
		return udptransport.Encode(udptransport.MsgRegisterOK, s.ca.PublicKey())

	case udptransport.MsgQuote:
		var quote attest.Quote
		if err := udptransport.DecodeJSON(body, &quote); err != nil {
			return udptransport.Errorf("quote: %v", err)
		}
		prov, err := s.ca.Enroll(quote)
		if err != nil {
			return udptransport.Errorf("enrolment refused: %v", err)
		}
		resp, err := udptransport.EncodeJSON(udptransport.MsgProvision, prov)
		if err != nil {
			return udptransport.Errorf("provision: %v", err)
		}
		log.Printf("enrolled platform %s (measurement %s)", quote.PlatformID, quote.Report.Measurement)
		return resp

	case udptransport.MsgHello:
		var hello vpn.ClientHello
		if err := udptransport.DecodeJSON(body, &hello); err != nil {
			return udptransport.Errorf("hello: %v", err)
		}
		sh, err := s.core.VPN().Accept(&hello)
		if err != nil {
			return udptransport.Errorf("handshake refused: %v", err)
		}
		s.mu.Lock()
		s.addrs[hello.ClientID] = from
		s.mu.Unlock()
		resp, err := udptransport.EncodeJSON(udptransport.MsgServerHello, sh)
		if err != nil {
			return udptransport.Errorf("server hello: %v", err)
		}
		log.Printf("client %s connected from %s", hello.ClientID, from)
		return resp

	case udptransport.MsgFrame:
		clientID := s.clientByAddr(from)
		if clientID == "" {
			return udptransport.Errorf("frame from unknown address %s", from)
		}
		if err := s.core.VPN().HandleFrame(clientID, body); err != nil {
			log.Printf("frame from %s: %v", clientID, err)
		}
		return nil

	case udptransport.MsgFetch:
		if len(body) != 8 {
			return udptransport.Errorf("fetch: bad version")
		}
		version := uint64(body[0])<<56 | uint64(body[1])<<48 | uint64(body[2])<<40 | uint64(body[3])<<32 |
			uint64(body[4])<<24 | uint64(body[5])<<16 | uint64(body[6])<<8 | uint64(body[7])
		if version == 0 { // convention: 0 requests the latest version
			version = s.core.Configs().Latest()
		}
		blob, err := s.core.Configs().Fetch(version)
		if err != nil {
			return udptransport.Errorf("fetch v%d: %v", version, err)
		}
		// Configuration blobs exceed one datagram; stream the chunks and
		// return nil (no single response).
		for _, chunk := range udptransport.EncodeChunks(blob) {
			if _, err := s.conn.WriteToUDP(chunk, from); err != nil {
				log.Printf("config chunk to %s: %v", from, err)
				break
			}
		}
		return nil

	default:
		return udptransport.Errorf("unknown message type %c", msgType)
	}
}

// clientByAddr resolves the sender of a data frame.
func (s *server) clientByAddr(from *net.UDPAddr) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, addr := range s.addrs {
		if addr.IP.Equal(from.IP) && addr.Port == from.Port {
			return id
		}
	}
	return ""
}
