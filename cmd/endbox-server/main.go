// Command endbox-server runs the managed network's server side over real
// UDP: the attestation endpoints (IAS registration + CA enrolment), the
// VPN server, the configuration file server, and a demo "network" that
// echoes tunnelled packets back to their sender.
//
// It is a thin wrapper around the public endbox facade: a Deployment with
// the UDP transport bound to the listen address. All datagram handling
// lives in the transport; this binary only selects options and publishes
// configurations.
//
//	endbox-server -listen 127.0.0.1:11940
//	endbox-server -listen 127.0.0.1:11940 -usecase IDPS -grace 30 -update-after 20
//
// Pair it with cmd/endbox-client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"endbox"
	"endbox/internal/click"
	"endbox/mbox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:11940", "UDP address to listen on")
		useCase     = flag.String("usecase", "FW", "initial middlebox use case (NOP|LB|FW|IDPS|DDoS)")
		pipeline    = flag.String("pipeline", "", "initial middlebox pipeline as raw Click configuration text (overrides -usecase; validated before publishing)")
		grace       = flag.Int("grace", 30, "grace period in seconds for configuration updates")
		updateAfter = flag.Int("update-after", 0, "publish a demo configuration update after N seconds (0 = never)")
		shards      = flag.Int("shards", 0, "session-table shard count (0 = match CPUs, 1 = monolithic baseline)")
		udpWorkers  = flag.Int("udp-workers", 0, "ingress worker pool size (0 = single serve goroutine)")
		arqTimeout  = flag.Duration("arq-timeout", 200*time.Millisecond, "initial control-path retransmit timeout")
		arqRetries  = flag.Int("arq-retries", 5, "control-path retransmit budget per transfer")
		arqOff      = flag.Bool("arq-off", false, "disable the control-path ARQ layer (fire-and-forget, pre-reliability behaviour)")
		lossDrop    = flag.Float64("loss", 0, "simulated control-path drop probability [0,1] (demo/testing)")
		lossDup     = flag.Float64("loss-dup", 0, "simulated duplicate probability [0,1]")
		lossReorder = flag.Float64("loss-reorder", 0, "simulated reorder probability [0,1]")
		lossSeed    = flag.Int64("loss-seed", 1, "seed for the deterministic loss model")
		lossCorrupt = flag.Uint64("loss-corrupt", 0, "corrupt every Nth control-path datagram with a bit flip (0 = never; corrupted sealed frames fail authentication and are retransmitted)")
		canaryFrac  = flag.Float64("canary-fraction", 0, "stage -update-after's demo update as a health-gated canary to this fraction of the fleet first (0 = publish directly, no canary)")
		canaryWait  = flag.Duration("canary-deadline", 30*time.Second, "canary observation window: every cohort member must ack healthily within it or the rollout auto-rolls-back")
		failOpen    = flag.Bool("fail-open", false, "quarantined pipeline elements bypass traffic instead of dropping it (default fail-closed)")
		flowCap     = flag.Int("flow-capacity", 0, "bound on concurrently tracked flows per client enclave (0 = default 16384)")
		flowTTL     = flag.Duration("flow-ttl", 0, "flow idle timeout before expiry (0 = default 2m)")
		sessionTTL  = flag.Duration("session-ttl", 0, "evict sessions idle for this long (0 = never evict)")
		hsRate      = flag.Float64("hs-rate", 0, "admitted handshakes per second, token-bucket refill (0 = unlimited)")
		hsBurst     = flag.Int("hs-burst", 0, "handshake token-bucket depth (0 = derived from -hs-rate)")
		hsInflight  = flag.Int("hs-inflight", 0, "cap on concurrently in-flight handshakes (0 = unlimited)")
		maxSessions = flag.Int("max-sessions", 0, "hard bound on established sessions (0 = unlimited)")
		allowBuilds = flag.String("allow-builds", "", "register and allowlist enclave builds: comma-separated name=measurement pairs, measurement as 64 hex chars or @buildVersion to measure the named client-image build here (@ alone = the default build endbox-client runs); registration order is lineage order, @-entries after plain ones")
		revoke      = flag.String("revoke", "", "revoke these registered builds (comma-separated names) after -revoke-after: their handshakes are refused and live sessions evicted")
		revokeAfter = flag.Duration("revoke-after", 0, "delay before -revoke fires (0 = at startup)")
	)
	flag.Parse()
	ctx := context.Background()

	// Resolve the initial middlebox function: an explicit -pipeline, or
	// the stock pipeline of -usecase. Either way it is compiled and
	// validated here — a typo fails at startup, not inside an enclave.
	uc, err := parseUseCase(*useCase)
	if err != nil {
		return err
	}
	boot := mbox.Stock(uc)
	bootLabel := uc.String()
	if *pipeline != "" {
		boot = mbox.Raw(*pipeline)
		bootLabel = "custom pipeline"
	}
	bootCfg, err := mbox.Compile(boot, endbox.CommunityRuleSets())
	if err != nil {
		return fmt.Errorf("-pipeline: %w", err)
	}

	// Attested-identity policy: -allow-builds names the enclave builds
	// that may enrol; -revoke revokes some of them live, evicting their
	// sessions. Plain name=64hex entries carry externally computed
	// measurements and register up front; name=@version entries need the
	// deployment's CA key to measure the client image, so they register
	// after the deployment exists.
	var pol *endbox.Policy
	var computedBuilds [][2]string
	if *allowBuilds != "" {
		pol = endbox.NewPolicy()
		var hexEntries []string
		for _, entry := range strings.Split(*allowBuilds, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(entry), "=")
			if ok && strings.HasPrefix(val, "@") {
				computedBuilds = append(computedBuilds, [2]string{name, strings.TrimPrefix(val, "@")})
				continue
			}
			hexEntries = append(hexEntries, entry)
		}
		if len(hexEntries) > 0 {
			if err := pol.RegisterSpec(strings.Join(hexEntries, ",")); err != nil {
				return fmt.Errorf("-allow-builds: %w", err)
			}
		}
	}
	if *revoke != "" && pol == nil {
		return fmt.Errorf("-revoke requires -allow-builds (revocation names registered builds)")
	}

	transport := endbox.NewUDPTransport(*listen)
	transport.Logf = log.Printf

	opts := []endbox.Option{
		endbox.WithTransport(transport),
		endbox.WithShards(*shards),
		endbox.WithUDPWorkers(*udpWorkers),
		endbox.WithRetransmit(endbox.RetransmitConfig{
			Timeout:    *arqTimeout,
			MaxRetries: *arqRetries,
			Disable:    *arqOff,
		}),
		endbox.WithLossProfile(endbox.LossProfile{
			Drop:         *lossDrop,
			Duplicate:    *lossDup,
			Reorder:      *lossReorder,
			Seed:         *lossSeed,
			CorruptEvery: *lossCorrupt,
		}),
		endbox.WithFailurePolicy(endbox.FailurePolicy{FailOpen: *failOpen}),
		endbox.WithFlowTable(*flowCap, *flowTTL),
		endbox.WithSessionTTL(*sessionTTL),
		endbox.WithAdmission(endbox.AdmissionConfig{
			HandshakeRate:  *hsRate,
			HandshakeBurst: *hsBurst,
			MaxConcurrent:  *hsInflight,
			MaxSessions:    *maxSessions,
		}),
		// Demo "managed network": echo packets back to the sender,
		// answering ICMP echo requests properly.
		endbox.WithEchoNetwork(),
	}
	if pol != nil {
		opts = append(opts, endbox.WithPolicy(pol), endbox.WithSealToMeasurement())
	}
	deployment, err := endbox.New(opts...)
	if err != nil {
		return err
	}
	defer deployment.Close()

	for _, b := range computedBuilds {
		m, err := deployment.RegisterBuild(b[0], b[1])
		if err != nil {
			return fmt.Errorf("-allow-builds: %w", err)
		}
		version := b[1]
		if version == "" {
			version = "default"
		}
		log.Printf("registered build %s (client image %s) measurement %s", b[0], version, m)
	}

	if *revoke != "" {
		names := strings.Split(*revoke, ",")
		go func() {
			if *revokeAfter > 0 {
				time.Sleep(*revokeAfter)
			}
			for _, name := range names {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if err := deployment.RevokeBuild(name); err != nil {
					log.Printf("revoke %s: %v", name, err)
					continue
				}
				log.Printf("revoked build %s: new handshakes refused, live sessions evicted", name)
			}
		}()
	}

	// Publish the initial configuration as version 1 so clients can fetch
	// it (they boot with the same use case, so this also exercises the
	// update path when -update-after fires).
	if err := deployment.Server.PublishUpdate(ctx, &endbox.Update{
		Version:      1,
		GraceSeconds: uint32(*grace),
		ClickConfig:  bootCfg,
		RuleSets:     endbox.CommunityRuleSets(),
	}); err != nil {
		return err
	}

	if *updateAfter > 0 {
		go func() {
			time.Sleep(time.Duration(*updateAfter) * time.Second)
			if *canaryFrac > 0 {
				log.Printf("staging demo update v2 as a canary to %.0f%% of the fleet (deadline %v)",
					*canaryFrac*100, *canaryWait)
				res, err := deployment.RolloutCanary(ctx, endbox.CanaryRollout{
					Rollout: endbox.Rollout{
						Version:      2,
						GraceSeconds: uint32(*grace),
						ClickConfig:  endbox.StandardConfig(endbox.UseCaseFW),
						RuleSets:     endbox.CommunityRuleSets(),
					},
					Fraction: *canaryFrac,
					Deadline: *canaryWait,
				})
				switch {
				case err != nil:
					log.Printf("canary failed: %v", err)
				case res.Promoted:
					log.Printf("canary v2 healthy on %v, promoted fleet-wide", res.Canary)
				default:
					log.Printf("canary v2 rolled back to last-known-good as v%d: %s",
						res.RollbackVersion, res.Reason)
				}
				return
			}
			log.Printf("publishing demo update v2 (use case FW with tightened rules)")
			err := deployment.Server.PublishUpdate(ctx, &endbox.Update{
				Version:      2,
				GraceSeconds: uint32(*grace),
				ClickConfig:  endbox.StandardConfig(endbox.UseCaseFW),
				RuleSets:     endbox.CommunityRuleSets(),
			})
			if err != nil {
				log.Printf("update failed: %v", err)
			}
		}()
	}

	arqState := fmt.Sprintf("ARQ on, rto %v, %d retries", *arqTimeout, *arqRetries)
	if *arqOff {
		arqState = "ARQ off"
	}
	if *lossDrop > 0 || *lossDup > 0 || *lossReorder > 0 {
		arqState += fmt.Sprintf(", simulated loss %.0f%%", *lossDrop*100)
	}
	if *sessionTTL > 0 {
		arqState += fmt.Sprintf(", session TTL %v", *sessionTTL)
	}
	if *maxSessions > 0 || *hsRate > 0 || *hsInflight > 0 {
		arqState += ", admission control on"
	}
	if *failOpen {
		arqState += ", fail-open containment"
	}
	if pol != nil {
		arqState += fmt.Sprintf(", %d builds registered", len(pol.Builds()))
	}
	fmt.Fprintf(os.Stderr, "endbox-server listening on %s (%s, %d session shards, %d ingress workers, %s, CA ready)\n",
		transport.Addr(), bootLabel, deployment.Server.VPN().ShardCount(), transport.Workers(), arqState)

	// The transport serves datagrams on its own goroutine; wait for an
	// interrupt.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

func parseUseCase(s string) (click.UseCase, error) {
	for _, uc := range click.AllUseCases {
		if uc.String() == s {
			return uc, nil
		}
	}
	return 0, fmt.Errorf("unknown use case %q", s)
}
