// Command endbox-bench regenerates every table and figure of the EndBox
// paper's evaluation (DSN'18, §V). Each experiment prints the same rows or
// series the paper reports, plus notes recording the workload parameters
// and the shape checks against the paper's numbers.
//
// Usage:
//
//	endbox-bench                     # run everything
//	endbox-bench -experiment fig8    # one experiment
//	endbox-bench -list               # list experiment names
//	endbox-bench -packets 5000       # longer wall-clock measurements
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"endbox/internal/bench"
	"endbox/internal/scenario"
)

// runScenario runs one trace-driven scenario from the matrix and prints
// its Result as JSON — the same shape BENCH_scenarios.json aggregates.
func runScenario(spec, transport string) error {
	if spec == "list" {
		for _, name := range scenario.Names() {
			s, _ := scenario.Lookup(name)
			fmt.Printf("%-16s %s\n", name, s.Description)
		}
		return nil
	}
	res, err := scenario.Run(spec, transport)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// experiment couples a name with its runner.
type experiment struct {
	name  string
	about string
	run   func(cfg runConfig) (*bench.Table, error)
}

type runConfig struct {
	packets    int
	iterations int
	model      *bench.CostModel // latency models (fig6, fig7)
	simModel   *bench.CostModel // cluster simulations (fig10)
}

func experiments() []experiment {
	return []experiment{
		{"fig6", "HTTP page-load CDF, direct vs EndBox", func(c runConfig) (*bench.Table, error) {
			return bench.Fig6(c.model)
		}},
		{"fig7", "ping RTT by redirection method", func(c runConfig) (*bench.Table, error) {
			return bench.Fig7(c.model)
		}},
		{"fig8", "throughput vs packet size, 4 set-ups", func(c runConfig) (*bench.Table, error) {
			return bench.Fig8(c.packets)
		}},
		{"fig9", "use-case throughput at 1500 B", func(c runConfig) (*bench.Table, error) {
			return bench.Fig9(c.packets)
		}},
		{"fig10a", "scalability, NOP, 4 deployments", func(c runConfig) (*bench.Table, error) {
			return bench.Fig10a(c.simModel, nil)
		}},
		{"fig10b", "scalability, 5 use cases", func(c runConfig) (*bench.Table, error) {
			return bench.Fig10b(c.simModel, nil)
		}},
		{"fig11", "ping latency across a config update", func(c runConfig) (*bench.Table, error) {
			return bench.Fig11()
		}},
		{"table1", "HTTPS GET latency by TLS configuration", func(c runConfig) (*bench.Table, error) {
			return bench.Table1(c.iterations)
		}},
		{"table2", "configuration update phase timings", func(c runConfig) (*bench.Table, error) {
			return bench.Table2(c.iterations * 4)
		}},
		{"opt-transitions", "ablation: ecall batching (§V-G)", func(c runConfig) (*bench.Table, error) {
			return bench.OptTransitions(c.packets)
		}},
		{"opt-isp", "ablation: integrity-only channel (§V-G)", func(c runConfig) (*bench.Table, error) {
			return bench.OptISP(c.packets)
		}},
		{"opt-c2c", "ablation: client-to-client flagging (§V-G)", func(c runConfig) (*bench.Table, error) {
			return bench.OptC2C(c.iterations * 6)
		}},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "endbox-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("endbox-bench", flag.ContinueOnError)
	var (
		name       = fs.String("experiment", "all", "experiment to run (see -list)")
		packets    = fs.Int("packets", 2000, "packets per wall-clock throughput measurement")
		iterations = fs.Int("iterations", 50, "iterations per latency measurement")
		list       = fs.Bool("list", false, "list experiments and exit")
		calibrated = fs.Bool("calibrated", false, "drive the Fig. 10 cluster simulation with costs measured live on this host instead of the paper-derived costs")
		memstats   = fs.Bool("memstats", true, "report per-experiment allocation counts (allocs/op against -packets) and GC pause totals")
		scenSpec   = fs.String("scenario", "", "run one end-to-end scenario instead of a paper experiment: a spec like 'ddos-flood:syn=2000,capacity=512' ('list' prints the matrix); result is one JSON object")
		transport  = fs.String("transport", scenario.TransportInProcess, "scenario transport: inprocess (direct calls) or udp (real sockets)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenSpec != "" {
		return runScenario(*scenSpec, *transport)
	}

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-16s %s\n", e.name, e.about)
		}
		return nil
	}

	selected := exps
	if *name != "all" {
		selected = nil
		for _, e := range exps {
			if e.name == *name {
				selected = []experiment{e}
				break
			}
		}
		if selected == nil {
			var names []string
			for _, e := range exps {
				names = append(names, e.name)
			}
			sort.Strings(names)
			return fmt.Errorf("unknown experiment %q (have: %s)", *name, strings.Join(names, ", "))
		}
	}

	needsModel := false
	for _, e := range selected {
		switch e.name {
		case "fig6", "fig7", "fig10a", "fig10b":
			needsModel = true
		}
	}
	cfg := runConfig{packets: *packets, iterations: *iterations}
	if needsModel {
		fmt.Fprintln(os.Stderr, "calibrating cost model from live micro-measurements...")
		m, err := bench.Calibrate()
		if err != nil {
			return err
		}
		cfg.model = m
		cfg.simModel = bench.PaperCostModel()
		if *calibrated {
			cfg.simModel = m
		}
	}

	for _, e := range selected {
		var before runtime.MemStats
		if *memstats {
			runtime.ReadMemStats(&before)
		}
		tab, err := e.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		tab.Render(os.Stdout)
		if *memstats {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			renderMemStats(os.Stdout, e.name, &before, &after, *packets)
		}
	}
	return nil
}

// renderMemStats prints the allocation and GC footprint one experiment
// left behind: total heap allocations, allocs per packet (the experiment's
// wall-clock op), and the GC pause time the run accumulated — the numbers
// the zero-allocation packet path exists to keep near zero.
func renderMemStats(w *os.File, name string, before, after *runtime.MemStats, packets int) {
	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	gcs := after.NumGC - before.NumGC
	pause := after.PauseTotalNs - before.PauseTotalNs
	perOp := float64(mallocs)
	if packets > 0 {
		perOp = float64(mallocs) / float64(packets)
	}
	fmt.Fprintf(w, "[mem] %s: %d allocs (%.1f allocs/op at %d ops), %.1f MB allocated, %d GCs, %.2f ms GC pause\n\n",
		name, mallocs, perOp, packets, float64(bytes)/(1<<20), gcs, float64(pause)/1e6)
}
