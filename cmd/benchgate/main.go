// Command benchgate guards the zero-allocation packet path in CI: it
// compares allocs/op from a `go test -bench -benchmem` run against the
// committed baseline (BENCH_zerocopy.json) and fails when any matched
// benchmark regresses beyond the tolerance.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkDataPlanePath -benchtime 100x -benchmem . > bench.txt
//	go run ./cmd/benchgate -baseline BENCH_zerocopy.json -bench bench.txt
//
// Matching is by benchmark name with the "Benchmark" prefix and the
// -GOMAXPROCS suffix stripped, so "BenchmarkDataPlanePath/sharded+batched/clients=8-4"
// compares against the baseline entry "DataPlanePath/sharded+batched/clients=8".
// Baseline entries with no allocs_per_op field and benchmarks absent from
// the run are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// baselineFile mirrors the committed benchmark JSON's shape; fields this
// tool does not gate on are ignored.
type baselineFile struct {
	Benchmarks []struct {
		Name        string   `json:"name"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_zerocopy.json", "committed baseline JSON")
		benchPath    = flag.String("bench", "-", "benchmark output to check ('-' for stdin)")
		match        = flag.String("match", "DataPlanePath", "gate benchmarks whose name contains this substring")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional allocs/op regression")
		slack        = flag.Float64("slack", 8, "absolute allocs/op slack on top of the tolerance (absorbs cold-pool warmup at short benchtimes)")
	)
	flag.Parse()
	if err := run(*baselinePath, *benchPath, *match, *tolerance, *slack); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, benchPath, match string, tolerance, slack float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	baseline := make(map[string]float64)
	for _, b := range base.Benchmarks {
		if b.AllocsPerOp != nil && strings.Contains(b.Name, match) {
			baseline[b.Name] = *b.AllocsPerOp
		}
	}
	if len(baseline) == 0 {
		return fmt.Errorf("no %q entries with allocs_per_op in %s", match, baselinePath)
	}

	in := os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in, match)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("benchmark output contains no %q results with allocs/op (was -benchmem set?)", match)
	}

	failed := 0
	for name, got := range current {
		want, ok := baseline[name]
		if !ok {
			fmt.Printf("benchgate: %-45s %8.1f allocs/op (no baseline, skipped)\n", name, got)
			continue
		}
		allowed := want*(1+tolerance) + slack
		status := "ok"
		if got > allowed {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("benchgate: %-45s %8.1f allocs/op (baseline %.1f, allowed %.1f) %s\n",
			name, got, want, allowed, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%+%.0f allocs/op", failed, tolerance*100, slack)
	}
	return nil
}

// parseBench extracts "<name> ... N allocs/op" rows from go test output.
func parseBench(in *os.File, match string) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normalizeName(fields[0])
		if !strings.Contains(name, match) {
			continue
		}
		for i := 1; i+1 < len(fields); i++ {
			if fields[i+1] == "allocs/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op for %s: %q", name, fields[i])
				}
				out[name] = v
				break
			}
		}
	}
	return out, sc.Err()
}

// normalizeName strips the Benchmark prefix and the -GOMAXPROCS suffix so
// run output matches committed baseline names across machines.
func normalizeName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}
