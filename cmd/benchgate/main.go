// Command benchgate guards the data-plane benchmarks in CI: it compares
// allocs/op, ns/op AND MB/s from a `go test -bench -benchmem` run against
// a committed baseline (BENCH_zerocopy.json, BENCH_scenarios.json, ...)
// and fails when any matched benchmark regresses beyond the tolerances.
// Gating costs and throughput together means a change cannot silently
// trade the zero-allocation property for speed or vice versa — in
// particular, the control-path ARQ layer must leave the data path's
// latency untouched, not just its allocation count. MB/s gates in the
// opposite direction (a regression is falling below the baseline), and
// -require-all additionally fails when a baseline entry is missing from
// the run — the scenario matrix must run whole, not just the fast parts.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkDataPlanePath -benchtime 100x -benchmem . > bench.txt
//	go run ./cmd/benchgate -baseline BENCH_zerocopy.json -bench bench.txt
//
// Matching is by benchmark name with the "Benchmark" prefix and the
// -GOMAXPROCS suffix stripped, so "BenchmarkDataPlanePath/sharded+batched/clients=8-4"
// compares against the baseline entry "DataPlanePath/sharded+batched/clients=8".
// Baseline entries missing a metric and benchmarks absent from the run are
// skipped. The ns/op tolerance is deliberately loose (CI machines vary);
// the allocs/op tolerance is tight (allocation counts are deterministic).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// baselineFile mirrors the committed benchmark JSON's shape; fields this
// tool does not gate on are ignored.
type baselineFile struct {
	Benchmarks []struct {
		Name        string   `json:"name"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
		NsPerOp     *float64 `json:"ns_per_op"`
		MBPerS      *float64 `json:"mb_per_s"`
	} `json:"benchmarks"`
}

// metric is one gated quantity parsed from benchmark output.
type metric struct {
	unit      string  // go test unit suffix ("allocs/op", "ns/op", "MB/s")
	tolerance float64 // allowed fractional regression
	slack     float64 // absolute slack on top of the tolerance
	// higherBetter inverts the check: the metric regresses by falling
	// below the baseline (throughput), not by exceeding it (costs).
	higherBetter bool
}

func main() {
	var (
		baselinePath  = flag.String("baseline", "BENCH_zerocopy.json", "committed baseline JSON")
		benchPath     = flag.String("bench", "-", "benchmark output to check ('-' for stdin)")
		match         = flag.String("match", "DataPlanePath", "gate benchmarks whose name contains this substring")
		tolerance     = flag.Float64("tolerance", 0.10, "allowed fractional allocs/op regression")
		slack         = flag.Float64("slack", 8, "absolute allocs/op slack on top of the tolerance (absorbs cold-pool warmup at short benchtimes)")
		timeTolerance = flag.Float64("time-tolerance", 0.50, "allowed fractional ns/op regression (loose: CI machines vary)")
		timeSlack     = flag.Float64("time-slack", 0, "absolute ns/op slack on top of the time tolerance")
		tputTolerance = flag.Float64("throughput-tolerance", 0.50, "allowed fractional MB/s shortfall below baseline (loose: CI machines vary)")
		requireAll    = flag.Bool("require-all", false, "fail when a matched baseline entry is missing from the benchmark output (the run must cover every gated benchmark)")
	)
	flag.Parse()
	metrics := []metric{
		{unit: "allocs/op", tolerance: *tolerance, slack: *slack},
		{unit: "ns/op", tolerance: *timeTolerance, slack: *timeSlack},
		{unit: "MB/s", tolerance: *tputTolerance, higherBetter: true},
	}
	if err := run(*baselinePath, *benchPath, *match, metrics, *requireAll); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, benchPath, match string, metrics []metric, requireAll bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	// baseline[unit][name] = committed value.
	baseline := map[string]map[string]float64{
		"allocs/op": {},
		"ns/op":     {},
		"MB/s":      {},
	}
	gatedNames := map[string]bool{}
	for _, b := range base.Benchmarks {
		if !strings.Contains(b.Name, match) {
			continue
		}
		if b.AllocsPerOp != nil {
			baseline["allocs/op"][b.Name] = *b.AllocsPerOp
			gatedNames[b.Name] = true
		}
		if b.NsPerOp != nil {
			baseline["ns/op"][b.Name] = *b.NsPerOp
			gatedNames[b.Name] = true
		}
		if b.MBPerS != nil {
			baseline["MB/s"][b.Name] = *b.MBPerS
			gatedNames[b.Name] = true
		}
	}
	if len(gatedNames) == 0 {
		return fmt.Errorf("no %q entries with gated metrics in %s", match, baselinePath)
	}

	in := os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in, match)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("benchmark output contains no %q results (was -benchmem set?)", match)
	}

	failed := 0
	for _, m := range metrics {
		for name, values := range current {
			got, ok := values[m.unit]
			if !ok {
				continue
			}
			want, ok := baseline[m.unit][name]
			if !ok {
				fmt.Printf("benchgate: %-45s %12.1f %-9s (no baseline, skipped)\n", name, got, m.unit)
				continue
			}
			var allowed float64
			regressed := false
			if m.higherBetter {
				allowed = want*(1-m.tolerance) - m.slack
				regressed = got < allowed
			} else {
				allowed = want*(1+m.tolerance) + m.slack
				regressed = got > allowed
			}
			status := "ok"
			if regressed {
				status = "REGRESSED"
				failed++
			}
			fmt.Printf("benchgate: %-45s %12.1f %-9s (baseline %.1f, allowed %.1f) %s\n",
				name, got, m.unit, want, allowed, status)
		}
	}
	if requireAll {
		for name := range gatedNames {
			if _, ran := current[name]; !ran {
				fmt.Printf("benchgate: %-45s MISSING from benchmark output\n", name)
				failed++
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark metric(s) regressed beyond tolerance or went missing", failed)
	}
	return nil
}

// parseBench extracts "<name> ... <value> <unit>" rows from go test
// output for the gated units.
func parseBench(in *os.File, match string) (map[string]map[string]float64, error) {
	gated := map[string]bool{"allocs/op": true, "ns/op": true, "MB/s": true}
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normalizeName(fields[0])
		if !strings.Contains(name, match) {
			continue
		}
		for i := 1; i+1 < len(fields); i++ {
			unit := fields[i+1]
			if !gated[unit] {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s for %s: %q", unit, name, fields[i])
			}
			if out[name] == nil {
				out[name] = make(map[string]float64)
			}
			out[name][unit] = v
		}
	}
	return out, sc.Err()
}

// normalizeName strips the Benchmark prefix and the -GOMAXPROCS suffix so
// run output matches committed baseline names across machines.
func normalizeName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}
