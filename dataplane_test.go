package endbox

// Tests for the sharded, pipelined server data plane through the public
// surface: many concurrent clients over the sharded session table, the
// per-client statistics API, the monolithic (1-shard) baseline, and the
// batched ingress path.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"endbox/internal/packet"
)

// TestSharded64ClientsConcurrent drives 64 clients through one deployment
// from concurrent goroutines — the sharded-table stress the monolithic
// session map serialised. Run with -race.
func TestSharded64ClientsConcurrent(t *testing.T) {
	ctx := context.Background()
	const clients = 64
	const packetsPerClient = 10

	d, err := New(WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Server.VPN().ShardCount(); got != 16 {
		t.Fatalf("ShardCount = %d, want 16", got)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("shard-c%d", i)
			cli, err := d.AddClient(ctx, id, ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP})
			if err != nil {
				errs <- fmt.Errorf("AddClient(%s): %w", id, err)
				return
			}
			pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1),
				40000, 80, []byte("sharded"))
			batch := make([][]byte, packetsPerClient)
			for j := range batch {
				batch[j] = pkt
			}
			if sent, err := cli.SendPackets(batch); err != nil || sent != packetsPerClient {
				errs <- fmt.Errorf("client %s sent %d/%d: %v", id, sent, packetsPerClient, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	agg := d.AggregateStats()
	if agg.RxPackets != clients*packetsPerClient {
		t.Errorf("aggregate RxPackets = %d, want %d", agg.RxPackets, clients*packetsPerClient)
	}
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("shard-c%d", i)
		st, err := d.ClientStats(id)
		if err != nil {
			t.Errorf("ClientStats(%s): %v", id, err)
			continue
		}
		if st.RxPackets != packetsPerClient {
			t.Errorf("ClientStats(%s).RxPackets = %d, want %d", id, st.RxPackets, packetsPerClient)
		}
	}
}

// TestClientStatsPublicAPI exercises the per-session counters end to end:
// accepted, dropped and echoed traffic all show up in the right fields.
func TestClientStatsPublicAPI(t *testing.T) {
	ctx := context.Background()
	d, err := New(WithEchoNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli, err := d.AddClient(ctx, "stats", ClientSpec{
		Mode:        ModeSimulation,
		ClickConfig: "FromDevice -> IPFilter(drop dst host 203.0.113.9, allow all) -> ToDevice;",
	})
	if err != nil {
		t.Fatal(err)
	}

	ok := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("ok"))
	blocked := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(203, 0, 113, 9), 1, 2, []byte("no"))
	for i := 0; i < 3; i++ {
		if err := cli.SendPacket(ok); err != nil {
			t.Fatal(err)
		}
	}
	_ = cli.SendPacket(blocked) // dropped inside the client's enclave, never reaches the server

	st, err := d.ClientStats("stats")
	if err != nil {
		t.Fatal(err)
	}
	if st.RxPackets != 3 {
		t.Errorf("RxPackets = %d, want 3", st.RxPackets)
	}
	if st.TxPackets != 3 { // echoes back to the client
		t.Errorf("TxPackets = %d, want 3 (echo)", st.TxPackets)
	}
	if st.RxBytes == 0 || st.TxBytes == 0 {
		t.Errorf("byte counters empty: %+v", st)
	}

	if _, err := d.ClientStats("nobody"); err == nil {
		t.Error("ClientStats for unknown client succeeded")
	}
}

// TestMonolithicBaseline pins Shards to 1 — the pre-dataplane single-lock
// table — and demands identical behaviour, so the ablation benchmarks
// compare equals.
func TestMonolithicBaseline(t *testing.T) {
	ctx := context.Background()
	d, err := New(WithShards(1), WithEchoNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Server.VPN().ShardCount(); got != 1 {
		t.Fatalf("ShardCount = %d, want 1", got)
	}
	cli, err := d.AddClient(ctx, "mono", ClientSpec{Mode: ModeSimulation, UseCase: UseCaseFW})
	if err != nil {
		t.Fatal(err)
	}
	pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 40000, 80, []byte("x"))
	if err := cli.SendPacket(pkt); err != nil {
		t.Fatal(err)
	}
	st, err := d.ClientStats("mono")
	if err != nil {
		t.Fatal(err)
	}
	if st.RxPackets != 1 {
		t.Errorf("RxPackets = %d, want 1", st.RxPackets)
	}
}

// captureTransport wraps the in-process transport so a test can divert
// server->client frames into a buffer instead of delivering them — the
// only way to hold a sealed burst in hand.
type captureTransport struct {
	Transport

	mu      sync.Mutex
	capture bool
	frames  [][]byte
}

func (c *captureTransport) SendToClient(clientID string, frame []byte) error {
	c.mu.Lock()
	if c.capture {
		c.frames = append(c.frames, append([]byte(nil), frame...))
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	return c.Transport.SendToClient(clientID, frame)
}

func (c *captureTransport) take() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	frames := c.frames
	c.frames = nil
	return frames
}

// TestHandleFramesBatchIngress drives the batched ingress path end to end:
// a burst of genuinely sealed server->client frames opened through
// HandleFrames, with ecall accounting proving the whole burst crossed the
// enclave boundary exactly once.
func TestHandleFramesBatchIngress(t *testing.T) {
	ctx := context.Background()
	ct := &captureTransport{Transport: NewInProcessTransport()}
	var received int
	var mu sync.Mutex
	d, err := New(
		WithTransport(ct),
		WithObserver(ObserverFuncs{
			OnReceived: func(string, []byte) { mu.Lock(); received++; mu.Unlock() },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli, err := d.AddClient(ctx, "batch-in", ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP})
	if err != nil {
		t.Fatal(err)
	}

	const burst = 16
	ct.mu.Lock()
	ct.capture = true
	ct.mu.Unlock()
	for i := 0; i < burst; i++ {
		ip := packet.NewUDP(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 8, 0, 2),
			80, 40000, []byte(fmt.Sprintf("burst-%02d", i)))
		if err := d.Server.VPN().SendTo("batch-in", ip, false); err != nil {
			t.Fatal(err)
		}
	}
	frames := ct.take()
	if len(frames) != burst {
		t.Fatalf("captured %d frames, want %d", len(frames), burst)
	}

	before := cli.EnclaveStats().Ecalls
	handled, err := cli.HandleFrames(frames)
	if err != nil {
		t.Fatalf("HandleFrames: %v", err)
	}
	after := cli.EnclaveStats().Ecalls
	if handled != burst {
		t.Errorf("handled = %d, want %d", handled, burst)
	}
	if got := after - before; got != 1 {
		t.Errorf("batched ingress used %d ecalls for %d frames, want 1", got, burst)
	}
	mu.Lock()
	defer mu.Unlock()
	if received != burst {
		t.Errorf("applications received %d packets, want %d", received, burst)
	}
}
