package endbox

// One testing.B benchmark per table and figure of the paper's evaluation
// (§V). Each iteration regenerates the full artefact; the headline numbers
// are attached with b.ReportMetric so `go test -bench` output captures the
// reproduced shape. The cmd/endbox-bench tool prints the full tables.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"endbox/internal/bench"
	"endbox/internal/packet"
)

// sharedModel caches the calibration across benchmarks.
var sharedModel *bench.CostModel

func costModel(b *testing.B) *bench.CostModel {
	b.Helper()
	if sharedModel == nil {
		m, err := bench.Calibrate()
		if err != nil {
			b.Fatal(err)
		}
		sharedModel = m
	}
	return sharedModel
}

// cellMbps parses a throughput cell such as "412 Mbps" or "1.50 Gbps".
func cellMbps(b *testing.B, cell string) float64 {
	b.Helper()
	fields := strings.Fields(cell)
	if len(fields) != 2 {
		b.Fatalf("bad throughput cell %q", cell)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		b.Fatalf("bad throughput cell %q: %v", cell, err)
	}
	if fields[1] == "Gbps" {
		v *= 1000
	}
	return v
}

// cellMs parses a latency cell such as "11.5 ms" or "1.234 ms".
func cellMs(b *testing.B, cell string) float64 {
	b.Helper()
	fields := strings.Fields(cell)
	if len(fields) != 2 {
		b.Fatalf("bad latency cell %q", cell)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		b.Fatalf("bad latency cell %q: %v", cell, err)
	}
	return v
}

// BenchmarkFig6PageLoadCDF regenerates the page-load CDF (paper Fig. 6).
func BenchmarkFig6PageLoadCDF(b *testing.B) {
	m := costModel(b)
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig6(m)
		if err != nil {
			b.Fatal(err)
		}
		// Median gap between the two CDFs is the headline: ~0.
		_ = tab
	}
}

// BenchmarkFig7RedirectRTT regenerates the redirection RTT comparison
// (paper Fig. 7).
func BenchmarkFig7RedirectRTT(b *testing.B) {
	m := costModel(b)
	var endboxRTT, directRTT float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig7(m)
		if err != nil {
			b.Fatal(err)
		}
		directRTT = cellMs(b, tab.Rows[0][1])
		endboxRTT = cellMs(b, tab.Rows[2][1])
	}
	b.ReportMetric(directRTT, "direct-ms")
	b.ReportMetric(endboxRTT, "endbox-ms")
}

// BenchmarkFig8ThroughputPacketSize regenerates the packet-size throughput
// sweep (paper Fig. 8).
func BenchmarkFig8ThroughputPacketSize(b *testing.B) {
	var vanilla1500, sgx1500 float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig8(500)
		if err != nil {
			b.Fatal(err)
		}
		// Column 3 is the 1500-byte point (after the setup label).
		vanilla1500 = cellMbps(b, tab.Rows[0][3])
		sgx1500 = cellMbps(b, tab.Rows[3][3])
	}
	b.ReportMetric(vanilla1500, "vanilla-1500B-Mbps")
	b.ReportMetric(sgx1500, "endbox-sgx-1500B-Mbps")
}

// BenchmarkFig9UseCaseThroughput regenerates the per-use-case throughput
// comparison (paper Fig. 9).
func BenchmarkFig9UseCaseThroughput(b *testing.B) {
	var ebNOP, ebIDPS float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig9(500)
		if err != nil {
			b.Fatal(err)
		}
		ebNOP = cellMbps(b, tab.Rows[1][1])
		ebIDPS = cellMbps(b, tab.Rows[1][4])
	}
	b.ReportMetric(ebNOP, "endbox-NOP-Mbps")
	b.ReportMetric(ebIDPS, "endbox-IDPS-Mbps")
}

// BenchmarkFig10aScalabilityNOP regenerates the NOP scalability sweep
// (paper Fig. 10a) under the paper-derived cost model.
func BenchmarkFig10aScalabilityNOP(b *testing.B) {
	m := bench.PaperCostModel()
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = bench.Fig10a(m, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cellMbps(b, last[1])/1000, "vanilla-60c-Gbps")
	b.ReportMetric(cellMbps(b, last[3])/1000, "endbox-60c-Gbps")
	b.ReportMetric(cellMbps(b, last[7])/1000, "openvpn+click-60c-Gbps")
}

// BenchmarkFig10bScalabilityUseCases regenerates the per-use-case
// scalability sweep (paper Fig. 10b), whose headline is the 2.6x-3.8x
// speed-up of EndBox over the centralised deployment.
func BenchmarkFig10bScalabilityUseCases(b *testing.B) {
	m := bench.PaperCostModel()
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = bench.Fig10b(m, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	// Columns alternate EB/OVC per use case; IDPS is the 4th use case.
	ebIDPS := cellMbps(b, last[7])
	ovcIDPS := cellMbps(b, last[8])
	b.ReportMetric(ebIDPS/ovcIDPS, "IDPS-speedup-x")
}

// BenchmarkTable1HTTPSLatency regenerates the HTTPS GET latency matrix
// (paper Table I).
func BenchmarkTable1HTTPSLatency(b *testing.B) {
	var withDec, vanilla float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table1(20)
		if err != nil {
			b.Fatal(err)
		}
		withDec = cellMs(b, tab.Rows[0][1])
		vanilla = cellMs(b, tab.Rows[2][1])
	}
	b.ReportMetric(withDec, "with-dec-4K-ms")
	b.ReportMetric(vanilla, "vanilla-4K-ms")
}

// BenchmarkTable2ReconfigPhases regenerates the reconfiguration phase
// breakdown (paper Table II).
func BenchmarkTable2ReconfigPhases(b *testing.B) {
	var endboxSwap, vanillaSwap float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.Table2(100)
		if err != nil {
			b.Fatal(err)
		}
		vanillaSwap = cellMs(b, tab.Rows[2][1])
		endboxSwap = cellMs(b, tab.Rows[2][2])
	}
	b.ReportMetric(endboxSwap, "endbox-hotswap-ms")
	b.ReportMetric(vanillaSwap, "vanilla-hotswap-ms")
}

// BenchmarkFig11UpdateLatency regenerates the ping-loss-during-update
// experiment (paper Fig. 11).
func BenchmarkFig11UpdateLatency(b *testing.B) {
	lost := 0
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		lost = 0
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if cell == "lost" {
					lost++
				}
			}
		}
	}
	b.ReportMetric(float64(lost), "lost-pings")
}

// BenchmarkOptEnclaveTransitions regenerates the ecall-batching ablation
// (paper §V-G: +342% throughput).
func BenchmarkOptEnclaveTransitions(b *testing.B) {
	var batched, naive float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.OptTransitions(500)
		if err != nil {
			b.Fatal(err)
		}
		batched = cellMbps(b, tab.Rows[0][2])
		naive = cellMbps(b, tab.Rows[1][2])
	}
	b.ReportMetric(batched/naive, "batching-speedup-x")
}

// BenchmarkOptISPIntegrityOnly regenerates the ISP traffic-protection
// ablation (paper §V-G: +11% throughput).
func BenchmarkOptISPIntegrityOnly(b *testing.B) {
	var enc, auth float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.OptISP(500)
		if err != nil {
			b.Fatal(err)
		}
		enc = cellMbps(b, tab.Rows[0][1])
		auth = cellMbps(b, tab.Rows[1][1])
	}
	b.ReportMetric(auth/enc, "integrity-only-speedup-x")
}

// BenchmarkOptClientToClient regenerates the 0xeb-flagging ablation
// (paper §V-G: up to -13% latency for IDPS).
func BenchmarkOptClientToClient(b *testing.B) {
	var flagged, unflagged float64
	for i := 0; i < b.N; i++ {
		tab, err := bench.OptC2C(100)
		if err != nil {
			b.Fatal(err)
		}
		flagged = cellUs(b, tab.Rows[0][1])
		unflagged = cellUs(b, tab.Rows[1][1])
	}
	b.ReportMetric(flagged, "flagged-us")
	b.ReportMetric(unflagged, "unflagged-us")
}

func cellUs(b *testing.B, cell string) float64 {
	b.Helper()
	fields := strings.Fields(cell)
	if len(fields) != 2 {
		b.Fatalf("bad cell %q", cell)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

// BenchmarkUseCasePipelineLatency measures single-packet latency through
// each standard middlebox pipeline — a finer-grained companion to Fig. 9.
func BenchmarkUseCasePipelineLatency(b *testing.B) {
	for _, uc := range []UseCase{UseCaseNOP, UseCaseLB, UseCaseFW, UseCaseIDPS, UseCaseDDoS} {
		b.Run(fmt.Sprintf("%v", uc), func(b *testing.B) {
			d, err := New()
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			cli, err := d.AddClient(context.Background(), "bench", ClientSpec{Mode: ModeSimulation, UseCase: uc})
			if err != nil {
				b.Fatal(err)
			}
			pkt := testPacket(1500)
			b.ReportAllocs()
			b.SetBytes(1500)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.SendPacket(pkt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchSend compares the per-packet and batched send paths on a
// hardware-mode client, where each saved enclave transition is real time:
// SendPackets seals a whole burst in one ecall.
func BenchmarkBatchSend(b *testing.B) {
	const batchSize = 64
	for _, batched := range []bool{false, true} {
		name := "SendPacket"
		if batched {
			name = "SendPackets"
		}
		b.Run(name, func(b *testing.B) {
			d, err := New()
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			cli, err := d.AddClient(context.Background(), "bench", ClientSpec{
				Mode:    ModeHardware,
				BurnCPU: true,
				UseCase: UseCaseNOP,
			})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([][]byte, batchSize)
			for i := range batch {
				batch[i] = testPacket(1500)
			}
			b.ReportAllocs()
			b.SetBytes(batchSize * 1500)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batched {
					if _, err := cli.SendPackets(batch); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, pkt := range batch {
						if err := cli.SendPacket(pkt); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// testPacket builds a UDP datagram of the given on-wire size.
func testPacket(size int) []byte {
	raw, err := packet.PadToSize(
		packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(10, 8, 0, 1), 40000, 5201, size)
	if err != nil {
		panic(err)
	}
	return raw
}
