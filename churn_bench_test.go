package endbox

// Session-churn benchmarks for the lifecycle engine: the cost of one full
// client join/leave cycle (attestation, enrolment, VPN handshake) against
// the fast-resume path (one ticket open + signature check, no attestation,
// no key exchange). The gap between the two is the point of resumption
// tickets at million-client scale: a fleet restarting after a power event
// re-establishes sessions at the resume cost, not the cold cost.
// Committed baseline: BENCH_churn.json, gated in CI by cmd/benchgate.

import (
	"context"
	"testing"
)

func BenchmarkChurn(b *testing.B) {
	ctx := context.Background()
	spec := ClientSpec{Mode: ModeSimulation, UseCase: UseCaseNOP}

	// cold: AddClient + RemoveClient per iteration — quote, enrolment,
	// certificate walk, ECDH, plus enclave construction and teardown.
	b.Run("cold", func(b *testing.B) {
		d, err := New()
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.AddClient(ctx, "churn", spec); err != nil {
				b.Fatal(err)
			}
			d.RemoveClient("churn")
		}
	})

	// resume: ResumeClient per iteration from one snapshot — the enclave
	// is rebuilt from the sealed identity and the session from the
	// resumption ticket; each cycle replaces the previous incarnation, so
	// the loop is the reconnect-after-crash path in steady state.
	b.Run("resume", func(b *testing.B) {
		d, err := New(WithSessionTTL(0))
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		if _, err := d.AddClient(ctx, "churn", spec); err != nil {
			b.Fatal(err)
		}
		state, err := d.ResumeState("churn")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.ResumeClient(ctx, state, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
