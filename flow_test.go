package endbox

// End-to-end tests for the stateful flow engine: connection state
// surviving targeted rollouts on both transports, and the capacity-bound
// behaviour under a simulated SYN flood.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"endbox/internal/netsim"
	"endbox/internal/packet"
	"endbox/internal/vpn"
	"endbox/mbox"
)

var (
	flowCli = packet.AddrFrom(10, 8, 0, 2)
	flowSrv = packet.AddrFrom(192, 0, 2, 1)
)

func flowSeg(srcPort uint16, fromServer bool, seq, ack uint32, flags byte, payload []byte) []byte {
	if fromServer {
		return packet.NewTCP(flowSrv, flowCli, 80, srcPort, seq, ack, flags, payload)
	}
	return packet.NewTCP(flowCli, flowSrv, srcPort, 80, seq, ack, flags, payload)
}

// establish runs a full TCP handshake for cli's port srcPort through the
// deployment: SYN out, SYN|ACK in (via the server's VPN, waiting on the
// received channel for asynchronous transports), ACK out.
func establish(t *testing.T, d *Deployment, cli *Client, id string, srcPort uint16, received chan struct{}) {
	t.Helper()
	if err := cli.SendPacket(flowSeg(srcPort, false, 100, 0, packet.TCPSyn, nil)); err != nil {
		t.Fatalf("SYN: %v", err)
	}
	if err := d.Server.VPN().SendTo(id, flowSeg(srcPort, true, 300, 101, packet.TCPSyn|packet.TCPAck, nil), false); err != nil {
		t.Fatalf("SYN|ACK: %v", err)
	}
	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("SYN|ACK never reached the client")
	}
	if err := cli.SendPacket(flowSeg(srcPort, false, 101, 301, packet.TCPAck, nil)); err != nil {
		t.Fatalf("ACK: %v", err)
	}
}

// TestFlowStateSurvivesRollout is the rollout-survival acceptance test:
// an established TCP connection tracked by a strict ConnTrack pipeline
// keeps flowing across a targeted Deployment.Rollout, because flow state
// lives in the instance's flow table — which hot-swaps preserve — and the
// replacement element reclaims its predecessor's state by name. Runs over
// both the in-process and the UDP transport.
func TestFlowStateSurvivesRollout(t *testing.T) {
	run := func(t *testing.T, transport Transport) {
		ctx := context.Background()
		received := make(chan struct{}, 16)
		opts := []Option{
			WithFlowTable(1024, time.Minute),
			WithObserver(ObserverFuncs{
				OnReceived: func(string, []byte) { received <- struct{}{} },
			}),
		}
		if transport != nil {
			opts = append(opts, WithTransport(transport))
		}
		d, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()

		cli, err := d.AddClient(ctx, "ct-1", ClientSpec{
			Mode:     ModeSimulation,
			Pipeline: mbox.Chain(mbox.ConnTrack(mbox.ConnTrackOptions{})),
			Labels:   map[string]string{"ring": "canary"},
		})
		if err != nil {
			t.Fatal(err)
		}

		// Strict conntrack is live: midstream data with no handshake drops.
		if err := cli.SendPacket(flowSeg(39999, false, 5, 1, packet.TCPAck, []byte("mid"))); !errors.Is(err, vpn.ErrDropped) {
			t.Fatalf("midstream data not dropped: %v", err)
		}

		establish(t, d, cli, "ct-1", 40000, received)

		// Roll a new pipeline out to this client only; the ConnTrack stage
		// keeps its name, so it reclaims the live connection state.
		if _, err := d.Rollout(ctx, Rollout{
			Version:      1,
			GraceSeconds: 60,
			Pipeline: mbox.Chain(
				mbox.ConnTrack(mbox.ConnTrackOptions{}),
				mbox.Firewall("allow all"),
			),
			RuleSets: CommunityRuleSets(),
			Target:   Selector{Labels: map[string]string{"ring": "canary"}},
		}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for cli.AppliedVersion() != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("rollout never applied (err: %v)", cli.LastUpdateError())
			}
			time.Sleep(5 * time.Millisecond)
		}

		// The established connection keeps flowing through the new config...
		if err := cli.SendPacket(flowSeg(40000, false, 101, 301, packet.TCPAck, []byte("GET /"))); err != nil {
			t.Fatalf("established connection broken by rollout: %v", err)
		}
		// ...while fresh midstream flows still drop (strictness survived too).
		if err := cli.SendPacket(flowSeg(39998, false, 5, 1, packet.TCPAck, []byte("mid"))); !errors.Is(err, vpn.ErrDropped) {
			t.Fatalf("midstream data not dropped after rollout: %v", err)
		}

		// Management plane: the enclave's flow table reports the live state.
		fs, err := cli.FlowStats()
		if err != nil {
			t.Fatalf("FlowStats: %v", err)
		}
		if fs.Capacity != 1024 {
			t.Errorf("flow capacity = %d, want 1024 (WithFlowTable)", fs.Capacity)
		}
		if fs.Active == 0 {
			t.Error("no active flows after an established connection")
		}
		stats, err := cli.PipelineStats()
		if err != nil {
			t.Fatalf("PipelineStats: %v", err)
		}
		var found bool
		for _, es := range stats {
			if es.Name == "ct" {
				found = true
				if es.Flows == 0 {
					t.Error("ct holds no flow state after rollout (transplant lost)")
				}
			}
		}
		if !found {
			t.Error("no pipeline stats for ct")
		}
	}

	t.Run("inprocess", func(t *testing.T) { run(t, nil) })
	t.Run("udp", func(t *testing.T) { run(t, NewUDPTransport("127.0.0.1:0")) })
}

// TestSYNFloodBoundedEviction pins the capacity bound under attack: a
// seeded netsim SYN flood against a client with a small flow table must
// never push the table past its capacity, must recycle entries by
// evicting oldest-idle flows (the refreshed established connection
// survives), and must behave identically across runs with the same seed.
func TestSYNFloodBoundedEviction(t *testing.T) {
	const (
		capacity  = 256
		floodPkts = 2048
	)
	run := func(t *testing.T) FlowStats {
		ctx := context.Background()
		received := make(chan struct{}, 16)
		d, err := New(WithObserver(ObserverFuncs{
			OnReceived: func(string, []byte) { received <- struct{}{} },
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		cli, err := d.AddClient(ctx, "victim", ClientSpec{
			Mode:         ModeSimulation,
			Pipeline:     mbox.Chain(mbox.ConnTrack(mbox.ConnTrackOptions{})),
			FlowCapacity: capacity,
		})
		if err != nil {
			t.Fatal(err)
		}

		establish(t, d, cli, "victim", 40000, received)

		flood := netsim.NewSYNFlood(42, flowSrv, 80)
		for i := 0; i < floodPkts; i++ {
			if err := cli.SendPacket(flood.Next()); err != nil {
				t.Fatalf("flood packet %d rejected: %v", i, err)
			}
			if i%64 == 0 {
				// The legitimate connection stays active during the attack.
				if err := cli.SendPacket(flowSeg(40000, false, 101, 301, packet.TCPAck, []byte("keep"))); err != nil {
					t.Fatalf("established connection lost mid-flood at %d: %v", i, err)
				}
			}
			if i%128 == 0 {
				fs, err := cli.FlowStats()
				if err != nil {
					t.Fatal(err)
				}
				if fs.Active > capacity {
					t.Fatalf("flow table grew past capacity: %d > %d", fs.Active, capacity)
				}
			}
		}

		// The attack filled the table to exactly its bound and every
		// over-capacity insert evicted one oldest-idle flow — nothing grew.
		fs, err := cli.FlowStats()
		if err != nil {
			t.Fatal(err)
		}
		if fs.Active != capacity {
			t.Errorf("active = %d, want capacity %d", fs.Active, capacity)
		}
		if fs.Evicted == 0 || fs.Inserts-fs.Expired-fs.Evicted != fs.Active {
			t.Errorf("flow accounting broken: %+v", fs)
		}
		// The established flow survived the whole flood (oldest-idle
		// eviction spares refreshed flows).
		if err := cli.SendPacket(flowSeg(40000, false, 101, 301, packet.TCPAck, []byte("alive"))); err != nil {
			t.Errorf("established connection evicted by flood: %v", err)
		}
		return fs
	}

	a := run(t)
	b := run(t)
	if a != b {
		t.Errorf("same seed, different behaviour:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
	if testing.Verbose() {
		fmt.Printf("flood stats: %+v\n", a)
	}
}
