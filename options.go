package endbox

import (
	"time"
)

// Option configures a Deployment built with New. Options layer over the
// DeploymentOptions struct, so the two construction paths compose: an
// option is just a function mutating the struct.
type Option func(*DeploymentOptions)

// WithWireMode selects the data-channel protection: WireEncrypted (the
// enterprise default) or WireIntegrityOnly (the ISP opt-in, paper §IV-A).
func WithWireMode(m WireMode) Option {
	return func(o *DeploymentOptions) { o.Mode = m }
}

// WithEncryptedConfigs encrypts published configuration updates with the
// CA's shared key so only attested enclaves can read the rules (the
// enterprise scenario; the ISP scenario publishes plaintext).
func WithEncryptedConfigs() Option {
	return func(o *DeploymentOptions) { o.EncryptConfigs = true }
}

// WithServerUseCase attaches a server-side Click pipeline running the
// given use case — the OpenVPN+Click baseline the paper compares against.
func WithServerUseCase(u UseCase) Option {
	return func(o *DeploymentOptions) { o.ServerUseCase = u }
}

// WithClock sets the deployment-wide time source, letting tests and
// virtual-time experiments drive grace periods deterministically.
func WithClock(now func() time.Time) Option {
	return func(o *DeploymentOptions) { o.Clock = now }
}

// WithObserver installs the deployment's data-path observer. Repeated use
// composes: all observers receive every event.
func WithObserver(obs Observer) Option {
	return func(o *DeploymentOptions) {
		if o.Observer != nil {
			o.Observer = MultiObserver(o.Observer, obs)
			return
		}
		o.Observer = obs
	}
}

// WithTransport selects the transport carrying frames between the server
// and its clients (default: in-process direct calls).
func WithTransport(t Transport) Option {
	return func(o *DeploymentOptions) { o.Transport = t }
}

// WithShards sets the server session-table shard count. Session lookups
// and per-client statistics contend only within a shard, so frames from
// many clients proceed in parallel (the paper's §V scalability argument
// applied to the server's remaining work). The count rounds up to a power
// of two; the default (0) matches the CPU count; 1 reproduces the
// monolithic single-lock table as a baseline.
func WithShards(n int) Option {
	return func(o *DeploymentOptions) { o.Shards = n }
}

// WithUDPWorkers pipelines the UDP server's datagram ingress across n
// workers when the deployment's transport supports it (the in-process
// transport ignores it). Each client is pinned to one worker by the same
// hash that places it in a table shard, preserving per-client frame
// ordering while different clients' frames proceed in parallel.
func WithUDPWorkers(n int) Option {
	return func(o *DeploymentOptions) { o.UDPWorkers = n }
}

// WithRetransmit tunes the control-path ARQ layer of transports that
// support reliable delivery (the UDP transport; the in-process transport
// cannot lose messages and ignores it). The ARQ layer is on by default
// with sensible timers — use this option to tighten them for tests, widen
// them for high-latency links, or disable the layer entirely
// (RetransmitConfig{Disable: true}) to reproduce the fire-and-forget
// behaviour. Data-channel frames are never retransmitted: reliability is
// a control/configuration concern, and the zero-allocation data path is
// untouched. See docs/PROTOCOL.md for the ACK/retransmit state machines.
func WithRetransmit(cfg RetransmitConfig) Option {
	return func(o *DeploymentOptions) { o.Retransmit = cfg }
}

// WithLossProfile injects deterministic, seeded impairment — drops,
// duplicates, reorders — into every control-path datagram a supporting
// transport sends, in both directions. It exists so loss-tolerance tests
// are reproducible: the same seed impairs the same datagrams every run,
// and the ARQ layer (WithRetransmit) must recover. A zero profile impairs
// nothing. Data frames bypass the profile along with the ARQ layer.
func WithLossProfile(p LossProfile) Option {
	return func(o *DeploymentOptions) { o.LossProfile = p }
}

// WithFlowTable sizes every client enclave's flow-state table: capacity
// is the bound on concurrently tracked flows (past it the oldest-idle
// flow is evicted deterministically — a SYN flood recycles entries
// instead of growing the heap), ttl the idle timeout after which flows
// expire. Zero values keep the defaults (16384 flows, 2 minutes).
// ClientSpec.FlowCapacity/FlowTTL override per client.
func WithFlowTable(capacity int, ttl time.Duration) Option {
	return func(o *DeploymentOptions) {
		o.FlowCapacity = capacity
		o.FlowTTL = ttl
	}
}

// WithEchoNetwork makes the managed network reflect delivered packets back
// to the sending client (src/dst swapped, ICMP echoes answered) —
// modelling a server answering, used by latency measurements and demos.
func WithEchoNetwork() Option {
	return func(o *DeploymentOptions) { o.EchoNetwork = true }
}

// WithClientRouting relays packets addressed to another connected client's
// tunnel address, preserving the 0xeb processed flag (paper §IV-A
// client-to-client communication).
func WithClientRouting() Option {
	return func(o *DeploymentOptions) { o.RouteBetweenClients = true }
}

// WithSessionTTL enables liveness-driven session eviction: a client whose
// frames and keepalive answers stop arriving for ttl is swept, its VPN
// session torn down and its virtual-interface address reclaimed for reuse.
// A background sweeper runs every ttl/4 (override with WithSweepInterval).
// Zero disables eviction — sessions live until RemoveClient, the pre-v1
// behaviour. Evicted clients can reconnect (full handshake) or resume
// (Deployment.ResumeClient) at any time.
func WithSessionTTL(ttl time.Duration) Option {
	return func(o *DeploymentOptions) { o.SessionTTL = ttl }
}

// WithSweepInterval overrides the eviction sweeper's cadence (default
// SessionTTL/4). A negative interval disables the background goroutine so
// tests with fake clocks can drive Deployment.SweepSessions manually.
func WithSweepInterval(interval time.Duration) Option {
	return func(o *DeploymentOptions) { o.SweepInterval = interval }
}

// WithAdmission enables handshake admission control: a token bucket on
// handshake starts, a cap on concurrently in-flight handshakes, and a hard
// bound on total sessions — all enforced before any expensive asymmetric
// crypto runs, so a connect storm is refused cheaply instead of collapsing
// the server (typed errors ErrAdmissionThrottled / ErrServerFull). The
// zero config disables admission entirely; zero-valued fields within a
// non-zero config leave that particular limit unenforced.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(o *DeploymentOptions) { o.Admission = cfg }
}

// WithFailurePolicy tunes element fault containment: the number of
// recovered panics that quarantines an element (default 3) and whether a
// quarantined stage fails closed (drop, the default — an IDPS that cannot
// inspect must not forward) or open (bypass, for functions whose absence
// is safer than a blackhole, e.g. a NOP accounting stage). Containment
// itself is always on under this option.
func WithFailurePolicy(p FailurePolicy) Option {
	return func(o *DeploymentOptions) { o.FailurePolicy = p }
}

// WithoutContainment disables element fault containment entirely: an
// element panic propagates out of the enclave ecall and crashes the
// process, the pre-robustness behaviour. Meant for debugging pipelines
// under development, where a loud crash beats a quarantine.
func WithoutContainment() Option {
	return func(o *DeploymentOptions) { o.DisableContainment = true }
}

// WithPolicy attaches an attested-identity policy registry to the
// deployment: registered builds may enrol (Deployment.RegisterBuild names
// new ones), rollout selectors gain Measurements/MinBuild predicates
// resolved against the registry, and Policy.Revoke (or
// Deployment.RevokeBuild) propagates live — new handshakes and resumes
// from the revoked build are refused before any crypto, and its live
// sessions are evicted (RevocationObserver.SessionRevoked fires).
func WithPolicy(p *Policy) Option {
	return func(o *DeploymentOptions) { o.Policy = p }
}

// WithSealToMeasurement opts targeted rollouts into measurement-sealed
// update blobs: when a rollout's selector names exactly one measurement,
// the update is encrypted under that build's CA-derived key, making it
// cryptographically unopenable by every other build — clients of other
// builds fail with ErrSealedToOtherBuild and keep their last-known-good
// configuration.
func WithSealToMeasurement() Option {
	return func(o *DeploymentOptions) { o.SealToMeasurement = true }
}

// WithTicketTTL bounds the age of resumption tickets accepted by fast
// resume (see Deployment.ResumeClient). Zero accepts any ticket sealed
// under the server's in-memory ticket key — which a server restart
// discards, so tickets never outlive the process either way.
func WithTicketTTL(ttl time.Duration) Option {
	return func(o *DeploymentOptions) { o.TicketTTL = ttl }
}
