package flow

import (
	"testing"
	"time"

	"endbox/internal/packet"
)

// BenchmarkFlowTable pins the flow engine's core costs (gated by
// cmd/benchgate against BENCH_flow.json): steady-state lookup of a live
// flow, and insert with entry recycling through the churn path. Both must
// stay at 0 allocs/op.
func BenchmarkFlowTable(b *testing.B) {
	b.Run("lookup", func(b *testing.B) {
		clk := newFakeClock()
		c := NewContext(clk.Config(4096, time.Minute))
		flows := make([]packet.Flow, 1024)
		for i := range flows {
			flows[i] = tuple("10.1.0.1", "10.0.0.1", uint16(i), uint16(80+i%13), packet.ProtoTCP)
			c.Bind(flows[i], 60)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Bind(flows[i&1023], 60)
		}
	})
	b.Run("insert", func(b *testing.B) {
		clk := newFakeClock()
		c := NewContext(clk.Config(1024, time.Minute))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Distinct tuples force inserts; at capacity every insert
			// recycles an evicted entry — the steady churn state.
			f := tuple("10.1.0.1", "10.0.0.1", uint16(i), uint16(i>>16), packet.ProtoTCP)
			clk.Advance(time.Microsecond)
			c.Bind(f, 60)
		}
	})
}
