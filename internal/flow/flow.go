// Package flow is EndBox's in-enclave flow-state engine: a 5-tuple flow
// table that turns the stateless Click elements of the paper's evaluation
// into connection-tracking middlebox functions (firewall, NAT, per-flow
// shaping, stream reassembly) without giving up the data path's
// zero-allocation discipline.
//
// The design follows LightBox's argument (PAPERS.md) that efficient flow
// lookup is what makes stateful in-enclave middleboxing viable at line
// rate:
//
//   - Lookup is robin-hood open addressing over a power-of-two slot array
//     at ≤50% load, keyed by a precomputed splitmix64 hash of the
//     canonical 5-tuple. Probe chains stay short and branch-predictable;
//     deletion is backward-shift, so there are no tombstones.
//   - Entries are pooled (free list backed by sync.Pool) and expiry is a
//     256-bucket timing wheel swept incrementally from the packet path,
//     so steady-state lookup/insert/expire allocate nothing and never
//     scan the table.
//   - The table is capacity-bounded with deterministic oldest-idle
//     eviction: a SYN flood recycles the least-recently-active entries in
//     a fixed order instead of growing the heap.
//
// Elements attach typed per-flow state through named slots: RegisterSlot
// returns a stable index into each Entry's slot array plus a release hook
// that runs when the flow leaves the table, which is how element state
// pools recover their objects. Slots are registered by name so a
// hot-swapped element reclaims its predecessor's slot (and its live
// per-flow state) instead of leaking it.
package flow

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"time"

	"endbox/internal/packet"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultCapacity bounds the table at 16Ki concurrent flows — small
	// enough for enclave memory budgets (paper §V-D: EPC pressure), large
	// enough for a client machine's connection load.
	DefaultCapacity = 16384
	// DefaultTTL idles flows out after two minutes without traffic.
	DefaultTTL = 2 * time.Minute
)

// Config sizes a flow Context.
type Config struct {
	// Capacity is the maximum number of concurrently tracked flows.
	// Inserting past it evicts the oldest-idle flow. 0 means
	// DefaultCapacity.
	Capacity int
	// TTL is how long a flow may stay idle before expiring. 0 means
	// DefaultTTL.
	TTL time.Duration
	// Now is the time source used for expiry. Nil means time.Now. Expiry
	// only ever needs monotonic-ish time, so the cheap untrusted clock is
	// the right source even inside an enclave.
	Now func() time.Time
	// Seed perturbs the table hash so an attacker cannot precompute
	// colliding 5-tuples. Production paths must set it to RandomSeed();
	// 0 derives a fixed seed, acceptable only for deterministic tests.
	Seed uint64
}

// RandomSeed draws a hash seed from crypto/rand, giving each table an
// unpredictable 5-tuple hash: the hash-flood defense Config.Seed
// documents only exists when the seed is secret. On the (never observed)
// failure of the system entropy source it returns 0, degrading to the
// fixed deterministic seed rather than refusing service.
func RandomSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	return c
}

// Slot indexes one element kind's per-flow state inside every Entry.
// Obtain one with Context.RegisterSlot.
type Slot int

// Stats is a point-in-time snapshot of a flow table's counters, exported
// through the enclave's flow_stats ecall (Client.FlowStats).
type Stats struct {
	// Active is the number of currently tracked flows.
	Active uint64
	// Capacity is the configured flow limit.
	Capacity uint64
	// Lookups counts Bind calls; Hits the ones that found a live flow.
	Lookups uint64
	Hits    uint64
	// Inserts counts flows created.
	Inserts uint64
	// Expired counts flows idled out by the TTL wheel.
	Expired uint64
	// Evicted counts flows removed to make room at capacity.
	Evicted uint64
}

// Context is the flow-state service handed to elements through
// click.Context. One Context (and its table) is shared by every element
// of a router instance and survives configuration hot-swaps, which is how
// established connections stay established across a Rollout.
//
// The packet path (Bind) is single-threaded by the router's contract;
// RegisterSlot happens at element Configure time, which the router also
// serialises. Stats may be read concurrently.
type Context struct {
	cfg   Config
	table *table

	slotNames []string
	releases  []func(any)
}

// NewContext builds a flow service. The table itself is allocated lazily
// on the first Bind, so contexts created for validation-only routers
// (pipeline compile checks) cost nothing.
func NewContext(cfg Config) *Context {
	return &Context{cfg: cfg.withDefaults()}
}

// Capacity returns the configured flow limit.
func (c *Context) Capacity() int { return c.cfg.Capacity }

// TTL returns the configured idle timeout.
func (c *Context) TTL() time.Duration { return c.cfg.TTL }

// RegisterSlot claims the per-flow state slot for the given name,
// creating it on first use. The release hook runs whenever a flow
// carrying non-nil state in this slot leaves the table (expiry, eviction,
// overwrite via Remove) — elements use it to return state to their pools
// and decrement their live-flow counters.
//
// Registration is idempotent by name: a hot-swapped element re-registers
// and receives the same Slot index, and the hook is replaced so releases
// after the swap are delivered to the new element instance.
func (c *Context) RegisterSlot(name string, release func(any)) (Slot, error) {
	for i, n := range c.slotNames {
		if n == name {
			c.releases[i] = release
			return Slot(i), nil
		}
	}
	if len(c.slotNames) >= MaxSlots {
		return 0, fmt.Errorf("flow: all %d state slots in use (wanted %q)", MaxSlots, name)
	}
	c.slotNames = append(c.slotNames, name)
	c.releases = append(c.releases, release)
	return Slot(len(c.slotNames) - 1), nil
}

// releaseEntry runs the registered hooks for every occupied slot.
func (c *Context) releaseEntry(e *Entry) {
	for i := range c.releases {
		if v := e.slots[i]; v != nil {
			if rel := c.releases[i]; rel != nil {
				rel(v)
			}
			e.slots[i] = nil
		}
	}
}

func (c *Context) ensureTable() *table {
	if c.table == nil {
		c.table = newTable(c.cfg.Capacity, c.cfg.TTL.Nanoseconds(), c.cfg.Seed, c.releaseEntry)
	}
	return c.table
}

// Bind resolves a packet's 5-tuple to its flow entry, creating the flow
// on first sight (evicting the oldest-idle flow if at capacity), and
// returns the packet's direction relative to the flow's initiator. It
// refreshes the idle deadline, advances the expiry wheel, and counts the
// packet's size in the per-direction counters. Zero allocations at steady
// state.
func (c *Context) Bind(f packet.Flow, size int) (*Entry, Dir) {
	t := c.ensureTable()
	now := c.cfg.Now().UnixNano()
	k, lo := KeyOf(f)
	e, _ := t.bind(k, lo, now)
	d := Fwd
	if lo != e.origLo {
		d = Rev
	}
	e.pkts[d]++
	e.bytes[d] += uint64(size)
	return e, d
}

// Lookup finds a live flow without creating, touching, or counting it.
func (c *Context) Lookup(f packet.Flow) (*Entry, bool) {
	if c.table == nil {
		return nil, false
	}
	k, _ := KeyOf(f)
	e := c.table.find(k)
	return e, e != nil
}

// Remove deletes a flow immediately, running slot release hooks.
func (c *Context) Remove(f packet.Flow) bool {
	if c.table == nil {
		return false
	}
	k, _ := KeyOf(f)
	if e := c.table.find(k); e != nil {
		c.table.drop(e)
		return true
	}
	return false
}

// Expire sweeps the wheel up to the context's current time, idling out
// flows whose TTL passed — what the packet path does implicitly on every
// Bind, exposed for quiescent periods and tests.
func (c *Context) Expire() {
	if c.table == nil {
		return
	}
	c.table.advance(c.cfg.Now().UnixNano())
}

// Active returns the number of currently tracked flows.
func (c *Context) Active() int {
	if c.table == nil {
		return 0
	}
	return int(c.table.active.Load())
}

// Stats snapshots the table counters. Safe to call concurrently with the
// packet path.
func (c *Context) Stats() Stats {
	s := Stats{Capacity: uint64(c.cfg.Capacity)}
	if t := c.table; t != nil {
		s.Active = t.active.Load()
		s.Lookups = t.lookups.Load()
		s.Hits = t.hits.Load()
		s.Inserts = t.inserts.Load()
		s.Expired = t.expired.Load()
		s.Evicted = t.evicted.Load()
	}
	return s
}

// TableSize reports the allocated slot-array length (0 before first use)
// — diagnostics for tests asserting the ≤50% load factor.
func (c *Context) TableSize() int {
	if c.table == nil {
		return 0
	}
	return len(c.table.slots)
}
