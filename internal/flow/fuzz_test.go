package flow

import (
	"bytes"
	"testing"
)

// FuzzKeyCodec checks the 13-byte key codec invariants on arbitrary
// input: DecodeKey either rejects, or returns a canonical key whose
// re-encoding is byte-identical to the input (decode∘encode = id), and
// encoding any decoded key round-trips through DecodeKey.
func FuzzKeyCodec(f *testing.F) {
	f.Add([]byte{10, 0, 0, 1, 10, 0, 0, 2, 0, 80, 156, 64, 6})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 1, 255, 255, 0, 0, 17})
	f.Add(bytes.Repeat([]byte{0xaa}, KeySize))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeKey(data)
		if err != nil {
			return
		}
		if len(data) != KeySize {
			t.Fatalf("accepted %d-byte encoding", len(data))
		}
		var out [KeySize]byte
		k.Encode(out[:])
		if !bytes.Equal(out[:], data) {
			t.Fatalf("decode∘encode not identity: %x -> %v -> %x", data, k, out)
		}
		k2, err := DecodeKey(out[:])
		if err != nil || k2 != k {
			t.Fatalf("re-decode failed: %v %v", k2, err)
		}
		if !loFirst(k.LoAddr, k.LoPort, k.HiAddr, k.HiPort) {
			t.Fatalf("decoded key not canonical: %v", k)
		}
		// The hash must be deterministic and never the empty-slot marker.
		if k.hash(1) != k.hash(1) || k.hash(1) == 0 {
			t.Fatal("hash unstable or zero")
		}
	})
}
