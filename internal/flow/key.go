package flow

import (
	"fmt"

	"endbox/internal/packet"
)

// Key is the canonical 5-tuple identifying one bidirectional flow. Both
// directions of a connection map to the same Key: the (address, port)
// endpoint pair is stored in a fixed order (lowest endpoint first), and
// the direction of a concrete packet relative to the flow is recovered
// separately (Dir). Keys are comparable values, so they can be hashed and
// compared without touching the packet again.
type Key struct {
	// LoAddr/LoPort and HiAddr/HiPort are the two endpoints in canonical
	// order: the endpoint with the numerically smaller (address, port)
	// pair is "lo".
	LoAddr, HiAddr packet.Addr
	LoPort, HiPort uint16
	// Proto is the IP protocol number (TCP, UDP, ICMP, ...).
	Proto uint8
}

// KeySize is the length of a Key's wire encoding: two addresses, two
// ports, one protocol byte.
const KeySize = 13

// Dir is a packet's direction relative to its flow: Fwd packets travel in
// the direction of the flow's first-seen (initiating) packet, Rev packets
// travel the opposite way.
type Dir uint8

// Packet directions relative to the flow initiator.
const (
	Fwd Dir = iota
	Rev
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Fwd {
		return "fwd"
	}
	return "rev"
}

// loFirst reports whether endpoint (a1, p1) sorts at or before (a2, p2)
// in the canonical endpoint order.
func loFirst(a1 packet.Addr, p1 uint16, a2 packet.Addr, p2 uint16) bool {
	u1, u2 := a1.Uint32(), a2.Uint32()
	if u1 != u2 {
		return u1 < u2
	}
	return p1 <= p2
}

// KeyOf canonicalises a parsed 5-tuple. The boolean reports the packet's
// orientation: true when (Src, SrcPort) is the canonical "lo" endpoint.
// Orientation is an encoding detail — callers get a flow-relative Dir
// from Context.Bind, which compares orientations against the flow's
// first packet.
func KeyOf(f packet.Flow) (Key, bool) {
	if loFirst(f.Src, f.SrcPort, f.Dst, f.DstPort) {
		return Key{
			LoAddr: f.Src, HiAddr: f.Dst,
			LoPort: f.SrcPort, HiPort: f.DstPort,
			Proto: f.Protocol,
		}, true
	}
	return Key{
		LoAddr: f.Dst, HiAddr: f.Src,
		LoPort: f.DstPort, HiPort: f.SrcPort,
		Proto: f.Protocol,
	}, false
}

// Encode writes the key's 13-byte canonical encoding into dst, which must
// be at least KeySize bytes long. The encoding is deterministic and
// self-contained, so it doubles as the hashing input and as a stable
// format for diagnostics and fuzzing.
func (k Key) Encode(dst []byte) {
	_ = dst[KeySize-1]
	copy(dst[0:4], k.LoAddr[:])
	copy(dst[4:8], k.HiAddr[:])
	dst[8] = byte(k.LoPort >> 8)
	dst[9] = byte(k.LoPort)
	dst[10] = byte(k.HiPort >> 8)
	dst[11] = byte(k.HiPort)
	dst[12] = k.Proto
}

// DecodeKey parses a 13-byte encoding produced by Encode. It rejects
// inputs of the wrong length and non-canonical encodings (an endpoint
// pair in "hi, lo" order), so Encode∘DecodeKey is the identity on valid
// keys and DecodeKey∘Encode is the identity on valid encodings.
func DecodeKey(src []byte) (Key, error) {
	if len(src) != KeySize {
		return Key{}, fmt.Errorf("flow: key encoding must be %d bytes, got %d", KeySize, len(src))
	}
	var k Key
	copy(k.LoAddr[:], src[0:4])
	copy(k.HiAddr[:], src[4:8])
	k.LoPort = uint16(src[8])<<8 | uint16(src[9])
	k.HiPort = uint16(src[10])<<8 | uint16(src[11])
	k.Proto = src[12]
	if !loFirst(k.LoAddr, k.LoPort, k.HiAddr, k.HiPort) {
		return Key{}, fmt.Errorf("flow: non-canonical key encoding (endpoints out of order)")
	}
	return k, nil
}

// String renders the key for diagnostics.
func (k Key) String() string {
	return fmt.Sprintf("proto %d %s:%d<->%s:%d", k.Proto, k.LoAddr, k.LoPort, k.HiAddr, k.HiPort)
}

// hash mixes the key into a 64-bit table hash under the given seed. The
// two halves of the encoding are folded through a splitmix64 finalizer —
// cheap, alloc-free, and well distributed for open addressing. The result
// is never zero: zero marks an empty table slot.
func (k Key) hash(seed uint64) uint64 {
	a := uint64(k.LoAddr.Uint32())<<32 | uint64(k.HiAddr.Uint32())
	b := uint64(k.LoPort)<<32 | uint64(k.HiPort)<<16 | uint64(k.Proto)
	h := mix64(seed ^ mix64(a) ^ b)
	if h == 0 {
		h = 1
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
