package flow

import (
	"sync"
	"sync/atomic"
)

// MaxSlots is the number of per-flow state slots an Entry carries.
// Elements claim slots by name through Context.RegisterSlot; a pipeline
// can therefore run up to MaxSlots distinct stateful element kinds.
const MaxSlots = 8

// wheelBuckets is the timing-wheel size. The wheel tick is TTL/64, so the
// wheel spans 4×TTL of virtual time: live deadlines (at most TTL ahead)
// occupy at most a quarter of the wheel and never alias across laps.
const wheelBuckets = 256

const ttlTickShift = 6 // tick = TTL / 64

// Entry is one tracked flow. Entries are owned by the table: elements
// hold them only for the duration of one Push (via the packet annotation)
// and attach state through the slot API. All fields are maintained on the
// single-threaded packet path.
type Entry struct {
	key    Key
	hash   uint64
	origLo bool // orientation of the flow's first packet (true = lo→hi)

	// timing-wheel intrusive list
	wheelNext, wheelPrev *Entry
	wheelBucket          int32 // -1 when unlinked
	deadline             int64 // unix nanoseconds when the flow idles out

	firstSeen int64 // unix nanoseconds of the first packet
	lastSeen  int64

	pkts  [2]uint64 // packets per Dir
	bytes [2]uint64 // bytes per Dir

	slots [MaxSlots]any
}

// Key returns the flow's canonical 5-tuple.
func (e *Entry) Key() Key { return e.key }

// Packets returns the packet count seen in the given direction.
func (e *Entry) Packets(d Dir) uint64 { return e.pkts[d] }

// Bytes returns the byte count seen in the given direction.
func (e *Entry) Bytes(d Dir) uint64 { return e.bytes[d] }

// Get reads the per-flow state stored in a registered slot (nil when the
// owning element has not attached state to this flow yet).
func (e *Entry) Get(s Slot) any { return e.slots[s] }

// Set attaches per-flow state to a registered slot. The value is released
// through the slot's release hook when the flow expires, is evicted, or
// is overwritten.
func (e *Entry) Set(s Slot, v any) { e.slots[s] = v }

// tableSlot is one open-addressing position: the entry's hash is cached
// inline so probing never dereferences cold entries, and hash 0 marks an
// empty position (Key.hash never returns 0).
type tableSlot struct {
	hash uint64
	e    *Entry
}

// table is the robin-hood 5-tuple flow table with TTL-wheel expiry. It is
// single-threaded by contract — the click router that owns it serialises
// all packet processing — so lookups, inserts and the incremental expiry
// sweep run without locks and without allocating.
type table struct {
	slots []tableSlot
	mask  uint64
	seed  uint64

	capacity int
	ttl      int64 // nanoseconds
	tick     int64 // wheel tick, ttl>>ttlTickShift

	wheel     [wheelBuckets]*Entry
	wheelTail [wheelBuckets]*Entry
	cursor    int64 // last wheel tick swept

	freeList *Entry // recycled entries, linked through wheelNext
	freeLen  int
	pool     *sync.Pool

	// release runs the registered slot hooks when an entry leaves the
	// table (expiry, eviction, Remove).
	release func(*Entry)

	// counters are atomic only so management-plane readers (Stats) can
	// observe them without stopping traffic; the packet path is the sole
	// writer.
	active   atomic.Uint64
	lookups  atomic.Uint64
	hits     atomic.Uint64
	inserts  atomic.Uint64
	expired  atomic.Uint64
	evicted  atomic.Uint64
	searches atomic.Uint64 // total probe steps, for load diagnostics
}

func newTable(capacity int, ttlNanos int64, seed uint64, release func(*Entry)) *table {
	size := 1
	for size < capacity*2 {
		size <<= 1
	}
	tick := ttlNanos >> ttlTickShift
	if tick <= 0 {
		tick = 1
	}
	t := &table{
		slots:    make([]tableSlot, size),
		mask:     uint64(size - 1),
		seed:     seed,
		capacity: capacity,
		ttl:      ttlNanos,
		tick:     tick,
		cursor:   -1,
		release:  release,
		pool:     &sync.Pool{New: func() any { return new(Entry) }},
	}
	for i := range t.wheel {
		t.wheel[i] = nil
	}
	return t
}

// probeDist is how far a hash has been displaced from its home position.
func probeDist(hash, pos, mask uint64) uint64 {
	return (pos - hash) & mask
}

// lookup finds the live entry for a key, or nil.
func (t *table) lookup(k Key, h uint64) *Entry {
	i := h & t.mask
	var dist uint64
	for {
		s := &t.slots[i]
		if s.hash == 0 {
			return nil
		}
		if s.hash == h && s.e.key == k {
			return s.e
		}
		// Robin-hood invariant: every stored entry sits at least as far
		// from home as anything probing past it — once we out-distance a
		// resident, the key is absent.
		if probeDist(s.hash, i, t.mask) < dist {
			return nil
		}
		i = (i + 1) & t.mask
		dist++
	}
}

// insert places a new entry, displacing richer residents (robin hood).
// The caller has verified the key is absent and capacity is available.
func (t *table) insert(e *Entry) {
	h := e.hash
	i := h & t.mask
	cur := tableSlot{hash: h, e: e}
	var dist uint64
	for {
		s := &t.slots[i]
		if s.hash == 0 {
			*s = cur
			return
		}
		if d := probeDist(s.hash, i, t.mask); d < dist {
			cur, *s = *s, cur
			dist = d
		}
		i = (i + 1) & t.mask
		dist++
		t.searches.Add(1)
	}
}

// remove deletes the key's slot using backward-shift deletion, keeping
// probe sequences tight (no tombstones).
func (t *table) remove(k Key, h uint64) {
	i := h & t.mask
	var dist uint64
	for {
		s := &t.slots[i]
		if s.hash == 0 {
			return
		}
		if s.hash == h && s.e.key == k {
			break
		}
		if probeDist(s.hash, i, t.mask) < dist {
			return
		}
		i = (i + 1) & t.mask
		dist++
	}
	// Shift successors back until a hole or a home-positioned entry.
	for {
		next := (i + 1) & t.mask
		s := &t.slots[next]
		if s.hash == 0 || probeDist(s.hash, next, t.mask) == 0 {
			t.slots[i] = tableSlot{}
			return
		}
		t.slots[i] = *s
		i = next
	}
}

// bucketOf maps a deadline to its wheel bucket.
func (t *table) bucketOf(deadline int64) int32 {
	return int32((deadline / t.tick) & (wheelBuckets - 1))
}

// wheelLink prepends the entry to its deadline's bucket. Links happen in
// time order and deadline = linktime + TTL, so within a bucket the list
// runs newest (head) to oldest (tail): the tail is always the bucket's
// earliest deadline, which makes oldest-idle eviction O(1).
func (t *table) wheelLink(e *Entry) {
	b := t.bucketOf(e.deadline)
	e.wheelBucket = b
	e.wheelPrev = nil
	e.wheelNext = t.wheel[b]
	if e.wheelNext != nil {
		e.wheelNext.wheelPrev = e
	} else {
		t.wheelTail[b] = e
	}
	t.wheel[b] = e
}

func (t *table) wheelUnlink(e *Entry) {
	if e.wheelBucket < 0 {
		return
	}
	if e.wheelPrev != nil {
		e.wheelPrev.wheelNext = e.wheelNext
	} else {
		t.wheel[e.wheelBucket] = e.wheelNext
	}
	if e.wheelNext != nil {
		e.wheelNext.wheelPrev = e.wheelPrev
	} else {
		t.wheelTail[e.wheelBucket] = e.wheelPrev
	}
	e.wheelNext, e.wheelPrev = nil, nil
	e.wheelBucket = -1
}

// touch refreshes an entry's idle deadline and moves it to the head of
// its (possibly new) wheel bucket. Relinking even within the same bucket
// keeps every list in exact least-recently-seen order, so eviction picks
// the true oldest-idle flow even when many flows share one tick.
func (t *table) touch(e *Entry, now int64) {
	e.lastSeen = now
	t.wheelUnlink(e)
	e.deadline = now + t.ttl
	t.wheelLink(e)
}

// advance sweeps the wheel incrementally up to the current time, expiring
// idle flows. Each call processes only the buckets whose tick has passed
// since the previous call — on the steady state that is zero or one
// bucket — so expiry cost is amortised across the packet path, never a
// full-table scan.
//
// The cursor only moves past fully elapsed ticks. The current tick's
// bucket is swept too, but the cursor stays behind it: a deadline later
// in the still-running tick must be re-checked by a later advance, not
// stranded for a full wheel lap (4×TTL) because its bucket was marked
// done mid-tick. The current bucket only ever holds flows whose deadline
// falls within this tick, so the re-sweep touches at most the flows
// expiring right now.
func (t *table) advance(now int64) {
	nowTick := now / t.tick
	if t.cursor < 0 {
		t.cursor = nowTick - 1
	}
	if nowTick-t.cursor > wheelBuckets {
		// Clock jumped more than a full lap: every bucket needs one sweep.
		t.cursor = nowTick - wheelBuckets
	}
	for t.cursor < nowTick-1 {
		t.cursor++
		t.sweepBucket(t.cursor&(wheelBuckets-1), now)
	}
	t.sweepBucket(nowTick&(wheelBuckets-1), now)
}

// sweepBucket drops every entry in the bucket whose deadline has passed.
func (t *table) sweepBucket(b, now int64) {
	e := t.wheel[b]
	for e != nil {
		next := e.wheelNext
		if e.deadline <= now {
			t.expired.Add(1)
			t.drop(e)
		}
		e = next
	}
}

// evict removes the oldest-idle flow to make room, deterministically: the
// first non-empty bucket at or after the sweep cursor holds the earliest
// deadlines (all live deadlines fall within TTL of now, a quarter lap, so
// bucket order is deadline order), and that bucket's tail is its earliest
// deadline — the flow refreshed least recently. O(1) once the bucket is
// found, so a SYN flood pays a bounded, constant eviction cost per packet.
func (t *table) evict() {
	for off := int64(0); off < wheelBuckets; off++ {
		b := (t.cursor + 1 + off) & (wheelBuckets - 1)
		victim := t.wheelTail[b]
		if victim == nil {
			continue
		}
		t.evicted.Add(1)
		t.drop(victim)
		return
	}
}

// drop releases an entry: slot hooks run, the table slot is freed, and
// the entry returns to the free list for reuse.
func (t *table) drop(e *Entry) {
	t.wheelUnlink(e)
	t.remove(e.key, e.hash)
	if t.release != nil {
		t.release(e)
	}
	t.active.Add(^uint64(0))
	t.recycle(e)
}

func (t *table) recycle(e *Entry) {
	*e = Entry{wheelBucket: -1}
	if t.freeLen < t.capacity {
		e.wheelNext = t.freeList
		t.freeList = e
		t.freeLen++
		return
	}
	t.pool.Put(e)
}

func (t *table) newEntry() *Entry {
	if e := t.freeList; e != nil {
		t.freeList = e.wheelNext
		t.freeLen--
		e.wheelNext = nil
		return e
	}
	e := t.pool.Get().(*Entry)
	*e = Entry{wheelBucket: -1}
	return e
}

// bind looks the key up, inserting a fresh entry on miss (evicting the
// oldest-idle flow first when the table is at capacity). It refreshes the
// entry's idle deadline and reports whether the entry was created by this
// call. Zero allocations on the steady state: entries recycle through the
// free list.
func (t *table) bind(k Key, lo bool, now int64) (*Entry, bool) {
	t.advance(now)
	h := k.hash(t.seed)
	t.lookups.Add(1)
	if e := t.lookup(k, h); e != nil {
		t.hits.Add(1)
		t.touch(e, now)
		return e, false
	}
	if int(t.active.Load()) >= t.capacity {
		t.evict()
	}
	e := t.newEntry()
	e.key = k
	e.hash = h
	e.origLo = lo
	e.firstSeen = now
	e.lastSeen = now
	e.deadline = now + t.ttl
	t.insert(e)
	t.wheelLink(e)
	t.active.Add(1)
	t.inserts.Add(1)
	return e, true
}

// find is lookup without insertion or deadline refresh.
func (t *table) find(k Key) *Entry {
	return t.lookup(k, k.hash(t.seed))
}
