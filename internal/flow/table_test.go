package flow

import (
	"fmt"
	"testing"
	"time"

	"endbox/internal/packet"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) Set(t time.Time)         { c.now = t }
func (c *fakeClock) Config(cap int, ttl time.Duration) Config {
	return Config{Capacity: cap, TTL: ttl, Now: c.Now}
}

func tuple(a, b string, sp, dp uint16, proto uint8) packet.Flow {
	return packet.Flow{
		Src: packet.MustParseAddr(a), Dst: packet.MustParseAddr(b),
		SrcPort: sp, DstPort: dp, Protocol: proto,
	}
}

func TestKeyCanonical(t *testing.T) {
	f := tuple("10.0.0.2", "10.0.0.1", 40000, 80, packet.ProtoTCP)
	k1, lo1 := KeyOf(f)
	k2, lo2 := KeyOf(f.Reverse())
	if k1 != k2 {
		t.Fatalf("forward and reverse keys differ: %v vs %v", k1, k2)
	}
	if lo1 == lo2 {
		t.Fatalf("both orientations report the same side")
	}
	if k1.LoAddr != packet.MustParseAddr("10.0.0.1") {
		t.Errorf("lo endpoint not canonical: %v", k1)
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	keys := []packet.Flow{
		tuple("10.0.0.1", "10.0.0.2", 1, 2, packet.ProtoTCP),
		tuple("255.255.255.255", "0.0.0.1", 65535, 0, packet.ProtoUDP),
		tuple("10.0.0.1", "10.0.0.1", 80, 80, packet.ProtoICMP),
	}
	for _, f := range keys {
		k, _ := KeyOf(f)
		var buf [KeySize]byte
		k.Encode(buf[:])
		got, err := DecodeKey(buf[:])
		if err != nil {
			t.Fatalf("DecodeKey(%v): %v", k, err)
		}
		if got != k {
			t.Fatalf("roundtrip mismatch: %v -> %v", k, got)
		}
	}
	if _, err := DecodeKey(make([]byte, KeySize-1)); err == nil {
		t.Error("short encoding accepted")
	}
	// Non-canonical: hi endpoint first.
	var buf [KeySize]byte
	k, _ := KeyOf(tuple("10.0.0.1", "10.0.0.2", 1, 2, packet.ProtoTCP))
	k.LoAddr, k.HiAddr = k.HiAddr, k.LoAddr
	k.Encode(buf[:])
	if _, err := DecodeKey(buf[:]); err == nil {
		t.Error("non-canonical encoding accepted")
	}
}

func TestBindCreatesAndTracksDirections(t *testing.T) {
	clk := newFakeClock()
	c := NewContext(clk.Config(64, time.Minute))
	f := tuple("10.0.0.2", "10.0.0.1", 40000, 80, packet.ProtoTCP)

	e1, d1 := c.Bind(f, 100)
	if d1 != Fwd {
		t.Fatalf("first packet direction = %v, want fwd", d1)
	}
	e2, d2 := c.Bind(f.Reverse(), 200)
	if e1 != e2 {
		t.Fatal("reverse packet bound to a different flow")
	}
	if d2 != Rev {
		t.Fatalf("reply direction = %v, want rev", d2)
	}
	if e1.Packets(Fwd) != 1 || e1.Packets(Rev) != 1 {
		t.Errorf("packet counters = %d/%d, want 1/1", e1.Packets(Fwd), e1.Packets(Rev))
	}
	if e1.Bytes(Fwd) != 100 || e1.Bytes(Rev) != 200 {
		t.Errorf("byte counters = %d/%d, want 100/200", e1.Bytes(Fwd), e1.Bytes(Rev))
	}
	if got := c.Active(); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	c := NewContext(clk.Config(64, time.Minute))
	f := tuple("10.0.0.2", "10.0.0.1", 40000, 80, packet.ProtoUDP)
	c.Bind(f, 10)

	// Keep-alives inside the TTL keep the flow live.
	for i := 0; i < 5; i++ {
		clk.Advance(30 * time.Second)
		if _, ok := c.Lookup(f); !ok {
			t.Fatalf("flow expired despite keep-alive at step %d", i)
		}
		c.Bind(f, 10)
	}

	clk.Advance(61 * time.Second)
	c.Expire()
	if _, ok := c.Lookup(f); ok {
		t.Fatal("flow survived past its TTL")
	}
	s := c.Stats()
	if s.Expired != 1 || s.Active != 0 {
		t.Errorf("stats after expiry = %+v", s)
	}
}

// TestExpiryMidTickUnderTraffic pins the sweep-cursor contract: a flow
// whose deadline falls in the middle of a wheel tick must still expire
// within one tick of its TTL when every advance happens mid-tick (the
// common case — packets arrive at arbitrary phases). A cursor that marks
// the current bucket swept before its tick has fully elapsed would
// strand such flows for a whole wheel lap (4×TTL).
func TestExpiryMidTickUnderTraffic(t *testing.T) {
	clk := newFakeClock()
	const ttl = time.Minute
	tick := ttl >> ttlTickShift
	c := NewContext(clk.Config(64, ttl))

	keep := tuple("10.9.0.1", "10.0.0.1", 500, 80, packet.ProtoTCP)
	c.Bind(keep, 10)

	// Bind the idle flow a third of a tick later, so its deadline falls
	// mid-tick relative to the keep-alive traffic's phase.
	clk.Advance(tick / 3)
	idle := tuple("10.9.0.2", "10.0.0.1", 600, 80, packet.ProtoTCP)
	c.Bind(idle, 10)
	deadline := clk.Now().Add(ttl)

	// Keep-alive traffic on the other flow once per tick, phased so each
	// sweep runs while the idle flow's deadline tick is still in
	// progress (deadline later in the tick than the sweep).
	clk.Advance(tick / 3)
	for i := 0; i < 2*int(ttl/tick); i++ {
		clk.Advance(tick)
		c.Bind(keep, 10)
		if _, ok := c.Lookup(idle); ok && clk.Now().After(deadline.Add(tick)) {
			t.Fatalf("idle flow still live %v past its deadline", clk.Now().Sub(deadline))
		}
	}
	if _, ok := c.Lookup(idle); ok {
		t.Fatal("idle flow never expired")
	}
	if s := c.Stats(); s.Expired != 1 {
		t.Errorf("expired = %d, want 1", s.Expired)
	}
}

func TestCapacityBoundAndDeterministicEviction(t *testing.T) {
	const capacity = 32
	run := func() []uint64 {
		clk := newFakeClock()
		c := NewContext(clk.Config(capacity, time.Minute))
		// Insert 3× capacity distinct flows, one per millisecond.
		var order []uint64
		for i := 0; i < capacity*3; i++ {
			clk.Advance(time.Millisecond)
			f := tuple("10.1.0.1", "10.0.0.1", uint16(1000+i), 80, packet.ProtoTCP)
			c.Bind(f, 60)
			order = append(order, c.Stats().Evicted)
		}
		if got := c.Active(); got != capacity {
			t.Fatalf("active = %d, want capacity %d", got, capacity)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction sequence diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[len(a)-1] != capacity*2 {
		t.Errorf("evictions = %d, want %d", a[len(a)-1], capacity*2)
	}
}

func TestEvictionPrefersOldestIdle(t *testing.T) {
	clk := newFakeClock()
	c := NewContext(clk.Config(8, time.Minute))
	var flows []packet.Flow
	for i := 0; i < 8; i++ {
		clk.Advance(time.Second)
		f := tuple("10.1.0.1", "10.0.0.1", uint16(1000+i), 80, packet.ProtoTCP)
		flows = append(flows, f)
		c.Bind(f, 60)
	}
	// Refresh flow 0 so flow 1 becomes the oldest-idle.
	clk.Advance(time.Second)
	c.Bind(flows[0], 60)

	clk.Advance(time.Second)
	c.Bind(tuple("10.2.0.1", "10.0.0.1", 999, 80, packet.ProtoTCP), 60)

	if _, ok := c.Lookup(flows[1]); ok {
		t.Error("oldest-idle flow survived eviction")
	}
	if _, ok := c.Lookup(flows[0]); !ok {
		t.Error("recently refreshed flow was evicted")
	}
}

func TestSlotReleaseHooks(t *testing.T) {
	clk := newFakeClock()
	c := NewContext(clk.Config(4, time.Minute))
	released := map[int]bool{}
	slot, err := c.RegisterSlot("test", func(v any) { released[v.(int)] = true })
	if err != nil {
		t.Fatal(err)
	}
	// Re-registration by name returns the same slot.
	slot2, err := c.RegisterSlot("test", func(v any) { released[v.(int)] = true })
	if err != nil || slot2 != slot {
		t.Fatalf("re-registration: slot %v err %v, want %v", slot2, err, slot)
	}

	for i := 0; i < 4; i++ {
		f := tuple("10.1.0.1", "10.0.0.1", uint16(1000+i), 80, packet.ProtoTCP)
		e, _ := c.Bind(f, 60)
		e.Set(slot, i)
	}
	// Evict one (capacity), expire the rest (TTL).
	e, _ := c.Bind(tuple("10.2.0.1", "10.0.0.1", 999, 80, packet.ProtoTCP), 60)
	e.Set(slot, 99)
	clk.Advance(2 * time.Minute)
	c.Expire()

	for i := 0; i < 4; i++ {
		if !released[i] {
			t.Errorf("state %d never released", i)
		}
	}
	if !released[99] {
		t.Error("state of expired flow 99 never released")
	}
}

func TestSlotLimit(t *testing.T) {
	c := NewContext(Config{})
	for i := 0; i < MaxSlots; i++ {
		if _, err := c.RegisterSlot(fmt.Sprintf("s%d", i), nil); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if _, err := c.RegisterSlot("overflow", nil); err == nil {
		t.Error("slot overflow accepted")
	}
}

func TestRandomSeed(t *testing.T) {
	a, b := RandomSeed(), RandomSeed()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("RandomSeed not random: %#x, %#x", a, b)
	}
	// The table behaves identically under an arbitrary seed.
	c := NewContext(Config{Capacity: 8, Seed: a, Now: newFakeClock().Now})
	f := tuple("10.0.0.2", "10.0.0.1", 40000, 80, packet.ProtoTCP)
	c.Bind(f, 1)
	if _, ok := c.Lookup(f); !ok {
		t.Fatal("lookup failed under a random seed")
	}
}

func TestLoadFactorBound(t *testing.T) {
	c := NewContext(Config{Capacity: 1000, Now: newFakeClock().Now})
	c.Bind(tuple("10.0.0.1", "10.0.0.2", 1, 2, packet.ProtoTCP), 1)
	if size := c.TableSize(); size < 2000 {
		t.Errorf("table size %d gives load factor above 50%% at capacity 1000", size)
	}
}

// TestChurn100k cycles 100k flows through a small table — insert, expire,
// reinsert — and checks the table stays consistent and bounded. Run under
// -race in CI.
func TestChurn100k(t *testing.T) {
	const (
		capacity = 1 << 10
		total    = 100_000
	)
	clk := newFakeClock()
	c := NewContext(clk.Config(capacity, time.Minute))
	slot, _ := c.RegisterSlot("churn", nil)

	live := 0
	for i := 0; i < total; i++ {
		clk.Advance(10 * time.Millisecond)
		f := tuple("10.1.0.1", "10.0.0.1", uint16(i%50_021), uint16(80+i%7), packet.ProtoTCP)
		e, _ := c.Bind(f, 60)
		e.Set(slot, i)
		if a := c.Active(); a > capacity {
			t.Fatalf("active %d exceeds capacity %d at step %d", a, capacity, i)
		} else {
			live = a
		}
	}
	s := c.Stats()
	if s.Inserts < uint64(total)/10 {
		t.Errorf("suspiciously few inserts: %+v", s)
	}
	if s.Lookups != uint64(total) {
		t.Errorf("lookups = %d, want %d", s.Lookups, total)
	}
	if uint64(live) != s.Active {
		t.Errorf("active mismatch: %d vs %+v", live, s)
	}
	// Drain: everything expires, all entries recycle.
	clk.Advance(5 * time.Minute)
	c.Expire()
	if c.Active() != 0 {
		t.Errorf("flows survived the drain: %d", c.Active())
	}
	if s.Expired+s.Evicted == 0 {
		t.Error("no expiry or eviction in 100k churn")
	}
}

func TestRemove(t *testing.T) {
	clk := newFakeClock()
	c := NewContext(clk.Config(16, time.Minute))
	f := tuple("10.0.0.2", "10.0.0.1", 40000, 80, packet.ProtoTCP)
	c.Bind(f, 10)
	if !c.Remove(f.Reverse()) { // removal works from either orientation
		t.Fatal("Remove did not find the flow")
	}
	if _, ok := c.Lookup(f); ok {
		t.Fatal("flow survived Remove")
	}
	if c.Remove(f) {
		t.Fatal("second Remove succeeded")
	}
}

// TestBindSteadyStateAllocs pins the zero-allocation contract: once the
// table and its entries exist, lookups, inserts (recycled entries) and
// expiry sweeps allocate nothing.
func TestBindSteadyStateAllocs(t *testing.T) {
	clk := newFakeClock()
	c := NewContext(clk.Config(256, time.Minute))
	flows := make([]packet.Flow, 128)
	for i := range flows {
		flows[i] = tuple("10.1.0.1", "10.0.0.1", uint16(1000+i), 80, packet.ProtoTCP)
		c.Bind(flows[i], 60)
	}
	i := 0
	allocs := testing.AllocsPerRun(10_000, func() {
		clk.Advance(time.Millisecond)
		c.Bind(flows[i%len(flows)], 60)
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Bind allocates %.2f/op, want 0", allocs)
	}
}
