package vpn

import (
	"fmt"
	"sync"
	"time"

	"endbox/internal/wire"
)

// ClientOptions configures a VPN client endpoint.
type ClientOptions struct {
	// ID identifies the client to the server. Required.
	ID string
	// Plane seals and opens data-channel payloads. For EndBox this wraps
	// the enclave (one ecall per packet); for vanilla OpenVPN it is a
	// PlainDataPlane. Required.
	Plane DataPlane
	// Send transmits frames to the server. Required.
	Send func(frame []byte) error
	// SendControl transmits control-class frames (pings, nacks, health
	// reports) to the server. Transports that distinguish delivery classes
	// route these past the overload-shedding watermark so they survive a
	// data flood. Optional; defaults to Send.
	SendControl func(frame []byte) error
	// Deliver hands decrypted, accepted inbound packets to local
	// applications. Optional. The ip slice is only valid for the duration
	// of the call (it aliases a pooled buffer); implementations that keep
	// packets must copy.
	Deliver func(ip []byte)
	// OnAnnounce fires when a server ping announces a configuration
	// version newer than the client's. The core update loop fetches and
	// applies the configuration from here (paper Fig. 5 step 5). Optional.
	OnAnnounce func(version uint64, grace time.Duration)
	// ConfigVersion reports the currently applied middlebox configuration
	// version for inclusion in pings. Optional; defaults to 0.
	ConfigVersion func() uint64
	// Clock is the time source (default time.Now).
	Clock Clock
}

// Client is the user-space VPN client endpoint. All sensitive work happens
// in the injected DataPlane; the client handles framing, ping multiplexing
// and delivery — the parts the paper leaves outside the enclave (Fig. 3:
// fragmentation, encapsulation, socket I/O).
type Client struct {
	opts ClientOptions

	mu       sync.Mutex
	lastPing Ping
	pingSeen bool
}

// NewClient validates options and creates the endpoint.
func NewClient(opts ClientOptions) (*Client, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("vpn: ClientOptions.ID required")
	}
	if opts.Plane == nil {
		return nil, fmt.Errorf("vpn: ClientOptions.Plane required")
	}
	if opts.Send == nil {
		return nil, fmt.Errorf("vpn: ClientOptions.Send required")
	}
	if opts.SendControl == nil {
		opts.SendControl = opts.Send
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.ConfigVersion == nil {
		opts.ConfigVersion = func() uint64 { return 0 }
	}
	return &Client{opts: opts}, nil
}

// SendPacket tunnels one IP packet: tag, hand to the data plane (Click +
// seal inside the enclave for EndBox) and transmit. A middlebox drop is
// reported as ErrDropped. The encapsulation payload and the sealed frame
// both cycle through the wire buffer pool: planes must return frames that
// do not alias the payload and must not retain either buffer.
func (c *Client) SendPacket(ip []byte) error {
	payload := wire.GetBuffer(1 + len(ip))
	payload[0] = FrameData
	copy(payload[1:], ip)
	frame, err := c.opts.Plane.SealOutbound(payload)
	wire.PutBuffer(payload)
	if err != nil {
		return err
	}
	err = c.opts.Send(frame)
	wire.PutBuffer(frame)
	return err
}

// SendPackets tunnels a batch of IP packets. On a SlabDataPlane the whole
// batch crosses the enclave boundary packed into a single pooled slab
// (one buffer each way, no per-packet allocation); otherwise it falls
// back to per-packet sealing. Middlebox drops skip the affected packet
// without aborting the batch. It returns the number of frames handed to
// the transport and the first error encountered (drops included).
func (c *Client) SendPackets(ips [][]byte) (int, error) {
	if sp, ok := c.opts.Plane.(SlabDataPlane); ok {
		return c.sendPacketsSlab(sp, ips)
	}
	sent := 0
	var firstErr error
	for _, ip := range ips {
		if err := c.SendPacket(ip); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// sendPacketsSlab packs the burst into pooled request slabs, seals each
// slab in one crossing and transmits the resulting frames.
func (c *Client) sendPacketsSlab(sp SlabDataPlane, ips [][]byte) (int, error) {
	return c.runSlabBatch(sp.SlabBudget(), ips,
		func(slab, ip []byte) []byte { return AppendSlabFrame(slab, FrameData, ip) },
		func(ip []byte) int { return SlabSize(1 + len(ip)) },
		sp.SealOutboundSlab,
		c.opts.Send,
	)
}

// runSlabBatch is the shared chunk-and-flush skeleton of the slab data
// paths: pack items into pooled request slabs, cross the boundary once per
// slab, and hand each successful result entry to consume. Chunking is
// bounded by budget in BOTH directions — the request slab must fit one
// boundary crossing, and so must the result slab, whose size is bounded by
// the request bytes plus slabResultOverhead per entry (AppendResultErr's
// message cap makes that bound sound even for error-dominated results).
// It returns the number of entries consumed without error and the first
// per-entry error (a malformed slab or boundary failure aborts instead).
func (c *Client) runSlabBatch(
	budget int,
	items [][]byte,
	appendEntry func(slab, item []byte) []byte,
	entrySize func(item []byte) int,
	cross func(slab []byte) ([]byte, error),
	consume func(data []byte) error,
) (int, error) {
	want := 0
	for _, item := range items {
		want += entrySize(item)
	}
	if want > budget {
		want = budget
	}
	slab := wire.GetBuffer(want)[:0]
	defer func() { wire.PutBuffer(slab) }()

	done, count := 0, 0
	var firstErr error
	flush := func() error {
		if count == 0 {
			return nil
		}
		res, err := cross(slab)
		if err != nil {
			return err
		}
		r := NewResultReader(res)
		for {
			data, entryErr, ok := r.Next()
			if !ok {
				break
			}
			if entryErr == nil {
				entryErr = consume(data)
				if entryErr == nil {
					done++
				}
			}
			if entryErr != nil && firstErr == nil {
				firstErr = entryErr
			}
		}
		err = r.Err()
		wire.PutBuffer(res)
		slab = slab[:0]
		count = 0
		return err
	}

	for _, item := range items {
		need := entrySize(item)
		if need+slabResultOverhead > budget {
			// Too large to ever cross the boundary, even alone in a slab:
			// fail this item and keep the rest of the batch going, matching
			// the per-packet path's behaviour for oversized packets.
			if firstErr == nil {
				firstErr = fmt.Errorf("vpn: packet of %d bytes exceeds the %d-byte slab budget", need, budget)
			}
			continue
		}
		if count > 0 && len(slab)+need+(count+1)*slabResultOverhead > budget {
			if err := flush(); err != nil {
				return done, err
			}
		}
		slab = appendEntry(slab, item)
		count++
	}
	if err := flush(); err != nil {
		return done, err
	}
	return done, firstErr
}

// HandleFrame processes a frame from the server: open (verify, decrypt,
// replay-check, run ingress middlebox), then deliver data or record pings.
func (c *Client) HandleFrame(frame []byte) error {
	payload, err := c.opts.Plane.OpenInbound(frame)
	if err != nil {
		return err
	}
	return c.dispatchPayload(payload)
}

// HandleFrames processes a burst of frames from the server. On a
// SlabIngressPlane the burst crosses the enclave boundary packed into a
// single pooled slab (one buffer each way — the ingress mirror of
// SendPackets' slab path); otherwise it falls back to per-frame opening.
// Dropped or malformed frames are skipped without aborting the burst. It
// returns the number of frames fully handled and the first error
// encountered (drops included).
func (c *Client) HandleFrames(frames [][]byte) (int, error) {
	if sp, ok := c.opts.Plane.(SlabIngressPlane); ok {
		return c.handleFramesSlab(sp, frames)
	}
	handled := 0
	var firstErr error
	for _, f := range frames {
		err := c.HandleFrame(f)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		handled++
	}
	return handled, firstErr
}

// handleFramesSlab packs a received burst into pooled request slabs,
// opens each slab in one enclave crossing and dispatches the resulting
// payloads. Opened payloads are delivered to the application
// synchronously and alias the pooled result slab, which is released
// before returning.
func (c *Client) handleFramesSlab(sp SlabIngressPlane, frames [][]byte) (int, error) {
	return c.runSlabBatch(sp.SlabBudget(), frames,
		AppendSlabEntry,
		func(f []byte) int { return SlabSize(len(f)) },
		sp.OpenInboundSlab,
		c.dispatchPayload,
	)
}

// dispatchPayload routes one opened payload: deliver data or record pings.
func (c *Client) dispatchPayload(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("vpn: empty payload from server")
	}
	switch payload[0] {
	case FrameData:
		if c.opts.Deliver != nil {
			c.opts.Deliver(payload[1:])
		}
		return nil
	case FramePing:
		ping, err := DecodePing(payload[1:])
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.lastPing = ping
		c.pingSeen = true
		c.mu.Unlock()
		if c.opts.OnAnnounce != nil && ping.ConfigVersion > c.opts.ConfigVersion() {
			c.opts.OnAnnounce(ping.ConfigVersion, time.Duration(ping.GraceSeconds)*time.Second)
		}
		return nil
	default:
		return fmt.Errorf("vpn: unknown frame type %d from server", payload[0])
	}
}

// SendPing reports the client's applied configuration version to the server
// (paper Fig. 5 step 9: the client proves its successful update).
func (c *Client) SendPing() error {
	ping := Ping{
		SentUnixNano:  c.opts.Clock().UnixNano(),
		ConfigVersion: c.opts.ConfigVersion(),
	}
	frame, err := c.opts.Plane.SealOutbound(EncodePing(ping))
	if err != nil {
		return err
	}
	return c.opts.SendControl(frame)
}

// LastPing returns the most recent ping received from the server.
func (c *Client) LastPing() (Ping, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPing, c.pingSeen
}
