package vpn

import (
	"fmt"
	"sync"
	"time"
)

// ClientOptions configures a VPN client endpoint.
type ClientOptions struct {
	// ID identifies the client to the server. Required.
	ID string
	// Plane seals and opens data-channel payloads. For EndBox this wraps
	// the enclave (one ecall per packet); for vanilla OpenVPN it is a
	// PlainDataPlane. Required.
	Plane DataPlane
	// Send transmits frames to the server. Required.
	Send func(frame []byte) error
	// Deliver hands decrypted, accepted inbound packets to local
	// applications. Optional.
	Deliver func(ip []byte)
	// OnAnnounce fires when a server ping announces a configuration
	// version newer than the client's. The core update loop fetches and
	// applies the configuration from here (paper Fig. 5 step 5). Optional.
	OnAnnounce func(version uint64, grace time.Duration)
	// ConfigVersion reports the currently applied middlebox configuration
	// version for inclusion in pings. Optional; defaults to 0.
	ConfigVersion func() uint64
	// Clock is the time source (default time.Now).
	Clock Clock
}

// Client is the user-space VPN client endpoint. All sensitive work happens
// in the injected DataPlane; the client handles framing, ping multiplexing
// and delivery — the parts the paper leaves outside the enclave (Fig. 3:
// fragmentation, encapsulation, socket I/O).
type Client struct {
	opts ClientOptions

	mu       sync.Mutex
	lastPing Ping
	pingSeen bool
}

// NewClient validates options and creates the endpoint.
func NewClient(opts ClientOptions) (*Client, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("vpn: ClientOptions.ID required")
	}
	if opts.Plane == nil {
		return nil, fmt.Errorf("vpn: ClientOptions.Plane required")
	}
	if opts.Send == nil {
		return nil, fmt.Errorf("vpn: ClientOptions.Send required")
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.ConfigVersion == nil {
		opts.ConfigVersion = func() uint64 { return 0 }
	}
	return &Client{opts: opts}, nil
}

// SendPacket tunnels one IP packet: tag, hand to the data plane (Click +
// seal inside the enclave for EndBox) and transmit. A middlebox drop is
// reported as ErrDropped.
func (c *Client) SendPacket(ip []byte) error {
	payload := make([]byte, 1+len(ip))
	payload[0] = FrameData
	copy(payload[1:], ip)
	frame, err := c.opts.Plane.SealOutbound(payload)
	if err != nil {
		return err
	}
	return c.opts.Send(frame)
}

// SendPackets tunnels a batch of IP packets. On a BatchDataPlane the whole
// batch crosses the enclave boundary once; otherwise it falls back to
// per-packet sealing. Middlebox drops skip the affected packet without
// aborting the batch. It returns the number of frames handed to the
// transport and the first error encountered (drops included).
func (c *Client) SendPackets(ips [][]byte) (int, error) {
	payloads := make([][]byte, len(ips))
	for i, ip := range ips {
		p := make([]byte, 1+len(ip))
		p[0] = FrameData
		copy(p[1:], ip)
		payloads[i] = p
	}

	var results []SealResult
	if bp, ok := c.opts.Plane.(BatchDataPlane); ok {
		var err error
		results, err = bp.SealOutboundBatch(payloads)
		if err != nil {
			return 0, err
		}
		if len(results) != len(payloads) {
			return 0, fmt.Errorf("vpn: batch seal returned %d results for %d packets", len(results), len(payloads))
		}
	} else {
		results = make([]SealResult, len(payloads))
		for i, p := range payloads {
			results[i].Frame, results[i].Err = c.opts.Plane.SealOutbound(p)
		}
	}

	sent := 0
	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		if err := c.opts.Send(r.Frame); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// HandleFrame processes a frame from the server: open (verify, decrypt,
// replay-check, run ingress middlebox), then deliver data or record pings.
func (c *Client) HandleFrame(frame []byte) error {
	payload, err := c.opts.Plane.OpenInbound(frame)
	if err != nil {
		return err
	}
	return c.dispatchPayload(payload)
}

// HandleFrames processes a burst of frames from the server. On a
// BatchIngressPlane the whole burst crosses the enclave boundary once (one
// ecall for N frames — the ingress mirror of SendPackets); otherwise it
// falls back to per-frame opening. Dropped or malformed frames are skipped
// without aborting the burst. It returns the number of frames fully
// handled and the first error encountered (drops included).
func (c *Client) HandleFrames(frames [][]byte) (int, error) {
	var results []OpenResult
	if bp, ok := c.opts.Plane.(BatchIngressPlane); ok {
		var err error
		results, err = bp.OpenInboundBatch(frames)
		if err != nil {
			return 0, err
		}
		if len(results) != len(frames) {
			return 0, fmt.Errorf("vpn: batch open returned %d results for %d frames", len(results), len(frames))
		}
	} else {
		results = make([]OpenResult, len(frames))
		for i, f := range frames {
			results[i].Payload, results[i].Err = c.opts.Plane.OpenInbound(f)
		}
	}

	handled := 0
	var firstErr error
	for _, r := range results {
		err := r.Err
		if err == nil {
			err = c.dispatchPayload(r.Payload)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		handled++
	}
	return handled, firstErr
}

// dispatchPayload routes one opened payload: deliver data or record pings.
func (c *Client) dispatchPayload(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("vpn: empty payload from server")
	}
	switch payload[0] {
	case FrameData:
		if c.opts.Deliver != nil {
			c.opts.Deliver(payload[1:])
		}
		return nil
	case FramePing:
		ping, err := DecodePing(payload[1:])
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.lastPing = ping
		c.pingSeen = true
		c.mu.Unlock()
		if c.opts.OnAnnounce != nil && ping.ConfigVersion > c.opts.ConfigVersion() {
			c.opts.OnAnnounce(ping.ConfigVersion, time.Duration(ping.GraceSeconds)*time.Second)
		}
		return nil
	default:
		return fmt.Errorf("vpn: unknown frame type %d from server", payload[0])
	}
}

// SendPing reports the client's applied configuration version to the server
// (paper Fig. 5 step 9: the client proves its successful update).
func (c *Client) SendPing() error {
	ping := Ping{
		SentUnixNano:  c.opts.Clock().UnixNano(),
		ConfigVersion: c.opts.ConfigVersion(),
	}
	frame, err := c.opts.Plane.SealOutbound(EncodePing(ping))
	if err != nil {
		return err
	}
	return c.opts.Send(frame)
}

// LastPing returns the most recent ping received from the server.
func (c *Client) LastPing() (Ping, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPing, c.pingSeen
}
