package vpn

import (
	"encoding/json"
	"fmt"
)

// Robustness frame types inside the sealed data channel (alongside
// FrameData/FramePing in handshake.go). Both ride the data channel rather
// than a plaintext control message deliberately: nacks and health reports
// drive canary rollback decisions, and an unauthenticated one would let
// an on-path attacker fabricate apply failures and force fleet-wide
// rollbacks. Sealing them gives both transports (in-process and UDP) the
// same authenticated path for free.
const (
	// FrameNack carries a client's typed rejection of an announced
	// configuration version (JSON Nack body).
	FrameNack byte = 3
	// FrameHealth carries a client's health report (JSON HealthReport
	// body): apply acks with swap timing, and fault notifications when a
	// freshly applied pipeline trips quarantine.
	FrameHealth byte = 4
)

// Nack reports that a client could not apply an announced configuration
// version — a fetch failure, a bad blob, an element that panicked during
// the hot-swap, or a version the client has marked bad after a local
// self-revert. Before nacks existed a failed applyVersion was only
// visible if someone polled Client.LastUpdateError.
type Nack struct {
	Version uint64 `json:"version"`
	Reason  string `json:"reason"`
}

// HealthReport is a client's view of its own pipeline health, keyed by
// the configuration version it is running. OK is the client's verdict at
// send time; the counters let the server compute post-swap deltas.
type HealthReport struct {
	// Version is the configuration version the report describes.
	Version uint64 `json:"version"`
	// OK reports whether the client considers the configuration healthy
	// (applied cleanly, no quarantined elements).
	OK bool `json:"ok"`
	// SwapNanos is the in-enclave hot-swap duration of the last apply.
	SwapNanos int64 `json:"swap_nanos,omitempty"`
	// Panics is the pipeline's cumulative recovered-panic count.
	Panics uint64 `json:"panics,omitempty"`
	// Drops is the pipeline's cumulative drop count (informational —
	// filters drop packets as their job).
	Drops uint64 `json:"drops,omitempty"`
	// Quarantined counts currently quarantined elements.
	Quarantined int `json:"quarantined,omitempty"`
	// Fault names a faulting element, when the report was triggered by a
	// containment event.
	Fault string `json:"fault,omitempty"`
}

// EncodeNack serialises a nack with its frame tag.
func EncodeNack(n Nack) ([]byte, error) {
	return encodeJSONFrame(FrameNack, n)
}

// DecodeNack parses a nack payload (after the frame tag).
func DecodeNack(body []byte) (Nack, error) {
	var n Nack
	if err := json.Unmarshal(body, &n); err != nil {
		return Nack{}, fmt.Errorf("vpn: bad nack: %w", err)
	}
	return n, nil
}

// EncodeHealth serialises a health report with its frame tag.
func EncodeHealth(h HealthReport) ([]byte, error) {
	return encodeJSONFrame(FrameHealth, h)
}

// DecodeHealth parses a health-report payload (after the frame tag).
func DecodeHealth(body []byte) (HealthReport, error) {
	var h HealthReport
	if err := json.Unmarshal(body, &h); err != nil {
		return HealthReport{}, fmt.Errorf("vpn: bad health report: %w", err)
	}
	return h, nil
}

func encodeJSONFrame(tag byte, v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("vpn: encode frame %d: %w", tag, err)
	}
	out := make([]byte, 1+len(raw))
	out[0] = tag
	copy(out[1:], raw)
	return out, nil
}

// SendNack seals and sends a typed configuration rejection to the server.
func (c *Client) SendNack(n Nack) error {
	payload, err := EncodeNack(n)
	if err != nil {
		return err
	}
	frame, err := c.opts.Plane.SealOutbound(payload)
	if err != nil {
		return err
	}
	return c.opts.SendControl(frame)
}

// SendHealth seals and sends a health report to the server.
func (c *Client) SendHealth(h HealthReport) error {
	payload, err := EncodeHealth(h)
	if err != nil {
		return err
	}
	frame, err := c.opts.Plane.SealOutbound(payload)
	if err != nil {
		return err
	}
	return c.opts.SendControl(frame)
}
