package vpn

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"endbox/internal/attest"
	"endbox/internal/lifecycle"
)

// ErrBadTicket re-exports the lifecycle ticket error at the protocol
// boundary.
var ErrBadTicket = lifecycle.ErrBadTicket

// ResumeRequest is the client's fast-reconnect opener (MsgResume on the
// wire). Instead of a certificate and an ECDH share it carries the
// server-sealed resumption ticket from the previous session plus a
// fresh nonce, signed with the same attested key the ticket is bound
// to: proof that the bearer is the enclave the CA certified, with one
// signature verification instead of a certificate chain walk, transcript
// check and key exchange — and no attestation or enrolment round trips.
type ResumeRequest struct {
	ClientID string
	// Ticket is the server-sealed resumption state (opaque to the
	// client) issued by the previous ServerHello or ResumeReply.
	Ticket []byte
	// ConfigVersion is the configuration version the client still has
	// applied; the server seeds policy enforcement with it exactly like
	// ClientHello.ConfigVersion.
	ConfigVersion uint64
	Nonce         [32]byte
	Signature     []byte
}

// Transcript is the signed byte string. Exported because EndBox clients
// sign it via an ecall (the key lives in the enclave) while the request
// itself is assembled outside.
func (r *ResumeRequest) Transcript() []byte {
	buf := []byte("endbox-resume-v1:")
	buf = append(buf, r.ClientID...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], r.ConfigVersion)
	buf = append(buf, tmp[:]...)
	buf = append(buf, r.Nonce[:]...)
	buf = append(buf, r.Ticket...)
	return buf
}

// ResumeReply answers a ResumeRequest: the server's nonce (the resumed
// master mixes both nonces, so neither side can replay an old session),
// the version the client must run, a re-issued ticket sealed over the
// rotated master, and the server credential + transcript signature —
// verified inside the enclave exactly like a ServerHello.
type ResumeReply struct {
	Nonce         [32]byte
	ConfigVersion uint64
	Ticket        []byte // rotated: sealed over the resumed master
	ServerPub     ed25519.PublicKey
	ServerPubSig  []byte // CA endorsement of ServerPub
	Signature     []byte
}

func (r *ResumeReply) transcript(reqTranscript []byte) []byte {
	buf := append([]byte("endbox-resumed-v1:"), reqTranscript...)
	buf = append(buf, r.Nonce[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], r.ConfigVersion)
	buf = append(buf, tmp[:]...)
	buf = append(buf, r.Ticket...)
	return buf
}

// ResumeMaster derives the resumed session's master secret from the
// ticket master and both nonces.
func ResumeMaster(ticketMaster []byte, cNonce, sNonce [32]byte) []byte {
	h := sha256.New()
	h.Write([]byte("endbox-resume-master-v1:"))
	h.Write(ticketMaster)
	h.Write(cNonce[:])
	h.Write(sNonce[:])
	return h.Sum(nil)
}

// NewResumeRequest builds and signs a resume opener. sign must use the
// key certified by the CA for this client (an ecall for EndBox clients).
func NewResumeRequest(clientID string, ticket []byte, configVersion uint64, sign SignFunc) (*ResumeRequest, error) {
	r := &ResumeRequest{ClientID: clientID, Ticket: ticket, ConfigVersion: configVersion}
	if _, err := rand.Read(r.Nonce[:]); err != nil {
		return nil, fmt.Errorf("vpn: nonce: %w", err)
	}
	sig, err := sign(r.Transcript())
	if err != nil {
		return nil, fmt.Errorf("vpn: sign resume: %w", err)
	}
	r.Signature = sig
	return r, nil
}

// FinishResume verifies the server's reply — CA endorsement of the
// server key and the transcript signature — and derives the resumed
// master from the previous session's master. In EndBox this runs inside
// the enclave (the old master never leaves SGX), mirroring FinishClient.
func FinishResume(req *ResumeRequest, reply *ResumeReply, caPub ed25519.PublicKey, prevMaster []byte) ([]byte, error) {
	if !attest.VerifyServerKey(caPub, reply.ServerPub, reply.ServerPubSig) {
		return nil, ErrBadServerCred
	}
	if !ed25519.Verify(reply.ServerPub, reply.transcript(req.Transcript()), reply.Signature) {
		return nil, ErrBadSignature
	}
	return ResumeMaster(prevMaster, req.Nonce, reply.Nonce), nil
}
