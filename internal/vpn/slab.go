// Slab-batched enclave crossings.
//
// PR 2's batched ecalls moved a [][]byte across the enclave boundary: one
// boundary crossing, but still one heap allocation per packet on each side
// (the payload slices, the result structs, the slice-of-slices itself). A
// slab packs a whole burst into ONE contiguous, pooled buffer, so the
// boundary sees a single []byte in each direction and the steady-state
// batch path allocates nothing.
//
// Request slab — a sequence of length-prefixed entries:
//
//	[4-byte BE length | entry bytes] [4-byte BE length | entry bytes] ...
//
// For egress the entry is `opcode || ip-packet` (the VPN encapsulation);
// for ingress it is a sealed wire frame.
//
// Result slab — a sequence of status-tagged entries:
//
//	[1-byte status | 4-byte BE length | entry bytes] ...
//
// with one result per request entry, in order. Status slabOK carries the
// sealed frame (egress) or the opened payload (ingress); the error
// statuses carry the error message, and the decoder rebuilds an error that
// unwraps to the matching sentinel (ErrDropped, wire.ErrReplay, ...) so
// errors.Is works across the boundary.
package vpn

import (
	"encoding/binary"
	"errors"
	"fmt"

	"endbox/internal/wire"
)

// Result-slab status codes. Every code except slabOK maps onto a sentinel
// error so error identity survives the boundary crossing.
const (
	slabOK      byte = 0
	slabDropped byte = 1 // ErrDropped (middlebox verdict)
	slabReplay  byte = 2 // wire.ErrReplay
	slabAuth    byte = 3 // wire.ErrAuthFailed
	slabErr     byte = 4 // any other error, identity reduced to the message
)

// slabEntryOverhead is the request-slab framing per entry.
const slabEntryOverhead = 4

// slabResultOverhead bounds the result-slab bytes added per entry beyond
// the request entry itself: the status+length header plus the worst-case
// seal expansion (wire overhead with a full padding block). Error entries
// respect the same bound because AppendResultErr truncates messages to
// slabErrMsgCap. Sizing result buffers with ResultSlabCap therefore keeps
// appends within one pooled allocation, and chunking requests so that
// request bytes + entries*slabResultOverhead fit the boundary budget
// guarantees the result crosses too.
const slabResultOverhead = 1 + 4 + 72 + 16

// slabErrMsgCap truncates error messages in result slabs so an error
// entry (5 + message) never exceeds its request entry (>= 4 bytes) plus
// slabResultOverhead - 1.
const slabErrMsgCap = slabResultOverhead - 5

// ResultSlabCap bounds the result-slab bytes produced for a request slab
// of reqBytes holding n entries, letting producers pre-size one pooled
// buffer that appends never outgrow.
func ResultSlabCap(reqBytes, n int) int { return reqBytes + n*slabResultOverhead }

// AppendSlabEntry appends one length-prefixed entry to a request slab.
func AppendSlabEntry(slab, entry []byte) []byte {
	var hdr [slabEntryOverhead]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(entry)))
	slab = append(slab, hdr[:]...)
	return append(slab, entry...)
}

// AppendSlabFrame appends an encapsulated packet — `opcode || ip` — as one
// entry, without materialising the intermediate payload buffer.
func AppendSlabFrame(slab []byte, opcode byte, ip []byte) []byte {
	var hdr [slabEntryOverhead + 1]byte
	binary.BigEndian.PutUint32(hdr[:slabEntryOverhead], uint32(1+len(ip)))
	hdr[slabEntryOverhead] = opcode
	slab = append(slab, hdr[:]...)
	return append(slab, ip...)
}

// SlabSize returns the slab bytes one entry of n payload bytes occupies.
func SlabSize(n int) int { return slabEntryOverhead + n }

// SlabReader walks a request slab's entries. Entries alias the slab.
type SlabReader struct {
	slab []byte
	off  int
	err  error
}

// NewSlabReader starts a walk over slab.
func NewSlabReader(slab []byte) SlabReader { return SlabReader{slab: slab} }

// Next returns the next entry (aliasing the slab) and whether one was
// available. A malformed slab stops the walk and is reported by Err.
func (r *SlabReader) Next() ([]byte, bool) {
	if r.err != nil || r.off == len(r.slab) {
		return nil, false
	}
	if len(r.slab)-r.off < slabEntryOverhead {
		r.err = fmt.Errorf("vpn: truncated slab entry header at offset %d", r.off)
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(r.slab[r.off:]))
	r.off += slabEntryOverhead
	if len(r.slab)-r.off < n {
		r.err = fmt.Errorf("vpn: slab entry of %d bytes overruns slab at offset %d", n, r.off)
		return nil, false
	}
	entry := r.slab[r.off : r.off+n]
	r.off += n
	return entry, true
}

// Err reports a malformed slab encountered during the walk.
func (r *SlabReader) Err() error { return r.err }

// SlabCount walks a slab and returns its entry count (for pre-sizing
// result buffers), or an error for a malformed slab.
func SlabCount(slab []byte) (int, error) {
	r := NewSlabReader(slab)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			return n, r.Err()
		}
		n++
	}
}

// AppendResultOK appends a successful result entry carrying data.
func AppendResultOK(slab, data []byte) []byte {
	var hdr [5]byte
	hdr[0] = slabOK
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(data)))
	slab = append(slab, hdr[:]...)
	return append(slab, data...)
}

// AppendResultReserve appends a successful result entry of n bytes whose
// contents the caller fills in next — the in-place seal path writes its
// frame directly into the returned window, which aliases the slab.
func AppendResultReserve(slab []byte, n int) (grown, window []byte) {
	var hdr [5]byte
	hdr[0] = slabOK
	binary.BigEndian.PutUint32(hdr[1:], uint32(n))
	slab = append(slab, hdr[:]...)
	off := len(slab)
	if cap(slab) >= off+n {
		slab = slab[: off+n : cap(slab)]
	} else {
		slab = append(slab, make([]byte, n)...)
	}
	return slab, slab[off : off+n]
}

// AppendResultErr appends a failed result entry, encoding err's identity.
// Messages are truncated to slabErrMsgCap so result slabs stay within the
// ResultSlabCap bound whatever mix of errors a burst produces.
func AppendResultErr(slab []byte, err error) []byte {
	status := slabErr
	switch {
	case errors.Is(err, ErrDropped):
		status = slabDropped
	case errors.Is(err, wire.ErrReplay):
		status = slabReplay
	case errors.Is(err, wire.ErrAuthFailed):
		status = slabAuth
	}
	msg := err.Error()
	if len(msg) > slabErrMsgCap {
		msg = msg[:slabErrMsgCap]
	}
	var hdr [5]byte
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(msg)))
	slab = append(slab, hdr[:]...)
	return append(slab, msg...)
}

// slabError is a result-slab error rebuilt on the untrusted side: it keeps
// the in-enclave message and unwraps to the sentinel its status encodes.
type slabError struct {
	sentinel error
	msg      string
}

func (e *slabError) Error() string { return e.msg }
func (e *slabError) Unwrap() error { return e.sentinel }

// decodeResultErr rebuilds the error for a non-OK result entry.
func decodeResultErr(status byte, msg []byte) error {
	switch status {
	case slabDropped:
		return &slabError{sentinel: ErrDropped, msg: string(msg)}
	case slabReplay:
		return &slabError{sentinel: wire.ErrReplay, msg: string(msg)}
	case slabAuth:
		return &slabError{sentinel: wire.ErrAuthFailed, msg: string(msg)}
	default:
		return errors.New(string(msg))
	}
}

// ResultReader walks a result slab. Data entries alias the slab.
type ResultReader struct {
	slab []byte
	off  int
	err  error
}

// NewResultReader starts a walk over a result slab.
func NewResultReader(slab []byte) ResultReader { return ResultReader{slab: slab} }

// Next returns the next result: data (aliasing the slab) on success, or
// the entry's decoded error. ok reports whether an entry was available; a
// malformed slab stops the walk and is reported by Err.
func (r *ResultReader) Next() (data []byte, entryErr error, ok bool) {
	if r.err != nil || r.off == len(r.slab) {
		return nil, nil, false
	}
	if len(r.slab)-r.off < 5 {
		r.err = fmt.Errorf("vpn: truncated result entry header at offset %d", r.off)
		return nil, nil, false
	}
	status := r.slab[r.off]
	n := int(binary.BigEndian.Uint32(r.slab[r.off+1:]))
	r.off += 5
	if len(r.slab)-r.off < n {
		r.err = fmt.Errorf("vpn: result entry of %d bytes overruns slab at offset %d", n, r.off)
		return nil, nil, false
	}
	body := r.slab[r.off : r.off+n]
	r.off += n
	if status == slabOK {
		return body, nil, true
	}
	return nil, decodeResultErr(status, body), true
}

// Err reports a malformed result slab encountered during the walk.
func (r *ResultReader) Err() error { return r.err }

// SlabDataPlane is implemented by data planes whose egress burst crosses
// the enclave boundary as one contiguous slab: a single []byte argument
// and a single []byte result, with no per-packet allocation at the
// boundary. The result slab is pooled; the caller must release it with
// wire.PutBuffer once every entry has been consumed.
type SlabDataPlane interface {
	// SealOutboundSlab seals every entry of a request slab (entries are
	// `opcode || ip` encapsulations) and returns the result slab.
	SealOutboundSlab(slab []byte) ([]byte, error)
	// SlabBudget bounds the request-slab bytes one call accepts (the
	// enclave's boundary limit). Calls above the budget fail.
	SlabBudget() int
}

// SlabIngressPlane is the ingress mirror of SlabDataPlane: a received
// burst of sealed frames crosses the boundary as one slab and the opened
// payloads come back in one pooled result slab (release with
// wire.PutBuffer).
type SlabIngressPlane interface {
	// OpenInboundSlab opens every entry of a request slab (entries are
	// sealed wire frames) and returns the result slab.
	OpenInboundSlab(slab []byte) ([]byte, error)
	// SlabBudget bounds the request-slab bytes one call accepts.
	SlabBudget() int
}
