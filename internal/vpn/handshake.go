// Package vpn implements the OpenVPN-style virtual private network EndBox
// builds on (paper §III, §IV): a TLS-like control-channel handshake
// authenticated by attestation certificates, an AES-CBC+HMAC data channel
// with replay protection (internal/wire), in-band keepalive pings extended
// with configuration version and grace-period fields (paper §III-E), and
// server-side enforcement that blocks clients running stale middlebox
// configurations once the grace period expires.
//
// The package deliberately exposes seams where EndBox inserts the enclave:
// the client's handshake signing function and its DataPlane (packet
// processing + data-channel crypto) are injected, so internal/core can run
// both inside SGX while a vanilla OpenVPN configuration runs them in plain
// process memory. This mirrors the paper's partitioning of OpenVPN (Fig. 3).
package vpn

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"endbox/internal/attest"
	"endbox/internal/wire"
)

// TLS protocol versions used for downgrade protection (paper §V-A
// "Downgrade attacks").
const (
	TLS12 = 0x0303
	TLS13 = 0x0304
)

// Common errors.
var (
	ErrBadCert       = errors.New("vpn: client certificate invalid")
	ErrBadSignature  = errors.New("vpn: handshake signature invalid")
	ErrDowngrade     = errors.New("vpn: TLS version below server minimum")
	ErrBadServerCred = errors.New("vpn: server credential not endorsed by CA")
	ErrUnknownClient = errors.New("vpn: unknown client")
	ErrStaleConfig   = errors.New("vpn: client configuration version blocked by policy")
	ErrDuplicateID   = errors.New("vpn: client id already connected")
)

// SignFunc signs a handshake transcript. For EndBox clients the signature
// is produced by an ecall so the enclave-held key never leaves SGX.
type SignFunc func(transcript []byte) ([]byte, error)

// ClientHello opens the handshake. The certificate was issued by the CA
// after remote attestation (internal/attest); a client without one cannot
// produce a hello the server accepts, which is how EndBox locks unattested
// machines out of the managed network (paper §III-C).
type ClientHello struct {
	ClientID      string
	Cert          *attest.Certificate
	MaxTLS        uint16
	ConfigVersion uint64
	Nonce         [32]byte
	EphPub        []byte
	Signature     []byte
}

func (h *ClientHello) transcript() []byte {
	buf := []byte("endbox-hello-v1:")
	buf = append(buf, h.ClientID...)
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], h.MaxTLS)
	buf = append(buf, tmp[:2]...)
	binary.BigEndian.PutUint64(tmp[:], h.ConfigVersion)
	buf = append(buf, tmp[:]...)
	buf = append(buf, h.Nonce[:]...)
	buf = append(buf, h.EphPub...)
	return buf
}

// ServerHello answers with the server's ephemeral key, the negotiated TLS
// version and the currently required configuration version.
type ServerHello struct {
	Nonce         [32]byte
	EphPub        []byte
	ChosenTLS     uint16
	ConfigVersion uint64
	ServerPub     ed25519.PublicKey
	ServerPubSig  []byte // CA endorsement of ServerPub
	// Ticket is the sealed resumption state for this session (opaque to
	// the client): presenting it in a ResumeRequest re-establishes the
	// session without re-running attestation or enrolment. Covered by
	// the transcript signature, so it cannot be swapped in transit.
	Ticket    []byte
	Signature []byte
}

func (h *ServerHello) transcript(clientTranscript []byte) []byte {
	buf := append([]byte("endbox-shello-v1:"), clientTranscript...)
	buf = append(buf, h.Nonce[:]...)
	buf = append(buf, h.EphPub...)
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], h.ChosenTLS)
	buf = append(buf, tmp[:2]...)
	binary.BigEndian.PutUint64(tmp[:], h.ConfigVersion)
	buf = append(buf, tmp[:]...)
	buf = append(buf, h.Ticket...)
	return buf
}

// HandshakeState carries the client's ephemeral secret between hello and
// finish.
type HandshakeState struct {
	hello   *ClientHello
	ephPriv *ecdh.PrivateKey
}

// NewClientHello builds and signs the opening message. sign must use the
// key certified in cert.
func NewClientHello(clientID string, cert *attest.Certificate, configVersion uint64, maxTLS uint16, sign SignFunc) (*ClientHello, *HandshakeState, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("vpn: ephemeral key: %w", err)
	}
	h := &ClientHello{
		ClientID:      clientID,
		Cert:          cert,
		MaxTLS:        maxTLS,
		ConfigVersion: configVersion,
		EphPub:        eph.PublicKey().Bytes(),
	}
	if _, err := rand.Read(h.Nonce[:]); err != nil {
		return nil, nil, fmt.Errorf("vpn: nonce: %w", err)
	}
	sig, err := sign(h.transcript())
	if err != nil {
		return nil, nil, fmt.Errorf("vpn: sign hello: %w", err)
	}
	h.Signature = sig
	return h, &HandshakeState{hello: h, ephPriv: eph}, nil
}

// FinishClient processes the server's answer: verify the CA endorsement and
// transcript signature, enforce the minimum TLS version (this check runs
// inside the enclave in EndBox, so a compromised host cannot skip it —
// paper §V-A), and derive the session master secret.
func FinishClient(st *HandshakeState, sh *ServerHello, caPub ed25519.PublicKey, minTLS uint16) ([]byte, error) {
	if !attest.VerifyServerKey(caPub, sh.ServerPub, sh.ServerPubSig) {
		return nil, ErrBadServerCred
	}
	if !ed25519.Verify(sh.ServerPub, sh.transcript(st.hello.transcript()), sh.Signature) {
		return nil, ErrBadSignature
	}
	if sh.ChosenTLS < minTLS {
		return nil, fmt.Errorf("%w: chosen %#x < min %#x", ErrDowngrade, sh.ChosenTLS, minTLS)
	}
	return deriveMaster(st.ephPriv, sh.EphPub, st.hello.Nonce, sh.Nonce)
}

func deriveMaster(priv *ecdh.PrivateKey, peerPub []byte, cNonce, sNonce [32]byte) ([]byte, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("vpn: peer ephemeral key: %w", err)
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("vpn: ECDH: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("endbox-master-v1:"))
	h.Write(secret)
	h.Write(cNonce[:])
	h.Write(sNonce[:])
	return h.Sum(nil), nil
}

// Frame type tags inside the sealed data channel. Authenticity of every
// frame — pings included — is validated by the channel MAC inside the
// enclave (paper §III-E: "To prevent malicious clients from sending crafted
// ping messages, the authenticity of all packets is validated inside the
// enclave").
const (
	// FrameData carries a tunnelled IP packet.
	FrameData byte = 1
	// FramePing carries a keepalive/config-announce message.
	FramePing byte = 2
)

// Ping is the OpenVPN keepalive extended with EndBox's two extra fields
// (paper §III-E): the latest configuration version and its grace period.
type Ping struct {
	SentUnixNano  int64
	ConfigVersion uint64
	GraceSeconds  uint32
}

// pingLen is the encoded size of a Ping.
const pingLen = 8 + 8 + 4

// EncodePing serialises a ping with its frame tag.
func EncodePing(p Ping) []byte {
	buf := make([]byte, 1+pingLen)
	buf[0] = FramePing
	binary.BigEndian.PutUint64(buf[1:9], uint64(p.SentUnixNano))
	binary.BigEndian.PutUint64(buf[9:17], p.ConfigVersion)
	binary.BigEndian.PutUint32(buf[17:21], p.GraceSeconds)
	return buf
}

// DecodePing parses a ping payload (after the frame tag).
func DecodePing(body []byte) (Ping, error) {
	if len(body) != pingLen {
		return Ping{}, fmt.Errorf("vpn: bad ping length %d", len(body))
	}
	return Ping{
		SentUnixNano:  int64(binary.BigEndian.Uint64(body[0:8])),
		ConfigVersion: binary.BigEndian.Uint64(body[8:16]),
		GraceSeconds:  binary.BigEndian.Uint32(body[16:20]),
	}, nil
}

// DataPlane seals outgoing tunnel payloads into wire frames and opens
// incoming frames. EndBox's implementation is a single ecall that runs
// Click and the channel crypto inside the enclave (paper §IV-A: "ENDBOX
// performs only one ecall per sent or received packet"); the vanilla
// implementation is a bare wire.Session.
type DataPlane interface {
	SealOutbound(payload []byte) ([]byte, error)
	OpenInbound(frame []byte) ([]byte, error)
}

// ErrDropped signals that the middlebox rejected the packet; it is not a
// failure of the channel.
var ErrDropped = errors.New("vpn: packet dropped by middlebox")

// PlainDataPlane adapts a bare wire.Session as the DataPlane of a vanilla
// OpenVPN endpoint (no middlebox, no enclave).
type PlainDataPlane struct {
	Session *wire.Session
}

// SealOutbound implements DataPlane.
func (p *PlainDataPlane) SealOutbound(payload []byte) ([]byte, error) {
	return p.Session.Seal(payload)
}

// OpenInbound implements DataPlane.
func (p *PlainDataPlane) OpenInbound(frame []byte) ([]byte, error) {
	return p.Session.Open(frame)
}

// Clock abstracts time for virtual-time tests.
type Clock func() time.Time
