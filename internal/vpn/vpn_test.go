package vpn

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"endbox/internal/attest"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/wire"
)

// testPKI builds the complete trust chain once per test: CPU, enclave,
// QE, IAS, CA, enrolled client identity, and a CA-endorsed server key.
type testPKI struct {
	ca         *attest.CA
	cert       *attest.Certificate
	signPriv   ed25519.PrivateKey
	serverKey  ed25519.PrivateKey
	credential []byte
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	cpu := sgx.NewCPU("vpn-test")
	img := sgx.Image{Name: "endbox-client", Version: "1.0.0", Code: []byte("code")}
	encl, err := cpu.CreateEnclave(img, sgx.Config{Mode: sgx.ModeSimulation})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(encl.Destroy)
	if err := encl.RegisterEcall("report", func(ctx *sgx.Ctx, arg any) (any, error) {
		return ctx.CreateReport(arg.([]byte)), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := encl.Init(); err != nil {
		t.Fatal(err)
	}

	signPub, signPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	boxPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	keys := attest.EnclaveKeys{SignPub: signPub, BoxPub: boxPriv.PublicKey().Bytes()}

	qe, err := attest.NewQuotingEnclave(cpu, "platform-1")
	if err != nil {
		t.Fatal(err)
	}
	ias, err := attest.NewIAS()
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(qe)
	ca, err := attest.NewCA(ias)
	if err != nil {
		t.Fatal(err)
	}
	ca.AllowMeasurement(encl.Measurement())

	rep, err := encl.Ecall("report", keys.UserData())
	if err != nil {
		t.Fatal(err)
	}
	quote, err := qe.Quote(rep.(sgx.Report))
	if err != nil {
		t.Fatal(err)
	}
	prov, err := ca.Enroll(quote)
	if err != nil {
		t.Fatal(err)
	}

	serverPub, serverPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &testPKI{
		ca:         ca,
		cert:       prov.Certificate,
		signPriv:   signPriv,
		serverKey:  serverPriv,
		credential: ca.SignServerKey(serverPub),
	}
}

func (p *testPKI) sign(transcript []byte) ([]byte, error) {
	return ed25519.Sign(p.signPriv, transcript), nil
}

// testLink wires a client and server in process, capturing traffic.
type testLink struct {
	server    *Server
	client    *Client
	delivered [][]byte // packets arriving at the network
	toClient  [][]byte // packets delivered to client apps
	clock     *time.Time
}

func newTestLink(t *testing.T, pki *testPKI, mode wire.Mode) *testLink {
	t.Helper()
	now := time.Now() // certificates are issued against the real clock
	l := &testLink{clock: &now}

	var clientEndpoint *Client
	srv, err := NewServer(ServerOptions{
		CAPub:      pki.ca.PublicKey(),
		Credential: pki.credential,
		SignKey:    pki.serverKey,
		Mode:       mode,
		Clock:      func() time.Time { return *l.clock },
		Deliver:    func(_ string, ip []byte) { l.delivered = append(l.delivered, append([]byte(nil), ip...)) },
		SendTo: func(_ string, frame []byte) error {
			return clientEndpoint.HandleFrame(frame)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l.server = srv

	hello, st, err := NewClientHello("client-1", pki.cert, 0, TLS13, pki.sign)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.Accept(hello)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	master, err := FinishClient(st, sh, pki.ca.PublicKey(), TLS12)
	if err != nil {
		t.Fatalf("FinishClient: %v", err)
	}
	sess, err := wire.NewSession(master, mode, true)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientOptions{
		ID:    "client-1",
		Plane: &PlainDataPlane{Session: sess},
		Send:  func(frame []byte) error { return srv.HandleFrame("client-1", frame) },
		Deliver: func(ip []byte) {
			l.toClient = append(l.toClient, append([]byte(nil), ip...))
		},
		Clock: func() time.Time { return *l.clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	clientEndpoint = cli
	l.client = cli
	return l
}

func testIPPacket(t *testing.T, tos byte) []byte {
	t.Helper()
	p := packet.IPv4{
		TOS: tos, TTL: 64, Protocol: packet.ProtoUDP,
		Src: packet.MustParseAddr("10.8.0.2"), Dst: packet.MustParseAddr("192.0.2.10"),
		Payload: (&packet.UDP{SrcPort: 4000, DstPort: 80, Payload: []byte("data")}).Marshal(),
	}
	return p.Marshal()
}

func TestHandshakeAndDataBothDirections(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)

	ip := testIPPacket(t, 0)
	if err := l.client.SendPacket(ip); err != nil {
		t.Fatalf("SendPacket: %v", err)
	}
	if len(l.delivered) != 1 || string(l.delivered[0]) != string(ip) {
		t.Error("packet did not reach the network intact")
	}

	if err := l.server.SendTo("client-1", ip, false); err != nil {
		t.Fatalf("SendTo: %v", err)
	}
	if len(l.toClient) != 1 || string(l.toClient[0]) != string(ip) {
		t.Error("packet did not reach the client intact")
	}

	st, err := l.server.Stats("client-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.RxPackets != 1 || st.TxPackets != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandshakeRejectsForeignCA(t *testing.T) {
	pki := newTestPKI(t)
	foreign := newTestPKI(t) // different CA

	srv, err := NewServer(ServerOptions{
		CAPub:      pki.ca.PublicKey(),
		Credential: pki.credential,
		SignKey:    pki.serverKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	hello, _, err := NewClientHello("evil", foreign.cert, 0, TLS13, foreign.sign)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Accept(hello); !errors.Is(err, ErrBadCert) {
		t.Errorf("foreign cert accepted: err = %v", err)
	}
}

func TestHandshakeRejectsBadSignature(t *testing.T) {
	pki := newTestPKI(t)
	srv, err := NewServer(ServerOptions{
		CAPub:      pki.ca.PublicKey(),
		Credential: pki.credential,
		SignKey:    pki.serverKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Signature by a key that does not match the certificate: an attacker
	// who stole a certificate but not the enclave-held key.
	_, evilPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hello, _, err := NewClientHello("thief", pki.cert, 0, TLS13,
		func(tr []byte) ([]byte, error) { return ed25519.Sign(evilPriv, tr), nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Accept(hello); !errors.Is(err, ErrBadSignature) {
		t.Errorf("stolen cert accepted: err = %v", err)
	}
}

func TestDowngradeProtectionServerSide(t *testing.T) {
	pki := newTestPKI(t)
	srv, err := NewServer(ServerOptions{
		CAPub:      pki.ca.PublicKey(),
		Credential: pki.credential,
		SignKey:    pki.serverKey,
		MinTLS:     TLS12,
	})
	if err != nil {
		t.Fatal(err)
	}
	hello, _, err := NewClientHello("old", pki.cert, 0, 0x0302 /* TLS 1.1 */, pki.sign)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Accept(hello); !errors.Is(err, ErrDowngrade) {
		t.Errorf("downgraded hello accepted: err = %v", err)
	}
}

func TestDowngradeProtectionClientSide(t *testing.T) {
	// The client-side check runs inside the enclave (paper §V-A): even if
	// the host tampers with the negotiation, FinishClient rejects a version
	// below the enclave's minimum.
	pki := newTestPKI(t)
	srv, err := NewServer(ServerOptions{
		CAPub:      pki.ca.PublicKey(),
		Credential: pki.credential,
		SignKey:    pki.serverKey,
		MinTLS:     TLS12,
	})
	if err != nil {
		t.Fatal(err)
	}
	hello, st, err := NewClientHello("c", pki.cert, 0, TLS12, pki.sign)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.Accept(hello)
	if err != nil {
		t.Fatal(err)
	}
	// Enclave requires TLS 1.3 but the server (legitimately) chose 1.2:
	// the enclave-side check refuses.
	if _, err := FinishClient(st, sh, pki.ca.PublicKey(), TLS13); !errors.Is(err, ErrDowngrade) {
		t.Errorf("client-side downgrade check missed: err = %v", err)
	}
}

func TestFinishClientRejectsForgedServer(t *testing.T) {
	pki := newTestPKI(t)
	hello, st, err := NewClientHello("c", pki.cert, 0, TLS13, pki.sign)
	if err != nil {
		t.Fatal(err)
	}
	// A MITM presents its own key without CA endorsement.
	evilPub, evilPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sh := &ServerHello{
		EphPub:       eph.PublicKey().Bytes(),
		ChosenTLS:    TLS13,
		ServerPub:    evilPub,
		ServerPubSig: []byte("forged"),
	}
	sh.Signature = ed25519.Sign(evilPriv, sh.transcript(hello.transcript()))
	if _, err := FinishClient(st, sh, pki.ca.PublicKey(), TLS12); !errors.Is(err, ErrBadServerCred) {
		t.Errorf("forged server accepted: err = %v", err)
	}
}

func TestReplayRejectedByServer(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)

	var captured []byte
	origSend := l.client.opts.Send
	l.client.opts.Send = func(frame []byte) error {
		captured = append([]byte(nil), frame...)
		return origSend(frame)
	}
	if err := l.client.SendPacket(testIPPacket(t, 0)); err != nil {
		t.Fatal(err)
	}
	// Replay the captured frame.
	if err := l.server.HandleFrame("client-1", captured); !errors.Is(err, wire.ErrReplay) {
		t.Errorf("replayed frame: err = %v, want wire.ErrReplay", err)
	}
	if len(l.delivered) != 1 {
		t.Errorf("replay delivered a second packet")
	}
}

func TestConfigEnforcementLifecycle(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)
	ip := testIPPacket(t, 0)

	// Version 0 traffic flows initially.
	if err := l.client.SendPacket(ip); err != nil {
		t.Fatal(err)
	}

	// Admin announces version 2 with a 30 s grace period.
	if err := l.server.Policy().Announce(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var announced uint64
	l.client.opts.OnAnnounce = func(v uint64, _ time.Duration) { announced = v }
	if err := l.server.BroadcastPing(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if announced != 2 {
		t.Fatalf("client never saw the announcement (got %d)", announced)
	}

	// During grace, stale traffic still flows.
	if err := l.client.SendPacket(ip); err != nil {
		t.Errorf("grace-period traffic blocked: %v", err)
	}

	// After grace expiry without updating: blocked.
	*l.clock = l.clock.Add(31 * time.Second)
	if err := l.client.SendPacket(ip); !errors.Is(err, ErrStaleConfig) {
		t.Errorf("stale client not blocked: err = %v", err)
	}

	// Client applies the update and proves it via ping; traffic resumes.
	l.client.opts.ConfigVersion = func() uint64 { return 2 }
	if err := l.client.SendPing(); err != nil {
		t.Fatal(err)
	}
	if v, _ := l.server.ReportedVersion("client-1"); v != 2 {
		t.Fatalf("server did not record new version: %d", v)
	}
	if err := l.client.SendPacket(ip); err != nil {
		t.Errorf("updated client still blocked: %v", err)
	}
}

func TestCraftedPingRejected(t *testing.T) {
	// A malicious client process cannot forge pings claiming a newer
	// version: pings ride the MACed data channel, so a crafted frame fails
	// authentication (paper §III-E).
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)

	forged := make([]byte, 60)
	if err := l.server.HandleFrame("client-1", forged); !errors.Is(err, wire.ErrAuthFailed) {
		t.Errorf("forged ping frame: err = %v, want wire.ErrAuthFailed", err)
	}
}

func TestServerScrubsProcessedTOS(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)

	flagged := testIPPacket(t, packet.ProcessedTOS)

	// External traffic: flag scrubbed.
	if err := l.server.SendTo("client-1", flagged, false); err != nil {
		t.Fatal(err)
	}
	got, err := packet.ParseIPv4(l.toClient[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.TOS == packet.ProcessedTOS {
		t.Error("external packet kept the 0xeb flag")
	}

	// Client-relayed traffic: flag preserved.
	if err := l.server.SendTo("client-1", flagged, true); err != nil {
		t.Fatal(err)
	}
	got, err = packet.ParseIPv4(l.toClient[1])
	if err != nil {
		t.Fatal(err)
	}
	if got.TOS != packet.ProcessedTOS {
		t.Error("client-relayed packet lost the 0xeb flag")
	}
}

func TestServerSideProcessHook(t *testing.T) {
	pki := newTestPKI(t)
	now := time.Now()
	dropAll := false
	var cli *Client
	srv, err := NewServer(ServerOptions{
		CAPub:      pki.ca.PublicKey(),
		Credential: pki.credential,
		SignKey:    pki.serverKey,
		Clock:      func() time.Time { return now },
		Process:    func(ip []byte) bool { return !dropAll },
		SendTo:     func(_ string, frame []byte) error { return cli.HandleFrame(frame) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hello, st, err := NewClientHello("c", pki.cert, 0, TLS13, pki.sign)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := srv.Accept(hello)
	if err != nil {
		t.Fatal(err)
	}
	master, err := FinishClient(st, sh, pki.ca.PublicKey(), TLS12)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := wire.NewSession(master, wire.ModeEncrypted, true)
	if err != nil {
		t.Fatal(err)
	}
	cli, err = NewClient(ClientOptions{
		ID:    "c",
		Plane: &PlainDataPlane{Session: sess},
		Send:  func(frame []byte) error { return srv.HandleFrame("c", frame) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.SendPacket(testIPPacket(t, 0)); err != nil {
		t.Errorf("accepting hook dropped: %v", err)
	}
	dropAll = true
	if err := cli.SendPacket(testIPPacket(t, 0)); !errors.Is(err, ErrDropped) {
		t.Errorf("server-side middlebox drop: err = %v", err)
	}
	st2, _ := srv.Stats("c")
	if st2.Dropped != 1 {
		t.Errorf("drop not counted: %+v", st2)
	}
}

func TestDuplicateClientID(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)
	hello, _, err := NewClientHello("client-1", pki.cert, 0, TLS13, pki.sign)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.server.Accept(hello); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id accepted: err = %v", err)
	}
	l.server.Disconnect("client-1")
	if _, err := l.server.Accept(hello); err != nil {
		t.Errorf("reconnect after disconnect failed: %v", err)
	}
}

func TestIntegrityOnlyMode(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeIntegrityOnly)
	ip := testIPPacket(t, 0)
	if err := l.client.SendPacket(ip); err != nil {
		t.Fatal(err)
	}
	if len(l.delivered) != 1 || string(l.delivered[0]) != string(ip) {
		t.Error("integrity-only round trip failed")
	}
	if l.server.Mode() != wire.ModeIntegrityOnly {
		t.Error("mode not propagated")
	}
}

func TestPingRoundTripEncoding(t *testing.T) {
	p := Ping{SentUnixNano: 123456789, ConfigVersion: 42, GraceSeconds: 30}
	enc := EncodePing(p)
	if enc[0] != FramePing {
		t.Error("missing frame tag")
	}
	got, err := DecodePing(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("got %+v, want %+v", got, p)
	}
	if _, err := DecodePing(enc); err == nil {
		t.Error("wrong-length ping decoded")
	}
}

func TestUnknownClientFrame(t *testing.T) {
	pki := newTestPKI(t)
	l := newTestLink(t, pki, wire.ModeEncrypted)
	if err := l.server.HandleFrame("ghost", []byte("frame")); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("err = %v, want ErrUnknownClient", err)
	}
	if err := l.server.SendTo("ghost", testIPPacket(t, 0), false); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("err = %v, want ErrUnknownClient", err)
	}
}
