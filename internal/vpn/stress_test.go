package vpn

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLifecycleStress100k exercises the session-lifecycle machinery at
// the paper's million-client scale point (scaled to 100k to stay inside
// CI budgets): 100 000 sessions installed into the sharded table and
// liveness wheel, half kept alive by concurrent touches racing the
// sweeper, the silent half evicted, and a takeover wave over the
// survivors. Lightweight session records stand in for handshake-derived
// ones — the structures under stress (table, tracker, counters) never
// look inside the wire session. Run under -race.
func TestLifecycleStress100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-session stress; run without -short")
	}
	const (
		total   = 100_000
		workers = 8
		ttl     = time.Minute
	)
	var now atomic.Int64
	now.Store(time.Unix(1_000_000, 0).UnixNano())

	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerOptions{
		CAPub:      priv.Public().(ed25519.PublicKey),
		SignKey:    priv,
		Credential: []byte("stress"),
		Clock:      func() time.Time { return time.Unix(0, now.Load()) },
		SessionTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, total)
	sessions := make([]*session, total)
	t0 := now.Load()
	for i := range sessions {
		ids[i] = fmt.Sprintf("c%06d", i)
		sessions[i] = &session{}
		if err := srv.install(ids[i], sessions[i], t0, false); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	if n := srv.ClientCount(); n != total {
		t.Fatalf("ClientCount = %d after install, want %d", n, total)
	}

	// Five TTL/4 steps. Each step, worker goroutines touch every
	// even-index session while the sweeper runs concurrently — the
	// data-path race the lock-free Touch is designed for. Even sessions
	// are never more than TTL/4 stale, so no interleaving can evict
	// them; odd sessions go silent at t0 and must all lapse by
	// t0 + 1.25×TTL.
	evicted := 0
	for step := 1; step <= 5; step++ {
		ts := now.Add(int64(ttl / 4))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 2 * w; i < total; i += 2 * workers {
					sessions[i].live.Load().Touch(ts)
				}
			}()
		}
		evicted += len(srv.SweepExpired())
		wg.Wait()
	}
	// A final sweep after the touches settle catches any odd session the
	// concurrent sweep visited before its bucket's tick had passed.
	evicted += len(srv.SweepExpired())

	if evicted != total/2 {
		t.Fatalf("evicted %d sessions, want %d (the silent half)", evicted, total/2)
	}
	if n := srv.ClientCount(); n != total/2 {
		t.Fatalf("ClientCount = %d after sweep, want %d", n, total/2)
	}
	for i := 0; i < total; i += 2 {
		if _, ok := srv.sessions.Get(ids[i]); !ok {
			t.Fatalf("live session %s was evicted", ids[i])
		}
	}
	if st := srv.SessionStats(); st.Evicted != uint64(total/2) || st.Active != total/2 || st.Tracked != total/2 {
		t.Fatalf("SessionStats = %+v", st)
	}

	// Takeover wave: resume-style installs replace 10k live sessions
	// (the same-principal path), and the evicted IDs rejoin cold.
	tNow := now.Load()
	for i := 0; i < 20_000; i += 2 {
		if err := srv.install(ids[i], &session{}, tNow, true); err != nil {
			t.Fatalf("takeover install %s: %v", ids[i], err)
		}
	}
	for i := 1; i < 20_000; i += 2 {
		if err := srv.install(ids[i], &session{}, tNow, false); err != nil {
			t.Fatalf("rejoin install %s: %v", ids[i], err)
		}
	}
	st := srv.SessionStats()
	if st.Takeovers != 10_000 {
		t.Errorf("Takeovers = %d, want 10000", st.Takeovers)
	}
	if want := total/2 + 10_000; st.Active != want {
		t.Errorf("Active = %d after rejoin wave, want %d", st.Active, want)
	}
}
