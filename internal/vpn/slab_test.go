package vpn

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"endbox/internal/wire"
)

func TestSlabRoundTrip(t *testing.T) {
	entries := [][]byte{
		[]byte("first"),
		nil,
		bytes.Repeat([]byte{0xeb}, 1500),
		[]byte("last"),
	}
	var slab []byte
	slab = AppendSlabEntry(slab, entries[0])
	slab = AppendSlabEntry(slab, entries[1])
	slab = AppendSlabFrame(slab, 0xeb, entries[2][1:]) // opcode+ip form
	slab = AppendSlabEntry(slab, entries[3])

	n, err := SlabCount(slab)
	if err != nil || n != 4 {
		t.Fatalf("SlabCount = %d, %v; want 4, nil", n, err)
	}

	r := NewSlabReader(slab)
	for i := 0; ; i++ {
		entry, ok := r.Next()
		if !ok {
			if i != 4 {
				t.Fatalf("walk stopped after %d entries", i)
			}
			break
		}
		if !bytes.Equal(entry, entries[i]) {
			t.Fatalf("entry %d = %q, want %q", i, entry, entries[i])
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestSlabReaderMalformed(t *testing.T) {
	for name, slab := range map[string][]byte{
		"truncated header": {0, 0, 1},
		"overrun entry":    {0, 0, 0, 9, 'x'},
	} {
		r := NewSlabReader(slab)
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if r.Err() == nil {
			t.Errorf("%s: walk accepted malformed slab", name)
		}
	}
}

func TestResultSlabRoundTrip(t *testing.T) {
	var slab []byte
	slab = AppendResultOK(slab, []byte("frame-one"))
	slab = AppendResultErr(slab, fmt.Errorf("%w (by filter)", ErrDropped))
	slab = AppendResultErr(slab, fmt.Errorf("%w: id 9", wire.ErrReplay))
	slab = AppendResultErr(slab, wire.ErrAuthFailed)
	slab = AppendResultErr(slab, errors.New("something else"))
	var window []byte
	slab, window = AppendResultReserve(slab, 7)
	copy(window, "reserve")

	r := NewResultReader(slab)
	data, err, ok := r.Next()
	if !ok || err != nil || string(data) != "frame-one" {
		t.Fatalf("entry 0: %q, %v, %v", data, err, ok)
	}
	wantSentinels := []error{ErrDropped, wire.ErrReplay, wire.ErrAuthFailed, nil}
	wantMsgs := []string{"vpn: packet dropped by middlebox (by filter)", "wire: replayed or stale packet ID: id 9",
		wire.ErrAuthFailed.Error(), "something else"}
	for i, sentinel := range wantSentinels {
		_, err, ok := r.Next()
		if !ok || err == nil {
			t.Fatalf("entry %d: missing error", i+1)
		}
		if sentinel != nil && !errors.Is(err, sentinel) {
			t.Errorf("entry %d does not unwrap to %v (got %v)", i+1, sentinel, err)
		}
		if err.Error() != wantMsgs[i] {
			t.Errorf("entry %d message = %q, want %q", i+1, err, wantMsgs[i])
		}
	}
	data, err, ok = r.Next()
	if !ok || err != nil || string(data) != "reserve" {
		t.Fatalf("reserved entry: %q, %v, %v", data, err, ok)
	}
	if _, _, ok := r.Next(); ok {
		t.Fatal("walk returned a 7th entry")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// slabPlane adapts a wire session pair into both slab plane interfaces, so
// the client's slab paths can be tested without an enclave.
type slabPlane struct {
	seal   *wire.Session // client->server direction
	open   *wire.Session // server->client direction (recv side)
	budget int
	calls  int // slab crossings, the ecall count stand-in
}

func (p *slabPlane) SlabBudget() int { return p.budget }

func (p *slabPlane) SealOutboundSlab(slab []byte) ([]byte, error) {
	p.calls++
	n, err := SlabCount(slab)
	if err != nil {
		return nil, err
	}
	res := wire.GetBuffer(len(slab) + n*slabResultOverhead)[:0]
	r := NewSlabReader(slab)
	for {
		payload, ok := r.Next()
		if !ok {
			break
		}
		if len(payload) > 1 && payload[1] == 'X' { // test hook: drop
			res = AppendResultErr(res, fmt.Errorf("%w (by test)", ErrDropped))
			continue
		}
		var window []byte
		res, window = AppendResultReserve(res, p.seal.SealedLen(len(payload)))
		if _, err := p.seal.SealTo(payload, window); err != nil {
			return nil, err
		}
	}
	return res, r.Err()
}

func (p *slabPlane) OpenInboundSlab(slab []byte) ([]byte, error) {
	p.calls++
	res := wire.GetBuffer(len(slab))[:0]
	r := NewSlabReader(slab)
	for {
		frame, ok := r.Next()
		if !ok {
			break
		}
		payload, err := p.open.OpenInPlace(frame)
		if err != nil {
			res = AppendResultErr(res, err)
			continue
		}
		res = AppendResultOK(res, payload)
	}
	return res, r.Err()
}

func (p *slabPlane) SealOutbound(payload []byte) ([]byte, error) { return p.seal.Seal(payload) }
func (p *slabPlane) OpenInbound(frame []byte) ([]byte, error)    { return p.open.Open(frame) }

func newSlabPlanePair(t *testing.T, budget int) (cli *slabPlane, srv *wire.Session, down *wire.Session) {
	t.Helper()
	master := []byte("slab-plane-master")
	up, err := wire.NewSession(master, wire.ModeEncrypted, true)
	if err != nil {
		t.Fatal(err)
	}
	upSrv, err := wire.NewSession(master, wire.ModeEncrypted, false)
	if err != nil {
		t.Fatal(err)
	}
	return &slabPlane{seal: up, open: up, budget: budget}, upSrv, upSrv
}

// TestSendPacketsSlab drives the client's slab egress end to end: every
// packet crosses in chunked slabs, drops are reported per packet with
// ErrDropped identity, and frames decrypt correctly on the server side.
func TestSendPacketsSlab(t *testing.T) {
	plane, srv, _ := newSlabPlanePair(t, 4096)
	var got [][]byte
	cli, err := NewClient(ClientOptions{
		ID:    "slab-client",
		Plane: plane,
		Send: func(frame []byte) error {
			payload, err := srv.OpenInPlace(frame)
			if err != nil {
				return err
			}
			got = append(got, append([]byte(nil), payload[1:]...))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ips := make([][]byte, 40) // forces several slab flushes at budget 4096
	for i := range ips {
		ips[i] = bytes.Repeat([]byte{byte(i + 1)}, 300)
	}
	ips[7] = []byte("X-drop-me") // the plane's drop hook
	sent, err := cli.SendPackets(ips)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("first error = %v, want ErrDropped", err)
	}
	if sent != len(ips)-1 {
		t.Fatalf("sent = %d, want %d", sent, len(ips)-1)
	}
	if plane.calls >= len(ips) {
		t.Fatalf("slab path crossed %d times for %d packets", plane.calls, len(ips))
	}
	wantIdx := 0
	for i, ip := range ips {
		if i == 7 {
			continue
		}
		if !bytes.Equal(got[wantIdx], ip) {
			t.Fatalf("packet %d corrupted in slab transit", i)
		}
		wantIdx++
	}
}

// TestHandleFramesSlab drives the client's slab ingress: a burst of sealed
// frames crosses in one slab and every payload is delivered intact.
func TestHandleFramesSlab(t *testing.T) {
	master := []byte("slab-ingress-master")
	srvSess, err := wire.NewSession(master, wire.ModeEncrypted, false)
	if err != nil {
		t.Fatal(err)
	}
	cliSess, err := wire.NewSession(master, wire.ModeEncrypted, true)
	if err != nil {
		t.Fatal(err)
	}
	plane := &slabPlane{seal: cliSess, open: cliSess, budget: 64 << 10}

	var delivered [][]byte
	cli, err := NewClient(ClientOptions{
		ID:    "slab-ingress",
		Plane: plane,
		Send:  func([]byte) error { return nil },
		Deliver: func(ip []byte) {
			delivered = append(delivered, append([]byte(nil), ip...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const burst = 16
	frames := make([][]byte, burst)
	for i := range frames {
		payload := append([]byte{FrameData}, bytes.Repeat([]byte{byte(i)}, 200)...)
		frames[i], err = srvSess.Seal(payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	handled, err := cli.HandleFrames(frames)
	if err != nil || handled != burst {
		t.Fatalf("HandleFrames = %d, %v; want %d, nil", handled, err, burst)
	}
	if plane.calls != 1 {
		t.Fatalf("burst crossed %d times, want 1", plane.calls)
	}
	for i, ip := range delivered {
		if !bytes.Equal(ip, bytes.Repeat([]byte{byte(i)}, 200)) {
			t.Fatalf("delivered packet %d corrupted", i)
		}
	}
	// Replayed frames fail per frame with replay identity, not batch-wide.
	handled, err = cli.HandleFrames(frames[:2])
	if handled != 0 || !errors.Is(err, wire.ErrReplay) {
		t.Fatalf("replayed burst: handled=%d err=%v, want 0, ErrReplay", handled, err)
	}
}
