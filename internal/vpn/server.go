package vpn

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"time"

	"endbox/internal/attest"
	"endbox/internal/config"
	"endbox/internal/dataplane"
	"endbox/internal/lifecycle"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/wire"
)

// ServerOptions configures a VPN server.
type ServerOptions struct {
	// CAPub verifies client certificates and is required.
	CAPub ed25519.PublicKey
	// Credential endorses the server key; obtain it from the CA with
	// SignServerKey. Required.
	Credential []byte
	// SignKey is the server's handshake signing key. Required.
	SignKey ed25519.PrivateKey
	// MinTLS is the lowest TLS version accepted (default TLS12). OpenVPN
	// implements this server-side check; EndBox adds the in-enclave
	// client-side check (paper §V-A).
	MinTLS uint16
	// Mode selects the data-channel protection (default ModeEncrypted).
	Mode wire.Mode
	// Clock is the time source (default time.Now).
	Clock Clock
	// Deliver receives decrypted, accepted packets bound for the managed
	// network. Required for data traffic. The ip slice aliases the frame
	// buffer being handled and is only valid for the duration of the call;
	// implementations that keep packets must copy.
	Deliver func(clientID string, ip []byte)
	// SendTo transmits frames back to a client. Required for server->client
	// traffic and pings. The frame is a pooled buffer lent for the duration
	// of the call; implementations must not retain it after returning.
	SendTo func(clientID string, frame []byte) error
	// Process optionally runs a server-side middlebox over decrypted
	// client->network packets (the OpenVPN+Click baseline). It returns
	// false to drop. Nil accepts everything (vanilla OpenVPN).
	Process func(ip []byte) bool
	// ScrubTOS controls whether the server clears the 0xeb "already
	// processed" QoS flag on packets entering from outside so external
	// attackers cannot forge it (paper §IV-A). Enabled by default.
	ScrubTOS *bool
	// Shards is the session-table shard count (rounded up to a power of
	// two; 0 selects dataplane.DefaultShards). One shard reproduces the
	// monolithic single-lock table for baselines and ablations.
	Shards int
	// SessionTTL enables liveness tracking: a session that produces no
	// authenticated frames (data or keepalive) for this long is
	// considered dead — SweepExpired evicts it and a fresh handshake or
	// resume for the same client ID may take it over. 0 disables
	// tracking (sessions live forever, the pre-lifecycle behaviour).
	SessionTTL time.Duration
	// TicketTTL bounds how long an issued resumption ticket stays
	// resumable. 0 means for the life of the server's in-memory ticket
	// key (a restart always invalidates all tickets).
	TicketTTL time.Duration
	// OnNack receives a client's typed rejection of an announced
	// configuration version. Like every frame it arrives authenticated by
	// the channel MAC — a forged nack cannot trigger a rollback. Optional.
	OnNack func(clientID string, n Nack)
	// OnHealth receives client health reports (apply acks with swap
	// timing, post-swap fault notifications). Optional.
	OnHealth func(clientID string, h HealthReport)
	// GateMeasurement, when set, is consulted with the claimed enclave
	// measurement before any handshake or resume crypto runs: a non-nil
	// error refuses the attempt outright (the policy engine returns
	// policy.ErrBuildRevoked for revoked builds). The claim is cheap to
	// check and safe to trust for refusal — an accepted handshake still
	// verifies the certificate binding the measurement, so lying about
	// the measurement only ever gets a client refused or caught. Optional.
	GateMeasurement func(m sgx.Measurement) error
}

// VIFStats are per-client virtual interface counters, kept shard-local in
// the dataplane session table (paper §V-E aggregates them across clients).
type VIFStats = dataplane.VIFStats

// session is one connected client's server-side state. The wire session
// carries its own lock; the version and counters are atomics, so frames
// for one client never contend with frames for another — all cross-client
// coordination lives in the sharded table's per-shard locks.
type session struct {
	sess    *wire.Session
	cert    *attest.Certificate
	signPub ed25519.PublicKey
	// meas is the attested enclave measurement the session runs under:
	// from the verified certificate at handshake, from the ticket at
	// resume. Zero for pre-measurement tickets. Immutable after install,
	// so measurement-targeted rollouts and revocation sweeps read it
	// without locks.
	meas            sgx.Measurement
	reportedVersion atomic.Uint64
	stats           dataplane.VIFCounters
	// live is the liveness entry the data path touches; nil when
	// SessionTTL is disabled. Eviction matches on this pointer, so a
	// takeover (new session, new entry) is never hit by a stale sweep.
	// Atomic because install publishes the session into the sharded map
	// before the tracker assigns the entry — a concurrent Disconnect or
	// frame must observe either nil or the fully linked entry.
	live atomic.Pointer[lifecycle.Entry]
}

// Server is the EndBox VPN server: the sole entry point into the managed
// network (paper §III-A). It accepts traffic only from attested clients
// with valid certificates and, after a configuration update's grace period
// expires, only from clients running the current middlebox configuration.
// Sessions live in an N-way sharded table so concurrent frames from many
// clients never serialise on one lock.
type Server struct {
	opts     ServerOptions
	policy   *config.Policy
	sessions *dataplane.Table[*session]

	// lifecycle: tracker is nil when SessionTTL is 0; tickets is always
	// present (resumption works even without eviction).
	tracker *lifecycle.Tracker
	tickets *lifecycle.TicketSealer

	evicted   atomic.Uint64
	resumed   atomic.Uint64
	takeovers atomic.Uint64
	revoked   atomic.Uint64
}

// NewServer validates options and creates a server.
func NewServer(opts ServerOptions) (*Server, error) {
	if len(opts.CAPub) == 0 {
		return nil, fmt.Errorf("vpn: ServerOptions.CAPub required")
	}
	if len(opts.SignKey) == 0 {
		return nil, fmt.Errorf("vpn: ServerOptions.SignKey required")
	}
	if len(opts.Credential) == 0 {
		return nil, fmt.Errorf("vpn: ServerOptions.Credential required")
	}
	if opts.MinTLS == 0 {
		opts.MinTLS = TLS12
	}
	if opts.Mode == 0 {
		opts.Mode = wire.ModeEncrypted
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.ScrubTOS == nil {
		scrub := true
		opts.ScrubTOS = &scrub
	}
	tickets, err := lifecycle.NewTicketSealer(opts.TicketTTL)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     opts,
		policy:   config.NewPolicy(func() time.Time { return opts.Clock() }),
		sessions: dataplane.NewTable[*session](opts.Shards),
		tickets:  tickets,
	}
	if opts.SessionTTL > 0 {
		s.tracker = lifecycle.NewTracker(opts.SessionTTL)
	}
	return s, nil
}

// Policy exposes the configuration enforcement policy; the management
// interface announces updates through it.
func (s *Server) Policy() *config.Policy { return s.policy }

// Mode reports the data-channel protection mode.
func (s *Server) Mode() wire.Mode { return s.opts.Mode }

// ShardCount reports the session-table shard count.
func (s *Server) ShardCount() int { return s.sessions.ShardCount() }

// Accept runs the server side of the handshake: verify the certificate
// chain and transcript signature, negotiate the TLS version, derive the
// session and install the client's virtual interface.
func (s *Server) Accept(hello *ClientHello) (*ServerHello, error) {
	if hello.Cert == nil {
		return nil, ErrBadCert
	}
	// Gate on the claimed measurement before any signature verification:
	// a revoked build is refused for the cost of a map lookup.
	if s.opts.GateMeasurement != nil {
		if err := s.opts.GateMeasurement(hello.Cert.Measurement); err != nil {
			return nil, err
		}
	}
	if err := hello.Cert.Verify(s.opts.CAPub, s.opts.Clock()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCert, err)
	}
	if !ed25519.Verify(hello.Cert.Keys.SignPub, hello.transcript(), hello.Signature) {
		return nil, ErrBadSignature
	}
	if hello.MaxTLS < s.opts.MinTLS {
		return nil, fmt.Errorf("%w: client max %#x < server min %#x", ErrDowngrade, hello.MaxTLS, s.opts.MinTLS)
	}
	chosen := hello.MaxTLS
	if chosen > TLS13 {
		chosen = TLS13
	}

	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("vpn: ephemeral key: %w", err)
	}
	sh := &ServerHello{
		EphPub:        eph.PublicKey().Bytes(),
		ChosenTLS:     chosen,
		ConfigVersion: s.policy.Current(),
		ServerPub:     s.opts.SignKey.Public().(ed25519.PublicKey),
		ServerPubSig:  s.opts.Credential,
	}
	if _, err := rand.Read(sh.Nonce[:]); err != nil {
		return nil, fmt.Errorf("vpn: nonce: %w", err)
	}

	now := s.opts.Clock().UnixNano()
	master, err := deriveMaster(eph, hello.EphPub, hello.Nonce, sh.Nonce)
	if err != nil {
		return nil, err
	}
	// Seal the resumption ticket over the session master before signing:
	// the transcript signature covers the ticket.
	sh.Ticket, err = s.tickets.Seal(lifecycle.Ticket{
		ClientID:       hello.ClientID,
		SignPub:        hello.Cert.Keys.SignPub,
		Master:         master,
		ConfigVersion:  sh.ConfigVersion,
		IssuedUnixNano: now,
		Measurement:    hello.Cert.Measurement.String(),
	})
	if err != nil {
		return nil, err
	}
	sh.Signature = ed25519.Sign(s.opts.SignKey, sh.transcript(hello.transcript()))

	sess, err := wire.NewSession(master, s.opts.Mode, false)
	if err != nil {
		return nil, err
	}

	entry := &session{
		sess:    sess,
		cert:    hello.Cert,
		signPub: hello.Cert.Keys.SignPub,
		meas:    hello.Cert.Measurement,
	}
	entry.reportedVersion.Store(hello.ConfigVersion)
	if err := s.install(hello.ClientID, entry, now, false); err != nil {
		return nil, err
	}
	return sh, nil
}

// install inserts a freshly established session, taking over an existing
// one for the same client ID when allowed: a resume (proof of ticket
// possession under the attested key — the same principal reclaiming its
// own slot) always may; a cold handshake only once the old session's
// liveness has expired, so a second machine presenting a valid
// certificate for a live ID still bounces on ErrDuplicateID.
func (s *Server) install(clientID string, entry *session, now int64, resumed bool) error {
	for {
		if s.sessions.Insert(clientID, entry) {
			break
		}
		old, ok := s.sessions.Get(clientID)
		if ok {
			expired := s.tracker != nil && s.tracker.Expired(old.live.Load(), now)
			if !resumed && !expired {
				return fmt.Errorf("%w: %q", ErrDuplicateID, clientID)
			}
			if s.tracker != nil {
				s.tracker.Remove(old.live.Load())
			}
			// Delete by pointer identity: if another handshake won the
			// slot in between, leave it alone and re-evaluate.
			if s.sessions.DeleteIf(clientID, func(se *session) bool { return se == old }) {
				s.takeovers.Add(1)
			}
		}
	}
	if s.tracker != nil {
		entry.live.Store(s.tracker.Add(clientID, now))
	}
	return nil
}

// Disconnect removes a client session.
func (s *Server) Disconnect(clientID string) {
	if sess, ok := s.sessions.Get(clientID); ok && s.tracker != nil {
		s.tracker.Remove(sess.live.Load())
	}
	s.sessions.Delete(clientID)
}

// SessionExpired reports whether the client's session exists but its
// liveness has lapsed — the condition under which a duplicate client ID
// may be taken over. Always false when SessionTTL is disabled.
func (s *Server) SessionExpired(clientID string) bool {
	if s.tracker == nil {
		return false
	}
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		return false
	}
	return s.tracker.Expired(sess.live.Load(), s.opts.Clock().UnixNano())
}

// SweepExpired advances the liveness wheel and evicts every session
// whose TTL lapsed, returning the evicted client IDs. Eviction matches
// the tracked entry by pointer, so a session taken over between the
// sweep decision and the delete survives. The caller (Deployment's
// sweep loop) reclaims transport and address state for the returned IDs.
func (s *Server) SweepExpired() []string {
	if s.tracker == nil {
		return nil
	}
	lapsed := s.tracker.Sweep(s.opts.Clock().UnixNano())
	evicted := make([]string, 0, len(lapsed))
	for _, e := range lapsed {
		e := e
		if s.sessions.DeleteIf(e.ID(), func(se *session) bool { return se.live.Load() == e }) {
			s.evicted.Add(1)
			evicted = append(evicted, e.ID())
		}
	}
	return evicted
}

// SessionTTL reports the configured liveness TTL (0 = disabled).
func (s *Server) SessionTTL() time.Duration { return s.opts.SessionTTL }

// SessionStats snapshots the server-side lifecycle counters.
func (s *Server) SessionStats() lifecycle.SessionStats {
	st := lifecycle.SessionStats{
		Active:    s.sessions.Len(),
		Evicted:   s.evicted.Load(),
		Resumed:   s.resumed.Load(),
		Takeovers: s.takeovers.Load(),
		Revoked:   s.revoked.Load(),
	}
	if s.tracker != nil {
		st.Tracked = s.tracker.Len()
	}
	return st
}

// Measurement reports the attested enclave measurement a client's session
// runs under (zero for sessions resumed from pre-measurement tickets).
func (s *Server) Measurement(clientID string) (sgx.Measurement, bool) {
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		return sgx.Measurement{}, false
	}
	return sess.meas, true
}

// SessionsByMeasurement counts live sessions per attested measurement —
// the per-build breakdown LifecycleStats exposes. Sessions without a
// measurement (pre-measurement resumes) are counted under the zero value.
func (s *Server) SessionsByMeasurement() map[sgx.Measurement]int {
	counts := make(map[sgx.Measurement]int)
	s.sessions.Range(func(_ string, sess *session) bool {
		counts[sess.meas]++
		return true
	})
	return counts
}

// EvictRevoked removes every session attested under measurement m and
// returns the evicted client IDs, using the same pointer-matched delete
// as the liveness sweep so a concurrent takeover is never hit by a stale
// eviction. The caller (the deployment's revocation path) reclaims
// transport and address state for the returned IDs.
func (s *Server) EvictRevoked(m sgx.Measurement) []string {
	type victim struct {
		id   string
		sess *session
	}
	var victims []victim
	s.sessions.Range(func(id string, sess *session) bool {
		if sess.meas == m {
			victims = append(victims, victim{id, sess})
		}
		return true
	})
	evicted := make([]string, 0, len(victims))
	for _, v := range victims {
		v := v
		if s.sessions.DeleteIf(v.id, func(se *session) bool { return se == v.sess }) {
			if s.tracker != nil {
				s.tracker.Remove(v.sess.live.Load())
			}
			s.revoked.Add(1)
			evicted = append(evicted, v.id)
		}
	}
	return evicted
}

// Resume re-establishes a session from a resumption ticket (MsgResume):
// one AEAD open and one signature verification replace the certificate
// chain walk, transcript check, ECDH and — upstream of this call — the
// attestation and enrolment round trips of a cold join. The resumed
// session gets a fresh master (both nonces are mixed in) and a rotated
// ticket. A live session for the same ID is replaced: the signature
// under the ticket-bound attested key proves the same principal is
// reclaiming its own slot.
func (s *Server) Resume(req *ResumeRequest) (*ResumeReply, error) {
	now := s.opts.Clock().UnixNano()
	tk, err := s.tickets.Open(req.Ticket, now)
	if err != nil {
		return nil, err
	}
	if tk.ClientID != req.ClientID {
		return nil, fmt.Errorf("%w: ticket bound to %q, presented by %q", ErrBadTicket, tk.ClientID, req.ClientID)
	}
	// The ticket carries the measurement of the attested certificate it
	// descends from; gate on it before the signature verification so a
	// revoked build cannot slip back in through resume.
	var meas sgx.Measurement
	if tk.Measurement != "" {
		meas, err = sgx.ParseMeasurement(tk.Measurement)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTicket, err)
		}
	}
	if s.opts.GateMeasurement != nil {
		if err := s.opts.GateMeasurement(meas); err != nil {
			return nil, err
		}
	}
	if !ed25519.Verify(tk.SignPub, req.Transcript(), req.Signature) {
		return nil, ErrBadSignature
	}

	reply := &ResumeReply{
		ConfigVersion: s.policy.Target(req.ClientID),
		ServerPub:     s.opts.SignKey.Public().(ed25519.PublicKey),
		ServerPubSig:  s.opts.Credential,
	}
	if _, err := rand.Read(reply.Nonce[:]); err != nil {
		return nil, fmt.Errorf("vpn: nonce: %w", err)
	}
	master := ResumeMaster(tk.Master, req.Nonce, reply.Nonce)
	reply.Ticket, err = s.tickets.Seal(lifecycle.Ticket{
		ClientID:       req.ClientID,
		SignPub:        tk.SignPub,
		Master:         master,
		ConfigVersion:  reply.ConfigVersion,
		IssuedUnixNano: now,
		Measurement:    tk.Measurement,
	})
	if err != nil {
		return nil, err
	}
	reply.Signature = ed25519.Sign(s.opts.SignKey, reply.transcript(req.Transcript()))

	sess, err := wire.NewSession(master, s.opts.Mode, false)
	if err != nil {
		return nil, err
	}
	entry := &session{sess: sess, signPub: tk.SignPub, meas: meas}
	entry.reportedVersion.Store(req.ConfigVersion)
	if err := s.install(req.ClientID, entry, now, true); err != nil {
		return nil, err
	}
	s.resumed.Add(1)
	return reply, nil
}

// ClientCount reports connected clients.
// ClientIDs returns the IDs of every connected client, in shard order
// (unsorted). Unlike the deployment's client registry this includes
// standalone clients that handshook over a transport without ever
// passing through AddClient.
func (s *Server) ClientIDs() []string {
	return s.sessions.Keys()
}

func (s *Server) ClientCount() int {
	return s.sessions.Len()
}

// HandleFrame processes one frame arriving from a client: authenticate and
// decrypt, reject replays, enforce the configuration policy, handle pings,
// scrub the client-to-client QoS flag on delivery, and hand accepted
// packets to the network. The hot path takes one shard read-lock for the
// session lookup and then runs lock-free (atomic counters, internally
// locked wire session) and allocation-free: the frame is decrypted in
// place, so the caller lends the buffer for the duration of the call and
// must treat its contents as consumed afterwards, and the ip slice handed
// to Deliver aliases it (Deliver implementations that keep packets copy).
func (s *Server) HandleFrame(clientID string, frame []byte) error {
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	payload, err := sess.sess.OpenInPlace(frame)
	if err != nil {
		return err
	}
	// Every authenticated frame — keepalive pings included — proves the
	// client is alive; the touch is one atomic store, so the hot path
	// stays lock-free and allocation-free.
	if live := sess.live.Load(); live != nil {
		live.Touch(s.opts.Clock().UnixNano())
	}
	if len(payload) == 0 {
		return fmt.Errorf("vpn: empty payload from %q", clientID)
	}
	switch payload[0] {
	case FramePing:
		ping, err := DecodePing(payload[1:])
		if err != nil {
			return err
		}
		sess.reportedVersion.Store(ping.ConfigVersion)
		return nil
	case FrameNack:
		n, err := DecodeNack(payload[1:])
		if err != nil {
			return err
		}
		if s.opts.OnNack != nil {
			s.opts.OnNack(clientID, n)
		}
		return nil
	case FrameHealth:
		h, err := DecodeHealth(payload[1:])
		if err != nil {
			return err
		}
		if s.opts.OnHealth != nil {
			s.opts.OnHealth(clientID, h)
		}
		return nil
	case FrameData:
		reported := sess.reportedVersion.Load()
		if !s.policy.AcceptsClient(clientID, reported) {
			sess.stats.CountDrop()
			return fmt.Errorf("%w: client %q at version %d, need %d",
				ErrStaleConfig, clientID, reported, s.policy.Target(clientID))
		}
		ip := payload[1:]
		if s.opts.Process != nil && !s.opts.Process(ip) {
			sess.stats.CountDrop()
			return ErrDropped
		}
		sess.stats.CountRx(len(ip))
		if s.opts.Deliver != nil {
			s.opts.Deliver(clientID, ip)
		}
		return nil
	default:
		return fmt.Errorf("vpn: unknown frame type %d from %q", payload[0], clientID)
	}
}

// SendTo tunnels a network packet to a client. Packets entering from the
// external network have their ProcessedTOS flag scrubbed so outside
// attackers cannot claim middlebox processing already happened (paper
// §IV-A); packets relayed between EndBox clients keep it.
func (s *Server) SendTo(clientID string, ip []byte, fromClient bool) error {
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	// Encapsulate into a pooled payload buffer; the caller's ip is never
	// modified — the TOS scrub rewrites the pooled copy in place.
	payload := wire.GetBuffer(1 + len(ip))
	payload[0] = FrameData
	copy(payload[1:], ip)
	if *s.opts.ScrubTOS && !fromClient {
		scrubProcessedTOS(payload[1:])
	}
	frame := wire.GetBuffer(sess.sess.SealedLen(len(payload)))
	sealed, err := sess.sess.SealTo(payload, frame)
	wire.PutBuffer(payload)
	if err != nil {
		wire.PutBuffer(frame)
		return err
	}
	sess.stats.CountTx(len(ip))
	if s.opts.SendTo == nil {
		wire.PutBuffer(frame)
		return fmt.Errorf("vpn: no SendTo transport configured")
	}
	err = s.opts.SendTo(clientID, sealed)
	wire.PutBuffer(frame)
	return err
}

// scrubProcessedTOS clears the 0xeb QoS byte in place, re-serialising the
// header checksum. The caller owns ip (the pooled encapsulation copy).
// Unparsable packets pass unchanged (they will be dropped later).
func scrubProcessedTOS(ip []byte) {
	p := packet.AcquireIPv4()
	defer p.Release()
	if err := p.Parse(ip); err != nil || p.TOS != packet.ProcessedTOS {
		return
	}
	ip[1] = 0 // TOS byte
	ip[10], ip[11] = 0, 0
	hl := p.HeaderLen()
	sum := packet.Checksum(ip[:hl])
	ip[10], ip[11] = byte(sum>>8), byte(sum)
}

// BroadcastPing sends the keepalive/config-announce ping to every
// connected client (paper Fig. 5 step 4). Each client is announced the
// version *it* is required to run — its targeted version when a rollout
// armed one, the global current otherwise — so a targeted client that
// missed the rollout's one-shot announcement (lost datagram, VPN
// reconnect) is re-announced by every keepalive, the same recovery
// global updates get.
func (s *Server) BroadcastPing(grace time.Duration) error {
	return s.pingClients(s.sessions.Keys(), s.policy.Target, grace)
}

// PingClients announces a specific configuration version to a subset of
// clients — the fan-out of a targeted rollout. Unknown client IDs are
// skipped (they may have disconnected since the target set was computed).
func (s *Server) PingClients(clientIDs []string, version uint64, grace time.Duration) error {
	return s.pingClients(clientIDs, func(string) uint64 { return version }, grace)
}

func (s *Server) pingClients(clientIDs []string, versionFor func(clientID string) uint64, grace time.Duration) error {
	now := s.opts.Clock().UnixNano()
	graceSec := uint32(grace / time.Second)

	var firstErr error
	for _, id := range clientIDs {
		sess, ok := s.sessions.Get(id)
		if !ok {
			continue
		}
		payload := EncodePing(Ping{
			SentUnixNano:  now,
			ConfigVersion: versionFor(id),
			GraceSeconds:  graceSec,
		})
		frame, err := sess.sess.Seal(payload)
		if err == nil && s.opts.SendTo != nil {
			err = s.opts.SendTo(id, frame)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CountShed records one overload-shed frame against a client's virtual
// interface. The transport's ingress pool calls it for frames discarded
// at the shedding watermark — before decryption, so the only cost of a
// shed frame is this counter bump.
func (s *Server) CountShed(clientID string) {
	if sess, ok := s.sessions.Get(clientID); ok {
		sess.stats.CountShed()
	}
}

// Stats returns a snapshot of a client's virtual interface counters.
func (s *Server) Stats(clientID string) (VIFStats, error) {
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		return VIFStats{}, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	return sess.stats.Snapshot(), nil
}

// AggregateStats sums counters over all virtual interfaces, shard by
// shard.
func (s *Server) AggregateStats() VIFStats {
	var agg VIFStats
	s.sessions.Range(func(_ string, sess *session) bool {
		agg.Add(sess.stats.Snapshot())
		return true
	})
	return agg
}

// ReportedVersion returns the configuration version a client last proved
// via ping or handshake.
func (s *Server) ReportedVersion(clientID string) (uint64, error) {
	sess, ok := s.sessions.Get(clientID)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	return sess.reportedVersion.Load(), nil
}
