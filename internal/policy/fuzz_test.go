package policy

import (
	"errors"
	"strings"
	"testing"

	"endbox/internal/sgx"
)

// FuzzParseBuilds pins the -allow-builds parser's contract under arbitrary
// input: either a well-formed build list or an error wrapping ErrBadSpec —
// never a panic, never an untyped error, never a build that could not be
// registered. The spec arrives from command lines, so this is the policy
// engine's input-validation boundary.
func FuzzParseBuilds(f *testing.F) {
	hex64 := strings.Repeat("9f", 32)
	for _, seed := range []string{
		"v1=" + hex64,
		"v1=" + hex64 + ",v2.1=" + strings.Repeat("7c", 32),
		"", ",", "=", "v1", "v1=", "=abc", "v1=zz",
		"v1=" + hex64[:63],
		"v1=" + strings.Repeat("00", 32),
		"v1=" + hex64 + ",v1=" + hex64,
		"UPPER.case-1_ok=" + hex64,
		"bad name=" + hex64,
		strings.Repeat("n", 65) + "=" + hex64,
		"v1=" + hex64 + ",",
		"weird\xffbytes=" + hex64,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		builds, err := ParseBuilds(spec)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseBuilds(%q): untyped error %v", spec, err)
			}
			return
		}
		if len(builds) == 0 {
			t.Fatalf("ParseBuilds(%q) accepted an empty build list", spec)
		}
		// Every accepted build must be registrable: valid name, non-zero
		// measurement, no duplicates within the spec.
		r := NewRegistry()
		for _, b := range builds {
			if err := CheckName(b.Name); err != nil {
				t.Fatalf("ParseBuilds(%q) accepted invalid name %q", spec, b.Name)
			}
			if b.Measurement.IsZero() {
				t.Fatalf("ParseBuilds(%q) accepted a zero measurement", spec)
			}
			if err := r.Register(b.Name, b.Measurement); err != nil {
				t.Fatalf("ParseBuilds(%q) accepted unregistrable build %q: %v", spec, b.Name, err)
			}
		}
	})
}

// FuzzCheckName pins the name validator: a typed verdict on any input,
// and acceptance implies the name survives a spec round trip (it contains
// no grammar separators that would re-parse differently).
func FuzzCheckName(f *testing.F) {
	for _, seed := range []string{
		"v1", "v2.1", "client-2024_08", "", " ", "a b", "a=b", "a,b",
		strings.Repeat("n", 64), strings.Repeat("n", 65), "é", "\x00",
	} {
		f.Add(seed)
	}
	hex64 := strings.Repeat("3a", 32)
	f.Fuzz(func(t *testing.T, name string) {
		err := CheckName(name)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("CheckName(%q): untyped error %v", name, err)
			}
			return
		}
		builds, err := ParseBuilds(name + "=" + hex64)
		if err != nil || len(builds) != 1 || builds[0].Name != name {
			t.Fatalf("accepted name %q does not round-trip through a spec: %v %v", name, builds, err)
		}
	})
}

// FuzzParseMeasurement pins the hex parser policy specs lean on: exactly
// the 64-hex-char strings Measurement.String prints parse back, everything
// else fails with ErrBadMeasurement, and parsing round-trips.
func FuzzParseMeasurement(f *testing.F) {
	for _, seed := range []string{
		strings.Repeat("9f", 32), strings.Repeat("00", 32),
		"", "9f", strings.Repeat("9f", 31) + "g0",
		strings.Repeat("9F", 32), strings.Repeat("9f", 33),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := sgx.ParseMeasurement(s)
		if err != nil {
			if !errors.Is(err, sgx.ErrBadMeasurement) {
				t.Fatalf("ParseMeasurement(%q): untyped error %v", s, err)
			}
			return
		}
		if got := m.String(); got != strings.ToLower(s) {
			t.Fatalf("round trip: %q -> %q", s, got)
		}
	})
}
