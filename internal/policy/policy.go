// Package policy implements the attested-identity policy engine: a
// registry naming enclave builds by their measurement and tracking their
// lineage (which build supersedes which) and revocation state. It turns
// the attested measurement — the thing the whole attestation chain
// (report → quote → IAS verdict → CA certificate) actually proves — into
// a first-class policy input: measurement-sealed configuration updates
// (config.SealTo), build-targeted rollouts (core.Selector.Measurements /
// MinBuild) and live revocation (Revoke propagates to the CA allowlist,
// refuses new handshakes and evicts live sessions).
//
// The registry is deliberately small and synchronous: names are operator
// labels ("v1", "v2.1"), lineage is registration order (each build
// supersedes the one registered before it), and revocation is a one-way
// state change fanned out to subscribed callbacks. Everything is safe for
// concurrent use.
package policy

import (
	"errors"
	"fmt"
	"sync"

	"endbox/internal/sgx"
)

// Common errors.
var (
	ErrDuplicateBuild = errors.New("policy: build already registered")
	ErrUnknownBuild   = errors.New("policy: unknown build")
	// ErrBuildRevoked marks an enclave build the operator has revoked:
	// handshakes and resumes from it are refused before any expensive
	// crypto, and its live sessions are evicted.
	ErrBuildRevoked = errors.New("policy: enclave build revoked")
)

// Build is one registered enclave build: an operator-chosen name bound to
// the measurement the CA will see in quotes from that build.
type Build struct {
	// Name labels the build ("v1", "v2.1"); see CheckName for the grammar.
	Name string
	// Measurement is the build's code identity (MRENCLAVE).
	Measurement sgx.Measurement
	// Supersedes names the build this one replaced in the lineage — the
	// build registered immediately before it ("" for the first).
	Supersedes string
	// Revoked reports whether the operator has revoked the build.
	Revoked bool

	seq int // position in the lineage, for MinBuild comparisons
}

// Registry is the measurement registry: build names, lineage and
// revocation state. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*Build
	byMeas   map[sgx.Measurement]*Build
	lineage  []*Build
	onRevoke []func(Build)
}

// NewRegistry creates an empty measurement registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*Build),
		byMeas: make(map[sgx.Measurement]*Build),
	}
}

// Register names an enclave build. Registration order is lineage order:
// each build supersedes the previously registered one, and MinBuild
// selectors compare positions in this order. The name must satisfy
// CheckName, the measurement must be plausible (not all-zero), and both
// must be new to the registry.
func (r *Registry) Register(name string, m sgx.Measurement) error {
	if err := CheckName(name); err != nil {
		return err
	}
	if m.IsZero() {
		return fmt.Errorf("%w: zero measurement for build %q", sgx.ErrBadMeasurement, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("%w: name %q", ErrDuplicateBuild, name)
	}
	if prev, dup := r.byMeas[m]; dup {
		return fmt.Errorf("%w: measurement %s already registered as %q", ErrDuplicateBuild, m, prev.Name)
	}
	b := &Build{Name: name, Measurement: m, seq: len(r.lineage)}
	if n := len(r.lineage); n > 0 {
		b.Supersedes = r.lineage[n-1].Name
	}
	r.byName[name] = b
	r.byMeas[m] = b
	r.lineage = append(r.lineage, b)
	return nil
}

// Revoke marks a build revoked and fans the event out to every OnRevoke
// subscriber (outside the registry lock, so subscribers may call back into
// the registry). Revoking an already-revoked build is a no-op.
func (r *Registry) Revoke(name string) error {
	r.mu.Lock()
	b, ok := r.byName[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownBuild, name)
	}
	if b.Revoked {
		r.mu.Unlock()
		return nil
	}
	b.Revoked = true
	snapshot := *b
	subs := append([]func(Build){}, r.onRevoke...)
	r.mu.Unlock()
	for _, fn := range subs {
		fn(snapshot)
	}
	return nil
}

// OnRevoke subscribes to revocation events. The deployment uses this to
// propagate a Revoke into the CA allowlist and the session sweeper.
func (r *Registry) OnRevoke(fn func(Build)) {
	r.mu.Lock()
	r.onRevoke = append(r.onRevoke, fn)
	r.mu.Unlock()
}

// Lookup returns the build registered under name.
func (r *Registry) Lookup(name string) (Build, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.byName[name]
	if !ok {
		return Build{}, false
	}
	return *b, true
}

// LookupMeasurement returns the build a measurement is registered as.
func (r *Registry) LookupMeasurement(m sgx.Measurement) (Build, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.byMeas[m]
	if !ok {
		return Build{}, false
	}
	return *b, true
}

// NameOf returns the registered name for a measurement, or its hex form
// when the measurement is unregistered — the display identity used in
// per-build session counts.
func (r *Registry) NameOf(m sgx.Measurement) string {
	if b, ok := r.LookupMeasurement(m); ok {
		return b.Name
	}
	return m.String()
}

// MeasurementOf resolves a build name to its measurement.
func (r *Registry) MeasurementOf(name string) (sgx.Measurement, error) {
	b, ok := r.Lookup(name)
	if !ok {
		return sgx.Measurement{}, fmt.Errorf("%w: %q", ErrUnknownBuild, name)
	}
	return b.Measurement, nil
}

// Revoked reports whether a measurement belongs to a revoked build.
// Unregistered measurements are not revoked (the CA allowlist, not the
// registry, decides whether they may enrol at all).
func (r *Registry) Revoked(m sgx.Measurement) bool {
	b, ok := r.LookupMeasurement(m)
	return ok && b.Revoked
}

// CheckMeasurement returns ErrBuildRevoked for measurements of revoked
// builds and nil otherwise — the admission-time gate.
func (r *Registry) CheckMeasurement(m sgx.Measurement) error {
	if b, ok := r.LookupMeasurement(m); ok && b.Revoked {
		return fmt.Errorf("%w: build %q (%s)", ErrBuildRevoked, b.Name, m)
	}
	return nil
}

// AtLeast reports whether measurement m belongs to a build at or after
// minBuild in the lineage — the MinBuild selector predicate. Unregistered
// measurements and unknown minBuild names match nothing.
func (r *Registry) AtLeast(m sgx.Measurement, minBuild string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.byMeas[m]
	if !ok {
		return false
	}
	min, ok := r.byName[minBuild]
	if !ok {
		return false
	}
	return b.seq >= min.seq
}

// Builds returns the lineage, oldest first.
func (r *Registry) Builds() []Build {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Build, len(r.lineage))
	for i, b := range r.lineage {
		out[i] = *b
	}
	return out
}
