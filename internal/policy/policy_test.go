package policy

import (
	"errors"
	"strings"
	"testing"

	"endbox/internal/sgx"
)

func meas(fill byte) sgx.Measurement {
	var m sgx.Measurement
	for i := range m {
		m[i] = fill
	}
	return m
}

func TestRegisterLineage(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("v1", meas(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("v2", meas(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("v2.1", meas(3)); err != nil {
		t.Fatal(err)
	}

	b, ok := r.Lookup("v2.1")
	if !ok || b.Supersedes != "v2" {
		t.Fatalf("v2.1 supersedes %q, want v2", b.Supersedes)
	}
	b, ok = r.Lookup("v1")
	if !ok || b.Supersedes != "" {
		t.Fatalf("first build supersedes %q, want nothing", b.Supersedes)
	}
	builds := r.Builds()
	if len(builds) != 3 || builds[0].Name != "v1" || builds[2].Name != "v2.1" {
		t.Fatalf("lineage = %v", builds)
	}

	if got := r.NameOf(meas(2)); got != "v2" {
		t.Fatalf("NameOf = %q, want v2", got)
	}
	if got := r.NameOf(meas(9)); got != meas(9).String() {
		t.Fatalf("NameOf(unregistered) = %q, want hex", got)
	}
	m, err := r.MeasurementOf("v2")
	if err != nil || m != meas(2) {
		t.Fatalf("MeasurementOf = %v, %v", m, err)
	}
	if _, err := r.MeasurementOf("v99"); !errors.Is(err, ErrUnknownBuild) {
		t.Fatalf("MeasurementOf(unknown) = %v, want ErrUnknownBuild", err)
	}
}

func TestRegisterRejects(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("v1", meas(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("v1", meas(2)); !errors.Is(err, ErrDuplicateBuild) {
		t.Fatalf("duplicate name: %v, want ErrDuplicateBuild", err)
	}
	if err := r.Register("other", meas(1)); !errors.Is(err, ErrDuplicateBuild) {
		t.Fatalf("duplicate measurement: %v, want ErrDuplicateBuild", err)
	}
	if err := r.Register("zero", sgx.Measurement{}); !errors.Is(err, sgx.ErrBadMeasurement) {
		t.Fatalf("zero measurement: %v, want ErrBadMeasurement", err)
	}
	if err := r.Register("bad name", meas(3)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad name: %v, want ErrBadSpec", err)
	}
}

func TestRevokePropagates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("v1", meas(1)); err != nil {
		t.Fatal(err)
	}
	var fired []Build
	r.OnRevoke(func(b Build) { fired = append(fired, b) })

	if err := r.CheckMeasurement(meas(1)); err != nil {
		t.Fatalf("pre-revocation gate: %v", err)
	}
	if err := r.Revoke("v1"); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0].Name != "v1" || !fired[0].Revoked {
		t.Fatalf("OnRevoke fired with %v", fired)
	}
	if !r.Revoked(meas(1)) {
		t.Fatal("Revoked = false after Revoke")
	}
	if err := r.CheckMeasurement(meas(1)); !errors.Is(err, ErrBuildRevoked) {
		t.Fatalf("gate = %v, want ErrBuildRevoked", err)
	}
	// Idempotent: a second revocation neither errors nor re-fires.
	if err := r.Revoke("v1"); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("OnRevoke fired %d times, want 1", len(fired))
	}
	if err := r.Revoke("nope"); !errors.Is(err, ErrUnknownBuild) {
		t.Fatalf("Revoke(unknown) = %v, want ErrUnknownBuild", err)
	}
	// Unregistered measurements are the CA allowlist's concern, not a
	// revocation.
	if r.Revoked(meas(9)) || r.CheckMeasurement(meas(9)) != nil {
		t.Fatal("unregistered measurement treated as revoked")
	}
}

func TestAtLeast(t *testing.T) {
	r := NewRegistry()
	for i, name := range []string{"v1", "v2", "v3"} {
		if err := r.Register(name, meas(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		m    sgx.Measurement
		min  string
		want bool
	}{
		{meas(1), "v1", true},
		{meas(1), "v2", false},
		{meas(2), "v2", true},
		{meas(3), "v2", true},
		{meas(3), "v1", true},
		{meas(9), "v1", false}, // unregistered measurement
		{meas(2), "v9", false}, // unknown min build
	}
	for _, c := range cases {
		if got := r.AtLeast(c.m, c.min); got != c.want {
			t.Errorf("AtLeast(%s, %q) = %v, want %v", r.NameOf(c.m), c.min, got, c.want)
		}
	}
}

func TestParseBuilds(t *testing.T) {
	spec := "v1=" + meas(1).String() + ", v2.1=" + meas(2).String()
	builds, err := ParseBuilds(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(builds) != 2 || builds[0].Name != "v1" || builds[1].Name != "v2.1" {
		t.Fatalf("builds = %v", builds)
	}
	if builds[1].Measurement != meas(2) {
		t.Fatalf("v2.1 measurement = %s", builds[1].Measurement)
	}

	bad := []string{
		"",
		"   ",
		"v1",
		"v1=",
		"v1=xyz",
		"v1=" + meas(1).String()[:62],
		"v1=" + strings.Repeat("00", 32), // zero measurement
		"v1=" + meas(1).String() + ",v1=" + meas(2).String(), // dup name
		"bad name=" + meas(1).String(),
		strings.Repeat("n", 65) + "=" + meas(1).String(),
	}
	for _, spec := range bad {
		if _, err := ParseBuilds(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseBuilds(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestRegisterSpec(t *testing.T) {
	r := NewRegistry()
	spec := "v1=" + meas(1).String() + ",v2=" + meas(2).String()
	if err := r.RegisterSpec(spec); err != nil {
		t.Fatal(err)
	}
	// Spec order became lineage order.
	if !r.AtLeast(meas(2), "v1") || r.AtLeast(meas(1), "v2") {
		t.Fatal("spec order did not become lineage order")
	}
	if err := r.RegisterSpec("v1=" + meas(3).String()); !errors.Is(err, ErrDuplicateBuild) {
		t.Fatalf("re-registering v1: %v, want ErrDuplicateBuild", err)
	}
}
