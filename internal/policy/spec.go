package policy

import (
	"errors"
	"fmt"
	"strings"

	"endbox/internal/sgx"
)

// ErrBadSpec marks a malformed build spec (the -allow-builds grammar).
var ErrBadSpec = errors.New("policy: malformed build spec")

// maxBuildName bounds build-name length; labels longer than this are
// operator mistakes, not identities.
const maxBuildName = 64

// CheckName validates a build name: 1–64 characters from letters, digits,
// '.', '-' and '_', so names like "v2.1" or "client-2024_08" work while
// spec-grammar separators ('=', ',') and whitespace cannot appear.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty build name", ErrBadSpec)
	}
	if len(name) > maxBuildName {
		return fmt.Errorf("%w: build name longer than %d chars", ErrBadSpec, maxBuildName)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return fmt.Errorf("%w: bad character %q in build name %q", ErrBadSpec, c, name)
		}
	}
	return nil
}

// ParseBuilds parses the -allow-builds grammar: comma-separated
// name=measurement pairs, the measurement in the 64-hex-char form
// Measurement.String prints. Every error wraps ErrBadSpec (name grammar,
// hex grammar, duplicates); parsing never panics on any input (fuzzed).
//
//	v1=9f8a...64 hex...,v2=7c1d...64 hex...
func ParseBuilds(spec string) ([]Build, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrBadSpec)
	}
	var builds []Build
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, hexMeas, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("%w: entry %q is not name=measurement", ErrBadSpec, entry)
		}
		if err := CheckName(name); err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate build name %q", ErrBadSpec, name)
		}
		seen[name] = true
		m, err := sgx.ParseMeasurement(hexMeas)
		if err != nil {
			return nil, fmt.Errorf("%w: build %q: %v", ErrBadSpec, name, err)
		}
		if m.IsZero() {
			return nil, fmt.Errorf("%w: build %q: zero measurement", ErrBadSpec, name)
		}
		builds = append(builds, Build{Name: name, Measurement: m})
	}
	return builds, nil
}

// RegisterSpec parses a build spec and registers every build, in spec
// order (which therefore becomes lineage order).
func (r *Registry) RegisterSpec(spec string) error {
	builds, err := ParseBuilds(spec)
	if err != nil {
		return err
	}
	for _, b := range builds {
		if err := r.Register(b.Name, b.Measurement); err != nil {
			return err
		}
	}
	return nil
}
