package udptransport

// Loss-injection tests: the full UDP transport (server serve loop +
// client link) driven through deterministic netsim.Faults impairment.
// These carry the TestLossy prefix CI runs as a dedicated -race job.

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"endbox/internal/netsim"
	"endbox/internal/vpn"
)

// lossyCfg is the ARQ tuning the lossy tests run with: fast timers so a
// full recovery schedule fits in test time.
func lossyCfg() RetransmitConfig {
	return RetransmitConfig{
		Timeout:    25 * time.Millisecond,
		Backoff:    1.5,
		MaxRetries: 10,
		AckDelay:   10 * time.Millisecond,
		Window:     32,
	}
}

// fiveChunkBlob builds a configuration blob spanning exactly five chunks.
func fiveChunkBlob() []byte {
	blob := make([]byte, 4*ChunkPayload+ChunkPayload/2)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	return blob
}

// startLossyTransport binds a server transport with the given impairment
// on its control-path sends.
func startLossyTransport(t *testing.T, ep *fakeEndpoint, filter SendFilter) *Transport {
	t.Helper()
	tr := NewTransport("127.0.0.1:0")
	tr.SetRetransmit(lossyCfg())
	tr.SetSendFilter(filter)
	if err := tr.BindServer(ep); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestLossyConfigFetchFiveChunks is the acceptance scenario: a five-chunk
// configuration publish completes under 15% simulated loss (plus
// duplication and reordering) in both directions, within the retry
// budget, with a deterministic seed.
func TestLossyConfigFetchFiveChunks(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := fiveChunkBlob()
	if chunks, err := EncodeChunks(blob); err != nil || len(chunks) != 5 {
		t.Fatalf("test blob spans %d chunks (err %v), want 5", len(chunks), err)
	}
	ep := &fakeEndpoint{caPub: pub, blob: blob}
	// Server-side impairment: the seeded 15%/5%/5% model, plus a
	// deterministic drop of the 1st and 3rd control datagrams the server
	// sends — the first transmissions of two chunks. Whatever the seeded
	// model does this run, at least two chunks MUST be recovered by
	// retransmission for the fetch to complete.
	serverLoss := netsim.NewFaults(1001, 0.15, 0.05, 0.05)
	var sent atomic.Int64
	serverFilter := func(d []byte, tx func([]byte) error) error {
		switch sent.Add(1) {
		case 1, 3:
			return nil // deterministic chunk loss
		}
		return serverLoss.Filter(d, tx)
	}
	tr := startLossyTransport(t, ep, serverFilter)

	clientLoss := netsim.NewFaults(2002, 0.15, 0.05, 0.05)
	link, err := Dial(ctx, tr.Addr(),
		LinkRetransmit(lossyCfg()),
		LinkSendFilter(clientLoss.Filter))
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	fetched, err := link.FetchConfig(ctx, 1)
	if err != nil {
		t.Fatalf("FetchConfig under 15%% loss: %v (link stats %+v, server stats %+v)",
			err, link.ARQStats(), tr.ARQStats())
	}
	if !bytes.Equal(fetched, blob) {
		t.Fatalf("reassembled blob corrupt: %d bytes vs %d", len(fetched), len(blob))
	}
	srv := tr.ARQStats()
	if srv.Retransmits+srv.FastRetransmit < 2 {
		t.Errorf("the two deterministically dropped chunks were not retransmitted: %+v", srv)
	}
	t.Logf("server ARQ under 15%%/5%%/5%% + 2 forced chunk drops: %+v", srv)
	t.Logf("client ARQ: %+v", link.ARQStats())
}

// TestLossyControlRoundTrips runs the attestation/handshake control
// messages under the same impairment.
func TestLossyControlRoundTrips(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ep := &fakeEndpoint{caPub: pub, blob: []byte("small")}
	tr := startLossyTransport(t, ep, netsim.NewFaults(7, 0.15, 0.05, 0.05).Filter)

	link, err := Dial(ctx, tr.Addr(),
		LinkRetransmit(lossyCfg()),
		LinkSendFilter(netsim.NewFaults(8, 0.15, 0.05, 0.05).Filter))
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	for i := 0; i < 5; i++ {
		got, err := link.Register(ctx, fmt.Sprintf("lossy-platform-%d", i), pub)
		if err != nil {
			t.Fatalf("Register %d under loss: %v", i, err)
		}
		if !got.Equal(pub) {
			t.Fatalf("Register %d: CA key corrupted in transit", i)
		}
	}
	if _, err := link.Hello(ctx, &vpn.ClientHello{ClientID: "lossy-1"}); err != nil {
		t.Fatalf("Hello under loss: %v", err)
	}
	// Server errors still propagate through the reliable path.
	if _, err := link.Register(ctx, "denied", pub); err == nil {
		t.Error("denied registration succeeded under the reliable path")
	}
	if _, err := link.FetchConfig(ctx, 404); err == nil {
		t.Error("fetch error not propagated under the reliable path")
	}
}

// TestLossyFetchCancelMidRetransmit cancels a configuration fetch while
// the ARQ layer is still retransmitting into a black hole and verifies
// the transfer state and timers are torn down and no goroutine leaks —
// run under -race in CI.
func TestLossyFetchCancelMidRetransmit(t *testing.T) {
	before := runtime.NumGoroutine()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ep := &fakeEndpoint{caPub: pub, blob: fiveChunkBlob()}
	// The server answers into a black hole: the client sees nothing, so
	// its request transfer keeps retransmitting until cancelled.
	tr := startLossyTransport(t, ep, func([]byte, func([]byte) error) error { return nil })

	link, err := Dial(context.Background(), tr.Addr(), LinkRetransmit(lossyCfg()))
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	ctx, cancel := context.WithCancel(context.Background())
	fetchErr := make(chan error, 1)
	go func() {
		_, err := link.FetchConfig(ctx, 1)
		fetchErr <- err
	}()
	// Let at least one retransmission round happen, then cancel mid-burn.
	time.Sleep(60 * time.Millisecond)
	cancel()
	select {
	case err := <-fetchErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fetch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled fetch never returned")
	}
	// The deferred cancel inside FetchConfig must have removed the
	// transfer and stopped its timer.
	if err := waitFor(func() bool {
		sends, _ := link.arq.active()
		return sends == 0
	}); err != nil {
		sends, recvs := link.arq.active()
		t.Fatalf("ARQ state leaked after cancel: %d sends, %d recvs", sends, recvs)
	}
	if err := link.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close every timer is stopped; give late AfterFunc goroutines
	// a moment to drain, then require the goroutine count back to start.
	if err := waitFor(func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	}); err != nil {
		t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// TestLossyDisabledARQTimesOut pins the pre-reliability behaviour the
// Disable escape hatch preserves: with the ARQ off and real loss, a
// multi-chunk fetch is at the mercy of the wire (and the legacy path
// still works perfectly on a clean wire).
func TestLossyDisabledARQCleanWire(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := fiveChunkBlob()
	ep := &fakeEndpoint{caPub: pub, blob: blob}
	tr := NewTransport("127.0.0.1:0")
	tr.SetRetransmit(RetransmitConfig{Disable: true})
	if err := tr.BindServer(ep); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	link, err := Dial(ctx, tr.Addr(), LinkRetransmit(RetransmitConfig{Disable: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	fetched, err := link.FetchConfig(ctx, 1)
	if err != nil {
		t.Fatalf("legacy fetch on a clean wire: %v", err)
	}
	if !bytes.Equal(fetched, blob) {
		t.Fatal("legacy fetch corrupted the blob")
	}
	if st := link.ARQStats(); st.TransfersSent != 0 {
		t.Errorf("disabled ARQ recorded transfers: %+v", st)
	}
}

// TestLossyMixedLegacyClient checks an ARQ-less client against an
// ARQ-enabled server: unwrapped requests are answered unwrapped, so old
// clients interoperate.
func TestLossyMixedLegacyClient(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := fiveChunkBlob()
	ep := &fakeEndpoint{caPub: pub, blob: blob}
	tr := startLossyTransport(t, ep, nil) // ARQ on, clean wire

	link, err := Dial(ctx, tr.Addr(), LinkRetransmit(RetransmitConfig{Disable: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	got, err := link.Register(ctx, "legacy-platform", pub)
	if err != nil {
		t.Fatalf("legacy Register against ARQ server: %v", err)
	}
	if !got.Equal(pub) {
		t.Fatal("legacy Register corrupted the key")
	}
	fetched, err := link.FetchConfig(ctx, 1)
	if err != nil {
		t.Fatalf("legacy fetch against ARQ server: %v", err)
	}
	if !bytes.Equal(fetched, blob) {
		t.Fatal("legacy fetch corrupted the blob")
	}
}

// TestLossyAssemblerHardening feeds the reassembly path inconsistent
// chunk streams and expects typed rejections instead of silent
// corruption.
func TestLossyAssemblerHardening(t *testing.T) {
	mkChunk := func(idx, total int, data []byte) []byte {
		body := make([]byte, 4+len(data))
		body[0], body[1] = byte(idx>>8), byte(idx)
		body[2], body[3] = byte(total>>8), byte(total)
		copy(body[4:], data)
		return body
	}
	full := bytes.Repeat([]byte{0xCC}, ChunkPayload)

	t.Run("total changes mid-fetch", func(t *testing.T) {
		var a Assembler
		if _, err := a.Add(mkChunk(0, 3, full)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Add(mkChunk(1, 4, full)); !errors.Is(err, ErrChunkMismatch) {
			t.Errorf("err = %v, want ErrChunkMismatch", err)
		}
	})
	t.Run("duplicate with different payload", func(t *testing.T) {
		var a Assembler
		if _, err := a.Add(mkChunk(0, 2, full)); err != nil {
			t.Fatal(err)
		}
		altered := append([]byte(nil), full...)
		altered[17] ^= 0xFF
		if _, err := a.Add(mkChunk(0, 2, altered)); !errors.Is(err, ErrChunkMismatch) {
			t.Errorf("err = %v, want ErrChunkMismatch", err)
		}
	})
	t.Run("identical retransmit absorbed", func(t *testing.T) {
		var a Assembler
		if _, err := a.Add(mkChunk(0, 2, full)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Add(mkChunk(0, 2, full)); err != nil {
			t.Errorf("idempotent retransmit rejected: %v", err)
		}
		done, err := a.Add(mkChunk(1, 2, []byte("tail")))
		if err != nil || !done {
			t.Fatalf("done=%v err=%v", done, err)
		}
		blob, err := a.Blob()
		if err != nil {
			t.Fatal(err)
		}
		if want := append(append([]byte(nil), full...), []byte("tail")...); !bytes.Equal(blob, want) {
			t.Error("reassembly mismatch")
		}
	})
	t.Run("short non-final chunk rejected", func(t *testing.T) {
		var a Assembler
		if _, err := a.Add(mkChunk(0, 3, []byte("short"))); !errors.Is(err, ErrChunkMismatch) {
			t.Errorf("err = %v, want ErrChunkMismatch", err)
		}
	})
	t.Run("incomplete blob refused", func(t *testing.T) {
		var a Assembler
		if _, err := a.Add(mkChunk(0, 2, full)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Blob(); !errors.Is(err, ErrChunkMismatch) {
			t.Errorf("Blob on incomplete fetch: err = %v", err)
		}
	})
	t.Run("bad chunk headers rejected", func(t *testing.T) {
		var a Assembler
		if _, err := a.Add([]byte{0, 1}); !errors.Is(err, ErrBadChunk) {
			t.Errorf("short body: err = %v", err)
		}
		if _, err := a.Add(mkChunk(5, 3, full)); !errors.Is(err, ErrBadChunk) {
			t.Errorf("index out of range: err = %v", err)
		}
		oversized := mkChunk(0, 1, bytes.Repeat([]byte{1}, ChunkPayload+1))
		if _, err := a.Add(oversized); !errors.Is(err, ErrBadChunk) {
			t.Errorf("oversized payload: err = %v", err)
		}
	})
}
