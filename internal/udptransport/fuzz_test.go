package udptransport

// Fuzzers for the hand-rolled binary decoders on the control path: the
// ACK and reliable-envelope headers of the ARQ layer and the
// configuration chunk header. Each asserts the no-crash property plus
// the decoder's own invariants, and round-trips whatever decodes cleanly.

import (
	"bytes"
	"testing"
)

func FuzzDecodeAck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 0, 0, 3})
	f.Add(encodeAck(0xFFFFFFFF, 0xFFFF, 0xFFFFFFFF)[1:])
	f.Fuzz(func(t *testing.T, body []byte) {
		xfer, cum, bitmap, err := decodeAck(body)
		if err != nil {
			return
		}
		if len(body) != ackBodyLen {
			t.Fatalf("accepted %d-byte ack body", len(body))
		}
		back := encodeAck(xfer, cum, bitmap)
		if back[0] != MsgAck || !bytes.Equal(back[1:], body) {
			t.Fatalf("ack round trip: %x -> %x", body, back)
		}
	})
}

func FuzzDecodeRel(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRel(7, 0, 1, []byte("inner"))[1:])
	f.Add(encodeRel(0, 41, 42, nil)[1:])
	f.Fuzz(func(t *testing.T, body []byte) {
		xfer, seq, total, inner, err := decodeRel(body)
		if err != nil {
			return
		}
		if total == 0 || seq >= total {
			t.Fatalf("accepted envelope with seq %d / total %d", seq, total)
		}
		back := encodeRel(xfer, seq, total, inner)
		if back[0] != MsgRel || !bytes.Equal(back[1:], body) {
			t.Fatalf("envelope round trip: %x -> %x", body, back)
		}
	})
}

func FuzzDecodeChunk(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'x'})
	f.Add([]byte{0, 2, 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, body []byte) {
		idx, total, data, err := DecodeChunk(body)
		if err != nil {
			return
		}
		if total == 0 || idx >= total || len(data) > ChunkPayload {
			t.Fatalf("accepted chunk idx %d total %d len %d", idx, total, len(data))
		}
	})
}

func FuzzAssembler(f *testing.F) {
	// Two arbitrary chunk bodies through one Assembler: whatever the
	// bytes, the assembler must never hand back a blob unless every
	// chunk arrived consistently.
	f.Add([]byte{0, 0, 0, 1, 'a'}, []byte{0, 0, 0, 1, 'b'})
	f.Add([]byte{0, 0, 0, 2, 'a'}, []byte{0, 1, 0, 2, 'b'})
	f.Fuzz(func(t *testing.T, first, second []byte) {
		var a Assembler
		done1, err1 := a.Add(first)
		if err1 != nil {
			return
		}
		done2, err2 := a.Add(second)
		got, want := a.Received()
		if got > want {
			t.Fatalf("assembler holds %d/%d chunks", got, want)
		}
		complete := done1 || (err2 == nil && done2)
		blob, err := a.Blob()
		if complete && err != nil {
			t.Fatalf("complete fetch refused: %v", err)
		}
		if !complete && err == nil {
			t.Fatalf("incomplete fetch produced a %d-byte blob", len(blob))
		}
	})
}
