package udptransport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"endbox/internal/netsim"
)

// fastARQ is the tuning the unit tests run with: real timers, but fast.
func fastARQ() RetransmitConfig {
	return RetransmitConfig{
		Timeout:    20 * time.Millisecond,
		Backoff:    1.5,
		MaxRetries: 8,
		AckDelay:   10 * time.Millisecond,
		Window:     8,
	}
}

func TestRelEnvelopeRoundTrip(t *testing.T) {
	inner := Encode(MsgFetch, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	seg := encodeRel(0xDEADBEEF, 3, 9, inner)
	msgType, body, err := Decode(seg)
	if err != nil || msgType != MsgRel {
		t.Fatalf("type %c err %v", msgType, err)
	}
	xfer, seq, total, got, err := decodeRel(body)
	if err != nil {
		t.Fatal(err)
	}
	if xfer != 0xDEADBEEF || seq != 3 || total != 9 || !bytes.Equal(got, inner) {
		t.Errorf("round trip: xfer=%x seq=%d total=%d inner=%x", xfer, seq, total, got)
	}
}

func TestRelEnvelopeErrors(t *testing.T) {
	if _, _, _, _, err := decodeRel([]byte{1, 2, 3}); err == nil {
		t.Error("short envelope accepted")
	}
	// total == 0
	if _, _, _, _, err := decodeRel([]byte{0, 0, 0, 1, 0, 0, 0, 0}); err == nil {
		t.Error("zero total accepted")
	}
	// seq >= total
	if _, _, _, _, err := decodeRel([]byte{0, 0, 0, 1, 0, 5, 0, 5}); err == nil {
		t.Error("seq >= total accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	ack := encodeAck(7, 12, 0b1010)
	msgType, body, err := Decode(ack)
	if err != nil || msgType != MsgAck {
		t.Fatalf("type %c err %v", msgType, err)
	}
	xfer, cum, bitmap, err := decodeAck(body)
	if err != nil {
		t.Fatal(err)
	}
	if xfer != 7 || cum != 12 || bitmap != 0b1010 {
		t.Errorf("round trip: %d %d %b", xfer, cum, bitmap)
	}
	if _, _, _, err := decodeAck([]byte{1, 2}); err == nil {
		t.Error("short ack accepted")
	}
	if _, _, _, err := decodeAck(make([]byte, ackBodyLen+1)); err == nil {
		t.Error("long ack accepted")
	}
}

// arqPair wires two ARQ endpoints together through goroutine delivery and
// an optional fault filter per direction, mimicking two sockets.
type arqPair struct {
	a, b         *arq
	aRecv, bRecv func(datagram []byte) // dispatch into the receiving side
	wg           sync.WaitGroup
}

// newARQPair builds endpoints a and b. deliverA/deliverB receive inner
// datagrams accepted by the respective endpoint; aFilter/bFilter impair
// the corresponding endpoint's sends (nil = perfect wire).
func newARQPair(cfg RetransmitConfig, aFilter, bFilter SendFilter, deliverA, deliverB func([]byte) bool) *arqPair {
	p := &arqPair{}
	mkTransmit := func(filter SendFilter, to *func(datagram []byte)) func(d []byte) error {
		raw := func(d []byte) error {
			c := append([]byte(nil), d...)
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				(*to)(c)
			}()
			return nil
		}
		if filter == nil {
			return raw
		}
		return func(d []byte) error { return filter(d, raw) }
	}
	aTx := mkTransmit(aFilter, &p.bRecv)
	bTx := mkTransmit(bFilter, &p.aRecv)
	p.a = newARQ(cfg, func(_ *net.UDPAddr, d []byte) error { return aTx(d) }, nil)
	p.b = newARQ(cfg, func(_ *net.UDPAddr, d []byte) error { return bTx(d) }, nil)
	p.aRecv = func(datagram []byte) {
		msgType, body, err := Decode(datagram)
		if err != nil {
			return
		}
		switch msgType {
		case MsgRel:
			p.a.handleRel("peer", nil, body, deliverA)
		case MsgAck:
			p.a.handleAck("peer", body)
		}
	}
	p.bRecv = func(datagram []byte) {
		msgType, body, err := Decode(datagram)
		if err != nil {
			return
		}
		switch msgType {
		case MsgRel:
			p.b.handleRel("peer", nil, body, deliverB)
		case MsgAck:
			p.b.handleAck("peer", body)
		}
	}
	return p
}

func (p *arqPair) close() {
	p.a.close()
	p.b.close()
	p.wg.Wait()
}

func TestARQTransferPerfectWire(t *testing.T) {
	var mu sync.Mutex
	var got [][]byte
	pair := newARQPair(fastARQ(), nil, nil,
		func([]byte) bool { return true },
		func(inner []byte) bool {
			mu.Lock()
			got = append(got, append([]byte(nil), inner...))
			mu.Unlock()
			return true
		})
	defer pair.close()

	inners := make([][]byte, 20) // > window of 8: exercises window advance
	for i := range inners {
		inners[i] = []byte(fmt.Sprintf("segment-%02d", i))
	}
	x, err := pair.a.send("peer", nil, inners)
	if err != nil {
		t.Fatal(err)
	}
	if err := waitFor(func() bool {
		s, _ := pair.a.active()
		return s == 0
	}); err != nil {
		t.Fatalf("transfer never completed: %v", err)
	}
	select {
	case err := <-x.failed:
		t.Fatalf("transfer failed on a perfect wire: %v", err)
	default:
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(inners) {
		t.Fatalf("delivered %d/%d segments", len(got), len(inners))
	}
	seen := make(map[string]bool)
	for _, g := range got {
		if seen[string(g)] {
			t.Fatalf("segment %q delivered twice", g)
		}
		seen[string(g)] = true
	}
	if st := pair.a.snapshot(); st.TransfersDone != 1 || st.Retransmits != 0 {
		t.Errorf("stats on a perfect wire: %+v", st)
	}
}

func TestARQTransferSurvivesLoss(t *testing.T) {
	// 100 segments through 20% drop + 5% duplication + 5% reorder in both
	// directions: the selective-repeat machinery must deliver all of them
	// exactly once within the retry budget.
	var mu sync.Mutex
	delivered := make(map[string]int)
	lossA := netsim.NewFaults(1, 0.20, 0.05, 0.05)
	lossB := netsim.NewFaults(2, 0.20, 0.05, 0.05)
	pair := newARQPair(fastARQ(), lossA.Filter, lossB.Filter,
		func([]byte) bool { return true },
		func(inner []byte) bool {
			mu.Lock()
			delivered[string(inner)]++
			mu.Unlock()
			return true
		})
	defer pair.close()

	const n = 100
	inners := make([][]byte, n)
	for i := range inners {
		inners[i] = []byte(fmt.Sprintf("lossy-segment-%03d", i))
	}
	x, err := pair.a.send("peer", nil, inners)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		s, _ := pair.a.active()
		if s == 0 {
			break
		}
		if time.Now().After(deadline) {
			st := pair.a.snapshot()
			t.Fatalf("transfer stuck: %+v", st)
		}
		select {
		case err := <-x.failed:
			t.Fatalf("budget exhausted at 20%% loss: %v (stats %+v)", err, pair.a.snapshot())
		case <-time.After(5 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != n {
		t.Fatalf("delivered %d/%d distinct segments", len(delivered), n)
	}
	for k, c := range delivered {
		if c != 1 {
			t.Errorf("segment %q delivered %d times (dedupe broken)", k, c)
		}
	}
	st := pair.a.snapshot()
	if st.Retransmits+st.FastRetransmit == 0 {
		t.Error("no retransmissions recorded at 20% loss")
	}
	t.Logf("sender stats at 20%% loss: %+v", st)
	t.Logf("receiver stats: %+v", pair.b.snapshot())
}

func TestARQBudgetExhaustion(t *testing.T) {
	// A black-hole wire: the transfer must fail with ErrRetryBudget in
	// bounded time and leave no state behind.
	blackhole := func(d []byte, _ func([]byte) error) error { return nil }
	pair := newARQPair(fastARQ(), blackhole, nil,
		func([]byte) bool { return true },
		func([]byte) bool { return true })
	defer pair.close()

	x, err := pair.a.send("peer", nil, [][]byte{[]byte("doomed")})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-x.failed:
		if !errors.Is(err, ErrRetryBudget) {
			t.Fatalf("failure error = %v, want ErrRetryBudget", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("budget exhaustion never signalled")
	}
	if s, _ := pair.a.active(); s != 0 {
		t.Errorf("%d transfers still tracked after failure", s)
	}
	if st := pair.a.snapshot(); st.TransfersFail != 1 {
		t.Errorf("TransfersFail = %d, want 1", st.TransfersFail)
	}
}

func TestARQCancelStopsTimers(t *testing.T) {
	blackhole := func(d []byte, _ func([]byte) error) error { return nil }
	pair := newARQPair(fastARQ(), blackhole, nil,
		func([]byte) bool { return true },
		func([]byte) bool { return true })
	defer pair.close()

	x, err := pair.a.send("peer", nil, [][]byte{[]byte("cancelled")})
	if err != nil {
		t.Fatal(err)
	}
	pair.a.cancel(x)
	pair.a.cancel(x) // idempotent
	if s, _ := pair.a.active(); s != 0 {
		t.Fatalf("%d transfers tracked after cancel", s)
	}
	// The stopped timer must not fire a late failure.
	select {
	case err := <-x.failed:
		t.Fatalf("cancelled transfer signalled failure: %v", err)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestARQCloseFailsPending(t *testing.T) {
	blackhole := func(d []byte, _ func([]byte) error) error { return nil }
	pair := newARQPair(fastARQ(), blackhole, nil,
		func([]byte) bool { return true },
		func([]byte) bool { return true })

	x, err := pair.a.send("peer", nil, [][]byte{[]byte("orphaned")})
	if err != nil {
		t.Fatal(err)
	}
	pair.a.close()
	select {
	case err := <-x.failed:
		if !errors.Is(err, ErrLinkClosed) {
			t.Fatalf("failure error = %v, want ErrLinkClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close never failed the pending transfer")
	}
	if _, err := pair.a.send("peer", nil, [][]byte{[]byte("late")}); !errors.Is(err, ErrLinkClosed) {
		t.Errorf("send after close: err = %v, want ErrLinkClosed", err)
	}
	pair.b.close()
	pair.wg.Wait()
}

func TestARQReceiverDedupes(t *testing.T) {
	cfg := fastARQ()
	var acks [][]byte
	var mu sync.Mutex
	a := newARQ(cfg, func(_ *net.UDPAddr, d []byte) error {
		mu.Lock()
		acks = append(acks, append([]byte(nil), d...))
		mu.Unlock()
		return nil
	}, nil)
	defer a.close()

	delivered := 0
	deliver := func([]byte) bool { delivered++; return true }
	seg := encodeRel(1, 0, 2, []byte("dup-me"))
	a.handleRel("p", nil, seg[1:], deliver)
	a.handleRel("p", nil, seg[1:], deliver)
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(acks) != 2 {
		t.Fatalf("%d acks sent, want 2 (dup re-acked)", len(acks))
	}
	// Both acks advertise the hole at seq 1: cum=1, bitmap 0.
	for i, ack := range acks {
		xfer, cum, bitmap, err := decodeAck(ack[1:])
		if err != nil || xfer != 1 || cum != 1 || bitmap != 0 {
			t.Errorf("ack %d = xfer %d cum %d bitmap %b err %v", i, xfer, cum, bitmap, err)
		}
	}
	if st := a.snapshot(); st.DupSegments != 1 {
		t.Errorf("DupSegments = %d, want 1", st.DupSegments)
	}
}

func TestARQCompletedTransferReAcked(t *testing.T) {
	cfg := fastARQ()
	var acks int
	var mu sync.Mutex
	a := newARQ(cfg, func(_ *net.UDPAddr, d []byte) error {
		mu.Lock()
		acks++
		mu.Unlock()
		return nil
	}, nil)
	defer a.close()

	delivered := 0
	deliver := func([]byte) bool { delivered++; return true }
	seg := encodeRel(9, 0, 1, []byte("once"))
	a.handleRel("p", nil, seg[1:], deliver)
	// Late retransmits of a completed transfer: re-acked, not re-delivered.
	a.handleRel("p", nil, seg[1:], deliver)
	a.handleRel("p", nil, seg[1:], deliver)
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	mu.Lock()
	defer mu.Unlock()
	if acks != 3 {
		t.Fatalf("%d acks, want 3", acks)
	}
	if _, r := a.active(); r != 0 {
		t.Errorf("%d receive states linger after completion", r)
	}
}

func TestARQRefusedDeliveryNotAcked(t *testing.T) {
	// A delivery the upper layer refuses (full queue) must not be marked
	// received: the ack keeps advertising the hole so the sender resends.
	cfg := fastARQ()
	var lastAck []byte
	var mu sync.Mutex
	a := newARQ(cfg, func(_ *net.UDPAddr, d []byte) error {
		mu.Lock()
		lastAck = append([]byte(nil), d...)
		mu.Unlock()
		return nil
	}, nil)
	defer a.close()

	refuse := true
	delivered := 0
	deliver := func([]byte) bool {
		if refuse {
			return false
		}
		delivered++
		return true
	}
	seg := encodeRel(4, 0, 1, []byte("try-again"))
	a.handleRel("p", nil, seg[1:], deliver)
	mu.Lock()
	if lastAck != nil {
		mu.Unlock()
		t.Fatal("refused delivery was acknowledged")
	}
	mu.Unlock()
	refuse = false
	a.handleRel("p", nil, seg[1:], deliver) // the retransmit
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	mu.Lock()
	defer mu.Unlock()
	if lastAck == nil {
		t.Fatal("accepted delivery not acknowledged")
	}
	if _, cum, _, _ := decodeAck(lastAck[1:]); cum != 1 {
		t.Errorf("final ack cum = %d, want 1", cum)
	}
}

func TestARQGapProbeAdvertisesHoles(t *testing.T) {
	// Deliver segment 1 of 3 only, then go silent: the receiver's gap
	// probe must re-advertise cum=0 with bit 1 set, and after the probe
	// budget the half-assembled transfer must be dropped.
	cfg := fastARQ()
	cfg.MaxRetries = 3
	var mu sync.Mutex
	var probes [][]byte
	a := newARQ(cfg, func(_ *net.UDPAddr, d []byte) error {
		mu.Lock()
		probes = append(probes, append([]byte(nil), d...))
		mu.Unlock()
		return nil
	}, nil)
	defer a.close()

	seg := encodeRel(2, 1, 3, []byte("middle"))
	a.handleRel("p", nil, seg[1:], func([]byte) bool { return true })
	if err := waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(probes) >= 2 // initial ack + at least one gap probe
	}); err != nil {
		t.Fatal("gap probe never fired")
	}
	mu.Lock()
	for i, p := range probes {
		xfer, cum, bitmap, err := decodeAck(p[1:])
		if err != nil || xfer != 2 || cum != 0 || bitmap&0b10 == 0 {
			t.Errorf("probe %d = xfer %d cum %d bitmap %b err %v", i, xfer, cum, bitmap, err)
		}
	}
	mu.Unlock()
	// The probe budget eventually abandons the transfer.
	if err := waitFor(func() bool {
		_, r := a.active()
		return r == 0
	}); err != nil {
		t.Fatal("abandoned transfer never cleaned up")
	}
	if st := a.snapshot(); st.GapProbes == 0 {
		t.Error("no gap probes recorded")
	}
}

func TestARQSendValidation(t *testing.T) {
	a := newARQ(fastARQ(), func(_ *net.UDPAddr, d []byte) error { return nil }, nil)
	defer a.close()
	if _, err := a.send("p", nil, nil); err == nil {
		t.Error("empty transfer accepted")
	}
	if _, err := a.send("p", nil, make([][]byte, maxSegments+1)); err == nil {
		t.Error("oversized transfer accepted")
	}
	if _, err := a.send("p", nil, [][]byte{make([]byte, maxRelInner+1)}); err == nil {
		t.Error("oversized segment accepted")
	}
}
