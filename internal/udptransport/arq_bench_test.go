package udptransport

// BenchmarkLossyConfigFetch records the ARQ layer's retransmit overhead:
// a five-chunk configuration fetch over real loopback UDP at 0%, 10% and
// 20% simulated control-path loss. Results are committed as
// BENCH_arq.json; the interesting metrics are ns/op (latency cost of
// recovery) and retransmits/op (wire cost of recovery).

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"testing"
	"time"

	"endbox/internal/core"
	"endbox/internal/netsim"
)

func benchARQCfg() RetransmitConfig {
	return RetransmitConfig{
		Timeout:    20 * time.Millisecond,
		Backoff:    1.5,
		MaxRetries: 12,
		AckDelay:   5 * time.Millisecond,
	}
}

func BenchmarkLossyConfigFetch(b *testing.B) {
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	blob := fiveChunkBlob()
	for _, loss := range []float64{0, 0.10, 0.20} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			ep := &fakeEndpoint{caPub: pub, blob: blob}
			tr := NewTransport("127.0.0.1:0")
			tr.SetRetransmit(benchARQCfg())
			if loss > 0 {
				tr.SetLossProfile(core.LossProfile{Drop: loss, Seed: 42})
			}
			if err := tr.BindServer(ep); err != nil {
				b.Fatal(err)
			}
			defer tr.Close()

			ctx := context.Background()
			opts := []DialOption{LinkRetransmit(benchARQCfg())}
			if loss > 0 {
				opts = append(opts, LinkSendFilter(netsim.NewFaults(43, loss, 0, 0).Filter))
			}
			link, err := Dial(ctx, tr.Addr(), opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer link.Close()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := link.FetchConfig(ctx, 1)
				if err != nil {
					b.Fatalf("fetch %d: %v (server %+v, link %+v)", i, err, tr.ARQStats(), link.ARQStats())
				}
				if len(got) != len(blob) {
					b.Fatalf("fetch %d: %d bytes, want %d", i, len(got), len(blob))
				}
			}
			b.StopTimer()
			srv := tr.ARQStats()
			cli := link.ARQStats()
			n := float64(b.N)
			b.ReportMetric(float64(srv.SegmentsSent)/n, "segs/op")
			b.ReportMetric(float64(srv.Retransmits+srv.FastRetransmit+cli.Retransmits+cli.FastRetransmit)/n, "retrans/op")
			b.ReportMetric(float64(srv.AcksSent+cli.AcksSent)/n, "acks/op")
			b.SetBytes(int64(len(blob)))
		})
	}
}
