package udptransport

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecode(t *testing.T) {
	msg := Encode(MsgFrame, []byte("frame-bytes"))
	msgType, body, err := Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgFrame || string(body) != "frame-bytes" {
		t.Errorf("got %c %q", msgType, body)
	}
	if _, _, err := Decode(nil); !errors.Is(err, ErrShortMessage) {
		t.Errorf("empty datagram: err = %v", err)
	}
}

func TestEncodeDecodeJSON(t *testing.T) {
	reg := Register{PlatformID: "platform-1", Key: bytes.Repeat([]byte{7}, 32)}
	msg, err := EncodeJSON(MsgRegister, reg)
	if err != nil {
		t.Fatal(err)
	}
	msgType, body, err := Decode(msg)
	if err != nil || msgType != MsgRegister {
		t.Fatalf("type %c err %v", msgType, err)
	}
	var back Register
	if err := DecodeJSON(body, &back); err != nil {
		t.Fatal(err)
	}
	if back.PlatformID != reg.PlatformID || !bytes.Equal(back.Key, reg.Key) {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestEncodeJSONTooLarge(t *testing.T) {
	huge := Register{PlatformID: string(bytes.Repeat([]byte{'x'}, MaxDatagram))}
	if _, err := EncodeJSON(MsgRegister, huge); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestErrorf(t *testing.T) {
	msgType, body, err := Decode(Errorf("bad %d", 42))
	if err != nil || msgType != MsgError || string(body) != "bad 42" {
		t.Errorf("got %c %q %v", msgType, body, err)
	}
}

func TestChunkRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, ChunkPayload - 1, ChunkPayload, ChunkPayload + 1, 3*ChunkPayload + 17} {
		blob := bytes.Repeat([]byte{0xAB}, size)
		for i := range blob {
			blob[i] = byte(i)
		}
		chunks, err := EncodeChunks(blob)
		if err != nil {
			t.Fatal(err)
		}
		wantChunks := (size + ChunkPayload - 1) / ChunkPayload
		if wantChunks == 0 {
			wantChunks = 1
		}
		if len(chunks) != wantChunks {
			t.Fatalf("size %d: %d chunks, want %d", size, len(chunks), wantChunks)
		}
		var back []byte
		for i, c := range chunks {
			msgType, body, err := Decode(c)
			if err != nil || msgType != MsgConfig {
				t.Fatalf("chunk %d: type %c err %v", i, msgType, err)
			}
			idx, total, data, err := DecodeChunk(body)
			if err != nil {
				t.Fatal(err)
			}
			if idx != i || total != wantChunks {
				t.Fatalf("chunk header %d/%d, want %d/%d", idx, total, i, wantChunks)
			}
			back = append(back, data...)
		}
		if !bytes.Equal(back, blob) {
			t.Errorf("size %d: reassembly mismatch", size)
		}
	}
}

func TestChunkProperty(t *testing.T) {
	f := func(blob []byte) bool {
		chunks, err := EncodeChunks(blob)
		if err != nil {
			return false
		}
		var back []byte
		for _, c := range chunks {
			_, body, err := Decode(c)
			if err != nil {
				return false
			}
			_, _, data, err := DecodeChunk(body)
			if err != nil {
				return false
			}
			back = append(back, data...)
		}
		return bytes.Equal(back, blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeChunkErrors(t *testing.T) {
	if _, _, _, err := DecodeChunk([]byte{1, 2}); err == nil {
		t.Error("short chunk accepted")
	}
	if _, _, _, err := DecodeChunk([]byte{0, 5, 0, 3, 1}); err == nil {
		t.Error("index >= total accepted")
	}
	if _, _, _, err := DecodeChunk([]byte{0, 0, 0, 0}); err == nil {
		t.Error("zero total accepted")
	}
}
