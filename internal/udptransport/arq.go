package udptransport

// arq.go implements the selective-repeat ARQ layer that makes the
// control/configuration path survive a lossy network (docs/PROTOCOL.md §5).
//
// A reliable *transfer* is an ordered set of segments 0..total-1, each a
// complete inner datagram (type byte + body) wrapped in a MsgRel envelope
// carrying (transfer id, seq, total). The receiver acknowledges with
// MsgAck datagrams carrying a cumulative ack plus a 32-bit selective-ack
// bitmap; the sender keeps a bounded window of unacknowledged segments in
// flight, retransmits on a backed-off timer with a retry budget, and
// fast-retransmits segments a selective ack proves lost. The receiver
// deduplicates (a retransmitted segment is re-acked, not re-delivered)
// and, when a transfer stalls with holes, re-advertises them on a gap
// probe timer so the sender resends exactly the missing chunks instead of
// the receiver timing out the whole fetch.
//
// Transfer IDs are namespaced per direction: an ack for transfer X always
// refers to an outgoing transfer X of the ack's receiver, so the two
// endpoints allocate IDs independently.
//
// Data-channel frames (MsgFrame) never pass through this layer: they stay
// fire-and-forget and allocation-free.

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"endbox/internal/core"
)

// RetransmitConfig tunes the ARQ layer; it is defined in internal/core so
// deployments can carry it without importing the transport.
type RetransmitConfig = core.RetransmitConfig

const (
	// relHeaderLen is the MsgRel envelope: type, transfer id, seq, total.
	relHeaderLen = 1 + 4 + 2 + 2
	// ackBodyLen is the MsgAck body: transfer id, cumulative ack, bitmap.
	ackBodyLen = 4 + 2 + 4
	// maxRelInner bounds the inner datagram a single segment can carry.
	maxRelInner = MaxDatagram - relHeaderLen
	// maxSegments bounds a transfer's segment count. Derived from
	// MaxChunks so the largest configuration fetch the chunker may
	// produce is always sendable as one transfer (the uint16 seq space
	// is the hard ceiling).
	maxSegments = MaxChunks
	// doneRing is how many completed incoming transfers a peer remembers
	// so late retransmits are re-acked instead of re-delivered.
	doneRing = 128
	// maxRTO caps exponential backoff so long transfers keep probing.
	maxRTO = 5 * time.Second
	// peerSweepThreshold is the peer count above which creating another
	// peer first evicts idle ones — the bound on per-source state an
	// off-path sender can pin by spraying MsgRel datagrams from spoofed
	// addresses.
	peerSweepThreshold = 1024
	// peerIdleTimeout is how long a peer with no in-flight transfers
	// survives without traffic before a sweep may evict it (losing only
	// its duplicate-suppression ring).
	peerIdleTimeout = 60 * time.Second
	// peerSweepMinInterval rate-limits sweeps so a sustained spray costs
	// one map scan per interval, not one per datagram.
	peerSweepMinInterval = time.Second
)

// ErrRetryBudget reports a reliable transfer abandoned after exhausting
// its retransmission budget.
var ErrRetryBudget = fmt.Errorf("udptransport: retransmit budget exhausted")

// ErrLinkClosed reports a transfer aborted because its endpoint closed.
var ErrLinkClosed = fmt.Errorf("udptransport: link closed")

// encodeRel wraps one inner datagram in a MsgRel envelope.
func encodeRel(xfer uint32, seq, total uint16, inner []byte) []byte {
	out := make([]byte, relHeaderLen+len(inner))
	out[0] = MsgRel
	binary.BigEndian.PutUint32(out[1:], xfer)
	binary.BigEndian.PutUint16(out[5:], seq)
	binary.BigEndian.PutUint16(out[7:], total)
	copy(out[relHeaderLen:], inner)
	return out
}

// decodeRel splits a MsgRel body (without the type byte) into its header
// and inner datagram. The inner slice aliases body.
func decodeRel(body []byte) (xfer uint32, seq, total uint16, inner []byte, err error) {
	if len(body) < relHeaderLen-1 {
		return 0, 0, 0, nil, fmt.Errorf("udptransport: short reliable envelope (%d bytes)", len(body))
	}
	xfer = binary.BigEndian.Uint32(body)
	seq = binary.BigEndian.Uint16(body[4:])
	total = binary.BigEndian.Uint16(body[6:])
	if total == 0 || seq >= total {
		return 0, 0, 0, nil, fmt.Errorf("udptransport: bad reliable envelope seq %d/%d", seq, total)
	}
	return xfer, seq, total, body[8:], nil
}

// encodeAck builds a MsgAck datagram: cum is the next expected seq (all
// segments below it received); bitmap bit i reports segment cum+i.
func encodeAck(xfer uint32, cum uint16, bitmap uint32) []byte {
	out := make([]byte, 1+ackBodyLen)
	out[0] = MsgAck
	binary.BigEndian.PutUint32(out[1:], xfer)
	binary.BigEndian.PutUint16(out[5:], cum)
	binary.BigEndian.PutUint32(out[7:], bitmap)
	return out
}

// decodeAck splits a MsgAck body (without the type byte).
func decodeAck(body []byte) (xfer uint32, cum uint16, bitmap uint32, err error) {
	if len(body) != ackBodyLen {
		return 0, 0, 0, fmt.Errorf("udptransport: bad ack length %d", len(body))
	}
	return binary.BigEndian.Uint32(body),
		binary.BigEndian.Uint16(body[4:]),
		binary.BigEndian.Uint32(body[6:]), nil
}

// ARQStats count the reliability layer's work. Retransmits measure the
// overhead the benchmark records; DupSegments measure how much the
// receiver-side dedupe absorbed.
type ARQStats struct {
	TransfersSent  uint64 // outgoing transfers started
	TransfersDone  uint64 // outgoing transfers fully acknowledged
	TransfersFail  uint64 // outgoing transfers that exhausted the budget
	SegmentsSent   uint64 // first transmissions of a segment
	Retransmits    uint64 // timer-driven retransmissions
	FastRetransmit uint64 // selective-ack-driven retransmissions
	AcksSent       uint64
	DupSegments    uint64 // received segments dropped as duplicates
	GapProbes      uint64 // receiver-initiated hole advertisements
}

// arq is one endpoint's ARQ state over a datagram socket, shared by all
// peers reached through that socket (the server) or dedicated to one (a
// client link, which uses the empty peer key and a nil address).
type arq struct {
	cfg      RetransmitConfig
	transmit func(to *net.UDPAddr, datagram []byte) error
	logf     func(format string, args ...any)

	mu        sync.Mutex
	closed    bool
	peers     map[string]*arqPeer
	lastSweep time.Time
	stats     ARQStats
}

// arqPeer is the per-remote-endpoint state.
type arqPeer struct {
	addr     *net.UDPAddr // last known address (nil on connected sockets)
	lastSeen time.Time
	nextXfer uint32
	sends    map[uint32]*xmit
	recvs    map[uint32]*recvState
	done     [doneRing]uint32 // ring of recently completed incoming transfers
	doneLen  int
	doneNext int
}

// xmit is one outgoing reliable transfer.
type xmit struct {
	peerKey  string
	xfer     uint32
	segs     [][]byte // framed datagrams; nil once acknowledged
	base     int      // lowest unacknowledged seq
	next     int      // next never-sent seq (window edge)
	pending  int      // unacknowledged count
	retries  int
	rto      time.Duration
	timer    *time.Timer
	lastFast time.Time // rate-limits ack-driven retransmission rounds
	// failed reports budget exhaustion or close; buffered so the ARQ
	// never blocks on a caller that stopped listening. Success is not
	// signalled — for requests the response is the signal, for pushed
	// transfers nobody waits.
	failed   chan error
	finished bool
}

// recvState is one incoming reliable transfer being reassembled.
type recvState struct {
	total  uint16
	got    []bool
	count  int
	probes int
	delay  time.Duration
	timer  *time.Timer // gap probe
}

// newARQ creates the layer. transmit is the raw (post-impairment) datagram
// send; logf may be nil.
func newARQ(cfg RetransmitConfig, transmit func(*net.UDPAddr, []byte) error, logf func(string, ...any)) *arq {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &arq{
		cfg:      cfg.WithDefaults(),
		transmit: transmit,
		logf:     logf,
		peers:    make(map[string]*arqPeer),
	}
}

func (a *arq) peer(key string, addr *net.UDPAddr) *arqPeer {
	p := a.peers[key]
	if p == nil {
		if len(a.peers) >= peerSweepThreshold {
			a.sweepPeersLocked()
		}
		p = &arqPeer{
			sends: make(map[uint32]*xmit),
			recvs: make(map[uint32]*recvState),
		}
		a.peers[key] = p
	}
	p.lastSeen = time.Now()
	if addr != nil {
		p.addr = addr // follow NAT rebinds: acks go to the latest address
	}
	return p
}

// sweepPeersLocked evicts peers with no in-flight transfers that have
// been silent past the idle timeout, bounding the per-source state the
// open UDP port accumulates (NAT rebinds strand old keys; spoofed
// sources mint fresh ones). Half-open incoming transfers drain through
// the gap-probe budget first, so a swept peer only loses its
// duplicate-suppression ring. Callers hold a.mu.
func (a *arq) sweepPeersLocked() {
	now := time.Now()
	if now.Sub(a.lastSweep) < peerSweepMinInterval {
		return
	}
	a.lastSweep = now
	cutoff := now.Add(-peerIdleTimeout)
	for k, p := range a.peers {
		if len(p.sends) == 0 && len(p.recvs) == 0 && p.lastSeen.Before(cutoff) {
			delete(a.peers, k)
		}
	}
}

// send starts one reliable transfer carrying the given inner datagrams
// (one per segment) and returns a handle the caller may cancel or watch
// for failure. The inners are copied into framed segments; callers may
// reuse their buffers immediately.
func (a *arq) send(peerKey string, addr *net.UDPAddr, inners [][]byte) (*xmit, error) {
	if len(inners) == 0 || len(inners) > maxSegments {
		return nil, fmt.Errorf("udptransport: reliable transfer needs 1..%d segments, got %d", maxSegments, len(inners))
	}
	for i, in := range inners {
		if len(in) > maxRelInner {
			return nil, fmt.Errorf("udptransport: segment %d exceeds %d bytes", i, maxRelInner)
		}
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrLinkClosed
	}
	p := a.peer(peerKey, addr)
	p.nextXfer++
	x := &xmit{
		peerKey: peerKey,
		xfer:    p.nextXfer,
		segs:    make([][]byte, len(inners)),
		pending: len(inners),
		rto:     a.cfg.Timeout,
		failed:  make(chan error, 1),
	}
	total := uint16(len(inners))
	for i, in := range inners {
		x.segs[i] = encodeRel(x.xfer, uint16(i), total, in)
	}
	p.sends[x.xfer] = x
	x.next = min(len(x.segs), a.cfg.Window)
	burst := make([][]byte, x.next)
	copy(burst, x.segs[:x.next])
	to := p.addr
	a.stats.TransfersSent++
	a.stats.SegmentsSent += uint64(x.next)
	x.timer = time.AfterFunc(x.rto, func() { a.onTimeout(x) })
	a.mu.Unlock()

	for _, seg := range burst {
		if err := a.transmit(to, seg); err != nil {
			a.logf("udptransport: reliable send to %s: %v", peerKey, err)
		}
	}
	return x, nil
}

// onTimeout is the sender's RTO: retransmit every unacknowledged segment
// in the window, back off, and give up once the budget is spent.
func (a *arq) onTimeout(x *xmit) {
	a.mu.Lock()
	if a.closed || x.finished {
		a.mu.Unlock()
		return
	}
	p := a.peers[x.peerKey]
	if p == nil || p.sends[x.xfer] != x {
		a.mu.Unlock()
		return
	}
	x.retries++
	if x.retries > a.cfg.MaxRetries {
		x.finished = true
		delete(p.sends, x.xfer)
		a.stats.TransfersFail++
		a.mu.Unlock()
		x.failed <- fmt.Errorf("%w (transfer %d, %d segments unacknowledged)", ErrRetryBudget, x.xfer, x.pending)
		a.logf("udptransport: transfer %d to %q abandoned after %d retries", x.xfer, x.peerKey, a.cfg.MaxRetries)
		return
	}
	var resend [][]byte
	for i := x.base; i < x.next; i++ {
		if x.segs[i] != nil {
			resend = append(resend, x.segs[i])
		}
	}
	a.stats.Retransmits += uint64(len(resend))
	x.rto = time.Duration(float64(x.rto) * a.cfg.Backoff)
	if x.rto > maxRTO {
		x.rto = maxRTO
	}
	x.timer.Reset(x.rto)
	to := p.addr
	a.mu.Unlock()

	for _, seg := range resend {
		if err := a.transmit(to, seg); err != nil {
			a.logf("udptransport: retransmit to %q: %v", x.peerKey, err)
		}
	}
}

// handleAck processes one MsgAck body for a peer: advance the window,
// fast-retransmit advertised holes, and open room for unsent segments.
func (a *arq) handleAck(peerKey string, body []byte) {
	xfer, cum, bitmap, err := decodeAck(body)
	if err != nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	p := a.peers[peerKey]
	if p == nil {
		a.mu.Unlock()
		return
	}
	x := p.sends[xfer]
	if x == nil {
		a.mu.Unlock()
		return
	}
	progress := false
	ackSeq := func(i int) {
		if i < len(x.segs) && x.segs[i] != nil {
			x.segs[i] = nil
			x.pending--
			progress = true
		}
	}
	for i := 0; i < int(cum); i++ {
		ackSeq(i)
	}
	highest := -1
	for i := 0; i < 32; i++ {
		if bitmap&(1<<i) != 0 {
			ackSeq(int(cum) + i)
			if int(cum)+i > highest {
				highest = int(cum) + i
			}
		}
	}
	if int(cum) > x.base {
		x.base = int(cum)
	}
	if x.pending == 0 && x.next == len(x.segs) {
		// Fully acknowledged: the transfer is done.
		x.finished = true
		x.timer.Stop()
		delete(p.sends, xfer)
		a.stats.TransfersDone++
		a.mu.Unlock()
		return
	}
	// Selective acks above unacknowledged segments prove those segments
	// lost (packets behind them arrived): resend them now rather than
	// waiting out the RTO. One round per half-RTO — every in-flight ack
	// repeats the same hole evidence, and resending per ack would
	// multiply the recovery traffic without speeding it up.
	var resend [][]byte
	if highest >= 0 && time.Since(x.lastFast) >= x.rto/2 {
		for i := x.base; i < highest && i < x.next; i++ {
			if x.segs[i] != nil {
				resend = append(resend, x.segs[i])
			}
		}
		if len(resend) > 0 {
			x.lastFast = time.Now()
		}
		a.stats.FastRetransmit += uint64(len(resend))
	}
	// Window advanced: feed never-sent segments into the opening.
	var fresh [][]byte
	for x.next < len(x.segs) && x.next < x.base+a.cfg.Window {
		fresh = append(fresh, x.segs[x.next])
		x.next++
	}
	a.stats.SegmentsSent += uint64(len(fresh))
	if progress {
		// Acknowledged progress refills the budget and re-arms the timer
		// at the base timeout: the budget bounds *fruitless* rounds.
		x.retries = 0
		x.rto = a.cfg.Timeout
		x.timer.Reset(x.rto)
	}
	to := p.addr
	a.mu.Unlock()

	for _, seg := range resend {
		if err := a.transmit(to, seg); err != nil {
			a.logf("udptransport: fast retransmit to %q: %v", peerKey, err)
		}
	}
	for _, seg := range fresh {
		if err := a.transmit(to, seg); err != nil {
			a.logf("udptransport: reliable send to %q: %v", peerKey, err)
		}
	}
}

// handleRel processes one incoming MsgRel body. deliver hands the inner
// datagram upward and reports whether it was accepted; a refused delivery
// is treated as loss (not acknowledged) so the sender retries later. The
// inner slice aliases body and is lent to deliver for the duration of the
// call only.
func (a *arq) handleRel(peerKey string, addr *net.UDPAddr, body []byte, deliver func(inner []byte) bool) {
	xfer, seq, total, inner, err := decodeRel(body)
	if err != nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	p := a.peer(peerKey, addr)
	for i := 0; i < p.doneLen; i++ {
		if p.done[i] == xfer {
			// A retransmit of a transfer we completed: re-ack so the
			// sender can finish, but deliver nothing twice.
			a.stats.DupSegments++
			a.stats.AcksSent++
			to := p.addr
			a.mu.Unlock()
			a.sendAck(to, encodeAck(xfer, total, 0))
			return
		}
	}
	r := p.recvs[xfer]
	if r == nil {
		if int(total) > maxSegments {
			a.mu.Unlock()
			return
		}
		r = &recvState{total: total, got: make([]bool, total), delay: a.cfg.AckDelay}
		p.recvs[xfer] = r
	}
	if r.total != total || int(seq) >= len(r.got) {
		// A sender that changes its mind about the segment count is
		// corrupt; drop the envelope.
		a.mu.Unlock()
		return
	}
	if r.got[seq] {
		a.stats.DupSegments++
		ack := r.ack(xfer)
		a.stats.AcksSent++
		to := p.addr
		a.mu.Unlock()
		a.sendAck(to, ack)
		return
	}
	a.mu.Unlock()

	// Delivery happens outside the lock (the server handler may send —
	// and therefore re-enter the ARQ to push its reliable response).
	accepted := deliver(inner)

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	p = a.peers[peerKey]
	if p == nil {
		a.mu.Unlock()
		return
	}
	r = p.recvs[xfer]
	if r == nil || int(seq) >= len(r.got) {
		a.mu.Unlock()
		return
	}
	if !accepted {
		// The upper layer shed the message (queue full): pretend the
		// segment was lost so the retransmit redelivers it. Arm the gap
		// probe so this half-open transfer still self-expires through
		// the probe budget if the sender gives up before redelivering.
		a.armGapProbe(p, peerKey, xfer, r)
		a.mu.Unlock()
		return
	}
	if !r.got[seq] {
		r.got[seq] = true
		r.count++
	}
	complete := r.count == int(r.total)
	ack := r.ack(xfer)
	a.stats.AcksSent++
	to := p.addr
	if complete {
		if r.timer != nil {
			r.timer.Stop()
		}
		delete(p.recvs, xfer)
		p.rememberDone(xfer)
	} else {
		// Re-arm the gap probe: if the stream stalls with holes, the
		// receiver re-advertises them instead of timing out the fetch.
		// Progress refills the probe budget and resets the probe delay —
		// an earlier stall must not leave later holes waiting out an
		// inflated backed-off delay.
		r.probes = 0
		r.delay = a.cfg.AckDelay
		a.armGapProbe(p, peerKey, xfer, r)
	}
	a.mu.Unlock()
	a.sendAck(to, ack)
}

// ack builds the transfer's current cumulative + selective acknowledgment.
// Callers hold a.mu.
func (r *recvState) ack(xfer uint32) []byte {
	cum := 0
	for cum < len(r.got) && r.got[cum] {
		cum++
	}
	var bitmap uint32
	for i := 0; i < 32 && cum+i < len(r.got); i++ {
		if r.got[cum+i] {
			bitmap |= 1 << i
		}
	}
	return encodeAck(xfer, uint16(cum), bitmap)
}

// rememberDone records a completed incoming transfer for duplicate
// suppression. Callers hold a.mu.
func (p *arqPeer) rememberDone(xfer uint32) {
	p.done[p.doneNext] = xfer
	p.doneNext = (p.doneNext + 1) % doneRing
	if p.doneLen < doneRing {
		p.doneLen++
	}
}

// armGapProbe (re)schedules the receiver's hole advertisement for an
// incomplete transfer. Callers hold a.mu.
func (a *arq) armGapProbe(p *arqPeer, peerKey string, xfer uint32, r *recvState) {
	if r.timer != nil {
		r.timer.Stop()
	}
	r.timer = time.AfterFunc(r.delay, func() { a.onGapProbe(peerKey, xfer) })
}

// onGapProbe fires when an incomplete transfer has been silent for the
// ack delay: re-send the current ack (advertising the holes) so the
// sender retransmits exactly the missing segments, with its own backoff
// and budget so abandoned transfers do not probe forever.
func (a *arq) onGapProbe(peerKey string, xfer uint32) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	p := a.peers[peerKey]
	if p == nil {
		a.mu.Unlock()
		return
	}
	r := p.recvs[xfer]
	if r == nil {
		a.mu.Unlock()
		return
	}
	r.probes++
	if r.probes > a.cfg.MaxRetries {
		// The sender is gone; drop the half-assembled transfer.
		if r.timer != nil {
			r.timer.Stop()
		}
		delete(p.recvs, xfer)
		a.mu.Unlock()
		a.logf("udptransport: incoming transfer %d from %q abandoned with %d/%d segments", xfer, peerKey, r.count, r.total)
		return
	}
	ack := r.ack(xfer)
	a.stats.GapProbes++
	a.stats.AcksSent++
	r.delay = time.Duration(float64(r.delay) * a.cfg.Backoff)
	if r.delay > maxRTO {
		r.delay = maxRTO
	}
	r.timer = time.AfterFunc(r.delay, func() { a.onGapProbe(peerKey, xfer) })
	to := p.addr
	a.mu.Unlock()
	a.sendAck(to, ack)
}

func (a *arq) sendAck(to *net.UDPAddr, ack []byte) {
	if err := a.transmit(to, ack); err != nil {
		a.logf("udptransport: ack: %v", err)
	}
}

// cancel abandons an outgoing transfer: the timer is stopped and late
// acks for it are ignored. Safe to call repeatedly and after completion.
func (a *arq) cancel(x *xmit) {
	if x == nil {
		return
	}
	a.mu.Lock()
	if x.finished {
		a.mu.Unlock()
		return
	}
	x.finished = true
	x.timer.Stop()
	if p := a.peers[x.peerKey]; p != nil {
		delete(p.sends, x.xfer)
	}
	a.mu.Unlock()
}

// close stops every timer and fails every outgoing transfer. The layer
// refuses new work afterwards.
func (a *arq) close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	var failed []*xmit
	for _, p := range a.peers {
		for _, x := range p.sends {
			x.finished = true
			x.timer.Stop()
			failed = append(failed, x)
		}
		for _, r := range p.recvs {
			if r.timer != nil {
				r.timer.Stop()
			}
		}
	}
	a.peers = make(map[string]*arqPeer)
	a.mu.Unlock()
	for _, x := range failed {
		select {
		case x.failed <- ErrLinkClosed:
		default:
		}
	}
}

// active reports in-flight transfer counts (tests assert zero after
// cancellation and close).
func (a *arq) active() (sends, recvs int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range a.peers {
		sends += len(p.sends)
		recvs += len(p.recvs)
	}
	return sends, recvs
}

// snapshot returns the cumulative ARQ counters.
func (a *arq) snapshot() ARQStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
