// Package udptransport frames the EndBox control and data messages that
// the cmd/endbox-server and cmd/endbox-client binaries exchange over UDP:
// platform registration, remote attestation, the VPN handshake,
// configuration fetches and data-channel frames. Each datagram is one
// message: a single type byte followed by the body (JSON for control
// messages, raw wire frames for data). The full wire specification,
// including every message type and the reliability state machines, lives
// in docs/PROTOCOL.md.
//
// Two delivery classes share the socket:
//
//   - Control/configuration messages ride a selective-repeat ARQ layer
//     (arq.go): they are wrapped in MsgRel envelopes with per-transfer
//     sequence numbers, acknowledged by MsgAck (cumulative + selective),
//     and retransmitted on backed-off timers with a retry budget, so a
//     multi-chunk configuration fetch survives loss instead of timing
//     out when one datagram disappears.
//   - Data-channel frames (MsgFrame) are fire-and-forget, exactly like
//     the packets they tunnel: no sequence numbers, no acks, no copies.
//
// Buffer ownership: datagrams are read into pooled buffers
// (wire.GetBuffer). A buffer is reused for the next read unless frame
// dispatch hands its ownership to the ingress worker pool
// (dataplane.Pool.SubmitOwned), which releases it after the handler
// returns. Control-message bodies are lent to handlers for the duration
// of the call — the ARQ layer and the JSON decoders copy what they keep.
// See DESIGN.md "Buffer ownership" for the deployment-wide rules.
package udptransport

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
)

// Message types.
const (
	// MsgRegister registers the client platform's quoting-enclave key
	// with the IAS (standing in for Intel's manufacturing provisioning).
	MsgRegister byte = 'R'
	// MsgRegisterOK acknowledges registration.
	MsgRegisterOK byte = 'r'
	// MsgQuote submits an attestation quote for enrolment.
	MsgQuote byte = 'Q'
	// MsgProvision answers with the certificate + sealed shared key.
	MsgProvision byte = 'P'
	// MsgHello opens the VPN handshake.
	MsgHello byte = 'H'
	// MsgServerHello answers the handshake.
	MsgServerHello byte = 'S'
	// MsgResume opens a fast session resume: a resumption ticket and a
	// signed transcript replace the certificate walk and key exchange of
	// a full handshake (docs/PROTOCOL.md §8).
	MsgResume byte = 'u'
	// MsgResumeOK answers a resume with the rotated ticket and the
	// server's signature.
	MsgResumeOK byte = 'U'
	// MsgFrame carries one sealed data-channel frame (either direction).
	MsgFrame byte = 'D'
	// MsgControl carries one sealed control-class frame (keepalive pings,
	// nacks, health reports). It is identical to MsgFrame on the wire
	// except for the delivery class: the server submits it to the ingress
	// pool with SubmitControl semantics, so it keeps flowing through the
	// watermark headroom while data frames are being shed under flood.
	// The type byte is outside the sealed frame and therefore
	// unauthenticated — an attacker marking flood datagrams as control
	// only gains the bounded headroom between the watermark and the hard
	// queue depth, and the frames still fail sealed-frame authentication.
	MsgControl byte = 'k'
	// MsgFetch requests a configuration blob by version (8-byte big
	// endian body).
	MsgFetch byte = 'F'
	// MsgConfig answers a fetch with the sealed update blob.
	MsgConfig byte = 'C'
	// MsgError carries a textual error.
	MsgError byte = '!'
	// MsgRel is the reliable-delivery envelope: a control message wrapped
	// with a transfer ID and sequence numbers so the ARQ layer can
	// retransmit it (body: 4-byte transfer, 2-byte seq, 2-byte total,
	// inner datagram — see arq.go and docs/PROTOCOL.md §5).
	MsgRel byte = '+'
	// MsgAck acknowledges reliable segments: a cumulative ack plus a
	// 32-bit selective-ack bitmap (body: 4-byte transfer, 2-byte cum,
	// 4-byte bitmap).
	MsgAck byte = 'A'
)

// MaxDatagram bounds message sizes (fits a 64 kB tunnelled packet plus
// framing overhead within the UDP maximum).
const MaxDatagram = 65507

// ErrShortMessage reports an empty datagram.
var ErrShortMessage = errors.New("udptransport: empty datagram")

// Register is the body of MsgRegister.
type Register struct {
	PlatformID string            `json:"platform_id"`
	Key        ed25519.PublicKey `json:"key"`
}

// Encode prepends the type byte to a body.
func Encode(msgType byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = msgType
	copy(out[1:], body)
	return out
}

// EncodeJSON marshals body and frames it.
func EncodeJSON(msgType byte, body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("udptransport: marshal %c: %w", msgType, err)
	}
	if len(raw)+1 > MaxDatagram {
		return nil, fmt.Errorf("udptransport: %c message too large (%d bytes)", msgType, len(raw))
	}
	return Encode(msgType, raw), nil
}

// Decode splits a datagram into type and body. The body aliases the input.
func Decode(datagram []byte) (byte, []byte, error) {
	if len(datagram) == 0 {
		return 0, nil, ErrShortMessage
	}
	return datagram[0], datagram[1:], nil
}

// DecodeJSON unmarshals a message body.
func DecodeJSON(body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("udptransport: unmarshal: %w", err)
	}
	return nil
}

// Errorf builds a MsgError datagram.
func Errorf(format string, args ...any) []byte {
	return Encode(MsgError, []byte(fmt.Sprintf(format, args...)))
}

// ChunkPayload is the maximum data bytes per configuration chunk,
// conservative against the UDP maximum after framing. Every chunk except
// the last carries exactly this much; receivers enforce it so a corrupt
// or malicious chunk stream cannot silently shift blob offsets.
const ChunkPayload = 60000

// MaxChunks bounds a single fetch's chunk count (a ~60 MB blob; the
// 16-bit header field is the hard ceiling).
const MaxChunks = 1024

// ErrBadChunk reports a MsgConfig datagram whose own header is invalid
// (short body, zero total, index out of range, oversized payload).
var ErrBadChunk = errors.New("udptransport: bad config chunk")

// ErrChunkMismatch reports chunks that are individually well-formed but
// inconsistent across one fetch: a total that changes mid-stream, a
// duplicate index carrying different bytes, or a non-final chunk shorter
// than ChunkPayload (which would silently shift every later offset).
var ErrChunkMismatch = errors.New("udptransport: config chunk mismatch")

// EncodeChunks splits a large blob into MsgConfig datagrams, each carrying
// [2-byte index][2-byte total][data]. Configuration blobs with full rule
// sets exceed a single UDP datagram. It fails on blobs needing more than
// MaxChunks chunks.
func EncodeChunks(blob []byte) ([][]byte, error) {
	total := (len(blob) + ChunkPayload - 1) / ChunkPayload
	if total == 0 {
		total = 1
	}
	if total > MaxChunks {
		return nil, fmt.Errorf("udptransport: blob of %d bytes needs %d chunks (max %d)", len(blob), total, MaxChunks)
	}
	out := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		start := i * ChunkPayload
		end := start + ChunkPayload
		if end > len(blob) {
			end = len(blob)
		}
		body := make([]byte, 4+end-start)
		body[0], body[1] = byte(i>>8), byte(i)
		body[2], body[3] = byte(total>>8), byte(total)
		copy(body[4:], blob[start:end])
		out = append(out, Encode(MsgConfig, body))
	}
	return out, nil
}

// DecodeChunk splits a MsgConfig body into its index, total and data. The
// data slice aliases body. Errors wrap ErrBadChunk.
func DecodeChunk(body []byte) (index, total int, data []byte, err error) {
	if len(body) < 4 {
		return 0, 0, nil, fmt.Errorf("%w: short body (%d bytes)", ErrBadChunk, len(body))
	}
	index = int(body[0])<<8 | int(body[1])
	total = int(body[2])<<8 | int(body[3])
	if total == 0 || index >= total {
		return 0, 0, nil, fmt.Errorf("%w: header %d/%d", ErrBadChunk, index, total)
	}
	if len(body)-4 > ChunkPayload {
		return 0, 0, nil, fmt.Errorf("%w: %d payload bytes exceed ChunkPayload", ErrBadChunk, len(body)-4)
	}
	return index, total, body[4:], nil
}

// Assembler reassembles one chunked configuration fetch, rejecting the
// inconsistencies DecodeChunk cannot see on its own: a total that changes
// between chunks, duplicate indices with different payloads, and non-final
// chunks shorter than ChunkPayload. Retransmitted chunks (identical index
// and bytes — routine under the ARQ layer) are absorbed silently. The
// zero value is ready to use; an Assembler is not safe for concurrent use.
type Assembler struct {
	total  int
	count  int
	chunks [][]byte
}

// Add consumes one MsgConfig body. It reports whether the fetch is now
// complete; errors wrap ErrBadChunk or ErrChunkMismatch and poison the
// fetch (the caller should abandon the Assembler).
func (a *Assembler) Add(body []byte) (complete bool, err error) {
	idx, total, data, err := DecodeChunk(body)
	if err != nil {
		return false, err
	}
	if a.total == 0 {
		a.total = total
		a.chunks = make([][]byte, total)
	}
	if total != a.total {
		return false, fmt.Errorf("%w: total changed %d -> %d mid-fetch", ErrChunkMismatch, a.total, total)
	}
	if idx < a.total-1 && len(data) != ChunkPayload {
		return false, fmt.Errorf("%w: chunk %d/%d carries %d bytes, want %d", ErrChunkMismatch, idx, total, len(data), ChunkPayload)
	}
	if prev := a.chunks[idx]; prev != nil {
		if !bytes.Equal(prev, data) {
			return false, fmt.Errorf("%w: duplicate chunk %d with different payload", ErrChunkMismatch, idx)
		}
		return a.count == a.total, nil // idempotent retransmit
	}
	// Copy out of the reused receive buffer. make keeps zero-length
	// chunks non-nil, so their retransmits still hit the duplicate path.
	c := make([]byte, len(data))
	copy(c, data)
	a.chunks[idx] = c
	a.count++
	return a.count == a.total, nil
}

// Received reports reassembly progress: chunks held and the expected
// total (0 before the first chunk arrives).
func (a *Assembler) Received() (got, total int) { return a.count, a.total }

// Blob concatenates the reassembled configuration. It fails while chunks
// are still missing.
func (a *Assembler) Blob() ([]byte, error) {
	if a.total == 0 || a.count != a.total {
		return nil, fmt.Errorf("%w: %d/%d chunks held", ErrChunkMismatch, a.count, a.total)
	}
	size := 0
	for _, c := range a.chunks {
		size += len(c)
	}
	blob := make([]byte, 0, size)
	for _, c := range a.chunks {
		blob = append(blob, c...)
	}
	return blob, nil
}
