// Package udptransport frames the EndBox control and data messages that
// the cmd/endbox-server and cmd/endbox-client binaries exchange over UDP:
// platform registration, remote attestation, the VPN handshake,
// configuration fetches and data-channel frames. Each datagram is one
// message: a single type byte followed by the body (JSON for control
// messages, raw wire frames for data).
package udptransport

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
)

// Message types.
const (
	// MsgRegister registers the client platform's quoting-enclave key
	// with the IAS (standing in for Intel's manufacturing provisioning).
	MsgRegister byte = 'R'
	// MsgRegisterOK acknowledges registration.
	MsgRegisterOK byte = 'r'
	// MsgQuote submits an attestation quote for enrolment.
	MsgQuote byte = 'Q'
	// MsgProvision answers with the certificate + sealed shared key.
	MsgProvision byte = 'P'
	// MsgHello opens the VPN handshake.
	MsgHello byte = 'H'
	// MsgServerHello answers the handshake.
	MsgServerHello byte = 'S'
	// MsgFrame carries one sealed data-channel frame (either direction).
	MsgFrame byte = 'D'
	// MsgFetch requests a configuration blob by version (8-byte big
	// endian body).
	MsgFetch byte = 'F'
	// MsgConfig answers a fetch with the sealed update blob.
	MsgConfig byte = 'C'
	// MsgError carries a textual error.
	MsgError byte = '!'
)

// MaxDatagram bounds message sizes (fits a 64 kB tunnelled packet plus
// framing overhead within the UDP maximum).
const MaxDatagram = 65507

// ErrShortMessage reports an empty datagram.
var ErrShortMessage = errors.New("udptransport: empty datagram")

// Register is the body of MsgRegister.
type Register struct {
	PlatformID string            `json:"platform_id"`
	Key        ed25519.PublicKey `json:"key"`
}

// Encode prepends the type byte to a body.
func Encode(msgType byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = msgType
	copy(out[1:], body)
	return out
}

// EncodeJSON marshals body and frames it.
func EncodeJSON(msgType byte, body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("udptransport: marshal %c: %w", msgType, err)
	}
	if len(raw)+1 > MaxDatagram {
		return nil, fmt.Errorf("udptransport: %c message too large (%d bytes)", msgType, len(raw))
	}
	return Encode(msgType, raw), nil
}

// Decode splits a datagram into type and body. The body aliases the input.
func Decode(datagram []byte) (byte, []byte, error) {
	if len(datagram) == 0 {
		return 0, nil, ErrShortMessage
	}
	return datagram[0], datagram[1:], nil
}

// DecodeJSON unmarshals a message body.
func DecodeJSON(body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("udptransport: unmarshal: %w", err)
	}
	return nil
}

// Errorf builds a MsgError datagram.
func Errorf(format string, args ...any) []byte {
	return Encode(MsgError, []byte(fmt.Sprintf(format, args...)))
}

// ChunkPayload is the maximum data bytes per configuration chunk,
// conservative against the UDP maximum after framing.
const ChunkPayload = 60000

// EncodeChunks splits a large blob into MsgConfig datagrams, each carrying
// [2-byte index][2-byte total][data]. Configuration blobs with full rule
// sets exceed a single UDP datagram.
func EncodeChunks(blob []byte) [][]byte {
	total := (len(blob) + ChunkPayload - 1) / ChunkPayload
	if total == 0 {
		total = 1
	}
	out := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		start := i * ChunkPayload
		end := start + ChunkPayload
		if end > len(blob) {
			end = len(blob)
		}
		body := make([]byte, 4+end-start)
		body[0], body[1] = byte(i>>8), byte(i)
		body[2], body[3] = byte(total>>8), byte(total)
		copy(body[4:], blob[start:end])
		out = append(out, Encode(MsgConfig, body))
	}
	return out
}

// DecodeChunk splits a MsgConfig body into its index, total and data.
func DecodeChunk(body []byte) (index, total int, data []byte, err error) {
	if len(body) < 4 {
		return 0, 0, nil, fmt.Errorf("udptransport: short chunk")
	}
	index = int(body[0])<<8 | int(body[1])
	total = int(body[2])<<8 | int(body[3])
	if total == 0 || index >= total {
		return 0, 0, nil, fmt.Errorf("udptransport: bad chunk header %d/%d", index, total)
	}
	return index, total, body[4:], nil
}
