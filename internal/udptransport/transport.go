package udptransport

import (
	"context"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/core"
	"endbox/internal/dataplane"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

// Transport implements core.Transport over real UDP sockets: the server
// side binds one datagram socket and dispatches control messages into the
// deployment's ServerEndpoint; each client link dials its own socket. The
// same Deployment code that runs in-process therefore runs across machines
// unchanged — cmd/endbox-server and cmd/endbox-client are thin wrappers
// around this type.
type Transport struct {
	listen string
	// Logf, if set before BindServer, receives connection-level log lines
	// (registrations, handshakes, send failures).
	Logf func(format string, args ...any)

	mu      sync.Mutex
	ep      core.ServerEndpoint
	conn    *net.UDPConn
	addrs   map[string]*net.UDPAddr // client ID -> last UDP address
	byAddr  map[string]string       // UDP address -> client ID (reverse index)
	closed  bool
	workers int             // ingress pool width; 0 = handle frames inline
	pool    *dataplane.Pool // set by BindServer when workers > 0
}

// NewTransport creates a UDP transport that will listen on the given
// address once a server binds to it. Use ":0" to pick a free port (the
// effective address is available from Addr after BindServer).
func NewTransport(listen string) *Transport {
	return &Transport{
		listen: listen,
		addrs:  make(map[string]*net.UDPAddr),
		byAddr: make(map[string]string),
	}
}

func (t *Transport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// SetWorkers implements core.WorkerTransport: pipeline the server's frame
// ingress across n workers. Frames from one client stay pinned to one
// worker (placement by the dataplane hash), preserving per-client
// ordering; control messages keep running on the serve goroutine, whose
// request/response pattern needs no pipelining. Must be called before
// BindServer.
func (t *Transport) SetWorkers(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workers = n
}

// Workers reports the configured ingress pool width.
func (t *Transport) Workers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers
}

// Addr returns the bound server address (valid after BindServer).
func (t *Transport) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return t.listen
	}
	return t.conn.LocalAddr().String()
}

// BindServer implements core.Transport: bind the socket and start the
// datagram dispatch loop.
func (t *Transport) BindServer(ep core.ServerEndpoint) error {
	addr, err := net.ResolveUDPAddr("udp", t.listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.ep != nil {
		t.mu.Unlock()
		conn.Close()
		return fmt.Errorf("udptransport: transport already bound")
	}
	t.ep = ep
	t.conn = conn
	if t.workers > 0 {
		t.pool = dataplane.NewPool(t.workers, 0, func(clientID string, frame []byte) {
			if err := ep.HandleFrame(clientID, frame); err != nil {
				t.logf("frame from %s: %v", clientID, err)
			}
		})
		// Receive buffers travel with their frames through the worker
		// queues and return to the shared pool as soon as the handler is
		// done — the zero-copy replacement for the old copy-before-dispatch.
		t.pool.SetRelease(wire.PutBuffer)
	}
	t.mu.Unlock()
	go t.serve(conn, ep)
	return nil
}

// serve is the datagram dispatch loop. Datagrams land in pooled receive
// buffers; a buffer is reused for the next read unless a frame dispatch
// transferred its ownership to the worker pool.
func (t *Transport) serve(conn *net.UDPConn, ep core.ServerEndpoint) {
	buf := wire.GetBuffer(MaxDatagram)
	defer func() { wire.PutBuffer(buf) }()
	for {
		n, from, err := conn.ReadFromUDP(buf[:MaxDatagram])
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if !closed {
				// An unexpected socket failure, not a deliberate Close: say
				// so loudly instead of leaving a silently deaf server.
				t.logf("udptransport: server socket failed, no longer serving: %v", err)
			}
			return
		}
		msgType, body, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if msgType == MsgFrame {
			if t.dispatchFrame(ep, body, buf[:n], from) {
				buf = wire.GetBuffer(MaxDatagram)
			}
			continue
		}
		resp := t.handle(conn, ep, msgType, body, from)
		if resp != nil {
			if _, err := conn.WriteToUDP(resp, from); err != nil {
				t.logf("udptransport: reply to %s: %v", from, err)
			}
		}
	}
}

// dispatchFrame routes one data frame, reporting whether ownership of the
// receive buffer (owner, whose tail is the frame body) moved to the worker
// pool. Without a pool the frame is handled inline on the serve goroutine:
// the endpoint may decrypt in place and must be done with the buffer when
// it returns — the buffer is only reused for the next datagram afterwards,
// which is the aliasing guarantee the old per-datagram copy bought, now
// for free.
func (t *Transport) dispatchFrame(ep core.ServerEndpoint, body, owner []byte, from *net.UDPAddr) bool {
	t.mu.Lock()
	clientID := t.byAddr[from.String()]
	pool := t.pool
	t.mu.Unlock()
	if clientID == "" {
		// Data frames are fire-and-forget: replying with MsgError would
		// land in the sender's control queue and poison its next control
		// round trip, so just drop and log.
		t.logf("udptransport: frame from unknown address %s dropped", from)
		return false
	}
	if pool != nil {
		if !pool.SubmitOwned(clientID, body, owner) {
			t.logf("udptransport: ingress queue full, frame from %s shed", clientID)
			return false
		}
		return true
	}
	if err := ep.HandleFrame(clientID, body); err != nil {
		t.logf("frame from %s: %v", clientID, err)
	}
	return false
}

// handle processes one message and returns the response datagram (nil for
// one-way messages).
func (t *Transport) handle(conn *net.UDPConn, ep core.ServerEndpoint, msgType byte, body []byte, from *net.UDPAddr) []byte {
	switch msgType {
	case MsgRegister:
		var reg Register
		if err := DecodeJSON(body, &reg); err != nil {
			return Errorf("register: %v", err)
		}
		caPub, err := ep.RegisterPlatform(reg.PlatformID, reg.Key)
		if err != nil {
			return Errorf("register refused: %v", err)
		}
		t.logf("registered platform %s", reg.PlatformID)
		return Encode(MsgRegisterOK, caPub)

	case MsgQuote:
		var quote attest.Quote
		if err := DecodeJSON(body, &quote); err != nil {
			return Errorf("quote: %v", err)
		}
		prov, err := ep.Enroll(quote)
		if err != nil {
			return Errorf("enrolment refused: %v", err)
		}
		resp, err := EncodeJSON(MsgProvision, prov)
		if err != nil {
			return Errorf("provision: %v", err)
		}
		t.logf("enrolled platform %s (measurement %s)", quote.PlatformID, quote.Report.Measurement)
		return resp

	case MsgHello:
		var hello vpn.ClientHello
		if err := DecodeJSON(body, &hello); err != nil {
			return Errorf("hello: %v", err)
		}
		sh, err := ep.AcceptHello(&hello)
		if err != nil {
			return Errorf("handshake refused: %v", err)
		}
		t.mu.Lock()
		if prev, ok := t.addrs[hello.ClientID]; ok {
			delete(t.byAddr, prev.String())
		}
		t.addrs[hello.ClientID] = from
		t.byAddr[from.String()] = hello.ClientID
		t.mu.Unlock()
		resp, err := EncodeJSON(MsgServerHello, sh)
		if err != nil {
			return Errorf("server hello: %v", err)
		}
		t.logf("client %s connected from %s", hello.ClientID, from)
		return resp

	case MsgFetch:
		if len(body) != 8 {
			return Errorf("fetch: bad version")
		}
		version := binary.BigEndian.Uint64(body)
		blob, err := ep.FetchConfig(version)
		if err != nil {
			return Errorf("fetch v%d: %v", version, err)
		}
		// Configuration blobs exceed one datagram; stream the chunks and
		// return nil (no single response).
		for _, chunk := range EncodeChunks(blob) {
			if _, err := conn.WriteToUDP(chunk, from); err != nil {
				t.logf("config chunk to %s: %v", from, err)
				break
			}
		}
		return nil

	default:
		return Errorf("unknown message type %c", msgType)
	}
}

// SendToClient implements core.Transport: push a sealed frame to a client's
// last known address. The datagram is assembled in a pooled buffer (the
// kernel copies it out during WriteToUDP) and the caller keeps ownership
// of frame.
func (t *Transport) SendToClient(clientID string, frame []byte) error {
	t.mu.Lock()
	addr, ok := t.addrs[clientID]
	conn := t.conn
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("udptransport: transport not bound")
	}
	if !ok {
		return fmt.Errorf("udptransport: no address for client %q", clientID)
	}
	msg := wire.GetBuffer(1 + len(frame))
	msg[0] = MsgFrame
	copy(msg[1:], frame)
	_, err := conn.WriteToUDP(msg, addr)
	wire.PutBuffer(msg)
	return err
}

// Link implements core.Transport: dial a fresh client socket to this
// transport's server. The clientID is informational — the server learns it
// from the handshake.
func (t *Transport) Link(ctx context.Context, clientID string) (core.ClientLink, error) {
	return Dial(ctx, t.Addr())
}

// Close implements core.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	conn := t.conn
	pool := t.pool
	t.conn = nil
	t.pool = nil
	t.closed = true
	t.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	if pool != nil {
		pool.Close()
	}
	return err
}

// requestTimeout is the per-attempt control round-trip timeout.
const requestTimeout = 2 * time.Second

// Link is the client side of the UDP transport: a request/response helper
// for control messages plus an async dispatch loop for pushed data frames.
// It implements core.ClientLink.
type Link struct {
	conn    *net.UDPConn
	control chan []byte // control responses (type+body), copied out of the read buffer
	frames  chan []byte // pushed data datagrams (type+body) in pooled buffers the queue owns

	ctrlMu sync.Mutex // serialises control-plane round trips

	mu        sync.Mutex
	deliverFn func(frames [][]byte) error
	dispatch  bool

	closeOnce sync.Once
	closed    chan struct{}
}

// Dial connects a client link to an endbox server's UDP address.
func Dial(ctx context.Context, server string) (*Link, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	l := &Link{
		conn:    conn,
		control: make(chan []byte, 4),
		frames:  make(chan []byte, 256),
		closed:  make(chan struct{}),
	}
	go l.readLoop()
	return l, nil
}

// readLoop reads datagrams into pooled buffers. Data frames travel to the
// dispatch loop inside their receive buffer — ownership moves with them
// and the dispatcher releases the buffer after the handler's burst — while
// the cold control path copies and reuses the same buffer.
func (l *Link) readLoop() {
	buf := wire.GetBuffer(MaxDatagram)
	for {
		n, err := l.conn.Read(buf[:MaxDatagram])
		if err != nil {
			wire.PutBuffer(buf)
			close(l.frames)
			return
		}
		if n == 0 {
			continue
		}
		if buf[0] == MsgFrame {
			select {
			case l.frames <- buf[:n]:
				buf = wire.GetBuffer(MaxDatagram)
			default: // shed on overload like a real NIC queue; buffer reused
			}
			continue
		}
		msg := append([]byte(nil), buf[:n]...)
		select {
		case l.control <- msg:
		default:
		}
	}
}

// drainControl drops stale responses from abandoned round trips so they
// cannot be mistaken for the answer to the next one. Callers hold ctrlMu.
func (l *Link) drainControl() {
	for {
		select {
		case <-l.control:
		default:
			return
		}
	}
}

// request performs one control round trip with retries, honouring ctx.
func (l *Link) request(ctx context.Context, datagram []byte) (byte, []byte, error) {
	l.ctrlMu.Lock()
	defer l.ctrlMu.Unlock()
	l.drainControl()
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		if _, err := l.conn.Write(datagram); err != nil {
			return 0, nil, err
		}
		select {
		case resp := <-l.control:
			msgType, body, err := Decode(resp)
			if err != nil {
				return 0, nil, err
			}
			if msgType == MsgError {
				return 0, nil, fmt.Errorf("udptransport: server: %s", body)
			}
			return msgType, body, nil
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-l.closed:
			return 0, nil, fmt.Errorf("udptransport: link closed")
		case <-time.After(requestTimeout):
		}
	}
	return 0, nil, fmt.Errorf("udptransport: no response from server")
}

// Register implements core.ClientLink.
func (l *Link) Register(ctx context.Context, platformID string, key ed25519.PublicKey) (ed25519.PublicKey, error) {
	msg, err := EncodeJSON(MsgRegister, Register{PlatformID: platformID, Key: key})
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, fmt.Errorf("udptransport: register: %w", err)
	}
	if msgType != MsgRegisterOK {
		return nil, fmt.Errorf("udptransport: register: unexpected response %c", msgType)
	}
	return ed25519.PublicKey(append([]byte(nil), body...)), nil
}

// Enroll implements core.ClientLink.
func (l *Link) Enroll(ctx context.Context, q attest.Quote) (*attest.Provision, error) {
	msg, err := EncodeJSON(MsgQuote, q)
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, err
	}
	if msgType != MsgProvision {
		return nil, fmt.Errorf("udptransport: unexpected enrolment response %c", msgType)
	}
	var prov attest.Provision
	if err := DecodeJSON(body, &prov); err != nil {
		return nil, err
	}
	return &prov, nil
}

// Hello implements core.ClientLink.
func (l *Link) Hello(ctx context.Context, h *vpn.ClientHello) (*vpn.ServerHello, error) {
	msg, err := EncodeJSON(MsgHello, h)
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, err
	}
	if msgType != MsgServerHello {
		return nil, fmt.Errorf("udptransport: unexpected handshake response %c", msgType)
	}
	var sh vpn.ServerHello
	if err := DecodeJSON(body, &sh); err != nil {
		return nil, err
	}
	return &sh, nil
}

// FetchConfig implements core.ClientLink: request a blob (0 = latest) and
// reassemble the chunk stream.
func (l *Link) FetchConfig(ctx context.Context, version uint64) ([]byte, error) {
	l.ctrlMu.Lock()
	defer l.ctrlMu.Unlock()
	l.drainControl()
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], version)
	if _, err := l.conn.Write(Encode(MsgFetch, v[:])); err != nil {
		return nil, err
	}
	chunks := make(map[int][]byte)
	want := -1
	deadline := time.After(5 * time.Second)
	for {
		select {
		case resp := <-l.control:
			msgType, body, err := Decode(resp)
			if err != nil {
				return nil, err
			}
			switch msgType {
			case MsgError:
				return nil, fmt.Errorf("udptransport: server: %s", body)
			case MsgConfig:
				idx, total, data, err := DecodeChunk(body)
				if err != nil {
					return nil, err
				}
				want = total
				chunks[idx] = append([]byte(nil), data...)
				if len(chunks) == want {
					var blob []byte
					for i := 0; i < want; i++ {
						part, ok := chunks[i]
						if !ok {
							return nil, fmt.Errorf("udptransport: missing config chunk %d", i)
						}
						blob = append(blob, part...)
					}
					return blob, nil
				}
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-l.closed:
			return nil, fmt.Errorf("udptransport: link closed")
		case <-deadline:
			return nil, fmt.Errorf("udptransport: configuration fetch timed out (%d/%d chunks)", len(chunks), want)
		}
	}
}

// SendFrame implements core.ClientLink.
func (l *Link) SendFrame(frame []byte) error {
	_, err := l.conn.Write(Encode(MsgFrame, frame))
	return err
}

// maxDeliverBatch bounds how many queued frames one dispatch round hands
// to the batch handler (and therefore how many cross the client's enclave
// boundary in one ecall).
const maxDeliverBatch = 32

// SetDeliver implements core.ClientLink: install the per-frame handler for
// pushed server->client frames and start the dispatch loop.
func (l *Link) SetDeliver(fn func(frame []byte) error) {
	l.setDeliver(func(frames [][]byte) error {
		var firstErr error
		for _, f := range frames {
			if err := fn(f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	})
}

// SetDeliverBatch implements core.BatchClientLink: bursts of frames that
// queued while the handler was busy are handed over together, so the
// receiving client can open them in a single enclave crossing.
func (l *Link) SetDeliverBatch(fn func(frames [][]byte) error) {
	l.setDeliver(fn)
}

// setDeliver installs the burst handler and starts the dispatch loop once.
func (l *Link) setDeliver(fn func(frames [][]byte) error) {
	l.mu.Lock()
	l.deliverFn = fn
	start := !l.dispatch
	l.dispatch = true
	l.mu.Unlock()
	if !start {
		return
	}
	go func() {
		// The batch and its backing pooled datagrams are reused across
		// rounds; handlers get the frames for the duration of the call
		// only (the deployment's slab ingress copies them into its ecall
		// slab) and the buffers go back to the pool right after.
		batch := make([][]byte, 0, maxDeliverBatch)
		owners := make([][]byte, 0, maxDeliverBatch)
		release := func() {
			for _, o := range owners {
				wire.PutBuffer(o)
			}
			batch, owners = batch[:0], owners[:0]
		}
		for {
			select {
			case msg, ok := <-l.frames:
				if !ok {
					return
				}
				// Collect the burst that queued behind the first frame
				// without blocking for more.
				batch = append(batch, msg[1:])
				owners = append(owners, msg)
			drain:
				for len(batch) < maxDeliverBatch {
					select {
					case m, ok := <-l.frames:
						if !ok {
							break drain
						}
						batch = append(batch, m[1:])
						owners = append(owners, m)
					default:
						break drain
					}
				}
				l.mu.Lock()
				h := l.deliverFn
				l.mu.Unlock()
				if h != nil {
					_ = h(batch) // per-frame errors are data-path events, not link failures
				}
				release()
			case <-l.closed:
				return
			}
		}
	}()
}

// Close implements core.ClientLink.
func (l *Link) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closed)
		err = l.conn.Close()
	})
	return err
}
