package udptransport

import (
	"context"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/core"
	"endbox/internal/dataplane"
	"endbox/internal/netsim"
	"endbox/internal/policy"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

// typedServerErrors are the sentinel errors a client must be able to
// errors.Is-match even though MsgError carries only text: admission and
// policy refusals that callers branch on (retry vs give up vs re-attest).
// serverError re-types a MsgError body whose text embeds one of them.
var typedServerErrors = []error{
	attest.ErrMeasurementDenied,
	attest.ErrBadMeasurement,
	policy.ErrBuildRevoked,
}

// remoteError is a server-reported error whose text identified a known
// sentinel: Error() preserves the wire text, Unwrap() restores the typed
// identity for errors.Is.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// serverError turns a MsgError body into the error a client call returns,
// re-typing it when the text embeds a known sentinel so refusals like
// ErrMeasurementDenied survive the wire with their identity intact.
func serverError(body []byte) error {
	msg := "udptransport: server: " + string(body)
	for _, sentinel := range typedServerErrors {
		if strings.Contains(string(body), sentinel.Error()) {
			return &remoteError{msg: msg, sentinel: sentinel}
		}
	}
	return fmt.Errorf("%s", msg)
}

// SendFilter intercepts control-path datagram transmission: it receives
// the outgoing datagram and the raw transmit function and decides what
// actually reaches the wire — dropping (return without transmitting),
// duplicating, or holding datagrams back. It is the loss-injection seam
// the ARQ layer is tested through; netsim.Faults provides a deterministic
// seeded implementation. The datagram is lent for the duration of the
// call. Data-channel frames (MsgFrame pushes and SendFrame) bypass the
// filter: impairment, like reliability, is a control-path concern here.
type SendFilter func(datagram []byte, transmit func([]byte) error) error

// ShedCounter is optionally implemented by server endpoints that want
// per-client accounting of frames shed by ingress overload protection
// (core.Deployment records them in the client's VIF statistics).
type ShedCounter interface {
	FrameShed(clientID string)
}

// Transport implements core.Transport over real UDP sockets: the server
// side binds one datagram socket and dispatches control messages into the
// deployment's ServerEndpoint; each client link dials its own socket. The
// same Deployment code that runs in-process therefore runs across machines
// unchanged — cmd/endbox-server and cmd/endbox-client are thin wrappers
// around this type.
//
// Control and configuration messages ride the selective-repeat ARQ layer
// (arq.go) unless disabled via SetRetransmit: requests arrive wrapped in
// MsgRel envelopes, responses — including multi-chunk configuration
// fetches — are pushed back as reliable transfers that are retransmitted
// until acknowledged. Unwrapped (legacy) control messages are still
// answered fire-and-forget, so old clients keep working.
type Transport struct {
	listen string
	// Logf, if set before BindServer, receives connection-level log lines
	// (registrations, handshakes, send failures).
	Logf func(format string, args ...any)

	mu         sync.Mutex
	ep         core.ServerEndpoint
	conn       *net.UDPConn
	addrs      map[string]*net.UDPAddr // client ID -> last UDP address
	byAddr     map[string]string       // UDP address -> client ID (reverse index)
	closed     bool
	workers    int             // ingress pool width; 0 = handle frames inline
	pool       *dataplane.Pool // set by BindServer when workers > 0
	retransmit RetransmitConfig
	filter     SendFilter
	faults     *netsim.Faults // set by SetLossProfile; nil otherwise
	arq        *arq           // nil when RetransmitConfig.Disable is set
}

// NewTransport creates a UDP transport that will listen on the given
// address once a server binds to it. Use ":0" to pick a free port (the
// effective address is available from Addr after BindServer).
func NewTransport(listen string) *Transport {
	return &Transport{
		listen: listen,
		addrs:  make(map[string]*net.UDPAddr),
		byAddr: make(map[string]string),
	}
}

func (t *Transport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// SetWorkers implements core.WorkerTransport: pipeline the server's frame
// ingress across n workers. Frames from one client stay pinned to one
// worker (placement by the dataplane hash), preserving per-client
// ordering; control messages keep running on the serve goroutine, whose
// request/response pattern needs no pipelining. Must be called before
// BindServer.
func (t *Transport) SetWorkers(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workers = n
}

// Workers reports the configured ingress pool width.
func (t *Transport) Workers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers
}

// SetRetransmit implements core.ReliableTransport: tune (or, with
// RetransmitConfig.Disable, turn off) the control-path ARQ layer. Must be
// called before BindServer. Client links opened through Link inherit the
// configuration, so both directions of a deployment share one tuning.
func (t *Transport) SetRetransmit(cfg RetransmitConfig) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retransmit = cfg
}

// SetLossProfile implements core.LossyTransport: apply deterministic
// seeded impairment (netsim.Faults) to every control-path datagram this
// transport and the client links it creates send. Must be called before
// BindServer; a zero profile removes the filter.
func (t *Transport) SetLossProfile(p core.LossProfile) {
	if p.Zero() {
		t.mu.Lock()
		t.faults = nil
		t.mu.Unlock()
		t.SetSendFilter(nil)
		return
	}
	f := netsim.NewFaults(p.Seed, p.Drop, p.Duplicate, p.Reorder)
	f.SetCorruptEvery(p.CorruptEvery)
	t.mu.Lock()
	t.faults = f
	t.mu.Unlock()
	t.SetSendFilter(f.Filter)
}

// FaultStats reports the injected-impairment counters of the loss profile
// installed by SetLossProfile (zero value when none is installed) — how
// many control-path datagrams were genuinely dropped, duplicated,
// reordered or corrupted during a chaos run.
func (t *Transport) FaultStats() netsim.FaultStats {
	t.mu.Lock()
	f := t.faults
	t.mu.Unlock()
	if f == nil {
		return netsim.FaultStats{}
	}
	return f.Stats()
}

// SetSendFilter installs a raw control-path send filter (the seam behind
// SetLossProfile). Must be called before BindServer.
func (t *Transport) SetSendFilter(f SendFilter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.filter = f
}

// ARQStats reports the server-side reliability counters (zero value when
// the ARQ layer is disabled).
func (t *Transport) ARQStats() ARQStats {
	t.mu.Lock()
	a := t.arq
	t.mu.Unlock()
	if a == nil {
		return ARQStats{}
	}
	return a.snapshot()
}

// transmitTo writes one control-path datagram through the send filter.
func (t *Transport) transmitTo(conn *net.UDPConn, to *net.UDPAddr, datagram []byte) error {
	t.mu.Lock()
	filter := t.filter
	t.mu.Unlock()
	raw := func(d []byte) error {
		_, err := conn.WriteToUDP(d, to)
		return err
	}
	if filter != nil {
		return filter(datagram, raw)
	}
	return raw(datagram)
}

// Addr returns the bound server address (valid after BindServer).
func (t *Transport) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn == nil {
		return t.listen
	}
	return t.conn.LocalAddr().String()
}

// BindServer implements core.Transport: bind the socket and start the
// datagram dispatch loop.
func (t *Transport) BindServer(ep core.ServerEndpoint) error {
	addr, err := net.ResolveUDPAddr("udp", t.listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	// Deep receive buffer (best effort; the kernel clamps to rmem_max):
	// a configuration fetch answers with a burst of ~60 kB chunks, and
	// every chunk the socket sheds is a retransmission round-trip.
	_ = conn.SetReadBuffer(recvBufferSize)
	t.mu.Lock()
	if t.ep != nil {
		t.mu.Unlock()
		conn.Close()
		return fmt.Errorf("udptransport: transport already bound")
	}
	t.ep = ep
	t.conn = conn
	if !t.retransmit.Disable {
		t.arq = newARQ(t.retransmit, func(to *net.UDPAddr, datagram []byte) error {
			return t.transmitTo(conn, to, datagram)
		}, t.logf)
	}
	if t.workers > 0 {
		t.pool = dataplane.NewPool(t.workers, 0, func(clientID string, frame []byte) {
			if err := ep.HandleFrame(clientID, frame); err != nil {
				t.logf("frame from %s: %v", clientID, err)
			}
		})
		// Receive buffers travel with their frames through the worker
		// queues and return to the shared pool as soon as the handler is
		// done — the zero-copy replacement for the old copy-before-dispatch.
		t.pool.SetRelease(wire.PutBuffer)
		// Overload shedding: data frames are shed drop-newest once a
		// worker queue passes the watermark, so a flood costs throughput
		// instead of collapsing latency for everyone behind the queue.
		// Per-client shed counts land in the VIF statistics when the
		// endpoint can record them.
		t.pool.SetWatermark(dataplane.DefaultWatermark)
		if sc, ok := ep.(ShedCounter); ok {
			t.pool.SetOnShed(sc.FrameShed)
		}
	}
	t.mu.Unlock()
	go t.serve(conn, ep)
	return nil
}

// serve is the datagram dispatch loop. Datagrams land in pooled receive
// buffers; a buffer is reused for the next read unless a frame dispatch
// transferred its ownership to the worker pool.
func (t *Transport) serve(conn *net.UDPConn, ep core.ServerEndpoint) {
	buf := wire.GetBuffer(MaxDatagram)
	defer func() { wire.PutBuffer(buf) }()
	for {
		n, from, err := conn.ReadFromUDP(buf[:MaxDatagram])
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if !closed {
				// An unexpected socket failure, not a deliberate Close: say
				// so loudly instead of leaving a silently deaf server.
				t.logf("udptransport: server socket failed, no longer serving: %v", err)
			}
			return
		}
		msgType, body, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if msgType == MsgFrame || msgType == MsgControl {
			if t.dispatchFrame(ep, body, buf[:n], from, msgType == MsgControl) {
				buf = wire.GetBuffer(MaxDatagram)
			}
			continue
		}
		t.mu.Lock()
		a := t.arq
		t.mu.Unlock()
		switch msgType {
		case MsgRel:
			if a == nil {
				continue // ARQ disabled: ignore wrapped traffic
			}
			// Unwrap, acknowledge and deduplicate; on first delivery run
			// the control handler and push its response (single datagram
			// or a whole chunked configuration) as a reliable transfer.
			a.handleRel(from.String(), from, body, func(inner []byte) bool {
				innerType, innerBody, err := Decode(inner)
				if err != nil || innerType == MsgFrame || innerType == MsgControl {
					return true // swallow: never re-deliver garbage
				}
				resp := t.handle(ep, innerType, innerBody, from)
				if len(resp) > 0 {
					if _, err := a.send(from.String(), from, resp); err != nil {
						t.logf("udptransport: reliable reply to %s: %v", from, err)
					}
				}
				return true
			})
		case MsgAck:
			if a != nil {
				a.handleAck(from.String(), body)
			}
		default:
			// Legacy unwrapped control: answer fire-and-forget so clients
			// without the ARQ layer keep working.
			for _, resp := range t.handle(ep, msgType, body, from) {
				if err := t.transmitTo(conn, from, resp); err != nil {
					t.logf("udptransport: reply to %s: %v", from, err)
				}
			}
		}
	}
}

// dispatchFrame routes one data frame, reporting whether ownership of the
// receive buffer (owner, whose tail is the frame body) moved to the worker
// pool. Without a pool the frame is handled inline on the serve goroutine:
// the endpoint may decrypt in place and must be done with the buffer when
// it returns — the buffer is only reused for the next datagram afterwards,
// which is the aliasing guarantee the old per-datagram copy bought, now
// for free. Control-class frames (MsgControl) are submitted past the
// shedding watermark so a data flood cannot starve them.
func (t *Transport) dispatchFrame(ep core.ServerEndpoint, body, owner []byte, from *net.UDPAddr, control bool) bool {
	t.mu.Lock()
	clientID := t.byAddr[from.String()]
	pool := t.pool
	t.mu.Unlock()
	if clientID == "" {
		// Data frames are fire-and-forget: replying with MsgError would
		// land in the sender's control queue and poison its next control
		// round trip, so just drop and log.
		t.logf("udptransport: frame from unknown address %s dropped", from)
		return false
	}
	if pool != nil {
		submit := pool.SubmitOwned
		if control {
			submit = pool.SubmitControlOwned
		}
		if !submit(clientID, body, owner) {
			t.logf("udptransport: ingress queue full, frame from %s shed", clientID)
			return false
		}
		return true
	}
	if err := ep.HandleFrame(clientID, body); err != nil {
		t.logf("frame from %s: %v", clientID, err)
	}
	return false
}

// handle processes one control message and returns the response datagrams
// (nil for none; a configuration fetch yields the whole chunk list). The
// caller decides the delivery class: reliably-received requests get
// reliable responses, legacy requests are answered fire-and-forget.
func (t *Transport) handle(ep core.ServerEndpoint, msgType byte, body []byte, from *net.UDPAddr) [][]byte {
	one := func(d []byte) [][]byte { return [][]byte{d} }
	switch msgType {
	case MsgRegister:
		var reg Register
		if err := DecodeJSON(body, &reg); err != nil {
			return one(Errorf("register: %v", err))
		}
		caPub, err := ep.RegisterPlatform(reg.PlatformID, reg.Key)
		if err != nil {
			return one(Errorf("register refused: %v", err))
		}
		t.logf("registered platform %s", reg.PlatformID)
		return one(Encode(MsgRegisterOK, caPub))

	case MsgQuote:
		var quote attest.Quote
		if err := DecodeJSON(body, &quote); err != nil {
			return one(Errorf("quote: %v", err))
		}
		prov, err := ep.Enroll(quote)
		if err != nil {
			return one(Errorf("enrolment refused: %v", err))
		}
		resp, err := EncodeJSON(MsgProvision, prov)
		if err != nil {
			return one(Errorf("provision: %v", err))
		}
		t.logf("enrolled platform %s (measurement %s)", quote.PlatformID, quote.Report.Measurement)
		return one(resp)

	case MsgHello:
		var hello vpn.ClientHello
		if err := DecodeJSON(body, &hello); err != nil {
			return one(Errorf("hello: %v", err))
		}
		sh, err := ep.AcceptHello(&hello)
		if err != nil {
			return one(Errorf("handshake refused: %v", err))
		}
		t.mu.Lock()
		if prev, ok := t.addrs[hello.ClientID]; ok {
			delete(t.byAddr, prev.String())
		}
		t.addrs[hello.ClientID] = from
		t.byAddr[from.String()] = hello.ClientID
		t.mu.Unlock()
		resp, err := EncodeJSON(MsgServerHello, sh)
		if err != nil {
			return one(Errorf("server hello: %v", err))
		}
		t.logf("client %s connected from %s", hello.ClientID, from)
		return one(resp)

	case MsgResume:
		var req vpn.ResumeRequest
		if err := DecodeJSON(body, &req); err != nil {
			return one(Errorf("resume: %v", err))
		}
		reply, err := ep.AcceptResume(&req)
		if err != nil {
			return one(Errorf("resume refused: %v", err))
		}
		// The resumed session's frames will come from this address; rebind
		// it exactly like a fresh handshake does.
		t.mu.Lock()
		if prev, ok := t.addrs[req.ClientID]; ok {
			delete(t.byAddr, prev.String())
		}
		t.addrs[req.ClientID] = from
		t.byAddr[from.String()] = req.ClientID
		t.mu.Unlock()
		resp, err := EncodeJSON(MsgResumeOK, reply)
		if err != nil {
			return one(Errorf("resume reply: %v", err))
		}
		t.logf("client %s resumed from %s", req.ClientID, from)
		return one(resp)

	case MsgFetch:
		if len(body) != 8 {
			return one(Errorf("fetch: bad version"))
		}
		version := binary.BigEndian.Uint64(body)
		blob, err := ep.FetchConfig(version)
		if err != nil {
			return one(Errorf("fetch v%d: %v", version, err))
		}
		chunks, err := EncodeChunks(blob)
		if err != nil {
			return one(Errorf("fetch v%d: %v", version, err))
		}
		return chunks

	default:
		return one(Errorf("unknown message type %c", msgType))
	}
}

// SendToClient implements core.Transport: push a sealed frame to a client's
// last known address. The datagram is assembled in a pooled buffer (the
// kernel copies it out during WriteToUDP) and the caller keeps ownership
// of frame.
func (t *Transport) SendToClient(clientID string, frame []byte) error {
	t.mu.Lock()
	addr, ok := t.addrs[clientID]
	conn := t.conn
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("udptransport: transport not bound")
	}
	if !ok {
		return fmt.Errorf("udptransport: no address for client %q", clientID)
	}
	msg := wire.GetBuffer(1 + len(frame))
	msg[0] = MsgFrame
	copy(msg[1:], frame)
	_, err := conn.WriteToUDP(msg, addr)
	wire.PutBuffer(msg)
	return err
}

// Link implements core.Transport: dial a fresh client socket to this
// transport's server. The clientID is informational — the server learns it
// from the handshake. The link inherits the transport's retransmit tuning
// and send filter, so a deployment configured with WithRetransmit or
// WithLossProfile applies them to both directions.
func (t *Transport) Link(ctx context.Context, clientID string) (core.ClientLink, error) {
	t.mu.Lock()
	cfg := t.retransmit
	filter := t.filter
	t.mu.Unlock()
	return Dial(ctx, t.Addr(), LinkRetransmit(cfg), LinkSendFilter(filter))
}

// Close implements core.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	conn := t.conn
	pool := t.pool
	a := t.arq
	t.conn = nil
	t.pool = nil
	t.arq = nil
	t.closed = true
	t.mu.Unlock()
	var err error
	if a != nil {
		a.close()
	}
	if conn != nil {
		err = conn.Close()
	}
	if pool != nil {
		pool.Close()
	}
	return err
}

// requestTimeout is the per-attempt control round-trip timeout of the
// legacy (ARQ-disabled) path.
const requestTimeout = 2 * time.Second

// recvBufferSize is the socket receive buffer both sides request (best
// effort — the kernel clamps it to net.core.rmem_max). It covers a full
// ARQ window of configuration chunks so a burst does not shed datagrams
// the sender will only have to retransmit.
const recvBufferSize = 4 << 20

// controlQueue sizes the control-response channel. It must cover at least
// one ARQ window of configuration chunks so the fetch loop never sheds a
// segment the ARQ layer is about to acknowledge.
const controlQueue = 64

// Link is the client side of the UDP transport: a request/response helper
// for control messages plus an async dispatch loop for pushed data frames.
// It implements core.ClientLink.
//
// Control round trips ride the ARQ layer by default: the request goes out
// as a reliable transfer (retransmitted on a backed-off timer until the
// server acknowledges it) and the response arrives as a reliable transfer
// from the server. Dial with LinkRetransmit(RetransmitConfig{Disable:
// true}) to fall back to the legacy blind-resend path.
type Link struct {
	conn    *net.UDPConn
	control chan []byte // control responses (type+body), copied out of the read buffer
	frames  chan []byte // pushed data datagrams (type+body) in pooled buffers the queue owns

	cfg    RetransmitConfig
	arq    *arq       // nil when cfg.Disable
	filter SendFilter // control-path impairment seam (tests)

	ctrlMu sync.Mutex // serialises control-plane round trips

	mu        sync.Mutex
	deliverFn func(frames [][]byte) error
	dispatch  bool

	closeOnce sync.Once
	closed    chan struct{}
}

// DialOption configures a Link at Dial time.
type DialOption func(*Link)

// LinkRetransmit sets the link's ARQ tuning (zero value = defaults,
// enabled; RetransmitConfig.Disable opts out).
func LinkRetransmit(cfg RetransmitConfig) DialOption {
	return func(l *Link) { l.cfg = cfg }
}

// LinkSendFilter installs a control-path send filter (loss injection for
// tests; see SendFilter). Nil leaves sends unfiltered.
func LinkSendFilter(f SendFilter) DialOption {
	return func(l *Link) { l.filter = f }
}

// Dial connects a client link to an endbox server's UDP address.
func Dial(ctx context.Context, server string, opts ...DialOption) (*Link, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	addr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	// Absorb whole chunk bursts instead of shedding them (best effort).
	_ = conn.SetReadBuffer(recvBufferSize)
	l := &Link{
		conn:    conn,
		control: make(chan []byte, controlQueue),
		frames:  make(chan []byte, 256),
		closed:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(l)
	}
	if !l.cfg.Disable {
		l.arq = newARQ(l.cfg, func(_ *net.UDPAddr, datagram []byte) error {
			return l.send(datagram)
		}, nil)
	}
	go l.readLoop()
	return l, nil
}

// send writes one control-path datagram through the link's send filter.
func (l *Link) send(datagram []byte) error {
	raw := func(d []byte) error {
		_, err := l.conn.Write(d)
		return err
	}
	if l.filter != nil {
		return l.filter(datagram, raw)
	}
	return raw(datagram)
}

// ARQStats reports the link-side reliability counters (zero value when
// the ARQ layer is disabled).
func (l *Link) ARQStats() ARQStats {
	if l.arq == nil {
		return ARQStats{}
	}
	return l.arq.snapshot()
}

// readLoop reads datagrams into pooled buffers. Data frames travel to the
// dispatch loop inside their receive buffer — ownership moves with them
// and the dispatcher releases the buffer after the handler's burst — while
// the cold control path copies and reuses the same buffer.
func (l *Link) readLoop() {
	buf := wire.GetBuffer(MaxDatagram)
	for {
		n, err := l.conn.Read(buf[:MaxDatagram])
		if err != nil {
			wire.PutBuffer(buf)
			close(l.frames)
			return
		}
		if n == 0 {
			continue
		}
		if buf[0] == MsgFrame || buf[0] == MsgControl {
			select {
			case l.frames <- buf[:n]:
				buf = wire.GetBuffer(MaxDatagram)
			default: // shed on overload like a real NIC queue; buffer reused
			}
			continue
		}
		if l.arq != nil {
			switch buf[0] {
			case MsgRel:
				// Reliable control from the server: unwrap, deduplicate
				// and acknowledge. A full control queue refuses delivery,
				// which withholds the ack — the server retransmits, so
				// nothing acknowledged is ever shed.
				l.arq.handleRel("", nil, buf[1:n], func(inner []byte) bool {
					msg := append([]byte(nil), inner...)
					select {
					case l.control <- msg:
						return true
					default:
						return false
					}
				})
				continue
			case MsgAck:
				l.arq.handleAck("", buf[1:n])
				continue
			}
		}
		msg := append([]byte(nil), buf[:n]...)
		select {
		case l.control <- msg:
		default:
		}
	}
}

// drainControl drops stale responses from abandoned round trips so they
// cannot be mistaken for the answer to the next one. Callers hold ctrlMu.
func (l *Link) drainControl() {
	for {
		select {
		case <-l.control:
		default:
			return
		}
	}
}

// request performs one control round trip, honouring ctx. With the ARQ
// layer the request goes out as a reliable transfer (the layer's timers
// replace the legacy blind resend) and failure surfaces as soon as the
// retry budget is spent; without it, three blind attempts as before.
func (l *Link) request(ctx context.Context, datagram []byte) (byte, []byte, error) {
	l.ctrlMu.Lock()
	defer l.ctrlMu.Unlock()
	l.drainControl()
	if l.arq != nil {
		return l.requestReliable(ctx, datagram)
	}
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		if err := l.send(datagram); err != nil {
			return 0, nil, err
		}
		select {
		case resp := <-l.control:
			msgType, body, err := Decode(resp)
			if err != nil {
				return 0, nil, err
			}
			if msgType == MsgError {
				return 0, nil, serverError(body)
			}
			return msgType, body, nil
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-l.closed:
			return 0, nil, ErrLinkClosed
		case <-time.After(requestTimeout):
		}
	}
	return 0, nil, fmt.Errorf("udptransport: no response from server")
}

// requestReliable is the ARQ round trip. Callers hold ctrlMu.
func (l *Link) requestReliable(ctx context.Context, datagram []byte) (byte, []byte, error) {
	x, err := l.arq.send("", nil, [][]byte{datagram})
	if err != nil {
		return 0, nil, err
	}
	defer l.arq.cancel(x)
	// The response is its own reliable transfer; allow the worst-case
	// schedule of both directions before declaring the server mute.
	deadline := time.NewTimer(2 * l.cfg.TransferDeadline())
	defer deadline.Stop()
	select {
	case resp := <-l.control:
		msgType, body, err := Decode(resp)
		if err != nil {
			return 0, nil, err
		}
		if msgType == MsgError {
			return 0, nil, serverError(body)
		}
		return msgType, body, nil
	case err := <-x.failed:
		return 0, nil, fmt.Errorf("udptransport: request undeliverable: %w", err)
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	case <-l.closed:
		return 0, nil, ErrLinkClosed
	case <-deadline.C:
		return 0, nil, fmt.Errorf("udptransport: no response from server")
	}
}

// Register implements core.ClientLink.
func (l *Link) Register(ctx context.Context, platformID string, key ed25519.PublicKey) (ed25519.PublicKey, error) {
	msg, err := EncodeJSON(MsgRegister, Register{PlatformID: platformID, Key: key})
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, fmt.Errorf("udptransport: register: %w", err)
	}
	if msgType != MsgRegisterOK {
		return nil, fmt.Errorf("udptransport: register: unexpected response %c", msgType)
	}
	return ed25519.PublicKey(append([]byte(nil), body...)), nil
}

// Enroll implements core.ClientLink.
func (l *Link) Enroll(ctx context.Context, q attest.Quote) (*attest.Provision, error) {
	msg, err := EncodeJSON(MsgQuote, q)
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, err
	}
	if msgType != MsgProvision {
		return nil, fmt.Errorf("udptransport: unexpected enrolment response %c", msgType)
	}
	var prov attest.Provision
	if err := DecodeJSON(body, &prov); err != nil {
		return nil, err
	}
	return &prov, nil
}

// Hello implements core.ClientLink.
func (l *Link) Hello(ctx context.Context, h *vpn.ClientHello) (*vpn.ServerHello, error) {
	msg, err := EncodeJSON(MsgHello, h)
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, err
	}
	if msgType != MsgServerHello {
		return nil, fmt.Errorf("udptransport: unexpected handshake response %c", msgType)
	}
	var sh vpn.ServerHello
	if err := DecodeJSON(body, &sh); err != nil {
		return nil, err
	}
	return &sh, nil
}

// Resume implements core.ResumeLink: the MsgResume round trip.
func (l *Link) Resume(ctx context.Context, r *vpn.ResumeRequest) (*vpn.ResumeReply, error) {
	msg, err := EncodeJSON(MsgResume, r)
	if err != nil {
		return nil, err
	}
	msgType, body, err := l.request(ctx, msg)
	if err != nil {
		return nil, err
	}
	if msgType != MsgResumeOK {
		return nil, fmt.Errorf("udptransport: unexpected resume response %c", msgType)
	}
	var reply vpn.ResumeReply
	if err := DecodeJSON(body, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// FetchConfig implements core.ClientLink: request a blob (0 = latest) and
// reassemble the chunk stream. With the ARQ layer the chunk stream is a
// reliable transfer — lost chunks are retransmitted (and holes actively
// re-requested by the receiver's gap probes) instead of timing out the
// whole fetch; the Assembler rejects inconsistent chunk streams with
// typed errors either way.
func (l *Link) FetchConfig(ctx context.Context, version uint64) ([]byte, error) {
	l.ctrlMu.Lock()
	defer l.ctrlMu.Unlock()
	l.drainControl()
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], version)
	fetch := Encode(MsgFetch, v[:])
	fetchDeadline := 5 * time.Second
	var x *xmit
	if l.arq != nil {
		var err error
		if x, err = l.arq.send("", nil, [][]byte{fetch}); err != nil {
			return nil, err
		}
		defer l.arq.cancel(x)
		// Request transfer plus a chunk-stream transfer, worst case.
		fetchDeadline = 2 * l.cfg.TransferDeadline()
	} else if err := l.send(fetch); err != nil {
		return nil, err
	}
	var asm Assembler
	deadline := time.NewTimer(fetchDeadline)
	defer deadline.Stop()
	var failed chan error
	if x != nil {
		failed = x.failed
	}
	for {
		select {
		case resp := <-l.control:
			msgType, body, err := Decode(resp)
			if err != nil {
				return nil, err
			}
			switch msgType {
			case MsgError:
				return nil, serverError(body)
			case MsgConfig:
				complete, err := asm.Add(body)
				if err != nil {
					return nil, err
				}
				if complete {
					return asm.Blob()
				}
			}
		case err := <-failed:
			return nil, fmt.Errorf("udptransport: fetch undeliverable: %w", err)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-l.closed:
			return nil, ErrLinkClosed
		case <-deadline.C:
			got, want := asm.Received()
			return nil, fmt.Errorf("udptransport: configuration fetch timed out (%d/%d chunks)", got, want)
		}
	}
}

// SendFrame implements core.ClientLink.
func (l *Link) SendFrame(frame []byte) error {
	_, err := l.conn.Write(Encode(MsgFrame, frame))
	return err
}

// SendControlFrame implements core.ControlLink: send one sealed frame in
// the control delivery class (MsgControl). The server submits it to its
// ingress pool past the shedding watermark, so keepalive pings, nacks and
// health reports keep arriving while a flood is shedding data frames.
func (l *Link) SendControlFrame(frame []byte) error {
	_, err := l.conn.Write(Encode(MsgControl, frame))
	return err
}

// maxDeliverBatch bounds how many queued frames one dispatch round hands
// to the batch handler (and therefore how many cross the client's enclave
// boundary in one ecall).
const maxDeliverBatch = 32

// SetDeliver implements core.ClientLink: install the per-frame handler for
// pushed server->client frames and start the dispatch loop.
func (l *Link) SetDeliver(fn func(frame []byte) error) {
	l.setDeliver(func(frames [][]byte) error {
		var firstErr error
		for _, f := range frames {
			if err := fn(f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	})
}

// SetDeliverBatch implements core.BatchClientLink: bursts of frames that
// queued while the handler was busy are handed over together, so the
// receiving client can open them in a single enclave crossing.
func (l *Link) SetDeliverBatch(fn func(frames [][]byte) error) {
	l.setDeliver(fn)
}

// setDeliver installs the burst handler and starts the dispatch loop once.
func (l *Link) setDeliver(fn func(frames [][]byte) error) {
	l.mu.Lock()
	l.deliverFn = fn
	start := !l.dispatch
	l.dispatch = true
	l.mu.Unlock()
	if !start {
		return
	}
	go func() {
		// The batch and its backing pooled datagrams are reused across
		// rounds; handlers get the frames for the duration of the call
		// only (the deployment's slab ingress copies them into its ecall
		// slab) and the buffers go back to the pool right after.
		batch := make([][]byte, 0, maxDeliverBatch)
		owners := make([][]byte, 0, maxDeliverBatch)
		release := func() {
			for _, o := range owners {
				wire.PutBuffer(o)
			}
			batch, owners = batch[:0], owners[:0]
		}
		for {
			select {
			case msg, ok := <-l.frames:
				if !ok {
					return
				}
				// Collect the burst that queued behind the first frame
				// without blocking for more.
				batch = append(batch, msg[1:])
				owners = append(owners, msg)
			drain:
				for len(batch) < maxDeliverBatch {
					select {
					case m, ok := <-l.frames:
						if !ok {
							break drain
						}
						batch = append(batch, m[1:])
						owners = append(owners, m)
					default:
						break drain
					}
				}
				l.mu.Lock()
				h := l.deliverFn
				l.mu.Unlock()
				if h != nil {
					_ = h(batch) // per-frame errors are data-path events, not link failures
				}
				release()
			case <-l.closed:
				return
			}
		}
	}()
}

// Close implements core.ClientLink. Pending reliable transfers fail with
// ErrLinkClosed and every ARQ timer is stopped.
func (l *Link) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closed)
		if l.arq != nil {
			l.arq.close()
		}
		err = l.conn.Close()
	})
	return err
}
