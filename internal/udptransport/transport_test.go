package udptransport

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"fmt"
	"sync"
	"testing"
	"time"

	"endbox/internal/attest"
	"endbox/internal/core"
	"endbox/internal/vpn"
)

// fakeEndpoint implements core.ServerEndpoint with canned behaviour, so
// the transport's dispatch and chunking are tested without a deployment.
type fakeEndpoint struct {
	mu        sync.Mutex
	caPub     ed25519.PublicKey
	blob      []byte
	frames    [][]byte
	platforms []string
}

func (f *fakeEndpoint) RegisterPlatform(id string, key ed25519.PublicKey) (ed25519.PublicKey, error) {
	if id == "denied" {
		return nil, fmt.Errorf("platform on deny list")
	}
	f.mu.Lock()
	f.platforms = append(f.platforms, id)
	f.mu.Unlock()
	return f.caPub, nil
}

func (f *fakeEndpoint) Enroll(q attest.Quote) (*attest.Provision, error) {
	return nil, fmt.Errorf("enrolment closed")
}

func (f *fakeEndpoint) AcceptHello(h *vpn.ClientHello) (*vpn.ServerHello, error) {
	return &vpn.ServerHello{ChosenTLS: vpn.TLS13}, nil
}

func (f *fakeEndpoint) AcceptResume(r *vpn.ResumeRequest) (*vpn.ResumeReply, error) {
	return &vpn.ResumeReply{}, nil
}

func (f *fakeEndpoint) HandleFrame(clientID string, frame []byte) error {
	f.mu.Lock()
	f.frames = append(f.frames, append([]byte(nil), frame...))
	f.mu.Unlock()
	return nil
}

func (f *fakeEndpoint) FetchConfig(version uint64) ([]byte, error) {
	if version == 404 {
		return nil, fmt.Errorf("no such version")
	}
	return f.blob, nil
}

func startTransport(t *testing.T, ep core.ServerEndpoint) *Transport {
	t.Helper()
	tr := NewTransport("127.0.0.1:0")
	if err := tr.BindServer(ep); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTransportControlRoundTrips(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	// A blob spanning several chunks exercises reassembly.
	blob := bytes.Repeat([]byte("endbox-config-"), 10000) // ~140 kB
	ep := &fakeEndpoint{caPub: pub, blob: blob}
	tr := startTransport(t, ep)

	link, err := Dial(ctx, tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	got, err := link.Register(ctx, "platform-1", pub)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !got.Equal(pub) {
		t.Error("CA key mangled in transit")
	}
	if _, err := link.Register(ctx, "denied", pub); err == nil {
		t.Error("denied registration succeeded")
	}
	if _, err := link.Enroll(ctx, attest.Quote{}); err == nil {
		t.Error("enrolment error not propagated")
	}

	fetched, err := link.FetchConfig(ctx, 1)
	if err != nil {
		t.Fatalf("FetchConfig: %v", err)
	}
	if !bytes.Equal(fetched, blob) {
		t.Errorf("fetched blob differs: %d bytes vs %d", len(fetched), len(blob))
	}
	if _, err := link.FetchConfig(ctx, 404); err == nil {
		t.Error("fetch error not propagated")
	}
}

func TestTransportFramesAfterHello(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ep := &fakeEndpoint{caPub: pub}
	tr := startTransport(t, ep)

	link, err := Dial(ctx, tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	// Frames from an address the server has not seen a handshake from are
	// rejected, so none reach the endpoint.
	if err := link.SendFrame([]byte("early")); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Hello(ctx, &vpn.ClientHello{ClientID: "c1"}); err != nil {
		t.Fatalf("Hello: %v", err)
	}
	if err := link.SendFrame([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}

	// Server -> client push.
	inbound := make(chan []byte, 1)
	link.SetDeliver(func(frame []byte) error {
		inbound <- append([]byte(nil), frame...)
		return nil
	})
	if err := waitFor(func() bool {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		return len(ep.frames) == 1
	}); err != nil {
		ep.mu.Lock()
		t.Fatalf("server frames = %v (want exactly the post-hello frame)", ep.frames)
	}
	if err := tr.SendToClient("c1", []byte("push-1")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-inbound:
		if string(f) != "push-1" {
			t.Errorf("pushed frame = %q", f)
		}
	case <-ctx.Done():
		t.Fatal("pushed frame never delivered")
	}

	if err := tr.SendToClient("unknown", []byte("x")); err == nil {
		t.Error("SendToClient to unknown client succeeded")
	}
}

// retainingEndpoint keeps a copy of every frame it is handed. Under the
// pooled-buffer ownership rules a frame is lent to HandleFrame for the
// duration of the call only (the buffer goes back to the receive pool when
// the handler returns), so an endpoint that keeps frames MUST copy — this
// endpoint is the reference implementation of that contract, and the tests
// built on it verify the pool never recycles a buffer before its handler
// has finished reading it.
type retainingEndpoint struct {
	fakeEndpoint
	retained [][]byte
	byClient map[string][][]byte
}

func (r *retainingEndpoint) HandleFrame(clientID string, frame []byte) error {
	kept := append([]byte(nil), frame...) // the ownership rules require the copy
	r.mu.Lock()
	r.retained = append(r.retained, kept)
	if r.byClient == nil {
		r.byClient = make(map[string][][]byte)
	}
	r.byClient[clientID] = append(r.byClient[clientID], kept)
	r.mu.Unlock()
	return nil
}

// TestFrameBodyNotAliased guards the pooled receive buffers' ownership
// handoff: each frame stays stable for the duration of its HandleFrame
// call even while later datagrams arrive, so a handler that copies during
// the call (the contract for retention) always sees the original bytes.
func TestFrameBodyNotAliased(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ep := &retainingEndpoint{fakeEndpoint: fakeEndpoint{caPub: pub}}
	tr := startTransport(t, ep)

	link, err := Dial(ctx, tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	if _, err := link.Hello(ctx, &vpn.ClientHello{ClientID: "alias"}); err != nil {
		t.Fatal(err)
	}

	const frames = 20
	for i := 0; i < frames; i++ {
		if err := link.SendFrame([]byte(fmt.Sprintf("frame-%02d-padding-so-lengths-overlap", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := waitFor(func() bool {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		return len(ep.retained) == frames
	}); err != nil {
		t.Fatalf("frames did not all arrive: %v", err)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for i, f := range ep.retained {
		want := fmt.Sprintf("frame-%02d-padding-so-lengths-overlap", i)
		if string(f) != want {
			t.Errorf("retained frame %d clobbered: %q (want %q)", i, f, want)
		}
	}
}

// TestWorkerPoolIngress runs the server with a pipelined ingress pool and
// checks every frame arrives and per-client ordering survives the fan-out.
func TestWorkerPoolIngress(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ep := &retainingEndpoint{fakeEndpoint: fakeEndpoint{caPub: pub}}
	tr := NewTransport("127.0.0.1:0")
	tr.SetWorkers(4)
	if err := tr.BindServer(ep); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Workers(); got != 4 {
		t.Fatalf("Workers = %d, want 4", got)
	}

	const clients = 3
	const perClient = 50
	links := make([]*Link, clients)
	for i := range links {
		link, err := Dial(ctx, tr.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer link.Close()
		if _, err := link.Hello(ctx, &vpn.ClientHello{ClientID: fmt.Sprintf("w%d", i)}); err != nil {
			t.Fatal(err)
		}
		links[i] = link
	}
	for j := 0; j < perClient; j++ {
		for i, link := range links {
			if err := link.SendFrame([]byte(fmt.Sprintf("w%d-seq-%03d", i, j))); err != nil {
				t.Fatal(err)
			}
			// Loopback UDP plus a bounded ingress queue: pace slightly so
			// the test asserts ordering, not shedding behaviour.
			if j%16 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if err := waitFor(func() bool {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		return len(ep.retained) == clients*perClient
	}); err != nil {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		t.Fatalf("only %d/%d frames arrived", len(ep.retained), clients*perClient)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("w%d", i)
		got := ep.byClient[id]
		if len(got) != perClient {
			t.Fatalf("%s: %d frames, want %d", id, len(got), perClient)
		}
		for j, f := range got {
			want := fmt.Sprintf("w%d-seq-%03d", i, j)
			if string(f) != want {
				t.Fatalf("%s frame %d out of order: %q (want %q)", id, j, f, want)
			}
		}
	}
}

func waitFor(cond func() bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("condition not met")
}
