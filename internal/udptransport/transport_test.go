package udptransport

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"fmt"
	"sync"
	"testing"
	"time"

	"endbox/internal/attest"
	"endbox/internal/core"
	"endbox/internal/vpn"
)

// fakeEndpoint implements core.ServerEndpoint with canned behaviour, so
// the transport's dispatch and chunking are tested without a deployment.
type fakeEndpoint struct {
	mu        sync.Mutex
	caPub     ed25519.PublicKey
	blob      []byte
	frames    [][]byte
	platforms []string
}

func (f *fakeEndpoint) RegisterPlatform(id string, key ed25519.PublicKey) (ed25519.PublicKey, error) {
	if id == "denied" {
		return nil, fmt.Errorf("platform on deny list")
	}
	f.mu.Lock()
	f.platforms = append(f.platforms, id)
	f.mu.Unlock()
	return f.caPub, nil
}

func (f *fakeEndpoint) Enroll(q attest.Quote) (*attest.Provision, error) {
	return nil, fmt.Errorf("enrolment closed")
}

func (f *fakeEndpoint) AcceptHello(h *vpn.ClientHello) (*vpn.ServerHello, error) {
	return &vpn.ServerHello{ChosenTLS: vpn.TLS13}, nil
}

func (f *fakeEndpoint) HandleFrame(clientID string, frame []byte) error {
	f.mu.Lock()
	f.frames = append(f.frames, append([]byte(nil), frame...))
	f.mu.Unlock()
	return nil
}

func (f *fakeEndpoint) FetchConfig(version uint64) ([]byte, error) {
	if version == 404 {
		return nil, fmt.Errorf("no such version")
	}
	return f.blob, nil
}

func startTransport(t *testing.T, ep core.ServerEndpoint) *Transport {
	t.Helper()
	tr := NewTransport("127.0.0.1:0")
	if err := tr.BindServer(ep); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTransportControlRoundTrips(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	// A blob spanning several chunks exercises reassembly.
	blob := bytes.Repeat([]byte("endbox-config-"), 10000) // ~140 kB
	ep := &fakeEndpoint{caPub: pub, blob: blob}
	tr := startTransport(t, ep)

	link, err := Dial(ctx, tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	got, err := link.Register(ctx, "platform-1", pub)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !got.Equal(pub) {
		t.Error("CA key mangled in transit")
	}
	if _, err := link.Register(ctx, "denied", pub); err == nil {
		t.Error("denied registration succeeded")
	}
	if _, err := link.Enroll(ctx, attest.Quote{}); err == nil {
		t.Error("enrolment error not propagated")
	}

	fetched, err := link.FetchConfig(ctx, 1)
	if err != nil {
		t.Fatalf("FetchConfig: %v", err)
	}
	if !bytes.Equal(fetched, blob) {
		t.Errorf("fetched blob differs: %d bytes vs %d", len(fetched), len(blob))
	}
	if _, err := link.FetchConfig(ctx, 404); err == nil {
		t.Error("fetch error not propagated")
	}
}

func TestTransportFramesAfterHello(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ep := &fakeEndpoint{caPub: pub}
	tr := startTransport(t, ep)

	link, err := Dial(ctx, tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	// Frames from an address the server has not seen a handshake from are
	// rejected, so none reach the endpoint.
	if err := link.SendFrame([]byte("early")); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Hello(ctx, &vpn.ClientHello{ClientID: "c1"}); err != nil {
		t.Fatalf("Hello: %v", err)
	}
	if err := link.SendFrame([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}

	// Server -> client push.
	inbound := make(chan []byte, 1)
	link.SetDeliver(func(frame []byte) error {
		inbound <- append([]byte(nil), frame...)
		return nil
	})
	if err := waitFor(func() bool {
		ep.mu.Lock()
		defer ep.mu.Unlock()
		return len(ep.frames) == 1
	}); err != nil {
		ep.mu.Lock()
		t.Fatalf("server frames = %v (want exactly the post-hello frame)", ep.frames)
	}
	if err := tr.SendToClient("c1", []byte("push-1")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-inbound:
		if string(f) != "push-1" {
			t.Errorf("pushed frame = %q", f)
		}
	case <-ctx.Done():
		t.Fatal("pushed frame never delivered")
	}

	if err := tr.SendToClient("unknown", []byte("x")); err == nil {
		t.Error("SendToClient to unknown client succeeded")
	}
}

func waitFor(cond func() bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("condition not met")
}
