package click

import (
	"fmt"
	"sync"
	"time"

	"endbox/internal/flow"
	"endbox/internal/packet"
)

// Router is an assembled, immutable element graph ready to process packets.
// Build one with BuildRouter or let Instance manage building and
// hot-swapping.
type Router struct {
	elements map[string]Element
	order    []string // declaration order, for deterministic iteration
	input    Element  // the FromDevice entry point
	output   *ToDevice

	// Fault containment (contain.go). entry is where Process injects
	// packets — normally input, or its quarantine gate while the input
	// element is tripped. cur tracks the element currently executing Push
	// (stored by Base.Forward) so a recovered panic can be attributed.
	// quar and trips are nil until the first fault.
	entry  Element
	cur    Element
	policy FailurePolicy
	fault  func(ElementFault)
	now    func() time.Time
	quar   map[string]*quarantine
	trips  map[string]int

	// res and pkt are the per-router scratch reused by every Process call,
	// so the steady-state path allocates neither a Result nor a Packet
	// wrapper. Routers are single-threaded by contract (Instance
	// serialises), so one scratch pair suffices.
	res Result
	pkt Packet
}

// Result reports what the graph decided about one packet. The pointer
// returned by Process (and its Packet) is the router's reused scratch: it
// is valid only until the next Process call on the same router or
// instance — callers that need the verdict later must copy the fields out.
type Result struct {
	// Accepted is true when the packet reached ToDevice (paper Fig. 3
	// step 3: "the packet is either accepted or rejected").
	Accepted bool
	// DroppedBy names the element that rejected the packet, if any.
	DroppedBy string
	// Packet is the (possibly modified) packet.
	Packet *Packet
}

// BuildRouter instantiates a parsed graph: create elements, configure them,
// size and validate ports, and wire connections. A nil reg resolves
// against DefaultRegistry (built-in classes plus everything registered
// through the public mbox API).
func BuildRouter(g *Graph, reg Resolver, ctx *Context) (*Router, error) {
	if reg == nil {
		reg = DefaultRegistry
	}
	ctx = ctx.withDefaults()
	r := &Router{elements: make(map[string]Element, len(g.Decls))}

	// Count alerts against the raising element; the hook elements capture
	// at Configure time runs only once the router processes traffic, so
	// reading r.elements (fully populated by then) is safe.
	userAlert := ctx.Alert
	ctx.Alert = func(a Alert) {
		if el, ok := r.elements[a.Element]; ok {
			el.counters().alerts.Add(1)
		}
		userAlert(a)
	}

	// Instantiate and configure.
	for _, d := range g.Decls {
		factory, ok := reg.Lookup(d.Class)
		if !ok {
			return nil, fmt.Errorf("click: unknown element class %q", d.Class)
		}
		el := factory()
		el.setName(d.Name)
		if err := el.Configure(SplitArgs(d.Config), ctx); err != nil {
			return nil, fmt.Errorf("click: configure %s (%s): %w", d.Name, d.Class, err)
		}
		if _, dup := r.elements[d.Name]; dup {
			return nil, fmt.Errorf("click: duplicate element name %q", d.Name)
		}
		r.elements[d.Name] = el
		r.order = append(r.order, d.Name)
	}

	// Determine output port counts: fixed from OutPorts, or adaptive
	// (AnyPorts) from the highest connected port.
	maxOut := make(map[string]int, len(g.Decls))
	for _, c := range g.Conns {
		if _, ok := r.elements[c.From]; !ok {
			return nil, fmt.Errorf("click: connection from undeclared element %q", c.From)
		}
		if _, ok := r.elements[c.To]; !ok {
			return nil, fmt.Errorf("click: connection to undeclared element %q", c.To)
		}
		if c.FromPort+1 > maxOut[c.From] {
			maxOut[c.From] = c.FromPort + 1
		}
	}
	for name, el := range r.elements {
		want := el.OutPorts()
		if want == AnyPorts {
			el.bindOutputs(maxOut[name])
			continue
		}
		if maxOut[name] > want {
			return nil, fmt.Errorf("click: element %q has %d outputs but port %d is connected",
				name, want, maxOut[name]-1)
		}
		el.bindOutputs(want)
	}

	// Wire connections and validate input port ranges.
	for _, c := range g.Conns {
		from, to := r.elements[c.From], r.elements[c.To]
		if in := to.InPorts(); in != AnyPorts && c.ToPort >= in {
			return nil, fmt.Errorf("click: input port %d of %q out of range (%d ports)",
				c.ToPort, c.To, in)
		}
		if err := from.connectOutput(c.FromPort, to, c.ToPort); err != nil {
			return nil, err
		}
	}

	// Locate the entry and exit points.
	for _, name := range r.order {
		switch el := r.elements[name].(type) {
		case *FromDevice:
			if r.input != nil {
				return nil, fmt.Errorf("click: multiple FromDevice elements")
			}
			r.input = el
		case *ToDevice:
			if r.output != nil {
				return nil, fmt.Errorf("click: multiple ToDevice elements")
			}
			r.output = el
		}
	}
	if r.input == nil {
		return nil, ErrNoInput
	}
	r.entry = r.input
	r.policy = ctx.Failure
	r.fault = ctx.Fault
	r.now = ctx.TrustedTime

	// Mandatory outputs must be connected (except ToDevice/Discard sinks
	// and optional overflow ports, which elements declare via OutPorts).
	for _, name := range r.order {
		el := r.elements[name]
		if opt, ok := el.(interface{ optionalOutputs() bool }); ok && opt.optionalOutputs() {
			continue
		}
		for i := 0; i < el.outputCount(); i++ {
			if _, _, ok := el.forwardTarget(i); !ok {
				return nil, fmt.Errorf("click: output %d of %q unconnected", i, name)
			}
		}
	}
	return r, nil
}

// Element returns a configured element by name, for tests and state
// inspection.
func (r *Router) Element(name string) (Element, bool) {
	el, ok := r.elements[name]
	return el, ok
}

// Process pushes one packet through the graph and reports the verdict.
// Routers are not safe for concurrent Process calls; Instance serialises.
// The returned Result and its Packet are the router's reused scratch,
// valid only until the next Process call (Tee-style fan-out still clones
// fresh wrappers for its extra branches).
func (r *Router) Process(ip *packet.IPv4) *Result {
	p := &r.pkt
	*p = Packet{IP: ip, Backend: -1, owner: r}
	in := r.entry
	r.cur = in
	in.counters().packets.Add(1)
	in.Push(0, p)
	res := &r.res
	*res = Result{Packet: p}
	if p.delivered && !p.dropped {
		res.Accepted = true
	} else {
		res.DroppedBy = p.droppedBy
		if res.DroppedBy == "" {
			res.DroppedBy = "(no ToDevice reached)"
		}
	}
	return res
}

// countDrop attributes a packet drop to the deciding element (called from
// Packet.Drop through the packet's owner pointer, so custom elements that
// drop packets are counted without any code of their own).
func (r *Router) countDrop(name string) {
	if el, ok := r.elements[name]; ok {
		el.counters().drops.Add(1)
	}
}

// Stats snapshots every element's runtime counters in declaration order.
func (r *Router) Stats() []ElementStats {
	out := make([]ElementStats, 0, len(r.order))
	for _, name := range r.order {
		el := r.elements[name]
		c := el.counters()
		_, quarantined := r.quar[name]
		out = append(out, ElementStats{
			Name:        name,
			Class:       el.Class(),
			Packets:     c.packets.Load(),
			Drops:       c.drops.Load(),
			Alerts:      c.alerts.Load(),
			Flows:       c.flows.Load(),
			Panics:      c.panics.Load(),
			Quarantined: quarantined,
		})
	}
	return out
}

// transplantState moves state from the old router's elements into this one
// for every element that kept its name and class across the swap: the
// uniform runtime counters always, element-specific state via StateCarrier.
func (r *Router) transplantState(old *Router) {
	if old == nil {
		return
	}
	for name, el := range r.elements {
		prev, ok := old.elements[name]
		if !ok || prev.Class() != el.Class() {
			continue
		}
		el.counters().copyFrom(prev.counters())
		if carrier, ok := el.(StateCarrier); ok {
			carrier.TakeState(prev)
		}
	}
}

// Instance manages the live router and implements Click's configuration
// hot-swapping on in-memory configurations (paper §IV change (iii)). All
// packet processing is serialised through the instance, so a swap is
// atomic with respect to traffic — Click's single-threaded model.
type Instance struct {
	reg Resolver
	ctx *Context

	mu     sync.Mutex
	router *Router
	config string
}

// NewInstance builds the initial configuration. A nil reg resolves
// against DefaultRegistry, and the instance keeps resolving live: element
// classes registered after creation are available to later Swaps.
func NewInstance(config string, reg Resolver, ctx *Context) (*Instance, error) {
	if reg == nil {
		reg = DefaultRegistry
	}
	// Normalise the context once and keep the normalised copy: services
	// that withDefaults creates (notably the flow-state table) must be
	// the same objects across every Swap, or per-flow state would silently
	// reset on each configuration rollout.
	ctx = ctx.withDefaults()
	g, err := ParseConfig(config)
	if err != nil {
		return nil, err
	}
	router, err := buildRecovering(g, reg, ctx)
	if err != nil {
		return nil, err
	}
	return &Instance{reg: reg, ctx: ctx, router: router, config: config}, nil
}

// Process runs one packet through the current configuration. The Result
// (and its Packet) is the active router's reused scratch: read it before
// the next Process call on this instance, copying anything kept longer.
//
// With containment enabled (Context.Failure.Contain) a panicking element
// is recovered here — the instance boundary, where the router's scratch
// state can be safely rebuilt — and turned into a drop verdict at the
// faulting element (see Router.containPanic).
func (i *Instance) Process(ip *packet.IPv4) (res *Result) {
	i.mu.Lock()
	defer i.mu.Unlock()
	// The recover frame is unconditional so the defer stays open-coded
	// (a conditional defer closure costs several ns per packet); with
	// containment disabled the panic is re-raised and propagates as
	// before. The happy-path price is one deferred recover check.
	defer func() {
		if rec := recover(); rec != nil {
			if !i.ctx.Failure.Contain {
				panic(rec)
			}
			res = i.router.containPanic(rec)
		}
	}()
	return i.router.Process(ip)
}

// Config returns the currently active configuration text.
func (i *Instance) Config() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.config
}

// Element exposes a live element by name (state inspection in tests).
func (i *Instance) Element(name string) (Element, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.router.Element(name)
}

// Stats snapshots the active configuration's per-element counters in
// declaration order. Counters survive hot-swaps for elements that keep
// their name and class.
func (i *Instance) Stats() []ElementStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.router.Stats()
}

// Flows returns the instance's flow-state service — the one shared by
// every configuration this instance ever runs (state survives Swap).
func (i *Instance) Flows() *flow.Context { return i.ctx.Flows }

// FlowStats snapshots the instance's flow-table counters.
func (i *Instance) FlowStats() flow.Stats { return i.ctx.Flows.Stats() }

// Swap hot-swaps to a new configuration, transplanting state from same-name
// same-class elements, and returns the time the swap took (Table II's
// "hotswap" phase). On error the old configuration stays active — and a
// panic inside an element's Configure or TakeState is converted into an
// error rather than unwinding into the caller, so a broken configuration
// can never take down a working pipeline.
func (i *Instance) Swap(config string) (time.Duration, error) {
	start := time.Now()
	g, err := ParseConfig(config)
	if err != nil {
		return 0, err
	}
	router, err := buildRecovering(g, i.reg, i.ctx)
	if err != nil {
		return 0, err
	}
	if err := i.install(router, config); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// buildRecovering is BuildRouter with element panics (a user element's
// Configure blowing up) converted to errors.
func buildRecovering(g *Graph, reg Resolver, ctx *Context) (r *Router, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("click: element panicked during build: %v", rec)
		}
	}()
	return BuildRouter(g, reg, ctx)
}

// install swaps the live router under the instance lock. A panic inside a
// StateCarrier's TakeState leaves the old router active and reports an
// error.
func (i *Instance) install(router *Router, config string) (err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("click: element panicked during state transplant: %v", rec)
		}
	}()
	router.transplantState(i.router)
	i.router = router
	i.config = config
	return nil
}
