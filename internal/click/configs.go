package click

import (
	"fmt"
	"strings"
)

// UseCase identifies one of the five middlebox functions the paper
// evaluates (§V-B).
type UseCase int

// Evaluation use cases.
const (
	// UseCaseNOP forwards packets untouched — the measurement baseline.
	UseCaseNOP UseCase = iota + 1
	// UseCaseLB balances packets across four backends with
	// RoundRobinSwitch.
	UseCaseLB
	// UseCaseFW filters with 16 non-matching IPFilter rules.
	UseCaseFW
	// UseCaseIDPS matches the community rule set with IDSMatcher.
	UseCaseIDPS
	// UseCaseDDoS rate-limits with IDSMatcher + TrustedSplitter.
	UseCaseDDoS
)

// AllUseCases lists the evaluation order used in the paper's figures.
var AllUseCases = []UseCase{UseCaseNOP, UseCaseLB, UseCaseFW, UseCaseIDPS, UseCaseDDoS}

// String implements fmt.Stringer with the paper's labels.
func (u UseCase) String() string {
	switch u {
	case UseCaseNOP:
		return "NOP"
	case UseCaseLB:
		return "LB"
	case UseCaseFW:
		return "FW"
	case UseCaseIDPS:
		return "IDPS"
	case UseCaseDDoS:
		return "DDoS"
	default:
		return fmt.Sprintf("UseCase(%d)", int(u))
	}
}

// StandardConfig returns the Click configuration for a use case, matching
// the paper's setups: the FW rules match no evaluation packet, the IDPS
// uses the community rule set (resolved via Context.RuleSet), and the DDoS
// splitter samples trusted time every 500,000 packets.
//
// Deprecated: StandardConfig is a thin shim compiling StockPipeline(u);
// new code should build pipelines with the typed Stage/Chain API (public
// surface: package mbox) and compile them explicitly.
func StandardConfig(u UseCase) string {
	cfg, err := StockPipeline(u).Config()
	if err != nil {
		return ""
	}
	return cfg
}

// ServerConfig is StandardConfig for a server-side vanilla Click instance
// (the OpenVPN+Click baseline): identical graphs except the DDoS shaper
// uses UntrustedSplitter with per-packet system time, as in the paper.
func ServerConfig(u UseCase) string {
	if u == UseCaseDDoS {
		cfg, err := Chain(
			Stage{Name: "ids", Class: "IDSMatcher", Args: []string{"RULESET community"}},
			Stage{Name: "shaper", Class: "UntrustedSplitter",
				Args: []string{"RATE 10G", "BURST 4000000000"}},
		).Config()
		if err != nil {
			return ""
		}
		return cfg
	}
	return StandardConfig(u)
}

// FirewallRules builds n IPFilter clauses over the TEST-NET-3 block
// (203.0.113.0/24), which no evaluation workload uses, followed by a final
// "allow all" — mirroring the paper's "set of 16 rules that do not match
// any packet".
func FirewallRules(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "drop src host 203.0.113.%d && dst port %d, ", i+1, 6000+i)
	}
	b.WriteString("allow all")
	return b.String()
}
