package click

import (
	"fmt"
	"strconv"
	"strings"
)

// Graph is a parsed Click configuration: element declarations plus the
// connections between their ports. Build it into a runnable Router with
// BuildRouter.
type Graph struct {
	Decls []Decl
	Conns []Conn
}

// Decl declares one element instance.
type Decl struct {
	Name   string
	Class  string
	Config string
}

// Conn connects an output port of one element to an input port of another.
type Conn struct {
	From     string
	FromPort int
	To       string
	ToPort   int
}

// parser state over a token stream.
type parser struct {
	toks []token
	pos  int
	g    *Graph
	// declared maps name -> class for reference resolution.
	declared map[string]string
	anon     int
}

type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokColonColon
	tokArrow
	tokLBracket
	tokRBracket
	tokSemi
	tokConfig // parenthesised config string, parens stripped
	tokNumber
)

type token struct {
	kind tokKind
	text string
}

// ParseConfig parses Click configuration syntax:
//
//	// declarations
//	fw :: IPFilter(drop src net 10.9.0.0/16, allow all);
//	// chains with optional port brackets and inline/anonymous elements
//	FromDevice -> fw -> cnt :: Counter -> ToDevice;
//	rr[1] -> [0]Discard;
//
// Comments (// and /* */) are ignored. Statements end with semicolons; a
// trailing unterminated statement is accepted.
func ParseConfig(text string) (*Graph, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, g: &Graph{}, declared: make(map[string]string)}
	for !p.done() {
		if p.peek().kind == tokSemi {
			p.next()
			continue
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	return p.g, nil
}

func lex(text string) ([]token, error) {
	var toks []token
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && text[i+1] == '/':
			for i < n && text[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && text[i+1] == '*':
			end := strings.Index(text[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("click: unterminated block comment")
			}
			i += end + 4
		case c == ':' && i+1 < n && text[i+1] == ':':
			toks = append(toks, token{tokColonColon, "::"})
			i += 2
		case c == '-' && i+1 < n && text[i+1] == '>':
			toks = append(toks, token{tokArrow, "->"})
			i += 2
		case c == '[':
			toks = append(toks, token{tokLBracket, "["})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]"})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";"})
			i++
		case c == '(':
			cfg, adv, err := lexConfig(text[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokConfig, cfg})
			i += adv
		case c >= '0' && c <= '9':
			j := i
			for j < n && text[j] >= '0' && text[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, text[i:j]})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(text[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, text[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("click: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// lexConfig captures a parenthesised configuration string, honouring nested
// parentheses and double-quoted strings. Returns the inner text and the
// total bytes consumed including both parens.
func lexConfig(s string) (string, int, error) {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr && c == '\\':
			i++
		case c == '"':
			inStr = !inStr
		case !inStr && c == '(':
			depth++
		case !inStr && c == ')':
			depth--
			if depth == 0 {
				return s[1:i], i + 1, nil
			}
		}
	}
	return "", 0, fmt.Errorf("click: unterminated configuration parenthesis")
}

func (p *parser) done() bool  { return p.pos >= len(p.toks) }
func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) peekAt(k int) (token, bool) {
	if p.pos+k < len(p.toks) {
		return p.toks[p.pos+k], true
	}
	return token{}, false
}

// statement parses either a standalone declaration or a connection chain.
func (p *parser) statement() error {
	first, firstOut, err := p.endpoint()
	if err != nil {
		return err
	}
	if p.done() || p.peek().kind == tokSemi {
		// Pure declaration (or a lone reference, which is harmless).
		return nil
	}
	prev, prevOut := first, firstOut
	for !p.done() && p.peek().kind == tokArrow {
		p.next()
		inPort := 0
		if !p.done() && p.peek().kind == tokLBracket {
			var err error
			inPort, err = p.portNumber()
			if err != nil {
				return err
			}
		}
		name, outPort, err := p.endpoint()
		if err != nil {
			return err
		}
		p.g.Conns = append(p.g.Conns, Conn{From: prev, FromPort: prevOut, To: name, ToPort: inPort})
		prev, prevOut = name, outPort
	}
	if !p.done() && p.peek().kind != tokSemi {
		return fmt.Errorf("click: unexpected token %q", p.peek().text)
	}
	return nil
}

// endpoint parses one element reference/declaration, returning its resolved
// name and trailing output-port number (default 0).
func (p *parser) endpoint() (string, int, error) {
	if p.done() {
		return "", 0, fmt.Errorf("click: unexpected end of configuration")
	}
	tok := p.next()
	if tok.kind != tokIdent {
		return "", 0, fmt.Errorf("click: expected element, got %q", tok.text)
	}
	name := tok.text

	// Declaration form: name :: Class [ (config) ]
	if !p.done() && p.peek().kind == tokColonColon {
		p.next()
		classTok := p.next()
		if classTok.kind != tokIdent {
			return "", 0, fmt.Errorf("click: expected class after '::', got %q", classTok.text)
		}
		cfg := ""
		if !p.done() && p.peek().kind == tokConfig {
			cfg = p.next().text
		}
		if prev, dup := p.declared[name]; dup {
			return "", 0, fmt.Errorf("click: element %q already declared as %s", name, prev)
		}
		p.declared[name] = classTok.text
		p.g.Decls = append(p.g.Decls, Decl{Name: name, Class: classTok.text, Config: cfg})
		port, err := p.trailingPort()
		return name, port, err
	}

	// Anonymous element: Class(config) or bare Class not yet declared.
	if !p.done() && p.peek().kind == tokConfig {
		cfg := p.next().text
		anon := p.anonName(name)
		p.g.Decls = append(p.g.Decls, Decl{Name: anon, Class: name, Config: cfg})
		port, err := p.trailingPort()
		return anon, port, err
	}
	if _, known := p.declared[name]; !known {
		// Bare identifier that was never declared: treat as an anonymous
		// class instance (e.g. "FromDevice -> ToDevice").
		anon := p.anonName(name)
		p.g.Decls = append(p.g.Decls, Decl{Name: anon, Class: name})
		port, err := p.trailingPort()
		return anon, port, err
	}
	port, err := p.trailingPort()
	return name, port, err
}

func (p *parser) anonName(class string) string {
	p.anon++
	return fmt.Sprintf("%s@%d", class, p.anon)
}

// trailingPort consumes an optional "[N]" output-port suffix.
func (p *parser) trailingPort() (int, error) {
	if p.done() || p.peek().kind != tokLBracket {
		return 0, nil
	}
	return p.portNumber()
}

func (p *parser) portNumber() (int, error) {
	lb := p.next()
	if lb.kind != tokLBracket {
		return 0, fmt.Errorf("click: expected '[', got %q", lb.text)
	}
	numTok := p.next()
	if numTok.kind != tokNumber {
		return 0, fmt.Errorf("click: expected port number, got %q", numTok.text)
	}
	n, err := strconv.Atoi(numTok.text)
	if err != nil {
		return 0, err
	}
	rb := p.next()
	if rb.kind != tokRBracket {
		return 0, fmt.Errorf("click: expected ']', got %q", rb.text)
	}
	return n, nil
}

// SplitArgs splits a Click configuration string into its comma-separated
// arguments, respecting double quotes and nested parentheses, trimming
// whitespace, and dropping empty trailing entries.
func SplitArgs(cfg string) []string {
	var (
		args  []string
		start int
		depth int
		inStr bool
	)
	flush := func(end int) {
		if a := strings.TrimSpace(cfg[start:end]); a != "" {
			args = append(args, a)
		}
		start = end + 1
	}
	for i := 0; i < len(cfg); i++ {
		switch c := cfg[i]; {
		case inStr && c == '\\':
			i++
		case c == '"':
			inStr = !inStr
		case !inStr && c == '(':
			depth++
		case !inStr && c == ')':
			depth--
		case !inStr && depth == 0 && c == ',':
			flush(i)
		}
	}
	flush(len(cfg))
	return args
}
