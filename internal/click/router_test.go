package click

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/tlstap"
)

// testContext provides rule sets and captures alerts.
func testContext(t *testing.T) (*Context, *[]Alert) {
	t.Helper()
	var alerts []Alert
	ctx := &Context{
		RuleSet: func(name string) (string, error) {
			switch name {
			case "community":
				return idps.GenerateRuleSet(idps.CommunityRuleCount, 2018), nil
			case "strict":
				return `drop tcp any any -> any any (msg:"worm"; content:"X-Worm"; sid:1;)`, nil
			default:
				return "", fmt.Errorf("unknown rule set %q", name)
			}
		},
		Alert: func(a Alert) { alerts = append(alerts, a) },
	}
	return ctx, &alerts
}

func mustInstance(t *testing.T, cfg string, ctx *Context) *Instance {
	t.Helper()
	inst, err := NewInstance(cfg, nil, ctx)
	if err != nil {
		t.Fatalf("NewInstance(%q): %v", cfg, err)
	}
	return inst
}

func testUDP(t *testing.T, payload string) *packet.IPv4 {
	t.Helper()
	raw := packet.NewUDP(packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1"),
		40000, 5201, []byte(payload))
	ip, err := packet.ParseIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func testTCPPort(t *testing.T, dstPort uint16, payload []byte) *packet.IPv4 {
	t.Helper()
	raw := packet.NewTCP(packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1"),
		40000, dstPort, 1, 0, packet.TCPAck, payload)
	ip, err := packet.ParseIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestNOPForwards(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, StandardConfig(UseCaseNOP), ctx)
	res := inst.Process(testUDP(t, "hello"))
	if !res.Accepted {
		t.Errorf("NOP rejected packet: dropped by %s", res.DroppedBy)
	}
}

func TestDiscardDrops(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> d :: Discard;", ctx)
	res := inst.Process(testUDP(t, "x"))
	if res.Accepted {
		t.Error("Discard accepted packet")
	}
	if res.DroppedBy != "d" {
		t.Errorf("DroppedBy = %q, want d", res.DroppedBy)
	}
	el, _ := inst.Element("d")
	if el.(*Discard).Count() != 1 {
		t.Error("Discard count wrong")
	}
}

func TestCounterCounts(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> c :: Counter -> ToDevice;", ctx)
	ip := testUDP(t, "count me")
	for i := 0; i < 5; i++ {
		inst.Process(ip)
	}
	el, _ := inst.Element("c")
	cnt := el.(*Counter)
	if cnt.Packets() != 5 {
		t.Errorf("Packets = %d, want 5", cnt.Packets())
	}
	if cnt.Bytes() != 5*uint64(ip.Len()) {
		t.Errorf("Bytes = %d, want %d", cnt.Bytes(), 5*ip.Len())
	}
}

func TestRoundRobinSwitchBalances(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, StandardConfig(UseCaseLB), ctx)
	backends := make(map[int]int)
	for i := 0; i < 12; i++ {
		res := inst.Process(testUDP(t, "lb"))
		if !res.Accepted {
			t.Fatalf("LB dropped packet %d", i)
		}
		backends[res.Packet.Backend]++
	}
	if len(backends) != 4 {
		t.Fatalf("backends used = %v, want 4", backends)
	}
	for b, n := range backends {
		if n != 3 {
			t.Errorf("backend %d received %d packets, want 3", b, n)
		}
	}
}

func TestIPFilterUseCasePassesCleanTraffic(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, StandardConfig(UseCaseFW), ctx)
	for i := 0; i < 20; i++ {
		if res := inst.Process(testUDP(t, "clean")); !res.Accepted {
			t.Fatalf("FW dropped clean packet: %s", res.DroppedBy)
		}
	}
	el, _ := inst.Element("fw")
	if el.(*IPFilter).Drops() != 0 {
		t.Error("FW should not drop evaluation traffic")
	}
}

func TestIPFilterDropRule(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> fw :: IPFilter(drop src net 10.8.0.0/16 && proto udp, allow all) -> ToDevice;", ctx)
	if res := inst.Process(testUDP(t, "x")); res.Accepted {
		t.Error("matching packet not dropped")
	}
	if res := inst.Process(testTCPPort(t, 80, []byte("y"))); !res.Accepted {
		t.Error("non-matching packet dropped")
	}
}

func TestIPFilterDefaultDeny(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> IPFilter(allow proto tcp) -> ToDevice;", ctx)
	if res := inst.Process(testUDP(t, "u")); res.Accepted {
		t.Error("unmatched packet should be dropped (vanilla IPFilter semantics)")
	}
	if res := inst.Process(testTCPPort(t, 80, nil)); !res.Accepted {
		t.Error("allowed packet dropped")
	}
}

func TestIPClassifierRouting(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, `
FromDevice -> cl :: IPClassifier(tcp, udp, -);
cl[0] -> tcpc :: Counter -> td :: ToDevice;
cl[1] -> udpc :: Counter -> td;
cl[2] -> restc :: Counter -> td;
`, ctx)
	inst.Process(testTCPPort(t, 80, nil))
	inst.Process(testUDP(t, "u"))
	icmpRaw := packet.NewICMPEcho(packet.MustParseAddr("1.1.1.1"), packet.MustParseAddr("2.2.2.2"),
		packet.ICMPEchoRequest, 1, 1, nil)
	icmpIP, err := packet.ParseIPv4(icmpRaw)
	if err != nil {
		t.Fatal(err)
	}
	inst.Process(icmpIP)

	counts := map[string]uint64{}
	for _, name := range []string{"tcpc", "udpc", "restc"} {
		el, _ := inst.Element(name)
		counts[name] = el.(*Counter).Packets()
	}
	if counts["tcpc"] != 1 || counts["udpc"] != 1 || counts["restc"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSetTOSFlagging(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> SetTOS(eb) -> ToDevice;", ctx)
	res := inst.Process(testUDP(t, "flag me"))
	if !res.Accepted {
		t.Fatal("packet dropped")
	}
	if res.Packet.IP.TOS != packet.ProcessedTOS {
		t.Errorf("TOS = %#x, want %#x", res.Packet.IP.TOS, packet.ProcessedTOS)
	}
}

func TestIDSMatcherAlertAndEnforce(t *testing.T) {
	ctx, alerts := testContext(t)
	// Alert mode: forwards and raises alerts.
	alertInst := mustInstance(t,
		"FromDevice -> IDSMatcher(RULESET strict) -> ToDevice;", ctx)
	res := alertInst.Process(testTCPPort(t, 80, []byte("X-Worm payload")))
	if !res.Accepted {
		t.Error("alert mode dropped the packet")
	}
	if len(*alerts) != 1 || (*alerts)[0].SID != 1 {
		t.Errorf("alerts = %+v", *alerts)
	}

	// Enforce mode: drop rules drop.
	*alerts = nil
	enfInst := mustInstance(t,
		"FromDevice -> IDSMatcher(RULESET strict, MODE enforce) -> ToDevice;", ctx)
	res = enfInst.Process(testTCPPort(t, 80, []byte("X-Worm payload")))
	if res.Accepted {
		t.Error("enforce mode forwarded a drop-rule match")
	}
	if res = enfInst.Process(testTCPPort(t, 80, []byte("benign"))); !res.Accepted {
		t.Error("enforce mode dropped clean traffic")
	}
}

func TestIDPSUseCaseCleanTraffic(t *testing.T) {
	ctx, alerts := testContext(t)
	inst := mustInstance(t, StandardConfig(UseCaseIDPS), ctx)
	payload := strings.Repeat("GET /index.html HTTP/1.1\r\n", 50)
	for i := 0; i < 10; i++ {
		if res := inst.Process(testTCPPort(t, 80, []byte(payload))); !res.Accepted {
			t.Fatal("IDPS dropped clean traffic")
		}
	}
	if len(*alerts) != 0 {
		t.Errorf("clean traffic alerted: %+v", *alerts)
	}
}

func TestTrustedSplitterShaping(t *testing.T) {
	now := time.Unix(0, 0)
	var trustedCalls int
	ctx, _ := testContext(t)
	ctx.TrustedTime = func() time.Time { trustedCalls++; return now }

	// 8 kbit/s = 1000 B/s; burst 1500 B; sample every 4 packets.
	inst := mustInstance(t, `
FromDevice -> ts :: TrustedSplitter(RATE 8k, BURST 1500, SAMPLE 4) -> ToDevice;
`, ctx)
	ip := testUDP(t, strings.Repeat("x", 472)) // 500-byte packets

	// Burst allows 3 packets (1500 B), the rest must drop while time is
	// frozen.
	accepted, dropped := 0, 0
	for i := 0; i < 10; i++ {
		if inst.Process(ip).Accepted {
			accepted++
		} else {
			dropped++
		}
	}
	if accepted != 3 || dropped != 7 {
		t.Errorf("accepted=%d dropped=%d, want 3/7", accepted, dropped)
	}

	// Advance time by 1s on the next probe: 1000 more bytes = 2 packets.
	now = now.Add(time.Second)
	accepted = 0
	for i := 0; i < 8; i++ {
		if inst.Process(ip).Accepted {
			accepted++
		}
	}
	if accepted != 2 {
		t.Errorf("after refill accepted = %d, want 2", accepted)
	}

	// Time sampling: 18 packets with SAMPLE 4 → ~5 probes, not 18.
	if trustedCalls > 6 {
		t.Errorf("trusted time called %d times, sampling broken", trustedCalls)
	}
}

func TestUntrustedSplitterProbesEveryPacket(t *testing.T) {
	var sysCalls int
	ctx, _ := testContext(t)
	ctx.SystemTime = func() time.Time { sysCalls++; return time.Unix(int64(sysCalls), 0) }
	inst := mustInstance(t, `
FromDevice -> UntrustedSplitter(RATE 1G, BURST 1000000) -> ToDevice;
`, ctx)
	for i := 0; i < 10; i++ {
		inst.Process(testUDP(t, "x"))
	}
	if sysCalls != 10 {
		t.Errorf("system time probed %d times, want 10 (per packet)", sysCalls)
	}
}

func TestSplitterExcessPort(t *testing.T) {
	ctx, _ := testContext(t)
	ctx.TrustedTime = func() time.Time { return time.Unix(0, 0) }
	inst := mustInstance(t, `
FromDevice -> ts :: TrustedSplitter(RATE 8k, BURST 600, SAMPLE 1);
ts[0] -> ToDevice;
ts[1] -> excess :: Counter -> Discard;
`, ctx)
	ip := testUDP(t, strings.Repeat("x", 472))
	for i := 0; i < 5; i++ {
		inst.Process(ip)
	}
	el, _ := inst.Element("excess")
	if got := el.(*Counter).Packets(); got != 4 {
		t.Errorf("excess packets = %d, want 4", got)
	}
}

func TestTLSDecryptAnnotatesPlaintext(t *testing.T) {
	ctx, alerts := testContext(t)
	ctx.Keys = tlstap.NewKeyTable()
	inst := mustInstance(t, `
FromDevice -> TLSDecrypt(PORT 443) -> IDSMatcher(RULESET strict, MODE enforce) -> ToDevice;
`, ctx)

	flow := packet.Flow{
		Src: packet.MustParseAddr("10.8.0.2"), SrcPort: 40000,
		Dst: packet.MustParseAddr("10.8.0.1"), DstPort: 443,
		Protocol: packet.ProtoTCP,
	}
	lib := tlstap.NewClientLibrary(func(f packet.Flow, k tlstap.SessionKey) { ctx.Keys.Put(f, k) })
	if _, err := lib.Handshake(flow); err != nil {
		t.Fatal(err)
	}

	// Malicious content hidden inside TLS: with the escrowed key the IDPS
	// sees the plaintext and drops.
	rec, err := lib.Encrypt(flow, []byte("X-Worm inside TLS"))
	if err != nil {
		t.Fatal(err)
	}
	res := inst.Process(testTCPPort(t, 443, rec))
	if res.Accepted {
		t.Error("encrypted malicious payload not dropped")
	}

	// Clean TLS traffic passes.
	rec, err = lib.Encrypt(flow, []byte("GET / HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res := inst.Process(testTCPPort(t, 443, rec)); !res.Accepted {
		t.Error("clean TLS payload dropped")
	}

	// Traffic without an escrowed key passes through uninspected (the
	// ciphertext does not contain the pattern).
	stock := tlstap.NewClientLibrary(nil)
	flow2 := flow
	flow2.SrcPort = 40001
	if _, err := stock.Handshake(flow2); err != nil {
		t.Fatal(err)
	}
	rec, err = stock.Encrypt(flow2, []byte("X-Worm inside TLS"))
	if err != nil {
		t.Fatal(err)
	}
	if res := inst.Process(testTCPPort(t, 443, rec)); !res.Accepted {
		t.Error("unescrowed TLS flow should pass through (undecryptable)")
	}
	_ = alerts
}

func TestHotSwapPreservesState(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> c :: Counter -> ToDevice;", ctx)
	for i := 0; i < 7; i++ {
		inst.Process(testUDP(t, "x"))
	}
	dur, err := inst.Swap("FromDevice -> c :: Counter -> IPFilter(allow all) -> ToDevice;")
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if dur <= 0 {
		t.Error("swap duration not measured")
	}
	el, _ := inst.Element("c")
	if got := el.(*Counter).Packets(); got != 7 {
		t.Errorf("counter state lost on swap: %d, want 7", got)
	}
	// New pipeline processes traffic.
	if res := inst.Process(testUDP(t, "y")); !res.Accepted {
		t.Error("post-swap pipeline dropped packet")
	}
	if got := el.(*Counter).Packets(); got != 7 {
		// el points at the old element; fetch the live one.
		live, _ := inst.Element("c")
		if live.(*Counter).Packets() != 8 {
			t.Error("live counter did not advance")
		}
	}
}

func TestHotSwapBadConfigKeepsOld(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, StandardConfig(UseCaseNOP), ctx)
	if _, err := inst.Swap("FromDevice -> Nonexistent -> ToDevice;"); err == nil {
		t.Fatal("bad swap accepted")
	}
	if res := inst.Process(testUDP(t, "still works")); !res.Accepted {
		t.Error("old configuration broken after failed swap")
	}
	if inst.Config() != StandardConfig(UseCaseNOP) {
		t.Error("Config() changed after failed swap")
	}
}

func TestBuildValidation(t *testing.T) {
	ctx, _ := testContext(t)
	cases := map[string]string{
		"unknown class":         "FromDevice -> Bogus -> ToDevice;",
		"no FromDevice":         "c :: Counter -> ToDevice;",
		"unconnected output":    "FromDevice -> c :: Counter; ToDevice;",
		"two FromDevice":        "FromDevice -> ToDevice; FromDevice -> Discard;",
		"double connection":     "f :: FromDevice; f -> ToDevice; f -> Discard;",
		"input port range":      "f :: FromDevice; f -> ToDevice; Counter -> f;",
		"fixed out port range":  "c :: Counter; FromDevice -> c; c[1] -> ToDevice; c[0] -> Discard;",
		"bad element config":    "FromDevice -> IPFilter() -> ToDevice;",
		"bad idsmatcher rules":  "FromDevice -> IDSMatcher(RULESET missing) -> ToDevice;",
		"tlsdecrypt needs keys": "FromDevice -> TLSDecrypt(PORT 443) -> ToDevice;",
	}
	for name, cfg := range cases {
		if _, err := NewInstance(cfg, nil, ctx); err == nil {
			t.Errorf("%s: config %q accepted", name, cfg)
		}
	}
}

func TestDeviceSetupHook(t *testing.T) {
	calls := 0
	ctx, _ := testContext(t)
	ctx.DeviceSetup = func() error { calls++; return nil }
	mustInstance(t, "FromDevice -> ToDevice;", ctx)
	if calls != 2 {
		t.Errorf("DeviceSetup called %d times, want 2 (FromDevice+ToDevice)", calls)
	}

	ctx.DeviceSetup = func() error { return errors.New("no permissions") }
	if _, err := NewInstance("FromDevice -> ToDevice;", nil, ctx); err == nil {
		t.Error("device setup failure not propagated")
	}
}

func TestTeeDuplicates(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, `
FromDevice -> tee :: Tee;
tee[0] -> main :: Counter -> ToDevice;
tee[1] -> tap :: Counter -> Discard;
`, ctx)
	res := inst.Process(testUDP(t, "dup"))
	if !res.Accepted {
		t.Fatalf("original path dropped: %s", res.DroppedBy)
	}
	mainC, _ := inst.Element("main")
	tapC, _ := inst.Element("tap")
	if mainC.(*Counter).Packets() != 1 || tapC.(*Counter).Packets() != 1 {
		t.Error("tee did not duplicate to both outputs")
	}
}

func TestCheckIPHeaderDropsExpiredTTL(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> CheckIPHeader -> ToDevice;", ctx)
	ip := testUDP(t, "x")
	ip.TTL = 0
	if res := inst.Process(ip); res.Accepted {
		t.Error("TTL 0 packet accepted")
	}
	ip.TTL = 64
	if res := inst.Process(ip); !res.Accepted {
		t.Error("valid packet dropped")
	}
}

func TestAllStandardConfigsRun(t *testing.T) {
	ctx, _ := testContext(t)
	for _, uc := range AllUseCases {
		inst := mustInstance(t, StandardConfig(uc), ctx)
		for i := 0; i < 5; i++ {
			if res := inst.Process(testUDP(t, strings.Repeat("p", 1000))); !res.Accepted {
				t.Errorf("%v dropped clean packet: %s", uc, res.DroppedBy)
				break
			}
		}
	}
}

func BenchmarkUseCasePipelines1500(b *testing.B) {
	ctx := &Context{
		RuleSet: func(string) (string, error) {
			return idps.GenerateRuleSet(idps.CommunityRuleCount, 2018), nil
		},
	}
	raw := packet.NewUDP(packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1"),
		40000, 5201, make([]byte, 1472))
	for _, uc := range AllUseCases {
		b.Run(uc.String(), func(b *testing.B) {
			inst, err := NewInstance(StandardConfig(uc), nil, ctx)
			if err != nil {
				b.Fatal(err)
			}
			var ip packet.IPv4
			if err := ip.Parse(raw); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := inst.Process(&ip); !res.Accepted {
					b.Fatalf("packet dropped by %s", res.DroppedBy)
				}
			}
		})
	}
}

// TestProcessReusesResult pins the zero-allocation contract of the packet
// path: Process reuses one Result and one Packet wrapper per router, so
// the scratch from a previous call is overwritten by the next one and the
// steady state allocates nothing.
func TestProcessReusesResult(t *testing.T) {
	inst, err := NewInstance("FromDevice(tun0) -> ToDevice(tun0);", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip1 := mustPacket(t, "10.0.0.1", "10.0.0.2")
	ip2 := mustPacket(t, "10.0.0.3", "10.0.0.4")

	res1 := inst.Process(ip1)
	if !res1.Accepted || res1.Packet.IP != ip1 {
		t.Fatalf("first verdict wrong: %+v", res1)
	}
	res2 := inst.Process(ip2)
	if res1 != res2 {
		t.Error("Process allocated a fresh Result instead of reusing the scratch")
	}
	if res2.Packet.IP != ip2 {
		t.Error("reused Packet does not carry the new packet")
	}

	var ip packet.IPv4
	raw := ip1Raw(t)
	if err := ip.Parse(raw); err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		return
	}
	allocs := testing.AllocsPerRun(100, func() {
		if res := inst.Process(&ip); !res.Accepted {
			t.Fatal("packet rejected")
		}
	})
	if allocs > 0 {
		t.Errorf("Process allocates %.1f times per packet, want 0", allocs)
	}
}

func mustPacket(t *testing.T, src, dst string) *packet.IPv4 {
	t.Helper()
	var ip packet.IPv4
	raw := packet.NewUDP(packet.MustParseAddr(src), packet.MustParseAddr(dst), 1234, 80, []byte("x"))
	if err := ip.Parse(raw); err != nil {
		t.Fatal(err)
	}
	return ip.Clone()
}

func ip1Raw(t *testing.T) []byte {
	t.Helper()
	return packet.NewUDP(packet.MustParseAddr("10.0.0.1"), packet.MustParseAddr("10.0.0.2"), 1234, 80, []byte("x"))
}
