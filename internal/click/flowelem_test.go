package click

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"endbox/internal/flow"
	"endbox/internal/packet"
)

// flowTCP builds a parsed TCP packet for an arbitrary 5-tuple, unlike the
// fixed-endpoint helpers in router_test.go — conntrack tests need both
// directions of a connection.
func flowTCP(t *testing.T, src, dst string, sp, dp uint16, seq, ack uint32, flags byte, payload []byte) *packet.IPv4 {
	t.Helper()
	raw := packet.NewTCP(packet.MustParseAddr(src), packet.MustParseAddr(dst),
		sp, dp, seq, ack, flags, payload)
	ip, err := packet.ParseIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

// handshake runs the three-way handshake for 10.8.0.2:40000 -> 10.8.0.1:80
// through the instance, failing the test if any segment is dropped.
func handshake(t *testing.T, inst *Instance) {
	t.Helper()
	segs := []*packet.IPv4{
		flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 100, 0, packet.TCPSyn, nil),
		flowTCP(t, "10.8.0.1", "10.8.0.2", 80, 40000, 300, 101, packet.TCPSyn|packet.TCPAck, nil),
		flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 301, packet.TCPAck, nil),
	}
	for i, ip := range segs {
		if res := inst.Process(ip); !res.Accepted {
			t.Fatalf("handshake segment %d dropped by %s", i, res.DroppedBy)
		}
	}
}

func clientFlow() packet.Flow {
	return packet.Flow{
		Src: packet.MustParseAddr("10.8.0.2"), Dst: packet.MustParseAddr("10.8.0.1"),
		SrcPort: 40000, DstPort: 80, Protocol: packet.ProtoTCP,
	}
}

func TestConnTrackHandshakeEstablishes(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack -> ToDevice;", ctx)
	handshake(t, inst)

	ct, _ := inst.Element("ct")
	state, ok := ct.(*ConnTrack).StateOf(clientFlow())
	if !ok || state != "established" {
		t.Fatalf("state after handshake = %q (%v), want established", state, ok)
	}

	// Data both ways inside the connection is valid.
	data := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 301, packet.TCPAck, []byte("GET /"))
	if res := inst.Process(data); !res.Accepted {
		t.Fatalf("in-connection data dropped by %s", res.DroppedBy)
	}
	reply := flowTCP(t, "10.8.0.1", "10.8.0.2", 80, 40000, 301, 106, packet.TCPAck, []byte("200"))
	if res := inst.Process(reply); !res.Accepted {
		t.Fatalf("in-connection reply dropped by %s", res.DroppedBy)
	}
	if ct.(*ConnTrack).Invalid() != 0 {
		t.Errorf("valid traffic counted as invalid: %d", ct.(*ConnTrack).Invalid())
	}
}

func TestConnTrackStrictDropsMidstream(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack -> ToDevice;", ctx)

	// A data segment with no preceding handshake is a midstream pickup.
	data := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 500, 1, packet.TCPAck, []byte("sneak"))
	if res := inst.Process(data); res.Accepted {
		t.Fatal("strict conntrack accepted midstream data")
	} else if res.DroppedBy != "ct" {
		t.Fatalf("dropped by %s, want ct", res.DroppedBy)
	}

	// A SYN|ACK from the responder side without an initiator SYN is invalid.
	synack := flowTCP(t, "10.8.0.1", "10.8.0.2", 80, 40000, 1, 1, packet.TCPSyn|packet.TCPAck, nil)
	if res := inst.Process(synack); res.Accepted {
		t.Fatal("strict conntrack accepted unsolicited SYN|ACK")
	}

	ct, _ := inst.Element("ct")
	if got := ct.(*ConnTrack).Invalid(); got != 2 {
		t.Errorf("invalid = %d, want 2", got)
	}
}

func TestConnTrackLooseForwardsInvalid(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack(MODE loose) -> ToDevice;", ctx)
	data := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 500, 1, packet.TCPAck, []byte("x"))
	if res := inst.Process(data); !res.Accepted {
		t.Fatalf("loose conntrack dropped: %s", res.DroppedBy)
	}
	ct, _ := inst.Element("ct")
	if ct.(*ConnTrack).Invalid() != 1 {
		t.Error("loose mode did not count the invalid segment")
	}
}

func TestConnTrackCloseAndReuse(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack -> ToDevice;", ctx)
	handshake(t, inst)
	ct, _ := inst.Element("ct")
	tracker := ct.(*ConnTrack)

	steps := []struct {
		src, dst string
		sp, dp   uint16
		flags    byte
		state    string
	}{
		{"10.8.0.2", "10.8.0.1", 40000, 80, packet.TCPFin | packet.TCPAck, "fin-wait"},
		{"10.8.0.1", "10.8.0.2", 80, 40000, packet.TCPFin | packet.TCPAck, "closing"},
		{"10.8.0.2", "10.8.0.1", 40000, 80, packet.TCPAck, "closed"},
	}
	for _, s := range steps {
		ip := flowTCP(t, s.src, s.dst, s.sp, s.dp, 200, 200, s.flags, nil)
		if res := inst.Process(ip); !res.Accepted {
			t.Fatalf("close segment (%s) dropped by %s", s.state, res.DroppedBy)
		}
		if got, _ := tracker.StateOf(clientFlow()); got != s.state {
			t.Fatalf("state = %q, want %q", got, s.state)
		}
	}

	// A fresh initiator SYN on the closed 5-tuple starts a new connection.
	syn := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 9000, 0, packet.TCPSyn, nil)
	if res := inst.Process(syn); !res.Accepted {
		t.Fatalf("connection-reuse SYN dropped by %s", res.DroppedBy)
	}
	if got, _ := tracker.StateOf(clientFlow()); got != "syn-sent" {
		t.Errorf("state after reuse SYN = %q, want syn-sent", got)
	}
}

// TestConnTrackFinRetransmit pins the half-close direction contract: a
// retransmitted FIN from the peer that already closed its direction is
// not the other side's FIN — the connection stays half-closed and the
// other direction's data keeps flowing in strict mode.
func TestConnTrackFinRetransmit(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack -> ToDevice;", ctx)
	handshake(t, inst)
	ct, _ := inst.Element("ct")
	tracker := ct.(*ConnTrack)

	fin := func() *packet.IPv4 {
		return flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 200, 300,
			packet.TCPFin|packet.TCPAck, nil)
	}
	if res := inst.Process(fin()); !res.Accepted {
		t.Fatalf("first FIN dropped by %s", res.DroppedBy)
	}
	if res := inst.Process(fin()); !res.Accepted {
		t.Fatalf("retransmitted FIN dropped by %s", res.DroppedBy)
	}
	if got, _ := tracker.StateOf(clientFlow()); got != "fin-wait" {
		t.Fatalf("state after FIN retransmit = %q, want fin-wait", got)
	}
	// The responder's data is still valid during the half-close.
	data := flowTCP(t, "10.8.0.1", "10.8.0.2", 80, 40000, 301, 201, packet.TCPAck, []byte("tail"))
	if res := inst.Process(data); !res.Accepted {
		t.Fatalf("responder data dropped during half-close by %s", res.DroppedBy)
	}
	// Only the opposite direction's FIN completes the close.
	finRev := flowTCP(t, "10.8.0.1", "10.8.0.2", 80, 40000, 305, 201,
		packet.TCPFin|packet.TCPAck, nil)
	if res := inst.Process(finRev); !res.Accepted {
		t.Fatalf("responder FIN dropped by %s", res.DroppedBy)
	}
	if got, _ := tracker.StateOf(clientFlow()); got != "closing" {
		t.Errorf("state after responder FIN = %q, want closing", got)
	}
}

func TestConnTrackRSTCloses(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack -> ToDevice;", ctx)
	handshake(t, inst)
	rst := flowTCP(t, "10.8.0.1", "10.8.0.2", 80, 40000, 301, 0, packet.TCPRst, nil)
	if res := inst.Process(rst); !res.Accepted {
		t.Fatalf("RST dropped by %s", res.DroppedBy)
	}
	ct, _ := inst.Element("ct")
	if got, _ := ct.(*ConnTrack).StateOf(clientFlow()); got != "closed" {
		t.Errorf("state after RST = %q, want closed", got)
	}
	// Data after the RST is invalid.
	data := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 301, packet.TCPAck, []byte("late"))
	if res := inst.Process(data); res.Accepted {
		t.Error("data accepted after RST closed the connection")
	}
}

// TestConnTrackStateSurvivesSwap is the rollout-survival contract at the
// element level: an established connection stays established across a
// configuration hot-swap because connection state lives in the instance's
// flow table, which Swap preserves, and the replacement element reclaims
// its predecessor's flow slot by name.
func TestConnTrackStateSurvivesSwap(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> ct :: ConnTrack -> ToDevice;", ctx)
	handshake(t, inst)

	// Swap to a config that still carries the ConnTrack (same name) but
	// adds a counter stage — the shape of a targeted rollout.
	if _, err := inst.Swap("FromDevice -> ct :: ConnTrack -> c :: Counter -> ToDevice;"); err != nil {
		t.Fatalf("Swap: %v", err)
	}

	// Midstream data on the established connection must still flow; on a
	// fresh table strict conntrack would drop it (see
	// TestConnTrackStrictDropsMidstream).
	data := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 301, packet.TCPAck, []byte("GET /"))
	if res := inst.Process(data); !res.Accepted {
		t.Fatalf("established connection broken by swap: dropped by %s", res.DroppedBy)
	}
	ct, _ := inst.Element("ct")
	if got, _ := ct.(*ConnTrack).StateOf(clientFlow()); got != "established" {
		t.Errorf("state after swap = %q, want established", got)
	}

	// The per-element flow-state gauge transplants with the swap.
	var found bool
	for _, st := range inst.Stats() {
		if st.Name == "ct" {
			found = true
			if st.Flows != 1 {
				t.Errorf("ct Flows = %d after swap, want 1", st.Flows)
			}
		}
	}
	if !found {
		t.Error("no stats row for ct after swap")
	}
}

// TestTeeClonesShareFlowEntry pins the Packet.clone contract: a Tee clone
// carries the original's flow-entry annotation, so stateful elements on
// both branches bind the same entry and the flow's counters count each
// packet once, not once per branch.
func TestTeeClonesShareFlowEntry(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, `
FromDevice -> ct :: ConnTrack(MODE loose) -> tee :: Tee;
tee[0] -> main :: FlowRateLimit -> ToDevice;
tee[1] -> tap :: FlowRateLimit -> Discard;
`, ctx)
	const n = 3
	for i := 0; i < n; i++ {
		if res := inst.Process(testUDP(t, "dup")); !res.Accepted {
			t.Fatalf("packet %d dropped by %s", i, res.DroppedBy)
		}
	}
	f := packet.Flow{
		Src: packet.MustParseAddr("10.8.0.2"), Dst: packet.MustParseAddr("10.8.0.1"),
		SrcPort: 40000, DstPort: 5201, Protocol: packet.ProtoUDP,
	}
	entry, ok := inst.Flows().Lookup(f)
	if !ok {
		t.Fatal("flow not tracked")
	}
	if got := entry.Packets(flow.Fwd); got != n {
		t.Errorf("flow packet count = %d, want %d (clones must not double-count)", got, n)
	}
	// Both branches' elements resolved the binding from the packet
	// annotation: one table lookup per packet, not one per branch.
	if s := inst.FlowStats(); s.Lookups != n {
		t.Errorf("table lookups = %d, want %d", s.Lookups, n)
	}
}

func TestFlowNATRewritesAndRestores(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41009) -> ToDevice;", ctx)

	// Egress: the initiator's endpoint is masqueraded.
	out := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 100, 0, packet.TCPSyn, nil)
	fillTCPChecksum(t, out)
	if res := inst.Process(out); !res.Accepted {
		t.Fatalf("egress dropped by %s", res.DroppedBy)
	}
	if out.Src != packet.MustParseAddr("198.51.100.1") {
		t.Fatalf("src not rewritten: %v", out.Src)
	}
	natPort := binary.BigEndian.Uint16(out.Payload[0:2])
	if natPort != 41000 {
		t.Fatalf("nat port = %d, want 41000 (lowest first, deterministic)", natPort)
	}
	if !tcpChecksumValid(out) {
		t.Error("egress transport checksum invalid after incremental update")
	}

	// Reply to the NAT endpoint: restored to the original 5-tuple.
	in := flowTCP(t, "10.8.0.1", "198.51.100.1", 80, natPort, 300, 101, packet.TCPSyn|packet.TCPAck, nil)
	fillTCPChecksum(t, in)
	if res := inst.Process(in); !res.Accepted {
		t.Fatalf("reply dropped by %s", res.DroppedBy)
	}
	if in.Dst != packet.MustParseAddr("10.8.0.2") {
		t.Fatalf("reply dst not restored: %v", in.Dst)
	}
	if got := binary.BigEndian.Uint16(in.Payload[2:4]); got != 40000 {
		t.Fatalf("reply dst port = %d, want 40000", got)
	}
	if !tcpChecksumValid(in) {
		t.Error("reply transport checksum invalid after incremental update")
	}

	// The flow table saw only the pre-NAT tuple, both directions.
	entry, ok := inst.Flows().Lookup(clientFlow())
	if !ok {
		t.Fatal("pre-NAT flow not in table")
	}
	if entry.Packets(0) != 1 || entry.Packets(1) != 1 {
		t.Errorf("flow counters = %d/%d, want 1/1", entry.Packets(0), entry.Packets(1))
	}

	// The same flow keeps its port on subsequent packets.
	again := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 301, packet.TCPAck, nil)
	inst.Process(again)
	if got := binary.BigEndian.Uint16(again.Payload[0:2]); got != natPort {
		t.Errorf("port binding unstable: %d then %d", natPort, got)
	}
	nat, _ := inst.Element("nat")
	if got := nat.(*FlowNAT).ActiveBindings(); got != 1 {
		t.Errorf("active bindings = %d, want 1", got)
	}
}

func TestFlowNATPortExhaustion(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41001) -> ToDevice;", ctx)
	for i := 0; i < 2; i++ {
		ip := flowTCP(t, "10.8.0.2", "10.8.0.1", uint16(40000+i), 80, 1, 0, packet.TCPSyn, nil)
		if res := inst.Process(ip); !res.Accepted {
			t.Fatalf("flow %d dropped by %s", i, res.DroppedBy)
		}
	}
	ip := flowTCP(t, "10.8.0.2", "10.8.0.1", 40002, 80, 1, 0, packet.TCPSyn, nil)
	if res := inst.Process(ip); res.Accepted {
		t.Fatal("packet accepted past port-range exhaustion")
	}
	nat, _ := inst.Element("nat")
	if nat.(*FlowNAT).Exhausted() != 1 {
		t.Error("exhaustion not counted")
	}
}

func TestFlowNATBindingsSurviveSwap(t *testing.T) {
	cfg := "FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41009) -> ToDevice;"
	ctx, _ := testContext(t)
	inst := mustInstance(t, cfg, ctx)

	out := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 100, 0, packet.TCPSyn, nil)
	inst.Process(out)
	natPort := binary.BigEndian.Uint16(out.Payload[0:2])

	if _, err := inst.Swap(cfg); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	nat, _ := inst.Element("nat")
	if got := nat.(*FlowNAT).ActiveBindings(); got != 1 {
		t.Fatalf("bindings after same-config swap = %d, want 1", got)
	}
	// Replies still route through the carried-over binding.
	in := flowTCP(t, "10.8.0.1", "198.51.100.1", 80, natPort, 300, 101, packet.TCPSyn|packet.TCPAck, nil)
	if res := inst.Process(in); !res.Accepted {
		t.Fatalf("reply dropped after swap by %s", res.DroppedBy)
	}
	if in.Dst != packet.MustParseAddr("10.8.0.2") {
		t.Error("reply not restored after swap")
	}

	// Changing the port range resets bindings (old ports may not exist).
	if _, err := inst.Swap("FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 42000-42009) -> ToDevice;"); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	nat, _ = inst.Element("nat")
	if got := nat.(*FlowNAT).ActiveBindings(); got != 0 {
		t.Errorf("bindings survived a range change: %d", got)
	}
}

// TestFlowNATRangeChangeRebindsStaleFlows pins the bailed-TakeState
// contract: after a swap that changes the port range, live flows still
// carry their old natState records, but those ports are no longer
// theirs. Traffic on such a flow must be rebound to a fresh port from
// the new pool — never rewritten to a port that the fresh pool may hand
// to another flow.
func TestFlowNATRangeChangeRebindsStaleFlows(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41009) -> ToDevice;", ctx)

	// Flow 1 binds 41000 pre-swap.
	out := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 100, 0, packet.TCPSyn, nil)
	inst.Process(out)

	// Shrink to an overlapping range: TakeState bails and resets the
	// bindings, while flow 1's record stays attached to its flow entry.
	if _, err := inst.Swap("FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41001) -> ToDevice;"); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	nat, _ := inst.Element("nat")

	// A post-swap flow takes 41000 from the fresh pool.
	o2 := flowTCP(t, "10.8.0.2", "10.8.0.1", 40001, 80, 100, 0, packet.TCPSyn, nil)
	inst.Process(o2)
	p2 := binary.BigEndian.Uint16(o2.Payload[0:2])
	if p2 != 41000 {
		t.Fatalf("post-swap flow port = %d, want 41000", p2)
	}

	// Flow 1's stale record points at 41000 too — it must be rebound,
	// not share flow 2's port.
	again := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 0, packet.TCPAck, nil)
	if res := inst.Process(again); !res.Accepted {
		t.Fatalf("stale flow dropped by %s", res.DroppedBy)
	}
	p1 := binary.BigEndian.Uint16(again.Payload[0:2])
	if p1 == p2 {
		t.Fatalf("two flows share NAT port %d", p1)
	}
	if got := nat.(*FlowNAT).ActiveBindings(); got != 2 {
		t.Fatalf("bindings = %d, want 2", got)
	}

	// The rebinding is stable on later packets.
	more := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 102, 0, packet.TCPAck, nil)
	inst.Process(more)
	if got := binary.BigEndian.Uint16(more.Payload[0:2]); got != p1 {
		t.Fatalf("rebound port unstable: %d then %d", p1, got)
	}
}

// TestFlowNATStaleReleaseDoesNotFreeForeignPort is the double-free side
// of the bailed-TakeState contract: when a flow carrying a stale record
// dies, its release must not free the port out from under the post-swap
// flow that now legitimately owns it.
func TestFlowNATStaleReleaseDoesNotFreeForeignPort(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41009) -> ToDevice;", ctx)

	// Flow A binds 41000, then the range change resets the bindings.
	a := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 100, 0, packet.TCPSyn, nil)
	inst.Process(a)
	if _, err := inst.Swap("FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41001) -> ToDevice;"); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	nat, _ := inst.Element("nat")

	// Flow C takes 41000 from the fresh pool.
	c := flowTCP(t, "10.8.0.2", "10.8.0.1", 40002, 80, 100, 0, packet.TCPSyn, nil)
	inst.Process(c)
	if got := binary.BigEndian.Uint16(c.Payload[0:2]); got != 41000 {
		t.Fatalf("flow C port = %d, want 41000", got)
	}

	// Flow A dies without ever sending post-swap traffic: its stale
	// record names 41000, which now belongs to flow C.
	if !inst.Flows().Remove(clientFlow()) {
		t.Fatal("flow A not tracked")
	}
	if got := nat.(*FlowNAT).ActiveBindings(); got != 1 {
		t.Fatalf("bindings after stale release = %d, want 1 (flow C's)", got)
	}

	// The next fresh flow must get 41001 — 41000 is still bound.
	d := flowTCP(t, "10.8.0.2", "10.8.0.1", 40003, 80, 100, 0, packet.TCPSyn, nil)
	inst.Process(d)
	if got := binary.BigEndian.Uint16(d.Payload[0:2]); got != 41001 {
		t.Fatalf("fresh flow port = %d, want 41001 (41000 double-freed)", got)
	}
	// Flow C's replies still translate back to its original endpoint.
	in := flowTCP(t, "10.8.0.1", "198.51.100.1", 80, 41000, 300, 101, packet.TCPSyn|packet.TCPAck, nil)
	if res := inst.Process(in); !res.Accepted {
		t.Fatalf("flow C reply dropped by %s", res.DroppedBy)
	}
	if got := binary.BigEndian.Uint16(in.Payload[2:4]); got != 40002 {
		t.Fatalf("flow C reply port = %d, want 40002", got)
	}
}

// TestFlowNATUDPChecksumNeverZero sweeps every possible pre-rewrite
// checksum: the patched UDP checksum must never be emitted as 0 (wire
// meaning "no checksum", RFC 768), which would also make the reply
// path's disabled-checksum guard skip restoring it. The value that folds
// to zero goes out as its one's-complement equivalent 0xFFFF.
func TestFlowNATUDPChecksumNeverZero(t *testing.T) {
	e := &FlowNAT{}
	natAddr := packet.MustParseAddr("198.51.100.1")
	sawFold := false
	for s := 0; s <= 0xffff; s++ {
		raw := packet.NewUDP(packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1"),
			40000, 53, []byte("x"))
		ip, err := packet.ParseIPv4(raw)
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint16(ip.Payload[6:8], uint16(s))
		if !e.rewrite(ip, true, natAddr, 41000) {
			t.Fatalf("rewrite refused a full UDP header (checksum %#x)", s)
		}
		got := binary.BigEndian.Uint16(ip.Payload[6:8])
		if s == 0 {
			if got != 0 {
				t.Fatal("checksum-disabled packet was patched")
			}
			continue
		}
		if got == 0 {
			t.Fatalf("checksum %#x patched to the checksum-disabled value 0", s)
		}
		if got == 0xffff {
			sawFold = true
		}
	}
	if !sawFold {
		t.Error("no input exercised the zero fold — sweep is broken")
	}
}

// TestFlowNATTruncatedTransportDropped: a transport header too short to
// hold its checksum cannot be rewritten consistently; FlowNAT must drop
// it rather than emit a port-rewritten packet with a stale checksum.
func TestFlowNATTruncatedTransportDropped(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> nat :: FlowNAT(ADDR 198.51.100.1, PORTS 41000-41009) -> ToDevice;", ctx)

	// 10 bytes of TCP: ports and sequence number, no checksum field.
	payload := make([]byte, 10)
	binary.BigEndian.PutUint16(payload[0:2], 40000)
	binary.BigEndian.PutUint16(payload[2:4], 80)
	trunc := &packet.IPv4{
		TTL:      64,
		Protocol: packet.ProtoTCP,
		Src:      packet.MustParseAddr("10.8.0.2"),
		Dst:      packet.MustParseAddr("10.8.0.1"),
		Payload:  payload,
	}
	res := inst.Process(trunc)
	if res.Accepted {
		t.Fatal("truncated TCP header NAT-rewritten and forwarded")
	}
	if res.DroppedBy != "nat" {
		t.Fatalf("dropped by %s, want nat", res.DroppedBy)
	}
	if got := binary.BigEndian.Uint16(trunc.Payload[0:2]); got != 40000 {
		t.Errorf("source port rewritten to %d on a dropped packet", got)
	}
}

// fillTCPChecksum gives a built TCP packet a valid transport checksum
// (packet.NewTCP leaves it zero), so incremental-update tests start from
// a verifiable state.
func fillTCPChecksum(t *testing.T, ip *packet.IPv4) {
	t.Helper()
	ip.Payload[16], ip.Payload[17] = 0, 0
	binary.BigEndian.PutUint16(ip.Payload[16:18], pseudoChecksum(ip))
}

// tcpChecksumValid verifies the transport checksum against the
// pseudo-header, from scratch — the ground truth the incremental RFC 1624
// updates must agree with.
func tcpChecksumValid(ip *packet.IPv4) bool {
	return pseudoChecksum(ip) == 0
}

func pseudoChecksum(ip *packet.IPv4) uint16 {
	buf := make([]byte, 12+len(ip.Payload))
	binary.BigEndian.PutUint32(buf[0:4], ip.Src.Uint32())
	binary.BigEndian.PutUint32(buf[4:8], ip.Dst.Uint32())
	buf[9] = ip.Protocol
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(ip.Payload)))
	copy(buf[12:], ip.Payload)
	return packet.Checksum(buf)
}

func TestFlowRateLimitShapesPerFlow(t *testing.T) {
	clk := time.Unix(1_700_000_000, 0)
	ctx, _ := testContext(t)
	ctx.SystemTime = func() time.Time { return clk }
	// RATE 8k bits/s = 1000 bytes/s; BURST 2000 bytes.
	inst := mustInstance(t, "FromDevice -> shaper :: FlowRateLimit(RATE 8k, BURST 2000) -> ToDevice;", ctx)

	mk := func(srcPort uint16) *packet.IPv4 {
		// 20 IP + 8 UDP + 972 payload = 1000 bytes on the wire.
		raw := packet.NewUDP(packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1"),
			srcPort, 5201, []byte(strings.Repeat("x", 972)))
		ip, err := packet.ParseIPv4(raw)
		if err != nil {
			t.Fatal(err)
		}
		return ip
	}

	// The burst admits two packets; the third exceeds the flow's bucket.
	for i := 0; i < 2; i++ {
		if res := inst.Process(mk(40000)); !res.Accepted {
			t.Fatalf("in-burst packet %d dropped by %s", i, res.DroppedBy)
		}
	}
	if res := inst.Process(mk(40000)); res.Accepted {
		t.Fatal("packet accepted past the flow's burst")
	}
	// A different flow has its own bucket.
	if res := inst.Process(mk(40001)); !res.Accepted {
		t.Fatalf("independent flow shaped by %s", res.DroppedBy)
	}
	// One second refills 1000 bytes — one more packet.
	clk = clk.Add(time.Second)
	if res := inst.Process(mk(40000)); !res.Accepted {
		t.Fatalf("post-refill packet dropped by %s", res.DroppedBy)
	}
	if res := inst.Process(mk(40000)); res.Accepted {
		t.Fatal("refill admitted more than rate × time")
	}
	shaper, _ := inst.Element("shaper")
	if got := shaper.(*FlowRateLimit).Shaped(); got != 2 {
		t.Errorf("shaped = %d, want 2", got)
	}
}

// TestStreamAssemblerCrossPacketIDS is the paper-motivating case for
// reassembly: a signature split across two TCP segments, invisible to
// per-packet matching, is caught when the assembler publishes the joined
// stream as the packet's plaintext annotation.
func TestStreamAssemblerCrossPacketIDS(t *testing.T) {
	ctx, alerts := testContext(t)
	inst := mustInstance(t,
		"FromDevice -> stream :: StreamAssembler -> ids :: IDSMatcher(RULESET strict, MODE enforce) -> ToDevice;", ctx)

	syn := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 100, 0, packet.TCPSyn, nil)
	if res := inst.Process(syn); !res.Accepted {
		t.Fatalf("SYN dropped by %s", res.DroppedBy)
	}
	// "X-Worm" split across segments: neither half matches alone.
	seg1 := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 101, 0, packet.TCPAck, []byte("AAAX-Wo"))
	if res := inst.Process(seg1); !res.Accepted {
		t.Fatalf("benign prefix dropped by %s", res.DroppedBy)
	}
	seg2 := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 108, 0, packet.TCPAck, []byte("rm!"))
	res := inst.Process(seg2)
	if res.Accepted {
		t.Fatal("cross-packet signature not detected")
	}
	if res.DroppedBy != "ids" {
		t.Fatalf("dropped by %s, want ids", res.DroppedBy)
	}
	if len(*alerts) == 0 {
		t.Error("no alert raised for the reassembled match")
	}

	// An out-of-order jump resets the window (counted as a gap) instead
	// of matching stale bytes.
	far := flowTCP(t, "10.8.0.2", "10.8.0.1", 40000, 80, 5000, 0, packet.TCPAck, []byte("rm!"))
	if res := inst.Process(far); !res.Accepted {
		t.Fatalf("post-gap segment dropped by %s", res.DroppedBy)
	}
	stream, _ := inst.Element("stream")
	if stream.(*StreamAssembler).Gaps() != 1 {
		t.Errorf("gaps = %d, want 1", stream.(*StreamAssembler).Gaps())
	}
}

// TestEmptyRuleSetRejected pins the fix for silently-accepting rule sets:
// a rule set name that resolves to text containing no rules must fail at
// build time, not compile into a matcher that inspects nothing.
func TestEmptyRuleSetRejected(t *testing.T) {
	ctx, _ := testContext(t)
	ctx.RuleSet = func(name string) (string, error) {
		switch name {
		case "empty":
			return "", nil
		case "comments":
			return "# only comments\n\n# no rules\n", nil
		}
		return "", fmt.Errorf("unknown rule set %q", name)
	}
	for _, name := range []string{"empty", "comments"} {
		cfg := "FromDevice -> IDSMatcher(RULESET " + name + ") -> ToDevice;"
		if _, err := NewInstance(cfg, nil, ctx); err == nil {
			t.Errorf("rule set %q with no rules accepted", name)
		}
	}
}

// TestCompileRejectsEmptyRuleSet covers the same contract at the typed
// pipeline layer used by the public mbox API.
func TestCompileRejectsEmptyRuleSet(t *testing.T) {
	p := Chain(Stage{Name: "ids", Class: "IDSMatcher", Args: []string{"RULESET empty"}})
	_, err := p.Compile(nil, map[string]string{"empty": ""})
	if err == nil {
		t.Fatal("Compile accepted an empty rule set")
	}
	if !errors.Is(err, ErrBadPipeline) {
		t.Errorf("error not ErrBadPipeline: %v", err)
	}
}

// FuzzTCPTransition drives the conntrack state machine with arbitrary
// segment sequences: the state must stay inside the defined range, and a
// fresh connection must only ever open on an initiator SYN.
func FuzzTCPTransition(f *testing.F) {
	f.Add([]byte{0x02, 0x12, 0x10})       // handshake (flags only, alternating dir)
	f.Add([]byte{0x10, 0x04, 0x02})       // midstream ACK, RST, SYN
	f.Add([]byte{0x01, 0x11, 0x10, 0x02}) // FIN close then reuse
	f.Fuzz(func(t *testing.T, seq []byte) {
		st := tcpNone
		for i, b := range seq {
			d := flow.Dir(i & 1) // alternate directions
			next, valid := tcpTransition(st, d, b&0x3f)
			if next >= tcpStateCount {
				t.Fatalf("state %d out of range (from %v, flags %#x)", next, st, b)
			}
			if !valid && next != st {
				t.Fatalf("invalid segment changed state %v -> %v", st, next)
			}
			if st == tcpNone && next != tcpNone {
				syn := b&packet.TCPSyn != 0
				ack := b&packet.TCPAck != 0
				if !(syn && !ack && d == flow.Fwd) {
					t.Fatalf("connection opened by flags %#x dir %v", b, d)
				}
			}
			st = next
		}
	})
}
