//go:build !race

package click

const raceEnabled = false
