package click

import (
	"strings"
	"testing"
	"time"
)

// boomElement panics on every packet from the Nth onward — the minimal
// stand-in for a buggy custom element hitting poisoned state.
type boomElement struct {
	Base
	after int
	seen  int
}

func (*boomElement) Class() string { return "Boom" }
func (b *boomElement) Configure(args []string, _ *Context) error {
	b.after = 1
	if len(args) > 0 && args[0] == "NEVER" {
		b.after = 1 << 30
	}
	return nil
}
func (*boomElement) InPorts() int  { return 1 }
func (*boomElement) OutPorts() int { return 1 }
func (b *boomElement) Push(_ int, p *Packet) {
	b.seen++
	if b.seen >= b.after {
		panic("boom: poisoned state")
	}
	b.Forward(0, p)
}

// configurePanics panics at Configure time.
type configurePanics struct{ Base }

func (*configurePanics) Class() string                      { return "ConfBoom" }
func (*configurePanics) Configure([]string, *Context) error { panic("bad configure") }
func (*configurePanics) InPorts() int                       { return 1 }
func (*configurePanics) OutPorts() int                      { return 1 }
func (*configurePanics) Push(int, *Packet)                  {}

func chaosRegistry() Registry {
	r := NewRegistry()
	r["Boom"] = func() Element { return &boomElement{} }
	r["ConfBoom"] = func() Element { return &configurePanics{} }
	return r
}

func containCtx(t *testing.T, policy FailurePolicy, now *time.Time) (*Context, *[]ElementFault) {
	t.Helper()
	var faults []ElementFault
	base := time.Unix(1700000000, 0)
	if now == nil {
		now = &base
	}
	ctx := &Context{
		SystemTime: func() time.Time { return *now },
		Failure:    policy,
		Fault:      func(f ElementFault) { faults = append(faults, f) },
	}
	return ctx, &faults
}

func statsFor(t *testing.T, inst *Instance, name string) ElementStats {
	t.Helper()
	for _, s := range inst.Stats() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no stats for element %q", name)
	return ElementStats{}
}

const boomConfig = "FromDevice -> b :: Boom -> ToDevice;"

func boomInstance(t *testing.T, policy FailurePolicy, now *time.Time) (*Instance, *[]ElementFault) {
	t.Helper()
	ctx, faults := containCtx(t, policy, now)
	inst, err := NewInstance(boomConfig, chaosRegistry(), ctx)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst, faults
}

func TestContainmentDisabledPanicsPropagate(t *testing.T) {
	inst, _ := boomInstance(t, FailurePolicy{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected the element panic to propagate with containment off")
		}
	}()
	inst.Process(testUDP(t, "x"))
}

func TestContainmentTripsAndQuarantines(t *testing.T) {
	inst, faults := boomInstance(t, FailurePolicy{Contain: true, TripThreshold: 3}, nil)
	ip := testUDP(t, "x")
	for i := 0; i < 5; i++ {
		res := inst.Process(ip)
		if res.Accepted {
			t.Fatalf("packet %d accepted through a panicking element", i)
		}
		if res.DroppedBy != "b" {
			t.Fatalf("packet %d dropped by %q, want b", i, res.DroppedBy)
		}
	}
	st := statsFor(t, inst, "b")
	if st.Panics != 3 {
		t.Errorf("Panics = %d, want 3 (quarantine stops further panics)", st.Panics)
	}
	if !st.Quarantined {
		t.Error("element not quarantined after trip threshold")
	}
	if st.Drops != 5 {
		t.Errorf("Drops = %d, want 5 (every packet dropped at the broken stage)", st.Drops)
	}
	fs := *faults
	if len(fs) != 3 {
		t.Fatalf("fault events = %d, want 3", len(fs))
	}
	if fs[0].Quarantined || fs[1].Quarantined || !fs[2].Quarantined {
		t.Errorf("quarantine flags = %v %v %v, want false false true",
			fs[0].Quarantined, fs[1].Quarantined, fs[2].Quarantined)
	}
	if fs[2].Element != "b" || fs[2].Class != "Boom" || !strings.Contains(fs[2].Err, "poisoned state") {
		t.Errorf("fault event = %+v", fs[2])
	}
}

func TestContainmentFailOpenBypasses(t *testing.T) {
	inst, _ := boomInstance(t, FailurePolicy{Contain: true, FailOpen: true, TripThreshold: 1}, nil)
	ip := testUDP(t, "x")
	if res := inst.Process(ip); res.Accepted {
		t.Fatal("first packet accepted (element panics on it)")
	}
	// Quarantined after one strike; fail-open routes around the element.
	for i := 0; i < 3; i++ {
		if res := inst.Process(ip); !res.Accepted {
			t.Fatalf("bypass packet %d dropped by %q under fail-open", i, res.DroppedBy)
		}
	}
	if st := statsFor(t, inst, "b"); !st.Quarantined || st.Panics != 1 {
		t.Errorf("stats = %+v, want quarantined with 1 panic", st)
	}
}

func TestContainmentHalfOpenProbeRestoresHealthyElement(t *testing.T) {
	now := time.Unix(1700000000, 0)
	inst, _ := boomInstance(t, FailurePolicy{Contain: true, TripThreshold: 1, Cooldown: time.Minute}, &now)
	ip := testUDP(t, "x")
	inst.Process(ip) // trip & quarantine
	if st := statsFor(t, inst, "b"); !st.Quarantined {
		t.Fatal("not quarantined")
	}
	// Heal the element, then let the cooldown elapse: the probe should
	// pass and restore the original wiring.
	el, _ := inst.Element("b")
	el.(*boomElement).after = 1 << 30
	now = now.Add(61 * time.Second)
	if res := inst.Process(ip); !res.Accepted {
		t.Fatalf("probe packet dropped by %q", res.DroppedBy)
	}
	if st := statsFor(t, inst, "b"); st.Quarantined {
		t.Error("still quarantined after a clean probe")
	}
	if res := inst.Process(ip); !res.Accepted {
		t.Fatal("packet dropped after re-admission")
	}
}

func TestContainmentFailedProbeRearms(t *testing.T) {
	now := time.Unix(1700000000, 0)
	inst, faults := boomInstance(t, FailurePolicy{Contain: true, TripThreshold: 1, Cooldown: time.Minute}, &now)
	ip := testUDP(t, "x")
	inst.Process(ip) // trip & quarantine
	now = now.Add(61 * time.Second)
	if res := inst.Process(ip); res.Accepted {
		t.Fatal("failed probe accepted a packet")
	}
	if st := statsFor(t, inst, "b"); !st.Quarantined || st.Panics != 2 {
		t.Errorf("stats after failed probe = %+v, want quarantined with 2 panics", st)
	}
	// Re-armed: the very next packet must hit the gate, not the element.
	if res := inst.Process(ip); res.Accepted {
		t.Fatal("packet accepted while re-quarantined")
	}
	if st := statsFor(t, inst, "b"); st.Panics != 2 {
		t.Error("element ran again during a fresh cooldown")
	}
	fs := *faults
	if len(fs) != 2 || !fs[1].Quarantined {
		t.Errorf("fault events = %+v, want 2 with the probe failure re-quarantining", fs)
	}
}

func TestQuarantineResetsOnSwap(t *testing.T) {
	inst, _ := boomInstance(t, FailurePolicy{Contain: true, TripThreshold: 1}, nil)
	ip := testUDP(t, "x")
	inst.Process(ip)
	if st := statsFor(t, inst, "b"); !st.Quarantined {
		t.Fatal("not quarantined")
	}
	if _, err := inst.Swap("FromDevice -> b :: Boom(NEVER) -> ToDevice;"); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	st := statsFor(t, inst, "b")
	if st.Quarantined {
		t.Error("quarantine survived a hot-swap; a fresh config must start clean")
	}
	if st.Panics != 1 {
		t.Errorf("Panics = %d, want 1 carried across the swap", st.Panics)
	}
	if res := inst.Process(ip); !res.Accepted {
		t.Fatalf("healthy swapped config dropped packet (by %q)", res.DroppedBy)
	}
}

func TestConfigurePanicBecomesSwapError(t *testing.T) {
	ctx, _ := containCtx(t, FailurePolicy{Contain: true}, nil)
	inst, err := NewInstance("FromDevice -> ToDevice;", chaosRegistry(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Swap("FromDevice -> ConfBoom -> ToDevice;"); err == nil {
		t.Fatal("Swap of a Configure-panicking element returned nil error")
	} else if !strings.Contains(err.Error(), "panicked during build") {
		t.Errorf("err = %v", err)
	}
	// Old configuration must still be live.
	if res := inst.Process(testUDP(t, "x")); !res.Accepted {
		t.Fatalf("old config broken after failed swap (dropped by %q)", res.DroppedBy)
	}
}

func TestEntryElementQuarantine(t *testing.T) {
	// The FromDevice entry itself can be gated: wire Boom as the first
	// element a packet meets after the entry... and also quarantine the
	// entry's direct successor, exercising the entry-rewire path via a
	// config whose FromDevice feeds Boom directly.
	inst, _ := boomInstance(t, FailurePolicy{Contain: true, TripThreshold: 1}, nil)
	ip := testUDP(t, "x")
	inst.Process(ip)
	// b quarantined; FromDevice's output was rewired to the gate.
	for i := 0; i < 3; i++ {
		if res := inst.Process(ip); res.Accepted || res.DroppedBy != "b" {
			t.Fatalf("packet %d: accepted=%v droppedBy=%q", i, res.Accepted, res.DroppedBy)
		}
	}
	if st := statsFor(t, inst, "b"); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1 (gate must intercept before the element runs)", st.Panics)
	}
}
