package click

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"endbox/internal/idps"
)

func communityRuleSets() map[string]string {
	return map[string]string{"community": idps.GenerateRuleSet(idps.CommunityRuleCount, 2018)}
}

// TestStockPipelineParity pins the shim relationship the API redesign
// introduced: each stock pipeline compiles to exactly StandardConfig(u),
// and the emitted text builds a router that accepts clean traffic.
func TestStockPipelineParity(t *testing.T) {
	rules := communityRuleSets()
	for _, uc := range AllUseCases {
		p := StockPipeline(uc)
		if p.Zero() {
			t.Fatalf("StockPipeline(%v) is zero", uc)
		}
		cfg, err := p.Compile(nil, rules)
		if err != nil {
			t.Fatalf("StockPipeline(%v).Compile: %v", uc, err)
		}
		if want := StandardConfig(uc); cfg != want {
			t.Errorf("StockPipeline(%v) compiles to %q, StandardConfig says %q", uc, cfg, want)
		}
		ctx, _ := testContext(t)
		inst := mustInstance(t, cfg, ctx)
		for i := 0; i < 3; i++ {
			if res := inst.Process(testUDP(t, "parity")); !res.Accepted {
				t.Fatalf("%v pipeline dropped clean packet: %s", uc, res.DroppedBy)
			}
		}
	}
	if !StockPipeline(UseCase(99)).Zero() {
		t.Error("unknown use case should return the zero pipeline")
	}
	// The server-side variant must stay parseable too.
	if _, err := ParseConfig(ServerConfig(UseCaseDDoS)); err != nil {
		t.Errorf("ServerConfig(DDoS) does not parse: %v", err)
	}
}

func TestPipelineEmission(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Pipeline
		want string
	}{
		{"nop", Chain(), "FromDevice -> ToDevice;"},
		{"named stage", Chain(Stage{Name: "c", Class: "Counter"}),
			"FromDevice -> c :: Counter -> ToDevice;"},
		{"anonymous with args", Chain(Stage{Class: "IPFilter", Args: []string{"allow all"}}),
			"FromDevice -> IPFilter(allow all) -> ToDevice;"},
		{"fanout", Chain(Stage{Name: "rr", Class: "RoundRobinSwitch", Fanout: 2}),
			"FromDevice -> rr :: RoundRobinSwitch;\nrr[0] -> td :: ToDevice;\nrr[1] -> td;\n"},
		// Balanced parens and closed quotes inside args are legitimate
		// Click syntax and must pass.
		{"balanced arg", Chain(Stage{Class: "IPFilter", Args: []string{`allow dst host 10.0.0.1`, `drop src net 10.9.0.0/16`}}),
			"FromDevice -> IPFilter(allow dst host 10.0.0.1, drop src net 10.9.0.0/16) -> ToDevice;"},
	} {
		got, err := tc.p.Config()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: emitted %q, want %q", tc.name, got, tc.want)
		}
		if _, err := ParseConfig(got); err != nil {
			t.Errorf("%s: emitted config does not parse: %v", tc.name, err)
		}
	}
}

func TestPipelineEmissionErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Pipeline
	}{
		{"zero pipeline", Pipeline{}},
		{"raw empty", Raw("  \n")},
		{"bad class", Chain(Stage{Class: "no spaces"})},
		{"bad name", Chain(Stage{Name: "1up", Class: "Counter"})},
		{"fanout not last", Chain(Stage{Name: "rr", Class: "RoundRobinSwitch", Fanout: 2}, Stage{Class: "Counter"})},
		{"fanout unnamed", Chain(Stage{Class: "RoundRobinSwitch", Fanout: 2})},
		// An argument must not be able to escape its parentheses and
		// rewrite the graph (this one would splice in a Discard).
		{"arg paren injection", Chain(Stage{Class: "Counter", Args: []string{"1) -> Discard; c2 :: Counter(1"}})},
		{"arg unclosed quote", Chain(Stage{Class: "IPFilter", Args: []string{`allow all"`}})},
		// A top-level comma would be re-split by SplitArgs into two args
		// the caller never passed.
		{"arg comma drift", Chain(Stage{Class: "IPFilter", Args: []string{"allow all, drop all"}})},
		{"negative fanout", Chain(Stage{Name: "rr", Class: "RoundRobinSwitch", Fanout: -1})},
	} {
		if _, err := tc.p.Config(); !errors.Is(err, ErrBadPipeline) {
			t.Errorf("%s: err = %v, want ErrBadPipeline", tc.name, err)
		}
	}
}

func TestPipelineZero(t *testing.T) {
	if !(Pipeline{}).Zero() {
		t.Error("zero value not Zero")
	}
	if Chain().Zero() {
		t.Error("explicit empty Chain must be the NOP pipeline, not Zero")
	}
	if Raw("FromDevice -> ToDevice;").Zero() {
		t.Error("raw pipeline reported Zero")
	}
}

func TestValidateConfig(t *testing.T) {
	rules := communityRuleSets()
	if err := ValidateConfig("FromDevice -> ids :: IDSMatcher(RULESET community) -> ToDevice;", nil, rules); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, tc := range []struct{ name, cfg string }{
		{"syntax", "FromDevice -> -> ToDevice;"},
		{"unknown class", "FromDevice -> Frobnicator -> ToDevice;"},
		{"bad args", "FromDevice -> IPFilter(frobnicate all) -> ToDevice;"},
		{"unknown rule set", "FromDevice -> IDSMatcher(RULESET nope) -> ToDevice;"},
		{"no input", "Counter -> ToDevice;"},
	} {
		if err := ValidateConfig(tc.cfg, nil, rules); !errors.Is(err, ErrBadPipeline) {
			t.Errorf("%s: err = %v, want ErrBadPipeline", tc.name, err)
		}
	}
}

// probeElement is a registrable test element that drops every Nth packet.
type probeElement struct {
	Base
	every uint64
	seen  uint64
}

func (*probeElement) Class() string { return "DropEvery" }
func (e *probeElement) Configure(args []string, _ *Context) error {
	e.every = 2
	return nil
}
func (*probeElement) InPorts() int  { return AnyPorts }
func (*probeElement) OutPorts() int { return 1 }
func (e *probeElement) Push(_ int, p *Packet) {
	if e.seen++; e.seen%e.every == 0 {
		p.Drop(e.Name())
		return
	}
	e.Forward(0, p)
}

func TestSharedRegistry(t *testing.T) {
	r := NewSharedRegistry()
	factory := func() Element { return &probeElement{} }

	if err := r.Register("DropEvery", factory); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := r.Lookup("DropEvery"); !ok {
		t.Fatal("registered class not resolvable")
	}
	for _, tc := range []struct {
		name  string
		class string
		f     Factory
	}{
		{"duplicate", "DropEvery", factory},
		{"builtin override", "IPFilter", factory},
		{"empty name", "", factory},
		{"bad identifier", "Drop Every", factory},
		{"nil factory", "NilFactory", nil},
	} {
		if err := r.Register(tc.class, tc.f); !errors.Is(err, ErrBadPipeline) {
			t.Errorf("%s: err = %v, want ErrBadPipeline", tc.name, err)
		}
	}
	found := false
	for _, c := range r.Classes() {
		if c == "DropEvery" {
			found = true
		}
	}
	if !found {
		t.Error("Classes() missing registered class")
	}
}

// TestSharedRegistryConcurrent registers classes from several goroutines
// while routers are built against the same registry — the registration
// model hot-swapping relies on. Run with -race.
func TestSharedRegistryConcurrent(t *testing.T) {
	r := NewSharedRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Register(fmt.Sprintf("Conc%d_%d", g, i), func() Element { return &probeElement{} })
			}
		}(g)
	}
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g, err := ParseConfig("FromDevice -> c :: Counter -> ToDevice;")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := BuildRouter(g, r, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCloneKeepsPlaintextNilness is the regression test for the Tee
// fan-out clone: a nil Plaintext (no TLS plaintext recovered — the common
// case) must stay nil without allocating, and an empty-but-present
// annotation must stay non-nil, so IDS elements make the same
// plaintext-vs-ciphertext decision on every branch.
func TestCloneKeepsPlaintextNilness(t *testing.T) {
	ip := testUDP(t, "clone")

	p := NewPacket(ip)
	if q := p.clone(); q.Plaintext != nil {
		t.Errorf("nil Plaintext became %#v", q.Plaintext)
	}

	p.Plaintext = []byte{}
	if q := p.clone(); q.Plaintext == nil {
		t.Error("empty Plaintext became nil")
	} else if len(q.Plaintext) != 0 {
		t.Errorf("empty Plaintext grew to %d bytes", len(q.Plaintext))
	}

	p.Plaintext = []byte("secret")
	q := p.clone()
	if string(q.Plaintext) != "secret" {
		t.Errorf("Plaintext = %q, want %q", q.Plaintext, "secret")
	}
	q.Plaintext[0] = 'X'
	if string(p.Plaintext) != "secret" {
		t.Error("clone aliases the original Plaintext")
	}

	// The non-TLS fan-out path must not pay a per-clone allocation for
	// the absent annotation (only IP.Clone's are expected).
	p.Plaintext = nil
	ipAllocs := testing.AllocsPerRun(100, func() { _ = ip.Clone() })
	cloneAllocs := testing.AllocsPerRun(100, func() { _ = p.clone() })
	if cloneAllocs > ipAllocs+1 { // +1 for the Packet wrapper itself
		t.Errorf("clone of non-TLS packet allocates %.0f (IP.Clone alone: %.0f)", cloneAllocs, ipAllocs)
	}
}

// TestRouterStats checks the uniform per-element counters: packets pushed
// into each element, drops attributed to the deciding element, alerts
// attributed to the raising element — including for anonymous instances.
func TestRouterStats(t *testing.T) {
	ctx, _ := testContext(t)
	cfg := `FromDevice -> ids :: IDSMatcher(RULESET strict, MODE enforce) -> fw :: IPFilter(drop dst port 9999, allow all) -> ToDevice;`
	inst := mustInstance(t, cfg, ctx)

	for i := 0; i < 4; i++ {
		inst.Process(testUDP(t, "clean")) // passes both
	}
	inst.Process(testTCPPort(t, 80, []byte("X-Worm"))) // dropped by ids, alerts
	inst.Process(testTCPPort(t, 9999, []byte("hi")))   // passes ids, dropped by fw

	stats := inst.Stats()
	byName := map[string]ElementStats{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if got := byName["ids"]; got.Packets != 6 || got.Drops != 1 || got.Alerts != 1 {
		t.Errorf("ids stats = %+v, want 6 packets, 1 drop, 1 alert", got)
	}
	if got := byName["fw"]; got.Packets != 5 || got.Drops != 1 {
		t.Errorf("fw stats = %+v, want 5 packets, 1 drop", got)
	}
}

// TestStatsSurviveHotSwap pins that the uniform counters transplant
// across Swap for same-name same-class elements.
func TestStatsSurviveHotSwap(t *testing.T) {
	ctx, _ := testContext(t)
	inst := mustInstance(t, "FromDevice -> c :: Counter -> ToDevice;", ctx)
	for i := 0; i < 5; i++ {
		inst.Process(testUDP(t, "x"))
	}
	if _, err := inst.Swap("FromDevice -> c :: Counter -> fw :: IPFilter(allow all) -> ToDevice;"); err != nil {
		t.Fatal(err)
	}
	inst.Process(testUDP(t, "x"))
	var c ElementStats
	for _, s := range inst.Stats() {
		if s.Name == "c" {
			c = s
		}
	}
	if c.Packets != 6 {
		t.Errorf("counter packets after swap = %d, want 6 (5 transplanted + 1)", c.Packets)
	}
}
