package click

import (
	"fmt"
	"time"
)

// Fault containment (FailurePolicy): a panicking element is recovered at
// the Instance boundary, counted, and — after TripThreshold faults —
// quarantined by rewiring the graph, not by guarding the hot path: every
// connection into the broken element is spliced over to a gate, so the
// steady-state packet path through healthy elements is byte-for-byte the
// same code it was before containment existed. The only per-packet costs
// are one deferred recover() in Instance.Process and the owner.cur store
// in Base.Forward that makes panic attribution possible.

// quarantine tracks one tripped element: the gate standing in for it, the
// connections that were rewired to reach the gate (restored when a probe
// succeeds), and when the trip happened (starts the cooldown clock).
type quarantine struct {
	el    Element
	gate  *gate
	moved []rewired
	entry bool // the element was the router's entry point
	since time.Time
}

// rewired records one connection spliced from the quarantined element to
// its gate, so unquarantine can restore the original wiring exactly.
type rewired struct {
	src  Element
	out  int
	port int
}

// gate stands in for a quarantined element. Under the fail-closed policy
// (the default) it drops arriving packets, attributing the drop to the
// quarantined element; under fail-open it forwards them to the element's
// first downstream target, bypassing the broken stage. Once the cooldown
// elapses it runs a half-open probe: the next packet is pushed into the
// real element, and a clean pass restores the original wiring while a
// fresh panic re-arms the quarantine.
type gate struct {
	Base
	r *Router
	q *quarantine
}

func (g *gate) Class() string                      { return "Quarantine" }
func (g *gate) Configure([]string, *Context) error { return nil }
func (g *gate) InPorts() int                       { return AnyPorts }
func (g *gate) OutPorts() int                      { return AnyPorts }

func (g *gate) Push(port int, p *Packet) {
	r := g.r
	if r.now().Sub(g.q.since) >= r.policy.Cooldown {
		// Half-open probe. A panic below unwinds to Instance.Process,
		// whose containPanic sees the element already quarantined and
		// re-arms it; on a normal return the element has earned its way
		// back into the graph.
		el := g.q.el
		r.cur = el
		el.counters().packets.Add(1)
		el.Push(port, p)
		r.unquarantine(g.q)
		return
	}
	if r.policy.FailOpen {
		if _, _, ok := g.forwardTarget(0); ok {
			g.Forward(0, p)
			return
		}
		// No downstream to bypass to (the quarantined element was a
		// sink); fall through to the drop.
	}
	g.q.el.counters().packets.Add(1)
	p.Drop(g.q.el.elementName())
}

// containPanic is the recovery path behind Instance.Process: attribute
// the panic, count it, quarantine the element if it has used up its
// strikes, and turn the half-processed packet into a drop verdict at the
// faulting element. It runs with the instance lock held and the router's
// scratch packet in whatever state the unwind left it.
func (r *Router) containPanic(rec any) *Result {
	el := r.cur
	if g, ok := el.(*gate); ok {
		// A panic surfacing while a gate was current belongs to the
		// element it guards (e.g. a probe that blew up before the element
		// forwarded anywhere).
		el = g.q.el
	}
	if el == nil {
		el = r.input
	}
	name := el.elementName()
	el.counters().panics.Add(1)
	msg := fmt.Sprintf("panic: %v", rec)

	if q, ok := r.quar[name]; ok {
		// A half-open probe failed: back in the box for another cooldown.
		q.since = r.now()
		r.fireFault(el, msg, true)
	} else {
		if r.trips == nil {
			r.trips = make(map[string]int)
		}
		r.trips[name]++
		tripped := r.trips[name] >= r.policy.TripThreshold
		if tripped {
			r.quarantineElement(el)
		}
		r.fireFault(el, msg, tripped)
	}

	p := &r.pkt
	p.Drop(name) // no-op if some element already dropped it before the panic
	res := &r.res
	*res = Result{Packet: p, DroppedBy: p.droppedBy}
	return res
}

// quarantineElement splices a gate in front of el: every connection in
// the graph that targets el — including other quarantines' bypass wiring
// — is retargeted at the gate, and if el was the router's entry point the
// gate takes that over too. el's own outputs are left alone, so a
// half-open probe flows downstream normally.
func (r *Router) quarantineElement(el Element) {
	name := el.elementName()
	q := &quarantine{el: el, since: r.now()}
	g := &gate{r: r, q: q}
	g.setName(name + "!quarantine")
	if tgt, port, ok := el.forwardTarget(0); ok {
		// Wire the fail-open bypass through real Base wiring so that a
		// later quarantine of the bypass target rewires this gate too.
		g.bindOutputs(1)
		_ = g.connectOutput(0, tgt, port)
	}
	q.gate = g
	for _, n := range r.order {
		r.redirect(r.elements[n], el, g, q)
	}
	for _, oq := range r.quar {
		r.redirect(oq.gate, el, g, q)
	}
	if r.entry == el {
		q.entry = true
		r.entry = g
	}
	if r.quar == nil {
		r.quar = make(map[string]*quarantine)
	}
	r.quar[name] = q
}

// redirect retargets every output of src that points at from over to the
// gate, recording each splice for restoration.
func (r *Router) redirect(src, from Element, g *gate, q *quarantine) {
	for out := 0; out < src.outputCount(); out++ {
		if tgt, port, ok := src.forwardTarget(out); ok && tgt == from {
			q.moved = append(q.moved, rewired{src: src, out: out, port: port})
			src.retargetOutput(out, g, port)
		}
	}
}

// unquarantine restores the wiring recorded at quarantine time and wipes
// the element's strike count — a probed-healthy element starts fresh.
func (r *Router) unquarantine(q *quarantine) {
	for _, m := range q.moved {
		m.src.retargetOutput(m.out, q.el, m.port)
	}
	if q.entry {
		r.entry = q.el
	}
	delete(r.quar, q.el.elementName())
	delete(r.trips, q.el.elementName())
}

func (r *Router) fireFault(el Element, msg string, quarantined bool) {
	if r.fault == nil {
		return
	}
	r.fault(ElementFault{
		Element:     el.elementName(),
		Class:       el.Class(),
		Err:         msg,
		Quarantined: quarantined,
	})
}
