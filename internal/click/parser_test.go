package click

import (
	"reflect"
	"testing"
)

func TestParseDeclarationAndChain(t *testing.T) {
	g, err := ParseConfig(`
// a comment
fw :: IPFilter(allow all);
FromDevice -> fw -> ToDevice;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Decls) != 3 {
		t.Fatalf("decls = %+v, want 3", g.Decls)
	}
	if g.Decls[0].Name != "fw" || g.Decls[0].Class != "IPFilter" || g.Decls[0].Config != "allow all" {
		t.Errorf("decl[0] = %+v", g.Decls[0])
	}
	if len(g.Conns) != 2 {
		t.Fatalf("conns = %+v, want 2", g.Conns)
	}
	if g.Conns[0].To != "fw" || g.Conns[1].From != "fw" {
		t.Errorf("conns = %+v", g.Conns)
	}
}

func TestParseInlineDeclaration(t *testing.T) {
	g, err := ParseConfig(`FromDevice -> cnt :: Counter -> ToDevice;`)
	if err != nil {
		t.Fatal(err)
	}
	var classes []string
	for _, d := range g.Decls {
		classes = append(classes, d.Class)
	}
	want := []string{"FromDevice", "Counter", "ToDevice"}
	if !reflect.DeepEqual(classes, want) {
		t.Errorf("classes = %v, want %v", classes, want)
	}
	if g.Decls[1].Name != "cnt" {
		t.Errorf("inline decl name = %q", g.Decls[1].Name)
	}
}

func TestParsePortBrackets(t *testing.T) {
	g, err := ParseConfig(`
rr :: RoundRobinSwitch;
FromDevice -> rr;
rr[0] -> ToDevice;
rr[1] -> [0]Discard;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Conns) != 3 {
		t.Fatalf("conns = %+v", g.Conns)
	}
	if g.Conns[1].FromPort != 0 || g.Conns[2].FromPort != 1 {
		t.Errorf("output ports: %+v", g.Conns)
	}
	if g.Conns[2].ToPort != 0 {
		t.Errorf("input port: %+v", g.Conns[2])
	}
}

func TestParseAnonymousWithConfig(t *testing.T) {
	g, err := ParseConfig(`FromDevice -> IPFilter(allow all) -> ToDevice;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Decls) != 3 {
		t.Fatalf("decls = %+v", g.Decls)
	}
	if g.Decls[1].Class != "IPFilter" || g.Decls[1].Config != "allow all" {
		t.Errorf("anon decl = %+v", g.Decls[1])
	}
	// Anonymous names are generated and unique.
	if g.Decls[1].Name == "IPFilter" {
		t.Error("anonymous element not renamed")
	}
}

func TestParseNestedParensAndQuotes(t *testing.T) {
	g, err := ParseConfig(`f :: IPFilter(drop src host 1.2.3.4, allow all); x :: SetTOS(eb);`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Decls[0].Config != "drop src host 1.2.3.4, allow all" {
		t.Errorf("config = %q", g.Decls[0].Config)
	}
}

func TestParseBlockComment(t *testing.T) {
	g, err := ParseConfig(`/* block
comment */ FromDevice -> ToDevice;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Decls) != 2 {
		t.Errorf("decls = %+v", g.Decls)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated paren":   `f :: IPFilter(allow all`,
		"unterminated comment": `/* nope`,
		"bad token":            `f :: $$$;`,
		"double declaration":   `f :: Counter; f :: Counter;`,
		"missing class":        `f :: ;`,
		"dangling arrow":       `FromDevice -> ;`,
		"bad port":             `FromDevice -> [x]ToDevice;`,
	}
	for name, cfg := range cases {
		if _, err := ParseConfig(cfg); err == nil {
			t.Errorf("%s: no error for %q", name, cfg)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a, b,  c ", []string{"a", "b", "c"}},
		{`a "x, y", b`, []string{`a "x, y"`, "b"}},
		{"f(a, b), c", []string{"f(a, b)", "c"}},
		{"a,,b", []string{"a", "b"}},
	}
	for _, tt := range tests {
		if got := SplitArgs(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SplitArgs(%q) = %#v, want %#v", tt.in, got, tt.want)
		}
	}
}

func TestParseMultilineRealConfig(t *testing.T) {
	for _, uc := range AllUseCases {
		cfg := StandardConfig(uc)
		if _, err := ParseConfig(cfg); err != nil {
			t.Errorf("StandardConfig(%v) does not parse: %v", uc, err)
		}
		if _, err := ParseConfig(ServerConfig(uc)); err != nil {
			t.Errorf("ServerConfig(%v) does not parse: %v", uc, err)
		}
	}
}
