package click

import (
	"testing"

	"endbox/internal/idps"
	"endbox/internal/packet"
)

// BenchmarkContainedPipelines1500 is BenchmarkUseCasePipelines1500 with
// fault containment armed (Context.Failure.Contain), the configuration
// every Deployment now runs by default. The containment design puts its
// entire cost off the happy path — a recover() at the Process boundary
// and quarantine gates that are only spliced into the graph after a trip
// — so this must stay 0 allocs/op and within a few percent of the
// uncontained baseline. CI gates both via cmd/benchgate against
// BENCH_chaos.json (-match ContainedPipelines1500).
func BenchmarkContainedPipelines1500(b *testing.B) {
	ctx := &Context{
		RuleSet: func(string) (string, error) {
			return idps.GenerateRuleSet(idps.CommunityRuleCount, 2018), nil
		},
		Failure: FailurePolicy{Contain: true},
	}
	raw := packet.NewUDP(packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1"),
		40000, 5201, make([]byte, 1472))
	for _, uc := range AllUseCases {
		b.Run(uc.String(), func(b *testing.B) {
			inst, err := NewInstance(StandardConfig(uc), nil, ctx)
			if err != nil {
				b.Fatal(err)
			}
			var ip packet.IPv4
			if err := ip.Parse(raw); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := inst.Process(&ip); !res.Accepted {
					b.Fatalf("packet dropped by %s", res.DroppedBy)
				}
			}
		})
	}
}
