package click

import (
	"errors"
	"fmt"
	"strings"

	"endbox/internal/idps"
	"endbox/internal/tlstap"
)

// ErrBadPipeline reports a middlebox pipeline or Click configuration that
// cannot be compiled into a runnable router: unknown element classes, bad
// element arguments, malformed graph syntax, or an empty/unknown use case.
// It is returned (wrapped) by Pipeline.Compile, ValidateConfig and — via
// the core deployment — AddClient, so misconfigurations surface as typed
// errors at the API boundary instead of failing inside the enclave.
var ErrBadPipeline = errors.New("click: bad pipeline")

// Stage is one element instance in a typed Pipeline. The zero Fanout (or
// 1) chains the stage linearly to its successor; a Fanout of n > 1 gives
// the stage n outputs, all wired to the next hop (the load-balancer
// shape), and is only allowed on the final stage.
type Stage struct {
	// Class is the Click element class, built-in or registered.
	Class string
	// Name is the instance name. Empty names get parser-assigned
	// anonymous names; stages with Fanout > 1 must be named so the
	// emitted configuration can reference their ports.
	Name string
	// Args are the element's configuration arguments, one clause per
	// entry (they are joined with ", " inside the parentheses).
	Args []string
	// Fanout is the number of outputs wired to the next hop (0/1 =
	// linear).
	Fanout int
}

// Pipeline is a typed, validated description of a middlebox function: an
// ordered chain of element stages between the implicit FromDevice entry
// and ToDevice exit. Build one with Chain (typed stages) or Raw (verbatim
// Click text); compile it to configuration text with Compile, which
// validates the whole graph — element classes, arguments, port wiring —
// against a registry and returns ErrBadPipeline-typed errors instead of
// letting a broken configuration fail inside an enclave.
//
// The zero Pipeline means "no pipeline specified" and is reported by
// Zero; an explicitly empty Chain() is the NOP pipeline (FromDevice
// wired straight to ToDevice).
type Pipeline struct {
	raw    string
	isRaw  bool
	stages []Stage
}

// Chain builds a pipeline from typed stages in order. Chain() with no
// stages is the NOP pipeline.
func Chain(stages ...Stage) Pipeline {
	if stages == nil {
		stages = []Stage{}
	}
	return Pipeline{stages: stages}
}

// Raw wraps verbatim Click configuration text as a pipeline. It still
// passes full validation at Compile time; use it for graph shapes the
// typed stages cannot express.
func Raw(config string) Pipeline {
	return Pipeline{raw: config, isRaw: true}
}

// Zero reports whether the pipeline is the unset zero value (as opposed
// to an explicit empty Chain, which is the NOP pipeline).
func (p Pipeline) Zero() bool {
	return !p.isRaw && p.raw == "" && p.stages == nil
}

// Config emits the pipeline as Click configuration text without building
// it. Most callers want Compile, which also validates against a registry.
func (p Pipeline) Config() (string, error) {
	if p.isRaw {
		if strings.TrimSpace(p.raw) == "" {
			return "", fmt.Errorf("%w: empty raw configuration", ErrBadPipeline)
		}
		return p.raw, nil
	}
	if p.Zero() {
		return "", fmt.Errorf("%w: no pipeline specified", ErrBadPipeline)
	}
	return emitStages(p.stages)
}

// Compile emits and fully validates the pipeline: the configuration is
// parsed and a complete router is built (elements instantiated and
// configured, ports wired) against reg (nil = DefaultRegistry) with the
// given rule sets available to IDS stages. On success it returns the
// configuration text ready for ClientOptions.ClickConfig or a
// config.Update; on failure the error wraps ErrBadPipeline.
func (p Pipeline) Compile(reg Resolver, ruleSets map[string]string) (string, error) {
	cfg, err := p.Config()
	if err != nil {
		return "", err
	}
	if err := ValidateConfig(cfg, reg, ruleSets); err != nil {
		return "", err
	}
	return cfg, nil
}

// emitStages renders typed stages as configuration text: a single linear
// chain statement, plus per-port connection statements when the final
// stage fans out.
func emitStages(stages []Stage) (string, error) {
	var b strings.Builder
	b.WriteString("FromDevice")
	var fan *Stage
	for i := range stages {
		s := &stages[i]
		if !validClassName(s.Class) {
			return "", fmt.Errorf("%w: stage %d has invalid element class %q", ErrBadPipeline, i, s.Class)
		}
		if s.Name != "" && !validClassName(s.Name) {
			return "", fmt.Errorf("%w: stage %d has invalid instance name %q", ErrBadPipeline, i, s.Name)
		}
		for _, arg := range s.Args {
			if !validArgText(arg) {
				return "", fmt.Errorf("%w: stage %d argument %q would split or escape the element's configuration (unbalanced parentheses/quotes or a top-level comma)", ErrBadPipeline, i, arg)
			}
		}
		if s.Fanout < 0 {
			return "", fmt.Errorf("%w: stage %d (%s) has invalid fan-out (need at least 2 outputs)", ErrBadPipeline, i, s.Class)
		}
		if s.Fanout > 1 {
			if i != len(stages)-1 {
				return "", fmt.Errorf("%w: fan-out stage %q must be the final stage", ErrBadPipeline, s.Class)
			}
			if s.Name == "" {
				return "", fmt.Errorf("%w: fan-out stage %q needs an instance name", ErrBadPipeline, s.Class)
			}
			fan = s
		}
		b.WriteString(" -> ")
		b.WriteString(stageText(s))
	}
	if fan == nil {
		b.WriteString(" -> ToDevice;")
		return b.String(), nil
	}
	b.WriteString(";\n")
	fmt.Fprintf(&b, "%s[0] -> td :: ToDevice;\n", fan.Name)
	for out := 1; out < fan.Fanout; out++ {
		fmt.Fprintf(&b, "%s[%d] -> td;\n", fan.Name, out)
	}
	return b.String(), nil
}

// validArgText reports whether a stage argument survives the round trip
// through the emitted configuration intact, under the lexer's rules
// (nested parentheses and double-quoted strings). An unbalanced ')' or
// an unclosed quote would terminate the configuration token early and
// splice the remainder into the graph; a top-level comma would be
// re-split by SplitArgs into two arguments the caller never passed — a
// typed stage must configure its element with exactly the Args given
// (commas inside quotes or parentheses are fine).
func validArgText(s string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr && c == '\\':
			i++
		case c == '"':
			inStr = !inStr
		case !inStr && c == '(':
			depth++
		case !inStr && c == ')':
			depth--
			if depth < 0 {
				return false
			}
		case !inStr && depth == 0 && c == ',':
			return false
		}
	}
	return depth == 0 && !inStr
}

// stageText renders one stage as "name :: Class(args)" with the optional
// parts omitted.
func stageText(s *Stage) string {
	var b strings.Builder
	if s.Name != "" {
		b.WriteString(s.Name)
		b.WriteString(" :: ")
	}
	b.WriteString(s.Class)
	if len(s.Args) > 0 {
		b.WriteString("(")
		b.WriteString(strings.Join(s.Args, ", "))
		b.WriteString(")")
	}
	return b.String()
}

// StockPipeline returns the typed pipeline reproducing one of the paper's
// five evaluation middlebox functions (§V-B) — the same graphs
// StandardConfig compiles to. Unknown use cases return the zero Pipeline.
func StockPipeline(u UseCase) Pipeline {
	switch u {
	case UseCaseNOP:
		return Chain()
	case UseCaseLB:
		return Chain(Stage{Name: "rr", Class: "RoundRobinSwitch", Fanout: 4})
	case UseCaseFW:
		return Chain(Stage{Name: "fw", Class: "IPFilter", Args: SplitArgs(FirewallRules(16))})
	case UseCaseIDPS:
		return Chain(Stage{Name: "ids", Class: "IDSMatcher", Args: []string{"RULESET community"}})
	case UseCaseDDoS:
		// The shaper is provisioned above the evaluation rate (as in the
		// paper, where measurement traffic is not throttled); the BURST
		// covers the interval between trusted-time samples.
		return Chain(
			Stage{Name: "ids", Class: "IDSMatcher", Args: []string{"RULESET community"}},
			Stage{Name: "shaper", Class: "TrustedSplitter",
				Args: []string{"RATE 10G", "BURST 4000000000", "SAMPLE 500000"}},
		)
	default:
		return Pipeline{}
	}
}

// ValidateConfig checks that cfg compiles into a runnable router: it is
// parsed and fully built — every element instantiated and configured, all
// ports wired — against reg (nil = DefaultRegistry), with the given rule
// sets resolvable by IDS elements and a scratch key table for TLSDecrypt.
// Errors wrap ErrBadPipeline. This is the validation AddClient and
// Rollout run before any configuration reaches an enclave.
func ValidateConfig(cfg string, reg Resolver, ruleSets map[string]string) error {
	g, err := ParseConfig(cfg)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadPipeline, err)
	}
	ctx := &Context{
		Keys: tlstap.NewKeyTable(),
		RuleSet: func(name string) (string, error) {
			if text, ok := ruleSets[name]; ok {
				return text, nil
			}
			// Scaled provider names ("generated:<n>[:<seed>]") resolve
			// without shipping the rule text in the update blob.
			if text, ok, err := idps.ResolveGenerated(name); ok {
				return text, err
			}
			return "", fmt.Errorf("unknown rule set %q", name)
		},
	}
	if _, err := BuildRouter(g, reg, ctx); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPipeline, err)
	}
	return nil
}
