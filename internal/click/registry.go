package click

import (
	"fmt"
	"sort"
	"sync"
)

// Resolver resolves Click class names to element factories. Registry (a
// plain map, for single-owner use) and SharedRegistry (concurrency-safe,
// for process-wide registration) both implement it; router building takes
// a Resolver so hot-swaps pick up classes registered after the instance
// was created.
type Resolver interface {
	Lookup(class string) (Factory, bool)
}

// Lookup implements Resolver.
func (r Registry) Lookup(class string) (Factory, bool) {
	f, ok := r[class]
	return f, ok
}

// SharedRegistry is a concurrency-safe element-class registry layered over
// the built-in Registry: the built-in classes are fixed at construction,
// custom classes may be registered at any time from any goroutine.
// Registration is append-only — a class, once registered, can neither be
// replaced nor removed, so a router built concurrently with registrations
// sees a consistent factory for every class it resolves (the ownership
// rule the public mbox package documents).
type SharedRegistry struct {
	builtin Registry

	mu     sync.RWMutex
	custom map[string]Factory
}

// NewSharedRegistry returns a shared registry over the built-in classes.
func NewSharedRegistry() *SharedRegistry {
	return &SharedRegistry{
		builtin: NewRegistry(),
		custom:  make(map[string]Factory),
	}
}

// DefaultRegistry is the process-wide registry: routers built with a nil
// Resolver (including the in-enclave instances) resolve against it, and
// the public mbox.Register delegates to it.
var DefaultRegistry = NewSharedRegistry()

// Register adds a custom element class. The class name must be a valid
// Click identifier, must not collide with a built-in class, and must not
// already be registered; the factory must produce a fresh element per
// call. Safe for concurrent use with itself and with Lookup.
func (r *SharedRegistry) Register(class string, f Factory) error {
	if !validClassName(class) {
		return fmt.Errorf("%w: invalid element class name %q", ErrBadPipeline, class)
	}
	if f == nil {
		return fmt.Errorf("%w: nil factory for element class %q", ErrBadPipeline, class)
	}
	if _, builtin := r.builtin[class]; builtin {
		return fmt.Errorf("%w: element class %q is built in and cannot be overridden", ErrBadPipeline, class)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.custom[class]; dup {
		return fmt.Errorf("%w: element class %q already registered", ErrBadPipeline, class)
	}
	r.custom[class] = f
	return nil
}

// Lookup implements Resolver: custom classes shadow nothing (built-ins win
// registration-time, not lookup-time — Register rejects collisions).
func (r *SharedRegistry) Lookup(class string) (Factory, bool) {
	if f, ok := r.builtin[class]; ok {
		return f, true
	}
	r.mu.RLock()
	f, ok := r.custom[class]
	r.mu.RUnlock()
	return f, ok
}

// Classes returns every resolvable class name, sorted.
func (r *SharedRegistry) Classes() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.builtin)+len(r.custom))
	for name := range r.builtin {
		out = append(out, name)
	}
	for name := range r.custom {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// validClassName reports whether s lexes as a single Click identifier, so
// configurations emitted for the class re-parse.
func validClassName(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}
