package click

import (
	"testing"

	"endbox/internal/packet"
)

// BenchmarkFlowPipelines1500 is the end-to-end cost of the stateful
// elements on 1500-byte established-connection traffic, gated by
// cmd/benchgate against BENCH_flow.json: both pipelines must stay at
// 0 allocs/op — flow tracking rides the packet path for free.
func BenchmarkFlowPipelines1500(b *testing.B) {
	configs := []struct {
		name string
		cfg  string
	}{
		{"ConnTrack", "FromDevice -> ct :: ConnTrack -> ToDevice;"},
		{"ConnTrack+Shaper",
			"FromDevice -> ct :: ConnTrack -> sh :: FlowRateLimit(RATE 100G, BURST 4000000000) -> ToDevice;"},
	}
	cli, srv := packet.MustParseAddr("10.8.0.2"), packet.MustParseAddr("10.8.0.1")
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			inst, err := NewInstance(c.cfg, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			// Establish the connection so strict conntrack admits the
			// measured data segments.
			for _, raw := range [][]byte{
				packet.NewTCP(cli, srv, 40000, 80, 100, 0, packet.TCPSyn, nil),
				packet.NewTCP(srv, cli, 80, 40000, 300, 101, packet.TCPSyn|packet.TCPAck, nil),
				packet.NewTCP(cli, srv, 40000, 80, 101, 301, packet.TCPAck, nil),
			} {
				ip, err := packet.ParseIPv4(raw)
				if err != nil {
					b.Fatal(err)
				}
				if res := inst.Process(ip); !res.Accepted {
					b.Fatalf("handshake dropped by %s", res.DroppedBy)
				}
			}
			// 20 IP + 20 TCP + 1460 payload = 1500 bytes on the wire.
			raw := packet.NewTCP(cli, srv, 40000, 80, 101, 301, packet.TCPAck, make([]byte, 1460))
			var ip packet.IPv4
			if err := ip.Parse(raw); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := inst.Process(&ip); !res.Accepted {
					b.Fatalf("packet dropped by %s", res.DroppedBy)
				}
			}
		})
	}
}
