// Package click reimplements the subset of the Click modular router that
// EndBox compiles into its enclave (paper §IV): an element framework, the
// Click configuration language, packet flow between elements, and in-memory
// configuration hot-swapping. The standard elements the paper's evaluation
// uses (RoundRobinSwitch, IPFilter, ...) live in elements.go; EndBox's
// custom elements (IDSMatcher, TrustedSplitter, UntrustedSplitter,
// TLSDecrypt) in endboxelem.go.
//
// Differences from vanilla Click mirror the paper's changes (§IV "Changes
// to Click and OpenVPN"): ToDevice signals the VPN whether a packet was
// accepted or rejected; signal handling and control sockets do not exist;
// and hot-swapping works on configurations held in memory.
package click

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"endbox/internal/flow"
	"endbox/internal/packet"
	"endbox/internal/tlstap"
)

// Packet is the unit of processing flowing through the element graph. It
// wraps the parsed IP packet and carries EndBox-specific annotations.
type Packet struct {
	// IP is the parsed packet; elements may modify headers in place.
	IP *packet.IPv4
	// Plaintext is decrypted TLS application data, populated by the
	// TLSDecrypt element so downstream DPI elements can inspect it.
	Plaintext []byte
	// Backend is the output chosen by a load-balancing element, -1 if none.
	Backend int

	dropped   bool
	droppedBy string
	delivered bool
	modified  bool

	// flowEntry caches the packet's flow binding (Base.TrackFlow): the
	// flow is resolved and its counters bumped once per packet, no matter
	// how many stateful elements the packet traverses.
	flowEntry *flow.Entry
	flowDir   flow.Dir

	// owner is the router processing the packet; Drop reports per-element
	// drop counts through it. Nil for packets built outside a router.
	owner *Router
}

// NewPacket wraps a parsed IP packet for processing.
func NewPacket(ip *packet.IPv4) *Packet {
	return &Packet{IP: ip, Backend: -1}
}

// Drop marks the packet discarded, recording which element decided it.
func (p *Packet) Drop(by string) {
	if !p.dropped {
		p.dropped = true
		p.droppedBy = by
		if p.owner != nil {
			p.owner.countDrop(by)
		}
	}
}

// Dropped reports whether the packet has been discarded.
func (p *Packet) Dropped() bool { return p.dropped }

// DroppedBy names the element that discarded the packet.
func (p *Packet) DroppedBy() string { return p.droppedBy }

// MarkModified records that an element rewrote the IP packet, so callers
// must re-serialise it. Elements that change headers or payloads call it.
func (p *Packet) MarkModified() { p.modified = true }

// Modified reports whether any element rewrote the packet.
func (p *Packet) Modified() bool { return p.modified }

// FlowEntry returns the packet's cached flow binding, if a stateful
// element has tracked it (Base.TrackFlow).
func (p *Packet) FlowEntry() (*flow.Entry, flow.Dir, bool) {
	return p.flowEntry, p.flowDir, p.flowEntry != nil
}

// clone duplicates the packet for Tee-style fan-out. The Plaintext
// annotation keeps its nil-ness: nil (no TLS plaintext recovered) stays
// nil without allocating — the common case for non-TLS traffic — and an
// empty-but-present annotation stays non-nil, so downstream DPI elements
// make the same plaintext-vs-ciphertext decision on every branch.
// The flow annotation is shared, not re-bound: both branches refer to the
// same flow entry, whose per-flow counters already counted this packet
// exactly once.
func (p *Packet) clone() *Packet {
	q := *p
	q.IP = p.IP.Clone()
	if p.Plaintext != nil {
		q.Plaintext = append(make([]byte, 0, len(p.Plaintext)), p.Plaintext...)
	}
	return &q
}

// Alert is a notification produced by detection elements, delivered to the
// Context's Alert hook (the paper logs these via the VPN management
// channel). Element is the raising element's instance name (the key into
// Router.Stats / Client.PipelineStats), Class its element class.
type Alert struct {
	Element string
	Class   string
	SID     int
	Msg     string
}

// FailurePolicy configures element fault containment for a pipeline. The
// zero value disables containment, preserving the library's historical
// behaviour (a panicking element unwinds out of Router.Process). With
// Contain set, a panic inside an element is caught at the Instance
// boundary, counted against the element, and — once TripThreshold
// consecutive faults accumulate — the element is quarantined: every
// connection into it is rewired to a gate that fail-closes (drops the
// packet at the broken stage, the secure default) or fail-opens (bypasses
// the element via its first output). After Cooldown a half-open probe
// lets one packet through; a clean pass restores the original wiring, a
// fresh panic re-arms the quarantine for another cooldown.
type FailurePolicy struct {
	// Contain enables panic containment for the pipeline.
	Contain bool `json:"contain,omitempty"`
	// FailOpen bypasses a quarantined element instead of dropping at it.
	// Leave false for the secure default: a broken filter must not become
	// an open filter.
	FailOpen bool `json:"fail_open,omitempty"`
	// TripThreshold is the number of faults that quarantine an element
	// (default DefaultTripThreshold).
	TripThreshold int `json:"trip_threshold,omitempty"`
	// Cooldown is how long a quarantine holds before a half-open probe
	// re-tests the element (default DefaultCooldown).
	Cooldown time.Duration `json:"cooldown,omitempty"`
}

// Containment defaults: three strikes, thirty seconds in the box.
const (
	DefaultTripThreshold = 3
	DefaultCooldown      = 30 * time.Second
)

func (f FailurePolicy) withDefaults() FailurePolicy {
	if f.TripThreshold <= 0 {
		f.TripThreshold = DefaultTripThreshold
	}
	if f.Cooldown <= 0 {
		f.Cooldown = DefaultCooldown
	}
	return f
}

// ElementFault is a containment event delivered to the Context's Fault
// hook: an element panicked (Quarantined false) or panicked often enough
// to be quarantined — or failed its half-open probe (Quarantined true).
type ElementFault struct {
	// Element is the faulting element's instance name.
	Element string `json:"element"`
	// Class is its Click element class.
	Class string `json:"class"`
	// Err is the recovered panic value, formatted.
	Err string `json:"err"`
	// Quarantined reports whether the fault tripped (or re-armed) a
	// quarantine.
	Quarantined bool `json:"quarantined"`
}

// Context supplies platform services to elements. Inside EndBox the
// trusted services come from the enclave (trusted time, the TLS key table);
// a vanilla server-side Click uses the untrusted defaults.
type Context struct {
	// TrustedTime returns time from the SGX trusted time source. Calls are
	// expensive; elements sample it (paper §V-B). Defaults to SystemTime.
	TrustedTime func() time.Time
	// SystemTime is the untrusted wall clock. Defaults to time.Now.
	SystemTime func() time.Time
	// RuleSet resolves a named IDPS rule set to its text. Defaults to an
	// error for every name.
	RuleSet func(name string) (string, error)
	// Keys is the TLS session-key table fed by the management interface.
	// Nil disables TLSDecrypt.
	Keys *tlstap.KeyTable
	// Alert receives detection notifications. Nil discards them.
	Alert func(Alert)
	// DeviceSetup is invoked by FromDevice/ToDevice when the router is
	// assembled. Vanilla Click opens device file descriptors here — the
	// work EndBox avoids because OpenVPN owns the tunnel device, which is
	// why EndBox hot-swaps faster (paper Table II). Nil is a no-op.
	DeviceSetup func() error
	// Flows is the flow-state service stateful elements (ConnTrack,
	// FlowNAT, FlowRateLimit, StreamAssembler, and custom elements via
	// Base.TrackFlow) attach per-flow state through. Nil gets a
	// default-sized table; Instance keeps the same service across
	// hot-swaps, so flow state survives configuration rollouts.
	Flows *flow.Context
	// Failure is the pipeline's fault-containment policy. The zero value
	// disables containment.
	Failure FailurePolicy
	// Fault receives containment events (element panics, quarantine
	// trips, failed probes). Nil discards them.
	Fault func(ElementFault)
}

func (c *Context) withDefaults() *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	if out.SystemTime == nil {
		out.SystemTime = time.Now
	}
	if out.TrustedTime == nil {
		out.TrustedTime = out.SystemTime
	}
	if out.RuleSet == nil {
		out.RuleSet = func(name string) (string, error) {
			return "", fmt.Errorf("click: no rule set provider (wanted %q)", name)
		}
	}
	if out.Alert == nil {
		out.Alert = func(Alert) {}
	}
	if out.Flows == nil {
		out.Flows = flow.NewContext(flow.Config{Now: out.SystemTime})
	}
	out.Failure = out.Failure.withDefaults()
	return out
}

// AnyPorts marks an element whose port count adapts to its connections
// (e.g. RoundRobinSwitch grows one output per connected branch).
const AnyPorts = -1

// Element is the unit of composition. Implementations embed Base for
// wiring and implement the remaining methods.
type Element interface {
	// Class returns the Click class name, e.g. "IPFilter".
	Class() string
	// Configure parses the element's configuration arguments (the
	// comma-separated list inside parentheses).
	Configure(args []string, ctx *Context) error
	// InPorts and OutPorts declare the port counts (AnyPorts = adapt to
	// the configuration's connections). Called after Configure.
	InPorts() int
	OutPorts() int
	// Push processes a packet arriving on input port. Elements forward
	// packets downstream with Base.Forward.
	Push(port int, p *Packet)

	// wiring hooks provided by Base
	setName(string)
	elementName() string
	bindOutputs(n int)
	connectOutput(out int, target Element, targetPort int) error
	retargetOutput(out int, target Element, targetPort int)
	outputCount() int
	forwardTarget(out int) (Element, int, bool)
	counters() *elemCounters
}

// elemCounters are the uniform per-element runtime counters every element
// carries via Base, read out as ElementStats through Router.Stats. They
// are maintained by the framework (Forward, Drop, the router's alert
// hook), so custom elements get them for free.
type elemCounters struct {
	packets atomic.Uint64
	drops   atomic.Uint64
	alerts  atomic.Uint64
	flows   atomic.Uint64
	panics  atomic.Uint64
}

// copyFrom transplants counters across a hot-swap.
func (c *elemCounters) copyFrom(old *elemCounters) {
	c.packets.Store(old.packets.Load())
	c.drops.Store(old.drops.Load())
	c.alerts.Store(old.alerts.Load())
	c.flows.Store(old.flows.Load())
	c.panics.Store(old.panics.Load())
}

// ElementStats is one element instance's runtime counters: packets pushed
// into it, packets it dropped, and alerts it raised. Read a router's
// per-element breakdown with Instance.Stats (or, through the enclave
// boundary, Client.PipelineStats).
type ElementStats struct {
	// Name is the instance name from the configuration (anonymous
	// elements get parser-assigned names like "IPFilter@1").
	Name string
	// Class is the Click element class.
	Class string
	// Packets counts packets pushed into the element.
	Packets uint64
	// Drops counts packets the element discarded.
	Drops uint64
	// Alerts counts alerts the element raised.
	Alerts uint64
	// Flows counts the per-flow state records the element currently
	// holds in the flow table (stateful elements only; see
	// Base.FlowStateCreated).
	Flows uint64
	// Panics counts panics recovered from the element by fault
	// containment (FailurePolicy.Contain). Like the other counters it
	// survives hot-swaps.
	Panics uint64
	// Quarantined reports whether the element is currently quarantined:
	// packets reaching it are dropped (or bypass it, under a fail-open
	// policy) until a half-open probe re-admits it. Quarantine state does
	// not survive hot-swaps — a freshly applied configuration starts with
	// a clean slate.
	Quarantined bool
}

// Base provides naming, output wiring and runtime counters for elements;
// embed it in every element implementation.
type Base struct {
	name    string
	stats   elemCounters
	targets []struct {
		el   Element
		port int
	}
}

func (b *Base) setName(n string)        { b.name = n }
func (b *Base) elementName() string     { return b.name }
func (b *Base) counters() *elemCounters { return &b.stats }
func (b *Base) bindOutputs(n int) {
	b.targets = make([]struct {
		el   Element
		port int
	}, n)
}

func (b *Base) connectOutput(out int, target Element, targetPort int) error {
	if out < 0 || out >= len(b.targets) {
		return fmt.Errorf("click: output port %d out of range (%d ports)", out, len(b.targets))
	}
	if b.targets[out].el != nil {
		return fmt.Errorf("click: output %d of %q connected twice", out, b.name)
	}
	b.targets[out] = struct {
		el   Element
		port int
	}{target, targetPort}
	return nil
}

// retargetOutput rewires an already-connected output, bypassing the
// connected-twice check — the containment layer uses it to splice
// quarantine gates in and out of a live graph.
func (b *Base) retargetOutput(out int, target Element, targetPort int) {
	b.targets[out] = struct {
		el   Element
		port int
	}{target, targetPort}
}

func (b *Base) outputCount() int { return len(b.targets) }

func (b *Base) forwardTarget(out int) (Element, int, bool) {
	if out < 0 || out >= len(b.targets) || b.targets[out].el == nil {
		return nil, 0, false
	}
	t := b.targets[out]
	return t.el, t.port, true
}

// Forward pushes a packet out of the given output port, counting the
// arrival on the target element. Pushing to an unconnected port drops the
// packet (routers validate connectivity at assembly, so this only happens
// for optional ports such as a splitter's overflow output).
func (b *Base) Forward(out int, p *Packet) {
	if el, port, ok := b.forwardTarget(out); ok {
		if o := p.owner; o != nil {
			o.cur = el // best-effort fault attribution (see containPanic)
		}
		el.counters().packets.Add(1)
		el.Push(port, p)
		return
	}
	p.Drop(b.name)
}

// Name returns the element's instance name from the configuration.
func (b *Base) Name() string { return b.name }

// TrackFlow resolves the packet's flow through the given flow service,
// caching the binding on the packet: the first stateful element in the
// chain pays for the table lookup and counts the packet in the flow's
// per-direction counters; every later element — and every Tee-cloned
// branch — reuses the cached entry. The returned direction is relative to
// the flow's initiator (flow.Fwd = same direction as the first packet).
func (b *Base) TrackFlow(fc *flow.Context, p *Packet) (*flow.Entry, flow.Dir) {
	if p.flowEntry != nil {
		return p.flowEntry, p.flowDir
	}
	e, d := fc.Bind(packet.FlowOf(p.IP), p.IP.Len())
	p.flowEntry = e
	p.flowDir = d
	return e, d
}

// FlowStateCreated counts one per-flow state record created by this
// element (reported as ElementStats.Flows); pair it with
// FlowStateReleased from the flow slot's release hook.
func (b *Base) FlowStateCreated() { b.stats.flows.Add(1) }

// FlowStateReleased counts one per-flow state record released back to
// the element.
func (b *Base) FlowStateReleased() { b.stats.flows.Add(^uint64(0)) }

// StateCarrier lets stateful elements survive hot-swaps: when a new
// configuration contains an element with the same name and class as the old
// one, the router calls TakeState with the old instance (Click's hot-swap
// semantics, paper §IV).
type StateCarrier interface {
	TakeState(old Element)
}

// Factory creates an unconfigured element instance.
type Factory func() Element

// Registry maps Click class names to factories.
type Registry map[string]Factory

// NewRegistry returns a registry populated with every built-in element
// class. Callers may add their own classes before building routers.
func NewRegistry() Registry {
	r := make(Registry, 16)
	r["FromDevice"] = func() Element { return &FromDevice{} }
	r["ToDevice"] = func() Element { return &ToDevice{} }
	r["Discard"] = func() Element { return &Discard{} }
	r["Counter"] = func() Element { return &Counter{} }
	r["Tee"] = func() Element { return &Tee{} }
	r["SetTOS"] = func() Element { return &SetTOS{} }
	r["CheckIPHeader"] = func() Element { return &CheckIPHeader{} }
	r["IPFilter"] = func() Element { return &IPFilter{} }
	r["IPClassifier"] = func() Element { return &IPClassifier{} }
	r["RoundRobinSwitch"] = func() Element { return &RoundRobinSwitch{} }
	r["IDSMatcher"] = func() Element { return &IDSMatcher{} }
	r["TrustedSplitter"] = func() Element { return &TrustedSplitter{} }
	r["UntrustedSplitter"] = func() Element { return &UntrustedSplitter{} }
	r["TLSDecrypt"] = func() Element { return &TLSDecrypt{} }
	r["ConnTrack"] = func() Element { return &ConnTrack{} }
	r["FlowNAT"] = func() Element { return &FlowNAT{} }
	r["FlowRateLimit"] = func() Element { return &FlowRateLimit{} }
	r["StreamAssembler"] = func() Element { return &StreamAssembler{} }
	return r
}

// ErrNoInput reports a configuration without a FromDevice entry point.
var ErrNoInput = errors.New("click: configuration has no FromDevice element")
