package click

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"endbox/internal/flow"
	"endbox/internal/packet"
)

// This file holds the connection-tracking element classes built on the
// flow engine (internal/flow): ConnTrack, FlowNAT, FlowRateLimit and
// StreamAssembler. They share a pattern:
//
//   - Base.TrackFlow binds the packet to its flow entry (once per packet,
//     cached on the Packet, shared across Tee clones).
//   - Per-flow state lives in a named flow slot; the slot name includes
//     the element's instance name, so a hot-swapped element with the same
//     name reclaims its predecessor's live state — established
//     connections stay established across a Rollout.
//   - State structs are pooled per element and recovered through the
//     slot's release hook when flows expire or are evicted, keeping the
//     steady-state packet path allocation-free.

// tcpSegment reads the TCP flags, sequence number and payload straight
// from an IPv4 payload without allocating (packet.ParseTCP returns a
// heap value, which the per-packet path cannot afford).
func tcpSegment(payload []byte) (flags byte, seq uint32, data []byte, ok bool) {
	if len(payload) < packet.TCPHeaderLen {
		return 0, 0, nil, false
	}
	dataOff := int(payload[12]>>4) * 4
	if dataOff < packet.TCPHeaderLen || dataOff > len(payload) {
		return 0, 0, nil, false
	}
	return payload[13], binary.BigEndian.Uint32(payload[4:8]), payload[dataOff:], true
}

// tcpState is the conntrack connection state.
type tcpState uint8

const (
	tcpNone tcpState = iota
	tcpSynSent
	tcpSynRecv
	tcpEstablished
	// The half-closed state records which direction sent the first FIN,
	// so a retransmitted FIN from the same peer is not mistaken for the
	// other side's close (which would march the connection to closed and
	// drop the peer's still-valid data in strict mode).
	tcpFinWaitFwd
	tcpFinWaitRev
	tcpClosing
	tcpClosed
	tcpStateCount // sentinel for fuzzing
)

// finWait returns the half-closed state tagged with the FIN's direction.
func finWait(d flow.Dir) tcpState {
	if d == flow.Fwd {
		return tcpFinWaitFwd
	}
	return tcpFinWaitRev
}

func (s tcpState) String() string {
	switch s {
	case tcpNone:
		return "none"
	case tcpSynSent:
		return "syn-sent"
	case tcpSynRecv:
		return "syn-recv"
	case tcpEstablished:
		return "established"
	case tcpFinWaitFwd, tcpFinWaitRev:
		return "fin-wait"
	case tcpClosing:
		return "closing"
	case tcpClosed:
		return "closed"
	}
	return "invalid"
}

// tcpTransition advances the connection state machine for one segment
// travelling in direction d. It returns the next state and whether the
// segment is valid in the current state; invalid segments leave the
// state unchanged (strict-mode ConnTrack drops them).
func tcpTransition(s tcpState, d flow.Dir, flags byte) (tcpState, bool) {
	if flags&packet.TCPRst != 0 {
		if s == tcpNone {
			return tcpNone, false
		}
		return tcpClosed, true
	}
	syn := flags&packet.TCPSyn != 0
	ack := flags&packet.TCPAck != 0
	fin := flags&packet.TCPFin != 0
	switch s {
	case tcpNone:
		// Only an initiator SYN opens a connection; anything else is a
		// midstream pickup.
		if syn && !ack && d == flow.Fwd {
			return tcpSynSent, true
		}
		return s, false
	case tcpSynSent:
		if syn && ack && d == flow.Rev {
			return tcpSynRecv, true
		}
		if syn && !ack && d == flow.Fwd { // SYN retransmit
			return tcpSynSent, true
		}
		return s, false
	case tcpSynRecv:
		if fin {
			return finWait(d), true
		}
		if syn && ack && d == flow.Rev { // SYN|ACK retransmit
			return tcpSynRecv, true
		}
		if ack && !syn && d == flow.Fwd {
			return tcpEstablished, true
		}
		return s, false
	case tcpEstablished:
		if fin {
			return finWait(d), true
		}
		if !syn {
			return tcpEstablished, true
		}
		return s, false
	case tcpFinWaitFwd, tcpFinWaitRev:
		if fin {
			if s == finWait(d) { // FIN retransmit from the same peer
				return s, true
			}
			return tcpClosing, true // the second direction's FIN
		}
		if !syn {
			return s, true
		}
		return s, false
	case tcpClosing:
		if fin { // FIN retransmit
			return tcpClosing, true
		}
		if ack && !syn {
			return tcpClosed, true
		}
		return s, false
	case tcpClosed:
		if syn && !ack && d == flow.Fwd { // connection reuse
			return tcpSynSent, true
		}
		return s, false
	}
	return s, false
}

// ConnTrack is a stateful firewall: it tracks every flow through the
// router's flow table and runs a TCP connection state machine per flow.
//
// Configuration:
//
//	ConnTrack()              // strict: out-of-state TCP segments are dropped
//	ConnTrack(MODE loose)    // track and count, never drop
//
// In strict mode (the default) TCP segments that are invalid in the
// connection's current state — a data segment with no preceding
// handshake, a SYN inside an established connection, anything after a
// final close — are dropped. Non-TCP protocols are tracked (flow
// counters, TTL) and forwarded. Connection state survives configuration
// hot-swaps: it lives in the router instance's flow table, not in the
// element.
type ConnTrack struct {
	Base
	flows   *flow.Context
	slot    flow.Slot
	strict  bool
	pool    sync.Pool
	invalid uint64
}

type connState struct {
	state tcpState
}

// Class implements Element.
func (*ConnTrack) Class() string { return "ConnTrack" }

// Configure implements Element.
func (e *ConnTrack) Configure(args []string, ctx *Context) error {
	e.strict = true
	for _, arg := range args {
		key, val, _ := strings.Cut(arg, " ")
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "MODE":
			switch val {
			case "strict", "":
				e.strict = true
			case "loose":
				e.strict = false
			default:
				return fmt.Errorf("ConnTrack: unknown MODE %q", val)
			}
		default:
			return fmt.Errorf("ConnTrack: unknown argument %q", key)
		}
	}
	e.flows = ctx.Flows
	e.pool.New = func() any { return new(connState) }
	slot, err := ctx.Flows.RegisterSlot("ConnTrack/"+e.Name(), func(v any) {
		e.pool.Put(v)
		e.FlowStateReleased()
	})
	if err != nil {
		return fmt.Errorf("ConnTrack: %w", err)
	}
	e.slot = slot
	return nil
}

// InPorts implements Element.
func (*ConnTrack) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*ConnTrack) OutPorts() int { return 1 }

// Push implements Element.
func (e *ConnTrack) Push(_ int, p *Packet) {
	entry, dir := e.TrackFlow(e.flows, p)
	if p.IP.Protocol != packet.ProtoTCP {
		e.Forward(0, p)
		return
	}
	flags, _, _, ok := tcpSegment(p.IP.Payload)
	if !ok {
		e.invalid++
		if e.strict {
			p.Drop(e.Name())
			return
		}
		e.Forward(0, p)
		return
	}
	st, _ := entry.Get(e.slot).(*connState)
	if st == nil {
		st = e.pool.Get().(*connState)
		st.state = tcpNone
		entry.Set(e.slot, st)
		e.FlowStateCreated()
	}
	next, valid := tcpTransition(st.state, dir, flags)
	if !valid {
		e.invalid++
		if e.strict {
			p.Drop(e.Name())
			return
		}
		e.Forward(0, p)
		return
	}
	st.state = next
	e.Forward(0, p)
}

// Invalid reports segments rejected by the state machine.
func (e *ConnTrack) Invalid() uint64 { return e.invalid }

// StateOf reports the tracked connection state for a 5-tuple — test and
// diagnostic surface.
func (e *ConnTrack) StateOf(f packet.Flow) (string, bool) {
	entry, ok := e.flows.Lookup(f)
	if !ok {
		return "", false
	}
	st, ok := entry.Get(e.slot).(*connState)
	if !ok {
		return "", false
	}
	return st.state.String(), true
}

// FlowNAT rewrites each flow's initiator endpoint to a configured NAT
// address with a per-flow port from a bounded range (masquerading), and
// restores replies addressed to that NAT endpoint. Transport checksums
// are patched incrementally (RFC 1624), never recomputed.
//
// Configuration:
//
//	FlowNAT(ADDR 198.51.100.1, PORTS 40000-40999)
//
// Place it before other stateful elements: replies are translated back
// to the original 5-tuple on entry, so downstream elements (and the flow
// table) only ever see pre-NAT flows. The port map travels across
// hot-swaps via StateCarrier as long as the address and port range are
// unchanged; changing either resets the bindings.
type FlowNAT struct {
	Base
	flows     *flow.Context
	slot      flow.Slot
	natAddr   packet.Addr
	portBase  uint16
	portCount int

	freePorts []uint16
	portMap   map[uint16]*natState
	pool      sync.Pool
	exhausted uint64
}

type natState struct {
	origAddr packet.Addr
	origPort uint16
	natPort  uint16
}

// Class implements Element.
func (*FlowNAT) Class() string { return "FlowNAT" }

// Configure implements Element.
func (e *FlowNAT) Configure(args []string, ctx *Context) error {
	e.portBase, e.portCount = 40000, 1000
	var haveAddr bool
	for _, arg := range args {
		key, val, _ := strings.Cut(arg, " ")
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "ADDR":
			addr, err := packet.ParseAddr(val)
			if err != nil {
				return fmt.Errorf("FlowNAT: bad ADDR %q", val)
			}
			e.natAddr = addr
			haveAddr = true
		case "PORTS":
			lo, hi, okRange := strings.Cut(val, "-")
			l, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 16)
			h, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 16)
			if !okRange || err1 != nil || err2 != nil || h < l || l == 0 {
				return fmt.Errorf("FlowNAT: bad PORTS %q (want lo-hi)", val)
			}
			e.portBase, e.portCount = uint16(l), int(h-l)+1
		default:
			return fmt.Errorf("FlowNAT: unknown argument %q", key)
		}
	}
	if !haveAddr {
		return fmt.Errorf("FlowNAT: ADDR is required")
	}
	e.flows = ctx.Flows
	e.pool.New = func() any { return new(natState) }
	e.portMap = make(map[uint16]*natState, e.portCount)
	e.freePorts = make([]uint16, 0, e.portCount)
	for i := e.portCount - 1; i >= 0; i-- { // pop order: lowest port first
		e.freePorts = append(e.freePorts, e.portBase+uint16(i))
	}
	slot, err := ctx.Flows.RegisterSlot("FlowNAT/"+e.Name(), func(v any) {
		st := v.(*natState)
		// Free the port only if it is still mapped to this very state:
		// after a hot-swap that reset the bindings (TakeState bailed) the
		// port may belong to a different flow, and releasing a stale
		// record must not double-free it.
		if e.portMap[st.natPort] == st {
			delete(e.portMap, st.natPort)
			e.freePorts = append(e.freePorts, st.natPort)
		}
		e.pool.Put(st)
		e.FlowStateReleased()
	})
	if err != nil {
		return fmt.Errorf("FlowNAT: %w", err)
	}
	e.slot = slot
	return nil
}

// TakeState implements StateCarrier: live port bindings survive a
// hot-swap when the NAT address and port range are unchanged.
func (e *FlowNAT) TakeState(old Element) {
	prev, ok := old.(*FlowNAT)
	if !ok || prev.natAddr != e.natAddr || prev.portBase != e.portBase || prev.portCount != e.portCount {
		return
	}
	e.freePorts = append(e.freePorts[:0], prev.freePorts...)
	for port, st := range prev.portMap {
		e.portMap[port] = st
	}
	e.exhausted = prev.exhausted
}

// InPorts implements Element.
func (*FlowNAT) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*FlowNAT) OutPorts() int { return 1 }

// Push implements Element.
func (e *FlowNAT) Push(_ int, p *Packet) {
	ip := p.IP
	if ip.Protocol != packet.ProtoTCP && ip.Protocol != packet.ProtoUDP {
		e.TrackFlow(e.flows, p)
		e.Forward(0, p)
		return
	}
	if len(ip.Payload) < 4 {
		e.Forward(0, p)
		return
	}
	// Reply path first: restore the original endpoint before the flow
	// lookup, so the flow table and downstream elements see pre-NAT
	// 5-tuples only.
	if ip.Dst == e.natAddr {
		dstPort := binary.BigEndian.Uint16(ip.Payload[2:4])
		if st, ok := e.portMap[dstPort]; ok {
			if !e.rewrite(ip, false, st.origAddr, st.origPort) {
				p.Drop(e.Name())
				return
			}
			p.MarkModified()
			e.TrackFlow(e.flows, p)
			e.Forward(0, p)
			return
		}
	}
	entry, _ := e.TrackFlow(e.flows, p)
	st, _ := entry.Get(e.slot).(*natState)
	// A state whose port is not mapped back to it is stale: a hot-swap
	// reset the bindings (TakeState bailed on an address or range change)
	// while the flow entry kept its record. Rebind it to a fresh port in
	// place instead of rewriting to a port we no longer own.
	fresh, stale := st == nil, st != nil && e.portMap[st.natPort] != st
	if fresh || stale {
		n := len(e.freePorts)
		if n == 0 {
			e.exhausted++
			p.Drop(e.Name())
			return
		}
		port := e.freePorts[n-1]
		e.freePorts = e.freePorts[:n-1]
		if fresh {
			st = e.pool.Get().(*natState)
			entry.Set(e.slot, st)
			e.FlowStateCreated()
		}
		st.origAddr = ip.Src
		st.origPort = binary.BigEndian.Uint16(ip.Payload[0:2])
		st.natPort = port
		e.portMap[port] = st
	}
	if !e.rewrite(ip, true, e.natAddr, st.natPort) {
		p.Drop(e.Name())
		return
	}
	p.MarkModified()
	e.Forward(0, p)
}

// rewrite replaces the packet's source (src=true) or destination
// endpoint and patches the transport checksum incrementally. The IPv4
// header checksum is recomputed on re-marshal (MarkModified). It reports
// false — touching nothing — when the transport header is too short to
// hold its checksum: rewriting the port without fixing the checksum
// would emit a corrupted packet.
func (e *FlowNAT) rewrite(ip *packet.IPv4, src bool, addr packet.Addr, port uint16) bool {
	var sumOff int
	switch ip.Protocol {
	case packet.ProtoTCP:
		sumOff = 16
	case packet.ProtoUDP:
		sumOff = 6
	}
	if len(ip.Payload) < sumOff+2 {
		return false
	}
	var oldAddr packet.Addr
	var oldPort uint16
	if src {
		oldAddr, ip.Src = ip.Src, addr
		oldPort = binary.BigEndian.Uint16(ip.Payload[0:2])
		binary.BigEndian.PutUint16(ip.Payload[0:2], port)
	} else {
		oldAddr, ip.Dst = ip.Dst, addr
		oldPort = binary.BigEndian.Uint16(ip.Payload[2:4])
		binary.BigEndian.PutUint16(ip.Payload[2:4], port)
	}
	sum := binary.BigEndian.Uint16(ip.Payload[sumOff : sumOff+2])
	if ip.Protocol == packet.ProtoUDP && sum == 0 {
		return true // checksum disabled (RFC 768)
	}
	sum = packet.UpdateChecksum32(sum, oldAddr.Uint32(), addr.Uint32())
	sum = packet.UpdateChecksum16(sum, oldPort, port)
	if ip.Protocol == packet.ProtoUDP && sum == 0 {
		// A UDP checksum that folds to zero must go on the wire as 0xFFFF:
		// a transmitted 0 means "no checksum" (RFC 768, RFC 1624 §4), and
		// the reply path's disabled-checksum guard would then skip
		// restoring it.
		sum = 0xffff
	}
	binary.BigEndian.PutUint16(ip.Payload[sumOff:sumOff+2], sum)
	return true
}

// Exhausted reports packets dropped because the port range was full.
func (e *FlowNAT) Exhausted() uint64 { return e.exhausted }

// ActiveBindings reports live NAT port bindings.
func (e *FlowNAT) ActiveBindings() int { return len(e.portMap) }

// FlowRateLimit shapes each flow independently with a per-flow token
// bucket — per-subscriber fairness instead of the aggregate bucket of
// TrustedSplitter/UntrustedSplitter.
//
// Configuration:
//
//	FlowRateLimit(RATE 10M, BURST 65536)
//
// RATE is bits/s (k/M/G suffixes); BURST is the per-flow bucket capacity
// in bytes. Non-conforming packets are dropped. Bucket levels live in the
// flow table and therefore survive hot-swaps.
type FlowRateLimit struct {
	Base
	flows   *flow.Context
	slot    flow.Slot
	rateBps float64 // bytes per second
	burst   float64
	now     func() time.Time
	pool    sync.Pool
	shaped  uint64
}

type rlState struct {
	tokens float64
	last   int64 // unix nanoseconds of the last refill
}

// Class implements Element.
func (*FlowRateLimit) Class() string { return "FlowRateLimit" }

// Configure implements Element.
func (e *FlowRateLimit) Configure(args []string, ctx *Context) error {
	e.rateBps = 12.5e6 // 100 Mbit/s default
	e.burst = 256 << 10
	for _, arg := range args {
		key, val, _ := strings.Cut(arg, " ")
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "RATE":
			bits, err := parseRate(val)
			if err != nil {
				return fmt.Errorf("FlowRateLimit: bad RATE %q", val)
			}
			e.rateBps = bits / 8
		case "BURST":
			n, err := strconv.ParseFloat(val, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("FlowRateLimit: bad BURST %q", val)
			}
			e.burst = n
		default:
			return fmt.Errorf("FlowRateLimit: unknown argument %q", key)
		}
	}
	e.flows = ctx.Flows
	e.now = ctx.SystemTime
	e.pool.New = func() any { return new(rlState) }
	slot, err := ctx.Flows.RegisterSlot("FlowRateLimit/"+e.Name(), func(v any) {
		e.pool.Put(v)
		e.FlowStateReleased()
	})
	if err != nil {
		return fmt.Errorf("FlowRateLimit: %w", err)
	}
	e.slot = slot
	return nil
}

// InPorts implements Element.
func (*FlowRateLimit) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*FlowRateLimit) OutPorts() int { return 1 }

// Push implements Element.
func (e *FlowRateLimit) Push(_ int, p *Packet) {
	entry, _ := e.TrackFlow(e.flows, p)
	now := e.now().UnixNano()
	st, _ := entry.Get(e.slot).(*rlState)
	if st == nil {
		st = e.pool.Get().(*rlState)
		st.tokens = e.burst
		st.last = now
		entry.Set(e.slot, st)
		e.FlowStateCreated()
	}
	if dt := now - st.last; dt > 0 {
		st.tokens += float64(dt) / 1e9 * e.rateBps
		if st.tokens > e.burst {
			st.tokens = e.burst
		}
	}
	st.last = now
	need := float64(p.IP.Len())
	if st.tokens < need {
		e.shaped++
		p.Drop(e.Name())
		return
	}
	st.tokens -= need
	e.Forward(0, p)
}

// Shaped reports packets dropped for exceeding their flow's rate.
func (e *FlowRateLimit) Shaped() uint64 { return e.shaped }

// StreamAssembler reassembles each TCP direction's in-order byte stream
// across packet boundaries and publishes it as the packet's Plaintext
// annotation, so a downstream IDSMatcher matches signatures that span
// segments — the cross-packet evasion the paper's per-packet IDS misses.
//
// Configuration:
//
//	StreamAssembler(WINDOW 8192)
//
// WINDOW bounds the bytes buffered per direction per flow; the newest
// bytes win when it overflows. Out-of-order segments reset the window to
// the new segment (no retransmission queue — this is IDS-grade
// reassembly, not a TCP implementation).
type StreamAssembler struct {
	Base
	flows  *flow.Context
	slot   flow.Slot
	window int
	pool   sync.Pool
	gaps   uint64
}

type streamDir struct {
	expected uint32
	buf      []byte
	started  bool
}

type streamState struct {
	dirs [2]streamDir
}

// Class implements Element.
func (*StreamAssembler) Class() string { return "StreamAssembler" }

// Configure implements Element.
func (e *StreamAssembler) Configure(args []string, ctx *Context) error {
	e.window = 8192
	for _, arg := range args {
		key, val, _ := strings.Cut(arg, " ")
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "WINDOW":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("StreamAssembler: bad WINDOW %q", val)
			}
			e.window = n
		default:
			return fmt.Errorf("StreamAssembler: unknown argument %q", key)
		}
	}
	e.flows = ctx.Flows
	window := e.window
	e.pool.New = func() any {
		return &streamState{dirs: [2]streamDir{
			{buf: make([]byte, 0, window)},
			{buf: make([]byte, 0, window)},
		}}
	}
	slot, err := ctx.Flows.RegisterSlot("StreamAssembler/"+e.Name(), func(v any) {
		st := v.(*streamState)
		for i := range st.dirs {
			st.dirs[i].buf = st.dirs[i].buf[:0]
			st.dirs[i].started = false
		}
		e.pool.Put(st)
		e.FlowStateReleased()
	})
	if err != nil {
		return fmt.Errorf("StreamAssembler: %w", err)
	}
	e.slot = slot
	return nil
}

// InPorts implements Element.
func (*StreamAssembler) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*StreamAssembler) OutPorts() int { return 1 }

// Push implements Element.
func (e *StreamAssembler) Push(_ int, p *Packet) {
	if p.IP.Protocol != packet.ProtoTCP {
		e.Forward(0, p)
		return
	}
	flags, seq, data, ok := tcpSegment(p.IP.Payload)
	if !ok {
		e.Forward(0, p)
		return
	}
	entry, dir := e.TrackFlow(e.flows, p)
	st, _ := entry.Get(e.slot).(*streamState)
	if st == nil {
		st = e.pool.Get().(*streamState)
		entry.Set(e.slot, st)
		e.FlowStateCreated()
	}
	d := &st.dirs[dir]
	if flags&packet.TCPSyn != 0 {
		d.expected = seq + 1 // SYN occupies one sequence number
		d.buf = d.buf[:0]
		d.started = true
	}
	if len(data) > 0 {
		switch {
		case !d.started:
			d.started = true
			d.expected = seq
			fallthrough
		case seq == d.expected:
			d.append(data, e.window)
			d.expected = seq + uint32(len(data))
		default:
			// Gap or retransmission: restart the window at this segment.
			e.gaps++
			d.buf = d.buf[:0]
			d.append(data, e.window)
			d.expected = seq + uint32(len(data))
		}
		if len(d.buf) > 0 {
			p.Plaintext = d.buf
		}
	}
	e.Forward(0, p)
}

// append adds data to the direction's window, keeping the newest bytes
// when the window overflows. It never grows buf past its initial
// capacity, so the packet path stays allocation-free.
func (d *streamDir) append(data []byte, window int) {
	if len(data) >= window {
		d.buf = append(d.buf[:0], data[len(data)-window:]...)
		return
	}
	if over := len(d.buf) + len(data) - window; over > 0 {
		n := copy(d.buf, d.buf[over:])
		d.buf = d.buf[:n]
	}
	d.buf = append(d.buf, data...)
}

// Gaps reports segments that arrived out of order and reset the window.
func (e *StreamAssembler) Gaps() uint64 { return e.gaps }
