package click

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"endbox/internal/packet"
)

// FromDevice is the graph's entry point. In EndBox the VPN client pushes
// every tunnelled packet here after decryption (ingress) or before
// encryption (egress); in vanilla Click it reads from a network device,
// which is why it performs device setup when not managed by the VPN.
type FromDevice struct {
	Base
}

// Class implements Element.
func (*FromDevice) Class() string { return "FromDevice" }

// Configure implements Element.
func (e *FromDevice) Configure(args []string, ctx *Context) error {
	if ctx.DeviceSetup != nil {
		if err := ctx.DeviceSetup(); err != nil {
			return fmt.Errorf("FromDevice: %w", err)
		}
	}
	return nil
}

// InPorts implements Element.
func (*FromDevice) InPorts() int { return 0 }

// OutPorts implements Element.
func (*FromDevice) OutPorts() int { return 1 }

// Push implements Element.
func (e *FromDevice) Push(_ int, p *Packet) { e.Forward(0, p) }

// ToDevice is the graph's exit point. EndBox's modified ToDevice signals
// the VPN whether the packet was accepted (paper §IV change (i)).
type ToDevice struct {
	Base
	packets atomic.Uint64
}

// Class implements Element.
func (*ToDevice) Class() string { return "ToDevice" }

// Configure implements Element.
func (e *ToDevice) Configure(args []string, ctx *Context) error {
	if ctx.DeviceSetup != nil {
		if err := ctx.DeviceSetup(); err != nil {
			return fmt.Errorf("ToDevice: %w", err)
		}
	}
	return nil
}

// InPorts implements Element.
func (*ToDevice) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*ToDevice) OutPorts() int { return 0 }

// Push implements Element.
func (e *ToDevice) Push(_ int, p *Packet) {
	if !p.Dropped() {
		p.delivered = true
		e.packets.Add(1)
	}
}

// Delivered reports how many packets this ToDevice accepted.
func (e *ToDevice) Delivered() uint64 { return e.packets.Load() }

// Discard silently drops every packet it receives.
type Discard struct {
	Base
	packets atomic.Uint64
}

// Class implements Element.
func (*Discard) Class() string { return "Discard" }

// Configure implements Element.
func (*Discard) Configure([]string, *Context) error { return nil }

// InPorts implements Element.
func (*Discard) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*Discard) OutPorts() int { return 0 }

// Push implements Element.
func (e *Discard) Push(_ int, p *Packet) {
	e.packets.Add(1)
	p.Drop(e.Name())
}

// Count reports how many packets were discarded.
func (e *Discard) Count() uint64 { return e.packets.Load() }

// Counter counts packets and bytes passing through, surviving hot-swaps.
type Counter struct {
	Base
	packets atomic.Uint64
	bytes   atomic.Uint64
}

// Class implements Element.
func (*Counter) Class() string { return "Counter" }

// Configure implements Element.
func (*Counter) Configure([]string, *Context) error { return nil }

// InPorts implements Element.
func (*Counter) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*Counter) OutPorts() int { return 1 }

// Push implements Element.
func (e *Counter) Push(_ int, p *Packet) {
	e.packets.Add(1)
	e.bytes.Add(uint64(p.IP.Len()))
	e.Forward(0, p)
}

// Packets reports the packet count.
func (e *Counter) Packets() uint64 { return e.packets.Load() }

// Bytes reports the byte count.
func (e *Counter) Bytes() uint64 { return e.bytes.Load() }

// TakeState implements StateCarrier: counts survive hot-swaps.
func (e *Counter) TakeState(old Element) {
	if prev, ok := old.(*Counter); ok {
		e.packets.Store(prev.packets.Load())
		e.bytes.Store(prev.bytes.Load())
	}
}

// Tee duplicates each packet to every connected output; the original goes
// to output 0 and clones to the rest.
type Tee struct {
	Base
}

// Class implements Element.
func (*Tee) Class() string { return "Tee" }

// Configure implements Element.
func (*Tee) Configure([]string, *Context) error { return nil }

// InPorts implements Element.
func (*Tee) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*Tee) OutPorts() int { return AnyPorts }

// Push implements Element.
func (e *Tee) Push(_ int, p *Packet) {
	n := e.outputCount()
	for i := 1; i < n; i++ {
		e.Forward(i, p.clone())
	}
	if n > 0 {
		e.Forward(0, p)
	}
}

// SetTOS overwrites the IPv4 TOS byte; EndBox uses it with value 0xeb to
// flag packets already processed by a peer client (paper §IV-A).
type SetTOS struct {
	Base
	tos byte
}

// Class implements Element.
func (*SetTOS) Class() string { return "SetTOS" }

// Configure implements Element.
func (e *SetTOS) Configure(args []string, _ *Context) error {
	if len(args) != 1 {
		return fmt.Errorf("SetTOS: want 1 argument, got %d", len(args))
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 8)
	if err != nil {
		return fmt.Errorf("SetTOS: bad TOS value %q", args[0])
	}
	e.tos = byte(v)
	return nil
}

// InPorts implements Element.
func (*SetTOS) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*SetTOS) OutPorts() int { return 1 }

// Push implements Element.
func (e *SetTOS) Push(_ int, p *Packet) {
	if p.IP.TOS != e.tos {
		p.IP.TOS = e.tos
		p.MarkModified()
	}
	e.Forward(0, p)
}

// CheckIPHeader drops packets with obviously invalid headers (expired TTL,
// zero-length totals); well-formedness was already verified during parsing.
type CheckIPHeader struct {
	Base
	drops atomic.Uint64
}

// Class implements Element.
func (*CheckIPHeader) Class() string { return "CheckIPHeader" }

// Configure implements Element.
func (*CheckIPHeader) Configure([]string, *Context) error { return nil }

// InPorts implements Element.
func (*CheckIPHeader) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*CheckIPHeader) OutPorts() int { return 1 }

// Push implements Element.
func (e *CheckIPHeader) Push(_ int, p *Packet) {
	if p.IP.TTL == 0 || int(p.IP.TotalLen) < packet.IPv4HeaderLen {
		e.drops.Add(1)
		p.Drop(e.Name())
		return
	}
	e.Forward(0, p)
}

// Drops reports rejected packets.
func (e *CheckIPHeader) Drops() uint64 { return e.drops.Load() }

// RoundRobinSwitch distributes packets across its outputs in round-robin
// order — the paper's load-balancing element (§V-B: "allows us to balance
// IP packets or TCP flows across several machines").
type RoundRobinSwitch struct {
	Base
	next atomic.Uint64
}

// Class implements Element.
func (*RoundRobinSwitch) Class() string { return "RoundRobinSwitch" }

// Configure implements Element.
func (*RoundRobinSwitch) Configure([]string, *Context) error { return nil }

// InPorts implements Element.
func (*RoundRobinSwitch) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*RoundRobinSwitch) OutPorts() int { return AnyPorts }

// Push implements Element.
func (e *RoundRobinSwitch) Push(_ int, p *Packet) {
	n := e.outputCount()
	if n == 0 {
		p.Drop(e.Name())
		return
	}
	out := int(e.next.Add(1)-1) % n
	p.Backend = out
	e.Forward(out, p)
}

// TakeState implements StateCarrier: the rotation position survives swaps.
func (e *RoundRobinSwitch) TakeState(old Element) {
	if prev, ok := old.(*RoundRobinSwitch); ok {
		e.next.Store(prev.next.Load())
	}
}

// filterRule is one compiled IPFilter clause.
type filterRule struct {
	allow bool
	conds []func(*packet.IPv4, packet.Flow) bool
}

// IPFilter implements the firewall element (paper §V-B). Configuration
// arguments are clauses evaluated in order; the first match decides, and
// packets matching no clause are dropped (vanilla IPFilter semantics):
//
//	IPFilter(drop src net 10.9.0.0/16, allow dst port 80 && proto tcp, allow all)
//
// Supported conditions: all, proto tcp|udp|icmp, src/dst host A.B.C.D,
// src/dst net A.B.C.D/bits, src/dst port N[-M], tos N, joined with &&.
type IPFilter struct {
	Base
	rules []filterRule
	drops atomic.Uint64
}

// Class implements Element.
func (*IPFilter) Class() string { return "IPFilter" }

// Configure implements Element.
func (e *IPFilter) Configure(args []string, _ *Context) error {
	if len(args) == 0 {
		return fmt.Errorf("IPFilter: need at least one clause")
	}
	for _, arg := range args {
		rule, err := parseFilterRule(arg)
		if err != nil {
			return err
		}
		e.rules = append(e.rules, rule)
	}
	return nil
}

func parseFilterRule(arg string) (filterRule, error) {
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return filterRule{}, fmt.Errorf("IPFilter: empty clause")
	}
	var rule filterRule
	switch fields[0] {
	case "allow", "accept":
		rule.allow = true
	case "drop", "deny":
		rule.allow = false
	default:
		return filterRule{}, fmt.Errorf("IPFilter: clause must start with allow/drop, got %q", fields[0])
	}
	rest := strings.Join(fields[1:], " ")
	for _, condText := range strings.Split(rest, "&&") {
		cond, err := parseFilterCond(strings.Fields(condText))
		if err != nil {
			return filterRule{}, err
		}
		rule.conds = append(rule.conds, cond)
	}
	return rule, nil
}

func parseFilterCond(f []string) (func(*packet.IPv4, packet.Flow) bool, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("IPFilter: empty condition")
	}
	switch f[0] {
	case "all", "any":
		return func(*packet.IPv4, packet.Flow) bool { return true }, nil
	case "proto":
		if len(f) != 2 {
			return nil, fmt.Errorf("IPFilter: proto needs a protocol name")
		}
		var want byte
		switch f[1] {
		case "tcp":
			want = packet.ProtoTCP
		case "udp":
			want = packet.ProtoUDP
		case "icmp":
			want = packet.ProtoICMP
		default:
			return nil, fmt.Errorf("IPFilter: unknown protocol %q", f[1])
		}
		return func(ip *packet.IPv4, _ packet.Flow) bool { return ip.Protocol == want }, nil
	case "tos":
		if len(f) != 2 {
			return nil, fmt.Errorf("IPFilter: tos needs a value")
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(f[1], "0x"), 16, 8)
		if err != nil {
			return nil, fmt.Errorf("IPFilter: bad tos %q", f[1])
		}
		return func(ip *packet.IPv4, _ packet.Flow) bool { return ip.TOS == byte(v) }, nil
	case "src", "dst":
		if len(f) != 3 {
			return nil, fmt.Errorf("IPFilter: %s needs host/net/port and a value", f[0])
		}
		isSrc := f[0] == "src"
		switch f[1] {
		case "host":
			addr, err := packet.ParseAddr(f[2])
			if err != nil {
				return nil, fmt.Errorf("IPFilter: %w", err)
			}
			return func(ip *packet.IPv4, _ packet.Flow) bool {
				if isSrc {
					return ip.Src == addr
				}
				return ip.Dst == addr
			}, nil
		case "net":
			base, bits, err := parseCIDR(f[2])
			if err != nil {
				return nil, err
			}
			mask := cidrMask(bits)
			want := base.Uint32() & mask
			return func(ip *packet.IPv4, _ packet.Flow) bool {
				a := ip.Src
				if !isSrc {
					a = ip.Dst
				}
				return a.Uint32()&mask == want
			}, nil
		case "port":
			lo, hi, err := parsePortRange(f[2])
			if err != nil {
				return nil, err
			}
			return func(_ *packet.IPv4, fl packet.Flow) bool {
				p := fl.SrcPort
				if !isSrc {
					p = fl.DstPort
				}
				return p >= lo && p <= hi
			}, nil
		default:
			return nil, fmt.Errorf("IPFilter: unknown qualifier %q", f[1])
		}
	default:
		return nil, fmt.Errorf("IPFilter: unknown condition %q", f[0])
	}
}

func parseCIDR(s string) (packet.Addr, int, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		addr, err := packet.ParseAddr(s)
		return addr, 32, err
	}
	addr, err := packet.ParseAddr(s[:i])
	if err != nil {
		return packet.Addr{}, 0, fmt.Errorf("IPFilter: %w", err)
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return packet.Addr{}, 0, fmt.Errorf("IPFilter: bad prefix %q", s)
	}
	return addr, bits, nil
}

func cidrMask(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(bits))
}

func parsePortRange(s string) (uint16, uint16, error) {
	lo, hi := s, s
	if i := strings.IndexByte(s, '-'); i >= 0 {
		lo, hi = s[:i], s[i+1:]
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("IPFilter: bad port %q", s)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil || h < l {
		return 0, 0, fmt.Errorf("IPFilter: bad port range %q", s)
	}
	return uint16(l), uint16(h), nil
}

// InPorts implements Element.
func (*IPFilter) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*IPFilter) OutPorts() int { return 1 }

// Push implements Element.
func (e *IPFilter) Push(_ int, p *Packet) {
	flow := packet.FlowOf(p.IP)
	for _, r := range e.rules {
		matched := true
		for _, cond := range r.conds {
			if !cond(p.IP, flow) {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		if r.allow {
			e.Forward(0, p)
			return
		}
		e.drops.Add(1)
		p.Drop(e.Name())
		return
	}
	// Vanilla IPFilter drops packets that match no clause.
	e.drops.Add(1)
	p.Drop(e.Name())
}

// Drops reports the number of filtered packets.
func (e *IPFilter) Drops() uint64 { return e.drops.Load() }

// IPClassifier routes packets to the output whose pattern matches first.
// Patterns: "tcp", "udp", "icmp", optionally "... port N", or "-" for the
// rest. Unmatched packets are dropped.
type IPClassifier struct {
	Base
	patterns []func(*packet.IPv4, packet.Flow) bool
}

// Class implements Element.
func (*IPClassifier) Class() string { return "IPClassifier" }

// Configure implements Element.
func (e *IPClassifier) Configure(args []string, _ *Context) error {
	if len(args) == 0 {
		return fmt.Errorf("IPClassifier: need at least one pattern")
	}
	for _, arg := range args {
		fields := strings.Fields(arg)
		if len(fields) == 1 && fields[0] == "-" {
			e.patterns = append(e.patterns, func(*packet.IPv4, packet.Flow) bool { return true })
			continue
		}
		var proto byte
		var port uint16
		hasPort := false
		for i := 0; i < len(fields); i++ {
			switch fields[i] {
			case "tcp":
				proto = packet.ProtoTCP
			case "udp":
				proto = packet.ProtoUDP
			case "icmp":
				proto = packet.ProtoICMP
			case "port":
				if i+1 >= len(fields) {
					return fmt.Errorf("IPClassifier: port needs a number in %q", arg)
				}
				v, err := strconv.ParseUint(fields[i+1], 10, 16)
				if err != nil {
					return fmt.Errorf("IPClassifier: bad port in %q", arg)
				}
				port = uint16(v)
				hasPort = true
				i++
			default:
				return fmt.Errorf("IPClassifier: unknown pattern token %q", fields[i])
			}
		}
		wantProto, wantPort, p := proto, port, hasPort
		e.patterns = append(e.patterns, func(ip *packet.IPv4, fl packet.Flow) bool {
			if wantProto != 0 && ip.Protocol != wantProto {
				return false
			}
			if p && fl.SrcPort != wantPort && fl.DstPort != wantPort {
				return false
			}
			return true
		})
	}
	return nil
}

// InPorts implements Element.
func (*IPClassifier) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (e *IPClassifier) OutPorts() int { return len(e.patterns) }

// Push implements Element.
func (e *IPClassifier) Push(_ int, p *Packet) {
	flow := packet.FlowOf(p.IP)
	for i, match := range e.patterns {
		if match(p.IP, flow) {
			e.Forward(i, p)
			return
		}
	}
	p.Drop(e.Name())
}
