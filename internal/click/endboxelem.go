package click

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/tlstap"
)

// IDSMatcher is EndBox's custom intrusion detection element (paper §V-B):
// Snort rule sets matched with Aho–Corasick inside the enclave.
//
// Configuration:
//
//	IDSMatcher(RULESET community)              // rules from the config store
//	IDSMatcher(RULESET web, MODE enforce)      // drop on match (IPS mode)
//
// MODE alert (default) forwards matching packets and raises alerts; MODE
// enforce honours rule actions, dropping packets matched by drop rules.
// When the TLSDecrypt element placed upstream recovered plaintext, content
// rules inspect the plaintext instead of the TLS ciphertext.
type IDSMatcher struct {
	Base
	engine  *idps.Engine
	enforce bool
	alert   func(Alert)
}

// Class implements Element.
func (*IDSMatcher) Class() string { return "IDSMatcher" }

// Configure implements Element.
func (e *IDSMatcher) Configure(args []string, ctx *Context) error {
	ruleset := "community"
	for _, arg := range args {
		key, val, _ := strings.Cut(arg, " ")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "RULESET":
			if val == "" {
				return fmt.Errorf("IDSMatcher: RULESET needs a name")
			}
			ruleset = val
		case "MODE":
			switch val {
			case "alert", "":
				e.enforce = false
			case "enforce":
				e.enforce = true
			default:
				return fmt.Errorf("IDSMatcher: unknown MODE %q", val)
			}
		default:
			return fmt.Errorf("IDSMatcher: unknown argument %q", key)
		}
	}
	text, err := ctx.RuleSet(ruleset)
	if err != nil {
		return fmt.Errorf("IDSMatcher: %w", err)
	}
	rules, err := idps.ParseRules(text)
	if err != nil {
		return fmt.Errorf("IDSMatcher: %w", err)
	}
	if len(rules) == 0 {
		// An empty rule set would compile into a matcher that inspects
		// nothing — surface the misconfiguration at build time instead of
		// silently running a NOP stage.
		return fmt.Errorf("IDSMatcher: rule set %q contains no rules", ruleset)
	}
	engine, err := idps.NewEngine(rules)
	if err != nil {
		return fmt.Errorf("IDSMatcher: %w", err)
	}
	e.engine = engine
	e.alert = ctx.Alert
	return nil
}

// InPorts implements Element.
func (*IDSMatcher) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*IDSMatcher) OutPorts() int { return 1 }

// Push implements Element.
func (e *IDSMatcher) Push(_ int, p *Packet) {
	var res idps.Result
	if p.Plaintext != nil {
		res = e.engine.EvaluatePayload(p.IP, p.Plaintext)
	} else {
		res = e.engine.Evaluate(p.IP)
	}
	for _, a := range res.Alerts {
		e.alert(Alert{Element: e.Name(), Class: e.Class(), SID: a.SID, Msg: a.Msg})
	}
	if e.enforce && res.Verdict == idps.VerdictDrop {
		p.Drop(e.Name())
		return
	}
	e.Forward(0, p)
}

// Stats exposes the underlying engine counters.
func (e *IDSMatcher) Stats() idps.Stats { return e.engine.Stats() }

// splitter is the shared token-bucket shaping logic behind TrustedSplitter
// and UntrustedSplitter. Conforming packets leave on output 0; excess
// packets leave on output 1 when connected and are dropped otherwise.
type splitter struct {
	Base
	rateBps     float64 // bytes per second
	burst       float64 // bucket capacity in bytes
	sampleEvery uint64

	now func() time.Time

	tokens     float64
	lastSample time.Time
	sinceProbe uint64
	shaped     uint64
	passed     uint64
}

// configureSplitter parses RATE (bits/s, with k/M/G suffixes), BURST
// (bytes) and SAMPLE (packets between time probes).
func (s *splitter) configureSplitter(args []string, defaultSample uint64) error {
	s.sampleEvery = defaultSample
	s.rateBps = 12.5e6 // 100 Mbit/s default
	s.burst = 256 << 10
	for _, arg := range args {
		key, val, ok := strings.Cut(arg, " ")
		if !ok {
			return fmt.Errorf("splitter: argument %q needs a value", arg)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "RATE":
			bits, err := parseRate(val)
			if err != nil {
				return err
			}
			s.rateBps = bits / 8
		case "BURST":
			n, err := strconv.ParseFloat(val, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("splitter: bad BURST %q", val)
			}
			s.burst = n
		case "SAMPLE":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("splitter: bad SAMPLE %q", val)
			}
			s.sampleEvery = n
		default:
			return fmt.Errorf("splitter: unknown argument %q", key)
		}
	}
	s.tokens = s.burst
	return nil
}

func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("splitter: bad RATE %q", s)
	}
	return v * mult, nil
}

func (s *splitter) InPorts() int  { return AnyPorts }
func (s *splitter) OutPorts() int { return 2 }

// optionalOutputs lets output 1 (excess traffic) stay unconnected.
func (s *splitter) optionalOutputs() bool { return true }

func (s *splitter) Push(_ int, p *Packet) {
	s.sinceProbe++
	if s.lastSample.IsZero() || s.sinceProbe >= s.sampleEvery {
		now := s.now()
		if !s.lastSample.IsZero() {
			dt := now.Sub(s.lastSample).Seconds()
			if dt > 0 {
				s.tokens += dt * s.rateBps
				if s.tokens > s.burst {
					s.tokens = s.burst
				}
			}
		}
		s.lastSample = now
		s.sinceProbe = 0
	}
	need := float64(p.IP.Len())
	if s.tokens >= need {
		s.tokens -= need
		s.passed++
		s.Forward(0, p)
		return
	}
	s.shaped++
	if _, _, ok := s.forwardTarget(1); ok {
		s.Forward(1, p)
		return
	}
	p.Drop(s.Name())
}

// Shaped reports packets that exceeded the configured rate.
func (s *splitter) Shaped() uint64 { return s.shaped }

// Passed reports conforming packets.
func (s *splitter) Passed() uint64 { return s.passed }

// TrustedSplitter shapes traffic using the SGX trusted time source. Because
// trusted time calls are expensive, it samples timestamps only every SAMPLE
// packets — 500,000 in the paper's DDoS configuration (§V-B).
type TrustedSplitter struct {
	splitter
}

// DefaultTrustedSample is the paper's probe interval.
const DefaultTrustedSample = 500000

// Class implements Element.
func (*TrustedSplitter) Class() string { return "TrustedSplitter" }

// Configure implements Element.
func (e *TrustedSplitter) Configure(args []string, ctx *Context) error {
	e.now = ctx.TrustedTime
	return e.configureSplitter(args, DefaultTrustedSample)
}

// TakeState implements StateCarrier: bucket level survives hot-swaps.
func (e *TrustedSplitter) TakeState(old Element) {
	if prev, ok := old.(*TrustedSplitter); ok {
		e.tokens = prev.tokens
		e.lastSample = prev.lastSample
		e.shaped = prev.shaped
		e.passed = prev.passed
	}
}

// UntrustedSplitter is the server-side Click equivalent, reading the system
// clock on every packet (paper §V-B: "obtains timestamps using system
// calls").
type UntrustedSplitter struct {
	splitter
}

// Class implements Element.
func (*UntrustedSplitter) Class() string { return "UntrustedSplitter" }

// Configure implements Element.
func (e *UntrustedSplitter) Configure(args []string, ctx *Context) error {
	e.now = ctx.SystemTime
	return e.configureSplitter(args, 1)
}

// TakeState implements StateCarrier.
func (e *UntrustedSplitter) TakeState(old Element) {
	if prev, ok := old.(*UntrustedSplitter); ok {
		e.tokens = prev.tokens
		e.lastSample = prev.lastSample
		e.shaped = prev.shaped
		e.passed = prev.passed
	}
}

// TLSDecrypt recovers TLS application plaintext using session keys escrowed
// through the management interface (paper §III-D). Packets on the
// configured port whose flow has a known key get their Plaintext annotation
// set; flows without keys pass through unmodified — encrypted traffic from
// stock TLS libraries is simply not inspectable.
type TLSDecrypt struct {
	Base
	port      uint16
	keys      *tlstap.KeyTable
	alert     func(Alert)
	decrypted uint64
	missed    uint64
}

// Class implements Element.
func (*TLSDecrypt) Class() string { return "TLSDecrypt" }

// Configure implements Element.
func (e *TLSDecrypt) Configure(args []string, ctx *Context) error {
	e.port = 443
	for _, arg := range args {
		key, val, ok := strings.Cut(arg, " ")
		if !ok {
			return fmt.Errorf("TLSDecrypt: argument %q needs a value", arg)
		}
		switch strings.TrimSpace(key) {
		case "PORT":
			v, err := strconv.ParseUint(strings.TrimSpace(val), 10, 16)
			if err != nil {
				return fmt.Errorf("TLSDecrypt: bad PORT %q", val)
			}
			e.port = uint16(v)
		default:
			return fmt.Errorf("TLSDecrypt: unknown argument %q", key)
		}
	}
	if ctx.Keys == nil {
		return fmt.Errorf("TLSDecrypt: no session key table in context")
	}
	e.keys = ctx.Keys
	e.alert = ctx.Alert
	return nil
}

// InPorts implements Element.
func (*TLSDecrypt) InPorts() int { return AnyPorts }

// OutPorts implements Element.
func (*TLSDecrypt) OutPorts() int { return 1 }

// Push implements Element.
func (e *TLSDecrypt) Push(_ int, p *Packet) {
	if p.IP.Protocol != packet.ProtoTCP {
		e.Forward(0, p)
		return
	}
	flow := packet.FlowOf(p.IP)
	if flow.SrcPort != e.port && flow.DstPort != e.port {
		e.Forward(0, p)
		return
	}
	tcp, err := packet.ParseTCP(p.IP.Payload)
	if err != nil || len(tcp.Payload) == 0 {
		e.Forward(0, p)
		return
	}
	key, ok := e.keys.Get(flow)
	if !ok {
		e.missed++
		e.Forward(0, p)
		return
	}
	plaintext, _, err := tlstap.DecryptStream(key, tcp.Payload)
	if err != nil {
		e.alert(Alert{Element: e.Name(), Class: e.Class(), Msg: fmt.Sprintf("TLS decrypt failed for %s: %v", flow, err)})
		e.Forward(0, p)
		return
	}
	e.decrypted++
	p.Plaintext = plaintext
	e.Forward(0, p)
}

// Decrypted reports packets whose plaintext was recovered.
func (e *TLSDecrypt) Decrypted() uint64 { return e.decrypted }

// Missed reports packets on the TLS port without an escrowed key.
func (e *TLSDecrypt) Missed() uint64 { return e.missed }
