package scenario

import (
	"errors"
	"testing"
)

// FuzzParseSpec pins the spec parser's contract under arbitrary input:
// it either returns a well-formed Spec or an error wrapping ErrBadSpec —
// never a panic, never an untyped error, never a half-parsed result.
// Specs arrive from command lines and CI configuration, so this is the
// input-validation boundary of the whole harness.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"enterprise-tls",
		"ddos-flood:syn=2000,capacity=512",
		"mixed-cohort:bulk=8,rules=200,rounds=2",
		"idps-at-scale:rules=5000",
		"", ":", "a:", "a:=", "a:k=", "a:k=v,", "a:k=v,k=v",
		"a:k==v", "a,b", "a:b:c", "UPPER", "weird\xffbytes",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseSpec(%q): untyped error %v", s, err)
			}
			return
		}
		if err := checkIdent("scenario name", spec.Name); err != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid name %q", s, spec.Name)
		}
		for k, v := range spec.Params {
			if err := checkIdent("parameter key", k); err != nil {
				t.Fatalf("ParseSpec(%q) accepted invalid key %q", s, k)
			}
			if v == "" {
				t.Fatalf("ParseSpec(%q) accepted empty value for %q", s, k)
			}
		}
		// Accepted specs round-trip through Run's validation layer
		// without panicking (they may still be unknown scenarios).
		_, runErr := Run(s, "no-such-transport")
		if runErr == nil || !errors.Is(runErr, ErrBadSpec) {
			t.Fatalf("Run(%q) with bad transport: %v, want ErrBadSpec", s, runErr)
		}
	})
}
