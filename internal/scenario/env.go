package scenario

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"endbox/internal/click"
	"endbox/internal/core"
	"endbox/internal/udptransport"
	"endbox/internal/vpn"
)

// env is the deployment every scenario runs against: a real Deployment
// (IAS, CA, VPN server, config server) over the selected transport, with
// an observer counting the data-path events every Result reports.
type env struct {
	d   *core.Deployment
	udp *udptransport.Transport
	// clock is non-nil when the scenario asked for virtual time (session
	// eviction without real waiting).
	clock *virtualClock

	delivered atomic.Uint64
	alerts    atomic.Uint64
}

// newEnv builds a deployment over the named transport. The caller presets
// everything scenario-specific on opts (FlowCapacity, SessionTTL, ...);
// newEnv owns the transport, the observer and — with virtualTime — the
// clock and sweep configuration.
func newEnv(transport string, opts core.DeploymentOptions, virtualTime bool) (*env, error) {
	e := &env{}
	opts.Observer = core.ObserverFuncs{
		OnDelivered: func(string, []byte) { e.delivered.Add(1) },
		OnAlert:     func(string, click.Alert) { e.alerts.Add(1) },
	}

	switch transport {
	case TransportInProcess:
		// nil Transport selects the in-process transport.
	case TransportUDP:
		e.udp = udptransport.NewTransport("127.0.0.1:0")
		opts.Transport = e.udp
		if opts.UDPWorkers == 0 {
			opts.UDPWorkers = 2
		}
	default:
		return nil, fmt.Errorf("%w: unknown transport %q", ErrBadSpec, transport)
	}

	if virtualTime {
		e.clock = newVirtualClock()
		opts.Clock = e.clock.Now
		// Tests drive eviction explicitly: no background sweep racing the
		// virtual clock.
		opts.SweepInterval = -1
	}

	d, err := core.NewDeployment(opts)
	if err != nil {
		return nil, err
	}
	e.d = d
	return e, nil
}

func (e *env) Close() { e.d.Close() }

// retransmits returns the server-side ARQ retransmission count (0 on the
// in-process transport, which cannot lose messages).
func (e *env) retransmits() uint64 {
	if e.udp == nil {
		return 0
	}
	return e.udp.ARQStats().Retransmits
}

// settle waits until the server-side packet counters stop moving — on the
// UDP transport, data frames are processed asynchronously by the worker
// pool, so Collect must let in-flight frames land before reading stats.
// Two consecutive identical samples a few milliseconds apart count as
// settled; the in-process transport settles immediately.
func (e *env) settle() {
	if e.udp == nil {
		return
	}
	deadline := time.Now().Add(5 * time.Second)
	read := func() vpn.VIFStats { return e.d.AggregateStats() }
	prev := read()
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		cur := read()
		if cur == prev {
			return
		}
		prev = cur
	}
}

// pollUntil polls cond every millisecond until it holds or the timeout
// expires.
func pollUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// sendTolerant sends a packet through a client, treating middlebox drops
// as a counted outcome rather than an error (scenarios inject traffic
// their own pipelines are meant to reject).
func sendTolerant(c *core.Client, ip []byte, dropped *uint64) error {
	err := c.SendPacket(ip)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, vpn.ErrDropped):
		*dropped++
		return nil
	default:
		return err
	}
}

// virtualClock is a manually advanced time source, anchored an hour in
// the past so certificates issued on the deployment clock never post-date
// the enclaves' trusted wall-clock time.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{now: time.Now().Add(-time.Hour)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
