package scenario

import (
	"context"
	"fmt"

	"endbox/internal/core"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/tlstap"
	"endbox/internal/trace"
	"endbox/mbox"
)

func init() {
	Register(Scenario{
		Name: "enterprise-tls",
		Description: "TLS-heavy mixed enterprise traffic: per-round TLS session " +
			"churn through TLSInspect key escrow, DLP alerts on marked documents, " +
			"plus bulk flows and an uninspected stock-TLS flow",
		Defaults: Params{
			"flows": "6",  // fresh TLS sessions per round (key-table churn)
			"docs":  "24", // encrypted uploads per TLS session
			"bulk":  "64", // background bulk datagrams per round
			"size":  "512",
		},
		Setup: setupEnterpriseTLS,
	})
}

// dlpRule alerts (not drops) on marked documents so the workload plays
// error-free while the alert counter proves the inspection saw plaintext.
const dlpRule = `alert tcp any any -> any 443 (msg:"DLP: confidential document"; content:"CONFIDENTIAL"; sid:4001;)`

func setupEnterpriseTLS(cfg Config) (*Instance, error) {
	flows, err := cfg.Params.Int("flows")
	if err != nil {
		return nil, err
	}
	docs, err := cfg.Params.Int("docs")
	if err != nil {
		return nil, err
	}
	bulk, err := cfg.Params.Int("bulk")
	if err != nil {
		return nil, err
	}
	size, err := cfg.Params.Int("size")
	if err != nil {
		return nil, err
	}
	if flows < 1 || docs < 1 || size < 1 {
		return nil, fmt.Errorf("%w: enterprise-tls needs flows, docs and size >= 1", ErrBadSpec)
	}

	e, err := newEnv(cfg.Transport, core.DeploymentOptions{}, false)
	if err != nil {
		return nil, err
	}
	client, err := e.d.AddClient(context.Background(), "desk-1", core.ClientSpec{
		Mode:          sgx.ModeSimulation,
		Pipeline:      mbox.Chain(mbox.TLSInspect(443), mbox.IDS("dlp")),
		ExtraRuleSets: map[string]string{"dlp": dlpRule},
	})
	if err != nil {
		e.Close()
		return nil, err
	}

	src := packet.AddrFrom(10, 8, 0, 2)
	cloud := packet.AddrFrom(93, 184, 216, 34)
	bulkFlow, err := trace.NewBulkFlow(src, cloud, 1400)
	if err != nil {
		e.Close()
		return nil, err
	}

	// The inspected application's TLS library escrows each session key to
	// the enclave; the stock one does not, so its traffic passes opaque.
	lib := tlstap.NewClientLibrary(func(f packet.Flow, k tlstap.SessionKey) {
		_ = client.ForwardTLSKey(f, k)
	})
	stock := tlstap.NewClientLibrary(nil)

	doc := trace.HTTPSGet(size).ResponseBody()
	marked := append([]byte("CONFIDENTIAL: "), doc...)

	var packets, bytes, dropped uint64
	nextPort := uint16(40100)

	play := func() error {
		send := func(p []byte) error {
			if err := sendTolerant(client, p, &dropped); err != nil {
				return err
			}
			packets++
			bytes += uint64(len(p))
			return nil
		}
		for f := 0; f < flows; f++ {
			nextPort++
			flow := packet.Flow{Src: src, SrcPort: nextPort, Dst: cloud,
				DstPort: 443, Protocol: packet.ProtoTCP}
			if _, err := lib.Handshake(flow); err != nil {
				return err
			}
			for d := 0; d < docs; d++ {
				body := doc
				if d%8 == 7 {
					body = marked // raises a DLP alert inside the enclave
				}
				rec, err := lib.Encrypt(flow, body)
				if err != nil {
					return err
				}
				if err := send(packet.NewTCP(src, cloud, nextPort, 443,
					uint32(d+1), 0, packet.TCPAck, rec)); err != nil {
					return err
				}
			}
			lib.Close(flow)
		}
		// A stock-TLS application on the same machine: no escrowed key,
		// traffic passes encrypted and uninspected.
		nextPort++
		opaque := packet.Flow{Src: src, SrcPort: nextPort, Dst: cloud,
			DstPort: 443, Protocol: packet.ProtoTCP}
		if _, err := stock.Handshake(opaque); err != nil {
			return err
		}
		rec, err := stock.Encrypt(opaque, marked)
		if err != nil {
			return err
		}
		if err := send(packet.NewTCP(src, cloud, nextPort, 443, 1, 0,
			packet.TCPAck, rec)); err != nil {
			return err
		}
		for i := 0; i < bulk; i++ {
			if err := send(bulkFlow.Next()); err != nil {
				return err
			}
		}
		return nil
	}

	collect := func() (*Result, error) {
		e.settle()
		stats := e.d.AggregateStats()
		fs, err := client.FlowStats()
		if err != nil {
			return nil, err
		}
		alerts := e.alerts.Load()
		if alerts == 0 {
			return nil, fmt.Errorf("enterprise-tls: DLP saw no plaintext (0 alerts)")
		}
		return &Result{
			Packets:      packets,
			Bytes:        bytes,
			Delivered:    e.delivered.Load(),
			Dropped:      dropped + stats.Dropped,
			Shed:         stats.Shed,
			Alerts:       alerts,
			FlowsActive:  fs.Active,
			FlowCapacity: fs.Capacity,
			FlowsEvicted: fs.Evicted,
			Retransmits:  e.retransmits(),
			ControlOK:    true,
		}, nil
	}

	return &Instance{Play: play, Collect: collect, Close: e.Close}, nil
}
