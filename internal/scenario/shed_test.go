package scenario

import (
	"context"
	"sync"
	"testing"
	"time"

	"endbox/internal/core"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/trace"
	"endbox/internal/udptransport"
	"endbox/mbox"
)

// TestShedUnderFloodControlSurvives drives the overload-shedding path end
// to end over real UDP: a blocked delivery observer wedges the dataplane
// pool's worker, the ingress queue fills to the watermark, and sustained
// data traffic is shed — while a configuration rollout's whole control
// loop (announce over ARQ, config fetch, apply, version-reporting ping in
// the control delivery class) is accepted past the watermark and proves
// delivery once the stall clears. This is the security story of the
// MsgControl class in miniature: data overload cannot starve control.
func TestShedUnderFloodControlSurvives(t *testing.T) {
	tr := udptransport.NewTransport("127.0.0.1:0")
	gate := make(chan struct{})
	var release sync.Once
	openGate := func() { release.Do(func() { close(gate) }) }
	// The pool worker blocks in the observer until the gate opens; Close
	// drains the pool, so the gate MUST open before the deployment closes.
	defer openGate()

	d, err := core.NewDeployment(core.DeploymentOptions{
		Transport:  tr,
		UDPWorkers: 1,
		Observer: core.ObserverFuncs{
			OnDelivered: func(string, []byte) { <-gate },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ctx := context.Background()
	cli, err := d.AddClient(ctx, "desk-1", core.ClientSpec{
		Mode:     sgx.ModeSimulation,
		Pipeline: mbox.Chain(),
	})
	if err != nil {
		t.Fatal(err)
	}

	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(203, 0, 113, 9)
	flow, err := trace.NewBulkFlow(src, dst, 1200)
	if err != nil {
		t.Fatal(err)
	}

	// Flood until shedding is observed: the wedged worker holds one
	// frame, the queue fills to the watermark, and every further data
	// frame is discarded on ingress with the Shed counter ticking.
	shedSeen := false
	for batch := 0; batch < 50 && !shedSeen; batch++ {
		for i := 0; i < 100; i++ {
			if err := cli.SendPacket(flow.Next()); err != nil {
				t.Fatal(err)
			}
		}
		shedSeen = pollUntil(200*time.Millisecond, func() bool {
			st, err := d.ClientStats("desk-1")
			return err == nil && st.Shed > 0
		})
	}
	if !shedSeen {
		t.Fatal("sustained flood never triggered watermark shedding")
	}

	// With the server still saturated, run a full control round trip.
	// Every hop avoids the wedged data queue except the final ping, which
	// rides the control delivery class: accepted beyond the watermark,
	// queued behind the stalled data, delivered once the stall clears.
	if _, err := d.Rollout(ctx, core.Rollout{
		Version: 1, GraceSeconds: 60, Pipeline: mbox.Chain(),
	}); err != nil {
		t.Fatalf("rollout under overload: %v", err)
	}
	if !pollUntil(10*time.Second, func() bool { return cli.AppliedVersion() == 1 }) {
		t.Fatal("client never applied the update while the server was shedding")
	}

	openGate()
	if !pollUntil(10*time.Second, func() bool {
		v, err := d.Server.VPN().ReportedVersion("desk-1")
		return err == nil && v == 1
	}) {
		t.Fatal("control-class ping was lost: ReportedVersion never reached 1")
	}

	st, err := d.ClientStats("desk-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 {
		t.Fatal("shed counter reset unexpectedly")
	}
	t.Logf("shed %d data frames while the control loop converged to v1", st.Shed)
}
