package scenario

import (
	"context"
	"fmt"
	"time"

	"endbox/internal/core"
	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/trace"
	"endbox/mbox"
)

func init() {
	Register(Scenario{
		Name: "mixed-cohort",
		Description: "four labeled clients with heterogeneous pipelines; mid-run, " +
			"a targeted rollout upgrades one cohort while a silent client is " +
			"liveness-evicted and fast-resumed — with zero lost sessions",
		Defaults: Params{
			"bulk":  "48",   // datagrams per client per round
			"rules": "1000", // generated rule-set size for the ids cohort
			"ttl":   "120",  // session TTL, seconds (virtual time)
		},
		Setup: setupMixedCohort,
	})
}

// cohortVictim is the client that goes silent mid-run and is evicted.
const cohortVictim = "cohort-stock"

func setupMixedCohort(cfg Config) (*Instance, error) {
	bulk, err := cfg.Params.Int("bulk")
	if err != nil {
		return nil, err
	}
	ruleCount, err := cfg.Params.Int("rules")
	if err != nil {
		return nil, err
	}
	ttlSecs, err := cfg.Params.Int("ttl")
	if err != nil {
		return nil, err
	}
	if ttlSecs < 2 {
		return nil, fmt.Errorf("%w: ttl=%d (need at least 2 seconds)", ErrBadSpec, ttlSecs)
	}
	// The mid-run rollout doubles the rule count; both sizes must be
	// resolvable generated sets.
	if ruleCount < 1 || 2*ruleCount > idps.MaxGeneratedRules {
		return nil, fmt.Errorf("%w: rules=%d out of range 1..%d",
			ErrBadSpec, ruleCount, idps.MaxGeneratedRules/2)
	}
	ttl := time.Duration(ttlSecs) * time.Second

	e, err := newEnv(cfg.Transport, core.DeploymentOptions{
		SessionTTL: ttl,
	}, true)
	if err != nil {
		return nil, err
	}

	specs := map[string]core.ClientSpec{
		"cohort-edge": {
			Mode:     sgx.ModeSimulation,
			Labels:   map[string]string{"ring": "edge"},
			Pipeline: mbox.Chain(mbox.Firewall("allow all")),
		},
		"cohort-ids": {
			Mode:     sgx.ModeSimulation,
			Labels:   map[string]string{"ring": "ids"},
			Pipeline: mbox.Chain(mbox.IDS(mbox.GeneratedRuleSet(ruleCount))),
		},
		"cohort-ddos": {
			Mode:   sgx.ModeSimulation,
			Labels: map[string]string{"ring": "ddos"},
			Pipeline: mbox.Chain(
				mbox.ConnTrack(mbox.ConnTrackOptions{}),
				mbox.FlowRateLimit("100M", 1<<20),
			),
		},
		cohortVictim: {
			Mode:     sgx.ModeSimulation,
			Labels:   map[string]string{"ring": "stock"},
			Pipeline: mbox.Chain(), // NOP: FromDevice wired straight through
		},
	}
	order := []string{"cohort-edge", "cohort-ids", "cohort-ddos", cohortVictim}

	clients := make(map[string]*core.Client, len(specs))
	for _, id := range order {
		cli, err := e.d.AddClient(context.Background(), id, specs[id])
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("adding %s: %w", id, err)
		}
		clients[id] = cli
	}

	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(203, 0, 113, 7)
	bulkFlow, err := trace.NewBulkFlow(src, dst, 1200)
	if err != nil {
		e.Close()
		return nil, err
	}

	var packets, bytes, dropped uint64
	send := func(id string, p []byte) error {
		if err := sendTolerant(clients[id], p, &dropped); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		packets++
		bytes += uint64(len(p))
		return nil
	}

	play := func() error {
		for i := 0; i < bulk; i++ {
			for _, id := range order {
				if err := send(id, bulkFlow.Next()); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// waitRx polls until the server has accepted at least want frames
	// from the client — the liveness-touch confirmation the virtual clock
	// needs before it may advance (on UDP, frames land asynchronously).
	waitRx := func(id string, want uint64) error {
		ok := pollUntil(pollBudget(cfg.Transport), func() bool {
			st, err := e.d.ClientStats(id)
			return err == nil && st.RxPackets >= want
		})
		if !ok {
			return fmt.Errorf("mixed-cohort: %s traffic never reached the server", id)
		}
		return nil
	}

	mid := func() error {
		ctx := context.Background()

		// 1. Targeted rollout: only the ids cohort moves to v2 (a larger
		// rule set); everyone else stays on their boot configuration.
		res, err := e.d.Rollout(ctx, core.Rollout{
			Version:      2,
			GraceSeconds: 60,
			Pipeline:     mbox.Chain(mbox.IDS(mbox.GeneratedRuleSet(2 * ruleCount))),
			Target:       core.Selector{Labels: map[string]string{"ring": "ids"}},
		})
		if err != nil {
			return fmt.Errorf("targeted rollout: %w", err)
		}
		if len(res.Clients) != 1 || res.Clients[0] != "cohort-ids" {
			return fmt.Errorf("targeted rollout selected %v, want [cohort-ids]", res.Clients)
		}
		if !pollUntil(pollBudget(cfg.Transport), func() bool {
			return clients["cohort-ids"].AppliedVersion() == 2
		}) {
			return fmt.Errorf("cohort-ids never converged to v2")
		}
		for _, id := range []string{"cohort-edge", "cohort-ddos", cohortVictim} {
			if v := clients[id].AppliedVersion(); v != 0 {
				return fmt.Errorf("targeted rollout leaked to %s (applied v%d)", id, v)
			}
		}

		// 2. Liveness eviction and fast resume. Let every in-flight frame
		// land first: a delayed frame from the victim arriving after the
		// clock advance would refresh its liveness and mask the eviction.
		state, err := e.d.ResumeState(cohortVictim)
		if err != nil {
			return fmt.Errorf("snapshotting resume state: %w", err)
		}
		e.settle()
		e.clock.Advance(ttl / 2)
		// Everyone but the victim refreshes, and the refresh must be
		// server-confirmed before the clock may move again.
		for _, id := range []string{"cohort-edge", "cohort-ids", "cohort-ddos"} {
			st, err := e.d.ClientStats(id)
			if err != nil {
				return err
			}
			if err := send(id, bulkFlow.Next()); err != nil {
				return err
			}
			if err := waitRx(id, st.RxPackets+1); err != nil {
				return err
			}
		}
		e.clock.Advance(ttl/2 + 5*time.Second)
		evicted := e.d.SweepSessions()
		if len(evicted) != 1 || evicted[0] != cohortVictim {
			return fmt.Errorf("sweep evicted %v, want [%s]", evicted, cohortVictim)
		}
		resumed, err := e.d.ResumeClient(ctx, state, specs[cohortVictim])
		if err != nil {
			return fmt.Errorf("resuming %s: %w", cohortVictim, err)
		}
		clients[cohortVictim] = resumed
		// The resumed session must carry traffic again immediately.
		st, err := e.d.ClientStats(cohortVictim)
		if err != nil {
			return err
		}
		if err := send(cohortVictim, bulkFlow.Next()); err != nil {
			return err
		}
		return waitRx(cohortVictim, st.RxPackets+1)
	}

	collect := func() (*Result, error) {
		e.settle()
		ls := e.d.LifecycleStats()
		if ls.Sessions.Evicted != 1 {
			return nil, fmt.Errorf("mixed-cohort: %d evictions, want exactly 1", ls.Sessions.Evicted)
		}
		if ls.Sessions.Resumed != 1 {
			return nil, fmt.Errorf("mixed-cohort: %d resumes, want exactly 1", ls.Sessions.Resumed)
		}
		if n := e.d.Server.VPN().ClientCount(); n != len(order) {
			return nil, fmt.Errorf("mixed-cohort: %d connected sessions, want %d (lost sessions)",
				n, len(order))
		}
		stats := e.d.AggregateStats()
		var flows Result
		for _, id := range order {
			fs, err := clients[id].FlowStats()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			flows.FlowsActive += fs.Active
			flows.FlowCapacity += fs.Capacity
			flows.FlowsEvicted += fs.Evicted
		}
		return &Result{
			Packets:        packets,
			Bytes:          bytes,
			Delivered:      e.delivered.Load(),
			Dropped:        dropped + stats.Dropped,
			Shed:           stats.Shed,
			Alerts:         e.alerts.Load(),
			FlowsActive:    flows.FlowsActive,
			FlowCapacity:   flows.FlowCapacity,
			FlowsEvicted:   flows.FlowsEvicted,
			Retransmits:    e.retransmits(),
			Evicted:        ls.Sessions.Evicted,
			Resumed:        ls.Sessions.Resumed,
			RolloutVersion: 2,
			ControlOK:      true,
		}, nil
	}

	return &Instance{Play: play, Mid: mid, Collect: collect, Close: e.Close}, nil
}
