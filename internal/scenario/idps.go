package scenario

import (
	"context"
	"fmt"

	"endbox/internal/core"
	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/trace"
	"endbox/mbox"
)

func init() {
	Register(Scenario{
		Name: "idps-at-scale",
		Description: "the IDPS use case at production rule counts: an enforcing " +
			"matcher over thousands of generated rules, driven with clean bulk " +
			"traffic plus crafted packets matching known alert and drop rules",
		Defaults: Params{
			"rules":   "5000", // generated rule-set size
			"bulk":    "256",  // clean bulk datagrams per round
			"crafted": "16",   // matching packets per class per round
		},
		Setup: setupIDPSAtScale,
	})
}

func setupIDPSAtScale(cfg Config) (*Instance, error) {
	ruleCount, err := cfg.Params.Int("rules")
	if err != nil {
		return nil, err
	}
	bulk, err := cfg.Params.Int("bulk")
	if err != nil {
		return nil, err
	}
	crafted, err := cfg.Params.Int("crafted")
	if err != nil {
		return nil, err
	}
	if ruleCount < 1 || ruleCount > idps.MaxGeneratedRules {
		return nil, fmt.Errorf("%w: rules=%d out of range 1..%d",
			ErrBadSpec, ruleCount, idps.MaxGeneratedRules)
	}

	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(203, 0, 113, 80)
	alertPkt, dropPkt, err := craftMatching(ruleCount, src, dst)
	if err != nil {
		return nil, err
	}

	e, err := newEnv(cfg.Transport, core.DeploymentOptions{}, false)
	if err != nil {
		return nil, err
	}
	client, err := e.d.AddClient(context.Background(), "sensor-1", core.ClientSpec{
		Mode:     sgx.ModeSimulation,
		Pipeline: mbox.Chain(mbox.IPS(mbox.GeneratedRuleSet(ruleCount))),
	})
	if err != nil {
		e.Close()
		return nil, err
	}
	bulkFlow, err := trace.NewBulkFlow(src, dst, 1400)
	if err != nil {
		e.Close()
		return nil, err
	}

	var packets, bytes, dropped uint64
	play := func() error {
		send := func(p []byte) error {
			if err := sendTolerant(client, p, &dropped); err != nil {
				return err
			}
			packets++
			bytes += uint64(len(p))
			return nil
		}
		for i := 0; i < bulk; i++ {
			if err := send(bulkFlow.Next()); err != nil {
				return err
			}
		}
		for i := 0; i < crafted; i++ {
			if err := send(alertPkt); err != nil {
				return err
			}
			if err := send(dropPkt); err != nil {
				return err
			}
		}
		return nil
	}

	collect := func() (*Result, error) {
		e.settle()
		stats := e.d.AggregateStats()
		fs, err := client.FlowStats()
		if err != nil {
			return nil, err
		}
		want := uint64(crafted * cfg.Rounds)
		if e.alerts.Load() < want {
			return nil, fmt.Errorf("idps-at-scale: %d alerts, want at least %d "+
				"(crafted alert packets missed the matcher)", e.alerts.Load(), want)
		}
		if dropped < want {
			return nil, fmt.Errorf("idps-at-scale: %d drops, want at least %d "+
				"(crafted drop packets missed the enforcing matcher)", dropped, want)
		}
		return &Result{
			Packets:      packets,
			Bytes:        bytes,
			Delivered:    e.delivered.Load(),
			Dropped:      dropped + stats.Dropped,
			Shed:         stats.Shed,
			Alerts:       e.alerts.Load(),
			FlowsActive:  fs.Active,
			FlowCapacity: fs.Capacity,
			FlowsEvicted: fs.Evicted,
			Retransmits:  e.retransmits(),
			ControlOK:    true,
		}, nil
	}

	return &Instance{Play: play, Collect: collect, Close: e.Close}, nil
}

// craftMatching builds one packet matching the generated set's first TCP
// alert rule and one matching its first TCP drop rule: ports are chosen to
// satisfy the rule's port specs and the payload concatenates every content
// pattern, so the match is deterministic for any seed.
func craftMatching(ruleCount int, src, dst packet.Addr) (alertPkt, dropPkt []byte, err error) {
	text, ok, err := idps.ResolveGenerated(idps.GeneratedSetName(ruleCount))
	if !ok || err != nil {
		return nil, nil, fmt.Errorf("resolving generated rule set: %v", err)
	}
	rules, err := idps.ParseRules(text)
	if err != nil {
		return nil, nil, err
	}
	build := func(action idps.Action) ([]byte, error) {
		for _, r := range rules {
			if r.Action != action || r.Proto != idps.ProtoTCP {
				continue
			}
			sp, ok1 := satisfyPort(r.SrcPort)
			dp, ok2 := satisfyPort(r.DstPort)
			if !ok1 || !ok2 {
				continue
			}
			var payload []byte
			for _, c := range r.Contents {
				payload = append(payload, c.Bytes...)
			}
			return packet.NewTCP(src, dst, sp, dp, 1, 0, packet.TCPAck, payload), nil
		}
		return nil, fmt.Errorf("no satisfiable TCP %v rule in generated:%d", action, ruleCount)
	}
	if alertPkt, err = build(idps.ActionAlert); err != nil {
		return nil, nil, err
	}
	if dropPkt, err = build(idps.ActionDrop); err != nil {
		return nil, nil, err
	}
	return alertPkt, dropPkt, nil
}

// satisfyPort finds a concrete port matching the spec, preferring the
// well-known ports the generator draws from.
func satisfyPort(spec idps.PortSpec) (uint16, bool) {
	for _, p := range []uint16{40000, 80, 443, 25, 53, 110, 143, 8080, 2000} {
		if spec.Matches(p) {
			return p, true
		}
	}
	return 0, false
}
