package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("ddos-flood:syn=2000,capacity=512")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "ddos-flood" || spec.Params["syn"] != "2000" || spec.Params["capacity"] != "512" {
		t.Fatalf("parsed %+v", spec)
	}
	if spec, err := ParseSpec("enterprise-tls"); err != nil || len(spec.Params) != 0 {
		t.Fatalf("bare name: %+v, %v", spec, err)
	}

	for _, bad := range []string{
		"", ":", "name:", "name:k", "name:k=", "name:=v", "name:k=v,k=w",
		"Name", "na me", "name:K=v", "name:k=v,,k2=v2", "name:k=v,",
	} {
		if _, err := ParseSpec(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q) = %v, want ErrBadSpec", bad, err)
		}
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	cases := []struct{ spec, transport string }{
		{"no-such-scenario", TransportInProcess},
		{"ddos-flood", "carrier-pigeon"},
		{"ddos-flood:unknown_param=1", TransportInProcess},
		{"ddos-flood:syn=notanumber", TransportInProcess},
		{"ddos-flood:rounds=0", TransportInProcess},
		{"ddos-flood:capacity=0", TransportInProcess},
		{"mixed-cohort:ttl=1", TransportInProcess},
		{"mixed-cohort:rules=999999", TransportInProcess},
		{"idps-at-scale:rules=0", TransportInProcess},
		{"enterprise-tls:flows=0", TransportInProcess},
	}
	for _, c := range cases {
		if _, err := Run(c.spec, c.transport); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Run(%q, %q) = %v, want ErrBadSpec", c.spec, c.transport, err)
		}
	}
}

func TestNamesRegistered(t *testing.T) {
	names := Names()
	for _, want := range []string{"enterprise-tls", "idps-at-scale", "ddos-flood", "mixed-cohort", "versioned-fleet"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
	}
}

// shortSpec scales a scenario down for -short (and -race) runs; full runs
// use the registered defaults.
func shortSpec(t *testing.T, name string) string {
	if !testing.Short() {
		return name
	}
	switch name {
	case "enterprise-tls":
		return name + ":flows=2,docs=8,bulk=8,rounds=2"
	case "idps-at-scale":
		return name + ":rules=800,bulk=16,crafted=4,rounds=2"
	case "ddos-flood":
		return name + ":syn=300,udpflood=200,legit=50,capacity=64,rounds=2"
	case "mixed-cohort":
		return name + ":bulk=8,rules=200,rounds=2"
	case "versioned-fleet":
		return name + ":bulk=8,rounds=2"
	default:
		t.Fatalf("no short spec for %q", name)
		return ""
	}
}

// TestScenarioMatrix runs every registered scenario over both transports
// and checks the uniform Result invariants. The scenario-specific
// acceptance criteria (occupancy bounds, control survival, exact
// eviction/resume counts) are asserted inside each scenario's Collect, so
// a violation fails Run itself.
func TestScenarioMatrix(t *testing.T) {
	for _, name := range []string{"enterprise-tls", "idps-at-scale", "ddos-flood", "mixed-cohort", "versioned-fleet"} {
		for _, transport := range []string{TransportInProcess, TransportUDP} {
			t.Run(name+"/"+transport, func(t *testing.T) {
				res, err := Run(shortSpec(t, name), transport)
				if err != nil {
					t.Fatal(err)
				}
				if res.Scenario != name || res.Transport != transport {
					t.Fatalf("result labeled %s/%s", res.Scenario, res.Transport)
				}
				if res.Packets == 0 || res.Bytes == 0 {
					t.Fatalf("no traffic played: %+v", res)
				}
				if res.Elapsed <= 0 || res.MBps <= 0 {
					t.Fatalf("no throughput measured: %+v", res)
				}
				if res.Delivered == 0 {
					t.Fatalf("nothing delivered: %+v", res)
				}
				if !res.ControlOK {
					t.Fatalf("control plane did not survive: %+v", res)
				}
				if res.FlowsActive > res.FlowCapacity {
					t.Fatalf("flow occupancy exceeds capacity: %+v", res)
				}
				t.Logf("%s/%s: %d pkts, %.1f MB/s, delivered=%d dropped=%d shed=%d alerts=%d flows=%d/%d evicted=%d retransmits=%d",
					name, transport, res.Packets, res.MBps, res.Delivered, res.Dropped,
					res.Shed, res.Alerts, res.FlowsActive, res.FlowCapacity,
					res.FlowsEvicted, res.Retransmits)
			})
		}
	}
}

// TestDDoSAcceptance pins the ddos-flood acceptance criteria explicitly:
// bounded occupancy with real eviction pressure, and a control-plane
// round trip (rollout announce -> fetch -> apply -> ping) under flood.
func TestDDoSAcceptance(t *testing.T) {
	res, err := Run(shortSpec(t, "ddos-flood"), TransportUDP)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsActive > res.FlowCapacity {
		t.Fatalf("flow table exceeded its bound: %d > %d", res.FlowsActive, res.FlowCapacity)
	}
	if res.FlowsEvicted == 0 {
		t.Fatal("flood never pressured the flow table")
	}
	if !res.ControlOK || res.RolloutVersion != 1 {
		t.Fatalf("control plane did not survive the flood: %+v", res)
	}
}

// TestMixedCohortAcceptance pins the mixed-cohort acceptance criteria:
// the targeted rollout converges, exactly one session is evicted and
// resumed mid-run, and no sessions are lost.
func TestMixedCohortAcceptance(t *testing.T) {
	for _, transport := range []string{TransportInProcess, TransportUDP} {
		t.Run(transport, func(t *testing.T) {
			res, err := Run(shortSpec(t, "mixed-cohort"), transport)
			if err != nil {
				t.Fatal(err)
			}
			if res.Evicted != 1 || res.Resumed != 1 {
				t.Fatalf("evicted=%d resumed=%d, want 1/1", res.Evicted, res.Resumed)
			}
			if res.RolloutVersion != 2 {
				t.Fatalf("rollout version %d, want 2", res.RolloutVersion)
			}
		})
	}
}

// TestVersionedFleetAcceptance pins the versioned-fleet acceptance
// criteria on both transports: the measurement-sealed canary updates only
// the new build (the old build keeps its last-known-good configuration —
// the leak and refusal checks live in the scenario's Mid), and revoking
// the old build mid-run evicts exactly its sessions.
func TestVersionedFleetAcceptance(t *testing.T) {
	for _, transport := range []string{TransportInProcess, TransportUDP} {
		t.Run(transport, func(t *testing.T) {
			res, err := Run(shortSpec(t, "versioned-fleet"), transport)
			if err != nil {
				t.Fatal(err)
			}
			if res.Revoked != 2 {
				t.Fatalf("revocation evictions = %d, want 2", res.Revoked)
			}
			if res.RolloutVersion != 2 {
				t.Fatalf("rollout version %d, want 2", res.RolloutVersion)
			}
		})
	}
}

func TestResultJSONStable(t *testing.T) {
	res, err := Run("enterprise-tls:flows=1,docs=8,bulk=4,rounds=1", TransportInProcess)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"scenario"`, `"mb_per_s"`, `"shed"`, `"flows_active"`} {
		if !strings.Contains(mustJSON(t, res), field) {
			t.Errorf("result JSON missing %s", field)
		}
	}
}
