package scenario

import (
	"testing"
)

// The scenario benchmarks run each named workload end to end — deployment
// build, traffic, mid-run perturbations, collection — over the in-process
// transport (deterministic allocation counts, no socket noise). One op is
// one full scenario run at registered defaults; SetBytes turns the played
// traffic into the MB/s figure BENCH_scenarios.json gates alongside
// allocs/op. Regenerate the baseline with:
//
//	go test -run xxx -bench BenchmarkScenario -benchtime 1x -benchmem ./internal/scenario/
func benchScenario(b *testing.B, spec string) {
	b.ReportAllocs()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := Run(spec, TransportInProcess)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.SetBytes(int64(last.Bytes))
	b.ReportMetric(float64(last.Packets), "packets/op")
	b.ReportMetric(float64(last.Dropped), "dropped/op")
	b.ReportMetric(float64(last.Shed), "shed/op")
	b.ReportMetric(float64(last.Alerts), "alerts/op")
	b.ReportMetric(float64(last.FlowsEvicted), "flowevict/op")
}

func BenchmarkScenarioEnterpriseTLS(b *testing.B) { benchScenario(b, "enterprise-tls") }
func BenchmarkScenarioIDPSAtScale(b *testing.B)   { benchScenario(b, "idps-at-scale") }
func BenchmarkScenarioDDoSFlood(b *testing.B)     { benchScenario(b, "ddos-flood") }
func BenchmarkScenarioMixedCohort(b *testing.B)   { benchScenario(b, "mixed-cohort") }

func BenchmarkScenarioVersionedFleet(b *testing.B) { benchScenario(b, "versioned-fleet") }
