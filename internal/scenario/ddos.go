package scenario

import (
	"context"
	"fmt"
	"time"

	"endbox/internal/core"
	"endbox/internal/netsim"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/trace"
	"endbox/mbox"
)

func init() {
	Register(Scenario{
		Name: "ddos-flood",
		Description: "volumetric SYN and UDP floods from spoofed sources against " +
			"a ConnTrack+FlowRateLimit pipeline with a small flow table: occupancy " +
			"must stay bounded under eviction pressure and control-plane pings " +
			"must survive the flood",
		Defaults: Params{
			"syn":      "600", // spoofed SYN packets per round
			"udpflood": "400", // spoofed UDP datagrams per round
			"legit":    "200", // legitimate bulk datagrams per round
			"capacity": "256", // client flow-table bound
		},
		Setup: setupDDoSFlood,
	})
}

func setupDDoSFlood(cfg Config) (*Instance, error) {
	syn, err := cfg.Params.Int("syn")
	if err != nil {
		return nil, err
	}
	udpflood, err := cfg.Params.Int("udpflood")
	if err != nil {
		return nil, err
	}
	legit, err := cfg.Params.Int("legit")
	if err != nil {
		return nil, err
	}
	capacity, err := cfg.Params.Int("capacity")
	if err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: capacity=%d (need at least 1)", ErrBadSpec, capacity)
	}

	e, err := newEnv(cfg.Transport, core.DeploymentOptions{
		FlowCapacity: capacity,
	}, false)
	if err != nil {
		return nil, err
	}
	pipe := mbox.Chain(
		mbox.ConnTrack(mbox.ConnTrackOptions{}),
		mbox.FlowRateLimit("100M", 1<<20),
	)
	client, err := e.d.AddClient(context.Background(), "gw-1", core.ClientSpec{
		Mode:     sgx.ModeSimulation,
		Pipeline: pipe,
	})
	if err != nil {
		e.Close()
		return nil, err
	}

	victim := packet.AddrFrom(10, 99, 0, 1)
	legitSrc := packet.AddrFrom(10, 8, 0, 2)
	synFlood := netsim.NewSYNFlood(42, victim, 443)
	udpFlood := netsim.NewUDPFlood(43, victim, 53, 64)
	bulkFlow, err := trace.NewBulkFlow(legitSrc, victim, 1400)
	if err != nil {
		e.Close()
		return nil, err
	}

	var packets, bytes, dropped uint64
	play := func() error {
		send := func(p []byte) error {
			if err := sendTolerant(client, p, &dropped); err != nil {
				return err
			}
			packets++
			bytes += uint64(len(p))
			return nil
		}
		// Interleave attack and legitimate traffic so the legitimate flow
		// stays refreshed (never the oldest-idle eviction victim).
		steps := syn
		if udpflood > steps {
			steps = udpflood
		}
		if legit > steps {
			steps = legit
		}
		for i := 0; i < steps; i++ {
			if i < syn {
				if err := send(synFlood.Next()); err != nil {
					return err
				}
			}
			if i < udpflood {
				if err := send(udpFlood.Next()); err != nil {
					return err
				}
			}
			if i < legit {
				if err := send(bulkFlow.Next()); err != nil {
					return err
				}
			}
		}
		return nil
	}

	collect := func() (*Result, error) {
		// Control-plane survival: run the whole update control loop with
		// the flood's frames still in flight — announce v1, let the client
		// fetch and apply it, and wait for its version-reporting ping (on
		// UDP the ping rides the control delivery class past the shedding
		// watermark). ReportedVersion moving 0 -> 1 is the proof the ping
		// landed; a bare ping would re-report 0 indistinguishably.
		if _, err := e.d.Rollout(context.Background(), core.Rollout{
			Version: 1, GraceSeconds: 60, Pipeline: pipe,
		}); err != nil {
			return nil, fmt.Errorf("ddos-flood: rollout under flood: %w", err)
		}
		controlOK := pollUntil(pollBudget(cfg.Transport), func() bool {
			v, err := e.d.Server.VPN().ReportedVersion("gw-1")
			return err == nil && v == 1
		})
		if !controlOK {
			return nil, fmt.Errorf("ddos-flood: control ping never reached the server under flood")
		}

		e.settle()
		fs, err := client.FlowStats()
		if err != nil {
			return nil, err
		}
		if fs.Active > fs.Capacity {
			return nil, fmt.Errorf("ddos-flood: flow table overflowed its bound: %d active > %d capacity",
				fs.Active, fs.Capacity)
		}
		if fs.Evicted == 0 {
			return nil, fmt.Errorf("ddos-flood: flood never pressured the flow table (0 evictions)")
		}
		stats := e.d.AggregateStats()
		return &Result{
			Packets:        packets,
			Bytes:          bytes,
			Delivered:      e.delivered.Load(),
			Dropped:        dropped + stats.Dropped,
			Shed:           stats.Shed,
			Alerts:         e.alerts.Load(),
			FlowsActive:    fs.Active,
			FlowCapacity:   fs.Capacity,
			FlowsEvicted:   fs.Evicted,
			Retransmits:    e.retransmits(),
			RolloutVersion: 1,
			ControlOK:      controlOK,
		}, nil
	}

	return &Instance{Play: play, Collect: collect, Close: e.Close}, nil
}

// pollBudget sizes the asynchronous-delivery wait: generous on UDP (real
// sockets, worker queues), tiny in-process (delivery is synchronous).
func pollBudget(transport string) time.Duration {
	if transport == TransportUDP {
		return 5 * time.Second
	}
	return 100 * time.Millisecond
}
