// Package scenario is the trace-driven workload harness: it composes the
// deterministic traffic generators (internal/trace, internal/netsim) with
// a real deployment — Deployment, vpn.Server, enclave pipelines — into
// named end-to-end scenarios that exercise whole subsystems together the
// way the paper's evaluation does (§V), rather than one element at a
// time. Each scenario runs over either transport (in-process direct calls
// or real UDP sockets) and reports a uniform Result: throughput, drop /
// shed / alert counters, flow-table occupancy, ARQ retransmissions and
// lifecycle events. The scenario benchmarks feed BENCH_scenarios.json,
// which CI gates with cmd/benchgate.
//
// A scenario is selected by a spec string:
//
//	name[:key=value[,key=value...]]
//
// e.g. "ddos-flood:syn=2000,capacity=512". Unknown scenario names,
// malformed specs and unknown or malformed parameters all fail with
// errors wrapping ErrBadSpec — never a panic — so specs can arrive from
// command lines and CI configuration.
package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrBadSpec reports a scenario spec that cannot be parsed or validated:
// bad syntax, an unknown scenario name, an unknown parameter key, or a
// parameter value of the wrong type. All spec-handling errors wrap it.
var ErrBadSpec = errors.New("scenario: bad spec")

// Params are a scenario's string-typed parameters (spec key=value pairs
// merged over the scenario's defaults). Typed accessors convert on read
// and return errors wrapping ErrBadSpec for malformed values.
type Params map[string]string

// Int reads an integer parameter. The key is guaranteed present after
// Run's merge (every key has a default); a missing key reads as zero.
func (p Params) Int(key string) (int, error) {
	raw, ok := p[key]
	if !ok {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%w: parameter %s=%q is not an integer", ErrBadSpec, key, raw)
	}
	return n, nil
}

// Str reads a string parameter.
func (p Params) Str(key string) string { return p[key] }

// Spec is one parsed scenario selection.
type Spec struct {
	// Name is the scenario name ("enterprise-tls", "ddos-flood", ...).
	Name string
	// Params are the explicit key=value overrides from the spec string
	// (defaults not yet merged).
	Params Params
}

// ParseSpec parses "name[:key=value[,key=value...]]". It validates syntax
// only; Run checks the name against the registry and the keys against the
// scenario's defaults.
func ParseSpec(s string) (Spec, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	if err := checkIdent("scenario name", name); err != nil {
		return Spec{}, err
	}
	spec := Spec{Name: name, Params: Params{}}
	if !hasParams {
		return spec, nil
	}
	if rest == "" {
		return Spec{}, fmt.Errorf("%w: %q has a ':' but no parameters", ErrBadSpec, s)
	}
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("%w: parameter %q is not key=value", ErrBadSpec, kv)
		}
		if err := checkIdent("parameter key", key); err != nil {
			return Spec{}, err
		}
		if value == "" {
			return Spec{}, fmt.Errorf("%w: parameter %q has an empty value", ErrBadSpec, key)
		}
		if _, dup := spec.Params[key]; dup {
			return Spec{}, fmt.Errorf("%w: duplicate parameter %q", ErrBadSpec, key)
		}
		spec.Params[key] = value
	}
	return spec, nil
}

// checkIdent validates a name or key: non-empty, lowercase letters,
// digits, '-' and '_' only.
func checkIdent(what, s string) error {
	if s == "" {
		return fmt.Errorf("%w: empty %s", ErrBadSpec, what)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' || c == '_' {
			continue
		}
		return fmt.Errorf("%w: %s %q has invalid character %q", ErrBadSpec, what, s, c)
	}
	return nil
}

// Transport names accepted by Run.
const (
	TransportInProcess = "inprocess"
	TransportUDP       = "udp"
)

// Config is what a scenario's Setup receives: the resolved transport, the
// fully merged parameters, and the round count the harness will drive.
type Config struct {
	Transport string
	Params    Params
	Rounds    int
}

// Instance is one set-up scenario run. Play is called Rounds times; Mid
// (optional) once, before the middle round — the hook for mid-run
// perturbations (targeted rollouts, session eviction). Collect builds the
// Result after the last round and is where a scenario asserts its own
// invariants (an occupancy bound, control-plane survival), so violations
// fail the run rather than skewing a report. Close releases everything.
type Instance struct {
	Play    func() error
	Mid     func() error
	Collect func() (*Result, error)
	Close   func()
}

// Scenario is one registered named workload.
type Scenario struct {
	Name        string
	Description string
	// Defaults declares every parameter the scenario accepts, with its
	// default value; a spec key outside this set (or "rounds") is
	// rejected with ErrBadSpec.
	Defaults Params
	Setup    func(cfg Config) (*Instance, error)
}

// Result is the uniform scenario report. One JSON object per scenario run
// is the exchange format between the harness, the endbox-bench CLI and
// the committed BENCH_scenarios.json baseline.
type Result struct {
	Scenario  string        `json:"scenario"`
	Transport string        `json:"transport"`
	Rounds    int           `json:"rounds"`
	Packets   uint64        `json:"packets"`
	Bytes     uint64        `json:"bytes"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	MBps      float64       `json:"mb_per_s"`

	// Delivered counts packets the server handed to the managed network;
	// Dropped counts middlebox rejections observed by the sender; Shed
	// counts frames discarded by server overload shedding; Alerts counts
	// IDS alerts raised in client enclaves.
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Shed      uint64 `json:"shed"`
	Alerts    uint64 `json:"alerts"`

	// Flow-table state across all clients after the run.
	FlowsActive  uint64 `json:"flows_active"`
	FlowCapacity uint64 `json:"flow_capacity"`
	FlowsEvicted uint64 `json:"flows_evicted"`

	// Retransmits are server-side ARQ retransmissions (UDP transport
	// only; the in-process transport cannot lose messages).
	Retransmits uint64 `json:"retransmits"`

	// Lifecycle events (mixed-cohort: mid-run eviction and resume;
	// versioned-fleet: sessions evicted by a mid-run build revocation).
	Evicted uint64 `json:"evicted"`
	Resumed uint64 `json:"resumed"`
	Revoked uint64 `json:"revoked,omitempty"`
	// RolloutVersion is the configuration version a mid-run rollout
	// converged to (0 = no rollout in this scenario).
	RolloutVersion uint64 `json:"rollout_version,omitempty"`

	// ControlOK reports that control-plane traffic (a version-reporting
	// ping) survived the scenario's data-plane load.
	ControlOK bool `json:"control_ok"`
}

var registry = map[string]Scenario{}

// Register adds a scenario to the registry; duplicate names panic at
// init time (a programming error, not an input error).
func Register(s Scenario) {
	if s.Name == "" || s.Setup == nil {
		panic("scenario: Register needs a name and a Setup")
	}
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate scenario " + s.Name)
	}
	registry[s.Name] = s
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns a registered scenario.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// defaultRounds is the round count when neither the scenario's defaults
// nor the spec set "rounds".
const defaultRounds = 4

// Run parses a spec, sets the scenario up on the given transport
// ("inprocess" or "udp"), drives Play for the configured number of rounds
// with Mid fired once before the middle round, and returns the collected
// Result. Spec problems — syntax, unknown scenario, unknown or malformed
// parameters, unknown transport — fail with errors wrapping ErrBadSpec.
func Run(specStr, transport string) (*Result, error) {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	sc, ok := Lookup(spec.Name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown scenario %q (have %s)",
			ErrBadSpec, spec.Name, strings.Join(Names(), ", "))
	}
	if transport != TransportInProcess && transport != TransportUDP {
		return nil, fmt.Errorf("%w: unknown transport %q (want %q or %q)",
			ErrBadSpec, transport, TransportInProcess, TransportUDP)
	}

	// Merge the spec's overrides onto the scenario's defaults, rejecting
	// keys the scenario never declared.
	merged := Params{"rounds": strconv.Itoa(defaultRounds)}
	for k, v := range sc.Defaults {
		merged[k] = v
	}
	for k, v := range spec.Params {
		if _, known := merged[k]; !known {
			return nil, fmt.Errorf("%w: scenario %q has no parameter %q",
				ErrBadSpec, spec.Name, k)
		}
		merged[k] = v
	}
	rounds, err := merged.Int("rounds")
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		return nil, fmt.Errorf("%w: rounds=%d (need at least 1)", ErrBadSpec, rounds)
	}

	inst, err := sc.Setup(Config{Transport: transport, Params: merged, Rounds: rounds})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: setup: %w", spec.Name, err)
	}
	defer inst.Close()

	start := time.Now()
	for round := 0; round < rounds; round++ {
		if round == rounds/2 && inst.Mid != nil {
			if err := inst.Mid(); err != nil {
				return nil, fmt.Errorf("scenario %s: mid-run: %w", spec.Name, err)
			}
		}
		if err := inst.Play(); err != nil {
			return nil, fmt.Errorf("scenario %s: round %d: %w", spec.Name, round, err)
		}
	}
	elapsed := time.Since(start)

	res, err := inst.Collect()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: collect: %w", spec.Name, err)
	}
	res.Scenario = spec.Name
	res.Transport = transport
	res.Rounds = rounds
	res.Elapsed = elapsed
	if secs := elapsed.Seconds(); secs > 0 {
		res.MBps = float64(res.Bytes) / 1e6 / secs
	}
	return res, nil
}
