package scenario

import (
	"context"
	"errors"
	"fmt"

	"endbox/internal/attest"
	"endbox/internal/core"
	"endbox/internal/packet"
	"endbox/internal/policy"
	"endbox/internal/sgx"
	"endbox/internal/trace"
	"endbox/mbox"
)

func init() {
	Register(Scenario{
		Name: "versioned-fleet",
		Description: "two attested enclave builds share one deployment; mid-run, " +
			"a measurement-sealed canary upgrades only the new build (the old " +
			"build cannot even decrypt the update), then the old build is " +
			"revoked live — sessions evicted, re-admission refused",
		Defaults: Params{
			"bulk":  "48", // datagrams per client per round
			"old":   "2",  // clients on the old (v1) build
			"new":   "2",  // clients on the new (v2) build
			"grace": "60", // update grace period, seconds
		},
		Setup: setupVersionedFleet,
	})
}

// fleetNewBuild is the ClientSpec.BuildVersion of the scenario's new
// build; the old build runs the default client image.
const fleetNewBuild = "2.0.0"

func setupVersionedFleet(cfg Config) (*Instance, error) {
	bulk, err := cfg.Params.Int("bulk")
	if err != nil {
		return nil, err
	}
	oldN, err := cfg.Params.Int("old")
	if err != nil {
		return nil, err
	}
	newN, err := cfg.Params.Int("new")
	if err != nil {
		return nil, err
	}
	if oldN < 1 || newN < 1 {
		return nil, fmt.Errorf("%w: old=%d new=%d (need at least one client per build)",
			ErrBadSpec, oldN, newN)
	}
	grace, err := cfg.Params.Int("grace")
	if err != nil {
		return nil, err
	}
	if grace < 1 {
		return nil, fmt.Errorf("%w: grace=%d (need at least 1 second)", ErrBadSpec, grace)
	}

	// Virtual time keeps the grace period from ever expiring mid-run, so
	// the only thing that may remove a session is the revocation.
	e, err := newEnv(cfg.Transport, core.DeploymentOptions{
		Policy:            policy.NewRegistry(),
		SealToMeasurement: true,
	}, true)
	if err != nil {
		return nil, err
	}

	if _, err := e.d.RegisterBuild("v1", ""); err != nil {
		e.Close()
		return nil, err
	}
	v2meas, err := e.d.RegisterBuild("v2", fleetNewBuild)
	if err != nil {
		e.Close()
		return nil, err
	}

	oldSpec := core.ClientSpec{
		Mode:     sgx.ModeSimulation,
		Pipeline: mbox.Chain(mbox.Firewall("allow all")),
	}
	newSpec := oldSpec
	newSpec.BuildVersion = fleetNewBuild

	var oldIDs, newIDs []string
	for i := 0; i < oldN; i++ {
		oldIDs = append(oldIDs, fmt.Sprintf("fleet-v1-%d", i))
	}
	for i := 0; i < newN; i++ {
		newIDs = append(newIDs, fmt.Sprintf("fleet-v2-%d", i))
	}
	clients := make(map[string]*core.Client, oldN+newN)
	specFor := func(id string) core.ClientSpec {
		for _, old := range oldIDs {
			if id == old {
				return oldSpec
			}
		}
		return newSpec
	}
	for _, id := range append(append([]string{}, oldIDs...), newIDs...) {
		cli, err := e.d.AddClient(context.Background(), id, specFor(id))
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("adding %s: %w", id, err)
		}
		clients[id] = cli
	}

	// The fleet-wide baseline: version 1, applied by both builds. It is
	// the canary's rollback point and the last-known-good configuration
	// the old build must keep when it cannot open the sealed v2 blob.
	_, err = e.d.Rollout(context.Background(), core.Rollout{
		Version:      1,
		GraceSeconds: uint32(grace),
		Pipeline:     mbox.Chain(mbox.Firewall("allow all")),
	})
	if err != nil {
		e.Close()
		return nil, fmt.Errorf("baseline rollout: %w", err)
	}
	for id, cli := range clients {
		cli := cli
		if !pollUntil(pollBudget(cfg.Transport), func() bool { return cli.AppliedVersion() == 1 }) {
			e.Close()
			return nil, fmt.Errorf("%s never applied the baseline", id)
		}
	}

	src := packet.AddrFrom(10, 8, 0, 2)
	dst := packet.AddrFrom(203, 0, 113, 7)
	bulkFlow, err := trace.NewBulkFlow(src, dst, 1200)
	if err != nil {
		e.Close()
		return nil, err
	}

	// active is the set of clients each round sends through; the mid-run
	// revocation shrinks it to the surviving build.
	active := append(append([]string{}, oldIDs...), newIDs...)

	var packets, bytes, dropped uint64
	play := func() error {
		for i := 0; i < bulk; i++ {
			for _, id := range active {
				p := bulkFlow.Next()
				if err := sendTolerant(clients[id], p, &dropped); err != nil {
					return fmt.Errorf("%s: %w", id, err)
				}
				packets++
				bytes += uint64(len(p))
			}
		}
		return nil
	}

	mid := func() error {
		ctx := context.Background()

		// 1. Measurement-sealed canary: version 2 is staged to exactly the
		// clients whose *attested* measurement is the v2 build — a client
		// cannot label itself into the cohort — and the blob is encrypted
		// under v2's per-measurement key. The cohort is the whole v2 fleet
		// (Fraction 1), so a healthy watch promotes v2 fleet-wide.
		res, err := e.d.RolloutCanary(ctx, core.CanaryRollout{
			Rollout: core.Rollout{
				Version:      2,
				GraceSeconds: uint32(grace),
				Pipeline: mbox.Chain(
					mbox.ConnTrack(mbox.ConnTrackOptions{}),
					mbox.Firewall("allow all"),
				),
				Target: core.Selector{Measurements: []sgx.Measurement{v2meas}},
			},
			Fraction: 1,
			Deadline: pollBudget(cfg.Transport),
		})
		if err != nil {
			return fmt.Errorf("measurement canary: %w", err)
		}
		if !res.Promoted {
			return fmt.Errorf("measurement canary not promoted: %s", res.Reason)
		}
		if len(res.Canary) != newN {
			return fmt.Errorf("canary cohort %v, want the %d v2 clients", res.Canary, newN)
		}
		for _, id := range newIDs {
			cli := clients[id]
			if !pollUntil(pollBudget(cfg.Transport), func() bool { return cli.AppliedVersion() == 2 }) {
				return fmt.Errorf("%s never converged to v2", id)
			}
		}
		// Zero cross-build leak: the promotion announced version 2 to the
		// old build too, but the blob is sealed to v2's measurement — v1
		// clients fail with ErrSealedToOtherBuild and keep last-known-good.
		e.settle()
		for _, id := range oldIDs {
			if v := clients[id].AppliedVersion(); v != 1 {
				return fmt.Errorf("sealed update leaked to %s (applied v%d, want LKG v1)", id, v)
			}
		}

		// 2. Live revocation of the old build. Let in-flight frames land
		// first so the counters are stable when the sessions vanish.
		e.settle()
		resumeState, err := e.d.ResumeState(oldIDs[0])
		if err != nil {
			return fmt.Errorf("snapshotting v1 resume state: %w", err)
		}
		if err := e.d.RevokeBuild("v1"); err != nil {
			return fmt.Errorf("revoking v1: %w", err)
		}
		if n := e.d.Server.VPN().ClientCount(); n != newN {
			return fmt.Errorf("%d sessions live after revocation, want %d (v2 only)", n, newN)
		}
		// Re-admission is refused before any handshake crypto: a fresh v1
		// enclave is denied at enrolment, a resumption ticket from an
		// evicted v1 session is refused by the measurement it carries.
		if _, err := e.d.AddClient(ctx, "fleet-v1-late", oldSpec); !errors.Is(err, attest.ErrMeasurementDenied) {
			return fmt.Errorf("revoked build re-admitted: err = %v, want ErrMeasurementDenied", err)
		}
		if _, err := e.d.ResumeClient(ctx, resumeState, oldSpec); err == nil ||
			!(errors.Is(err, policy.ErrBuildRevoked) || errors.Is(err, attest.ErrMeasurementDenied)) {
			return fmt.Errorf("revoked build resumed: err = %v, want ErrBuildRevoked", err)
		}
		active = newIDs
		return nil
	}

	collect := func() (*Result, error) {
		e.settle()
		ls := e.d.LifecycleStats()
		if ls.Sessions.Revoked != uint64(oldN) {
			return nil, fmt.Errorf("versioned-fleet: %d revocation evictions, want %d",
				ls.Sessions.Revoked, oldN)
		}
		if got := ls.Sessions.ByBuild["v2"]; got != newN {
			return nil, fmt.Errorf("versioned-fleet: ByBuild[v2] = %d, want %d", got, newN)
		}
		if got, ok := ls.Sessions.ByBuild["v1"]; ok {
			return nil, fmt.Errorf("versioned-fleet: %d v1 sessions survived revocation", got)
		}
		stats := e.d.AggregateStats()
		var flows Result
		for _, id := range newIDs {
			fs, err := clients[id].FlowStats()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			flows.FlowsActive += fs.Active
			flows.FlowCapacity += fs.Capacity
			flows.FlowsEvicted += fs.Evicted
		}
		return &Result{
			Packets:        packets,
			Bytes:          bytes,
			Delivered:      e.delivered.Load(),
			Dropped:        dropped + stats.Dropped,
			Shed:           stats.Shed,
			Alerts:         e.alerts.Load(),
			FlowsActive:    flows.FlowsActive,
			FlowCapacity:   flows.FlowCapacity,
			FlowsEvicted:   flows.FlowsEvicted,
			Retransmits:    e.retransmits(),
			Evicted:        ls.Sessions.Evicted,
			Resumed:        ls.Sessions.Resumed,
			Revoked:        ls.Sessions.Revoked,
			RolloutVersion: 2,
			ControlOK:      true,
		}, nil
	}

	return &Instance{Play: play, Mid: mid, Collect: collect, Close: e.Close}, nil
}
