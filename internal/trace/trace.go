// Package trace generates the deterministic synthetic workloads the
// benchmark harness feeds into EndBox, substituting for evaluation inputs
// this reproduction cannot obtain (DESIGN.md §2): the Alexa top-1000 page
// set behind Fig. 6, the HTTPS exchanges behind Table I, iperf-style bulk
// flows behind Figs. 8-10, and DDoS floods for the prevention use case.
// Every generator is seeded, so runs are reproducible.
package trace

import (
	"math"
	"math/rand"
	"time"

	"endbox/internal/packet"
)

// PageSpec describes one synthetic "Alexa" website for the page-load
// experiment (paper Fig. 6): how much data the page pulls, over how many
// objects, from how far away.
type PageSpec struct {
	// Rank is the site's popularity rank (1-based).
	Rank int
	// TotalBytes is the page weight across all objects.
	TotalBytes int
	// Objects is the number of HTTP objects fetched.
	Objects int
	// RTT is the network round-trip to the site.
	RTT time.Duration
}

// AlexaPages generates n page specifications with a realistic long-tailed
// weight distribution (median ≈ 2 MB, tail to tens of MB), 10-120 objects,
// and RTTs from 10 ms (CDN) to 300 ms (intercontinental).
func AlexaPages(n int, seed int64) []PageSpec {
	rnd := rand.New(rand.NewSource(seed))
	pages := make([]PageSpec, n)
	for i := range pages {
		// Log-normal page weight around 2 MB.
		weight := math.Exp(rnd.NormFloat64()*0.7) * 2e6
		if weight < 5e4 {
			weight = 5e4
		}
		if weight > 5e7 {
			weight = 5e7
		}
		objects := 10 + rnd.Intn(111)
		rtt := time.Duration(10+rnd.ExpFloat64()*40) * time.Millisecond
		if rtt > 300*time.Millisecond {
			rtt = 300 * time.Millisecond
		}
		pages[i] = PageSpec{
			Rank:       i + 1,
			TotalBytes: int(weight),
			Objects:    objects,
			RTT:        rtt,
		}
	}
	return pages
}

// BulkFlow produces iperf-style UDP datagrams of a fixed on-wire size, the
// workload behind the throughput sweeps (paper §V-B: "We conduct the
// throughput measurements using iperf"). The payload is zero-filled like
// iperf's default, which the generated IDPS rules never match.
type BulkFlow struct {
	Src, Dst   packet.Addr
	PacketSize int
	pkt        []byte
	seq        uint16
}

// NewBulkFlow builds a flow template; PacketSize is the full IP datagram
// size.
func NewBulkFlow(src, dst packet.Addr, packetSize int) (*BulkFlow, error) {
	pkt, err := packet.PadToSize(src, dst, 40000, 5201, packetSize)
	if err != nil {
		return nil, err
	}
	return &BulkFlow{Src: src, Dst: dst, PacketSize: packetSize, pkt: pkt}, nil
}

// Next returns the next datagram. The returned slice is reused; callers
// that retain it must copy.
func (f *BulkFlow) Next() []byte {
	f.seq++
	return f.pkt
}

// HTTPExchange describes one HTTPS request/response for the Table I
// experiment.
type HTTPExchange struct {
	Request      []byte
	ResponseSize int
}

// HTTPSGet builds the paper's Table I exchanges: a small GET request and a
// response of the given size, which the server side answers in MTU-sized
// TLS records.
func HTTPSGet(responseSize int) HTTPExchange {
	return HTTPExchange{
		Request:      []byte("GET /static/object HTTP/1.1\r\nHost: testsrv.managed.example\r\n\r\n"),
		ResponseSize: responseSize,
	}
}

// ResponseBody produces a deterministic response payload of the exchange's
// size (ASCII text, so DPI rules can scan it without matching).
func (e HTTPExchange) ResponseBody() []byte {
	body := make([]byte, e.ResponseSize)
	const filler = "HTTP/1.1 200 OK body filler text "
	for i := range body {
		body[i] = filler[i%len(filler)]
	}
	return body
}

// Flood produces the identical repeated packets of a DDoS source (paper
// §V-B: "rate limiting identical packets"). All packets share payload and
// 5-tuple, which the DDoS pipeline detects and throttles.
func Flood(src, dst packet.Addr, count, size int) [][]byte {
	pkt, err := packet.PadToSize(src, dst, 666, 80, size)
	if err != nil {
		// Size is a caller constant; treat misuse as a programming error.
		panic(err)
	}
	out := make([][]byte, count)
	for i := range out {
		out[i] = pkt
	}
	return out
}

// Percentile returns the p-th percentile (0-100) of a sorted duration
// slice using nearest-rank.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
