package trace

import (
	"sort"
	"testing"
	"time"

	"endbox/internal/packet"
)

func TestAlexaPagesDeterministic(t *testing.T) {
	a := AlexaPages(1000, 1)
	b := AlexaPages(1000, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("page %d differs between runs", i)
		}
	}
	c := AlexaPages(1000, 2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical pages")
	}
}

func TestAlexaPagesPlausible(t *testing.T) {
	pages := AlexaPages(1000, 42)
	if len(pages) != 1000 {
		t.Fatalf("len = %d", len(pages))
	}
	var totalBytes int64
	for _, p := range pages {
		if p.TotalBytes < 5e4 || p.TotalBytes > 5e7 {
			t.Errorf("page %d weight %d out of range", p.Rank, p.TotalBytes)
		}
		if p.Objects < 10 || p.Objects > 120 {
			t.Errorf("page %d objects %d out of range", p.Rank, p.Objects)
		}
		if p.RTT < 10*time.Millisecond || p.RTT > 300*time.Millisecond {
			t.Errorf("page %d RTT %v out of range", p.Rank, p.RTT)
		}
		totalBytes += int64(p.TotalBytes)
	}
	mean := totalBytes / int64(len(pages))
	if mean < 1e6 || mean > 1e7 {
		t.Errorf("mean page weight %d implausible", mean)
	}
}

func TestBulkFlowSizes(t *testing.T) {
	for _, size := range []int{256, 1024, 1500, 4096, 16384, 65507} {
		f, err := NewBulkFlow(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(10, 8, 0, 1), size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		pkt := f.Next()
		if len(pkt) != size {
			t.Errorf("size %d: packet is %d bytes", size, len(pkt))
		}
		if _, err := packet.ParseIPv4(pkt); err != nil {
			t.Errorf("size %d: unparsable: %v", size, err)
		}
	}
	if _, err := NewBulkFlow(packet.Addr{}, packet.Addr{}, 10); err == nil {
		t.Error("tiny size accepted")
	}
}

func TestHTTPSGetExchange(t *testing.T) {
	e := HTTPSGet(16 << 10)
	if len(e.Request) == 0 {
		t.Error("empty request")
	}
	body := e.ResponseBody()
	if len(body) != 16<<10 {
		t.Errorf("body = %d bytes", len(body))
	}
	// Deterministic.
	if string(body) != string(e.ResponseBody()) {
		t.Error("response body not deterministic")
	}
}

func TestFloodIdenticalPackets(t *testing.T) {
	pkts := Flood(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 10, 512)
	if len(pkts) != 10 {
		t.Fatalf("count = %d", len(pkts))
	}
	for i := 1; i < len(pkts); i++ {
		if string(pkts[i]) != string(pkts[0]) {
			t.Error("flood packets differ")
		}
	}
	if len(pkts[0]) != 512 {
		t.Errorf("size = %d", len(pkts[0]))
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, tt := range tests {
		if got := Percentile(ds, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
