package lifecycle

import (
	"sync"
	"sync/atomic"
	"time"
)

// wheelBuckets is the timing-wheel size. The wheel tick is TTL/64, so
// the wheel spans 4×TTL of virtual time: live deadlines (at most TTL
// ahead) occupy at most a quarter of the wheel and never alias across
// laps. Same geometry as the internal/flow wheel.
const wheelBuckets = 256

const ttlTickShift = 6 // tick = TTL / 64

// Entry is one tracked session's liveness record. The data path holds a
// pointer to it inside the session struct and refreshes it with Touch —
// a single atomic store, no lock, no map lookup — while the sweep
// re-buckets entries lazily from their last-seen time. An entry that
// has been removed from its tracker is inert: stale Touches on it are
// harmless.
type Entry struct {
	id       string
	lastSeen atomic.Int64

	// wheel intrusive list, guarded by Tracker.mu
	next, prev *Entry
	bucket     int32 // -1 when unlinked
	deadline   int64 // unix nanoseconds when liveness lapses (as of link time)
}

// ID returns the session identifier the entry tracks.
func (e *Entry) ID() string { return e.id }

// Touch records activity. It is the data-path hook: lock-free, so a
// frame flood for one client never contends with the sweep or with
// other clients' touches.
func (e *Entry) Touch(now int64) { e.lastSeen.Store(now) }

// LastSeen returns the most recent activity timestamp.
func (e *Entry) LastSeen() int64 { return e.lastSeen.Load() }

// Tracker maps session IDs to liveness entries and finds lapsed ones
// with a hashed timing wheel. Entries are bucketed by the deadline
// implied by their last-seen time at link time; because Touch does not
// relink (it must stay lock-free), a swept bucket re-checks the atomic
// last-seen and relinks still-live entries forward instead of expiring
// them — the classic lazy re-bucketing trade: Touch is O(1) wait-free,
// Sweep pays one relink per live entry per TTL.
type Tracker struct {
	mu      sync.Mutex
	ttl     int64
	tick    int64
	entries map[string]*Entry
	wheel   [wheelBuckets]*Entry
	cursor  int64 // last wheel tick fully swept
}

// NewTracker creates a tracker with the given idle TTL (must be > 0).
func NewTracker(ttl time.Duration) *Tracker {
	tick := ttl.Nanoseconds() >> ttlTickShift
	if tick <= 0 {
		tick = 1
	}
	return &Tracker{
		ttl:     ttl.Nanoseconds(),
		tick:    tick,
		entries: make(map[string]*Entry),
		cursor:  -1,
	}
}

// TTL returns the configured idle TTL.
func (t *Tracker) TTL() time.Duration { return time.Duration(t.ttl) }

// Add starts tracking id from now, returning the entry the data path
// should Touch. An existing entry for id is replaced (takeover).
func (t *Tracker) Add(id string, now int64) *Entry {
	e := &Entry{id: id, bucket: -1}
	e.lastSeen.Store(now)
	t.mu.Lock()
	if old := t.entries[id]; old != nil {
		t.unlink(old)
	}
	t.entries[id] = e
	e.deadline = now + t.ttl
	t.link(e)
	t.mu.Unlock()
	return e
}

// Remove stops tracking the entry. It is idempotent and pointer-exact:
// if id has since been re-added with a fresh entry (takeover), the new
// entry is left alone.
func (t *Tracker) Remove(e *Entry) {
	if e == nil {
		return
	}
	t.mu.Lock()
	if t.entries[e.id] == e {
		delete(t.entries, e.id)
		t.unlink(e)
	}
	t.mu.Unlock()
}

// Len reports the number of tracked sessions.
func (t *Tracker) Len() int {
	t.mu.Lock()
	n := len(t.entries)
	t.mu.Unlock()
	return n
}

// Expired reports whether the entry's liveness has lapsed as of now.
func (t *Tracker) Expired(e *Entry, now int64) bool {
	return e != nil && now-e.lastSeen.Load() >= t.ttl
}

// Sweep advances the wheel to now and returns the entries whose
// liveness lapsed, removed from the tracker. Each call processes only
// the buckets whose tick has passed since the previous call, so the
// steady-state cost is zero or one bucket; live entries found in a
// swept bucket are relinked to the bucket their current last-seen time
// implies. The caller evicts the corresponding sessions; pointer
// identity (session.live == entry) lets it skip sessions that were
// concurrently taken over.
func (t *Tracker) Sweep(now int64) []*Entry {
	var lapsed []*Entry
	t.mu.Lock()
	nowTick := now / t.tick
	if t.cursor < 0 {
		// First sweep: cover a full lap, so entries added long before
		// the first Sweep call land in buckets the cursor will visit.
		t.cursor = nowTick - wheelBuckets
	}
	if nowTick-t.cursor > wheelBuckets {
		// Clock jumped more than a full lap: every bucket needs one sweep.
		t.cursor = nowTick - wheelBuckets
	}
	for t.cursor < nowTick-1 {
		t.cursor++
		lapsed = t.sweepBucket(t.cursor&(wheelBuckets-1), now, lapsed)
	}
	// Sweep the current tick's bucket too, but leave the cursor behind
	// it: deadlines later in the still-running tick must be re-checked
	// by the next Sweep, not stranded for a full wheel lap.
	lapsed = t.sweepBucket(nowTick&(wheelBuckets-1), now, lapsed)
	t.mu.Unlock()
	return lapsed
}

func (t *Tracker) sweepBucket(b int64, now int64, lapsed []*Entry) []*Entry {
	e := t.wheel[b]
	for e != nil {
		next := e.next
		deadline := e.lastSeen.Load() + t.ttl
		switch {
		case deadline <= now:
			delete(t.entries, e.id)
			t.unlink(e)
			lapsed = append(lapsed, e)
		case deadline != e.deadline:
			// Touched since it was linked: relink where its current
			// deadline lives. The new bucket is strictly ahead (the
			// deadline is in the future), so iteration never loops.
			t.unlink(e)
			e.deadline = deadline
			t.link(e)
		}
		e = next
	}
	return lapsed
}

// link prepends the entry to its deadline's bucket (mu held).
func (t *Tracker) link(e *Entry) {
	b := int32((e.deadline / t.tick) & (wheelBuckets - 1))
	e.bucket = b
	e.prev = nil
	e.next = t.wheel[b]
	if e.next != nil {
		e.next.prev = e
	}
	t.wheel[b] = e
}

// unlink detaches the entry from its bucket if linked (mu held).
func (t *Tracker) unlink(e *Entry) {
	if e.bucket < 0 {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.wheel[e.bucket] = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
	e.bucket = -1
}
