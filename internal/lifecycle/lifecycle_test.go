package lifecycle

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTrackerSilentEntryExpiresWithinTTLPlusTick(t *testing.T) {
	ttl := time.Minute
	tr := NewTracker(ttl)
	start := time.Unix(1000, 0).UnixNano()
	tr.Add("c1", start)

	tick := ttl.Nanoseconds() >> ttlTickShift
	// Just before the deadline nothing expires.
	if lapsed := tr.Sweep(start + ttl.Nanoseconds() - 1); len(lapsed) != 0 {
		t.Fatalf("expired before TTL: %v", lapsed)
	}
	// One TTL plus one tick later the entry must be gone.
	lapsed := tr.Sweep(start + ttl.Nanoseconds() + tick)
	if len(lapsed) != 1 || lapsed[0].ID() != "c1" {
		t.Fatalf("want [c1] expired, got %v", lapsed)
	}
	if tr.Len() != 0 {
		t.Fatalf("tracker still holds %d entries", tr.Len())
	}
}

func TestTrackerTouchKeepsEntryAlive(t *testing.T) {
	ttl := time.Minute
	tr := NewTracker(ttl)
	now := time.Unix(1000, 0).UnixNano()
	e := tr.Add("c1", now)

	// Touch every half TTL for ten TTLs; sweeps in between must never
	// expire the entry even though it is never relinked by Touch.
	for i := 0; i < 20; i++ {
		now += ttl.Nanoseconds() / 2
		e.Touch(now)
		if lapsed := tr.Sweep(now); len(lapsed) != 0 {
			t.Fatalf("live entry expired at step %d: %v", i, lapsed)
		}
	}
	// Go silent: one TTL + one tick later it expires.
	now += ttl.Nanoseconds() + (ttl.Nanoseconds() >> ttlTickShift)
	if lapsed := tr.Sweep(now); len(lapsed) != 1 {
		t.Fatalf("silent entry not expired: %v", lapsed)
	}
}

func TestTrackerClockJumpSweepsEverything(t *testing.T) {
	tr := NewTracker(time.Second)
	now := time.Unix(1000, 0).UnixNano()
	for i := 0; i < 50; i++ {
		tr.Add(fmt.Sprintf("c%d", i), now)
	}
	// Jump far beyond a full wheel lap.
	lapsed := tr.Sweep(now + time.Hour.Nanoseconds())
	if len(lapsed) != 50 {
		t.Fatalf("want all 50 expired after clock jump, got %d", len(lapsed))
	}
}

func TestTrackerRemoveIsPointerExact(t *testing.T) {
	tr := NewTracker(time.Minute)
	now := time.Unix(1000, 0).UnixNano()
	old := tr.Add("c1", now)
	fresh := tr.Add("c1", now) // takeover replaces the entry

	tr.Remove(old) // stale remove must not disturb the fresh entry
	if tr.Len() != 1 {
		t.Fatalf("stale Remove evicted the fresh entry")
	}
	tr.Remove(fresh)
	if tr.Len() != 0 {
		t.Fatalf("Remove left %d entries", tr.Len())
	}
	tr.Remove(fresh) // idempotent
}

func TestTrackerExpired(t *testing.T) {
	ttl := time.Minute
	tr := NewTracker(ttl)
	now := time.Unix(1000, 0).UnixNano()
	e := tr.Add("c1", now)
	if tr.Expired(e, now+ttl.Nanoseconds()-1) {
		t.Fatal("expired before TTL")
	}
	if !tr.Expired(e, now+ttl.Nanoseconds()) {
		t.Fatal("not expired at TTL")
	}
	if tr.Expired(nil, now) {
		t.Fatal("nil entry reported expired")
	}
}

func TestAdmissionMaxSessions(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxSessions: 2})
	if _, err := a.Begin(1, 0); err != nil {
		t.Fatalf("below bound refused: %v", err)
	}
	_, err := a.Begin(2, 0)
	if !errors.Is(err, ErrServerFull) {
		t.Fatalf("want ErrServerFull, got %v", err)
	}
	st := a.Stats()
	if st.Admitted != 1 || st.RefusedFull != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdmissionConcurrencyCap(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2})
	done1, err := a.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := a.Begin(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Begin(0, 0); !errors.Is(err, ErrAdmissionThrottled) {
		t.Fatalf("want throttled at cap, got %v", err)
	}
	done1()
	done1() // idempotent: must not free a second slot
	if _, err := a.Begin(0, 0); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
	if _, err := a.Begin(0, 0); !errors.Is(err, ErrAdmissionThrottled) {
		t.Fatal("double release freed two slots")
	}
	done2()
}

func TestAdmissionTokenBucket(t *testing.T) {
	a := NewAdmission(AdmissionConfig{HandshakeRate: 2, HandshakeBurst: 2})
	now := time.Unix(1000, 0).UnixNano()
	for i := 0; i < 2; i++ {
		if _, err := a.Begin(0, now); err != nil {
			t.Fatalf("burst attempt %d refused: %v", i, err)
		}
	}
	if _, err := a.Begin(0, now); !errors.Is(err, ErrAdmissionThrottled) {
		t.Fatalf("want throttled after burst, got %v", err)
	}
	// Half a second refills one token at 2/s.
	now += time.Second.Nanoseconds() / 2
	if _, err := a.Begin(0, now); err != nil {
		t.Fatalf("refill not applied: %v", err)
	}
	if _, err := a.Begin(0, now); !errors.Is(err, ErrAdmissionThrottled) {
		t.Fatal("refill over-credited")
	}
	// A long quiet period caps at the burst, not unbounded credit.
	now += time.Hour.Nanoseconds()
	for i := 0; i < 2; i++ {
		if _, err := a.Begin(0, now); err != nil {
			t.Fatalf("post-idle attempt %d refused: %v", i, err)
		}
	}
	if _, err := a.Begin(0, now); !errors.Is(err, ErrAdmissionThrottled) {
		t.Fatal("burst cap not enforced after idle")
	}
}

func TestAdmissionDisabledAdmitsEverything(t *testing.T) {
	a := NewAdmission(AdmissionConfig{})
	for i := 0; i < 1000; i++ {
		done, err := a.Begin(1<<20, 0)
		if err != nil {
			t.Fatalf("zero config refused: %v", err)
		}
		done()
	}
}

func TestTicketRoundTrip(t *testing.T) {
	s, err := NewTicketSealer(0)
	if err != nil {
		t.Fatal(err)
	}
	pub, _, _ := ed25519.GenerateKey(nil)
	in := Ticket{
		ClientID:       "c1",
		SignPub:        pub,
		Master:         []byte("0123456789abcdef0123456789abcdef"),
		ConfigVersion:  7,
		IssuedUnixNano: 42,
	}
	blob, err := s.Seal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Open(blob, 43)
	if err != nil {
		t.Fatal(err)
	}
	if out.ClientID != in.ClientID || !pub.Equal(out.SignPub) ||
		string(out.Master) != string(in.Master) || out.ConfigVersion != 7 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestTicketRejectsTamperAndForeignKey(t *testing.T) {
	s1, _ := NewTicketSealer(0)
	s2, _ := NewTicketSealer(0)
	pub, _, _ := ed25519.GenerateKey(nil)
	blob, err := s1.Seal(Ticket{ClientID: "c1", SignPub: pub, Master: []byte("m")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open(blob, 0); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("foreign key accepted: %v", err)
	}
	blob[len(blob)-1] ^= 1
	if _, err := s1.Open(blob, 0); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("tampered ticket accepted: %v", err)
	}
	if _, err := s1.Open(nil, 0); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("empty blob accepted: %v", err)
	}
}

func TestTicketMaxAge(t *testing.T) {
	s, _ := NewTicketSealer(time.Minute)
	pub, _, _ := ed25519.GenerateKey(nil)
	blob, err := s.Seal(Ticket{ClientID: "c1", SignPub: pub, Master: []byte("m"), IssuedUnixNano: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(blob, time.Minute.Nanoseconds()); err != nil {
		t.Fatalf("ticket at max age refused: %v", err)
	}
	if _, err := s.Open(blob, time.Minute.Nanoseconds()+1); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("expired ticket accepted: %v", err)
	}
}

// TestStress100kTracker churns a 100k-session tracker under concurrent
// touches, sweeps, adds and removes. Run under -race in CI; correctness
// assertion is that live (touched) sessions survive and silent ones are
// fully reclaimed.
func TestStress100kTracker(t *testing.T) {
	const n = 100_000
	ttl := time.Minute
	tr := NewTracker(ttl)
	base := time.Unix(1000, 0).UnixNano()

	entries := make([]*Entry, n)
	for i := range entries {
		entries[i] = tr.Add(fmt.Sprintf("s%d", i), base)
	}

	// Half the fleet stays live (touched by 8 goroutines), half goes
	// silent; a sweeper advances virtual time past several TTLs.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for step := 0; step < 4; step++ {
				now := base + int64(step+1)*ttl.Nanoseconds()/2
				for i := g; i < n/2; i += 8 {
					entries[i].Touch(now)
				}
			}
		}(g)
	}
	var lapsed int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for step := 0; step < 8; step++ {
			now := base + int64(step+1)*ttl.Nanoseconds()/2
			lapsed += len(tr.Sweep(now))
		}
	}()
	wg.Wait()

	// Final deterministic accounting: everything now silent expires.
	final := base + 100*ttl.Nanoseconds()
	lapsed += len(tr.Sweep(final))
	if lapsed != n {
		t.Fatalf("lapsed %d of %d entries", lapsed, n)
	}
	if got := tr.Len(); got != 0 {
		t.Fatalf("%d entries leaked", got)
	}
}
