package lifecycle

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// ErrBadTicket reports a resumption ticket that failed to open: wrong
// key (server restarted), tampered, truncated, or past its maximum age.
var ErrBadTicket = errors.New("lifecycle: resumption ticket invalid")

// Ticket is the server's sealed resumption state for one client. It is
// opaque to the client (AEAD under a server-local key) and binds the
// resumable session to the signing key of the client's attested
// certificate: resuming requires a signature under SignPub, so a stolen
// ticket alone is useless, and the server re-admits the client without
// repeating attestation or enrolment — the certificate was already
// earned (paper §III-C: clients attest once).
type Ticket struct {
	ClientID       string            `json:"id"`
	SignPub        ed25519.PublicKey `json:"spub"`
	Master         []byte            `json:"master"`
	ConfigVersion  uint64            `json:"ver"`
	IssuedUnixNano int64             `json:"iat"`
	// Measurement is the hex measurement of the attested certificate the
	// ticket descends from. A resumed session has no certificate in hand,
	// so the ticket carries the build identity forward: measurement-
	// targeted rollouts and revocation see resumed sessions exactly like
	// freshly attested ones.
	Measurement string `json:"meas,omitempty"`
}

// TicketSealer seals and opens resumption tickets with AES-GCM under a
// random in-memory key: a server restart invalidates all outstanding
// tickets, which is the desired failure mode (clients fall back to the
// full handshake).
type TicketSealer struct {
	aead   cipher.AEAD
	maxAge int64 // nanoseconds; 0 = unlimited
}

// NewTicketSealer creates a sealer with a fresh random key. maxAge
// bounds how long an issued ticket stays resumable (0 = for the life of
// the server key).
func NewTicketSealer(maxAge time.Duration) (*TicketSealer, error) {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, fmt.Errorf("lifecycle: ticket key: %w", err)
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &TicketSealer{aead: aead, maxAge: maxAge.Nanoseconds()}, nil
}

// Seal encodes and encrypts the ticket.
func (s *TicketSealer) Seal(t Ticket) ([]byte, error) {
	plain, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, s.aead.NonceSize(), s.aead.NonceSize()+len(plain)+s.aead.Overhead())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("lifecycle: ticket nonce: %w", err)
	}
	return s.aead.Seal(nonce, nonce, plain, nil), nil
}

// Open decrypts and decodes a ticket, rejecting expired ones. This is
// the entire cryptographic cost of admitting a resume attempt before
// the signature check — one AEAD open, no certificate chain, no ECDH.
func (s *TicketSealer) Open(blob []byte, now int64) (Ticket, error) {
	ns := s.aead.NonceSize()
	if len(blob) < ns+s.aead.Overhead() {
		return Ticket{}, fmt.Errorf("%w: short blob", ErrBadTicket)
	}
	plain, err := s.aead.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return Ticket{}, fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	var t Ticket
	if err := json.Unmarshal(plain, &t); err != nil {
		return Ticket{}, fmt.Errorf("%w: %v", ErrBadTicket, err)
	}
	if len(t.SignPub) != ed25519.PublicKeySize || len(t.Master) == 0 || t.ClientID == "" {
		return Ticket{}, fmt.Errorf("%w: incomplete ticket", ErrBadTicket)
	}
	if s.maxAge > 0 && now-t.IssuedUnixNano > s.maxAge {
		return Ticket{}, fmt.Errorf("%w: expired", ErrBadTicket)
	}
	return t, nil
}
