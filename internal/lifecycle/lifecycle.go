// Package lifecycle is the session lifecycle engine for long-running
// EndBox deployments (ROADMAP: "session lifecycle for millions of
// clients"). It supplies the three mechanisms that turn the sharded
// session table from a benchmark artifact into a service that survives
// real churn:
//
//   - Tracker: per-session liveness fed from the data path by a
//     lock-free Touch, swept lazily by a timing wheel (the
//     internal/flow wheel pattern) so idle sessions past a TTL are
//     found in amortised O(1) without scanning the table.
//   - Admission: a token bucket on handshake attempts, a concurrent-
//     handshake cost cap, and a hard max-sessions bound — all checked
//     before any expensive crypto, so a connect storm is refused with a
//     typed error instead of starving the data plane.
//   - TicketSealer: AEAD-sealed resumption tickets bound to the
//     client's attested certificate key, letting a returning client
//     re-establish its session without repeating attestation and
//     enrolment (the session-resumption trick of Secure
//     Middlebox-Assisted QUIC, PAPERS.md).
//
// The package is transport- and enclave-agnostic: internal/vpn wires
// the tracker and tickets into the handshake and frame path, and
// internal/core owns the admission gate and the eviction sweep.
package lifecycle

import "errors"

// Typed admission errors, returned before any expensive crypto runs.
var (
	// ErrAdmissionThrottled reports that the handshake token bucket or
	// the concurrent-handshake cap refused the attempt; the client
	// should back off and retry.
	ErrAdmissionThrottled = errors.New("lifecycle: handshake throttled by admission control")
	// ErrServerFull reports that the hard session bound is reached; the
	// attempt will keep failing until sessions are evicted or removed.
	ErrServerFull = errors.New("lifecycle: session limit reached")
)

// AdmissionStats counts admission-control outcomes.
type AdmissionStats struct {
	// Admitted handshake attempts that passed every check.
	Admitted uint64
	// Throttled attempts refused by the token bucket or concurrency cap.
	Throttled uint64
	// RefusedFull attempts refused by the hard session bound.
	RefusedFull uint64
}

// SessionStats counts session lifecycle outcomes on the server.
type SessionStats struct {
	// Active is the number of established sessions.
	Active int
	// Tracked is the number of sessions with liveness tracking (equals
	// Active when a TTL is configured, 0 otherwise).
	Tracked int
	// Evicted counts sessions removed because their liveness lapsed.
	Evicted uint64
	// Resumed counts sessions re-established from a resumption ticket.
	Resumed uint64
	// Takeovers counts expired sessions replaced in place by a fresh
	// handshake or resume for the same client ID.
	Takeovers uint64
	// Revoked counts sessions evicted because their enclave build was
	// revoked (policy.Revoke), as opposed to liveness lapses.
	Revoked uint64
	// ByBuild breaks Active down by attested enclave build: registered
	// build name (or hex measurement for unregistered builds) -> live
	// session count. Nil when no session carries a measurement.
	ByBuild map[string]int
}

// Stats is the combined lifecycle snapshot exposed by
// Deployment.LifecycleStats.
type Stats struct {
	Sessions  SessionStats
	Admission AdmissionStats
}
