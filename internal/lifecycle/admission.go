package lifecycle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds the handshake path. The zero value disables
// every check (legacy behaviour: everything is admitted).
type AdmissionConfig struct {
	// HandshakeRate is the sustained handshake rate admitted per second
	// (token-bucket refill). 0 disables rate limiting.
	HandshakeRate float64
	// HandshakeBurst is the token-bucket depth — how many handshakes
	// may arrive back to back before the rate limit bites. 0 defaults
	// to max(1, ceil(HandshakeRate)).
	HandshakeBurst int
	// MaxConcurrent caps handshakes in flight at once (the cost cap: a
	// handshake holds CPU for certificate verification and ECDH, so a
	// storm of concurrent ones starves the data plane). 0 disables.
	MaxConcurrent int
	// MaxSessions is the hard bound on established sessions. Attempts
	// beyond it fail with ErrServerFull. 0 disables.
	MaxSessions int
}

// Enabled reports whether any check is configured.
func (c AdmissionConfig) Enabled() bool {
	return c.HandshakeRate > 0 || c.MaxConcurrent > 0 || c.MaxSessions > 0
}

// Validate rejects nonsensical configurations.
func (c AdmissionConfig) Validate() error {
	if c.HandshakeRate < 0 || c.HandshakeBurst < 0 || c.MaxConcurrent < 0 || c.MaxSessions < 0 {
		return fmt.Errorf("lifecycle: negative admission bound: %+v", c)
	}
	return nil
}

// Admission is the handshake admission gate. Begin is called with the
// current session count before any expensive crypto; the returned
// release function must be called when the handshake (or resume)
// finishes, successfully or not, to free the concurrency slot.
type Admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	tokens   float64
	lastFill int64 // unix nanoseconds of the last refill
	inflight int

	admitted    atomic.Uint64
	throttled   atomic.Uint64
	refusedFull atomic.Uint64
}

// NewAdmission creates the gate with a full token bucket.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.HandshakeRate > 0 && cfg.HandshakeBurst == 0 {
		cfg.HandshakeBurst = int(cfg.HandshakeRate)
		if float64(cfg.HandshakeBurst) < cfg.HandshakeRate {
			cfg.HandshakeBurst++
		}
		if cfg.HandshakeBurst < 1 {
			cfg.HandshakeBurst = 1
		}
	}
	return &Admission{cfg: cfg, tokens: float64(cfg.HandshakeBurst), lastFill: -1}
}

// Begin runs every admission check in cheapest-to-most-binding order:
// the hard session bound, the concurrency cap, then the token bucket
// (checked last so a refused-full attempt does not burn a token). On
// success it returns an idempotent release for the concurrency slot.
func (a *Admission) Begin(sessions int, now int64) (func(), error) {
	if a.cfg.MaxSessions > 0 && sessions >= a.cfg.MaxSessions {
		a.refusedFull.Add(1)
		return nil, fmt.Errorf("%w: %d sessions at bound %d", ErrServerFull, sessions, a.cfg.MaxSessions)
	}
	a.mu.Lock()
	if a.cfg.MaxConcurrent > 0 && a.inflight >= a.cfg.MaxConcurrent {
		a.mu.Unlock()
		a.throttled.Add(1)
		return nil, fmt.Errorf("%w: %d handshakes in flight at cap %d", ErrAdmissionThrottled, a.cfg.MaxConcurrent, a.cfg.MaxConcurrent)
	}
	if a.cfg.HandshakeRate > 0 {
		if a.lastFill < 0 {
			a.lastFill = now
		}
		if elapsed := now - a.lastFill; elapsed > 0 {
			a.tokens += float64(elapsed) / float64(time.Second) * a.cfg.HandshakeRate
			if max := float64(a.cfg.HandshakeBurst); a.tokens > max {
				a.tokens = max
			}
			a.lastFill = now
		}
		if a.tokens < 1 {
			a.mu.Unlock()
			a.throttled.Add(1)
			return nil, fmt.Errorf("%w: handshake rate %.3g/s exceeded", ErrAdmissionThrottled, a.cfg.HandshakeRate)
		}
		a.tokens--
	}
	a.inflight++
	a.mu.Unlock()
	a.admitted.Add(1)

	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight--
			a.mu.Unlock()
		})
	}, nil
}

// Stats snapshots the admission counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		Throttled:   a.throttled.Load(),
		RefusedFull: a.refusedFull.Load(),
	}
}
