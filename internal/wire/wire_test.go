package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testKeys(dir string) Keys {
	return DeriveKeys([]byte("master secret for tests"), dir)
}

func TestDeriveKeysDirectional(t *testing.T) {
	a := testKeys("client-to-server")
	b := testKeys("server-to-client")
	if a == b {
		t.Error("directional keys must differ")
	}
	if a != testKeys("client-to-server") {
		t.Error("derivation not deterministic")
	}
	other := DeriveKeys([]byte("different master"), "client-to-server")
	if a == other {
		t.Error("different masters must yield different keys")
	}
}

func TestCodecRoundTripEncrypted(t *testing.T) {
	c, err := NewCodec(ModeEncrypted, testKeys("c2s"))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 15, 16, 17, 1500, 9000} {
		payload := bytes.Repeat([]byte{0xA5}, size)
		frame, err := c.Seal(42, payload)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", size, err)
		}
		id, got, err := c.Open(frame)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", size, err)
		}
		if id != 42 {
			t.Errorf("id = %d, want 42", id)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("payload mismatch at size %d", size)
		}
		if want := len(payload) + c.Overhead(len(payload)); len(frame) != want {
			t.Errorf("frame len %d != payload %d + overhead %d", len(frame), len(payload), c.Overhead(len(payload)))
		}
	}
}

func TestCodecRoundTripIntegrityOnly(t *testing.T) {
	c, err := NewCodec(ModeIntegrityOnly, testKeys("c2s"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("visible to the ISP but authenticated")
	frame, err := c.Seal(7, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Payload must be readable in the frame (not encrypted).
	if !bytes.Contains(frame, payload) {
		t.Error("integrity-only frame should carry plaintext payload")
	}
	id, got, err := c.Open(frame)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || !bytes.Equal(got, payload) {
		t.Errorf("round trip mismatch: id=%d", id)
	}
}

func TestEncryptedFrameHidesPayload(t *testing.T) {
	c, err := NewCodec(ModeEncrypted, testKeys("c2s"))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("secret"), 20)
	frame, err := c.Seal(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(frame, []byte("secretsecret")) {
		t.Error("plaintext visible in encrypted frame")
	}
}

func TestTamperDetection(t *testing.T) {
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		c, err := NewCodec(mode, testKeys("c2s"))
		if err != nil {
			t.Fatal(err)
		}
		frame, err := c.Seal(1, []byte("payload data here"))
		if err != nil {
			t.Fatal(err)
		}
		for _, pos := range []int{0, 8, len(frame) / 2, len(frame) - 1} {
			bad := append([]byte(nil), frame...)
			bad[pos] ^= 0x80
			if _, _, err := c.Open(bad); !errors.Is(err, ErrAuthFailed) {
				t.Errorf("mode %v: flipped byte %d: err = %v, want ErrAuthFailed", mode, pos, err)
			}
		}
	}
}

func TestOpenWrongKey(t *testing.T) {
	c1, _ := NewCodec(ModeEncrypted, testKeys("c2s"))
	c2, _ := NewCodec(ModeEncrypted, DeriveKeys([]byte("other master"), "c2s"))
	frame, err := c1.Seal(1, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Open(frame); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong key: err = %v, want ErrAuthFailed", err)
	}
}

func TestOpenTruncated(t *testing.T) {
	c, _ := NewCodec(ModeEncrypted, testKeys("c2s"))
	if _, _, err := c.Open(make([]byte, 10)); !errors.Is(err, ErrTruncFrame) {
		t.Errorf("err = %v, want ErrTruncFrame", err)
	}
}

func TestInvalidMode(t *testing.T) {
	if _, err := NewCodec(Mode(0), testKeys("x")); err == nil {
		t.Error("zero mode accepted")
	}
	if got := ModeEncrypted.String(); got != "encrypted" {
		t.Errorf("String() = %q", got)
	}
	if got := ModeIntegrityOnly.String(); got != "integrity-only" {
		t.Errorf("String() = %q", got)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	enc, _ := NewCodec(ModeEncrypted, testKeys("c2s"))
	auth, _ := NewCodec(ModeIntegrityOnly, testKeys("c2s"))
	f := func(id uint64, payload []byte) bool {
		if len(payload) > 9000 {
			payload = payload[:9000]
		}
		for _, c := range []*Codec{enc, auth} {
			frame, err := c.Seal(id, payload)
			if err != nil {
				return false
			}
			gotID, got, err := c.Open(frame)
			if err != nil || gotID != id || !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReplayWindowInOrder(t *testing.T) {
	var w ReplayWindow
	for id := uint64(1); id <= 1000; id++ {
		if err := w.Accept(id); err != nil {
			t.Fatalf("in-order id %d rejected: %v", id, err)
		}
	}
}

func TestReplayWindowDuplicate(t *testing.T) {
	var w ReplayWindow
	for _, id := range []uint64{1, 2, 3} {
		if err := w.Accept(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint64{1, 2, 3} {
		if err := w.Accept(id); !errors.Is(err, ErrReplay) {
			t.Errorf("duplicate id %d: err = %v, want ErrReplay", id, err)
		}
	}
}

func TestReplayWindowOutOfOrder(t *testing.T) {
	var w ReplayWindow
	order := []uint64{5, 3, 8, 4, 7, 6, 1, 2}
	for _, id := range order {
		if err := w.Accept(id); err != nil {
			t.Errorf("out-of-order id %d rejected: %v", id, err)
		}
	}
	// All seen now; every retry must fail.
	for _, id := range order {
		if err := w.Accept(id); !errors.Is(err, ErrReplay) {
			t.Errorf("replayed id %d accepted", id)
		}
	}
}

func TestReplayWindowStale(t *testing.T) {
	var w ReplayWindow
	if err := w.Accept(1000); err != nil {
		t.Fatal(err)
	}
	if err := w.Accept(1000 - windowSize); !errors.Is(err, ErrReplay) {
		t.Errorf("stale id accepted: err = %v", err)
	}
	if err := w.Accept(1000 - windowSize + 1); err != nil {
		t.Errorf("id just inside window rejected: %v", err)
	}
}

func TestReplayWindowBigJump(t *testing.T) {
	var w ReplayWindow
	if err := w.Accept(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Accept(1 + 2*windowSize); err != nil {
		t.Fatalf("forward jump rejected: %v", err)
	}
	// Everything at or below the old window is now stale.
	if err := w.Accept(2); !errors.Is(err, ErrReplay) {
		t.Error("stale id after jump accepted")
	}
}

func TestReplayWindowProperty(t *testing.T) {
	// Property: a strictly increasing sequence is always accepted; a
	// repeat of any accepted id within the window is always rejected.
	f := func(deltas []uint8) bool {
		var w ReplayWindow
		id := uint64(1)
		var seen []uint64
		for _, d := range deltas {
			if err := w.Accept(id); err != nil {
				return false
			}
			seen = append(seen, id)
			id += uint64(d%16) + 1
		}
		for _, s := range seen {
			if id-s < windowSize {
				if err := w.Accept(s); err == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSessionEndToEnd(t *testing.T) {
	master := []byte("session master secret")
	client, err := NewSession(master, ModeEncrypted, true)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewSession(master, ModeEncrypted, false)
	if err != nil {
		t.Fatal(err)
	}

	// Client to server.
	frame, err := client.Seal([]byte("from client"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.Open(frame)
	if err != nil {
		t.Fatalf("server open: %v", err)
	}
	if string(got) != "from client" {
		t.Errorf("got %q", got)
	}

	// Server to client.
	frame, err = server.Seal([]byte("from server"))
	if err != nil {
		t.Fatal(err)
	}
	got, err = client.Open(frame)
	if err != nil {
		t.Fatalf("client open: %v", err)
	}
	if string(got) != "from server" {
		t.Errorf("got %q", got)
	}
}

func TestSessionReplayRejected(t *testing.T) {
	master := []byte("replay master")
	client, _ := NewSession(master, ModeEncrypted, true)
	server, _ := NewSession(master, ModeEncrypted, false)

	frame, err := client.Seal([]byte("pkt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(frame); !errors.Is(err, ErrReplay) {
		t.Errorf("replayed frame: err = %v, want ErrReplay", err)
	}
}

func TestSessionDirectionIsolation(t *testing.T) {
	// A frame sealed by the client must not verify as a server frame on
	// the client's own receive path (reflection attack).
	master := []byte("reflect master")
	client, _ := NewSession(master, ModeEncrypted, true)
	frame, err := client.Seal([]byte("pkt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open(frame); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("reflected frame accepted: err = %v", err)
	}
}

func BenchmarkSealEncrypted1500(b *testing.B) {
	c, _ := NewCodec(ModeEncrypted, testKeys("bench"))
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Seal(uint64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenEncrypted1500(b *testing.B) {
	c, _ := NewCodec(ModeEncrypted, testKeys("bench"))
	frame, _ := c.Seal(1, make([]byte, 1500))
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Open(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealIntegrityOnly1500(b *testing.B) {
	c, _ := NewCodec(ModeIntegrityOnly, testKeys("bench"))
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Seal(uint64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}
