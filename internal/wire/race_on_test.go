//go:build race

package wire

// raceEnabled skips exact allocation-count assertions under the race
// detector, whose instrumentation defeats sync.Pool reuse.
const raceEnabled = true
