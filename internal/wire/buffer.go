package wire

import "sync"

// Frame buffer pool
//
// The steady-state packet path recycles every buffer it touches through
// this pool: encapsulation payloads, sealed frames, ecall slabs and
// transport receive buffers. Buffers come in a few capacity classes so one
// pool serves MTU-sized frames, UDP-maximum datagrams and multi-packet
// ecall slabs without fragmenting.
//
// Ownership rules (see DESIGN.md "Buffer ownership"):
//
//   - GetBuffer transfers ownership of the returned buffer to the caller.
//   - Passing a buffer down a synchronous call (Send, HandleFrame, Deliver,
//     an Observer hook) lends it for the duration of that call only; the
//     callee must not retain it or write to it after returning.
//   - Whoever owns a buffer when it goes out of use calls PutBuffer exactly
//     once. Forgetting to release is safe (the buffer is garbage collected,
//     costing only a missed reuse); releasing twice, or releasing a buffer
//     someone else still aliases, is a use-after-free and is not.
//   - PutBuffer accepts any byte slice: foreign buffers big enough for a
//     class are adopted, the rest are dropped on the floor.

// Buffer capacity classes: MTU frames, batched frame bursts, UDP-maximum
// datagrams, and the enclave-boundary slab limit.
var bufClasses = [...]int{2048, 16384, 65536, 262144}

// bufClass holds pooled buffers of one capacity. Two pools cycle the same
// objects: bufs holds full buffers, hdrs holds the spare slice headers left
// behind when a buffer is checked out — so a steady Get/Put cycle allocates
// nothing at all.
type bufClass struct {
	size int
	bufs sync.Pool // *[]byte with len == cap == size
	hdrs sync.Pool // *[]byte with nil contents, awaiting reuse by put
}

var classes = func() [len(bufClasses)]*bufClass {
	var cs [len(bufClasses)]*bufClass
	for i, size := range bufClasses {
		cs[i] = &bufClass{size: size}
	}
	return cs
}()

// GetBuffer returns a buffer of length n from the pool (capacity is the
// smallest class that fits, so append within the class never reallocates).
// Requests beyond the largest class are served by plain make and simply
// dropped again by PutBuffer. The buffer's contents are undefined.
func GetBuffer(n int) []byte {
	for _, c := range classes {
		if n <= c.size {
			return c.get(n)
		}
	}
	return make([]byte, n)
}

// PutBuffer returns a buffer to the pool. The caller must own b (see the
// ownership rules above): after the call any alias of b — including
// sub-slices handed to other components — is invalid. Buffers too small
// for the smallest class are dropped, and so are buffers larger than the
// biggest class (the GetBuffer make fallback): pooling one resliced to
// class size would pin the whole oversized backing array for the pool's
// lifetime.
func PutBuffer(b []byte) {
	if b == nil || cap(b) > classes[len(classes)-1].size {
		return
	}
	// Select the largest class whose size fits within b's capacity, so a
	// foreign (make'd) buffer is adopted at the capacity it can actually
	// serve.
	for i := len(classes) - 1; i >= 0; i-- {
		if cap(b) >= classes[i].size {
			classes[i].put(b[:classes[i].size:classes[i].size])
			return
		}
	}
}

func (c *bufClass) get(n int) []byte {
	if p, _ := c.bufs.Get().(*[]byte); p != nil {
		b := (*p)[:n]
		*p = nil
		c.hdrs.Put(p)
		return b
	}
	return make([]byte, n, c.size)
}

func (c *bufClass) put(b []byte) {
	p, _ := c.hdrs.Get().(*[]byte)
	if p == nil {
		p = new([]byte)
	}
	*p = b
	c.bufs.Put(p)
}
