// Package wire implements EndBox's VPN data-channel framing: AES-128-CBC
// encryption with HMAC-SHA256 integrity (encrypt-then-MAC), explicit packet
// IDs, and OpenVPN-style sliding-window replay protection.
//
// Two protection modes exist, matching paper §IV-A "Scenario-specific
// traffic protection": the enterprise scenario encrypts and authenticates
// every packet, while the ISP scenario may skip encryption — the user opted
// in to traffic analysis, so only the *fact* that Click processed egress
// traffic must be attested, which integrity protection alone provides.
//
// All Seal/Open operations run inside the enclave in the real system; the
// packages layered above arrange that (see internal/core).
//
// Buffer ownership: this package also owns the size-classed frame-buffer
// pool (GetBuffer/PutBuffer) the whole packet path recycles through. The
// rules, stated fully in DESIGN.md "Buffer ownership", are: GetBuffer
// transfers ownership to the caller, who releases with PutBuffer exactly
// once (double-release is a use-after-free; abandoning to the GC is safe);
// passing a buffer down a synchronous call lends it for the duration of
// that call only; asynchronous handoffs transfer ownership together with
// the release obligation. Aliasing is legal within a lend — SealTo writes
// into a caller-supplied buffer, OpenInPlace decrypts inside the frame's
// own buffer and returns an aliasing payload, and all such aliases die
// when the lend ends.
package wire

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
)

// Mode selects the data-channel protection level.
type Mode int

// Protection modes.
const (
	// ModeEncrypted provides AES-128-CBC confidentiality plus HMAC-SHA256
	// integrity (enterprise scenario; OpenVPN's default static-key suite).
	ModeEncrypted Mode = iota + 1
	// ModeIntegrityOnly authenticates packets without encrypting them (ISP
	// scenario optimisation, paper §IV-A).
	ModeIntegrityOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeEncrypted:
		return "encrypted"
	case ModeIntegrityOnly:
		return "integrity-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sizes of frame components.
const (
	// KeySize is the AES-128 key length.
	KeySize = 16
	// MACKeySize is the HMAC-SHA256 key length.
	MACKeySize = 32
	// macLen is the truncated MAC appended to each frame. OpenVPN uses the
	// full HMAC-SHA256 output.
	macLen = sha256.Size
	// idLen is the explicit packet ID prefix.
	idLen = 8
)

// Common errors.
var (
	ErrAuthFailed = errors.New("wire: HMAC verification failed")
	ErrTruncFrame = errors.New("wire: frame too short")
	ErrBadPadding = errors.New("wire: invalid CBC padding")
	ErrReplay     = errors.New("wire: replayed or stale packet ID")
)

// Keys is directional key material for one side of a session.
type Keys struct {
	Cipher [KeySize]byte
	MAC    [MACKeySize]byte
}

// DeriveKeys expands a session master secret into directional keys, one set
// per direction so client→server and server→client frames never share keys.
func DeriveKeys(master []byte, direction string) Keys {
	var k Keys
	prf := func(label string, out []byte) {
		mac := hmac.New(sha256.New, master)
		mac.Write([]byte("endbox-wire-v1:" + direction + ":" + label))
		copy(out, mac.Sum(nil))
	}
	var buf [sha256.Size]byte
	prf("cipher", buf[:])
	copy(k.Cipher[:], buf[:KeySize])
	prf("mac", buf[:])
	copy(k.MAC[:], buf[:MACKeySize])
	return k
}

// Codec seals and opens frames in one direction. It is stateless with
// respect to packet IDs; Session adds ID assignment and replay checking.
// Codecs are safe for concurrent use: the reusable crypto state (HMAC
// hashes, CBC block modes) lives in internal pools.
type Codec struct {
	mode  Mode
	block cipher.Block
	mac   [MACKeySize]byte

	// macs pools *macState so the steady-state path never re-derives the
	// HMAC key schedule (hmac.New costs several allocations and two extra
	// SHA-256 blocks per call).
	macs sync.Pool
	// encs / decs pool cipher.BlockModes that support SetIV, so CBC state
	// is reused across packets.
	encs, decs sync.Pool
}

// macState is a pooled HMAC instance plus a scratch array for Sum output,
// heap-resident so Sum never forces an escape-analysis allocation.
type macState struct {
	h   hash.Hash
	sum [sha256.Size]byte
}

// getMAC returns a reset HMAC instance from the pool.
func (c *Codec) getMAC() *macState {
	if st, _ := c.macs.Get().(*macState); st != nil {
		st.h.Reset()
		return st
	}
	return &macState{h: hmac.New(sha256.New, c.mac[:])}
}

func (c *Codec) putMAC(st *macState) { c.macs.Put(st) }

// ivSetter is implemented by the standard library's CBC block modes; it
// lets one BlockMode be reused across packets.
type ivSetter interface{ SetIV([]byte) }

// getEncrypter returns a CBC encrypter primed with iv, pooled when the
// platform's BlockMode supports IV reuse.
func (c *Codec) getEncrypter(iv []byte) cipher.BlockMode {
	if m, _ := c.encs.Get().(cipher.BlockMode); m != nil {
		m.(ivSetter).SetIV(iv)
		return m
	}
	return cipher.NewCBCEncrypter(c.block, iv)
}

func (c *Codec) putEncrypter(m cipher.BlockMode) {
	if _, ok := m.(ivSetter); ok {
		c.encs.Put(m)
	}
}

func (c *Codec) getDecrypter(iv []byte) cipher.BlockMode {
	if m, _ := c.decs.Get().(cipher.BlockMode); m != nil {
		m.(ivSetter).SetIV(iv)
		return m
	}
	return cipher.NewCBCDecrypter(c.block, iv)
}

func (c *Codec) putDecrypter(m cipher.BlockMode) {
	if _, ok := m.(ivSetter); ok {
		c.decs.Put(m)
	}
}

// NewCodec builds a codec from directional keys.
func NewCodec(mode Mode, keys Keys) (*Codec, error) {
	if mode != ModeEncrypted && mode != ModeIntegrityOnly {
		return nil, fmt.Errorf("wire: invalid mode %d", mode)
	}
	block, err := aes.NewCipher(keys.Cipher[:])
	if err != nil {
		return nil, fmt.Errorf("wire: cipher init: %w", err)
	}
	return &Codec{mode: mode, block: block, mac: keys.MAC}, nil
}

// Mode reports the codec's protection mode.
func (c *Codec) Mode() Mode { return c.mode }

// Overhead returns the framing bytes added to a payload of length n,
// letting callers size MTU budgets.
func (c *Codec) Overhead(n int) int {
	switch c.mode {
	case ModeEncrypted:
		pad := aes.BlockSize - n%aes.BlockSize
		return idLen + aes.BlockSize + pad + macLen
	default:
		return idLen + macLen
	}
}

// SealedLen returns the exact frame length for a payload of n bytes.
func (c *Codec) SealedLen(n int) int { return n + c.Overhead(n) }

// Seal frames a payload under the given packet ID:
//
//	encrypted:      id(8) || IV(16) || CBC(payload+pad) || HMAC(32)
//	integrity-only: id(8) ||           payload          || HMAC(32)
//
// The HMAC covers everything before it (encrypt-then-MAC). The frame is
// freshly allocated; SealTo is the pooled-buffer variant the packet path
// uses.
func (c *Codec) Seal(id uint64, payload []byte) ([]byte, error) {
	return c.SealTo(id, payload, make([]byte, c.SealedLen(len(payload))))
}

// SealTo seals payload into dst, which must not alias payload and must
// have capacity of at least SealedLen(len(payload)) bytes. It returns the
// frame, a slice of dst's backing array; ownership of dst stays with the
// caller. SealTo performs no allocation on the steady-state path.
func (c *Codec) SealTo(id uint64, payload, dst []byte) ([]byte, error) {
	frameLen := c.SealedLen(len(payload))
	if cap(dst) < frameLen {
		return nil, fmt.Errorf("wire: SealTo destination too small: %d < %d", cap(dst), frameLen)
	}
	frame := dst[:frameLen]
	binary.BigEndian.PutUint64(frame[:idLen], id)
	switch c.mode {
	case ModeEncrypted:
		iv := frame[idLen : idLen+aes.BlockSize]
		if _, err := rand.Read(iv); err != nil {
			return nil, fmt.Errorf("wire: IV: %w", err)
		}
		pad := aes.BlockSize - len(payload)%aes.BlockSize
		ct := frame[idLen+aes.BlockSize : len(frame)-macLen]
		copy(ct, payload)
		for i := len(payload); i < len(ct); i++ {
			ct[i] = byte(pad)
		}
		enc := c.getEncrypter(iv)
		enc.CryptBlocks(ct, ct)
		c.putEncrypter(enc)
	case ModeIntegrityOnly:
		copy(frame[idLen:], payload)
	}
	body := frame[:len(frame)-macLen]
	st := c.getMAC()
	st.h.Write(body)
	st.h.Sum(body)
	c.putMAC(st)
	return frame, nil
}

// Open authenticates and (in encrypted mode) decrypts a frame, returning
// the packet ID and payload. MAC verification happens before any decryption
// so malformed ciphertexts never reach the cipher.
//
// In integrity-only mode the returned payload aliases frame (the copy the
// previous version made bought nothing: callers consume the payload before
// reusing the frame under the ownership rules in DESIGN.md). In encrypted
// mode the payload is a fresh allocation and frame is left untouched;
// OpenInPlace is the allocation-free variant that decrypts inside frame.
func (c *Codec) Open(frame []byte) (uint64, []byte, error) {
	id, body, err := c.verify(frame)
	if err != nil {
		return 0, nil, err
	}
	if c.mode == ModeIntegrityOnly {
		return id, body[idLen:], nil
	}
	iv := body[idLen : idLen+aes.BlockSize]
	ct := body[idLen+aes.BlockSize:]
	if len(ct) == 0 || len(ct)%aes.BlockSize != 0 {
		return 0, nil, ErrBadPadding
	}
	pt := make([]byte, len(ct))
	dec := c.getDecrypter(iv)
	dec.CryptBlocks(pt, ct)
	c.putDecrypter(dec)
	return c.unpad(id, pt)
}

// OpenInPlace authenticates a frame and decrypts it inside its own buffer,
// returning the packet ID and a payload that aliases frame. The caller
// keeps ownership of frame but must treat its contents as overwritten —
// even on error, since a frame that authenticates but fails padding checks
// has already been decrypted. No allocation happens on any path.
func (c *Codec) OpenInPlace(frame []byte) (uint64, []byte, error) {
	id, body, err := c.verify(frame)
	if err != nil {
		return 0, nil, err
	}
	if c.mode == ModeIntegrityOnly {
		return id, body[idLen:], nil
	}
	iv := body[idLen : idLen+aes.BlockSize]
	ct := body[idLen+aes.BlockSize:]
	if len(ct) == 0 || len(ct)%aes.BlockSize != 0 {
		return 0, nil, ErrBadPadding
	}
	dec := c.getDecrypter(iv)
	dec.CryptBlocks(ct, ct)
	c.putDecrypter(dec)
	return c.unpad(id, ct)
}

// verify checks frame length and MAC, returning the packet ID and the
// MAC-covered body (which aliases frame).
func (c *Codec) verify(frame []byte) (uint64, []byte, error) {
	minLen := idLen + macLen
	if c.mode == ModeEncrypted {
		minLen += aes.BlockSize
	}
	if len(frame) < minLen {
		return 0, nil, ErrTruncFrame
	}
	body, tag := frame[:len(frame)-macLen], frame[len(frame)-macLen:]
	st := c.getMAC()
	st.h.Write(body)
	sum := st.h.Sum(st.sum[:0])
	ok := hmac.Equal(sum, tag)
	c.putMAC(st)
	if !ok {
		return 0, nil, ErrAuthFailed
	}
	return binary.BigEndian.Uint64(body[:idLen]), body, nil
}

// unpad validates and strips CBC padding from a decrypted plaintext.
func (c *Codec) unpad(id uint64, pt []byte) (uint64, []byte, error) {
	pad := int(pt[len(pt)-1])
	if pad == 0 || pad > aes.BlockSize || pad > len(pt) {
		return 0, nil, ErrBadPadding
	}
	for _, b := range pt[len(pt)-pad:] {
		if int(b) != pad {
			return 0, nil, ErrBadPadding
		}
	}
	return id, pt[:len(pt)-pad], nil
}

// ReplayWindow implements OpenVPN's sliding-window replay protection
// (paper §V-A "Replaying traffic"): a 64-entry bitmap trailing the highest
// packet ID seen. IDs older than the window or already seen are rejected.
type ReplayWindow struct {
	mu      sync.Mutex
	highest uint64
	bitmap  uint64
	started bool
}

// windowSize is the number of out-of-order IDs tolerated behind the highest.
const windowSize = 64

// Accept records id and reports whether it is fresh. It is safe for
// concurrent use.
func (w *ReplayWindow) Accept(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		w.started = true
		w.highest = id
		w.bitmap = 1
		return nil
	}
	switch {
	case id > w.highest:
		shift := id - w.highest
		if shift >= windowSize {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.bitmap |= 1
		w.highest = id
		return nil
	case w.highest-id >= windowSize:
		return fmt.Errorf("%w: id %d too old (highest %d)", ErrReplay, id, w.highest)
	default:
		bit := uint64(1) << (w.highest - id)
		if w.bitmap&bit != 0 {
			return fmt.Errorf("%w: duplicate id %d", ErrReplay, id)
		}
		w.bitmap |= bit
		return nil
	}
}

// Session pairs a send codec with a receive codec and replay window; it is
// the object the VPN data channel holds per peer. Send and receive
// directions use independent keys derived from the session master secret.
type Session struct {
	send *Codec
	recv *Codec

	mu     sync.Mutex
	nextID uint64
	replay ReplayWindow
}

// NewSession derives directional codecs from a master secret. isClient
// flips the direction labels so the two ends interoperate.
func NewSession(master []byte, mode Mode, isClient bool) (*Session, error) {
	c2s := DeriveKeys(master, "client-to-server")
	s2c := DeriveKeys(master, "server-to-client")
	sendKeys, recvKeys := c2s, s2c
	if !isClient {
		sendKeys, recvKeys = s2c, c2s
	}
	send, err := NewCodec(mode, sendKeys)
	if err != nil {
		return nil, err
	}
	recv, err := NewCodec(mode, recvKeys)
	if err != nil {
		return nil, err
	}
	return &Session{send: send, recv: recv, nextID: 1}, nil
}

// Mode reports the session's protection mode.
func (s *Session) Mode() Mode { return s.send.mode }

// Overhead reports framing overhead for a payload of n bytes.
func (s *Session) Overhead(n int) int { return s.send.Overhead(n) }

// SealedLen reports the exact frame length for a payload of n bytes.
func (s *Session) SealedLen(n int) int { return s.send.SealedLen(n) }

// Seal frames an outgoing payload with the next packet ID.
func (s *Session) Seal(payload []byte) ([]byte, error) {
	return s.send.Seal(s.takeID(), payload)
}

// SealTo frames an outgoing payload with the next packet ID into dst (see
// Codec.SealTo for the capacity and aliasing requirements).
func (s *Session) SealTo(payload, dst []byte) ([]byte, error) {
	return s.send.SealTo(s.takeID(), payload, dst)
}

func (s *Session) takeID() uint64 {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	return id
}

// Open authenticates, replay-checks and decrypts an incoming frame. In
// integrity-only mode the payload aliases frame; see Codec.Open.
func (s *Session) Open(frame []byte) ([]byte, error) {
	return s.open(s.recv.Open, frame)
}

// OpenInPlace authenticates, replay-checks and decrypts an incoming frame
// inside its own buffer; the payload aliases frame and the frame contents
// are consumed even on error (see Codec.OpenInPlace).
func (s *Session) OpenInPlace(frame []byte) ([]byte, error) {
	return s.open(s.recv.OpenInPlace, frame)
}

func (s *Session) open(via func([]byte) (uint64, []byte, error), frame []byte) ([]byte, error) {
	id, payload, err := via(frame)
	if err != nil {
		return nil, err
	}
	if err := s.replay.Accept(id); err != nil {
		return nil, err
	}
	return payload, nil
}
