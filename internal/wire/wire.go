// Package wire implements EndBox's VPN data-channel framing: AES-128-CBC
// encryption with HMAC-SHA256 integrity (encrypt-then-MAC), explicit packet
// IDs, and OpenVPN-style sliding-window replay protection.
//
// Two protection modes exist, matching paper §IV-A "Scenario-specific
// traffic protection": the enterprise scenario encrypts and authenticates
// every packet, while the ISP scenario may skip encryption — the user opted
// in to traffic analysis, so only the *fact* that Click processed egress
// traffic must be attested, which integrity protection alone provides.
//
// All Seal/Open operations run inside the enclave in the real system; the
// packages layered above arrange that (see internal/core).
package wire

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Mode selects the data-channel protection level.
type Mode int

// Protection modes.
const (
	// ModeEncrypted provides AES-128-CBC confidentiality plus HMAC-SHA256
	// integrity (enterprise scenario; OpenVPN's default static-key suite).
	ModeEncrypted Mode = iota + 1
	// ModeIntegrityOnly authenticates packets without encrypting them (ISP
	// scenario optimisation, paper §IV-A).
	ModeIntegrityOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeEncrypted:
		return "encrypted"
	case ModeIntegrityOnly:
		return "integrity-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sizes of frame components.
const (
	// KeySize is the AES-128 key length.
	KeySize = 16
	// MACKeySize is the HMAC-SHA256 key length.
	MACKeySize = 32
	// macLen is the truncated MAC appended to each frame. OpenVPN uses the
	// full HMAC-SHA256 output.
	macLen = sha256.Size
	// idLen is the explicit packet ID prefix.
	idLen = 8
)

// Common errors.
var (
	ErrAuthFailed = errors.New("wire: HMAC verification failed")
	ErrTruncFrame = errors.New("wire: frame too short")
	ErrBadPadding = errors.New("wire: invalid CBC padding")
	ErrReplay     = errors.New("wire: replayed or stale packet ID")
)

// Keys is directional key material for one side of a session.
type Keys struct {
	Cipher [KeySize]byte
	MAC    [MACKeySize]byte
}

// DeriveKeys expands a session master secret into directional keys, one set
// per direction so client→server and server→client frames never share keys.
func DeriveKeys(master []byte, direction string) Keys {
	var k Keys
	prf := func(label string, out []byte) {
		mac := hmac.New(sha256.New, master)
		mac.Write([]byte("endbox-wire-v1:" + direction + ":" + label))
		copy(out, mac.Sum(nil))
	}
	var buf [sha256.Size]byte
	prf("cipher", buf[:])
	copy(k.Cipher[:], buf[:KeySize])
	prf("mac", buf[:])
	copy(k.MAC[:], buf[:MACKeySize])
	return k
}

// Codec seals and opens frames in one direction. It is stateless with
// respect to packet IDs; Session adds ID assignment and replay checking.
type Codec struct {
	mode  Mode
	block cipher.Block
	mac   [MACKeySize]byte
}

// NewCodec builds a codec from directional keys.
func NewCodec(mode Mode, keys Keys) (*Codec, error) {
	if mode != ModeEncrypted && mode != ModeIntegrityOnly {
		return nil, fmt.Errorf("wire: invalid mode %d", mode)
	}
	block, err := aes.NewCipher(keys.Cipher[:])
	if err != nil {
		return nil, fmt.Errorf("wire: cipher init: %w", err)
	}
	return &Codec{mode: mode, block: block, mac: keys.MAC}, nil
}

// Mode reports the codec's protection mode.
func (c *Codec) Mode() Mode { return c.mode }

// Overhead returns the framing bytes added to a payload of length n,
// letting callers size MTU budgets.
func (c *Codec) Overhead(n int) int {
	switch c.mode {
	case ModeEncrypted:
		pad := aes.BlockSize - n%aes.BlockSize
		return idLen + aes.BlockSize + pad + macLen
	default:
		return idLen + macLen
	}
}

// Seal frames a payload under the given packet ID:
//
//	encrypted:      id(8) || IV(16) || CBC(payload+pad) || HMAC(32)
//	integrity-only: id(8) ||           payload          || HMAC(32)
//
// The HMAC covers everything before it (encrypt-then-MAC).
func (c *Codec) Seal(id uint64, payload []byte) ([]byte, error) {
	var frame []byte
	switch c.mode {
	case ModeEncrypted:
		pad := aes.BlockSize - len(payload)%aes.BlockSize
		ctLen := len(payload) + pad
		frame = make([]byte, idLen+aes.BlockSize+ctLen+macLen)
		binary.BigEndian.PutUint64(frame[:idLen], id)
		iv := frame[idLen : idLen+aes.BlockSize]
		if _, err := rand.Read(iv); err != nil {
			return nil, fmt.Errorf("wire: IV: %w", err)
		}
		ct := frame[idLen+aes.BlockSize : idLen+aes.BlockSize+ctLen]
		copy(ct, payload)
		for i := len(payload); i < ctLen; i++ {
			ct[i] = byte(pad)
		}
		cipher.NewCBCEncrypter(c.block, iv).CryptBlocks(ct, ct)
	case ModeIntegrityOnly:
		frame = make([]byte, idLen+len(payload)+macLen)
		binary.BigEndian.PutUint64(frame[:idLen], id)
		copy(frame[idLen:], payload)
	}
	m := hmac.New(sha256.New, c.mac[:])
	m.Write(frame[:len(frame)-macLen])
	m.Sum(frame[:len(frame)-macLen])
	return frame, nil
}

// Open authenticates and (in encrypted mode) decrypts a frame, returning
// the packet ID and payload. MAC verification happens before any decryption
// so malformed ciphertexts never reach the cipher.
func (c *Codec) Open(frame []byte) (uint64, []byte, error) {
	minLen := idLen + macLen
	if c.mode == ModeEncrypted {
		minLen += aes.BlockSize
	}
	if len(frame) < minLen {
		return 0, nil, ErrTruncFrame
	}
	body, tag := frame[:len(frame)-macLen], frame[len(frame)-macLen:]
	m := hmac.New(sha256.New, c.mac[:])
	m.Write(body)
	if !hmac.Equal(m.Sum(nil), tag) {
		return 0, nil, ErrAuthFailed
	}
	id := binary.BigEndian.Uint64(body[:idLen])

	if c.mode == ModeIntegrityOnly {
		return id, append([]byte(nil), body[idLen:]...), nil
	}

	iv := body[idLen : idLen+aes.BlockSize]
	ct := body[idLen+aes.BlockSize:]
	if len(ct) == 0 || len(ct)%aes.BlockSize != 0 {
		return 0, nil, ErrBadPadding
	}
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(c.block, iv).CryptBlocks(pt, ct)
	pad := int(pt[len(pt)-1])
	if pad == 0 || pad > aes.BlockSize || pad > len(pt) {
		return 0, nil, ErrBadPadding
	}
	for _, b := range pt[len(pt)-pad:] {
		if int(b) != pad {
			return 0, nil, ErrBadPadding
		}
	}
	return id, pt[:len(pt)-pad], nil
}

// ReplayWindow implements OpenVPN's sliding-window replay protection
// (paper §V-A "Replaying traffic"): a 64-entry bitmap trailing the highest
// packet ID seen. IDs older than the window or already seen are rejected.
type ReplayWindow struct {
	mu      sync.Mutex
	highest uint64
	bitmap  uint64
	started bool
}

// windowSize is the number of out-of-order IDs tolerated behind the highest.
const windowSize = 64

// Accept records id and reports whether it is fresh. It is safe for
// concurrent use.
func (w *ReplayWindow) Accept(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		w.started = true
		w.highest = id
		w.bitmap = 1
		return nil
	}
	switch {
	case id > w.highest:
		shift := id - w.highest
		if shift >= windowSize {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.bitmap |= 1
		w.highest = id
		return nil
	case w.highest-id >= windowSize:
		return fmt.Errorf("%w: id %d too old (highest %d)", ErrReplay, id, w.highest)
	default:
		bit := uint64(1) << (w.highest - id)
		if w.bitmap&bit != 0 {
			return fmt.Errorf("%w: duplicate id %d", ErrReplay, id)
		}
		w.bitmap |= bit
		return nil
	}
}

// Session pairs a send codec with a receive codec and replay window; it is
// the object the VPN data channel holds per peer. Send and receive
// directions use independent keys derived from the session master secret.
type Session struct {
	send *Codec
	recv *Codec

	mu     sync.Mutex
	nextID uint64
	replay ReplayWindow
}

// NewSession derives directional codecs from a master secret. isClient
// flips the direction labels so the two ends interoperate.
func NewSession(master []byte, mode Mode, isClient bool) (*Session, error) {
	c2s := DeriveKeys(master, "client-to-server")
	s2c := DeriveKeys(master, "server-to-client")
	sendKeys, recvKeys := c2s, s2c
	if !isClient {
		sendKeys, recvKeys = s2c, c2s
	}
	send, err := NewCodec(mode, sendKeys)
	if err != nil {
		return nil, err
	}
	recv, err := NewCodec(mode, recvKeys)
	if err != nil {
		return nil, err
	}
	return &Session{send: send, recv: recv, nextID: 1}, nil
}

// Mode reports the session's protection mode.
func (s *Session) Mode() Mode { return s.send.mode }

// Overhead reports framing overhead for a payload of n bytes.
func (s *Session) Overhead(n int) int { return s.send.Overhead(n) }

// Seal frames an outgoing payload with the next packet ID.
func (s *Session) Seal(payload []byte) ([]byte, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	return s.send.Seal(id, payload)
}

// Open authenticates, replay-checks and decrypts an incoming frame.
func (s *Session) Open(frame []byte) ([]byte, error) {
	id, payload, err := s.recv.Open(frame)
	if err != nil {
		return nil, err
	}
	if err := s.replay.Accept(id); err != nil {
		return nil, err
	}
	return payload, nil
}
