package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func testSession(t testing.TB, mode Mode) (client, server *Session) {
	t.Helper()
	master := []byte("zerocopy-test-master-secret")
	c, err := NewSession(master, mode, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(master, mode, false)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

// TestSealToMatchesSeal proves the pooled-buffer path and the allocating
// path produce interchangeable frames in both modes.
func TestSealToMatchesSeal(t *testing.T) {
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			keys := DeriveKeys([]byte("m"), "client-to-server")
			seal, err := NewCodec(mode, keys)
			if err != nil {
				t.Fatal(err)
			}
			open, err := NewCodec(mode, keys)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{0, 1, 15, 16, 17, 1500} {
				payload := bytes.Repeat([]byte{byte(n)}, n)
				dst := GetBuffer(seal.SealedLen(n))
				frame, err := seal.SealTo(42, payload, dst)
				if err != nil {
					t.Fatal(err)
				}
				if len(frame) != seal.SealedLen(n) {
					t.Fatalf("frame len %d, want SealedLen %d", len(frame), seal.SealedLen(n))
				}
				id, got, err := open.Open(frame)
				if err != nil {
					t.Fatalf("Open(SealTo frame): %v", err)
				}
				if id != 42 || !bytes.Equal(got, payload) {
					t.Fatalf("round trip mismatch: id=%d payload %d bytes", id, len(got))
				}
				PutBuffer(dst)
			}
		})
	}
}

// TestSealToShortBuffer checks the capacity guard fails loudly instead of
// corrupting a neighbouring allocation.
func TestSealToShortBuffer(t *testing.T) {
	keys := DeriveKeys([]byte("m"), "client-to-server")
	c, err := NewCodec(ModeEncrypted, keys)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	if _, err := c.SealTo(1, payload, make([]byte, 0, c.SealedLen(100)-1)); err == nil {
		t.Fatal("SealTo accepted an undersized destination")
	}
}

// TestOpenInPlaceAliases proves OpenInPlace returns a payload inside the
// frame's own buffer (no copy) and that Open's integrity-only payload
// aliases too — the satellite fix for the gratuitous copy.
func TestOpenInPlaceAliases(t *testing.T) {
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			cli, srv := testSession(t, mode)
			payload := []byte("alias-me-please-16")
			frame, err := cli.Seal(payload)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.OpenInPlace(frame)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload mismatch: %q", got)
			}
			if &got[0] != &frame[idLen:][aliasOffset(mode)] {
				t.Error("OpenInPlace payload does not alias the frame buffer")
			}
		})
	}
	// Open in integrity-only mode aliases as well.
	cli, srv := testSession(t, ModeIntegrityOnly)
	payload := []byte("integrity-only-alias")
	frame, err := cli.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Open(frame)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &frame[idLen] {
		t.Error("integrity-only Open still copies the payload")
	}
}

// aliasOffset is where the plaintext starts within the frame body.
func aliasOffset(mode Mode) int {
	if mode == ModeEncrypted {
		return 16 // after the IV
	}
	return 0
}

// TestOpenRejectsTamper covers both open paths against bit flips across the
// whole frame.
func TestOpenRejectsTamper(t *testing.T) {
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			keys := DeriveKeys([]byte("m"), "client-to-server")
			seal, _ := NewCodec(mode, keys)
			open, _ := NewCodec(mode, keys)
			frame, err := seal.Seal(7, []byte("tamper-evident-payload"))
			if err != nil {
				t.Fatal(err)
			}
			for i := range frame {
				bad := append([]byte(nil), frame...)
				bad[i] ^= 0x80
				if _, _, err := open.Open(bad); err == nil {
					t.Fatalf("Open accepted frame with byte %d flipped", i)
				}
				bad[i] ^= 0x80 // restore; reuse as OpenInPlace input
				bad[i] ^= 0x01
				if _, _, err := open.OpenInPlace(bad); err == nil {
					t.Fatalf("OpenInPlace accepted frame with byte %d flipped", i)
				}
			}
		})
	}
}

// FuzzSealOpenRoundTrip cross-checks all four seal/open combinations on
// arbitrary payloads in both protection modes.
func FuzzSealOpenRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint64(1))
	f.Add([]byte("a"), uint64(2))
	f.Add(bytes.Repeat([]byte{0xeb}, 1500), uint64(1<<40))
	f.Add(bytes.Repeat([]byte{0x00}, 16), uint64(0))
	f.Fuzz(func(t *testing.T, payload []byte, id uint64) {
		for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
			keys := DeriveKeys([]byte("fuzz"), "client-to-server")
			seal, err := NewCodec(mode, keys)
			if err != nil {
				t.Fatal(err)
			}
			open, err := NewCodec(mode, keys)
			if err != nil {
				t.Fatal(err)
			}
			a, err := seal.Seal(id, payload)
			if err != nil {
				t.Fatal(err)
			}
			dst := GetBuffer(seal.SealedLen(len(payload)))
			b, err := seal.SealTo(id, payload, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("Seal/SealTo length mismatch: %d vs %d", len(a), len(b))
			}
			for name, frame := range map[string][]byte{"Seal": a, "SealTo": b} {
				gotID, got, err := open.Open(frame)
				if err != nil {
					t.Fatalf("%s/%s Open: %v", mode, name, err)
				}
				if gotID != id || !bytes.Equal(got, payload) {
					t.Fatalf("%s/%s Open round trip mismatch", mode, name)
				}
				gotID, got, err = open.OpenInPlace(frame)
				if err != nil {
					t.Fatalf("%s/%s OpenInPlace: %v", mode, name, err)
				}
				if gotID != id || !bytes.Equal(got, payload) {
					t.Fatalf("%s/%s OpenInPlace round trip mismatch", mode, name)
				}
			}
			PutBuffer(dst)
		}
	})
}

// TestSealOpenAllocs pins the allocation-free property of the pooled
// paths: SealTo and OpenInPlace must not allocate in steady state.
func TestSealOpenAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			keys := DeriveKeys([]byte("m"), "client-to-server")
			seal, _ := NewCodec(mode, keys)
			open, _ := NewCodec(mode, keys)
			payload := bytes.Repeat([]byte{7}, 1400)
			dst := GetBuffer(seal.SealedLen(len(payload)))
			defer PutBuffer(dst)
			// Warm the pools.
			frame, err := seal.SealTo(1, payload, dst)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := open.OpenInPlace(frame); err != nil {
				t.Fatal(err)
			}
			id := uint64(2)
			allocs := testing.AllocsPerRun(100, func() {
				f, err := seal.SealTo(id, payload, dst)
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := open.OpenInPlace(f); err != nil {
					t.Fatal(err)
				}
				id++
			})
			if allocs > 0 {
				t.Errorf("SealTo+OpenInPlace allocates %.1f times per packet, want 0", allocs)
			}
		})
	}
}

// TestBufferPoolClasses covers class selection, oversize fallbacks and
// foreign-buffer adoption.
func TestBufferPoolClasses(t *testing.T) {
	for _, n := range []int{0, 1, 2048, 2049, 16384, 65536, 262144} {
		b := GetBuffer(n)
		if len(b) != n {
			t.Fatalf("GetBuffer(%d) len = %d", n, len(b))
		}
		PutBuffer(b)
	}
	// Oversize requests fall back to make and are dropped by PutBuffer.
	big := GetBuffer(262145)
	if len(big) != 262145 {
		t.Fatalf("oversize GetBuffer len = %d", len(big))
	}
	PutBuffer(big)
	// Foreign buffers are adopted at the class their capacity serves.
	PutBuffer(make([]byte, 3000))
	PutBuffer(make([]byte, 10)) // too small for any class: dropped
	b := GetBuffer(2048)
	if cap(b) < 2048 {
		t.Fatalf("pooled buffer cap = %d", cap(b))
	}
	PutBuffer(b)
}

// TestBufferPoolOwnershipRace is the -race stress test for the Release
// protocol: concurrent owners stamp their buffers with a unique pattern,
// verify it after real work, and release. Any buffer observed after
// release — a double-put or a pool bug handing one buffer to two owners —
// shows up as a pattern mismatch or a data race.
func TestBufferPoolOwnershipRace(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := 64 + (i%4)*700 // exercise two classes
				b := GetBuffer(n)
				stamp := byte(w<<4) | byte(i&0x0f)
				for j := range b {
					b[j] = stamp
				}
				// Do unrelated pool traffic while holding b.
				other := GetBuffer(n)
				for j := range other {
					other[j] = ^stamp
				}
				PutBuffer(other)
				for j := range b {
					if b[j] != stamp {
						t.Errorf("worker %d round %d: buffer mutated while owned (byte %d = %#x)", w, i, j, b[j])
						return
					}
				}
				PutBuffer(b)
			}
		}(w)
	}
	wg.Wait()
}

// TestSessionConcurrentSealTo checks the pooled codec state is safe under
// concurrent sealers and openers (the server seals to many clients from
// many goroutines).
func TestSessionConcurrentSealTo(t *testing.T) {
	cli, srv := testSession(t, ModeEncrypted)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("goroutine-%d-payload", g))
			for i := 0; i < 500; i++ {
				dst := GetBuffer(cli.SealedLen(len(payload)))
				frame, err := cli.SealTo(payload, dst)
				if err != nil {
					errs <- err
					return
				}
				// Verify against the receive codec directly (the shared
				// replay window would reject reordered IDs).
				if _, got, err := srv.recv.OpenInPlace(frame); err != nil {
					errs <- err
					return
				} else if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("payload mismatch for goroutine %d", g)
					return
				}
				PutBuffer(dst)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
