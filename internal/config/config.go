// Package config implements EndBox's secure middlebox configuration
// updates (paper §III-E): updates carry a monotonically increasing version
// number embedded in the signed payload (preventing replays of old
// configurations), are signed with the CA key, optionally encrypted with
// the provisioned shared key (hiding IDPS rules from enterprise users; ISP
// customers get plaintext so they can inspect the rules), and are served
// from a publicly reachable configuration file server.
//
// Grace-period enforcement — the VPN server accepting both old and new
// versions for n seconds and then blocking stale clients — lives with the
// server in internal/vpn; this package provides the policy type.
package config

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"endbox/internal/attest"
)

// Common errors.
var (
	ErrBadSignature    = errors.New("config: signature verification failed")
	ErrVersionMismatch = errors.New("config: envelope and payload versions differ")
	ErrStaleVersion    = errors.New("config: version not newer than current")
	ErrDecrypt         = errors.New("config: payload decryption failed")
	ErrNotFound        = errors.New("config: version not found")
	// ErrSealedToOtherBuild marks an update encrypted under another enclave
	// build's measurement key: this enclave is not the build the update was
	// sealed to, and the right reaction is a nack — keep serving on the
	// last-known-good configuration. Distinct from ErrDecrypt (key material
	// present but wrong) so clients can tell targeting from corruption.
	ErrSealedToOtherBuild = errors.New("config: update sealed to another enclave build")
)

// Update is one middlebox configuration update: the Click graph, its rule
// sets, and the administrator-chosen grace period (paper §III-E:
// "administrators can define the importance of updates by specifying a
// grace period of n >= 0 seconds").
type Update struct {
	Version      uint64            `json:"version"`
	GraceSeconds uint32            `json:"grace_seconds"`
	ClickConfig  string            `json:"click_config"`
	RuleSets     map[string]string `json:"rule_sets,omitempty"`
}

// GracePeriod returns the grace period as a duration.
func (u *Update) GracePeriod() time.Duration {
	return time.Duration(u.GraceSeconds) * time.Second
}

// Envelope is the on-the-wire form stored on the configuration server. The
// version is replicated outside the (possibly encrypted) payload so the
// server can index updates, and inside it so clients detect mix-and-match
// tampering.
type Envelope struct {
	Version   uint64 `json:"version"`
	Encrypted bool   `json:"encrypted"`
	// SealedTo, when non-empty, is the hex measurement of the one enclave
	// build whose derived key encrypts the payload (see SealTo). It rides
	// outside the ciphertext so a mistargeted client fails fast with
	// ErrSealedToOtherBuild instead of a bare decryption error, and inside
	// the signature so it cannot be stripped or swapped in transit.
	SealedTo  string `json:"sealed_to,omitempty"`
	Payload   []byte `json:"payload"`
	Signature []byte `json:"signature"`
}

func envelopeSignedBytes(version uint64, encrypted bool, sealedTo string, payload []byte) []byte {
	buf := make([]byte, 0, 17+len(sealedTo)+len(payload))
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], version)
	buf = append(buf, v[:]...)
	if encrypted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	binary.BigEndian.PutUint64(v[:], uint64(len(sealedTo)))
	buf = append(buf, v[:]...)
	buf = append(buf, sealedTo...)
	return append(buf, payload...)
}

// SignFunc signs envelope bytes; attest.(*CA).SignConfig satisfies it.
type SignFunc func(data []byte) []byte

// Seal prepares an update for publication: marshal, optionally encrypt with
// sharedKey (nil leaves the payload readable, the ISP-scenario choice), and
// sign. The administrator runs this (paper Fig. 5 step 1).
func Seal(u *Update, sign SignFunc, sharedKey []byte) ([]byte, error) {
	return SealTo(u, sign, sharedKey, "")
}

// SealTo is Seal's measurement-sealed mode: with a non-empty sealedTo (the
// hex measurement of one enclave build) the payload is encrypted under that
// build's key — CA.MeasurementKey, which the CA provisions only to enclaves
// that attested exactly that measurement — so no other build can open it,
// cryptographically and not merely by policy. An empty sealedTo is plain
// Seal.
func SealTo(u *Update, sign SignFunc, key []byte, sealedTo string) ([]byte, error) {
	if sealedTo != "" && len(key) == 0 {
		return nil, fmt.Errorf("config: sealing to measurement %s requires a key", sealedTo)
	}
	payload, err := json.Marshal(u)
	if err != nil {
		return nil, fmt.Errorf("config: marshal update: %w", err)
	}
	encrypted := false
	if len(key) > 0 {
		payload, err = encrypt(key, payload)
		if err != nil {
			return nil, err
		}
		encrypted = true
	}
	env := Envelope{
		Version:   u.Version,
		Encrypted: encrypted,
		SealedTo:  sealedTo,
		Payload:   payload,
		Signature: sign(envelopeSignedBytes(u.Version, encrypted, sealedTo, payload)),
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("config: marshal envelope: %w", err)
	}
	return blob, nil
}

// Open verifies and decodes an update blob. It checks the CA signature,
// decrypts with sharedKey when the payload is encrypted, and verifies the
// inner version matches the envelope. In EndBox this runs inside the
// enclave (paper Fig. 5 step 8). Measurement-sealed blobs fail with
// ErrSealedToOtherBuild — use OpenFor with the enclave's own identity and
// provisioned build key.
func Open(blob []byte, caPub ed25519.PublicKey, sharedKey []byte) (*Update, error) {
	return OpenFor(blob, caPub, sharedKey, "", nil)
}

// OpenFor is Open for an enclave that knows its own measurement: a
// measurement-sealed envelope opens only when the enclave's measurement
// matches the envelope's SealedTo, using the per-build key the CA
// provisioned at enrolment; any other build gets ErrSealedToOtherBuild
// (and could not decrypt the payload even if it ignored the field).
func OpenFor(blob []byte, caPub ed25519.PublicKey, sharedKey []byte, measurement string, buildKey []byte) (*Update, error) {
	var env Envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("config: parse envelope: %w", err)
	}
	if !attest.VerifyConfigSig(caPub, envelopeSignedBytes(env.Version, env.Encrypted, env.SealedTo, env.Payload), env.Signature) {
		return nil, ErrBadSignature
	}
	payload := env.Payload
	if env.SealedTo != "" {
		if measurement == "" || env.SealedTo != measurement || len(buildKey) == 0 {
			return nil, fmt.Errorf("%w: sealed to %s", ErrSealedToOtherBuild, env.SealedTo)
		}
		var err error
		payload, err = decrypt(buildKey, payload)
		if err != nil {
			return nil, err
		}
	} else if env.Encrypted {
		var err error
		payload, err = decrypt(sharedKey, payload)
		if err != nil {
			return nil, err
		}
	}
	var u Update
	if err := json.Unmarshal(payload, &u); err != nil {
		return nil, fmt.Errorf("config: parse update: %w", err)
	}
	if u.Version != env.Version {
		return nil, ErrVersionMismatch
	}
	return &u, nil
}

func gcmFor(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("config: shared key: %w", err)
	}
	g, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("config: AEAD: %w", err)
	}
	return g, nil
}

func encrypt(key, plaintext []byte) ([]byte, error) {
	g, err := gcmFor(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, g.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("config: nonce: %w", err)
	}
	return g.Seal(nonce, nonce, plaintext, nil), nil
}

func decrypt(key, blob []byte) ([]byte, error) {
	g, err := gcmFor(key)
	if err != nil {
		return nil, err
	}
	ns := g.NonceSize()
	if len(blob) < ns {
		return nil, ErrDecrypt
	}
	pt, err := g.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// Server is the trusted configuration file server in the managed network
// (paper §III-E): publicly readable so clients can always obtain up-to-date
// configurations before connecting. Confidentiality comes from payload
// encryption, not access control.
type Server struct {
	mu     sync.RWMutex
	blobs  map[uint64][]byte
	latest uint64
	// fetchDelay simulates network + disk time for virtual-time tests.
	fetchDelay func()
}

// NewServer creates an empty configuration store.
func NewServer() *Server {
	return &Server{blobs: make(map[uint64][]byte)}
}

// SetFetchDelay injects latency into Fetch, letting virtual-time
// experiments model the fetch phase of Table II.
func (s *Server) SetFetchDelay(d func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fetchDelay = d
}

// Publish stores a sealed update blob under its version. Versions must
// strictly increase (monotonicity is also enforced client-side; the server
// check catches operator mistakes early).
func (s *Server) Publish(version uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version <= s.latest {
		return fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, s.latest)
	}
	s.blobs[version] = append([]byte(nil), blob...)
	s.latest = version
	return nil
}

// Fetch returns the blob for a version (paper Fig. 5 steps 6-7).
func (s *Server) Fetch(version uint64) ([]byte, error) {
	s.mu.RLock()
	blob, ok := s.blobs[version]
	delay := s.fetchDelay
	s.mu.RUnlock()
	if delay != nil {
		delay()
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, version)
	}
	return append([]byte(nil), blob...), nil
}

// Latest reports the most recent published version (0 when empty).
func (s *Server) Latest() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest
}

// Policy is the VPN server's update enforcement state (paper §III-E): both
// the current and previous configuration versions are accepted during the
// grace period; afterwards only the current one. Targeted rollouts
// (Deployment.Rollout with a selector) layer per-client requirements on
// top of the global state: a targeted client must converge on its group's
// version within the group's grace period, while untargeted clients keep
// being judged against the global versions only.
type Policy struct {
	mu       sync.Mutex
	current  uint64
	previous uint64
	deadline time.Time
	targets  map[string]targetState // clientID -> targeted requirement
	now      func() time.Time
}

// targetState is one client's targeted-rollout requirement: the version
// it must reach, the version it is coming from (accepted until the
// group's grace deadline), and that deadline.
type targetState struct {
	version  uint64
	previous uint64
	deadline time.Time
}

// NewPolicy creates a policy accepting only version 0 (no update yet).
func NewPolicy(now func() time.Time) *Policy {
	if now == nil {
		now = time.Now
	}
	return &Policy{now: now}
}

// Announce installs a new current version with the given grace period
// (paper Fig. 5 steps 2-3: the VPN server starts a timer that, when
// expired, blocks clients with old configurations). A global announcement
// supersedes targeted requirements at or below the new version — but a
// client converged on a superseded target gets the same grace as
// everyone else: its requirement is rewritten to the new version with
// the old target as its accepted previous, rather than dropped (dropping
// it would reject the canary's traffic instantly, since its version is
// neither the new current nor the global previous).
func (p *Policy) Announce(version uint64, grace time.Duration) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if version <= p.current {
		return fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, p.current)
	}
	p.previous = p.current
	p.current = version
	p.deadline = p.now().Add(grace)
	for id, t := range p.targets {
		if t.version <= version {
			p.targets[id] = targetState{version: version, previous: t.version, deadline: p.deadline}
		}
	}
	return nil
}

// AnnounceTarget arms a targeted requirement for a set of clients: each
// must reach version within the grace period; until the deadline its
// previous version (an earlier target, or the global current) is still
// accepted. The targeted version must be newer than the global current
// and than any target already armed for the client.
func (p *Policy) AnnounceTarget(clientIDs []string, version uint64, grace time.Duration) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if version <= p.current {
		return fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, p.current)
	}
	for _, id := range clientIDs {
		if t, ok := p.targets[id]; ok && version <= t.version {
			return fmt.Errorf("%w: %d <= %d (client %q)", ErrStaleVersion, version, t.version, id)
		}
	}
	if p.targets == nil {
		p.targets = make(map[string]targetState, len(clientIDs))
	}
	deadline := p.now().Add(grace)
	for _, id := range clientIDs {
		from := p.current
		if t, ok := p.targets[id]; ok {
			from = t.version
		}
		p.targets[id] = targetState{version: version, previous: from, deadline: deadline}
	}
	return nil
}

// ForgetClient drops a client's targeted requirement. The deployment
// calls it when a client is removed, so target state cannot accumulate
// across churning clients and a later client reusing the ID is judged
// globally.
func (p *Policy) ForgetClient(clientID string) {
	p.mu.Lock()
	delete(p.targets, clientID)
	p.mu.Unlock()
}

// Target reports the version a specific client is required to run (its
// targeted version if one is armed, the global current otherwise).
func (p *Policy) Target(clientID string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.targets[clientID]; ok {
		return t.version
	}
	return p.current
}

// Current returns the version clients must (eventually) run.
func (p *Policy) Current() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.current
}

// Accepts reports whether a client at the given configuration version may
// pass traffic now, judged against the global versions only.
func (p *Policy) Accepts(clientVersion uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acceptsGlobalLocked(clientVersion)
}

func (p *Policy) acceptsGlobalLocked(v uint64) bool {
	if v == p.current {
		return true
	}
	return v == p.previous && p.now().Before(p.deadline)
}

// AcceptsClient reports whether a specific client at the given version may
// pass traffic now: its targeted requirement when one is armed (target
// version always; the version it came from until the group deadline),
// the global rule otherwise. This is the per-frame check the VPN server
// runs; with no targeted rollouts armed it costs the same as Accepts.
func (p *Policy) AcceptsClient(clientID string, clientVersion uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.targets[clientID]; ok {
		// At or beyond the target counts as converged: a targeted client
		// may legitimately boot into a newer published version (e.g. a
		// later rollout) — rejecting it would strand the client on a
		// requirement it has already surpassed.
		if clientVersion >= t.version {
			return true
		}
		// Until the group deadline the client may still run what it came
		// from (or anything globally acceptable — it hasn't converged
		// yet); afterwards only the targeted version passes, even though
		// the old version may still be globally current for untargeted
		// clients.
		if p.now().Before(t.deadline) {
			return clientVersion == t.previous || p.acceptsGlobalLocked(clientVersion)
		}
		return false
	}
	return p.acceptsGlobalLocked(clientVersion)
}
