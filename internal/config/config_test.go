package config

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"endbox/internal/attest"
	"endbox/internal/sgx"
)

func testCA(t *testing.T) *attest.CA {
	t.Helper()
	ias, err := attest.NewIAS()
	if err != nil {
		t.Fatal(err)
	}
	ca, err := attest.NewCA(ias)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func testUpdate(version uint64) *Update {
	return &Update{
		Version:      version,
		GraceSeconds: 30,
		ClickConfig:  "FromDevice -> ToDevice;",
		RuleSets:     map[string]string{"community": "# rules"},
	}
}

func TestSealOpenPlaintext(t *testing.T) {
	ca := testCA(t)
	blob, err := Seal(testUpdate(1), ca.SignConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Open(blob, ca.PublicKey(), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if u.Version != 1 || u.ClickConfig != "FromDevice -> ToDevice;" || u.GraceSeconds != 30 {
		t.Errorf("update = %+v", u)
	}
	if u.RuleSets["community"] != "# rules" {
		t.Error("rule sets lost")
	}
}

func TestSealOpenEncrypted(t *testing.T) {
	ca := testCA(t)
	key := ca.SharedKey()
	blob, err := Seal(testUpdate(2), ca.SignConfig, key)
	if err != nil {
		t.Fatal(err)
	}
	// Payload must not leak the Click config (enterprise scenario hides
	// IDPS rules from employees).
	if containsSub(blob, []byte("FromDevice")) {
		t.Error("encrypted envelope leaks configuration text")
	}
	u, err := Open(blob, ca.PublicKey(), key)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if u.Version != 2 {
		t.Errorf("version = %d", u.Version)
	}
	// Wrong key fails.
	bad := make([]byte, len(key))
	if _, err := Open(blob, ca.PublicKey(), bad); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestOpenRejectsForgedSignature(t *testing.T) {
	ca := testCA(t)
	other := testCA(t)
	blob, err := Seal(testUpdate(1), other.SignConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blob, ca.PublicKey(), nil); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestOpenRejectsTamperedPayload(t *testing.T) {
	ca := testCA(t)
	blob, err := Seal(testUpdate(1), ca.SignConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	// Flip a byte inside the JSON blob body (skip structural chars to keep
	// it parseable often enough; signature check must still fail).
	for i := len(bad) / 2; i < len(bad); i++ {
		if bad[i] >= 'a' && bad[i] <= 'y' {
			bad[i]++
			break
		}
	}
	if _, err := Open(bad, ca.PublicKey(), nil); err == nil {
		t.Error("tampered blob accepted")
	}
}

func TestOpenRejectsVersionMixAndMatch(t *testing.T) {
	// An attacker re-labels an old signed update with a new envelope
	// version. The outer version participates in the signature, so this
	// must fail.
	ca := testCA(t)
	blob, err := Seal(testUpdate(1), ca.SignConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), blob...)
	// Versions serialise as `"version":1`; bump the first occurrence.
	idx := indexOf(tampered, []byte(`"version":1`))
	if idx < 0 {
		t.Skip("envelope encoding changed")
	}
	tampered[idx+len(`"version":`)] = '9'
	if _, err := Open(tampered, ca.PublicKey(), nil); err == nil {
		t.Error("re-versioned envelope accepted")
	}
}

func indexOf(haystack, needle []byte) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		ok := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

func TestSealOpenPropertyRoundTrip(t *testing.T) {
	ca := testCA(t)
	key := ca.SharedKey()
	f := func(version uint64, grace uint32, cfg string, encrypt bool) bool {
		if version == 0 {
			version = 1
		}
		u := &Update{Version: version, GraceSeconds: grace, ClickConfig: cfg}
		var k []byte
		if encrypt {
			k = key
		}
		blob, err := Seal(u, ca.SignConfig, k)
		if err != nil {
			return false
		}
		got, err := Open(blob, ca.PublicKey(), k)
		if err != nil {
			return false
		}
		return got.Version == version && got.GraceSeconds == grace && got.ClickConfig == cfg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestServerPublishFetch(t *testing.T) {
	s := NewServer()
	if s.Latest() != 0 {
		t.Error("fresh server should have no versions")
	}
	if err := s.Publish(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(2, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(2, []byte("dup")); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("duplicate version: err = %v", err)
	}
	if err := s.Publish(1, []byte("old")); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("old version: err = %v", err)
	}
	if s.Latest() != 2 {
		t.Errorf("Latest = %d", s.Latest())
	}
	blob, err := s.Fetch(1)
	if err != nil || string(blob) != "v1" {
		t.Errorf("Fetch(1) = %q, %v", blob, err)
	}
	if _, err := s.Fetch(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version: err = %v", err)
	}
}

func TestServerFetchDelay(t *testing.T) {
	s := NewServer()
	if err := s.Publish(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	called := false
	s.SetFetchDelay(func() { called = true })
	if _, err := s.Fetch(1); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("fetch delay hook not invoked")
	}
}

func TestPolicyGracePeriod(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewPolicy(func() time.Time { return now })

	// Before any update: only version 0 (initial config) accepted.
	if !p.Accepts(0) {
		t.Error("initial version rejected before any update")
	}

	if err := p.Announce(5, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if p.Current() != 5 {
		t.Errorf("Current = %d", p.Current())
	}
	// During grace: both old (0) and new (5) accepted.
	if !p.Accepts(5) || !p.Accepts(0) {
		t.Error("grace period not honouring both versions")
	}
	if p.Accepts(3) {
		t.Error("unknown version accepted")
	}
	// After grace: only current.
	now = now.Add(31 * time.Second)
	if p.Accepts(0) {
		t.Error("stale version accepted after grace expiry")
	}
	if !p.Accepts(5) {
		t.Error("current version rejected")
	}

	// Rollback attempt: announcing an older version fails.
	if err := p.Announce(4, time.Second); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("rollback announce: err = %v", err)
	}
}

func TestPolicyZeroGrace(t *testing.T) {
	now := time.Unix(0, 0)
	p := NewPolicy(func() time.Time { return now })
	if err := p.Announce(1, 0); err != nil {
		t.Fatal(err)
	}
	// Grace 0: old version immediately rejected.
	if p.Accepts(0) {
		t.Error("grace 0 still accepts old version")
	}
}

func TestPolicyTargetedRollout(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewPolicy(func() time.Time { return now })

	// A targeted version must be newer than the global current.
	if err := p.AnnounceTarget([]string{"a"}, 0, time.Minute); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("stale target announce: err = %v", err)
	}
	if err := p.AnnounceTarget([]string{"a", "b"}, 2, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Targeted clients: target version accepted, old version only during
	// the group grace period. Untargeted clients judged globally.
	if !p.AcceptsClient("a", 2) || !p.AcceptsClient("a", 0) {
		t.Error("targeted client rejected during grace")
	}
	if !p.AcceptsClient("c", 0) {
		t.Error("untargeted client rejected at global version")
	}
	if p.AcceptsClient("c", 2) {
		t.Error("untargeted client accepted at targeted-only version")
	}
	if p.Target("a") != 2 || p.Target("c") != 0 {
		t.Errorf("Target = %d/%d, want 2/0", p.Target("a"), p.Target("c"))
	}

	// After the group deadline: targeted clients must have converged,
	// even though the old version is still globally current.
	now = now.Add(31 * time.Second)
	if p.AcceptsClient("a", 0) {
		t.Error("targeted client still accepted at old version after grace")
	}
	if !p.AcceptsClient("a", 2) {
		t.Error("converged targeted client rejected")
	}
	if !p.AcceptsClient("c", 0) {
		t.Error("untargeted client rejected after unrelated group deadline")
	}

	// Re-targeting the same group to a newer version: the previous target
	// stays acceptable during the new grace window.
	if err := p.AnnounceTarget([]string{"a"}, 3, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.AcceptsClient("a", 2) || !p.AcceptsClient("a", 3) {
		t.Error("chained target: old or new version rejected during grace")
	}
	if err := p.AnnounceTarget([]string{"a"}, 3, time.Second); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("re-announcing the same target version: err = %v", err)
	}

	// A global announcement at or above the targets supersedes them.
	if err := p.Announce(7, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !p.AcceptsClient("a", 7) || !p.AcceptsClient("b", 7) {
		t.Error("global announce did not supersede targets")
	}
	if p.Target("a") != 7 {
		t.Errorf("Target after global announce = %d, want 7", p.Target("a"))
	}
}

func TestPolicyTargetConvergedBeyond(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewPolicy(func() time.Time { return now })
	if err := p.AnnounceTarget([]string{"a"}, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second) // group deadline passed

	// A targeted client running a NEWER published version than its
	// target has converged and must not be stranded.
	if !p.AcceptsClient("a", 3) {
		t.Error("client beyond its target rejected")
	}
	if p.AcceptsClient("a", 1) {
		t.Error("client below its target accepted after deadline")
	}

	// Removing the client drops its requirement: a later client reusing
	// the ID is judged globally again.
	p.ForgetClient("a")
	if !p.AcceptsClient("a", 0) {
		t.Error("forgotten client still judged against stale target")
	}
}

func TestPolicySupersededTargetKeepsGrace(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewPolicy(func() time.Time { return now })
	if err := p.Announce(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AnnounceTarget([]string{"canary"}, 5, time.Second); err != nil {
		t.Fatal(err)
	}
	// The canary converged to v5; the admin then promotes the fleet to
	// v6 with a 60s grace period. The canary's v5 must enjoy that grace
	// like everyone else's v1 — not be rejected instantly.
	if err := p.Announce(6, time.Minute); err != nil {
		t.Fatal(err)
	}
	if !p.AcceptsClient("canary", 5) {
		t.Error("converged canary rejected right after global promotion")
	}
	if !p.AcceptsClient("other", 1) {
		t.Error("untargeted client rejected during global grace")
	}
	now = now.Add(2 * time.Minute)
	if p.AcceptsClient("canary", 5) {
		t.Error("canary still accepted at superseded version after grace")
	}
	if !p.AcceptsClient("canary", 6) {
		t.Error("canary rejected at the promoted version")
	}
}

func TestSealToMeasurement(t *testing.T) {
	ca := testCA(t)
	var v1, v2 sgx.Measurement
	v1[0], v2[0] = 1, 2
	key2 := ca.MeasurementKey(v2)

	blob, err := SealTo(testUpdate(3), ca.SignConfig, key2, v2.String())
	if err != nil {
		t.Fatal(err)
	}
	if containsSub(blob, []byte("FromDevice")) {
		t.Error("measurement-sealed envelope leaks configuration text")
	}

	// The targeted build opens it with its provisioned key.
	u, err := OpenFor(blob, ca.PublicKey(), nil, v2.String(), key2)
	if err != nil {
		t.Fatalf("OpenFor(target build): %v", err)
	}
	if u.Version != 3 {
		t.Errorf("version = %d", u.Version)
	}

	// Every other identity fails with the typed targeting error — a build
	// with the wrong measurement, a build with no build key at all (older
	// CA), and the measurement-blind Open.
	if _, err := OpenFor(blob, ca.PublicKey(), nil, v1.String(), ca.MeasurementKey(v1)); !errors.Is(err, ErrSealedToOtherBuild) {
		t.Errorf("other build: err = %v, want ErrSealedToOtherBuild", err)
	}
	if _, err := OpenFor(blob, ca.PublicKey(), nil, v2.String(), nil); !errors.Is(err, ErrSealedToOtherBuild) {
		t.Errorf("no build key: err = %v, want ErrSealedToOtherBuild", err)
	}
	if _, err := Open(blob, ca.PublicKey(), nil); !errors.Is(err, ErrSealedToOtherBuild) {
		t.Errorf("Open: err = %v, want ErrSealedToOtherBuild", err)
	}
	// Matching measurement but a wrong key is corruption, not targeting.
	if _, err := OpenFor(blob, ca.PublicKey(), nil, v2.String(), make([]byte, len(key2))); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong build key: err = %v, want ErrDecrypt", err)
	}
}

func TestSealedToFieldTamperProof(t *testing.T) {
	ca := testCA(t)
	var v1, v2 sgx.Measurement
	v1[0], v2[0] = 1, 2
	blob, err := SealTo(testUpdate(4), ca.SignConfig, ca.MeasurementKey(v2), v2.String())
	if err != nil {
		t.Fatal(err)
	}
	// Re-pointing SealedTo at another build (or stripping it) must break
	// the signature: the field is inside the signed bytes.
	var env Envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	for _, sealedTo := range []string{v1.String(), ""} {
		forged := env
		forged.SealedTo = sealedTo
		reblob, err := json.Marshal(forged)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFor(reblob, ca.PublicKey(), nil, v1.String(), ca.MeasurementKey(v1)); !errors.Is(err, ErrBadSignature) {
			t.Errorf("SealedTo swapped to %q: err = %v, want ErrBadSignature", sealedTo, err)
		}
	}
}

func TestSealToRequiresKey(t *testing.T) {
	ca := testCA(t)
	var v2 sgx.Measurement
	v2[0] = 2
	if _, err := SealTo(testUpdate(5), ca.SignConfig, nil, v2.String()); err == nil {
		t.Fatal("SealTo without a key accepted")
	}
}
