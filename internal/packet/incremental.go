package packet

// UpdateChecksum16 folds the replacement of one 16-bit word (old → new)
// into an existing Internet checksum without re-summing the data —
// RFC 1624's HC' = ~(~HC + ~m + m'). NAT-style header rewrites use it to
// keep transport checksums (which cover the pseudo-header) valid while
// touching only the changed words.
//
// The result can be 0x0000. UDP callers must transmit that as 0xFFFF
// (the two are equal in one's-complement arithmetic): a zero UDP
// checksum on the wire means "no checksum at all" (RFC 768, RFC 1624
// §4).
func UpdateChecksum16(sum, old, new uint16) uint16 {
	x := uint32(^sum) + uint32(^old) + uint32(new)
	for x>>16 != 0 {
		x = x&0xffff + x>>16
	}
	return ^uint16(x)
}

// UpdateChecksum32 folds the replacement of one 32-bit word (an IPv4
// address in the pseudo-header) into an existing Internet checksum.
func UpdateChecksum32(sum uint16, old, new uint32) uint16 {
	sum = UpdateChecksum16(sum, uint16(old>>16), uint16(new>>16))
	return UpdateChecksum16(sum, uint16(old), uint16(new))
}
