package packet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{in: "10.8.0.1", want: Addr{10, 8, 0, 1}},
		{in: "0.0.0.0", want: Addr{}},
		{in: "255.255.255.255", want: Addr{255, 255, 255, 255}},
		{in: "192.168.1.42", want: Addr{192, 168, 1, 42}},
		{in: "256.0.0.1", wantErr: true},
		{in: "10.8.0", wantErr: true},
		{in: "10.8.0.1.2", wantErr: true},
		{in: "10..0.1", wantErr: true},
		{in: "", wantErr: true},
		{in: "a.b.c.d", wantErr: true},
		{in: "10.8.0.1 ", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseAddr(%q): expected error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := AddrFrom(a, b, c, d)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4MarshalParseRoundTrip(t *testing.T) {
	orig := IPv4{
		TOS:      0x10,
		ID:       0xbeef,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      MustParseAddr("10.8.0.2"),
		Dst:      MustParseAddr("10.8.0.1"),
		Payload:  []byte("hello endbox"),
	}
	raw := orig.Marshal()
	got, err := ParseIPv4(raw)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if got.TOS != orig.TOS || got.ID != orig.ID || got.Flags != orig.Flags ||
		got.TTL != orig.TTL || got.Protocol != orig.Protocol ||
		got.Src != orig.Src || got.Dst != orig.Dst {
		t.Errorf("header mismatch: got %+v want %+v", got, orig)
	}
	if !bytes.Equal(got.Payload, orig.Payload) {
		t.Errorf("payload mismatch: got %q want %q", got.Payload, orig.Payload)
	}
	if int(got.TotalLen) != len(raw) {
		t.Errorf("TotalLen = %d, want %d", got.TotalLen, len(raw))
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos, ttl, proto byte, id uint16, src, dst [4]byte, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := IPv4{
			TOS: tos, ID: id, TTL: ttl, Protocol: proto,
			Src: Addr(src), Dst: Addr(dst), Payload: payload,
		}
		got, err := ParseIPv4(p.Marshal())
		if err != nil {
			return false
		}
		return got.TOS == tos && got.ID == id && got.TTL == ttl &&
			got.Protocol == proto && got.Src == Addr(src) && got.Dst == Addr(dst) &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIPv4WithOptions(t *testing.T) {
	p := IPv4{
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      Addr{1, 2, 3, 4},
		Dst:      Addr{5, 6, 7, 8},
		Options:  []byte{0x94, 0x04, 0x00, 0x00}, // router alert
		Payload:  []byte("x"),
	}
	got, err := ParseIPv4(p.Marshal())
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if !bytes.Equal(got.Options, p.Options) {
		t.Errorf("options = %x, want %x", got.Options, p.Options)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, p.Payload)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	valid := NewUDP(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1000, 2000, []byte("data"))

	t.Run("truncated", func(t *testing.T) {
		if _, err := ParseIPv4(valid[:10]); err != ErrTruncated {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = 0x60 | bad[0]&0x0f
		if _, err := ParseIPv4(bad); err != ErrBadVersion {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("corrupt checksum", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[10] ^= 0xff
		if _, err := ParseIPv4(bad); err != ErrBadChecksum {
			t.Errorf("err = %v, want ErrBadChecksum", err)
		}
	})
	t.Run("total length beyond buffer", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		binary.BigEndian.PutUint16(bad[2:4], uint16(len(bad)+8))
		// Checksum no longer matters: length check precedes it only if
		// header is intact; recompute to isolate the length error.
		bad[10], bad[11] = 0, 0
		sum := Checksum(bad[:IPv4HeaderLen])
		binary.BigEndian.PutUint16(bad[10:12], sum)
		if _, err := ParseIPv4(bad); err != ErrBadHeader {
			t.Errorf("err = %v, want ErrBadHeader", err)
		}
	})
	t.Run("ihl too small", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = 0x42 // IHL 2 -> 8 bytes
		if _, err := ParseIPv4(bad); err != ErrBadHeader {
			t.Errorf("err = %v, want ErrBadHeader", err)
		}
	})
}

func TestTCPRoundTrip(t *testing.T) {
	orig := TCP{
		SrcPort: 44321, DstPort: 443,
		Seq: 0x01020304, Ack: 0x0a0b0c0d,
		Flags: TCPSyn | TCPAck, Window: 4096, Urgent: 7,
		Options: []byte{2, 4, 5, 180}, // MSS option
		Payload: []byte("tls hello"),
	}
	got, err := ParseTCP(orig.Marshal())
	if err != nil {
		t.Fatalf("ParseTCP: %v", err)
	}
	if got.SrcPort != orig.SrcPort || got.DstPort != orig.DstPort ||
		got.Seq != orig.Seq || got.Ack != orig.Ack || got.Flags != orig.Flags ||
		got.Window != orig.Window || got.Urgent != orig.Urgent {
		t.Errorf("header mismatch: got %+v want %+v", got, orig)
	}
	if !bytes.Equal(got.Payload, orig.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, orig.Payload)
	}
}

func TestParseTCPErrors(t *testing.T) {
	if _, err := ParseTCP(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short buffer: err = %v, want ErrTruncated", err)
	}
	seg := (&TCP{SrcPort: 1, DstPort: 2}).Marshal()
	seg[12] = 0x20 // data offset 2 words < 5
	if _, err := ParseTCP(seg); err != ErrBadHeader {
		t.Errorf("bad offset: err = %v, want ErrBadHeader", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		u := UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
		got, err := ParseUDP(u.Marshal())
		if err != nil {
			return false
		}
		return got.SrcPort == srcPort && got.DstPort == dstPort && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := ICMP{Type: ICMPEchoRequest, ID: 99, Seq: 3, Payload: []byte("ping")}
	got, err := ParseICMP(m.Marshal())
	if err != nil {
		t.Fatalf("ParseICMP: %v", err)
	}
	if got.Type != m.Type || got.ID != m.ID || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestICMPChecksumValidation(t *testing.T) {
	raw := (&ICMP{Type: ICMPEchoRequest, ID: 1, Seq: 1}).Marshal()
	raw[7] ^= 0x01 // corrupt seq without fixing checksum
	if _, err := ParseICMP(raw); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestChecksumZeroOverValidHeader(t *testing.T) {
	// Checksum over a header that includes its own checksum field is 0.
	p := IPv4{TTL: 64, Protocol: ProtoUDP, Src: Addr{1, 2, 3, 4}, Dst: Addr{4, 3, 2, 1}}
	raw := p.Marshal()
	if got := Checksum(raw[:IPv4HeaderLen]); got != 0 {
		t.Errorf("Checksum over valid header = %#x, want 0", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte per RFC 1071.
	even := Checksum([]byte{0xab, 0xcd, 0x12, 0x00})
	odd := Checksum([]byte{0xab, 0xcd, 0x12})
	if even != odd {
		t.Errorf("odd-length checksum %#x != padded %#x", odd, even)
	}
}

func TestFlowOf(t *testing.T) {
	raw := NewUDP(Addr{10, 0, 0, 1}, Addr{10, 0, 0, 2}, 5000, 53, []byte("q"))
	p, err := ParseIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	f := FlowOf(p)
	want := Flow{
		Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 53, Protocol: ProtoUDP,
	}
	if f != want {
		t.Errorf("FlowOf = %v, want %v", f, want)
	}
	if got := f.Reverse().Reverse(); got != f {
		t.Errorf("double Reverse = %v, want %v", got, f)
	}
	rev := f.Reverse()
	if rev.Src != want.Dst || rev.SrcPort != want.DstPort {
		t.Errorf("Reverse = %v", rev)
	}
}

func TestFlowOfICMPHasZeroPorts(t *testing.T) {
	raw := NewICMPEcho(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, ICMPEchoRequest, 5, 1, nil)
	p, err := ParseIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	f := FlowOf(p)
	if f.SrcPort != 0 || f.DstPort != 0 {
		t.Errorf("ICMP flow ports = %d,%d; want 0,0", f.SrcPort, f.DstPort)
	}
}

func TestPadToSize(t *testing.T) {
	for _, size := range []int{64, 256, 1024, 1500, 4096, 16384, 65535} {
		raw, err := PadToSize(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1, 2, size)
		if err != nil {
			t.Fatalf("PadToSize(%d): %v", size, err)
		}
		if len(raw) != size {
			t.Errorf("PadToSize(%d) produced %d bytes", size, len(raw))
		}
		if _, err := ParseIPv4(raw); err != nil {
			t.Errorf("PadToSize(%d) unparsable: %v", size, err)
		}
	}
	if _, err := PadToSize(Addr{}, Addr{}, 1, 2, 10); err == nil {
		t.Error("PadToSize(10): expected error")
	}
	if _, err := PadToSize(Addr{}, Addr{}, 1, 2, 70000); err == nil {
		t.Error("PadToSize(70000): expected error")
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	payload := make([]byte, 5000)
	rnd := rand.New(rand.NewSource(42))
	rnd.Read(payload)
	orig := NewUDP(Addr{10, 8, 0, 2}, Addr{10, 8, 0, 1}, 9999, 80, payload)

	frags, err := Fragment(orig, 1500)
	if err != nil {
		t.Fatalf("Fragment: %v", err)
	}
	if len(frags) < 4 {
		t.Fatalf("expected >=4 fragments for 5 kB at MTU 1500, got %d", len(frags))
	}
	for i, f := range frags {
		if len(f) > 1500 {
			t.Errorf("fragment %d exceeds MTU: %d bytes", i, len(f))
		}
	}
	back, err := Reassemble(frags)
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if !bytes.Equal(back, orig) {
		t.Error("reassembled packet differs from original")
	}
}

func TestFragmentReassembleShuffled(t *testing.T) {
	orig := NewUDP(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1, 2, make([]byte, 4000))
	frags, err := Fragment(orig, 576)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	rnd.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	back, err := Reassemble(frags)
	if err != nil {
		t.Fatalf("Reassemble shuffled: %v", err)
	}
	if !bytes.Equal(back, orig) {
		t.Error("shuffled reassembly differs from original")
	}
}

func TestFragmentSmallPacketPassesThrough(t *testing.T) {
	orig := NewUDP(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1, 2, []byte("tiny"))
	frags, err := Fragment(orig, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], orig) {
		t.Error("small packet should pass through unfragmented")
	}
}

func TestFragmentRespectsDF(t *testing.T) {
	p := IPv4{
		TTL: 64, Protocol: ProtoUDP, Flags: FlagDF,
		Src: Addr{1, 1, 1, 1}, Dst: Addr{2, 2, 2, 2},
		Payload: make([]byte, 3000),
	}
	if _, err := Fragment(p.Marshal(), 1500); err == nil {
		t.Error("expected error fragmenting DF packet")
	}
}

func TestReassembleMissingFragment(t *testing.T) {
	orig := NewUDP(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1, 2, make([]byte, 4000))
	frags, err := Fragment(orig, 576)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reassemble(append(frags[:1], frags[2:]...)); err == nil {
		t.Error("expected gap error with missing middle fragment")
	}
	if _, err := Reassemble(frags[1:]); err == nil {
		t.Error("expected gap error with missing first fragment")
	}
	if _, err := Reassemble(nil); err == nil {
		t.Error("expected error for empty fragment list")
	}
}

func TestReassembleMixedDatagramsRejected(t *testing.T) {
	a := NewUDP(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1, 2, make([]byte, 3000))
	b := NewUDP(Addr{3, 3, 3, 3}, Addr{4, 4, 4, 4}, 1, 2, make([]byte, 3000))
	fa, _ := Fragment(a, 1500)
	fb, _ := Fragment(b, 1500)
	if _, err := Reassemble([][]byte{fa[0], fb[1]}); err == nil {
		t.Error("expected error mixing fragments of different datagrams")
	}
}

func TestFragmentMTUTooSmall(t *testing.T) {
	orig := NewUDP(Addr{1, 1, 1, 1}, Addr{2, 2, 2, 2}, 1, 2, make([]byte, 100))
	if _, err := Fragment(orig, IPv4HeaderLen); err == nil {
		t.Error("expected error for MTU that cannot carry payload")
	}
}

func TestProcessedTOSConstant(t *testing.T) {
	// The paper fixes the client-to-client flag to 0xeb (paper §IV-A).
	if ProcessedTOS != 0xeb {
		t.Fatalf("ProcessedTOS = %#x, want 0xeb", ProcessedTOS)
	}
}

func BenchmarkParseIPv4(b *testing.B) {
	raw := NewUDP(Addr{10, 8, 0, 2}, Addr{10, 8, 0, 1}, 5000, 80, make([]byte, 1460))
	var p IPv4
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		if err := p.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalIPv4(b *testing.B) {
	p := IPv4{
		TTL: 64, Protocol: ProtoUDP,
		Src: Addr{10, 8, 0, 2}, Dst: Addr{10, 8, 0, 1},
		Payload: make([]byte, 1460),
	}
	buf := make([]byte, p.Len())
	b.ReportAllocs()
	b.SetBytes(int64(p.Len()))
	for i := 0; i < b.N; i++ {
		p.MarshalTo(buf)
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

// --- zero-allocation path tests (pooled headers, MarshalTo bounds) ---

func TestMarshalToShortBuffer(t *testing.T) {
	p := &IPv4{TTL: 64, Protocol: ProtoUDP, Payload: make([]byte, 100)}
	for _, short := range []int{0, 1, IPv4HeaderLen, p.Len() - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MarshalTo(len %d) did not panic for a %d-byte packet", short, p.Len())
				}
			}()
			p.MarshalTo(make([]byte, short))
		}()
	}
	// Exact-size buffer succeeds.
	buf := make([]byte, p.Len())
	if n := p.MarshalTo(buf); n != p.Len() {
		t.Fatalf("MarshalTo wrote %d bytes, want %d", n, p.Len())
	}
}

func TestAcquireReleaseIPv4(t *testing.T) {
	raw := (&IPv4{TTL: 64, Protocol: ProtoUDP,
		Src: AddrFrom(10, 8, 0, 2), Dst: AddrFrom(192, 0, 2, 1),
		Payload: []byte("pooled-parse-payload")}).Marshal()

	p := AcquireIPv4()
	if err := p.Parse(raw); err != nil {
		t.Fatal(err)
	}
	if p.Src != AddrFrom(10, 8, 0, 2) || string(p.Payload) != "pooled-parse-payload" {
		t.Fatalf("pooled parse mismatch: %+v", p)
	}
	p.Release()

	// A released header comes back zeroed, holding no alias of the old
	// parse buffer.
	q := AcquireIPv4()
	if q.Payload != nil || q.Options != nil || q.TotalLen != 0 {
		t.Fatalf("released header retained state: %+v", q)
	}
	q.Release()
}

func TestPooledParseMarshalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	raw := (&IPv4{TTL: 64, Protocol: ProtoUDP,
		Src: AddrFrom(10, 8, 0, 2), Dst: AddrFrom(192, 0, 2, 1),
		Payload: make([]byte, 1400)}).Marshal()
	out := make([]byte, len(raw))
	allocs := testing.AllocsPerRun(100, func() {
		p := AcquireIPv4()
		if err := p.Parse(raw); err != nil {
			t.Fatal(err)
		}
		p.MarshalTo(out)
		p.Release()
	})
	if allocs > 0 {
		t.Errorf("pooled parse+marshal allocates %.1f times per packet, want 0", allocs)
	}
}
