// Package packet implements parsing, construction and serialisation of the
// IPv4, TCP, UDP and ICMP headers that EndBox middlebox functions inspect.
//
// EndBox processes every packet crossing the VPN boundary inside the enclave
// (paper §III-B). Click elements such as IPFilter and IDSMatcher operate on
// the structures defined here. The package is allocation-conscious: parsing
// is zero-copy (headers reference the underlying buffer) and serialisation
// writes into caller-provided buffers where possible.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Protocol numbers as assigned by IANA, restricted to those EndBox inspects.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header sizes in bytes (without options).
const (
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	UDPHeaderLen  = 8
	ICMPHeaderLen = 8
)

// ProcessedTOS is the value EndBox clients write into the IPv4 TOS byte to
// flag packets already processed by a peer's Click instance, enabling the
// client-to-client bypass optimisation (paper §IV-A). The EndBox server
// clears this value on packets arriving from outside the VPN so external
// hosts cannot forge the flag.
const ProcessedTOS = 0xeb

// Common errors returned by parsers in this package.
var (
	ErrTruncated   = errors.New("packet: buffer too short")
	ErrBadVersion  = errors.New("packet: not an IPv4 packet")
	ErrBadHeader   = errors.New("packet: malformed header")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
)

// Addr is an IPv4 address in network byte order.
type Addr [4]byte

// AddrFrom returns the address a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer, used for prefix
// matching in the firewall element.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// AddrFromUint32 converts a big-endian integer into an address.
func AddrFromUint32(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// ParseAddr parses dotted-quad notation ("10.8.0.1").
func ParseAddr(s string) (Addr, error) {
	var a Addr
	idx := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return Addr{}, fmt.Errorf("packet: octet out of range in %q", s)
			}
		case c == '.':
			if val < 0 || idx >= 3 {
				return Addr{}, fmt.Errorf("packet: malformed address %q", s)
			}
			a[idx] = byte(val)
			idx++
			val = -1
		default:
			return Addr{}, fmt.Errorf("packet: invalid character in address %q", s)
		}
	}
	if idx != 3 || val < 0 {
		return Addr{}, fmt.Errorf("packet: malformed address %q", s)
	}
	a[3] = byte(val)
	return a, nil
}

// MustParseAddr is ParseAddr for tests and static configuration; it panics
// on malformed input.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// IPv4 is a parsed IPv4 header plus its payload. Payload aliases the parse
// buffer; callers that retain packets across buffer reuse must Clone first.
type IPv4 struct {
	TOS      byte
	TotalLen uint16
	ID       uint16
	Flags    byte   // 3-bit flags field (bit 1 = DF, bit 2 = MF)
	FragOff  uint16 // 13-bit fragment offset in 8-byte units
	TTL      byte
	Protocol byte
	Src      Addr
	Dst      Addr
	Options  []byte
	Payload  []byte
}

// Flag bits within IPv4.Flags.
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

// ParseIPv4 decodes an IPv4 packet. It validates the version, header length,
// total length and header checksum.
func ParseIPv4(buf []byte) (*IPv4, error) {
	p := new(IPv4)
	if err := p.Parse(buf); err != nil {
		return nil, err
	}
	return p, nil
}

// ipv4Pool recycles header scratch objects for the per-packet hot paths
// (AcquireIPv4 / Release). The pooled objects hold no buffers of their own —
// Options and Payload alias whatever buffer was parsed — so Release only
// has to sever those aliases.
var ipv4Pool = sync.Pool{New: func() any { return new(IPv4) }}

// AcquireIPv4 returns a zeroed header scratch object from the pool. The
// caller owns it until Release; it is not safe to share across goroutines.
// Use it with Parse/MarshalTo on the data path instead of ParseIPv4 to keep
// the steady state allocation-free.
func AcquireIPv4() *IPv4 {
	return ipv4Pool.Get().(*IPv4)
}

// Release returns the header to the pool. The caller must not touch p — or
// any slice read from p.Options/p.Payload while it was held, which alias
// the parse buffer — after the call. Releasing the same header twice is a
// use-after-free, exactly like releasing a wire buffer twice.
func (p *IPv4) Release() {
	*p = IPv4{} // drop buffer aliases so the pool never retains packet data
	ipv4Pool.Put(p)
}

// Parse decodes into an existing header value, allowing reuse without
// allocation on the data path.
func (p *IPv4) Parse(buf []byte) error {
	if len(buf) < IPv4HeaderLen {
		return ErrTruncated
	}
	if buf[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(buf) {
		return ErrBadHeader
	}
	totalLen := binary.BigEndian.Uint16(buf[2:4])
	if int(totalLen) < ihl || int(totalLen) > len(buf) {
		return ErrBadHeader
	}
	if Checksum(buf[:ihl]) != 0 {
		return ErrBadChecksum
	}
	p.TOS = buf[1]
	p.TotalLen = totalLen
	p.ID = binary.BigEndian.Uint16(buf[4:6])
	flagsFrag := binary.BigEndian.Uint16(buf[6:8])
	p.Flags = byte(flagsFrag >> 13)
	p.FragOff = flagsFrag & 0x1fff
	p.TTL = buf[8]
	p.Protocol = buf[9]
	copy(p.Src[:], buf[12:16])
	copy(p.Dst[:], buf[16:20])
	if ihl > IPv4HeaderLen {
		p.Options = buf[IPv4HeaderLen:ihl]
	} else {
		p.Options = nil
	}
	p.Payload = buf[ihl:totalLen]
	return nil
}

// HeaderLen returns the encoded header length including options, in bytes.
func (p *IPv4) HeaderLen() int {
	optLen := (len(p.Options) + 3) &^ 3
	return IPv4HeaderLen + optLen
}

// Len returns the total serialised length of the packet.
func (p *IPv4) Len() int { return p.HeaderLen() + len(p.Payload) }

// Marshal serialises the packet, computing TotalLen and the header checksum.
func (p *IPv4) Marshal() []byte {
	buf := make([]byte, p.Len())
	p.MarshalTo(buf)
	return buf
}

// MarshalTo serialises into buf, which must be at least p.Len() bytes, and
// returns the number of bytes written. An undersized buffer panics up
// front — before any byte is written — instead of tearing the packet
// partway through, matching encoding/binary's contract for fixed-size puts.
func (p *IPv4) MarshalTo(buf []byte) int {
	hl := p.HeaderLen()
	total := hl + len(p.Payload)
	if len(buf) < total {
		panic(fmt.Sprintf("packet: MarshalTo buffer too small: %d < %d", len(buf), total))
	}
	buf[0] = 0x40 | byte(hl/4)
	buf[1] = p.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint16(buf[4:6], p.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(p.Flags)<<13|p.FragOff&0x1fff)
	buf[8] = p.TTL
	buf[9] = p.Protocol
	buf[10], buf[11] = 0, 0 // checksum placeholder
	copy(buf[12:16], p.Src[:])
	copy(buf[16:20], p.Dst[:])
	for i := IPv4HeaderLen; i < hl; i++ {
		buf[i] = 0
	}
	copy(buf[IPv4HeaderLen:], p.Options)
	sum := Checksum(buf[:hl])
	binary.BigEndian.PutUint16(buf[10:12], sum)
	copy(buf[hl:], p.Payload)
	return total
}

// Clone deep-copies the packet so it no longer aliases the parse buffer.
func (p *IPv4) Clone() *IPv4 {
	q := *p
	q.Options = append([]byte(nil), p.Options...)
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// TCP is a parsed TCP header plus payload.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte // CWR ECE URG ACK PSH RST SYN FIN (low 8 bits)
	Window  uint16
	Urgent  uint16
	Options []byte
	Payload []byte
}

// TCP flag bits.
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
	TCPUrg = 0x20
)

// ParseTCP decodes a TCP segment from an IPv4 payload.
func ParseTCP(buf []byte) (*TCP, error) {
	if len(buf) < TCPHeaderLen {
		return nil, ErrTruncated
	}
	dataOff := int(buf[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(buf) {
		return nil, ErrBadHeader
	}
	t := &TCP{
		SrcPort: binary.BigEndian.Uint16(buf[0:2]),
		DstPort: binary.BigEndian.Uint16(buf[2:4]),
		Seq:     binary.BigEndian.Uint32(buf[4:8]),
		Ack:     binary.BigEndian.Uint32(buf[8:12]),
		Flags:   buf[13],
		Window:  binary.BigEndian.Uint16(buf[14:16]),
		Urgent:  binary.BigEndian.Uint16(buf[18:20]),
		Payload: buf[dataOff:],
	}
	if dataOff > TCPHeaderLen {
		t.Options = buf[TCPHeaderLen:dataOff]
	}
	return t, nil
}

// HeaderLen returns the encoded header length including padded options.
func (t *TCP) HeaderLen() int {
	optLen := (len(t.Options) + 3) &^ 3
	return TCPHeaderLen + optLen
}

// Marshal serialises the segment. The checksum field is left zero; transport
// checksums over the pseudo-header are applied by MarshalTCPChecksum when a
// full IPv4 context is available.
func (t *TCP) Marshal() []byte {
	hl := t.HeaderLen()
	buf := make([]byte, hl+len(t.Payload))
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	buf[12] = byte(hl/4) << 4
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	binary.BigEndian.PutUint16(buf[18:20], t.Urgent)
	copy(buf[TCPHeaderLen:], t.Options)
	copy(buf[hl:], t.Payload)
	return buf
}

// UDP is a parsed UDP header plus payload.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// ParseUDP decodes a UDP datagram from an IPv4 payload.
func ParseUDP(buf []byte) (*UDP, error) {
	if len(buf) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	length := binary.BigEndian.Uint16(buf[4:6])
	if int(length) < UDPHeaderLen || int(length) > len(buf) {
		return nil, ErrBadHeader
	}
	return &UDP{
		SrcPort: binary.BigEndian.Uint16(buf[0:2]),
		DstPort: binary.BigEndian.Uint16(buf[2:4]),
		Payload: buf[UDPHeaderLen:length],
	}, nil
}

// Marshal serialises the datagram with length but zero checksum (legal for
// IPv4 per RFC 768).
func (u *UDP) Marshal() []byte {
	buf := make([]byte, UDPHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(buf)))
	copy(buf[UDPHeaderLen:], u.Payload)
	return buf
}

// ICMP echo types used by the latency experiments (paper §V-C, Fig. 7/11).
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// ICMP is a parsed ICMP echo message.
type ICMP struct {
	Type    byte
	Code    byte
	ID      uint16
	Seq     uint16
	Payload []byte
}

// ParseICMP decodes an ICMP message from an IPv4 payload, validating its
// checksum.
func ParseICMP(buf []byte) (*ICMP, error) {
	if len(buf) < ICMPHeaderLen {
		return nil, ErrTruncated
	}
	if Checksum(buf) != 0 {
		return nil, ErrBadChecksum
	}
	return &ICMP{
		Type:    buf[0],
		Code:    buf[1],
		ID:      binary.BigEndian.Uint16(buf[4:6]),
		Seq:     binary.BigEndian.Uint16(buf[6:8]),
		Payload: buf[ICMPHeaderLen:],
	}, nil
}

// Marshal serialises the message with a valid checksum.
func (m *ICMP) Marshal() []byte {
	buf := make([]byte, ICMPHeaderLen+len(m.Payload))
	buf[0] = m.Type
	buf[1] = m.Code
	binary.BigEndian.PutUint16(buf[4:6], m.ID)
	binary.BigEndian.PutUint16(buf[6:8], m.Seq)
	copy(buf[ICMPHeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(buf[2:4], Checksum(buf))
	return buf
}

// Checksum computes the RFC 1071 Internet checksum over buf. Computing the
// checksum of a buffer whose checksum field is filled in yields zero, which
// is how parsers validate headers.
func Checksum(buf []byte) uint16 {
	var sum uint32
	for len(buf) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(buf))
		buf = buf[2:]
	}
	if len(buf) == 1 {
		sum += uint32(buf[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Flow identifies a transport 5-tuple; middlebox functions such as the load
// balancer and the DDoS limiter key their state on it.
type Flow struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Protocol         byte
}

// FlowOf extracts the flow key from a parsed IPv4 packet. Non-TCP/UDP
// protocols yield zero ports.
func FlowOf(p *IPv4) Flow {
	f := Flow{Src: p.Src, Dst: p.Dst, Protocol: p.Protocol}
	switch p.Protocol {
	case ProtoTCP, ProtoUDP:
		if len(p.Payload) >= 4 {
			f.SrcPort = binary.BigEndian.Uint16(p.Payload[0:2])
			f.DstPort = binary.BigEndian.Uint16(p.Payload[2:4])
		}
	}
	return f
}

// Reverse returns the flow as seen from the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{
		Src: f.Dst, Dst: f.Src,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Protocol: f.Protocol,
	}
}

// String renders the flow for logs and error messages.
func (f Flow) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Protocol)
}
