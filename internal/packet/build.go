package packet

import (
	"errors"
	"fmt"
	"sort"
)

// defaultTTL is the initial TTL for locally generated packets.
const defaultTTL = 64

// NewUDP builds a serialised IPv4/UDP packet. Workload generators use it to
// produce iperf-style traffic of a precise on-wire size.
func NewUDP(src, dst Addr, srcPort, dstPort uint16, payload []byte) []byte {
	u := UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	ip := IPv4{
		TTL:      defaultTTL,
		Protocol: ProtoUDP,
		Src:      src,
		Dst:      dst,
		Payload:  u.Marshal(),
	}
	return ip.Marshal()
}

// NewTCP builds a serialised IPv4/TCP packet with the given flags.
func NewTCP(src, dst Addr, srcPort, dstPort uint16, seq, ack uint32, flags byte, payload []byte) []byte {
	t := TCP{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack,
		Flags:   flags,
		Window:  65535,
		Payload: payload,
	}
	ip := IPv4{
		TTL:      defaultTTL,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
		Payload:  t.Marshal(),
	}
	return ip.Marshal()
}

// NewICMPEcho builds a serialised IPv4/ICMP echo request or reply.
func NewICMPEcho(src, dst Addr, echoType byte, id, seq uint16, payload []byte) []byte {
	m := ICMP{Type: echoType, ID: id, Seq: seq, Payload: payload}
	ip := IPv4{
		TTL:      defaultTTL,
		Protocol: ProtoICMP,
		Src:      src,
		Dst:      dst,
		Payload:  m.Marshal(),
	}
	return ip.Marshal()
}

// PadToSize builds a UDP packet whose total IPv4 length is exactly size
// bytes, as the throughput sweeps require ("packet size" in Fig. 8 means the
// on-wire IP datagram size). Size must accommodate the IP+UDP headers.
func PadToSize(src, dst Addr, srcPort, dstPort uint16, size int) ([]byte, error) {
	minSize := IPv4HeaderLen + UDPHeaderLen
	if size < minSize {
		return nil, fmt.Errorf("packet: size %d below minimum %d", size, minSize)
	}
	if size > 65535 {
		return nil, fmt.Errorf("packet: size %d exceeds IPv4 maximum", size)
	}
	return NewUDP(src, dst, srcPort, dstPort, make([]byte, size-minSize)), nil
}

// ErrFragmentGap reports a reassembly attempt with missing fragments.
var ErrFragmentGap = errors.New("packet: missing fragment")

// Fragment splits a serialised IPv4 packet into fragments that each fit
// within mtu bytes on the wire. OpenVPN performs fragmentation outside the
// enclave (paper Fig. 3); the EndBox client calls this after the enclave has
// encrypted and returned the datagram. Packets that already fit are returned
// unchanged as a single-element slice.
func Fragment(raw []byte, mtu int) ([][]byte, error) {
	p, err := ParseIPv4(raw)
	if err != nil {
		return nil, err
	}
	if len(raw) <= mtu {
		return [][]byte{raw}, nil
	}
	if p.Flags&FlagDF != 0 {
		return nil, fmt.Errorf("packet: DF set on %d-byte packet with MTU %d", len(raw), mtu)
	}
	hl := p.HeaderLen()
	// Fragment payload sizes must be multiples of 8 bytes except the last.
	chunk := (mtu - hl) &^ 7
	if chunk <= 0 {
		return nil, fmt.Errorf("packet: MTU %d too small for header", mtu)
	}
	var frags [][]byte
	payload := p.Payload
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		more := byte(FlagMF)
		if end >= len(payload) {
			end = len(payload)
			more = 0
		}
		f := IPv4{
			TOS:      p.TOS,
			ID:       p.ID,
			Flags:    p.Flags&FlagDF | more,
			FragOff:  p.FragOff + uint16(off/8),
			TTL:      p.TTL,
			Protocol: p.Protocol,
			Src:      p.Src,
			Dst:      p.Dst,
			Options:  p.Options,
			Payload:  payload[off:end],
		}
		frags = append(frags, f.Marshal())
	}
	return frags, nil
}

// Reassemble merges fragments produced by Fragment back into the original
// datagram. Fragments may arrive in any order; all must share ID, protocol
// and endpoints.
func Reassemble(frags [][]byte) ([]byte, error) {
	if len(frags) == 0 {
		return nil, ErrFragmentGap
	}
	parsed := make([]*IPv4, 0, len(frags))
	for _, f := range frags {
		p, err := ParseIPv4(f)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, p)
	}
	sort.Slice(parsed, func(i, j int) bool { return parsed[i].FragOff < parsed[j].FragOff })
	first := parsed[0]
	if first.FragOff != 0 {
		return nil, ErrFragmentGap
	}
	var payload []byte
	expected := uint16(0)
	for i, p := range parsed {
		if p.ID != first.ID || p.Protocol != first.Protocol || p.Src != first.Src || p.Dst != first.Dst {
			return nil, fmt.Errorf("packet: fragment %d belongs to a different datagram", i)
		}
		if p.FragOff != expected {
			return nil, ErrFragmentGap
		}
		payload = append(payload, p.Payload...)
		expected = p.FragOff + uint16(len(p.Payload)/8)
		last := i == len(parsed)-1
		if (p.Flags&FlagMF != 0) == last {
			return nil, ErrFragmentGap
		}
	}
	whole := IPv4{
		TOS:      first.TOS,
		ID:       first.ID,
		Flags:    first.Flags &^ FlagMF,
		TTL:      first.TTL,
		Protocol: first.Protocol,
		Src:      first.Src,
		Dst:      first.Dst,
		Options:  first.Options,
		Payload:  payload,
	}
	return whole.Marshal(), nil
}
