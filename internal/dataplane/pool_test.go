package dataplane

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestPoolPerClientOrdering submits numbered frames for many clients from
// one producer and checks each client's frames arrive in submission order:
// the pinning guarantee the pipelined server relies on.
func TestPoolPerClientOrdering(t *testing.T) {
	const clients = 16
	const perClient = 100

	var mu sync.Mutex
	seen := make(map[string][]uint32)
	p := NewPool(4, 0, func(id string, frame []byte) {
		mu.Lock()
		seen[id] = append(seen[id], binary.BigEndian.Uint32(frame))
		mu.Unlock()
	})

	for j := 0; j < perClient; j++ {
		for i := 0; i < clients; i++ {
			frame := make([]byte, 4)
			binary.BigEndian.PutUint32(frame, uint32(j))
			for !p.Submit(fmt.Sprintf("client-%d", i), frame) {
				// Queue full: a real server would shed; the ordering test
				// retries so every frame arrives.
			}
		}
	}
	p.Close()

	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("client-%d", i)
		got := seen[id]
		if len(got) != perClient {
			t.Fatalf("%s received %d frames, want %d", id, len(got), perClient)
		}
		for j, v := range got {
			if v != uint32(j) {
				t.Fatalf("%s frame %d out of order: got seq %d", id, j, v)
			}
		}
	}
}

// TestPoolSheds checks the bounded queue drops instead of blocking, and
// counts what it dropped.
func TestPoolSheds(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	p := NewPool(1, 2, func(string, []byte) {
		once.Do(func() { close(started) })
		<-block
	})
	// First frame occupies the worker; wait until it does so the queue
	// arithmetic below is deterministic.
	if !p.Submit("c", []byte{0}) {
		t.Fatal("first submit refused")
	}
	<-started
	// Two more fill the depth-2 queue; the next must shed.
	p.Submit("c", []byte{1})
	p.Submit("c", []byte{2})
	if p.Submit("c", []byte{3}) {
		t.Error("submit into a full queue accepted")
	}
	st := p.Stats()
	if st.Dropped == 0 {
		t.Error("no drops counted")
	}
	close(block)
	p.Close()
	if p.Submit("c", []byte{4}) {
		t.Error("submit after Close accepted")
	}
}

// TestPoolCloseDrains checks Close waits for accepted frames.
func TestPoolCloseDrains(t *testing.T) {
	var mu sync.Mutex
	handled := 0
	p := NewPool(2, 64, func(string, []byte) {
		mu.Lock()
		handled++
		mu.Unlock()
	})
	const n = 50
	accepted := 0
	for i := 0; i < n; i++ {
		if p.Submit(fmt.Sprintf("c%d", i), []byte{byte(i)}) {
			accepted++
		}
	}
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if handled != accepted {
		t.Errorf("handled %d of %d accepted frames after Close", handled, accepted)
	}
	if st := p.Stats(); st.Submitted != uint64(accepted) {
		t.Errorf("Submitted = %d, want %d", st.Submitted, accepted)
	}
}

// TestPoolConcurrentSubmitClose hammers Submit from many goroutines while
// Close runs — no panics (send on closed channel) allowed. Run with -race.
func TestPoolConcurrentSubmitClose(t *testing.T) {
	p := NewPool(4, 8, func(string, []byte) {})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				p.Submit(fmt.Sprintf("c%d", i), []byte{byte(j)})
			}
		}(i)
	}
	p.Close()
	wg.Wait()
}

// TestPoolSubmitOwnedRelease verifies the buffer-ownership handoff: every
// accepted owner buffer reaches the release hook exactly once, strictly
// after its handler finished, and rejected submissions never do (the
// caller keeps ownership).
func TestPoolSubmitOwnedRelease(t *testing.T) {
	var mu sync.Mutex
	handled := make(map[string]bool)
	released := make(map[string]int)
	p := NewPool(2, 4, func(clientID string, frame []byte) {
		mu.Lock()
		handled[string(frame)] = true
		mu.Unlock()
	})
	p.SetRelease(func(owner []byte) {
		mu.Lock()
		if !handled[string(owner)] {
			t.Errorf("buffer %q released before its handler ran", owner)
		}
		released[string(owner)]++
		mu.Unlock()
	})

	accepted := 0
	for i := 0; i < 64; i++ {
		buf := []byte(fmt.Sprintf("frame-%02d", i))
		if p.SubmitOwned(fmt.Sprintf("client-%d", i%4), buf, buf) {
			accepted++
		}
	}
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(released) != accepted {
		t.Errorf("released %d distinct buffers, want %d", len(released), accepted)
	}
	for owner, n := range released {
		if n != 1 {
			t.Errorf("buffer %q released %d times", owner, n)
		}
	}
}

// TestPoolSubmitWithoutOwner keeps the plain Submit path working with a
// release hook installed: frames without owners must not hit the hook.
func TestPoolSubmitWithoutOwner(t *testing.T) {
	p := NewPool(1, 4, func(string, []byte) {})
	p.SetRelease(func(owner []byte) {
		t.Errorf("release hook fired for ownerless frame %q", owner)
	})
	if !p.Submit("c", []byte("plain")) {
		t.Fatal("Submit refused")
	}
	p.Close()
}

// TestPoolWatermarkShedsDataNotControl pins the overload-shedding
// contract: once a worker queue reaches the watermark, data submissions
// are shed (drop-newest) while SubmitControl keeps landing in the
// reserved headroom — a flood of data must not starve fleet-management
// messages. Per-shed notifications carry the client ID.
func TestPoolWatermarkShedsDataNotControl(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	p := NewPool(1, 4, func(string, []byte) {
		once.Do(func() { close(started) })
		<-block
	})
	defer func() { close(block); p.Close() }()
	var shedFor []string
	p.SetOnShed(func(id string) { shedFor = append(shedFor, id) })
	p.SetWatermark(2)

	// Occupy the worker so queue occupancy is deterministic.
	if !p.Submit("c", []byte{0}) {
		t.Fatal("first submit refused")
	}
	<-started
	// Two data frames fill the queue to the watermark.
	if !p.Submit("c", []byte{1}) || !p.Submit("c", []byte{2}) {
		t.Fatal("pre-watermark submits refused")
	}
	// At the watermark: data sheds, control still lands.
	if p.Submit("c", []byte{3}) {
		t.Error("data submit at watermark accepted")
	}
	if !p.SubmitControl("c", []byte{4}) {
		t.Error("control submit refused in reserved headroom")
	}
	if !p.SubmitControl("c", []byte{5}) {
		t.Error("control submit refused at last queue slot")
	}
	// Queue genuinely full now: even control is refused, and counted.
	if p.SubmitControl("c", []byte{6}) {
		t.Error("control submit into a full queue accepted")
	}

	st := p.Stats()
	if st.Shed != 1 {
		t.Errorf("Shed = %d, want 1 (the watermark-shed data frame)", st.Shed)
	}
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (the full-queue control frame)", st.Dropped)
	}
	if len(shedFor) != 2 || shedFor[0] != "c" || shedFor[1] != "c" {
		t.Errorf("shed notifications = %v, want [c c]", shedFor)
	}
}

// TestPoolZeroWatermarkKeepsOldBehaviour: without SetWatermark, data
// sheds only when the queue is genuinely full.
func TestPoolZeroWatermarkKeepsOldBehaviour(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	p := NewPool(1, 2, func(string, []byte) {
		once.Do(func() { close(started) })
		<-block
	})
	defer func() { close(block); p.Close() }()
	if !p.Submit("c", []byte{0}) {
		t.Fatal("first submit refused")
	}
	<-started
	if !p.Submit("c", []byte{1}) || !p.Submit("c", []byte{2}) {
		t.Error("submits into a non-full queue refused")
	}
	if st := p.Stats(); st.Shed != 0 {
		t.Errorf("Shed = %d without a watermark, want 0", st.Shed)
	}
}

// TestVIFCountersShed pins the per-client shed accounting surfaced in
// VIFStats.
func TestVIFCountersShed(t *testing.T) {
	var c VIFCounters
	c.CountShed()
	c.CountShed()
	s := c.Snapshot()
	if s.Shed != 2 {
		t.Errorf("Shed = %d, want 2", s.Shed)
	}
	var agg VIFStats
	agg.Add(s)
	agg.Add(s)
	if agg.Shed != 4 {
		t.Errorf("aggregated Shed = %d, want 4", agg.Shed)
	}
}
