package dataplane

import "sync/atomic"

// VIFStats are per-client virtual interface counters; the scalability
// experiments aggregate them across all clients (paper §V-E: "throughput
// is aggregated over all virtual interfaces set up by the OpenVPN
// servers").
type VIFStats struct {
	RxPackets, RxBytes uint64 // client -> network
	TxPackets, TxBytes uint64 // network -> client
	Dropped            uint64
	// Shed counts frames discarded by overload shedding before any
	// processing — distinct from Dropped (policy/middlebox rejections):
	// shed frames say the server was saturated, dropped frames say the
	// traffic was unwanted.
	Shed uint64
}

// Add accumulates another snapshot into s.
func (s *VIFStats) Add(o VIFStats) {
	s.RxPackets += o.RxPackets
	s.RxBytes += o.RxBytes
	s.TxPackets += o.TxPackets
	s.TxBytes += o.TxBytes
	s.Dropped += o.Dropped
	s.Shed += o.Shed
}

// VIFCounters is the live, shard-local form of VIFStats: plain atomics, so
// the data path updates them without taking any lock — concurrent frames
// for different clients (and even the same client's rx/tx directions)
// never serialise on statistics.
type VIFCounters struct {
	rxPackets, rxBytes atomic.Uint64
	txPackets, txBytes atomic.Uint64
	dropped            atomic.Uint64
	shed               atomic.Uint64
}

// CountRx records one accepted client->network packet of n bytes.
func (c *VIFCounters) CountRx(n int) {
	c.rxPackets.Add(1)
	c.rxBytes.Add(uint64(n))
}

// CountTx records one network->client packet of n bytes.
func (c *VIFCounters) CountTx(n int) {
	c.txPackets.Add(1)
	c.txBytes.Add(uint64(n))
}

// CountDrop records one packet rejected by policy or middlebox.
func (c *VIFCounters) CountDrop() { c.dropped.Add(1) }

// CountShed records one frame discarded by overload shedding.
func (c *VIFCounters) CountShed() { c.shed.Add(1) }

// Snapshot reads a consistent-enough copy of the counters (each field is
// individually atomic; cross-field skew is at most the in-flight packets).
func (c *VIFCounters) Snapshot() VIFStats {
	return VIFStats{
		RxPackets: c.rxPackets.Load(),
		RxBytes:   c.rxBytes.Load(),
		TxPackets: c.txPackets.Load(),
		TxBytes:   c.txBytes.Load(),
		Dropped:   c.dropped.Load(),
		Shed:      c.shed.Load(),
	}
}
