package dataplane

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableCRUD(t *testing.T) {
	tab := NewTable[int](4)
	if tab.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", tab.ShardCount())
	}
	if !tab.Insert("a", 1) {
		t.Fatal("first insert refused")
	}
	if tab.Insert("a", 2) {
		t.Fatal("duplicate insert accepted")
	}
	if v, ok := tab.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; duplicate must not overwrite", v, ok)
	}
	if _, ok := tab.Get("missing"); ok {
		t.Fatal("Get(missing) found something")
	}
	if !tab.Delete("a") {
		t.Fatal("delete of present key reported absent")
	}
	if tab.Delete("a") {
		t.Fatal("second delete reported present")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after delete", tab.Len())
	}
}

func TestTableShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := NewTable[int](tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewTable(%d).ShardCount = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewTable[int](0).ShardCount(); got != DefaultShards() {
		t.Errorf("NewTable(0).ShardCount = %d, want DefaultShards %d", got, DefaultShards())
	}
}

// TestShardDistribution inserts realistic client IDs and demands no shard
// holds more than twice the mean — the load-balance property the FNV
// placement hash must provide for the sharding to pay off.
func TestShardDistribution(t *testing.T) {
	const clients = 1024
	const shards = 16
	tab := NewTable[struct{}](shards)
	for i := 0; i < clients; i++ {
		if !tab.Insert(fmt.Sprintf("client-%d", i), struct{}{}) {
			t.Fatalf("insert client-%d refused", i)
		}
	}
	mean := clients / shards
	for i := 0; i < shards; i++ {
		if n := tab.ShardLen(i); n > 2*mean {
			t.Errorf("shard %d holds %d sessions, > 2x mean %d", i, n, mean)
		}
	}
	if tab.Len() != clients {
		t.Errorf("Len = %d, want %d", tab.Len(), clients)
	}
}

// TestTableConcurrentStress drives 64 concurrent "clients" through the
// table — insert, hot-path lookups with counter updates, snapshot reads,
// key iteration, delete — and checks the per-client counters afterwards.
// Run with -race.
func TestTableConcurrentStress(t *testing.T) {
	const clients = 64
	const packetsPerClient = 200
	tab := NewTable[*VIFCounters](0)

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("stress-%d", i)
			if !tab.Insert(id, &VIFCounters{}) {
				t.Errorf("insert %s refused", id)
				return
			}
			for j := 0; j < packetsPerClient; j++ {
				c, ok := tab.Get(id)
				if !ok {
					t.Errorf("%s vanished", id)
					return
				}
				c.CountRx(1500)
			}
		}(i)
	}
	// Aggregation races against the senders, like a stats scrape.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			var agg VIFStats
			tab.Range(func(_ string, c *VIFCounters) bool {
				agg.Add(c.Snapshot())
				return true
			})
			_ = tab.Keys()
			_ = tab.Len()
		}
	}()
	wg.Wait()

	var agg VIFStats
	tab.Range(func(_ string, c *VIFCounters) bool {
		agg.Add(c.Snapshot())
		return true
	})
	if agg.RxPackets != clients*packetsPerClient {
		t.Errorf("RxPackets = %d, want %d", agg.RxPackets, clients*packetsPerClient)
	}
	if agg.RxBytes != clients*packetsPerClient*1500 {
		t.Errorf("RxBytes = %d, want %d", agg.RxBytes, clients*packetsPerClient*1500)
	}
	for i := 0; i < clients; i++ {
		if !tab.Delete(fmt.Sprintf("stress-%d", i)) {
			t.Errorf("delete stress-%d reported absent", i)
		}
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d after deletes", tab.Len())
	}
}

func TestHashStable(t *testing.T) {
	// FNV-1a is a fixed function; placement must never change between
	// processes (a client reconnecting lands on the same shard).
	if Hash("client-1") != Hash("client-1") {
		t.Fatal("hash not deterministic")
	}
	if Hash("client-1") == Hash("client-2") && Hash("client-3") == Hash("client-4") {
		t.Fatal("hash suspiciously collides")
	}
}
