// Package dataplane owns the server-side packet path: an N-way sharded
// session table that replaces the single mutex-guarded map the VPN server
// started with, shard-local statistics counters, and a pipelined ingress
// worker pool. The design follows the scalability argument of the paper
// (§V: middlebox work scales with the number of clients, so the server's
// only remaining job — session lookup and frame fan-in — must not
// serialise on one lock) and the session-state engineering of LightBox
// (stateful lookup is the hot path worth sharding).
//
// The package is deliberately free of VPN/enclave dependencies: the table
// is generic over its session type, the hash is fixed (FNV-1a over the
// client ID), and both the table and the pool derive placement from the
// same hash so a client's frames always land on the same shard and the
// same worker — which is what preserves per-client frame ordering through
// the pipelined server.
//
// Buffer ownership: the ingress pool participates in the pooled-buffer
// discipline of DESIGN.md "Buffer ownership". Pool.Submit lends the frame
// to the handler for the duration of the call only; Pool.SubmitOwned is
// the asynchronous handoff — ownership of the backing buffer travels
// through the worker queue with the frame and the pool returns it via the
// SetRelease hook (wired to wire.PutBuffer) the moment the handler
// returns. A refused submit (full queue) leaves ownership with the
// caller.
package dataplane

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// Hash is the placement hash shared by the session table and the ingress
// worker pool: FNV-1a over the client ID. Using one hash everywhere pins a
// client to exactly one shard and one worker.
func Hash(id string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return h.Sum32()
}

// DefaultShards picks a shard count for callers that do not specify one:
// the number of CPUs rounded up to a power of two, clamped to [1, 64].
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	shards := 1
	for shards < n && shards < 64 {
		shards <<= 1
	}
	return shards
}

// shard is one lock domain of the table. The RWMutex guards only the map
// structure; values carry their own synchronisation (e.g. VIFCounters).
type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// Table is an N-way sharded map keyed by client ID. Lookups, inserts and
// deletes contend only within the owning shard, so operations on different
// clients proceed in parallel — the property the monolithic session map
// could not provide.
type Table[V any] struct {
	shards []shard[V]
	mask   uint32
}

// NewTable creates a table with the given shard count. Counts that are not
// powers of two are rounded up; zero or negative selects DefaultShards.
func NewTable[V any](shards int) *Table[V] {
	if shards <= 0 {
		shards = DefaultShards()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Table[V]{shards: make([]shard[V], n), mask: uint32(n - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]V)
	}
	return t
}

// ShardCount reports the number of shards (always a power of two).
func (t *Table[V]) ShardCount() int { return len(t.shards) }

// ShardIndex reports which shard owns a client ID.
func (t *Table[V]) ShardIndex(id string) int { return int(Hash(id) & t.mask) }

func (t *Table[V]) shard(id string) *shard[V] { return &t.shards[Hash(id)&t.mask] }

// Insert adds a session; it reports false (without overwriting) if the ID
// is already present.
func (t *Table[V]) Insert(id string, v V) bool {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[id]; dup {
		return false
	}
	s.m[id] = v
	return true
}

// Get looks up a session.
func (t *Table[V]) Get(id string) (V, bool) {
	s := t.shard(id)
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

// Delete removes a session, reporting whether it was present.
func (t *Table[V]) Delete(id string) bool {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return false
	}
	delete(s.m, id)
	return true
}

// DeleteIf removes a session only if cond approves the stored value,
// reporting whether a removal happened. cond runs under the owning
// shard's write lock (it must be cheap and must not call back into the
// table). The lifecycle sweep uses it to evict by pointer identity, so
// a session concurrently replaced by a handshake takeover is never
// deleted by a stale eviction decision.
func (t *Table[V]) DeleteIf(id string, cond func(V) bool) bool {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[id]
	if !ok || !cond(v) {
		return false
	}
	delete(s.m, id)
	return true
}

// Len counts sessions across all shards.
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// ShardLen counts the sessions in one shard (distribution diagnostics).
func (t *Table[V]) ShardLen(i int) int {
	s := &t.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys snapshots all client IDs. The snapshot is taken shard by shard, so
// concurrent inserts/deletes may or may not be reflected — the same
// guarantee the old single-lock iteration gave across its two lock
// sections.
func (t *Table[V]) Keys() []string {
	ids := make([]string, 0, t.Len())
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id := range s.m {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	return ids
}

// Range calls fn for every session until fn returns false. fn runs under
// the owning shard's read lock: it must not call back into the table.
func (t *Table[V]) Range(fn func(id string, v V) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id, v := range s.m {
			if !fn(id, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
