package dataplane

import (
	"sync"
	"sync/atomic"
)

// DefaultQueueDepth bounds each worker's ingress queue when the caller
// does not choose one. Bounded queues shed load like a NIC ring instead of
// buffering without limit.
const DefaultQueueDepth = 256

// DefaultWatermark is the shedding threshold matching DefaultQueueDepth:
// data frames shed once a queue is 3/4 full, reserving the last quarter
// for control-critical frames (SubmitControl).
const DefaultWatermark = DefaultQueueDepth - DefaultQueueDepth/4

// PoolStats are cumulative ingress-pool counters.
type PoolStats struct {
	Submitted uint64 // frames accepted into a worker queue
	Dropped   uint64 // frames shed because the owning worker's queue was full
	Shed      uint64 // data frames shed at the watermark (queue not yet full)
}

// job is one queued ingress frame. owner, when non-nil, is the pooled
// buffer backing frame; the worker hands it to the pool's release hook
// once the handler is done with it.
type job struct {
	clientID string
	frame    []byte
	owner    []byte
}

// Pool is the pipelined ingress stage of the server data plane: W workers,
// each draining its own bounded queue. A client is pinned to one worker by
// the shared placement hash, so frames from one client are handled in
// arrival order while different clients' frames proceed in parallel —
// replacing the single serve goroutine that processed every datagram
// sequentially.
//
// Submitted frames must be owned by the pool: callers hand over the slice
// and must not reuse its backing array. SubmitOwned extends the handoff
// with a release obligation — the pool gives the backing buffer back to
// its origin (via the SetRelease hook) as soon as the worker's handler
// returns, which is how the UDP transport recycles receive buffers
// without copying every datagram.
type Pool struct {
	workers []chan job
	handler func(clientID string, frame []byte)
	release func(owner []byte)
	onShed  func(clientID string)
	wg      sync.WaitGroup

	// watermark is the per-queue occupancy at which data submissions are
	// shed (drop-newest) even though the queue is not full — the reserved
	// headroom keeps SubmitControl frames flowing and bounds queueing
	// delay under flood. 0 disables (data sheds only when full).
	watermark int

	mu     sync.RWMutex // guards closed vs. in-flight Submits
	closed bool

	submitted atomic.Uint64
	dropped   atomic.Uint64
	shed      atomic.Uint64
}

// NewPool starts workers goroutines, each with a bounded queue of depth
// frames (<=0 selects DefaultQueueDepth), delivering into handler. workers
// <= 0 selects DefaultShards.
func NewPool(workers, depth int, handler func(clientID string, frame []byte)) *Pool {
	if workers <= 0 {
		workers = DefaultShards()
	}
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	p := &Pool{
		workers: make([]chan job, workers),
		handler: handler,
	}
	for i := range p.workers {
		ch := make(chan job, depth)
		p.workers[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range ch {
				p.handler(j.clientID, j.frame)
				if j.owner != nil && p.release != nil {
					p.release(j.owner)
				}
			}
		}()
	}
	return p
}

// SetRelease installs the hook that returns SubmitOwned buffers to their
// origin once a worker finishes with them. It must be set before the
// first SubmitOwned call and is typically wire.PutBuffer.
func (p *Pool) SetRelease(fn func(owner []byte)) {
	p.release = fn
}

// SetWatermark arms overload shedding: a data submission whose worker
// queue already holds n or more frames is shed (drop-newest) even though
// the queue is not full. The headroom above the watermark stays available
// to SubmitControl, and the queueing delay of accepted data frames is
// bounded by the watermark instead of the full depth — under flood the
// server loses throughput, not latency. Must be set before traffic;
// 0 disables (the pre-shedding behaviour: data sheds only when full).
func (p *Pool) SetWatermark(n int) {
	p.watermark = n
}

// SetOnShed installs a per-shed notification hook (e.g. the per-client
// VIFCounters.CountShed). It runs inline on the submitting goroutine.
// Must be set before traffic.
func (p *Pool) SetOnShed(fn func(clientID string)) {
	p.onShed = fn
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return len(p.workers) }

// Submit queues one frame for the worker owning clientID. It never blocks:
// if that worker's queue is full the frame is shed (counted in Stats) and
// Submit reports false. Submits after Close are refused.
func (p *Pool) Submit(clientID string, frame []byte) bool {
	return p.submit(job{clientID: clientID, frame: frame}, false)
}

// SubmitOwned queues one frame backed by a pooled buffer: on acceptance
// the pool takes ownership of owner and hands it to the release hook when
// the worker's handler returns. If SubmitOwned reports false the caller
// keeps ownership (and typically releases the buffer itself).
func (p *Pool) SubmitOwned(clientID string, frame, owner []byte) bool {
	return p.submit(job{clientID: clientID, frame: frame, owner: owner}, false)
}

// SubmitControl queues one control-critical frame, ignoring the shedding
// watermark: control is only refused when the queue is genuinely full.
// The watermark's reserved headroom exists for exactly these frames — a
// flood of data must not starve the messages that manage the fleet.
func (p *Pool) SubmitControl(clientID string, frame []byte) bool {
	return p.submit(job{clientID: clientID, frame: frame}, true)
}

// SubmitControlOwned is SubmitControl with SubmitOwned's buffer handoff:
// a control-critical frame backed by a pooled buffer. On acceptance the
// pool owns owner and releases it after the handler returns; on refusal
// (queue genuinely full) the caller keeps ownership.
func (p *Pool) SubmitControlOwned(clientID string, frame, owner []byte) bool {
	return p.submit(job{clientID: clientID, frame: frame, owner: owner}, true)
}

func (p *Pool) submit(j job, control bool) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	ch := p.workers[Hash(j.clientID)%uint32(len(p.workers))]
	if !control && p.watermark > 0 && len(ch) >= p.watermark {
		p.shed.Add(1)
		if p.onShed != nil {
			p.onShed(j.clientID)
		}
		return false
	}
	select {
	case ch <- j:
		p.submitted.Add(1)
		return true
	default:
		p.dropped.Add(1)
		if p.onShed != nil {
			p.onShed(j.clientID)
		}
		return false
	}
}

// Close stops accepting frames, drains every queue and waits for the
// workers to finish the frames already accepted.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, ch := range p.workers {
		close(ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats reads the cumulative counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Submitted: p.submitted.Load(),
		Dropped:   p.dropped.Load(),
		Shed:      p.shed.Load(),
	}
}
