package core

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/idps"
	"endbox/internal/lifecycle"
	"endbox/internal/packet"
	"endbox/internal/policy"
	"endbox/internal/sgx"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

// DeploymentOptions configures a complete EndBox deployment: IAS, CA, VPN
// server, configuration server and any number of clients — the programmatic
// equivalent of the paper's testbed. The zero value is a working encrypted
// in-process deployment.
type DeploymentOptions struct {
	// Mode is the data-channel protection (default encrypted).
	Mode wire.Mode
	// EncryptConfigs selects the enterprise-style encrypted rule
	// distribution.
	EncryptConfigs bool
	// ServerUseCase attaches a server-side Click pipeline running the
	// given use case — the OpenVPN+Click baseline. Zero means none
	// (EndBox or vanilla OpenVPN deployments).
	ServerUseCase click.UseCase
	// Clock is the shared time source (default time.Now).
	Clock func() time.Time
	// Observer watches the deployment's data path: packets accepted into
	// the managed network, packets delivered to client applications, and
	// middlebox alerts. Nil observes nothing. Packet slices handed to the
	// observer alias pooled buffers and are only valid for the duration of
	// the callback; observers that keep packets must copy.
	Observer Observer
	// Transport carries frames and control messages between the server and
	// its clients. Nil selects the in-process transport (direct calls).
	Transport Transport
	// EchoNetwork reflects delivered packets back to the sending client
	// (src/dst swapped), modelling a server answering — used by latency
	// measurements.
	EchoNetwork bool
	// RouteBetweenClients relays packets addressed to another connected
	// client's tunnel address, preserving the 0xeb flag (paper §IV-A
	// client-to-client communication).
	RouteBetweenClients bool
	// Shards is the server session-table shard count: session lookups and
	// per-client statistics contend only within a shard, so frames from
	// many clients proceed in parallel. 0 picks a count matching the CPU;
	// 1 reproduces the monolithic single-lock table (the pre-dataplane
	// baseline).
	Shards int
	// UDPWorkers pipelines the UDP server's ingress across a worker pool
	// of this size when the transport supports it (clients stay pinned to
	// one worker, preserving per-client frame ordering). 0 keeps the
	// transport's single serve goroutine.
	UDPWorkers int
	// Retransmit tunes the control-path ARQ layer when the transport
	// supports reliable delivery (the UDP transport does; the in-process
	// transport cannot lose messages and ignores it). The zero value keeps
	// the defaults with the ARQ layer on; RetransmitConfig.Disable opts
	// out. Data frames are never retransmitted.
	Retransmit RetransmitConfig
	// LossProfile injects deterministic, seeded control-path impairment
	// (drop/duplicate/reorder) when the transport supports it — the
	// loss-tolerance testing seam. The zero value impairs nothing.
	LossProfile LossProfile
	// FlowCapacity bounds every client enclave's flow table (concurrent
	// tracked flows); 0 selects the default (16384). ClientSpec can
	// override per client.
	FlowCapacity int
	// FlowTTL is the flow idle timeout; 0 selects the default (2
	// minutes). ClientSpec can override per client.
	FlowTTL time.Duration
	// SessionTTL enables liveness-driven session eviction: a client that
	// produces no authenticated frames (data or keepalive pongs) for this
	// long is evicted by the background sweep, its tunnel address and
	// session-table slot reclaimed. 0 disables eviction (the
	// pre-lifecycle behaviour: sessions live forever).
	SessionTTL time.Duration
	// SweepInterval is how often the background sweep runs when
	// SessionTTL is set (default SessionTTL/4, floor 10ms). Tests with a
	// virtual Clock disable it with a negative value and call
	// SweepSessions directly.
	SweepInterval time.Duration
	// Admission bounds the handshake/resume path: handshake rate, the
	// concurrent-handshake cost cap and a hard session bound, checked
	// before any expensive crypto. The zero value admits everything.
	Admission lifecycle.AdmissionConfig
	// TicketTTL bounds how long a resumption ticket stays valid (0 = for
	// the life of the server process; a restart always invalidates all
	// tickets because the sealing key is in-memory only).
	TicketTTL time.Duration
	// Policy is the attested-identity policy registry: named enclave
	// builds, lineage and revocation. When set, every build registered at
	// NewDeployment time is allowlisted with the CA (RegisterBuild handles
	// later ones), measurement selectors and MinBuild resolve against it,
	// and Revoke propagates live — new handshakes and resumes from the
	// revoked build are refused before any crypto, and its live sessions
	// are evicted (RevocationObserver.SessionRevoked). Nil disables
	// attested-identity policy (only the default client build may enrol).
	Policy *policy.Registry
	// SealToMeasurement opts targeted rollouts into measurement-sealed
	// update blobs: when a Rollout's selector names exactly one
	// measurement, the update is encrypted under that build's
	// CA-derived key, so no other build can open it (fail-safe: they keep
	// their last-known-good configuration).
	SealToMeasurement bool
	// FailurePolicy tunes element fault containment in every client
	// enclave. The zero value selects the deployment default: containment
	// on, fail-closed, stock trip threshold and cooldown. Set FailOpen to
	// bypass quarantined elements instead of dropping at them.
	FailurePolicy click.FailurePolicy
	// DisableContainment runs pipelines bare — an element panic unwinds
	// through the data path (the pre-containment behaviour, and the raw
	// library default). FailurePolicy is ignored when set.
	DisableContainment bool
}

// ClientSpec configures one client joining a deployment. Data-path events
// (inbound packets, alerts) are reported through the deployment's Observer.
//
// Exactly one source selects the initial middlebox configuration, in
// precedence order: Pipeline (typed, preferred), ClickConfig (raw text),
// UseCase (the five paper pipelines). All three are compiled and
// validated at AddClient time — a spec that selects nothing, names an
// unknown use case, or carries a configuration that does not build
// returns an error wrapping ErrBadPipeline instead of failing inside the
// enclave.
type ClientSpec struct {
	// Mode is the enclave execution mode. Required.
	Mode sgx.Mode
	// BurnCPU makes hardware transitions cost real CPU (benchmarks).
	BurnCPU bool
	// TransitionCost overrides the enclave transition cost.
	TransitionCost time.Duration
	// Pipeline is the typed middlebox pipeline the client boots with
	// (build with the public mbox package: mbox.Chain, mbox.Raw,
	// mbox.Stock). Takes precedence over ClickConfig and UseCase.
	Pipeline click.Pipeline
	// UseCase selects one of the five stock middlebox configurations.
	//
	// Deprecated: prefer Pipeline (mbox.Stock reproduces the use cases).
	UseCase click.UseCase
	// ClickConfig overrides UseCase with an explicit configuration.
	//
	// Deprecated: prefer Pipeline (mbox.Raw wraps verbatim text).
	ClickConfig string
	// ExtraRuleSets adds named IDPS rule sets beyond the community set.
	ExtraRuleSets map[string]string
	// Labels attach operator-defined metadata to the client, matched by
	// Deployment.Rollout selectors for targeted configuration rollouts
	// (e.g. {"site": "berlin", "ring": "canary"}).
	Labels map[string]string
	// FlagClientToClient enables the 0xeb optimisation.
	FlagClientToClient bool
	// NaiveEcalls selects the multi-ecall ablation data path.
	NaiveEcalls bool
	// FlowCapacity overrides the deployment's flow-table bound for this
	// client (0 inherits DeploymentOptions.FlowCapacity).
	FlowCapacity int
	// FlowTTL overrides the deployment's flow idle timeout for this
	// client (0 inherits DeploymentOptions.FlowTTL).
	FlowTTL time.Duration
	// BuildVersion selects the enclave image build this client runs
	// (ClientImageVersion); "" is the default build ("1.0.0"). Non-default
	// builds change the enclave measurement and must be allowlisted first
	// (Deployment.RegisterBuild), or enrolment is refused.
	BuildVersion string
}

// ErrBadPipeline is the typed error AddClient and Rollout return for
// middlebox configurations that cannot be compiled (re-exported from the
// click layer so callers need only this package).
var ErrBadPipeline = click.ErrBadPipeline

// compileConfig resolves the typed-pipeline-vs-raw-text configuration
// source shared by ClientSpec and Rollout, fully validating whichever is
// set against the process registry and the given rule sets (errors wrap
// ErrBadPipeline). Both empty returns "", nil — the caller supplies its
// own default or error.
func compileConfig(p click.Pipeline, raw string, ruleSets map[string]string) (string, error) {
	switch {
	case !p.Zero():
		return p.Compile(nil, ruleSets)
	case raw != "":
		if err := click.ValidateConfig(raw, nil, ruleSets); err != nil {
			return "", err
		}
		return raw, nil
	default:
		return "", nil
	}
}

// mergedRuleSets is the community set plus the given extras — what a
// client resolves rule-set names against.
func mergedRuleSets(extra map[string]string) map[string]string {
	ruleSets := CommunityRuleSets()
	for name, text := range extra {
		ruleSets[name] = text
	}
	return ruleSets
}

// compileSpec resolves a ClientSpec's middlebox configuration source
// (Pipeline, ClickConfig, or UseCase) and fully validates it. Errors
// wrap ErrBadPipeline.
func compileSpec(spec ClientSpec, ruleSets map[string]string) (string, error) {
	cfg, err := compileConfig(spec.Pipeline, spec.ClickConfig, ruleSets)
	if err != nil || cfg != "" {
		return cfg, err
	}
	if cfg = click.StandardConfig(spec.UseCase); cfg == "" {
		return "", fmt.Errorf("%w: ClientSpec selects no middlebox function (set Pipeline, ClickConfig or a known UseCase; got UseCase %d)",
			ErrBadPipeline, int(spec.UseCase))
	}
	return cfg, nil
}

// Deployment is a wired-up EndBox system. It is safe for concurrent use:
// any number of goroutines may add clients, push traffic and publish
// updates simultaneously.
type Deployment struct {
	IAS    *attest.IAS
	CA     *attest.CA
	Server *Server

	opts      DeploymentOptions
	transport Transport

	// admission is nil unless DeploymentOptions.Admission enables a
	// check; sweepStop stops the background eviction loop.
	admission *lifecycle.Admission
	sweepStop chan struct{}
	sweepOnce sync.Once

	// watch is the active canary observation, nil outside RolloutCanary.
	// Client nacks and health reports are fed to it by the VPN server's
	// sealed-frame hooks.
	watchMu sync.Mutex
	watch   *canaryWatch

	mu        sync.Mutex
	clients   map[string]*Client
	links     map[string]ClientLink
	labels    map[string]map[string]string // client ID -> rollout labels
	joinSeq   map[string]uint64            // client ID -> join generation (see Rollout)
	lastSeq   uint64
	addrs     map[packet.Addr]string // tunnel address -> client ID
	addrByID  map[string]packet.Addr // reverse index (O(1) ClientAddr)
	freeAddrs []packet.Addr          // released by RemoveClient, reused first
	nextIP    byte
}

// CommunityRuleSets is the default rule-set map: the generated 377-rule
// community set under the name the standard configurations reference.
func CommunityRuleSets() map[string]string {
	return map[string]string{
		"community": idps.GenerateRuleSet(idps.CommunityRuleCount, 2018),
	}
}

// NewDeployment builds the server side: IAS, CA, VPN + config servers, and
// (for the OpenVPN+Click baseline) a server-side Click instance. The
// deployment's transport is bound and ready for clients — in-process ones
// via AddClient, or remote ones connecting through a socket transport.
func NewDeployment(opts DeploymentOptions) (*Deployment, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if err := opts.Admission.Validate(); err != nil {
		return nil, err
	}
	ias, err := attest.NewIAS()
	if err != nil {
		return nil, err
	}
	ca, err := attest.NewCA(ias)
	if err != nil {
		return nil, err
	}
	// Keep the CA on the same clock as the rest of the deployment so
	// virtual-time experiments issue certificates consistently.
	ca.SetTimeSource(opts.Clock)
	// The operator approves the client enclave build once, up front; every
	// platform enrolling through the transport is checked against it.
	ca.AllowMeasurement(ClientImage(ca.PublicKey()).Measure())
	// Builds registered with the policy before the deployment existed are
	// approved too (minus already-revoked ones); RegisterBuild covers
	// builds named later.
	if opts.Policy != nil {
		for _, b := range opts.Policy.Builds() {
			if !b.Revoked {
				ca.AllowMeasurement(b.Measurement)
			}
		}
	}

	d := &Deployment{
		IAS:      ias,
		CA:       ca,
		opts:     opts,
		clients:  make(map[string]*Client),
		links:    make(map[string]ClientLink),
		labels:   make(map[string]map[string]string),
		joinSeq:  make(map[string]uint64),
		addrs:    make(map[packet.Addr]string),
		addrByID: make(map[string]packet.Addr),
		nextIP:   2, // 10.8.0.1 is the server
	}
	if opts.Admission.Enabled() {
		d.admission = lifecycle.NewAdmission(opts.Admission)
	}

	var serverClick *click.Instance
	if opts.ServerUseCase != 0 {
		inst, err := click.NewInstance(click.ServerConfig(opts.ServerUseCase), nil,
			ServerClickContext(nil))
		if err != nil {
			return nil, err
		}
		serverClick = inst
	}

	d.transport = opts.Transport
	if d.transport == nil {
		d.transport = NewInProcessTransport()
	}
	if opts.UDPWorkers > 0 {
		if wt, ok := d.transport.(WorkerTransport); ok {
			wt.SetWorkers(opts.UDPWorkers)
		}
	}
	if rt, ok := d.transport.(ReliableTransport); ok {
		rt.SetRetransmit(opts.Retransmit)
	}
	if !opts.LossProfile.Zero() {
		if lt, ok := d.transport.(LossyTransport); ok {
			lt.SetLossProfile(opts.LossProfile)
		}
	}

	srv, err := NewServer(ServerOptions{
		CA:             ca,
		Mode:           opts.Mode,
		Clock:          opts.Clock,
		EncryptConfigs: opts.EncryptConfigs,
		ServerClick:    serverClick,
		Deliver:        d.deliver,
		SendTo:         d.transport.SendToClient,
		Shards:         opts.Shards,
		SessionTTL:     opts.SessionTTL,
		TicketTTL:      opts.TicketTTL,
		OnNack:         d.onNack,
		OnHealth:       d.onHealth,
		Policy:         opts.Policy,
	})
	if err != nil {
		return nil, err
	}
	d.Server = srv

	// Revocation propagates live: the CA stops certifying the build, the
	// VPN server refuses its handshakes (via the policy gate wired above)
	// and its established sessions are evicted. Subscribed after the
	// server exists so the callback can reach the session table.
	if opts.Policy != nil {
		opts.Policy.OnRevoke(d.revokeBuild)
	}

	if err := d.transport.BindServer(d); err != nil {
		return nil, err
	}
	if opts.SessionTTL > 0 && opts.SweepInterval >= 0 {
		interval := opts.SweepInterval
		if interval == 0 {
			interval = opts.SessionTTL / 4
		}
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		d.sweepStop = make(chan struct{})
		go d.sweepLoop(interval)
	}
	return d, nil
}

// sweepLoop periodically evicts idle sessions until the deployment closes.
// The ticker runs on wall time; the liveness decision itself reads the
// deployment Clock, so virtual-time tests call SweepSessions directly
// (with SweepInterval < 0 to suppress this loop).
func (d *Deployment) sweepLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.sweepStop:
			return
		case <-t.C:
			d.SweepSessions()
		}
	}
}

// SweepSessions advances the liveness wheel once, evicting every session
// whose TTL lapsed and reclaiming its deployment state: tunnel address
// (returned to the free list for reuse), transport link, rollout labels
// and — for in-process clients — the enclave. It returns the evicted
// client IDs. The background sweep calls this on a timer; tests with a
// virtual clock call it directly.
func (d *Deployment) SweepSessions() []string {
	evicted := d.Server.VPN().SweepExpired()
	for _, id := range evicted {
		d.reclaim(id)
		if lo, ok := d.observe().(LifecycleObserver); ok {
			lo.SessionEvicted(id)
		}
	}
	return evicted
}

// revokeBuild propagates one build revocation (the policy registry's
// OnRevoke callback): the CA stops certifying the measurement, and every
// live session running the build is evicted and its deployment state
// reclaimed. New handshakes and resumes are refused by the policy gate
// wired into the VPN server. Runs on the Revoke caller's goroutine,
// outside the registry lock.
func (d *Deployment) revokeBuild(b policy.Build) {
	d.CA.RevokeMeasurement(b.Measurement)
	for _, id := range d.Server.VPN().EvictRevoked(b.Measurement) {
		d.reclaim(id)
		if ro, ok := d.observe().(RevocationObserver); ok {
			ro.SessionRevoked(id, b.Name)
		}
	}
}

// RegisterBuild names a client build in the policy registry and approves
// its measurement with the CA, returning the measurement — the one call
// that turns a ClientSpec.BuildVersion into an enrollable, targetable,
// revocable identity. buildVersion "" names the default build.
func (d *Deployment) RegisterBuild(name, buildVersion string) (sgx.Measurement, error) {
	if d.opts.Policy == nil {
		return sgx.Measurement{}, fmt.Errorf("core: deployment has no policy registry (set DeploymentOptions.Policy)")
	}
	m := ClientImageVersion(d.CA.PublicKey(), buildVersion).Measure()
	if err := d.opts.Policy.Register(name, m); err != nil {
		return sgx.Measurement{}, err
	}
	d.CA.AllowMeasurement(m)
	return m, nil
}

// RevokeBuild revokes a named build: new handshakes and resumes from it
// are refused before any crypto, its live sessions are evicted
// (RevocationObserver.SessionRevoked fires per session), and the CA stops
// certifying it. Shorthand for Policy().Revoke(name).
func (d *Deployment) RevokeBuild(name string) error {
	if d.opts.Policy == nil {
		return fmt.Errorf("core: deployment has no policy registry (set DeploymentOptions.Policy)")
	}
	return d.opts.Policy.Revoke(name)
}

// Policy returns the deployment's attested-identity policy registry (nil
// when the deployment was built without one).
func (d *Deployment) Policy() *policy.Registry { return d.opts.Policy }

// reclaim releases the deployment-side state of a session the VPN layer
// already evicted. Unlike RemoveClient it must not touch the VPN session
// table: the slot may already be owned by a successor (takeover).
func (d *Deployment) reclaim(id string) {
	d.mu.Lock()
	cli := d.clients[id]
	link := d.links[id]
	delete(d.clients, id)
	delete(d.links, id)
	delete(d.labels, id)
	delete(d.joinSeq, id)
	if addr, ok := d.addrByID[id]; ok {
		delete(d.addrs, addr)
		delete(d.addrByID, id)
		d.freeAddrs = append(d.freeAddrs, addr)
	}
	d.mu.Unlock()
	d.Server.VPN().Policy().ForgetClient(id)
	if link != nil {
		link.Close()
	}
	if cli != nil {
		cli.Close()
	}
}

// Transport returns the transport carrying this deployment's traffic.
func (d *Deployment) Transport() Transport { return d.transport }

// noopObserver is the shared do-nothing observer, boxed once so the
// per-packet deliver path never re-allocates the interface value.
var noopObserver Observer = ObserverFuncs{}

// observer returns the configured observer or a no-op.
func (d *Deployment) observe() Observer {
	if d.opts.Observer != nil {
		return d.opts.Observer
	}
	return noopObserver
}

// failurePolicy resolves the containment policy every client enclave
// boots with. Unlike the raw library (whose zero value is inert), a
// deployment contains element panics by default: a managed fleet should
// degrade one element, not crash a client's data path.
func (d *Deployment) failurePolicy() click.FailurePolicy {
	if d.opts.DisableContainment {
		return click.FailurePolicy{}
	}
	p := d.opts.FailurePolicy
	p.Contain = true
	return p
}

// onNack routes a client's sealed configuration rejection to the active
// canary watch (if any).
func (d *Deployment) onNack(clientID string, n vpn.Nack) {
	d.watchMu.Lock()
	w := d.watch
	d.watchMu.Unlock()
	if w != nil {
		w.onNack(clientID, n)
	}
}

// onHealth routes a client's sealed health report to the active canary
// watch (if any).
func (d *Deployment) onHealth(clientID string, h vpn.HealthReport) {
	d.watchMu.Lock()
	w := d.watch
	d.watchMu.Unlock()
	if w != nil {
		w.onHealth(clientID, h)
	}
}

// RegisterPlatform implements ServerEndpoint: record the platform key with
// the IAS and hand back the CA public key (paper Fig. 4 step 0: in real
// deployments the CA key ships inside the enclave image).
func (d *Deployment) RegisterPlatform(platformID string, key ed25519.PublicKey) (ed25519.PublicKey, error) {
	if platformID == "" || len(key) == 0 {
		return nil, fmt.Errorf("core: platform registration requires an ID and key")
	}
	d.IAS.RegisterPlatformKey(platformID, key)
	return d.CA.PublicKey(), nil
}

// Enroll implements ServerEndpoint.
func (d *Deployment) Enroll(q attest.Quote) (*attest.Provision, error) {
	return d.CA.Enroll(q)
}

// admit runs the admission gate (when configured) before the expensive
// handshake crypto. It returns the release for the concurrency slot; the
// caller must invoke it when the handshake finishes either way.
func (d *Deployment) admit(clientID string) (func(), error) {
	if d.admission == nil {
		return func() {}, nil
	}
	done, err := d.admission.Begin(d.Server.VPN().ClientCount(), d.opts.Clock().UnixNano())
	if err != nil {
		if lo, ok := d.observe().(LifecycleObserver); ok {
			lo.AdmissionRefused(clientID, err)
		}
		return nil, err
	}
	return done, nil
}

// AcceptHello implements ServerEndpoint. The revocation and admission
// gates run first: a revoked build or a throttled/full server refuses
// here, before certificate verification, ECDH and ticket sealing burn any
// CPU (and before a revoked build can burn an admission token).
func (d *Deployment) AcceptHello(h *vpn.ClientHello) (*vpn.ServerHello, error) {
	if d.opts.Policy != nil && h != nil && h.Cert != nil {
		if err := d.opts.Policy.CheckMeasurement(h.Cert.Measurement); err != nil {
			return nil, err
		}
	}
	done, err := d.admit(h.ClientID)
	if err != nil {
		return nil, err
	}
	defer done()
	return d.Server.VPN().Accept(h)
}

// AcceptResume implements ServerEndpoint: the fast-resume path. It
// shares the admission gate with AcceptHello — resumes are cheap but not
// free, and a replayed-ticket storm must not bypass the rate limit.
func (d *Deployment) AcceptResume(r *vpn.ResumeRequest) (*vpn.ResumeReply, error) {
	done, err := d.admit(r.ClientID)
	if err != nil {
		return nil, err
	}
	defer done()
	reply, err := d.Server.VPN().Resume(r)
	if err != nil {
		return nil, err
	}
	if lo, ok := d.observe().(LifecycleObserver); ok {
		lo.SessionResumed(r.ClientID)
	}
	return reply, nil
}

// HandleFrame implements ServerEndpoint.
func (d *Deployment) HandleFrame(clientID string, frame []byte) error {
	return d.Server.VPN().HandleFrame(clientID, frame)
}

// FrameShed implements the transport's optional shed-accounting hook:
// a frame discarded by ingress overload shedding is recorded against the
// client's virtual interface (VIFStats.Shed).
func (d *Deployment) FrameShed(clientID string) {
	d.Server.VPN().CountShed(clientID)
}

// FetchConfig implements ServerEndpoint. Version 0 resolves to the
// latest globally published version — not the store's absolute latest,
// which a targeted rollout may have advanced past the fleet-wide
// configuration. Booting an untargeted client into a canary-only
// version would get all its traffic rejected as stale, so a deployment
// that has only ever published targeted rollouts deliberately fails the
// boot fetch (ErrNotFound) until a global configuration exists.
func (d *Deployment) FetchConfig(version uint64) ([]byte, error) {
	if version == 0 {
		version = d.Server.LatestGlobal()
	}
	return d.Server.Configs().Fetch(version)
}

// deliver routes packets accepted into the managed network: observer hook,
// optional echo, optional client-to-client relay.
func (d *Deployment) deliver(clientID string, ip []byte) {
	d.observe().PacketDelivered(clientID, ip)
	var p packet.IPv4
	if err := p.Parse(ip); err != nil {
		return
	}
	if d.opts.RouteBetweenClients {
		d.mu.Lock()
		dstID, ok := d.addrs[p.Dst]
		d.mu.Unlock()
		if ok && dstID != clientID {
			// Relay between EndBox clients: the 0xeb flag survives so the
			// receiver can skip re-processing.
			_ = d.Server.VPN().SendTo(dstID, ip, true)
			return
		}
	}
	if d.opts.EchoNetwork {
		echo := p.Clone()
		echo.Src, echo.Dst = p.Dst, p.Src
		if echo.Protocol == packet.ProtoICMP {
			if icmp, err := packet.ParseICMP(echo.Payload); err == nil && icmp.Type == packet.ICMPEchoRequest {
				icmp.Type = packet.ICMPEchoReply
				echo.Payload = icmp.Marshal()
			}
		}
		_ = d.Server.VPN().SendTo(clientID, echo.Marshal(), false)
	}
}

// AddClient creates, attests, enrols and connects a client through the
// deployment's transport. The returned client is ready to send traffic.
// The context bounds the whole join sequence (attestation, enrolment,
// handshake); it is safe to call from concurrent goroutines.
func (d *Deployment) AddClient(ctx context.Context, id string, spec ClientSpec) (*Client, error) {
	d.mu.Lock()
	_, dup := d.clients[id]
	d.mu.Unlock()
	if dup {
		// A crashed-and-rebooted client reconnects under its old ID. If
		// the old session's liveness lapsed, reclaim it and let the fresh
		// join take the slot over; a still-live duplicate is refused — the
		// VPN handshake would reject it anyway, and failing here keeps the
		// error identical across transports and avoids the attestation
		// work.
		if !d.Server.VPN().SessionExpired(id) {
			return nil, fmt.Errorf("core: client %q already connected", id)
		}
		d.RemoveClient(id)
	}
	link, err := d.transport.Link(ctx, id)
	if err != nil {
		return nil, err
	}
	cli, err := d.buildClient(ctx, link, id, spec)
	if err != nil {
		link.Close()
		return nil, err
	}
	if bl, ok := link.(BatchClientLink); ok {
		// Burst-capable links hand over several queued frames at once so
		// they cross the client's enclave boundary in a single ecall.
		bl.SetDeliverBatch(func(frames [][]byte) error {
			_, err := cli.HandleFrames(frames)
			return err
		})
	} else {
		link.SetDeliver(cli.HandleFrame)
	}
	if err := cli.Connect(ctx, func(h *vpn.ClientHello) (*vpn.ServerHello, error) {
		return link.Hello(ctx, h)
	}); err != nil {
		cli.Close()
		link.Close()
		return nil, err
	}

	d.mu.Lock()
	addr, ok := d.allocAddrLocked()
	if !ok {
		d.mu.Unlock()
		d.Server.VPN().Disconnect(id)
		cli.Close()
		link.Close()
		return nil, fmt.Errorf("core: tunnel address space exhausted (10.8.0.0/24)")
	}
	d.clients[id] = cli
	d.links[id] = link
	d.lastSeq++
	d.joinSeq[id] = d.lastSeq
	if len(spec.Labels) > 0 {
		labels := make(map[string]string, len(spec.Labels))
		for k, v := range spec.Labels {
			labels[k] = v
		}
		d.labels[id] = labels
	}
	d.addrs[addr] = id
	d.addrByID[id] = addr
	d.mu.Unlock()
	return cli, nil
}

// allocAddrLocked hands out the next tunnel address, reusing addresses
// released by RemoveClient before growing. Callers hold d.mu.
func (d *Deployment) allocAddrLocked() (packet.Addr, bool) {
	if n := len(d.freeAddrs); n > 0 {
		addr := d.freeAddrs[n-1]
		d.freeAddrs = d.freeAddrs[:n-1]
		return addr, true
	}
	if d.nextIP == 255 { // 10.8.0.1 is the server; .255 is broadcast
		return packet.Addr{}, false
	}
	addr := packet.AddrFrom(10, 8, 0, d.nextIP)
	d.nextIP++
	return addr, true
}

// controlSend selects the link's control-class send path when the
// transport distinguishes delivery classes (ControlLink), so pings, nacks
// and health reports bypass the server's overload-shedding watermark. Nil
// otherwise — the client falls back to its data send.
func controlSend(link ClientLink) func(frame []byte) error {
	if cl, ok := link.(ControlLink); ok {
		return cl.SendControlFrame
	}
	return nil
}

// buildClient performs everything except the VPN handshake.
func (d *Deployment) buildClient(ctx context.Context, link ClientLink, id string, spec ClientSpec) (*Client, error) {
	ruleSets := mergedRuleSets(spec.ExtraRuleSets)
	// Compile and validate the middlebox configuration before any enclave
	// or attestation work: a bad pipeline fails here with a typed error
	// instead of deep inside ecallInitClick.
	cfg, err := compileSpec(spec, ruleSets)
	if err != nil {
		return nil, err
	}

	cpu := sgx.NewCPU("client-cpu-" + id)
	qe, err := attest.NewQuotingEnclave(cpu, "platform-"+id)
	if err != nil {
		return nil, err
	}
	caPub, err := link.Register(ctx, qe.PlatformID(), qe.VerificationKey())
	if err != nil {
		return nil, err
	}

	flowCapacity := spec.FlowCapacity
	if flowCapacity == 0 {
		flowCapacity = d.opts.FlowCapacity
	}
	flowTTL := spec.FlowTTL
	if flowTTL == 0 {
		flowTTL = d.opts.FlowTTL
	}

	obs := d.observe()
	return NewClient(ClientOptions{
		ID:             id,
		CPU:            cpu,
		Mode:           spec.Mode,
		BurnCPU:        spec.BurnCPU,
		TransitionCost: spec.TransitionCost,
		CAPub:          caPub,
		BuildVersion:   spec.BuildVersion,
		QE:             qe,
		Enroll: func(q attest.Quote) (*attest.Provision, error) {
			return link.Enroll(ctx, q)
		},
		ClickConfig:        cfg,
		RuleSets:           ruleSets,
		WireMode:           d.opts.Mode,
		FlagClientToClient: spec.FlagClientToClient,
		BatchEcalls:        !spec.NaiveEcalls,
		FlowCapacity:       flowCapacity,
		FlowTTL:            flowTTL,
		FetchConfig: func(version uint64) ([]byte, error) {
			return link.FetchConfig(context.Background(), version)
		},
		Send:          link.SendFrame,
		SendControl:   controlSend(link),
		Deliver:       func(ip []byte) { obs.PacketReceived(id, ip) },
		OnAlert:       func(a click.Alert) { obs.Alert(id, a) },
		FailurePolicy: d.failurePolicy(),
		OnElementFault: func(f click.ElementFault) {
			if fo, ok := obs.(FaultObserver); ok {
				fo.OnElementFault(id, f)
			}
		},
		OnUpdateFailed: func(version uint64, err error) {
			if fo, ok := obs.(FaultObserver); ok {
				fo.OnUpdateFailed(id, version, err)
			}
		},
		Clock: d.opts.Clock,
	})
}

// ResumeState is everything a client needs to re-establish its session
// without repeating attestation, enrolment or the full handshake: the
// enclave-sealed identity and session secret, the server's opaque
// resumption ticket, the applied configuration version, and the tunnel
// address to reclaim. The two sealed blobs are useless off the client's
// own (virtual) CPU; the ticket is useless without the attested signing
// key. Snapshot it with Deployment.ResumeState before a planned restart,
// or persist it the way cmd/endbox-client does.
type ResumeState struct {
	ClientID string
	Addr     packet.Addr
	Version  uint64
	// LKG is the last-known-good configuration version — the client's
	// local rollback point, preserved across the restart so a bad update
	// applied right after resuming can still be self-reverted.
	LKG            uint64
	SealedIdentity []byte
	Secret         []byte
	Ticket         []byte
}

// ResumeState snapshots a connected client's resumption state.
func (d *Deployment) ResumeState(id string) (ResumeState, error) {
	d.mu.Lock()
	cli := d.clients[id]
	addr := d.addrByID[id]
	d.mu.Unlock()
	if cli == nil {
		return ResumeState{}, fmt.Errorf("core: client %q not connected", id)
	}
	secret, err := cli.ResumeSecret()
	if err != nil {
		return ResumeState{}, err
	}
	return ResumeState{
		ClientID:       id,
		Addr:           addr,
		Version:        cli.AppliedVersion(),
		LKG:            cli.LKGVersion(),
		SealedIdentity: cli.SealedIdentity(),
		Secret:         secret,
		Ticket:         cli.Ticket(),
	}, nil
}

// ResumeClient re-establishes a client from a ResumeState snapshot: the
// enclave is rebuilt from the sealed identity (no attestation, no
// enrolment round trips), the session from the resumption ticket (no
// certificate walk, no ECDH), and the previous tunnel address is
// reclaimed when still free. Any lingering local incarnation of the
// client is replaced — the ticket plus a signature under the attested
// key is proof the same principal is reclaiming its slot.
func (d *Deployment) ResumeClient(ctx context.Context, state ResumeState, spec ClientSpec) (*Client, error) {
	id := state.ClientID
	if id == "" || len(state.SealedIdentity) == 0 || len(state.Secret) == 0 || len(state.Ticket) == 0 {
		return nil, fmt.Errorf("core: incomplete resume state for client %q", id)
	}
	d.mu.Lock()
	_, dup := d.clients[id]
	d.mu.Unlock()
	if dup {
		d.RemoveClient(id)
	}
	link, err := d.transport.Link(ctx, id)
	if err != nil {
		return nil, err
	}
	rl, ok := link.(ResumeLink)
	if !ok {
		link.Close()
		return nil, fmt.Errorf("core: transport cannot resume client %q (no ResumeLink); use AddClient", id)
	}
	cli, err := d.buildResumedClient(ctx, link, id, spec, state)
	if err != nil {
		link.Close()
		return nil, err
	}
	if bl, ok := link.(BatchClientLink); ok {
		bl.SetDeliverBatch(func(frames [][]byte) error {
			_, err := cli.HandleFrames(frames)
			return err
		})
	} else {
		link.SetDeliver(cli.HandleFrame)
	}
	if err := cli.Resume(ctx, state.Secret, state.Ticket, func(r *vpn.ResumeRequest) (*vpn.ResumeReply, error) {
		return rl.Resume(ctx, r)
	}); err != nil {
		cli.Close()
		link.Close()
		return nil, err
	}

	d.mu.Lock()
	addr, ok := d.takeAddrLocked(state.Addr)
	if !ok {
		d.mu.Unlock()
		d.Server.VPN().Disconnect(id)
		cli.Close()
		link.Close()
		return nil, fmt.Errorf("core: tunnel address space exhausted (10.8.0.0/24)")
	}
	d.clients[id] = cli
	d.links[id] = link
	d.lastSeq++
	d.joinSeq[id] = d.lastSeq
	if len(spec.Labels) > 0 {
		labels := make(map[string]string, len(spec.Labels))
		for k, v := range spec.Labels {
			labels[k] = v
		}
		d.labels[id] = labels
	}
	d.addrs[addr] = id
	d.addrByID[id] = addr
	d.mu.Unlock()
	return cli, nil
}

// takeAddrLocked reclaims the session's previous tunnel address when it
// sits on the free list (same VIF across resume, the common case) and
// falls back to a fresh allocation. It never hands out an address the
// allocator has not released: an arbitrary prev could collide with
// nextIP's future allocations. Callers hold d.mu.
func (d *Deployment) takeAddrLocked(prev packet.Addr) (packet.Addr, bool) {
	if prev != (packet.Addr{}) {
		for i, a := range d.freeAddrs {
			if a == prev {
				d.freeAddrs = append(d.freeAddrs[:i], d.freeAddrs[i+1:]...)
				return a, true
			}
		}
	}
	return d.allocAddrLocked()
}

// buildResumedClient rebuilds a client's enclave from its sealed
// identity: everything buildClient does except the attestation and
// enrolment round trips (Register, Quote, Enroll), which the sealed
// identity replaces.
func (d *Deployment) buildResumedClient(ctx context.Context, link ClientLink, id string, spec ClientSpec, state ResumeState) (*Client, error) {
	ruleSets := mergedRuleSets(spec.ExtraRuleSets)
	cfg, err := compileSpec(spec, ruleSets)
	if err != nil {
		return nil, err
	}
	flowCapacity := spec.FlowCapacity
	if flowCapacity == 0 {
		flowCapacity = d.opts.FlowCapacity
	}
	flowTTL := spec.FlowTTL
	if flowTTL == 0 {
		flowTTL = d.opts.FlowTTL
	}
	obs := d.observe()
	return NewClient(ClientOptions{
		ID: id,
		// The same seed rebuilds the same virtual CPU, so the sealed
		// blobs unseal — the simulation's equivalent of restarting on the
		// same physical machine.
		CPU:                sgx.NewCPU("client-cpu-" + id),
		Mode:               spec.Mode,
		BurnCPU:            spec.BurnCPU,
		TransitionCost:     spec.TransitionCost,
		CAPub:              d.CA.PublicKey(),
		BuildVersion:       spec.BuildVersion,
		SealedIdentity:     state.SealedIdentity,
		ClickConfig:        cfg,
		RuleSets:           ruleSets,
		ConfigVersion:      state.Version,
		WireMode:           d.opts.Mode,
		FlagClientToClient: spec.FlagClientToClient,
		BatchEcalls:        !spec.NaiveEcalls,
		FlowCapacity:       flowCapacity,
		FlowTTL:            flowTTL,
		FetchConfig: func(version uint64) ([]byte, error) {
			return link.FetchConfig(context.Background(), version)
		},
		Send:          link.SendFrame,
		SendControl:   controlSend(link),
		Deliver:       func(ip []byte) { obs.PacketReceived(id, ip) },
		OnAlert:       func(a click.Alert) { obs.Alert(id, a) },
		FailurePolicy: d.failurePolicy(),
		LKGVersion:    state.LKG,
		OnElementFault: func(f click.ElementFault) {
			if fo, ok := obs.(FaultObserver); ok {
				fo.OnElementFault(id, f)
			}
		},
		OnUpdateFailed: func(version uint64, err error) {
			if fo, ok := obs.(FaultObserver); ok {
				fo.OnUpdateFailed(id, version, err)
			}
		},
		Clock: d.opts.Clock,
	})
}

// LifecycleStats snapshots the deployment's session lifecycle counters:
// active/tracked sessions, evictions, resumes, takeovers, revocations,
// per-build session counts, and the admission gate's
// admitted/throttled/refused tallies.
func (d *Deployment) LifecycleStats() lifecycle.Stats {
	st := lifecycle.Stats{Sessions: d.Server.VPN().SessionStats()}
	if counts := d.Server.VPN().SessionsByMeasurement(); len(counts) > 0 {
		byBuild := make(map[string]int, len(counts))
		for m, n := range counts {
			if m.IsZero() {
				continue // pre-policy sessions carry no measurement
			}
			name := m.String()
			if d.opts.Policy != nil {
				name = d.opts.Policy.NameOf(m)
			}
			byBuild[name] = n
		}
		if len(byBuild) > 0 {
			st.Sessions.ByBuild = byBuild
		}
	}
	if d.admission != nil {
		st.Admission = d.admission.Stats()
	}
	return st
}

// ClientStats returns a connected client's virtual-interface counters,
// read from the sharded session table's shard-local atomics.
func (d *Deployment) ClientStats(id string) (vpn.VIFStats, error) {
	return d.Server.VPN().Stats(id)
}

// AggregateStats sums virtual-interface counters over all connected
// clients (the paper's §V-E aggregate-throughput view).
func (d *Deployment) AggregateStats() vpn.VIFStats {
	return d.Server.VPN().AggregateStats()
}

// ClientAddr returns the tunnel address of a connected client.
func (d *Deployment) ClientAddr(id string) (packet.Addr, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	addr, ok := d.addrByID[id]
	return addr, ok
}

// Client returns a connected client by ID.
func (d *Deployment) Client(id string) (*Client, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[id]
	return c, ok
}

// RemoveClient disconnects one client, releasing its session, link, tunnel
// address and enclave.
func (d *Deployment) RemoveClient(id string) {
	d.Server.VPN().Disconnect(id)
	d.reclaim(id)
}

// Close destroys all client enclaves and the transport.
func (d *Deployment) Close() {
	if d.sweepStop != nil {
		d.sweepOnce.Do(func() { close(d.sweepStop) })
	}
	d.mu.Lock()
	clients := d.clients
	links := d.links
	d.clients = make(map[string]*Client)
	d.links = make(map[string]ClientLink)
	d.labels = make(map[string]map[string]string)
	d.joinSeq = make(map[string]uint64)
	d.addrs = make(map[packet.Addr]string)
	d.addrByID = make(map[string]packet.Addr)
	d.freeAddrs = nil
	d.nextIP = 2
	d.mu.Unlock()
	for _, l := range links {
		l.Close()
	}
	for id, c := range clients {
		d.Server.VPN().Policy().ForgetClient(id)
		c.Close()
	}
	d.transport.Close()
}
