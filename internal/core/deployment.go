package core

import (
	"fmt"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/wire"
)

// DeploymentOptions configures a complete in-process EndBox deployment:
// IAS, CA, VPN server, configuration server and any number of clients —
// the programmatic equivalent of the paper's testbed.
type DeploymentOptions struct {
	// Mode is the data-channel protection (default encrypted).
	Mode wire.Mode
	// EncryptConfigs selects the enterprise-style encrypted rule
	// distribution.
	EncryptConfigs bool
	// ServerUseCase attaches a server-side Click pipeline running the
	// given use case — the OpenVPN+Click baseline. Zero means none
	// (EndBox or vanilla OpenVPN deployments).
	ServerUseCase click.UseCase
	// Clock is the shared time source (default time.Now).
	Clock func() time.Time
	// OnDeliver observes packets accepted into the managed network.
	OnDeliver func(clientID string, ip []byte)
	// EchoNetwork reflects delivered packets back to the sending client
	// (src/dst swapped), modelling a server answering — used by latency
	// measurements.
	EchoNetwork bool
	// RouteBetweenClients relays packets addressed to another connected
	// client's tunnel address, preserving the 0xeb flag (paper §IV-A
	// client-to-client communication).
	RouteBetweenClients bool
}

// ClientSpec configures one client joining a deployment.
type ClientSpec struct {
	// Mode is the enclave execution mode. Required.
	Mode sgx.Mode
	// BurnCPU makes hardware transitions cost real CPU (benchmarks).
	BurnCPU bool
	// TransitionCost overrides the enclave transition cost.
	TransitionCost time.Duration
	// UseCase selects the initial middlebox configuration (default NOP).
	UseCase click.UseCase
	// ClickConfig overrides UseCase with an explicit configuration.
	ClickConfig string
	// ExtraRuleSets adds named IDPS rule sets beyond the community set.
	ExtraRuleSets map[string]string
	// FlagClientToClient enables the 0xeb optimisation.
	FlagClientToClient bool
	// NaiveEcalls selects the multi-ecall ablation data path.
	NaiveEcalls bool
	// Deliver receives inbound packets on the client (applications).
	Deliver func(ip []byte)
	// OnAlert receives middlebox alerts.
	OnAlert func(click.Alert)
}

// Deployment is a wired-up EndBox system. Not safe for concurrent use; the
// evaluation drives it from a single goroutine like the paper's
// single-threaded OpenVPN processes.
type Deployment struct {
	IAS    *attest.IAS
	CA     *attest.CA
	Server *Server

	opts DeploymentOptions

	mu      sync.Mutex
	clients map[string]*Client
	addrs   map[packet.Addr]string
	nextIP  byte
}

// CommunityRuleSets is the default rule-set map: the generated 377-rule
// community set under the name the standard configurations reference.
func CommunityRuleSets() map[string]string {
	return map[string]string{
		"community": idps.GenerateRuleSet(idps.CommunityRuleCount, 2018),
	}
}

// NewDeployment builds the server side: IAS, CA, VPN + config servers, and
// (for the OpenVPN+Click baseline) a server-side Click instance.
func NewDeployment(opts DeploymentOptions) (*Deployment, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	ias, err := attest.NewIAS()
	if err != nil {
		return nil, err
	}
	ca, err := attest.NewCA(ias)
	if err != nil {
		return nil, err
	}
	// Keep the CA on the same clock as the rest of the deployment so
	// virtual-time experiments issue certificates consistently.
	ca.SetTimeSource(opts.Clock)

	d := &Deployment{
		IAS:     ias,
		CA:      ca,
		opts:    opts,
		clients: make(map[string]*Client),
		addrs:   make(map[packet.Addr]string),
		nextIP:  2, // 10.8.0.1 is the server
	}

	var serverClick *click.Instance
	if opts.ServerUseCase != 0 {
		inst, err := click.NewInstance(click.ServerConfig(opts.ServerUseCase), nil,
			ServerClickContext(nil))
		if err != nil {
			return nil, err
		}
		serverClick = inst
	}

	srv, err := NewServer(ServerOptions{
		CA:             ca,
		Mode:           opts.Mode,
		Clock:          opts.Clock,
		EncryptConfigs: opts.EncryptConfigs,
		ServerClick:    serverClick,
		Deliver:        d.deliver,
		SendTo:         d.sendToClient,
	})
	if err != nil {
		return nil, err
	}
	d.Server = srv
	return d, nil
}

// deliver routes packets accepted into the managed network: observation
// hook, optional echo, optional client-to-client relay.
func (d *Deployment) deliver(clientID string, ip []byte) {
	if d.opts.OnDeliver != nil {
		d.opts.OnDeliver(clientID, ip)
	}
	var p packet.IPv4
	if err := p.Parse(ip); err != nil {
		return
	}
	if d.opts.RouteBetweenClients {
		d.mu.Lock()
		dstID, ok := d.addrs[p.Dst]
		d.mu.Unlock()
		if ok && dstID != clientID {
			// Relay between EndBox clients: the 0xeb flag survives so the
			// receiver can skip re-processing.
			_ = d.Server.VPN().SendTo(dstID, ip, true)
			return
		}
	}
	if d.opts.EchoNetwork {
		echo := p.Clone()
		echo.Src, echo.Dst = p.Dst, p.Src
		if echo.Protocol == packet.ProtoICMP {
			if icmp, err := packet.ParseICMP(echo.Payload); err == nil && icmp.Type == packet.ICMPEchoRequest {
				icmp.Type = packet.ICMPEchoReply
				echo.Payload = icmp.Marshal()
			}
		}
		_ = d.Server.VPN().SendTo(clientID, echo.Marshal(), false)
	}
}

// sendToClient is the server->client transport (in-process direct call).
func (d *Deployment) sendToClient(clientID string, frame []byte) error {
	d.mu.Lock()
	cli, ok := d.clients[clientID]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no transport to client %q", clientID)
	}
	return cli.HandleFrame(frame)
}

// AddClient creates, attests, enrols and connects a client. The returned
// client is ready to send traffic.
func (d *Deployment) AddClient(id string, spec ClientSpec) (*Client, error) {
	cli, err := d.buildClient(id, spec)
	if err != nil {
		return nil, err
	}
	if err := cli.Connect(d.Server.VPN().Accept); err != nil {
		cli.Close()
		return nil, err
	}
	d.mu.Lock()
	d.clients[id] = cli
	addr := packet.AddrFrom(10, 8, 0, d.nextIP)
	d.nextIP++
	d.addrs[addr] = id
	d.mu.Unlock()
	return cli, nil
}

// buildClient performs everything except the VPN handshake.
func (d *Deployment) buildClient(id string, spec ClientSpec) (*Client, error) {
	if spec.UseCase == 0 && spec.ClickConfig == "" {
		spec.UseCase = click.UseCaseNOP
	}
	cfg := spec.ClickConfig
	if cfg == "" {
		cfg = click.StandardConfig(spec.UseCase)
	}

	cpu := sgx.NewCPU("client-cpu-" + id)
	qe, err := attest.NewQuotingEnclave(cpu, "platform-"+id)
	if err != nil {
		return nil, err
	}
	d.IAS.RegisterPlatform(qe)
	d.CA.AllowMeasurement(ClientImage(d.CA.PublicKey()).Measure())

	ruleSets := CommunityRuleSets()
	for name, text := range spec.ExtraRuleSets {
		ruleSets[name] = text
	}

	return NewClient(ClientOptions{
		ID:                 id,
		CPU:                cpu,
		Mode:               spec.Mode,
		BurnCPU:            spec.BurnCPU,
		TransitionCost:     spec.TransitionCost,
		CAPub:              d.CA.PublicKey(),
		QE:                 qe,
		Enroll:             d.CA.Enroll,
		ClickConfig:        cfg,
		RuleSets:           ruleSets,
		WireMode:           d.opts.Mode,
		FlagClientToClient: spec.FlagClientToClient,
		BatchEcalls:        !spec.NaiveEcalls,
		FetchConfig:        d.Server.Configs().Fetch,
		Send: func(frame []byte) error {
			return d.Server.VPN().HandleFrame(id, frame)
		},
		Deliver: spec.Deliver,
		OnAlert: spec.OnAlert,
		Clock:   d.opts.Clock,
	})
}

// ClientAddr returns the tunnel address of a connected client.
func (d *Deployment) ClientAddr(id string) (packet.Addr, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for addr, cid := range d.addrs {
		if cid == id {
			return addr, true
		}
	}
	return packet.Addr{}, false
}

// Client returns a connected client by ID.
func (d *Deployment) Client(id string) (*Client, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[id]
	return c, ok
}

// Close destroys all client enclaves.
func (d *Deployment) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.clients {
		c.Close()
	}
	d.clients = make(map[string]*Client)
}
