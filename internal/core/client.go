package core

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/flow"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/tlstap"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

// ClientOptions configures an EndBox client.
type ClientOptions struct {
	// ID identifies the client to the VPN server. Required.
	ID string
	// CPU is the client machine's SGX processor. Required.
	CPU *sgx.CPU
	// Mode selects enclave execution: sgx.ModeSimulation ("EndBox SIM") or
	// sgx.ModeHardware ("EndBox SGX"). Required.
	Mode sgx.Mode
	// BurnCPU makes hardware-mode enclave transitions consume real CPU
	// time so wall-clock benchmarks observe SGX overhead.
	BurnCPU bool
	// TransitionCost overrides the per-transition cost (0 = default).
	TransitionCost time.Duration
	// CAPub is the CA public key baked into the enclave image. Required.
	CAPub ed25519.PublicKey
	// BuildVersion selects the enclave image build the client runs
	// (ClientImageVersion); the empty string is the default build. The
	// version changes the enclave measurement, so a build must be
	// allowlisted (policy registry / CA) before its clients can enrol.
	BuildVersion string
	// QE is the local platform's Quoting Enclave. Required unless
	// SealedIdentity is provided.
	QE *attest.QuotingEnclave
	// Enroll submits a quote to the remote CA (paper Fig. 4 steps 3-6).
	// Required unless SealedIdentity is provided.
	Enroll func(attest.Quote) (*attest.Provision, error)
	// SealedIdentity restores a previously sealed identity instead of
	// re-attesting (paper §III-C: "an enclave only has to be attested
	// once").
	SealedIdentity []byte
	// ClickConfig is the initial middlebox configuration. Required.
	ClickConfig string
	// RuleSets provides named IDPS rule sets for the initial config.
	RuleSets map[string]string
	// ConfigVersion is the version of the initial configuration.
	ConfigVersion uint64
	// WireMode selects data-channel protection (default ModeEncrypted;
	// the ISP scenario uses ModeIntegrityOnly, paper §IV-A).
	WireMode wire.Mode
	// MinTLS is enforced inside the enclave (default TLS12).
	MinTLS uint16
	// FlagClientToClient enables the 0xeb QoS optimisation (paper §IV-A).
	FlagClientToClient bool
	// FlowCapacity bounds the enclave flow table (concurrent tracked
	// flows); 0 selects the default (16384). Past the bound, the
	// oldest-idle flow is evicted deterministically.
	FlowCapacity int
	// FlowTTL is how long a flow may stay idle before expiring; 0 selects
	// the default (2 minutes).
	FlowTTL time.Duration
	// BatchEcalls selects the optimised single-ecall-per-packet data path
	// (true, EndBox's design) or the naive multi-ecall path used by the
	// §V-G(1) ablation (false).
	BatchEcalls bool
	// FetchConfig retrieves a sealed update blob by version from the
	// configuration file server. Required for updates.
	FetchConfig func(version uint64) ([]byte, error)
	// Send transmits frames to the VPN server. Required.
	Send func(frame []byte) error
	// SendControl transmits control-class frames (pings, nacks, health
	// reports). Wire it to ControlLink.SendControlFrame on transports that
	// shed data under overload so control survives a flood. Optional;
	// defaults to Send.
	SendControl func(frame []byte) error
	// Deliver hands accepted inbound packets to applications. Optional.
	Deliver func(ip []byte)
	// OnAlert receives middlebox alerts. Optional.
	OnAlert func(click.Alert)
	// FailurePolicy configures in-enclave element fault containment
	// (panic recovery, quarantine, fail-open/closed). The zero value
	// disables containment; Deployment enables it by default.
	FailurePolicy click.FailurePolicy
	// OnElementFault receives containment events (element panics,
	// quarantine trips) from the enclave pipeline. Optional.
	OnElementFault func(click.ElementFault)
	// OnUpdateFailed fires when a server-announced configuration version
	// cannot be applied, so operators need not poll LastUpdateError.
	// Optional.
	OnUpdateFailed func(version uint64, err error)
	// LKGVersion seeds the last-known-good configuration version (e.g.
	// restored from an -lkg-state file across a restart). 0 means none
	// yet: the first successful update establishes it.
	LKGVersion uint64
	// Clock for ping timestamps (default time.Now).
	Clock func() time.Time
}

// Client is a complete EndBox client: an enclave hosting the sensitive
// halves of OpenVPN and Click, plus the untrusted runtime around it.
type Client struct {
	opts    ClientOptions
	enclave *sgx.Enclave
	vpn     *vpn.Client
	sealed  []byte
	alerts  *alertQueue
	faults  *faultQueue

	appliedMu chan struct{} // 1-token semaphore guarding update state
	version   uint64
	updateErr error
	// lkgVersion is the last configuration version that applied cleanly
	// before the current one — the local rollback point when a fresh
	// configuration trips quarantine. badVersions records versions the
	// client has rolled back from, so a keepalive re-announcing one is
	// nacked instead of re-applied (the flap damper until the server's
	// canary rollback republishes good content under a new version).
	lkgVersion  uint64
	badVersions map[uint64]string

	ticketMu sync.Mutex
	ticket   []byte // latest server-issued resumption ticket (opaque)
}

// alertQueue buffers middlebox alerts raised inside an ecall until the
// boundary is released. Alerts fire from the Click pipeline, which runs
// under the enclave's execution lock; invoking user callbacks there would
// deadlock any handler that re-enters the client (e.g. sending a report
// packet in reaction to an IDS alert). Each data-path entry point flushes
// the queue after its ecall returns, so delivery stays synchronous from
// the caller's point of view.
type alertQueue struct {
	fn func(click.Alert)

	mu      sync.Mutex
	pending []click.Alert
}

// enqueue is the in-enclave alert hook (called under the execution lock).
func (q *alertQueue) enqueue(a click.Alert) {
	q.mu.Lock()
	q.pending = append(q.pending, a)
	q.mu.Unlock()
}

// flush delivers buffered alerts on the caller's stack, outside the
// enclave.
func (q *alertQueue) flush() {
	q.mu.Lock()
	pending := q.pending
	q.pending = nil
	q.mu.Unlock()
	for _, a := range pending {
		q.fn(a)
	}
}

// faultQueue is the containment analogue of alertQueue: element faults
// fire inside an ecall under the enclave execution lock, so they are
// buffered and delivered after the boundary is released — the fault
// handler re-enters the enclave (health report, self-revert).
type faultQueue struct {
	fn func(click.ElementFault) // set once at construction, before traffic

	mu      sync.Mutex
	pending []click.ElementFault
}

func (q *faultQueue) enqueue(f click.ElementFault) {
	q.mu.Lock()
	q.pending = append(q.pending, f)
	q.mu.Unlock()
}

func (q *faultQueue) flush() {
	q.mu.Lock()
	pending := q.pending
	q.pending = nil
	q.mu.Unlock()
	for _, f := range pending {
		if q.fn != nil {
			q.fn(f)
		}
	}
}

// flushEvents drains both post-ecall queues (alerts, then faults) on the
// caller's stack.
func (c *Client) flushEvents() {
	c.alerts.flush()
	c.faults.flush()
}

// NewClient creates the enclave, performs (or restores) attestation, and
// prepares the client for Connect. It does not contact the VPN server yet.
func NewClient(opts ClientOptions) (*Client, error) {
	switch {
	case opts.ID == "":
		return nil, fmt.Errorf("core: ClientOptions.ID required")
	case opts.CPU == nil:
		return nil, fmt.Errorf("core: ClientOptions.CPU required")
	case len(opts.CAPub) == 0:
		return nil, fmt.Errorf("core: ClientOptions.CAPub required")
	case opts.ClickConfig == "":
		return nil, fmt.Errorf("core: ClientOptions.ClickConfig required")
	case opts.Send == nil:
		return nil, fmt.Errorf("core: ClientOptions.Send required")
	}
	if opts.WireMode == 0 {
		opts.WireMode = wire.ModeEncrypted
	}
	if opts.MinTLS == 0 {
		opts.MinTLS = vpn.TLS12
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	alert := opts.OnAlert
	if alert == nil {
		alert = func(click.Alert) {}
	}
	alerts := &alertQueue{fn: alert}
	faults := &faultQueue{}

	encl, err := opts.CPU.CreateEnclave(ClientImageVersion(opts.CAPub, opts.BuildVersion), sgx.Config{
		Mode:           opts.Mode,
		BurnCPU:        opts.BurnCPU,
		TransitionCost: opts.TransitionCost,
	})
	if err != nil {
		return nil, err
	}
	if err := registerEcalls(encl, opts.CAPub, alerts.enqueue, faults.enqueue); err != nil {
		encl.Destroy()
		return nil, err
	}
	if err := encl.Init(); err != nil {
		encl.Destroy()
		return nil, err
	}

	c := &Client{
		opts:       opts,
		enclave:    encl,
		alerts:     alerts,
		faults:     faults,
		version:    opts.ConfigVersion,
		lkgVersion: opts.LKGVersion,
		appliedMu:  make(chan struct{}, 1),
	}
	faults.fn = c.handleFault

	// Bootstrap identity: restore a sealed one, or run remote attestation.
	if len(opts.SealedIdentity) > 0 {
		if _, err := encl.Ecall(ecallRestore, opts.SealedIdentity); err != nil {
			encl.Destroy()
			return nil, err
		}
		c.sealed = opts.SealedIdentity
	} else {
		if opts.QE == nil || opts.Enroll == nil {
			encl.Destroy()
			return nil, fmt.Errorf("core: QE and Enroll required without a sealed identity")
		}
		repAny, err := encl.Ecall(ecallKeygen, nil)
		if err != nil {
			encl.Destroy()
			return nil, err
		}
		quote, err := opts.QE.Quote(repAny.(sgx.Report))
		if err != nil {
			encl.Destroy()
			return nil, err
		}
		prov, err := opts.Enroll(quote)
		if err != nil {
			encl.Destroy()
			return nil, fmt.Errorf("core: enrolment: %w", err)
		}
		sealedAny, err := encl.Ecall(ecallProvision, provisionArg{prov: prov})
		if err != nil {
			encl.Destroy()
			return nil, err
		}
		c.sealed = sealedAny.([]byte)
	}

	// Install the middlebox inside the enclave.
	if _, err := encl.Ecall(ecallInitClick, initClickArg{
		clickConfig:  opts.ClickConfig,
		ruleSets:     opts.RuleSets,
		version:      opts.ConfigVersion,
		flagC2C:      opts.FlagClientToClient,
		mode:         opts.WireMode,
		minTLS:       opts.MinTLS,
		flowCapacity: opts.FlowCapacity,
		flowTTL:      opts.FlowTTL,
		failure:      opts.FailurePolicy,
	}); err != nil {
		encl.Destroy()
		return nil, err
	}

	cli, err := vpn.NewClient(vpn.ClientOptions{
		ID:            opts.ID,
		Plane:         c.dataPlane(),
		Send:          opts.Send,
		SendControl:   opts.SendControl,
		Deliver:       opts.Deliver,
		Clock:         vpn.Clock(opts.Clock),
		ConfigVersion: func() uint64 { return c.AppliedVersion() },
		OnAnnounce:    c.onAnnounce,
	})
	if err != nil {
		encl.Destroy()
		return nil, err
	}
	c.vpn = cli
	return c, nil
}

// dataPlane returns the DataPlane implementation matching the ecall
// batching option.
func (c *Client) dataPlane() vpn.DataPlane {
	if c.opts.BatchEcalls {
		return &batchedPlane{c: c}
	}
	return &naivePlane{c: c}
}

// batchedPlane is EndBox's optimised data path: one ecall per packet in
// each direction (paper §IV-A "Enclave transitions"), and for bursts one
// ecall per slab — the whole burst packed into a single contiguous buffer
// each way (vpn.SlabDataPlane / vpn.SlabIngressPlane).
type batchedPlane struct{ c *Client }

func (p *batchedPlane) SealOutbound(payload []byte) ([]byte, error) {
	res, err := p.c.enclave.Ecall(ecallProcessOut, payload)
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// SealOutboundSlab implements vpn.SlabDataPlane: the whole burst crosses
// the boundary in one ecall as ONE contiguous buffer (2 transitions and
// zero per-packet allocations at the boundary). The result slab is pooled;
// the vpn client releases it after transmitting the frames.
func (p *batchedPlane) SealOutboundSlab(slab []byte) ([]byte, error) {
	res, err := p.c.enclave.Ecall(ecallProcessOutBatch, slab)
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// SlabBudget implements vpn.SlabDataPlane/SlabIngressPlane: slabs are
// bounded by what one enclave crossing may carry.
func (p *batchedPlane) SlabBudget() int { return p.c.enclave.MaxBoundaryBytes() }

func (p *batchedPlane) OpenInbound(frame []byte) ([]byte, error) {
	res, err := p.c.enclave.Ecall(ecallProcessIn, frame)
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// OpenInboundSlab implements vpn.SlabIngressPlane: a whole received burst
// crosses the boundary in one ecall as one buffer (the ingress mirror of
// SealOutboundSlab).
func (p *batchedPlane) OpenInboundSlab(slab []byte) ([]byte, error) {
	res, err := p.c.enclave.Ecall(ecallProcessInBatch, slab)
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// naivePlane crosses the boundary once per processing stage (Click,
// encrypt, MAC) — the unoptimised design the ablation quantifies.
type naivePlane struct{ c *Client }

func (p *naivePlane) SealOutbound(payload []byte) ([]byte, error) {
	var err error
	if len(payload) > 0 && payload[0] == vpn.FrameData {
		var res any
		res, err = p.c.enclave.Ecall(ecallNaiveClick, payload)
		if err != nil {
			return nil, err
		}
		payload = res.([]byte)
	}
	res, err := p.c.enclave.Ecall(ecallNaiveCrypt, payload)
	if err != nil {
		return nil, err
	}
	res, err = p.c.enclave.Ecall(ecallNaiveMAC, res.([]byte))
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

func (p *naivePlane) OpenInbound(frame []byte) ([]byte, error) {
	// Inbound symmetric: the batched call already performs open+click;
	// the naive path pays an extra boundary round trip per stage.
	if _, err := p.c.enclave.Ecall(ecallNaiveCrypt, frame); err != nil {
		return nil, err
	}
	res, err := p.c.enclave.Ecall(ecallProcessIn, frame)
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// Connect performs the VPN handshake against a server reachable through
// accept (in-process or via a transport adapter). The context bounds the
// handshake; transports that block on the network must honour it.
func (c *Client) Connect(ctx context.Context, accept func(*vpn.ClientHello) (*vpn.ServerHello, error)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sign := func(transcript []byte) ([]byte, error) {
		sig, err := c.enclave.Ecall(ecallHsSign, transcript)
		if err != nil {
			return nil, err
		}
		return sig.([]byte), nil
	}
	cert, err := c.certificate()
	if err != nil {
		return err
	}
	hello, st, err := vpn.NewClientHello(c.opts.ID, cert, c.AppliedVersion(), vpn.TLS13, sign)
	if err != nil {
		return err
	}
	sh, err := accept(hello)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, err := c.enclave.Ecall(ecallHsFinish, hsFinishArg{st: st, sh: sh}); err != nil {
		return err
	}
	c.setTicket(sh.Ticket)
	return nil
}

// Resume re-establishes the VPN session from a resumption ticket
// (paper-faithful fast reconnect: no attestation, no enrolment, no
// certificate walk — one signed round trip). secret is the enclave-sealed
// resume secret from ResumeSecret; empty resumes from the enclave's
// in-memory session (the in-place case, e.g. after the server evicted an
// idle session). send performs the MsgResume round trip.
func (c *Client) Resume(ctx context.Context, secret, ticket []byte, send func(*vpn.ResumeRequest) (*vpn.ResumeReply, error)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ticket) == 0 {
		ticket = c.Ticket()
	}
	if len(ticket) == 0 {
		return fmt.Errorf("core: no resumption ticket for %q", c.opts.ID)
	}
	sign := func(transcript []byte) ([]byte, error) {
		sig, err := c.enclave.Ecall(ecallHsSign, transcript)
		if err != nil {
			return nil, err
		}
		return sig.([]byte), nil
	}
	req, err := vpn.NewResumeRequest(c.opts.ID, ticket, c.AppliedVersion(), sign)
	if err != nil {
		return err
	}
	reply, err := send(req)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, err := c.enclave.Ecall(ecallResumeFinish, resumeFinishArg{sealed: secret, req: req, reply: reply}); err != nil {
		return err
	}
	c.setTicket(reply.Ticket)
	return nil
}

// ResumeSecret exports the current session secret sealed to this enclave
// — together with Ticket it is everything a restarted client needs to
// resume without re-attesting. Fails with ErrNoSession before Connect.
func (c *Client) ResumeSecret() ([]byte, error) {
	res, err := c.enclave.Ecall(ecallExportResume, nil)
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

// Ticket returns the latest server-issued resumption ticket (nil before
// Connect). The ticket is opaque and public-safe: the session secret
// inside is sealed under the server's in-memory key.
func (c *Client) Ticket() []byte {
	c.ticketMu.Lock()
	defer c.ticketMu.Unlock()
	return append([]byte(nil), c.ticket...)
}

func (c *Client) setTicket(t []byte) {
	c.ticketMu.Lock()
	c.ticket = append([]byte(nil), t...)
	c.ticketMu.Unlock()
}

// certificate exports the provisioned certificate from the enclave. The
// certificate is public data; only the private keys stay enclave-internal.
func (c *Client) certificate() (*attest.Certificate, error) {
	raw, err := c.enclave.Ecall(ecallGetCert, nil)
	if err != nil {
		return nil, err
	}
	return attest.ParseCertificate(raw.([]byte))
}

// SendPacket tunnels one application packet (egress).
func (c *Client) SendPacket(ip []byte) error {
	defer c.flushEvents()
	return c.vpn.SendPacket(ip)
}

// SendPackets tunnels a batch of application packets in a single enclave
// crossing (on the batched data path), amortising the per-ecall transition
// cost across the whole batch. Packets dropped by the middlebox are skipped;
// it returns the number of packets handed to the transport and the first
// error encountered (middlebox drops included).
func (c *Client) SendPackets(ips [][]byte) (int, error) {
	defer c.flushEvents()
	return c.vpn.SendPackets(ips)
}

// HandleFrame processes a frame arriving from the server (ingress).
func (c *Client) HandleFrame(frame []byte) error {
	defer c.flushEvents()
	return c.vpn.HandleFrame(frame)
}

// HandleFrames processes a burst of frames arriving from the server in a
// single enclave crossing (on the batched data path), amortising the
// per-ecall transition cost across the burst. Dropped frames are skipped;
// it returns the number of frames fully handled and the first error
// encountered (middlebox drops included).
func (c *Client) HandleFrames(frames [][]byte) (int, error) {
	defer c.flushEvents()
	return c.vpn.HandleFrames(frames)
}

// SendPing reports the applied configuration version to the server.
func (c *Client) SendPing() error { return c.vpn.SendPing() }

// ForwardTLSKey is the management-interface entry point the modified TLS
// library calls with freshly negotiated session keys (paper §III-D).
func (c *Client) ForwardTLSKey(flow packet.Flow, key tlstap.SessionKey) error {
	_, err := c.enclave.Ecall(ecallForwardKey, forwardKeyArg{flow: flow, key: key})
	return err
}

// PipelineStats snapshots the per-element runtime counters — packets,
// drops, alerts per element instance — of the middlebox pipeline running
// inside the enclave (the observability surface stateful custom functions
// need; counters survive hot-swaps for elements that keep their name and
// class). Elements appear in configuration declaration order.
func (c *Client) PipelineStats() ([]click.ElementStats, error) {
	res, err := c.enclave.Ecall(ecallPipelineStats, nil)
	if err != nil {
		return nil, err
	}
	return res.([]click.ElementStats), nil
}

// FlowStats snapshots the enclave flow table's counters: active flows,
// capacity, lookup/hit/insert totals, and how many flows the TTL wheel
// expired or capacity pressure evicted. The table is shared by every
// stateful element and survives configuration hot-swaps.
func (c *Client) FlowStats() (flow.Stats, error) {
	res, err := c.enclave.Ecall(ecallFlowStats, nil)
	if err != nil {
		return flow.Stats{}, err
	}
	return res.(flow.Stats), nil
}

// AppliedVersion reports the active middlebox configuration version.
func (c *Client) AppliedVersion() uint64 {
	c.appliedMu <- struct{}{}
	v := c.version
	<-c.appliedMu
	return v
}

// LastUpdateError reports the most recent background update failure.
func (c *Client) LastUpdateError() error {
	c.appliedMu <- struct{}{}
	err := c.updateErr
	<-c.appliedMu
	return err
}

// onAnnounce reacts to a server ping announcing a new configuration
// version: fetch the blob (untrusted), apply it inside the enclave, and
// prove the update with a ping (paper Fig. 5 steps 5-9). It runs inline;
// the fetch and decrypt do not stall traffic because the caller's ping
// handling is already off the data path.
//
// Failures are no longer silent: a version the client has rolled back
// from is nacked without re-applying (the damper against announce/revert
// flapping), and any apply failure pushes a typed Nack so the server's
// canary watcher learns immediately instead of waiting out its deadline.
func (c *Client) onAnnounce(version uint64, _ time.Duration) {
	c.appliedMu <- struct{}{}
	reason, known := c.badVersions[version]
	<-c.appliedMu
	if known {
		_ = c.vpn.SendNack(vpn.Nack{Version: version, Reason: "rolled back: " + reason})
		return
	}
	_, timing, err := c.applyVersion(version)
	if err != nil {
		c.appliedMu <- struct{}{}
		c.updateErr = err
		<-c.appliedMu
		if c.opts.OnUpdateFailed != nil {
			c.opts.OnUpdateFailed(version, err)
		}
		_ = c.vpn.SendNack(vpn.Nack{Version: version, Reason: err.Error()})
		return
	}
	// Ack with swap timing, then prove the update (best effort; the next
	// periodic ping also carries the version).
	_ = c.vpn.SendHealth(vpn.HealthReport{
		Version:   version,
		OK:        true,
		SwapNanos: timing.Hotswap.Nanoseconds(),
	})
	_ = c.SendPing()
}

// ApplyUpdateBlob verifies and applies a fetched update blob, returning the
// in-enclave timing breakdown. The previously applied version becomes the
// client's last-known-good rollback point.
func (c *Client) ApplyUpdateBlob(blob []byte) (SwapTiming, error) {
	defer c.flushEvents()
	res, err := c.enclave.Ecall(ecallApplyConfig, applyConfigArg{blob: blob})
	if err != nil {
		return SwapTiming{}, err
	}
	applied := res.(applyResult)
	c.appliedMu <- struct{}{}
	if c.version != applied.version {
		c.lkgVersion = c.version
	}
	c.version = applied.version
	c.updateErr = nil
	<-c.appliedMu
	return applied.timing, nil
}

// handleFault delivers containment events raised inside the enclave. A
// quarantine trip on the running pipeline means the configuration itself
// is suspect: the client reports unhealthy to the server and, if it has a
// last-known-good version, self-reverts locally rather than limping on a
// quarantined pipeline until the server notices.
func (c *Client) handleFault(f click.ElementFault) {
	if c.opts.OnElementFault != nil {
		c.opts.OnElementFault(f)
	}
	if !f.Quarantined {
		return
	}
	if h, err := c.HealthReport(); err == nil {
		h.OK = false
		h.Fault = f.Element
		_ = c.vpn.SendHealth(h)
	}
	c.selfRevert(f)
}

// selfRevert rolls the pipeline back to the last-known-good version after
// the current configuration tripped quarantine. The revert is guarded by
// an in-enclave compare-and-swap on the applied version (expectApplied),
// so a server-side rollback landing concurrently wins: the stale revert
// is rejected inside the enclave instead of downgrading a fresh config.
func (c *Client) selfRevert(f click.ElementFault) {
	c.appliedMu <- struct{}{}
	bad, lkg := c.version, c.lkgVersion
	_, alreadyBad := c.badVersions[bad]
	revert := lkg != 0 && bad != lkg && !alreadyBad
	if revert {
		if c.badVersions == nil {
			c.badVersions = make(map[uint64]string)
		}
		c.badVersions[bad] = fmt.Sprintf("element %s quarantined: %s", f.Element, f.Err)
	}
	<-c.appliedMu
	if !revert {
		return
	}
	if c.opts.FetchConfig == nil {
		return
	}
	blob, err := c.opts.FetchConfig(lkg)
	if err != nil {
		return
	}
	if err := c.applyRollback(blob, bad); err != nil {
		return
	}
	_ = c.SendPing()
	_ = c.vpn.SendNack(vpn.Nack{Version: bad, Reason: "self-revert: " + f.Err})
}

// applyRollback applies a last-known-good blob with the enclave's
// monotonic-version check waived (the blob is still CA-signed, so the
// replay surface is limited to operator-shipped configurations) and a CAS
// on the currently applied version. On success the applied version moves
// backwards; the LKG pointer is left untouched.
func (c *Client) applyRollback(blob []byte, expectApplied uint64) error {
	defer c.flushEvents()
	res, err := c.enclave.Ecall(ecallApplyConfig, applyConfigArg{
		blob:          blob,
		allowRollback: true,
		expectApplied: expectApplied,
	})
	if err != nil {
		return err
	}
	applied := res.(applyResult)
	c.appliedMu <- struct{}{}
	c.version = applied.version
	c.updateErr = nil
	<-c.appliedMu
	return nil
}

// HealthReport snapshots the client's pipeline health: the applied
// version, last swap timing, cumulative panic/drop counters, and any
// quarantined elements. OK is true iff nothing is quarantined.
func (c *Client) HealthReport() (vpn.HealthReport, error) {
	res, err := c.enclave.Ecall(ecallHealthReport, nil)
	if err != nil {
		return vpn.HealthReport{}, err
	}
	h := res.(vpn.HealthReport)
	h.OK = h.Quarantined == 0
	return h, nil
}

// LKGVersion reports the last-known-good configuration version — the
// local rollback point, suitable for persisting across restarts (the
// endbox-client -lkg-state flag).
func (c *Client) LKGVersion() uint64 {
	c.appliedMu <- struct{}{}
	v := c.lkgVersion
	<-c.appliedMu
	return v
}

// applyVersion fetches and applies a specific version.
func (c *Client) applyVersion(version uint64) (uint64, SwapTiming, error) {
	if c.opts.FetchConfig == nil {
		return 0, SwapTiming{}, fmt.Errorf("core: no FetchConfig configured")
	}
	blob, err := c.opts.FetchConfig(version)
	if err != nil {
		return 0, SwapTiming{}, err
	}
	timing, err := c.ApplyUpdateBlob(blob)
	if err != nil {
		return 0, SwapTiming{}, err
	}
	return version, timing, nil
}

// SealedIdentity returns the sealed identity blob for persistence across
// restarts (attestation happens once per machine).
func (c *Client) SealedIdentity() []byte {
	return append([]byte(nil), c.sealed...)
}

// EnclaveStats exposes boundary counters for the transition ablation.
func (c *Client) EnclaveStats() sgx.Stats { return c.enclave.Stats() }

// Close destroys the enclave. The client is unusable afterwards — exactly
// the consequence a DoS-ing host inflicts on itself (paper §V-A).
func (c *Client) Close() { c.enclave.Destroy() }

// marshalIdentity / unmarshalIdentity serialise the sealed identity.
func marshalIdentity(id sealedIdentity) ([]byte, error) {
	b, err := json.Marshal(id)
	if err != nil {
		return nil, fmt.Errorf("core: marshal identity: %w", err)
	}
	return b, nil
}

func unmarshalIdentity(b []byte) (sealedIdentity, error) {
	var id sealedIdentity
	if err := json.Unmarshal(b, &id); err != nil {
		return sealedIdentity{}, fmt.Errorf("core: unmarshal identity: %w", err)
	}
	return id, nil
}
