package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"endbox/internal/click"
	"endbox/internal/config"
	"endbox/internal/netsim"
	"endbox/internal/packet"
)

// faultLog captures FaultObserver events from concurrent goroutines.
type faultLog struct {
	mu      sync.Mutex
	faults  []click.ElementFault
	clients []string
	failed  []uint64
}

func (l *faultLog) observer() ObserverFuncs {
	return ObserverFuncs{
		OnFault: func(clientID string, f click.ElementFault) {
			l.mu.Lock()
			l.faults = append(l.faults, f)
			l.clients = append(l.clients, clientID)
			l.mu.Unlock()
		},
		OnUpdateError: func(_ string, version uint64, _ error) {
			l.mu.Lock()
			l.failed = append(l.failed, version)
			l.mu.Unlock()
		},
	}
}

func (l *faultLog) snapshot() []click.ElementFault {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]click.ElementFault(nil), l.faults...)
}

// chaosFleet builds a deployment with four clients (c1..c4) running a
// known-good global v1, the rollback point every canary test needs.
func chaosFleet(t *testing.T, log *faultLog) (*Deployment, []*Client) {
	t.Helper()
	netsim.RegisterFaulty()
	opts := DeploymentOptions{}
	if log != nil {
		opts.Observer = log.observer()
	}
	d := newDeployment(t, opts)
	ids := []string{"c1", "c2", "c3", "c4"}
	clients := make([]*Client, len(ids))
	for i, id := range ids {
		clients[i] = addClient(t, d, id, ClientSpec{UseCase: click.UseCaseNOP})
	}
	publish(t, d, &config.Update{
		Version:     1,
		ClickConfig: click.StandardConfig(click.UseCaseNOP),
	})
	for i, c := range clients {
		if v := c.AppliedVersion(); v != 1 {
			t.Fatalf("%s: applied v%d before canary, want 1", ids[i], v)
		}
	}
	return d, clients
}

// waitApplied polls until the client reaches version v (the canary
// announce runs on the rollout goroutine).
func waitApplied(t *testing.T, c *Client, v uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.AppliedVersion() != v {
		if time.Now().After(deadline) {
			t.Fatalf("client stuck on v%d, want v%d", c.AppliedVersion(), v)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCanaryAutoRollbackOnQuarantine is the acceptance scenario: a canary
// rollout of a configuration whose element panics on the 3rd packet is
// detected and auto-rolled-back. Every cohort client ends on the
// last-known-good content, non-canary clients never see the bad version,
// and the panicking element never crashes a client or the server.
func TestCanaryAutoRollbackOnQuarantine(t *testing.T) {
	log := &faultLog{}
	d, clients := chaosFleet(t, log)
	c1, c2, c3, c4 := clients[0], clients[1], clients[2], clients[3]

	type outcome struct {
		res CanaryResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := d.RolloutCanary(context.Background(), CanaryRollout{
			Rollout: Rollout{
				Version:     2,
				ClickConfig: "FromDevice -> Faulty(PANIC 3) -> ToDevice;",
			},
			Fraction: 0.5,
			Deadline: 10 * time.Second,
		})
		done <- outcome{res, err}
	}()

	// Cohort = first half of the sorted fleet: c1, c2.
	waitApplied(t, c1, 2)
	waitApplied(t, c2, 2)

	// Live traffic trips the fault: packets 1-2 pass, packets 3+ panic.
	// With the default trip threshold of 3 the element is quarantined on
	// the 5th packet; the client reports unhealthy and self-reverts.
	src, dst := packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1)
	for i := 0; i < 6; i++ {
		_ = c1.SendPacket(udpTo(t, src, dst, "probe")) // errors expected mid-chaos
	}

	o := <-done
	if o.err != nil {
		t.Fatalf("RolloutCanary: %v", o.err)
	}
	res := o.res
	if res.Promoted || !res.RolledBack {
		t.Fatalf("promoted=%v rolledback=%v, want rollback", res.Promoted, res.RolledBack)
	}
	if res.RollbackVersion != 3 {
		t.Errorf("rollback version = %d, want 3", res.RollbackVersion)
	}
	if !strings.Contains(res.Reason, "unhealthy") {
		t.Errorf("reason = %q, want a quarantine report", res.Reason)
	}
	if len(res.Canary) != 2 || res.Canary[0] != "c1" || res.Canary[1] != "c2" {
		t.Errorf("cohort = %v, want [c1 c2]", res.Canary)
	}

	// Cohort converged on the rollback version carrying LKG content; the
	// rest of the fleet stayed on v1 and never applied (or failed) v2.
	if v := c1.AppliedVersion(); v != 3 {
		t.Errorf("c1 applied v%d, want rollback v3", v)
	}
	if v := c2.AppliedVersion(); v != 3 {
		t.Errorf("c2 applied v%d, want rollback v3", v)
	}
	for _, c := range []*Client{c3, c4} {
		if v := c.AppliedVersion(); v != 1 {
			t.Errorf("non-canary applied v%d, want 1", v)
		}
		if err := c.LastUpdateError(); err != nil {
			t.Errorf("non-canary update error: %v", err)
		}
	}

	// Containment fired per panic and the last fault quarantined.
	faults := log.snapshot()
	if len(faults) < 3 {
		t.Fatalf("observed %d faults, want >=3", len(faults))
	}
	quarantined := false
	for _, f := range faults {
		if f.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("no fault event reported quarantine")
	}

	// Self-healed: the cohort client processes traffic again on the
	// restored pipeline, and the server still serves the fleet.
	if err := c1.SendPacket(udpTo(t, src, dst, "after")); err != nil {
		t.Errorf("post-rollback SendPacket: %v", err)
	}
	if err := d.Server.BroadcastPing(); err != nil {
		t.Errorf("server unhealthy after chaos: %v", err)
	}
}

// TestCanaryPromotesHealthyRollout widens a healthy canary fleet-wide at
// the deadline: every cohort member acked, nobody faulted.
func TestCanaryPromotesHealthyRollout(t *testing.T) {
	d, clients := chaosFleet(t, nil)

	res, err := d.RolloutCanary(context.Background(), CanaryRollout{
		Rollout: Rollout{
			Version:     2,
			ClickConfig: "FromDevice -> IPFilter(drop dst host 203.0.113.9, allow all) -> ToDevice;",
		},
		Fraction: 0.5,
		Deadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RolloutCanary: %v", err)
	}
	if !res.Promoted || res.RolledBack {
		t.Fatalf("promoted=%v rolledback=%v reason=%q, want promotion", res.Promoted, res.RolledBack, res.Reason)
	}
	for _, id := range res.Canary {
		h, ok := res.Health[id]
		if !ok || !h.OK {
			t.Errorf("cohort %s health = %+v, want OK ack", id, h)
		}
		if ok && h.SwapNanos <= 0 {
			t.Errorf("cohort %s ack missing swap timing", id)
		}
	}
	// AnnounceGlobal pulled the rest of the fleet onto the version too.
	for i, c := range clients {
		if v := c.AppliedVersion(); v != 2 {
			t.Errorf("client %d applied v%d, want 2", i+1, v)
		}
	}
	if v := d.Server.LatestGlobal(); v != 2 {
		t.Errorf("latest global = %d, want 2", v)
	}
}

// TestCanaryNeedsLastKnownGood refuses to stage anything when there is no
// global version to roll back to.
func TestCanaryNeedsLastKnownGood(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	addClient(t, d, "c1", ClientSpec{UseCase: click.UseCaseNOP})
	_, err := d.RolloutCanary(context.Background(), CanaryRollout{
		Rollout: Rollout{Version: 1, ClickConfig: click.StandardConfig(click.UseCaseNOP)},
	})
	if err == nil || !strings.Contains(err.Error(), "last-known-good") {
		t.Fatalf("err = %v, want last-known-good refusal", err)
	}
}

// TestCanaryRollbackRacesSelfRevert pins the rollback race: the server's
// automatic rollback (a fresh version with LKG content) lands while the
// quarantined client's own self-revert is still mid-flight — its LKG
// fetch slowed by an injected delay. Whichever apply wins, the in-enclave
// compare-and-swap on the applied version must leave the client on the
// rollback version, never flapping back to a stale revert. Run with
// -race.
func TestCanaryRollbackRacesSelfRevert(t *testing.T) {
	d, clients := chaosFleet(t, nil)
	c1 := clients[0]

	// Every config fetch now takes 20ms, holding the self-revert's
	// fetch-then-apply window open while the rollback publish races it.
	d.Server.Configs().SetFetchDelay(func() { time.Sleep(20 * time.Millisecond) })

	type outcome struct {
		res CanaryResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := d.RolloutCanary(context.Background(), CanaryRollout{
			Rollout: Rollout{
				Version:     2,
				ClickConfig: "FromDevice -> Faulty(PANIC 1) -> ToDevice;",
			},
			Fraction: 0.25, // cohort = c1 alone
			Deadline: 10 * time.Second,
		})
		done <- outcome{res, err}
	}()
	waitApplied(t, c1, 2)

	// Every packet panics; the third trip quarantines and starts the
	// self-revert while the watch triggers the server-side rollback.
	src, dst := packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1)
	for i := 0; i < 4; i++ {
		_ = c1.SendPacket(udpTo(t, src, dst, "probe"))
	}

	o := <-done
	if o.err != nil {
		t.Fatalf("RolloutCanary: %v", o.err)
	}
	if !o.res.RolledBack || o.res.RollbackVersion != 3 {
		t.Fatalf("result = %+v, want rollback to v3", o.res)
	}
	// Both the rollback apply and the self-revert have completed (each is
	// synchronous on its goroutine); the client must sit on the rollback
	// version with LKG content, whichever order they landed in.
	if v := c1.AppliedVersion(); v != 3 {
		t.Fatalf("c1 applied v%d after race, want 3", v)
	}
	if err := c1.SendPacket(udpTo(t, src, dst, "after")); err != nil {
		t.Errorf("post-race SendPacket: %v", err)
	}
}

// TestCanaryExclusive refuses a second canary while one is in flight.
func TestCanaryExclusive(t *testing.T) {
	d, _ := chaosFleet(t, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = d.RolloutCanary(context.Background(), CanaryRollout{
			Rollout:  Rollout{Version: 2, ClickConfig: click.StandardConfig(click.UseCaseNOP)},
			Deadline: 300 * time.Millisecond,
		})
	}()
	time.Sleep(50 * time.Millisecond)
	_, err := d.RolloutCanary(context.Background(), CanaryRollout{
		Rollout: Rollout{Version: 3, ClickConfig: click.StandardConfig(click.UseCaseNOP)},
	})
	if err == nil || !strings.Contains(err.Error(), "in progress") {
		t.Fatalf("concurrent canary err = %v, want in-progress refusal", err)
	}
	<-done
}
