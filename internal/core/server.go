package core

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"os"
	"sync"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/config"
	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/policy"
	"endbox/internal/sgx"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

// ServerOptions configures an EndBox server-side deployment: the VPN
// server, the CA-backed management plane and the configuration file server.
type ServerOptions struct {
	// CA is the operator's certificate authority. Required.
	CA *attest.CA
	// Mode selects data-channel protection for all clients (default
	// encrypted; the ISP scenario uses integrity-only).
	Mode wire.Mode
	// MinTLS is the server-side downgrade floor (default TLS12).
	MinTLS uint16
	// Clock is the time source (default time.Now).
	Clock func() time.Time
	// Deliver receives accepted client packets bound for the network.
	Deliver func(clientID string, ip []byte)
	// SendTo transmits frames back to clients.
	SendTo func(clientID string, frame []byte) error
	// ServerClick optionally attaches a server-side Click pipeline — the
	// OpenVPN+Click baseline of the evaluation. Nil for EndBox (the whole
	// point is that the server does no middlebox work).
	ServerClick *click.Instance
	// EncryptConfigs encrypts published configuration updates with the
	// CA's shared key (enterprise scenario hides rules; ISP scenario
	// publishes plaintext so customers can inspect them, paper §III-E).
	EncryptConfigs bool
	// Shards is the VPN session-table shard count (0 = automatic; 1
	// reproduces the monolithic single-lock table).
	Shards int
	// SessionTTL enables liveness-driven eviction: sessions idle for
	// this long may be swept. 0 disables (sessions live forever).
	SessionTTL time.Duration
	// TicketTTL bounds resumption-ticket age (0 = life of the server's
	// in-memory ticket key).
	TicketTTL time.Duration
	// OnNack receives clients' typed configuration rejections (sealed
	// FrameNack frames). Optional; the canary engine uses it.
	OnNack func(clientID string, n vpn.Nack)
	// OnHealth receives clients' health reports (sealed FrameHealth
	// frames): apply acks and fault notifications. Optional.
	OnHealth func(clientID string, h vpn.HealthReport)
	// Policy is the attested-identity policy registry. When set, the VPN
	// server refuses handshakes and resumes from revoked builds before any
	// certificate or signature crypto runs (the admission choke point).
	Policy *policy.Registry
}

// Server bundles the managed network's server side: VPN endpoint,
// configuration file server and the administrator's management interface
// (paper Fig. 5). It is safe for concurrent use.
type Server struct {
	opts    ServerOptions
	vpn     *vpn.Server
	configs *config.Server
	signKey ed25519.PrivateKey

	mu        sync.Mutex
	nextVer   uint64
	lastGrace time.Duration
	// journal records every published update by version — the rollback
	// source: a canary failure republishes the last-known-good entry's
	// content under a fresh (higher) version.
	journal map[uint64]*config.Update
}

// NewServer creates the server-side deployment.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.CA == nil {
		return nil, fmt.Errorf("core: ServerOptions.CA required")
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	serverPub, serverPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("core: server key: %w", err)
	}

	var process func(ip []byte) bool
	if opts.ServerClick != nil {
		inst := opts.ServerClick
		// The server-side Click instance is shared by every client's frame
		// handling; serialise access like the paper's single-threaded
		// OpenVPN+Click process.
		var clickMu sync.Mutex
		process = func(raw []byte) bool {
			ip, err := packet.ParseIPv4(raw)
			if err != nil {
				return false
			}
			clickMu.Lock()
			defer clickMu.Unlock()
			return inst.Process(ip).Accepted
		}
	}

	var gate func(m sgx.Measurement) error
	if opts.Policy != nil {
		gate = opts.Policy.CheckMeasurement
	}
	vsrv, err := vpn.NewServer(vpn.ServerOptions{
		CAPub:      opts.CA.PublicKey(),
		Credential: opts.CA.SignServerKey(serverPub),
		SignKey:    serverPriv,
		MinTLS:     opts.MinTLS,
		Mode:       opts.Mode,
		Clock:      vpn.Clock(opts.Clock),
		Deliver:    opts.Deliver,
		SendTo:     opts.SendTo,
		Process:    process,
		Shards:     opts.Shards,
		SessionTTL: opts.SessionTTL,
		TicketTTL:  opts.TicketTTL,
		OnNack:     opts.OnNack,
		OnHealth:   opts.OnHealth,

		GateMeasurement: gate,
	})
	if err != nil {
		return nil, err
	}
	return &Server{
		opts:    opts,
		vpn:     vsrv,
		configs: config.NewServer(),
		signKey: serverPriv,
		journal: make(map[uint64]*config.Update),
	}, nil
}

// VPN exposes the underlying VPN server (handshake Accept, HandleFrame,
// SendTo, stats).
func (s *Server) VPN() *vpn.Server { return s.vpn }

// Configs exposes the configuration file server clients fetch from.
func (s *Server) Configs() *config.Server { return s.configs }

// PublishUpdate is the administrator's one call to roll out a new
// middlebox configuration (paper Fig. 5 steps 1-4): seal it under the CA
// key (encrypting if configured), upload to the configuration server,
// arm the grace-period policy and ping all clients. The context bounds the
// rollout (sealing plus the announcement fan-out).
func (s *Server) PublishUpdate(ctx context.Context, u *config.Update) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.sealAndPublish(u, sgx.Measurement{}); err != nil {
		return err
	}
	if err := s.vpn.Policy().Announce(u.Version, u.GracePeriod()); err != nil {
		return err
	}
	s.mu.Lock()
	s.nextVer = u.Version
	s.lastGrace = u.GracePeriod()
	s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.vpn.BroadcastPing(u.GracePeriod())
}

// PublishTargeted seals and publishes an update like PublishUpdate but
// announces it only to the given clients: the configuration server stores
// the blob (any client may fetch it), the policy arms a per-client
// requirement for exactly the targeted IDs, and only they are pinged.
// Untargeted clients keep being judged against the globally current
// version. Deployment.Rollout is the public entry point.
func (s *Server) PublishTargeted(ctx context.Context, u *config.Update, clientIDs []string) error {
	return s.PublishTargetedSealed(ctx, u, clientIDs, sgx.Measurement{})
}

// PublishTargetedSealed is PublishTargeted with the blob additionally
// sealed to one enclave build: it encrypts under the CA's per-measurement
// key instead of the fleet-shared key, so only enclaves attesting sealTo
// can open it — every other build fails with ErrSealedToOtherBuild and
// keeps its last-known-good configuration. A zero sealTo degrades to
// PublishTargeted.
func (s *Server) PublishTargetedSealed(ctx context.Context, u *config.Update, clientIDs []string, sealTo sgx.Measurement) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.sealAndPublish(u, sealTo); err != nil {
		return err
	}
	if err := s.vpn.Policy().AnnounceTarget(clientIDs, u.Version, u.GracePeriod()); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.vpn.PingClients(clientIDs, u.Version, u.GracePeriod())
}

// sealAndPublish seals an update under the CA key (encrypting when the
// deployment is configured to) and stores it on the configuration file
// server — the publication steps shared by global and targeted rollouts.
// A non-zero sealTo binds the blob to one enclave build: encryption under
// the CA's per-measurement key, regardless of EncryptConfigs.
func (s *Server) sealAndPublish(u *config.Update, sealTo sgx.Measurement) error {
	var blob []byte
	var err error
	if !sealTo.IsZero() {
		blob, err = config.SealTo(u, s.opts.CA.SignConfig, s.opts.CA.MeasurementKey(sealTo), sealTo.String())
	} else {
		var key []byte
		if s.opts.EncryptConfigs {
			key = s.opts.CA.SharedKey()
		}
		blob, err = config.Seal(u, s.opts.CA.SignConfig, key)
	}
	if err != nil {
		return err
	}
	if err := s.configs.Publish(u.Version, blob); err != nil {
		return err
	}
	s.mu.Lock()
	s.journal[u.Version] = u
	s.mu.Unlock()
	return nil
}

// JournalEntry returns the published update recorded under a version.
// Entries are immutable after publication; callers must not modify the
// returned update.
func (s *Server) JournalEntry(version uint64) (*config.Update, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.journal[version]
	return u, ok
}

// AnnounceGlobal promotes an already published version to the fleet-wide
// requirement: the policy's global current moves to it (absorbing any
// per-client targets at or below it) and every client is pinged. The
// canary engine widens a successful canary with this — the blob was
// published when the cohort was staged, so promotion is pure policy plus
// announcement, with no second seal.
func (s *Server) AnnounceGlobal(ctx context.Context, version uint64, grace time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, ok := s.JournalEntry(version); !ok {
		return fmt.Errorf("core: version %d was never published", version)
	}
	if err := s.vpn.Policy().Announce(version, grace); err != nil {
		return err
	}
	s.mu.Lock()
	s.nextVer = version
	s.lastGrace = grace
	s.mu.Unlock()
	return s.vpn.BroadcastPing(grace)
}

// LatestGlobal reports the most recent globally published version (0
// when none). Targeted rollouts advance the configuration store's latest
// but not this, so boot-time fetches of "the current configuration"
// resolve to the fleet-wide one — a client outside a canary ring must
// not boot into the canary's version and be rejected as stale.
func (s *Server) LatestGlobal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextVer
}

// BroadcastPing re-sends the periodic keepalive announcing the current
// version.
func (s *Server) BroadcastPing() error {
	s.mu.Lock()
	grace := s.lastGrace
	s.mu.Unlock()
	return s.vpn.BroadcastPing(grace)
}

// VanillaDeviceSetup performs the file-descriptor work vanilla Click's
// FromDevice and ToDevice elements do each time a configuration is
// installed — the cost the paper identifies as why EndBox reconfigures
// faster (Table II: "vanilla Click needs to set up file descriptors for
// the ToDevice and FromDevice elements, which is not necessary for ENDBOX
// because OpenVPN took care of this task earlier"). EndBox deployments
// pass no device setup at all.
func VanillaDeviceSetup() error {
	r, w, err := os.Pipe()
	if err != nil {
		return fmt.Errorf("core: device setup: %w", err)
	}
	// Touch the descriptors like a device open/configure sequence would.
	if _, err := w.Write([]byte{0}); err != nil {
		r.Close()
		w.Close()
		return fmt.Errorf("core: device setup: %w", err)
	}
	var buf [1]byte
	if _, err := r.Read(buf[:]); err != nil {
		r.Close()
		w.Close()
		return fmt.Errorf("core: device setup: %w", err)
	}
	r.Close()
	w.Close()
	return nil
}

// ServerClickContext builds the Click context for a server-side (vanilla)
// instance: untrusted time, community rules, and real device setup — the
// file-descriptor work EndBox avoids (Table II).
func ServerClickContext(deviceSetup func() error) *click.Context {
	return &click.Context{
		RuleSet: func(name string) (string, error) {
			if name != "community" {
				return "", fmt.Errorf("core: unknown rule set %q", name)
			}
			return idps.GenerateRuleSet(idps.CommunityRuleCount, 2018), nil
		},
		DeviceSetup: deviceSetup,
	}
}
