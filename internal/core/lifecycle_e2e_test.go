package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"endbox/internal/click"
	"endbox/internal/lifecycle"
	"endbox/internal/packet"
	"endbox/internal/sgx"
)

// testClock is a mutex-guarded virtual clock. Deployments under test use
// SweepInterval: -1 so no wall-time goroutine races the advances; the
// tests drive SweepSessions by hand.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	// Anchored an hour behind wall time: certificates are issued on the
	// deployment clock but verified inside enclaves against SGX trusted
	// time (real wall clock), which must not be before IssuedAt. The
	// advances below stay far under an hour, and the 30-day certificate
	// lifetime keeps expiry far ahead.
	return &testClock{t: time.Now().Add(-time.Hour)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestKeepaliveLivenessEviction pins the liveness contract: a client whose
// keepalive pongs keep arriving is never evicted, while a silent client is
// evicted within one TTL plus one sweep tick.
func TestKeepaliveLivenessEviction(t *testing.T) {
	const ttl = time.Minute
	clk := newTestClock()
	var evictedIDs []string
	d := newDeployment(t, DeploymentOptions{
		Clock:         clk.Now,
		SessionTTL:    ttl,
		SweepInterval: -1,
		Observer: ObserverFuncs{
			OnEvicted: func(id string) { evictedIDs = append(evictedIDs, id) },
		},
	})
	chatty := addClient(t, d, "chatty", ClientSpec{UseCase: click.UseCaseNOP})
	addClient(t, d, "silent", ClientSpec{UseCase: click.UseCaseNOP})

	// Four 14s steps (56s total, just under the TTL): the chatty client
	// answers with a keepalive each step (an authenticated frame through
	// HandleFrame — the liveness touch), the silent one does nothing.
	for i := 0; i < 4; i++ {
		clk.Advance(14 * time.Second)
		if err := chatty.SendPing(); err != nil {
			t.Fatalf("keepalive %d: %v", i, err)
		}
		if got := d.SweepSessions(); len(got) != 0 {
			t.Fatalf("premature eviction at step %d: %v", i, got)
		}
	}

	// Past the silent client's deadline (TTL + 2s, within one sweep tick
	// of the lapse): exactly it must go.
	clk.Advance(6 * time.Second)
	got := d.SweepSessions()
	if len(got) != 1 || got[0] != "silent" {
		t.Fatalf("SweepSessions = %v, want [silent]", got)
	}
	if len(evictedIDs) != 1 || evictedIDs[0] != "silent" {
		t.Errorf("observer saw evictions %v, want [silent]", evictedIDs)
	}
	if _, ok := d.Client("silent"); ok {
		t.Error("evicted client still registered with the deployment")
	}
	if _, err := d.Server.VPN().Stats("silent"); err == nil {
		t.Error("evicted client still has a VPN session")
	}

	// The live client is untouched: its session still moves traffic.
	pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("still here"))
	if err := chatty.SendPacket(pkt); err != nil {
		t.Fatalf("survivor SendPacket: %v", err)
	}

	st := d.LifecycleStats()
	if st.Sessions.Evicted != 1 || st.Sessions.Active != 1 {
		t.Errorf("LifecycleStats = %+v, want 1 evicted / 1 active", st.Sessions)
	}

	// The evicted client may rejoin with a fresh handshake.
	addClient(t, d, "silent", ClientSpec{UseCase: click.UseCaseNOP})
}

// TestReconnectAfterCrash pins the stale-duplicate takeover: a client that
// crashed and rebooted reconnects under its old ID once its liveness
// lapsed — even before any sweep ran — while a still-live duplicate is
// refused.
func TestReconnectAfterCrash(t *testing.T) {
	const ttl = time.Minute
	clk := newTestClock()
	d := newDeployment(t, DeploymentOptions{
		Clock:         clk.Now,
		SessionTTL:    ttl,
		SweepInterval: -1,
	})
	addClient(t, d, "x", ClientSpec{UseCase: click.UseCaseNOP})
	addrBefore, _ := d.ClientAddr("x")

	// Live duplicate: refused.
	if _, err := d.AddClient(context.Background(), "x", ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP}); err == nil {
		t.Fatal("duplicate AddClient for a live session succeeded")
	}

	// Crash: the client process is gone but no sweep has run, so the dead
	// session still occupies the table. The reconnect must take it over.
	clk.Advance(ttl + 2*time.Second)
	reborn, err := d.AddClient(context.Background(), "x", ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP})
	if err != nil {
		t.Fatalf("reconnect after crash: %v", err)
	}
	if addrAfter, _ := d.ClientAddr("x"); addrAfter != addrBefore {
		t.Errorf("reconnect address %v, want the reclaimed %v", addrAfter, addrBefore)
	}
	pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("back"))
	if err := reborn.SendPacket(pkt); err != nil {
		t.Fatalf("reborn SendPacket: %v", err)
	}
	if n := d.Server.VPN().ClientCount(); n != 1 {
		t.Errorf("ClientCount = %d after takeover, want 1", n)
	}
}

// TestAddrReuseNoAliasing is the regression guard for RemoveClient →
// AddClient address recycling: the freed VIF address is reused, and no
// shard of the session table still maps the removed client.
func TestAddrReuseNoAliasing(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	addClient(t, d, "a", ClientSpec{UseCase: click.UseCaseNOP})
	addClient(t, d, "b", ClientSpec{UseCase: click.UseCaseNOP})
	addrA, _ := d.ClientAddr("a")

	d.RemoveClient("a")
	d.mu.Lock()
	onFreeList := len(d.freeAddrs) == 1 && d.freeAddrs[0] == addrA
	d.mu.Unlock()
	if !onFreeList {
		t.Fatalf("released address %v not on the free list", addrA)
	}

	addClient(t, d, "c", ClientSpec{UseCase: click.UseCaseNOP})
	addrC, _ := d.ClientAddr("c")
	if addrC != addrA {
		t.Fatalf("new client got %v, want the recycled %v", addrC, addrA)
	}

	// The reused address must not alias the dead client anywhere: not in
	// the deployment's address maps, not in any session-table shard.
	d.mu.Lock()
	owner := d.addrs[addrA]
	free := len(d.freeAddrs)
	d.mu.Unlock()
	if owner != "c" || free != 0 {
		t.Errorf("address %v owned by %q (free list %d), want c/0", addrA, owner, free)
	}
	if _, err := d.Server.VPN().Stats("a"); err == nil {
		t.Error("removed client still present in the session table")
	}
	if n := d.Server.VPN().ClientCount(); n != 2 {
		t.Errorf("ClientCount = %d, want 2", n)
	}
}

// TestResumeClientInProcess drives the fast-resume path end to end over
// the in-process transport: snapshot, simulated crash, resume, traffic.
func TestResumeClientInProcess(t *testing.T) {
	var resumedIDs []string
	var received int
	d := newDeployment(t, DeploymentOptions{
		EchoNetwork: true,
		SessionTTL:  time.Minute,
		// Background sweeps off: the test controls time only implicitly
		// (real clock), and nothing here idles near the TTL.
		SweepInterval: -1,
		Observer: ObserverFuncs{
			OnResumed:  func(id string) { resumedIDs = append(resumedIDs, id) },
			OnReceived: func(string, []byte) { received++ },
		},
	})
	spec := ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP}
	addClient(t, d, "r1", spec)
	addrBefore, _ := d.ClientAddr("r1")

	state, err := d.ResumeState("r1")
	if err != nil {
		t.Fatal(err)
	}
	if state.ClientID != "r1" || len(state.Ticket) == 0 || len(state.Secret) == 0 || len(state.SealedIdentity) == 0 {
		t.Fatalf("incomplete resume state: %+v", state)
	}

	// "Crash": the deployment still holds the old incarnation; resume
	// replaces it — ticket plus attested signature prove the principal.
	cli, err := d.ResumeClient(context.Background(), state, spec)
	if err != nil {
		t.Fatalf("ResumeClient: %v", err)
	}
	if addrAfter, _ := d.ClientAddr("r1"); addrAfter != addrBefore {
		t.Errorf("resumed address %v, want the original %v", addrAfter, addrBefore)
	}
	if len(resumedIDs) != 1 || resumedIDs[0] != "r1" {
		t.Errorf("observer saw resumes %v, want [r1]", resumedIDs)
	}

	// Traffic in both directions through the resumed session (echo).
	pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("resumed"))
	if err := cli.SendPacket(pkt); err != nil {
		t.Fatalf("SendPacket after resume: %v", err)
	}
	if received != 1 {
		t.Errorf("client received %d echoes after resume, want 1", received)
	}

	st := d.LifecycleStats()
	if st.Sessions.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", st.Sessions.Resumed)
	}
	// No takeover at the VPN layer: ResumeClient disconnects the local
	// stale incarnation before resuming, so the slot was already free.
	if st.Sessions.Takeovers != 0 {
		t.Errorf("Takeovers = %d, want 0", st.Sessions.Takeovers)
	}
}

// TestResumeAfterEviction resumes a session the sweeper already evicted:
// the deployment state is gone, the ticket is still valid, and the client
// gets its old address back off the free list.
func TestResumeAfterEviction(t *testing.T) {
	const ttl = time.Minute
	clk := newTestClock()
	d := newDeployment(t, DeploymentOptions{
		Clock:         clk.Now,
		SessionTTL:    ttl,
		SweepInterval: -1,
	})
	spec := ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP}
	addClient(t, d, "r2", spec)
	addrBefore, _ := d.ClientAddr("r2")
	state, err := d.ResumeState("r2")
	if err != nil {
		t.Fatal(err)
	}

	clk.Advance(ttl + 2*time.Second)
	if got := d.SweepSessions(); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("SweepSessions = %v, want [r2]", got)
	}

	cli, err := d.ResumeClient(context.Background(), state, spec)
	if err != nil {
		t.Fatalf("ResumeClient after eviction: %v", err)
	}
	if addrAfter, _ := d.ClientAddr("r2"); addrAfter != addrBefore {
		t.Errorf("resumed address %v, want the reclaimed %v", addrAfter, addrBefore)
	}
	pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("resumed"))
	if err := cli.SendPacket(pkt); err != nil {
		t.Fatalf("SendPacket after resume: %v", err)
	}
}

// TestAdmissionMaxSessions pins the hard session bound and its typed
// error, and that removing a client frees capacity.
func TestAdmissionMaxSessions(t *testing.T) {
	var refused []error
	d := newDeployment(t, DeploymentOptions{
		Admission: lifecycle.AdmissionConfig{MaxSessions: 2},
		Observer: ObserverFuncs{
			OnRefused: func(_ string, err error) { refused = append(refused, err) },
		},
	})
	addClient(t, d, "s1", ClientSpec{UseCase: click.UseCaseNOP})
	addClient(t, d, "s2", ClientSpec{UseCase: click.UseCaseNOP})

	_, err := d.AddClient(context.Background(), "s3", ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP})
	if !errors.Is(err, lifecycle.ErrServerFull) {
		t.Fatalf("third AddClient error = %v, want ErrServerFull", err)
	}
	if len(refused) != 1 || !errors.Is(refused[0], lifecycle.ErrServerFull) {
		t.Errorf("observer saw refusals %v, want one ErrServerFull", refused)
	}
	if st := d.LifecycleStats(); st.Admission.RefusedFull != 1 || st.Admission.Admitted != 2 {
		t.Errorf("admission stats = %+v, want 2 admitted / 1 refused-full", st.Admission)
	}

	d.RemoveClient("s1")
	addClient(t, d, "s3", ClientSpec{UseCase: click.UseCaseNOP})
}

// TestAdmissionHandshakeRate pins the token bucket on the deployment
// clock: burst exhausted → throttled; time passes → admitted again.
func TestAdmissionHandshakeRate(t *testing.T) {
	clk := newTestClock()
	d := newDeployment(t, DeploymentOptions{
		Clock:     clk.Now,
		Admission: lifecycle.AdmissionConfig{HandshakeRate: 1, HandshakeBurst: 1},
	})
	addClient(t, d, "t1", ClientSpec{UseCase: click.UseCaseNOP})

	_, err := d.AddClient(context.Background(), "t2", ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP})
	if !errors.Is(err, lifecycle.ErrAdmissionThrottled) {
		t.Fatalf("burst-exhausted AddClient error = %v, want ErrAdmissionThrottled", err)
	}

	clk.Advance(2 * time.Second) // refills one token at 1/s
	addClient(t, d, "t2", ClientSpec{UseCase: click.UseCaseNOP})
	if st := d.LifecycleStats(); st.Admission.Throttled != 1 {
		t.Errorf("Throttled = %d, want 1", st.Admission.Throttled)
	}
}

// TestConnectStormBounded is the acceptance scenario: a storm of
// concurrent joins against a hard session bound. MaxConcurrent serialises
// the handshakes so the bound is exact; every worker retries through
// throttling until it is either admitted or told the server is full, and
// the session count ends exactly at the bound.
func TestConnectStormBounded(t *testing.T) {
	const bound = 8
	const workers = 24
	d := newDeployment(t, DeploymentOptions{
		Admission: lifecycle.AdmissionConfig{MaxSessions: bound, MaxConcurrent: 1},
	})

	var wg sync.WaitGroup
	results := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("storm-%02d", i)
			for {
				_, err := d.AddClient(context.Background(), id, ClientSpec{Mode: sgx.ModeSimulation, UseCase: click.UseCaseNOP})
				if errors.Is(err, lifecycle.ErrAdmissionThrottled) {
					continue // back off and retry, like a real client
				}
				results[i] = err
				return
			}
		}()
	}
	wg.Wait()

	admitted, full := 0, 0
	for i, err := range results {
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, lifecycle.ErrServerFull):
			full++
		default:
			t.Errorf("worker %d: unexpected error %v", i, err)
		}
	}
	if admitted != bound || full != workers-bound {
		t.Errorf("storm admitted %d / refused-full %d, want %d / %d", admitted, full, bound, workers-bound)
	}
	if n := d.Server.VPN().ClientCount(); n != bound {
		t.Errorf("ClientCount = %d after storm, want %d", n, bound)
	}

	// The admitted sessions still move traffic.
	for i := 0; i < workers; i++ {
		if results[i] == nil {
			cli, _ := d.Client(fmt.Sprintf("storm-%02d", i))
			pkt := packet.NewUDP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), 1, 2, []byte("x"))
			if err := cli.SendPacket(pkt); err != nil {
				t.Fatalf("admitted client %d: SendPacket: %v", i, err)
			}
			break
		}
	}
}
