package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/config"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/tlstap"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

func newDeployment(t *testing.T, opts DeploymentOptions) *Deployment {
	t.Helper()
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func addClient(t *testing.T, d *Deployment, id string, spec ClientSpec) *Client {
	t.Helper()
	if spec.Mode == 0 {
		spec.Mode = sgx.ModeSimulation
	}
	c, err := d.AddClient(context.Background(), id, spec)
	if err != nil {
		t.Fatalf("AddClient(%s): %v", id, err)
	}
	return c
}

func publish(t *testing.T, d *Deployment, u *config.Update) {
	t.Helper()
	if err := d.Server.PublishUpdate(context.Background(), u); err != nil {
		t.Fatalf("PublishUpdate(v%d): %v", u.Version, err)
	}
}

func udpTo(t *testing.T, src, dst packet.Addr, payload string) []byte {
	t.Helper()
	return packet.NewUDP(src, dst, 40000, 80, []byte(payload))
}

func TestEndToEndTrafficBothModes(t *testing.T) {
	for _, mode := range []sgx.Mode{sgx.ModeSimulation, sgx.ModeHardware} {
		t.Run(mode.String(), func(t *testing.T) {
			var delivered, received [][]byte
			d := newDeployment(t, DeploymentOptions{
				Observer: ObserverFuncs{
					OnDelivered: func(_ string, ip []byte) {
						delivered = append(delivered, append([]byte(nil), ip...))
					},
					OnReceived: func(_ string, ip []byte) {
						received = append(received, append([]byte(nil), ip...))
					},
				},
				EchoNetwork: true,
			})
			c := addClient(t, d, "c1", ClientSpec{
				Mode:    mode,
				UseCase: click.UseCaseNOP,
			})

			out := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "hello network")
			if err := c.SendPacket(out); err != nil {
				t.Fatalf("SendPacket: %v", err)
			}
			if len(delivered) != 1 {
				t.Fatalf("delivered %d packets", len(delivered))
			}
			if string(delivered[0]) != string(out) {
				t.Error("packet mutated in transit")
			}
			// Echo came back through ingress Click and decryption.
			if len(received) != 1 {
				t.Fatalf("client received %d packets", len(received))
			}
			echo, err := packet.ParseIPv4(received[0])
			if err != nil {
				t.Fatal(err)
			}
			if echo.Src != packet.AddrFrom(192, 0, 2, 1) {
				t.Errorf("echo src = %v", echo.Src)
			}
		})
	}
}

func TestEnclaveFirewallDropsEgress(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	c := addClient(t, d, "c1", ClientSpec{
		ClickConfig: "FromDevice -> IPFilter(drop dst host 203.0.113.9, allow all) -> ToDevice;",
	})
	blocked := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(203, 0, 113, 9), "exfil")
	if err := c.SendPacket(blocked); !errors.Is(err, vpn.ErrDropped) {
		t.Errorf("blocked packet: err = %v, want ErrDropped", err)
	}
	ok := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "fine")
	if err := c.SendPacket(ok); err != nil {
		t.Errorf("allowed packet: %v", err)
	}
}

func TestIDPSEnforcementWithAlerts(t *testing.T) {
	var alerts []click.Alert
	d := newDeployment(t, DeploymentOptions{
		Observer: ObserverFuncs{
			OnAlert: func(_ string, a click.Alert) { alerts = append(alerts, a) },
		},
	})
	c := addClient(t, d, "c1", ClientSpec{
		ClickConfig: "FromDevice -> IDSMatcher(RULESET strict, MODE enforce) -> ToDevice;",
		ExtraRuleSets: map[string]string{
			"strict": `drop tcp any any -> any any (msg:"worm"; content:"X-Worm"; sid:7;)`,
		},
	})
	evil := packet.NewTCP(packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1),
		40000, 80, 1, 0, packet.TCPAck, []byte("X-Worm payload"))
	if err := c.SendPacket(evil); !errors.Is(err, vpn.ErrDropped) {
		t.Errorf("worm not dropped: %v", err)
	}
	if len(alerts) != 1 || alerts[0].SID != 7 {
		t.Errorf("alerts = %+v", alerts)
	}
}

func TestConfigUpdateFullLifecycle(t *testing.T) {
	// Paper Fig. 5, all nine steps, driven end to end.
	now := time.Now()
	d := newDeployment(t, DeploymentOptions{
		Clock:          func() time.Time { return now },
		EncryptConfigs: true, // enterprise scenario
	})
	c := addClient(t, d, "c1", ClientSpec{UseCase: click.UseCaseNOP})
	dst := packet.AddrFrom(203, 0, 113, 9)
	pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), dst, "probe")

	// Version 0: traffic to the target flows.
	if err := c.SendPacket(pkt); err != nil {
		t.Fatalf("initial traffic: %v", err)
	}

	// Steps 1-4: admin publishes version 1 blocking the target.
	publish(t, d, &config.Update{
		Version:      1,
		GraceSeconds: 60,
		ClickConfig:  "FromDevice -> IPFilter(drop dst host 203.0.113.9, allow all) -> ToDevice;",
	})

	// Steps 5-9 ran inline from the ping: client fetched, decrypted inside
	// the enclave, hot-swapped, and reported the new version.
	if got := c.AppliedVersion(); got != 1 {
		t.Fatalf("AppliedVersion = %d, want 1 (update error: %v)", got, c.LastUpdateError())
	}
	if v, _ := d.Server.VPN().ReportedVersion("c1"); v != 1 {
		t.Errorf("server recorded version %d", v)
	}

	// The new middlebox behaviour is active.
	if err := c.SendPacket(pkt); !errors.Is(err, vpn.ErrDropped) {
		t.Errorf("updated firewall not enforced: %v", err)
	}
}

func TestStaleClientBlockedAfterGrace(t *testing.T) {
	now := time.Now()
	d := newDeployment(t, DeploymentOptions{Clock: func() time.Time { return now }})
	c := addClient(t, d, "c1", ClientSpec{UseCase: click.UseCaseNOP})

	// Break the client's fetch path so it cannot update (a malicious or
	// partitioned client holding on to the old configuration).
	c.opts.FetchConfig = func(uint64) ([]byte, error) {
		return nil, errors.New("client refuses to fetch")
	}
	publish(t, d, &config.Update{
		Version:      1,
		GraceSeconds: 30,
		ClickConfig:  click.StandardConfig(click.UseCaseNOP),
	})

	pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "x")
	// Within grace: old version still accepted.
	if err := c.SendPacket(pkt); err != nil {
		t.Errorf("grace-period traffic blocked: %v", err)
	}
	// After grace: blocked.
	now = now.Add(31 * time.Second)
	if err := c.SendPacket(pkt); !errors.Is(err, vpn.ErrStaleConfig) {
		t.Errorf("stale client not blocked: %v", err)
	}
}

func TestConfigRollbackRejectedInEnclave(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	c := addClient(t, d, "c1", ClientSpec{UseCase: click.UseCaseNOP})

	for v := uint64(1); v <= 2; v++ {
		publish(t, d, &config.Update{
			Version:      v,
			GraceSeconds: 60,
			ClickConfig:  click.StandardConfig(click.UseCaseNOP),
		})
	}
	if c.AppliedVersion() != 2 {
		t.Fatalf("applied = %d", c.AppliedVersion())
	}
	// Replay the version-1 blob directly (host-controlled fetch): the
	// enclave's monotonicity check rejects it.
	blob, err := d.Server.Configs().Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyUpdateBlob(blob); !errors.Is(err, ErrStaleUpdate) {
		t.Errorf("rollback accepted: err = %v", err)
	}
	if c.AppliedVersion() != 2 {
		t.Error("applied version regressed")
	}
}

func TestSealedIdentitySkipsReattestation(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	c1 := addClient(t, d, "c1", ClientSpec{UseCase: click.UseCaseNOP})
	sealed := c1.SealedIdentity()
	if len(sealed) == 0 {
		t.Fatal("no sealed identity")
	}
	c1.Close()
	d.Server.VPN().Disconnect("c1")

	// Restart on the same machine: restore the identity without QE or
	// enrolment (paper §III-C: attested once).
	c2, err := NewClient(ClientOptions{
		ID:             "c1",
		CPU:            c1.opts.CPU,
		Mode:           sgx.ModeSimulation,
		CAPub:          d.CA.PublicKey(),
		SealedIdentity: sealed,
		ClickConfig:    click.StandardConfig(click.UseCaseNOP),
		RuleSets:       CommunityRuleSets(),
		Send:           func(frame []byte) error { return d.Server.VPN().HandleFrame("c1", frame) },
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer c2.Close()
	if err := c2.Connect(context.Background(), d.Server.VPN().Accept); err != nil {
		t.Fatalf("reconnect with sealed identity: %v", err)
	}
	if err := c2.SendPacket(udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "x")); err != nil {
		t.Errorf("traffic after restore: %v", err)
	}

	// A different machine cannot unseal the identity.
	otherCPU := sgx.NewCPU("attacker-machine")
	if _, err := NewClient(ClientOptions{
		ID:             "thief",
		CPU:            otherCPU,
		Mode:           sgx.ModeSimulation,
		CAPub:          d.CA.PublicKey(),
		SealedIdentity: sealed,
		ClickConfig:    click.StandardConfig(click.UseCaseNOP),
		Send:           func([]byte) error { return nil },
	}); !errors.Is(err, sgx.ErrSealCorrupt) {
		t.Errorf("cross-machine unseal: err = %v", err)
	}
}

func TestUnapprovedEnclaveDenied(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	// Revoke the client measurement before enrolment: the CA refuses even
	// a genuine platform running the wrong (or withdrawn) build.
	d.CA.RevokeMeasurement(ClientImage(d.CA.PublicKey()).Measure())
	cpu := sgx.NewCPU("denied")
	qe, err := attest.NewQuotingEnclave(cpu, "platform-denied")
	if err != nil {
		t.Fatal(err)
	}
	d.IAS.RegisterPlatform(qe)
	_, err = NewClient(ClientOptions{
		ID:          "denied",
		CPU:         cpu,
		Mode:        sgx.ModeSimulation,
		CAPub:       d.CA.PublicKey(),
		QE:          qe,
		Enroll:      d.CA.Enroll,
		ClickConfig: click.StandardConfig(click.UseCaseNOP),
		Send:        func([]byte) error { return nil },
	})
	if err == nil {
		t.Fatal("unapproved measurement enrolled")
	}
}

func TestTLSInspectionEndToEnd(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	c := addClient(t, d, "c1", ClientSpec{
		ClickConfig: "FromDevice -> TLSDecrypt(PORT 443) -> IDSMatcher(RULESET strict, MODE enforce) -> ToDevice;",
		ExtraRuleSets: map[string]string{
			"strict": `drop tcp any any -> any any (msg:"hidden worm"; content:"X-Worm"; sid:9;)`,
		},
	})
	flow := packet.Flow{
		Src: packet.AddrFrom(10, 8, 0, 2), SrcPort: 40000,
		Dst: packet.AddrFrom(93, 184, 216, 34), DstPort: 443,
		Protocol: packet.ProtoTCP,
	}
	// Modified TLS library forwards the session key into the enclave via
	// the management interface (paper §III-D).
	lib := tlstap.NewClientLibrary(func(f packet.Flow, k tlstap.SessionKey) {
		if err := c.ForwardTLSKey(f, k); err != nil {
			t.Errorf("ForwardTLSKey: %v", err)
		}
	})
	if _, err := lib.Handshake(flow); err != nil {
		t.Fatal(err)
	}

	send := func(payload []byte) error {
		rec, err := lib.Encrypt(flow, payload)
		if err != nil {
			t.Fatal(err)
		}
		raw := packet.NewTCP(flow.Src, flow.Dst, flow.SrcPort, flow.DstPort, 1, 0, packet.TCPAck, rec)
		return c.SendPacket(raw)
	}
	if err := send([]byte("X-Worm exfiltration attempt")); !errors.Is(err, vpn.ErrDropped) {
		t.Errorf("encrypted worm not dropped: %v", err)
	}
	if err := send([]byte("GET / HTTP/1.1")); err != nil {
		t.Errorf("clean TLS traffic dropped: %v", err)
	}
}

func TestClientToClientFlagBypass(t *testing.T) {
	// Client B's firewall would drop A's probe packets if processed; with
	// the 0xeb flag set by A and honoured by B, B skips re-processing and
	// delivers (paper §IV-A).
	run := func(flagged bool) (deliveredAtB bool) {
		got := false
		d, err := NewDeployment(DeploymentOptions{
			RouteBetweenClients: true,
			Observer: ObserverFuncs{
				OnReceived: func(id string, _ []byte) {
					if id == "b" {
						got = true
					}
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		a, err := d.AddClient(context.Background(), "a", ClientSpec{
			Mode:               sgx.ModeSimulation,
			UseCase:            click.UseCaseNOP,
			FlagClientToClient: flagged,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = d.AddClient(context.Background(), "b", ClientSpec{
			Mode:               sgx.ModeSimulation,
			ClickConfig:        "FromDevice -> IPFilter(drop src net 10.8.0.0/16 && proto udp, allow all) -> ToDevice;",
			FlagClientToClient: flagged,
		})
		if err != nil {
			t.Fatal(err)
		}
		bAddr, ok := d.ClientAddr("b")
		if !ok {
			t.Fatal("no address for b")
		}
		aAddr, _ := d.ClientAddr("a")
		_ = a.SendPacket(packet.NewUDP(aAddr, bAddr, 5000, 6000, []byte("c2c probe")))
		return got
	}

	if !run(true) {
		t.Error("flagged client-to-client packet was not delivered (bypass broken)")
	}
	if run(false) {
		t.Error("unflagged packet bypassed B's middlebox")
	}
}

func TestExternalCannotForgeProcessedFlag(t *testing.T) {
	// External traffic arriving with TOS=0xeb must be scrubbed by the
	// server, so B's middlebox still inspects it (paper §IV-A).
	processed := 0
	d := newDeployment(t, DeploymentOptions{
		EchoNetwork: true,
		Observer: ObserverFuncs{
			OnReceived: func(string, []byte) { processed++ },
		},
	})
	c := addClient(t, d, "b", ClientSpec{
		ClickConfig:        "FromDevice -> cnt :: Counter -> ToDevice;",
		FlagClientToClient: true,
	})
	// Craft external packet with the flag set; EchoNetwork sends it from
	// the "network" side (fromClient=false → scrubbed).
	evil := packet.IPv4{
		TOS: packet.ProcessedTOS, TTL: 64, Protocol: packet.ProtoUDP,
		Src: packet.AddrFrom(10, 8, 0, 2), Dst: packet.AddrFrom(198, 51, 100, 1),
		Payload: (&packet.UDP{SrcPort: 1, DstPort: 2, Payload: []byte("x")}).Marshal(),
	}
	if err := c.SendPacket(evil.Marshal()); err != nil {
		t.Fatal(err)
	}
	if processed != 1 {
		t.Fatalf("echo not delivered")
	}
}

func TestEcallBatchingTransitionCounts(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	batched := addClient(t, d, "fast", ClientSpec{UseCase: click.UseCaseNOP})
	naive := addClient(t, d, "slow", ClientSpec{UseCase: click.UseCaseNOP, NaiveEcalls: true})

	pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "x")
	const n = 10

	before := batched.EnclaveStats().Transitions
	for i := 0; i < n; i++ {
		if err := batched.SendPacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	batchedPer := (batched.EnclaveStats().Transitions - before) / n

	before = naive.EnclaveStats().Transitions
	for i := 0; i < n; i++ {
		if err := naive.SendPacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	naivePer := (naive.EnclaveStats().Transitions - before) / n

	if batchedPer != 2 {
		t.Errorf("batched transitions per packet = %d, want 2 (one ecall)", batchedPer)
	}
	if naivePer != 6 {
		t.Errorf("naive transitions per packet = %d, want 6 (three ecalls)", naivePer)
	}
}

func TestEnclaveDoSOnlyHurtsSelf(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	victim := addClient(t, d, "victim", ClientSpec{UseCase: click.UseCaseNOP})
	other := addClient(t, d, "other", ClientSpec{UseCase: click.UseCaseNOP})

	victim.Close() // host refuses to run the enclave
	pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "x")
	if err := victim.SendPacket(pkt); !errors.Is(err, sgx.ErrDestroyed) {
		t.Errorf("destroyed enclave still sends: %v", err)
	}
	if err := other.SendPacket(pkt); err != nil {
		t.Errorf("unrelated client affected: %v", err)
	}
}

func TestMiddleboxFailureIsolatedToClient(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{})
	broken := addClient(t, d, "broken", ClientSpec{
		ClickConfig: "FromDevice -> Discard;", // middlebox black-holes everything
	})
	healthy := addClient(t, d, "healthy", ClientSpec{UseCase: click.UseCaseNOP})

	pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "x")
	if err := broken.SendPacket(pkt); !errors.Is(err, vpn.ErrDropped) {
		t.Errorf("broken middlebox: %v", err)
	}
	if err := healthy.SendPacket(pkt); err != nil {
		t.Errorf("healthy client affected by peer failure: %v", err)
	}
}

func TestISPIntegrityOnlyDeployment(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{Mode: wire.ModeIntegrityOnly})
	c := addClient(t, d, "isp-sub", ClientSpec{UseCase: click.UseCaseDDoS})
	pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "cleartext ok")
	if err := c.SendPacket(pkt); err != nil {
		t.Fatalf("ISP-mode traffic failed: %v", err)
	}
}

func TestBaselinePairs(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Baseline
		uc   click.UseCase
	}{
		{"vanilla", BaselineVanillaOpenVPN, 0},
		{"openvpn+click NOP", BaselineOpenVPNClick, click.UseCaseNOP},
		{"openvpn+click FW", BaselineOpenVPNClick, click.UseCaseFW},
		{"openvpn+click IDPS", BaselineOpenVPNClick, click.UseCaseIDPS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pair, err := NewBaselinePair(tc.b, tc.uc, wire.ModeEncrypted)
			if err != nil {
				t.Fatal(err)
			}
			pkt := udpTo(t, packet.AddrFrom(10, 8, 0, 2), packet.AddrFrom(192, 0, 2, 1), "baseline")
			for i := 0; i < 5; i++ {
				if err := pair.Client.SendPacket(pkt); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if pair.Delivered != 5 {
				t.Errorf("delivered = %d", pair.Delivered)
			}
		})
	}
}

func TestUpdateTimingBreakdown(t *testing.T) {
	d := newDeployment(t, DeploymentOptions{EncryptConfigs: true})
	c := addClient(t, d, "c1", ClientSpec{UseCase: click.UseCaseNOP})
	publish(t, d, &config.Update{
		Version:      1,
		GraceSeconds: 60,
		ClickConfig:  click.StandardConfig(click.UseCaseFW),
	})
	blob, err := d.Server.Configs().Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	// Applying the same version again fails, so publish v2 for timing.
	publish(t, d, &config.Update{
		Version:      2,
		GraceSeconds: 60,
		ClickConfig:  click.StandardConfig(click.UseCaseNOP),
	})
	_ = blob
	timing, err := c.ApplyUpdateBlob(mustFetch(t, d, 2))
	if !errors.Is(err, ErrStaleUpdate) {
		// v2 was already applied via the announce; expected stale.
		if err != nil {
			t.Fatalf("ApplyUpdateBlob: %v", err)
		}
		if timing.Hotswap <= 0 {
			t.Error("hotswap duration not measured")
		}
	}
}

func mustFetch(t *testing.T, d *Deployment, v uint64) []byte {
	t.Helper()
	blob, err := d.Server.Configs().Fetch(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
