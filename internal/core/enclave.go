// Package core composes EndBox from its substrates: the SGX-protected
// client (VPN crypto + Click middlebox inside an enclave), the VPN server
// that is the managed network's sole entry point, the management plane for
// configuration updates, and the baseline deployments the paper compares
// against (vanilla OpenVPN and server-side OpenVPN+Click).
//
// The partitioning follows paper Fig. 3: packet en-/decryption, MAC
// handling, Click processing, configuration decryption and key material
// live inside the enclave (this file); fragmentation, encapsulation, socket
// I/O and configuration fetching stay outside (client.go).
package core

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"endbox/internal/attest"
	"endbox/internal/click"
	"endbox/internal/config"
	"endbox/internal/flow"
	"endbox/internal/idps"
	"endbox/internal/packet"
	"endbox/internal/sgx"
	"endbox/internal/tlstap"
	"endbox/internal/vpn"
	"endbox/internal/wire"
)

// ClientImage is the enclave image of the EndBox client. Its InitData
// carries the CA public key, pre-deployed at compile time to prevent MITM
// attacks during bootstrap (paper §III-C).
func ClientImage(caPub ed25519.PublicKey) sgx.Image {
	return ClientImageVersion(caPub, "")
}

// ClientImageVersion is the enclave image of a specific client build:
// the version string participates in the measurement, so every build the
// operator ships has a distinct code identity the policy registry can
// name, target and revoke. The empty version selects the default build
// ("1.0.0", identical to ClientImage).
func ClientImageVersion(caPub ed25519.PublicKey, version string) sgx.Image {
	if version == "" {
		version = "1.0.0"
	}
	return sgx.Image{
		Name:     "endbox-client",
		Version:  version,
		Code:     []byte("openvpn-sensitive+talos+click+sgxsdk"),
		InitData: append([]byte("ca-public-key:"), caPub...),
	}
}

// Ecall names of the EndBox enclave interface. Only the four starred calls
// run during normal operation (paper §IV-B: "ENDBOX defines only 4 ecalls
// that are executed during normal operation"); the rest are initialisation.
const (
	ecallKeygen          = "keygen"
	ecallProvision       = "provision"
	ecallRestore         = "restore"
	ecallHsSign          = "hs_sign"
	ecallHsFinish        = "hs_finish"
	ecallExportResume    = "export_resume"
	ecallResumeFinish    = "resume_finish"
	ecallInitClick       = "init_click"
	ecallProcessOut      = "process_out"       // *
	ecallProcessOutBatch = "process_out_batch" // *
	ecallProcessIn       = "process_in"        // *
	ecallProcessInBatch  = "process_in_batch"  // *
	ecallControlMAC      = "control_mac"       // *
	ecallControlVrfy     = "control_vrfy"      // *
	ecallApplyConfig     = "apply_config"
	ecallForwardKey      = "forward_tls_key"
	ecallGetCert         = "get_cert"
	ecallPipelineStats   = "pipeline_stats"
	ecallFlowStats       = "flow_stats"
	ecallHealthReport    = "health_report"
	// Naive per-stage ecalls used only by the §V-G(1) ablation.
	ecallNaiveClick = "naive_click"
	ecallNaiveCrypt = "naive_encrypt"
	ecallNaiveMAC   = "naive_mac"
)

// Enclave-state errors.
var (
	ErrNotProvisioned = errors.New("core: enclave not provisioned")
	ErrNoSession      = errors.New("core: VPN session not established")
	ErrStaleUpdate    = errors.New("core: configuration version not newer than applied")
)

// enclaveState is everything that must never leave the enclave. It is only
// reachable through the registered ecalls.
type enclaveState struct {
	caPub ed25519.PublicKey

	signPriv ed25519.PrivateKey
	boxPriv  *ecdh.PrivateKey
	cert     *attest.Certificate
	shared   []byte
	// buildKey is the per-measurement configuration key the CA provisioned
	// alongside the fleet-shared key: updates sealed to this enclave's
	// build decrypt under it, and only enclaves attesting the same
	// measurement ever receive it (config.SealTo / OpenFor).
	buildKey []byte

	session *wire.Session
	// master is the current VPN session's master secret, retained for
	// fast resume: the resumed master is derived from it inside the
	// enclave, so it never crosses the boundary except sealed.
	master  []byte
	router  *click.Instance
	keys    *tlstap.KeyTable
	applied uint64
	flagC2C bool
	mode    wire.Mode
	minTLS  uint16
	ruleSet map[string]string

	// marshalBuf is the reusable serialisation scratch for packets the
	// middlebox rewrote. Ecall handlers run serialised (single TCS), so
	// one scratch per enclave is race-free; its contents are only valid
	// until the next ecall.
	marshalBuf []byte

	lastSwap SwapTiming
}

// SwapTiming is the in-enclave phase breakdown of a configuration update
// (Table II's decrypt and hotswap rows).
type SwapTiming struct {
	Decrypt time.Duration
	Hotswap time.Duration
}

// sealedIdentity is the enclave-persistent identity (paper §III-C step 7:
// "the enclave persistently stores the generated key pair as well as the
// certificate using the SGX sealing feature").
type sealedIdentity struct {
	SignPriv []byte `json:"sign_priv"`
	BoxPriv  []byte `json:"box_priv"`
	Cert     []byte `json:"cert"`
	Shared   []byte `json:"shared"`
	BuildKey []byte `json:"build_key,omitempty"`
}

// provisionArg crosses the boundary for ecallProvision.
type provisionArg struct {
	prov *attest.Provision
}

// hsFinishArg crosses the boundary for ecallHsFinish.
type hsFinishArg struct {
	st *vpn.HandshakeState
	sh *vpn.ServerHello
}

// sealedResume is the enclave-sealed session secret a client exports to
// survive a restart: presenting it back (with the server's resumption
// ticket) re-establishes the session without re-attesting.
type sealedResume struct {
	Master []byte `json:"master"`
}

// resumeFinishArg crosses the boundary for ecallResumeFinish. sealed is
// the exported resume secret; empty selects the in-memory master (an
// in-place resume after the server evicted the session).
type resumeFinishArg struct {
	sealed []byte
	req    *vpn.ResumeRequest
	reply  *vpn.ResumeReply
}

// initClickArg configures the in-enclave Click instance.
type initClickArg struct {
	clickConfig  string
	ruleSets     map[string]string
	version      uint64
	flagC2C      bool
	mode         wire.Mode
	minTLS       uint16
	flowCapacity int
	flowTTL      time.Duration
	failure      click.FailurePolicy
}

// applyConfigArg carries a fetched (possibly encrypted) update blob.
// allowRollback waives the monotonic-version check for the client's local
// self-revert to last-known-good: the blob is still CA-signed (any
// previously published version can be re-applied, nothing else), so the
// replay surface is limited to configurations the operator shipped.
// expectApplied is a compare-and-swap guard for rollbacks: the revert is
// rejected unless the currently applied version still equals it, so a
// self-revert racing a server-side rollback cannot downgrade a fresher
// configuration that landed in between.
type applyConfigArg struct {
	blob          []byte
	allowRollback bool
	expectApplied uint64
}

// applyResult reports the applied version and phase timings back across
// the boundary (both are public information).
type applyResult struct {
	version uint64
	timing  SwapTiming
}

// forwardKeyArg carries one TLS session key from the management interface.
type forwardKeyArg struct {
	flow packet.Flow
	key  tlstap.SessionKey
}

// registerEcalls installs the full EndBox enclave interface onto e. The
// returned state pointer is captured only by the handlers — mirroring
// memory that exists only inside the enclave.
func registerEcalls(e *sgx.Enclave, caPub ed25519.PublicKey, alert func(click.Alert), fault func(click.ElementFault)) error {
	st := &enclaveState{
		caPub:   caPub,
		keys:    tlstap.NewKeyTable(),
		ruleSet: make(map[string]string),
	}

	reg := func(name string, fn sgx.EcallFunc) error { return e.RegisterEcall(name, fn) }

	if err := reg(ecallKeygen, func(ctx *sgx.Ctx, _ any) (any, error) {
		signPub, signPriv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("core: keygen: %w", err)
		}
		boxPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("core: keygen: %w", err)
		}
		st.signPriv = signPriv
		st.boxPriv = boxPriv
		keys := attest.EnclaveKeys{SignPub: signPub, BoxPub: boxPriv.PublicKey().Bytes()}
		return ctx.CreateReport(keys.UserData()), nil
	}); err != nil {
		return err
	}

	if err := reg(ecallProvision, func(ctx *sgx.Ctx, arg any) (any, error) {
		a, ok := arg.(provisionArg)
		if !ok || a.prov == nil || a.prov.Certificate == nil {
			return nil, fmt.Errorf("core: bad provision argument")
		}
		// Verify the certificate chains to the CA key baked into the
		// image before accepting it (paper Fig. 4 step 7).
		if err := a.prov.Certificate.Verify(st.caPub, ctx.TrustedTime()); err != nil {
			return nil, fmt.Errorf("core: provisioned certificate: %w", err)
		}
		shared, err := attest.BoxOpen(st.boxPriv, a.prov.EphemeralPub, a.prov.SealedKey)
		if err != nil {
			return nil, err
		}
		// The per-measurement configuration key rides the same provision
		// under its own box: older CAs omit it, and the client then simply
		// cannot open build-sealed updates (fail-safe: it keeps LKG).
		var buildKey []byte
		if len(a.prov.BuildKeyPub) > 0 {
			buildKey, err = attest.BoxOpen(st.boxPriv, a.prov.BuildKeyPub, a.prov.SealedBuildKey)
			if err != nil {
				return nil, err
			}
		}
		st.cert = a.prov.Certificate
		st.shared = shared
		st.buildKey = buildKey
		// Seal the identity so attestation happens only once per machine.
		certRaw, err := st.cert.Marshal()
		if err != nil {
			return nil, err
		}
		blob, err := marshalIdentity(sealedIdentity{
			SignPriv: st.signPriv,
			BoxPriv:  st.boxPriv.Bytes(),
			Cert:     certRaw,
			Shared:   shared,
			BuildKey: buildKey,
		})
		if err != nil {
			return nil, err
		}
		return ctx.Seal(blob, []byte("endbox-identity"))
	}); err != nil {
		return err
	}

	if err := reg(ecallRestore, func(ctx *sgx.Ctx, arg any) (any, error) {
		sealed, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad restore argument")
		}
		blob, err := ctx.Unseal(sealed, []byte("endbox-identity"))
		if err != nil {
			return nil, err
		}
		id, err := unmarshalIdentity(blob)
		if err != nil {
			return nil, err
		}
		boxPriv, err := ecdh.X25519().NewPrivateKey(id.BoxPriv)
		if err != nil {
			return nil, fmt.Errorf("core: restore box key: %w", err)
		}
		cert, err := attest.ParseCertificate(id.Cert)
		if err != nil {
			return nil, err
		}
		if err := cert.Verify(st.caPub, ctx.TrustedTime()); err != nil {
			return nil, fmt.Errorf("core: restored certificate: %w", err)
		}
		st.signPriv = ed25519.PrivateKey(id.SignPriv)
		st.boxPriv = boxPriv
		st.cert = cert
		st.shared = id.Shared
		st.buildKey = id.BuildKey
		return nil, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallHsSign, func(_ *sgx.Ctx, arg any) (any, error) {
		transcript, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad transcript argument")
		}
		if st.signPriv == nil {
			return nil, ErrNotProvisioned
		}
		return ed25519.Sign(st.signPriv, transcript), nil
	}); err != nil {
		return err
	}

	if err := reg(ecallHsFinish, func(_ *sgx.Ctx, arg any) (any, error) {
		a, ok := arg.(hsFinishArg)
		if !ok {
			return nil, fmt.Errorf("core: bad handshake-finish argument")
		}
		// Client-side downgrade check happens here, inside the enclave
		// (paper §V-A "Downgrade attacks").
		master, err := vpn.FinishClient(a.st, a.sh, st.caPub, st.minTLS)
		if err != nil {
			return nil, err
		}
		sess, err := wire.NewSession(master, st.mode, true)
		if err != nil {
			return nil, err
		}
		st.session = sess
		st.master = master
		return nil, nil
	}); err != nil {
		return err
	}

	// Export the current session secret sealed to this enclave, so a
	// restarted client can resume without re-attesting (the resume
	// analogue of the sealed identity).
	if err := reg(ecallExportResume, func(ctx *sgx.Ctx, _ any) (any, error) {
		if st.master == nil {
			return nil, ErrNoSession
		}
		blob, err := json.Marshal(sealedResume{Master: st.master})
		if err != nil {
			return nil, fmt.Errorf("core: marshal resume secret: %w", err)
		}
		return ctx.Seal(blob, []byte("endbox-resume"))
	}); err != nil {
		return err
	}

	// Finish a fast resume: verify the server's reply and derive the
	// rotated master inside the enclave — the previous master (sealed or
	// in-memory) never crosses the boundary in the clear, mirroring
	// ecallHsFinish. The client-side downgrade floor was already pinned
	// at the original handshake; resume cannot renegotiate it.
	if err := reg(ecallResumeFinish, func(ctx *sgx.Ctx, arg any) (any, error) {
		a, ok := arg.(resumeFinishArg)
		if !ok || a.req == nil || a.reply == nil {
			return nil, fmt.Errorf("core: bad resume-finish argument")
		}
		prev := st.master
		if len(a.sealed) > 0 {
			blob, err := ctx.Unseal(a.sealed, []byte("endbox-resume"))
			if err != nil {
				return nil, err
			}
			var sr sealedResume
			if err := json.Unmarshal(blob, &sr); err != nil {
				return nil, fmt.Errorf("core: unmarshal resume secret: %w", err)
			}
			prev = sr.Master
		}
		if prev == nil {
			return nil, ErrNoSession
		}
		master, err := vpn.FinishResume(a.req, a.reply, st.caPub, prev)
		if err != nil {
			return nil, err
		}
		sess, err := wire.NewSession(master, st.mode, true)
		if err != nil {
			return nil, err
		}
		st.session = sess
		st.master = master
		return nil, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallInitClick, func(ctx *sgx.Ctx, arg any) (any, error) {
		a, ok := arg.(initClickArg)
		if !ok {
			return nil, fmt.Errorf("core: bad click-init argument")
		}
		st.mode = a.mode
		st.minTLS = a.minTLS
		st.flagC2C = a.flagC2C
		st.applied = a.version
		for name, text := range a.ruleSets {
			st.ruleSet[name] = text
		}
		inst, err := click.NewInstance(a.clickConfig, nil, &click.Context{
			TrustedTime: func() time.Time { return ctx.TrustedTime() },
			RuleSet: func(name string) (string, error) {
				if text, ok := st.ruleSet[name]; ok {
					return text, nil
				}
				// Scaled provider names regenerate deterministically
				// inside the enclave instead of riding the update blob.
				if text, ok, err := idps.ResolveGenerated(name); ok {
					return text, err
				}
				return "", fmt.Errorf("core: unknown rule set %q", name)
			},
			Keys:  st.keys,
			Alert: alert,
			// Fault containment: a panicking element is recovered at the
			// router boundary instead of unwinding out of the ecall, and
			// containment events surface through the fault hook (queued
			// outside the enclave exactly like alerts).
			Failure: a.failure,
			Fault:   fault,
			// Flow expiry reads the cheap untrusted clock: a skewed clock
			// can only age flows out early or late, never corrupt state.
			// The hash seed is drawn per enclave so an attacker cannot
			// precompute 5-tuples that collide in the flow table.
			Flows: flow.NewContext(flow.Config{
				Capacity: a.flowCapacity,
				TTL:      a.flowTTL,
				Seed:     flow.RandomSeed(),
			}),
			// No DeviceSetup: OpenVPN owns the tunnel device, the reason
			// EndBox hot-swaps faster than vanilla Click (Table II).
		})
		if err != nil {
			return nil, err
		}
		st.router = inst
		return nil, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallProcessOut, func(_ *sgx.Ctx, arg any) (any, error) {
		payload, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad outbound payload")
		}
		return st.sealOutbound(payload)
	}); err != nil {
		return err
	}

	// Batched egress: one boundary crossing seals a whole burst of packets
	// packed into a single length-prefixed slab — one contiguous buffer in
	// each direction, so the boundary cost AND the per-packet allocations
	// are both amortised to (almost) zero (the transition-amortisation the
	// paper's single-ecall design enables, taken one step further for
	// send-heavy workloads).
	if err := reg(ecallProcessOutBatch, func(_ *sgx.Ctx, arg any) (any, error) {
		slab, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad outbound batch")
		}
		n, err := vpn.SlabCount(slab)
		if err != nil {
			return nil, err
		}
		res := wire.GetBuffer(vpn.ResultSlabCap(len(slab), n))[:0]
		r := vpn.NewSlabReader(slab)
		for {
			payload, ok := r.Next()
			if !ok {
				break
			}
			res = st.appendSealedOutbound(res, payload)
		}
		return res, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallProcessIn, func(_ *sgx.Ctx, arg any) (any, error) {
		frame, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad inbound frame")
		}
		return st.openInbound(frame, false)
	}); err != nil {
		return err
	}

	// Batched ingress: one boundary crossing opens a whole received burst
	// packed into a slab — the ingress mirror of ecallProcessOutBatch.
	// Frames are decrypted in place inside the request slab; opened
	// payloads are packed into the pooled result slab.
	if err := reg(ecallProcessInBatch, func(_ *sgx.Ctx, arg any) (any, error) {
		slab, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad inbound batch")
		}
		n, err := vpn.SlabCount(slab)
		if err != nil {
			return nil, err
		}
		res := wire.GetBuffer(vpn.ResultSlabCap(len(slab), n))[:0]
		r := vpn.NewSlabReader(slab)
		for {
			frame, ok := r.Next()
			if !ok {
				break
			}
			payload, err := st.openInbound(frame, true)
			if err != nil {
				res = vpn.AppendResultErr(res, err)
				continue
			}
			res = vpn.AppendResultOK(res, payload)
		}
		return res, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallControlMAC, func(_ *sgx.Ctx, arg any) (any, error) {
		body, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad control body")
		}
		if st.signPriv == nil {
			return nil, ErrNotProvisioned
		}
		return ed25519.Sign(st.signPriv, append([]byte("endbox-control:"), body...)), nil
	}); err != nil {
		return err
	}

	if err := reg(ecallControlVrfy, func(_ *sgx.Ctx, arg any) (any, error) {
		pair, ok := arg.([2][]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad control verify argument")
		}
		if st.cert == nil {
			return nil, ErrNotProvisioned
		}
		okSig := ed25519.Verify(st.cert.Keys.SignPub, append([]byte("endbox-control:"), pair[0]...), pair[1])
		return okSig, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallApplyConfig, func(ctx *sgx.Ctx, arg any) (any, error) {
		a, ok := arg.(applyConfigArg)
		if !ok {
			return nil, fmt.Errorf("core: bad apply-config argument")
		}
		t0 := time.Now()
		// OpenFor enforces measurement sealing with this enclave's own
		// attested identity: an update sealed to another build fails here
		// with ErrSealedToOtherBuild — before the version check, so the
		// applied version (and LKG) are untouched.
		u, err := config.OpenFor(a.blob, st.caPub, st.shared, ctx.Measurement().String(), st.buildKey)
		if err != nil {
			return nil, err
		}
		decryptDur := time.Since(t0)
		// Replay protection: versions increase monotonically (paper
		// §III-E: "To prevent clients from replaying old configuration
		// files, the version number ... is incorporated inside the update
		// itself"). The one sanctioned exception is an explicit local
		// rollback to a previously applied (CA-signed) version, used by
		// the self-revert path when a fresh configuration trips
		// quarantine.
		if u.Version <= st.applied && !a.allowRollback {
			return nil, fmt.Errorf("%w: %d <= %d", ErrStaleUpdate, u.Version, st.applied)
		}
		if a.allowRollback && st.applied != a.expectApplied {
			return nil, fmt.Errorf("%w: rollback expected applied %d, have %d",
				ErrStaleUpdate, a.expectApplied, st.applied)
		}
		if st.router == nil {
			return nil, ErrNoSession
		}
		for name, text := range u.RuleSets {
			st.ruleSet[name] = text
		}
		swapDur, err := st.router.Swap(u.ClickConfig)
		if err != nil {
			return nil, err
		}
		st.applied = u.Version
		st.lastSwap = SwapTiming{Decrypt: decryptDur, Hotswap: swapDur}
		return applyResult{version: u.Version, timing: st.lastSwap}, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallFlowStats, func(_ *sgx.Ctx, _ any) (any, error) {
		if st.router == nil {
			return nil, ErrNoSession
		}
		return st.router.FlowStats(), nil
	}); err != nil {
		return err
	}

	if err := reg(ecallPipelineStats, func(_ *sgx.Ctx, _ any) (any, error) {
		if st.router == nil {
			return nil, ErrNoSession
		}
		// The snapshot is freshly allocated counter values — no enclave
		// state crosses the boundary.
		return st.router.Stats(), nil
	}); err != nil {
		return err
	}

	// Health summary for canary rollouts: the applied version, the last
	// swap's timing, and the pipeline's cumulative fault counters. All
	// public information (counters, not packet contents).
	if err := reg(ecallHealthReport, func(_ *sgx.Ctx, _ any) (any, error) {
		if st.router == nil {
			return nil, ErrNoSession
		}
		h := vpn.HealthReport{
			Version:   st.applied,
			SwapNanos: st.lastSwap.Hotswap.Nanoseconds(),
		}
		for _, s := range st.router.Stats() {
			h.Panics += s.Panics
			h.Drops += s.Drops
			if s.Quarantined {
				h.Quarantined++
				h.Fault = s.Name
			}
		}
		return h, nil
	}); err != nil {
		return err
	}

	if err := reg(ecallGetCert, func(_ *sgx.Ctx, _ any) (any, error) {
		if st.cert == nil {
			return nil, ErrNotProvisioned
		}
		// The certificate is public; exporting it is safe.
		return st.cert.Marshal()
	}); err != nil {
		return err
	}

	if err := reg(ecallForwardKey, func(_ *sgx.Ctx, arg any) (any, error) {
		a, ok := arg.(forwardKeyArg)
		if !ok {
			return nil, fmt.Errorf("core: bad key-forward argument")
		}
		st.keys.Put(a.flow, a.key)
		return nil, nil
	}); err != nil {
		return err
	}

	// Naive per-stage ecalls for the enclave-transition ablation
	// (paper §IV-A / §V-G(1)): Click, encryption and MAC each cross the
	// boundary separately, the design EndBox's batching replaced.
	if err := reg(ecallNaiveClick, func(_ *sgx.Ctx, arg any) (any, error) {
		payload, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad payload")
		}
		out, err := st.clickOutbound(payload)
		if err != nil {
			return nil, err
		}
		// Rewritten packets land in the enclave's marshal scratch, which
		// the next ecall reuses — and the naive plane makes two more
		// ecalls (crypt, MAC) with this result while other goroutines'
		// ecalls may interleave. Copy out; this is the deliberately
		// unoptimised ablation path, so the allocation is the point.
		return append([]byte(nil), out...), nil
	}); err != nil {
		return err
	}
	if err := reg(ecallNaiveCrypt, func(_ *sgx.Ctx, arg any) (any, error) {
		payload, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad payload")
		}
		// The split design encrypts here and MACs in a third crossing; the
		// wire codec fuses both, so the MAC call below re-enters with the
		// sealed frame.
		if st.session == nil {
			return nil, ErrNoSession
		}
		return payload, nil
	}); err != nil {
		return err
	}
	if err := reg(ecallNaiveMAC, func(_ *sgx.Ctx, arg any) (any, error) {
		payload, ok := arg.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: bad payload")
		}
		if st.session == nil {
			return nil, ErrNoSession
		}
		return st.session.Seal(payload)
	}); err != nil {
		return err
	}

	return nil
}

// sealOutbound is the single-ecall egress path (paper Fig. 3 steps 1-4):
// Click processing, client-to-client flagging, then encrypt+MAC into a
// pooled frame buffer. Ownership of the frame transfers to the caller,
// which releases it with wire.PutBuffer after transmission.
func (st *enclaveState) sealOutbound(payload []byte) ([]byte, error) {
	if st.session == nil {
		return nil, ErrNoSession
	}
	if len(payload) > 0 && payload[0] == vpn.FrameData {
		out, err := st.clickOutbound(payload)
		if err != nil {
			return nil, err
		}
		payload = out
	}
	frame := wire.GetBuffer(st.session.SealedLen(len(payload)))
	sealed, err := st.session.SealTo(payload, frame)
	if err != nil {
		wire.PutBuffer(frame)
		return nil, err
	}
	return sealed, nil
}

// appendSealedOutbound is the slab egress path: Click + seal one
// encapsulated payload, writing the sealed frame directly into the result
// slab (or the error entry that excluded the packet).
func (st *enclaveState) appendSealedOutbound(res, payload []byte) []byte {
	if st.session == nil {
		return vpn.AppendResultErr(res, ErrNoSession)
	}
	if len(payload) > 0 && payload[0] == vpn.FrameData {
		out, err := st.clickOutbound(payload)
		if err != nil {
			return vpn.AppendResultErr(res, err)
		}
		payload = out
	}
	mark := len(res)
	res, window := vpn.AppendResultReserve(res, st.session.SealedLen(len(payload)))
	if _, err := st.session.SealTo(payload, window); err != nil {
		return vpn.AppendResultErr(res[:mark], err)
	}
	return res
}

// clickOutbound runs the middlebox over a data payload, returning the
// possibly rewritten payload or ErrDropped. Unmodified packets keep their
// original serialisation (no re-marshal on the hot path); rewritten ones
// are serialised into the enclave's marshal scratch, which stays valid
// only until the next ecall — both egress callers consume it before
// returning (SealTo copies it into the outgoing frame).
func (st *enclaveState) clickOutbound(payload []byte) ([]byte, error) {
	if st.router == nil {
		return nil, ErrNoSession
	}
	ip := packet.AcquireIPv4()
	defer ip.Release()
	if err := ip.Parse(payload[1:]); err != nil {
		return nil, fmt.Errorf("core: outbound packet: %w", err)
	}
	res := st.router.Process(ip)
	if !res.Accepted {
		return nil, fmt.Errorf("%w (by %s)", vpn.ErrDropped, res.DroppedBy)
	}
	if st.flagC2C && res.Packet.IP.TOS != packet.ProcessedTOS {
		res.Packet.IP.TOS = packet.ProcessedTOS
		res.Packet.MarkModified()
	}
	if !res.Packet.Modified() {
		return payload, nil
	}
	return st.marshalPayload(res.Packet.IP), nil
}

// marshalPayload re-serialises a rewritten packet into the enclave's
// reusable marshal scratch (ecalls are serialised, so one scratch per
// enclave suffices).
func (st *enclaveState) marshalPayload(ip *packet.IPv4) []byte {
	need := 1 + ip.Len()
	if cap(st.marshalBuf) < need {
		st.marshalBuf = make([]byte, need, need+512)
	}
	out := st.marshalBuf[:need]
	out[0] = vpn.FrameData
	ip.MarshalTo(out[1:])
	return out
}

// openInbound is the single-ecall ingress path: verify+decrypt in place
// inside the caller's frame buffer, then run Click unless the packet
// carries a peer's 0xeb flag (paper §IV-A "Client-to-client
// communication"). The returned payload aliases frame except when the
// middlebox rewrote the packet; inSlab selects where such rewrites are
// serialised — the enclave's marshal scratch when the caller copies the
// payload out before its next ecall (the slab batch handler), or a fresh
// buffer when the payload outlives the call (the single-frame ecall,
// whose caller hands it straight to the application).
func (st *enclaveState) openInbound(frame []byte, inSlab bool) ([]byte, error) {
	if st.session == nil {
		return nil, ErrNoSession
	}
	payload, err := st.session.OpenInPlace(frame)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 || payload[0] != vpn.FrameData {
		return payload, nil
	}
	ip := packet.AcquireIPv4()
	defer ip.Release()
	if err := ip.Parse(payload[1:]); err != nil {
		return nil, fmt.Errorf("core: inbound packet: %w", err)
	}
	if st.flagC2C && ip.TOS == packet.ProcessedTOS {
		// Already processed by the sending EndBox client; the server
		// guarantees external traffic cannot carry this flag.
		return payload, nil
	}
	res := st.router.Process(ip)
	if !res.Accepted {
		return nil, fmt.Errorf("%w (by %s)", vpn.ErrDropped, res.DroppedBy)
	}
	if !res.Packet.Modified() {
		return payload, nil
	}
	if inSlab {
		return st.marshalPayload(res.Packet.IP), nil
	}
	// Single-frame path: the payload crosses the boundary and outlives
	// this ecall, so it cannot use the marshal scratch. The buffer is
	// never explicitly released (the GC reclaims it; rewrites are rare).
	out := wire.GetBuffer(1 + res.Packet.IP.Len())
	out[0] = vpn.FrameData
	res.Packet.IP.MarshalTo(out[1:])
	return out, nil
}
