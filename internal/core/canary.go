package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"endbox/internal/config"
	"endbox/internal/vpn"
)

// CanaryRollout stages a configuration to a fraction of the selected
// clients first, watches their health over a deadline, and either widens
// the rollout to the whole fleet or automatically rolls the cohort back
// to the last-known-good configuration. It embeds Rollout: the Target
// selector picks the candidate set (zero = every connected client), and
// the cohort is the first Fraction of it.
type CanaryRollout struct {
	Rollout
	// Fraction of the selected clients staged as the canary cohort
	// (0 < Fraction <= 1; 0 selects the default 0.25). The cohort is
	// never empty when the selector matches anyone: at least one client
	// canaries.
	Fraction float64
	// Deadline bounds the observation window. Every cohort member must
	// acknowledge the new version within it, and no member may report a
	// fault — only then is the version promoted fleet-wide. A nack or an
	// unhealthy report rolls back immediately, without waiting out the
	// window. 0 selects the default 30s.
	Deadline time.Duration
}

// DefaultCanaryFraction and DefaultCanaryDeadline are the zero-value
// substitutions for CanaryRollout.
const (
	DefaultCanaryFraction = 0.25
	DefaultCanaryDeadline = 30 * time.Second
)

// CanaryResult reports what a canary rollout did.
type CanaryResult struct {
	// Version is the canary version that was staged.
	Version uint64
	// Canary lists the cohort the version was staged to, sorted.
	Canary []string
	// Promoted reports that every cohort member acknowledged the version
	// healthily and it was announced fleet-wide.
	Promoted bool
	// RolledBack reports that the cohort was rolled back to the
	// last-known-good configuration, republished as RollbackVersion.
	RolledBack bool
	// RollbackVersion is the fresh version carrying the last-known-good
	// content (0 unless RolledBack).
	RollbackVersion uint64
	// Reason explains a rollback (the triggering nack or fault, or the
	// missed deadline).
	Reason string
	// Health holds the last health report received from each cohort
	// member during the watch (acks and fault notifications).
	Health map[string]vpn.HealthReport
	// Nacks holds the typed rejections received from cohort members.
	Nacks map[string]vpn.Nack
}

// canaryWatch collects the cohort's verdicts on one staged version. The
// VPN server's sealed-frame hooks feed it from whatever goroutine carried
// the frame; RolloutCanary blocks on failed / the deadline.
type canaryWatch struct {
	version uint64
	cohort  map[string]bool

	mu     sync.Mutex
	health map[string]vpn.HealthReport
	nacks  map[string]vpn.Nack
	acked  map[string]bool
	reason string

	once   sync.Once
	failed chan struct{}
}

func newCanaryWatch(version uint64, cohort []string) *canaryWatch {
	w := &canaryWatch{
		version: version,
		cohort:  make(map[string]bool, len(cohort)),
		health:  make(map[string]vpn.HealthReport, len(cohort)),
		nacks:   make(map[string]vpn.Nack),
		acked:   make(map[string]bool, len(cohort)),
		failed:  make(chan struct{}),
	}
	for _, id := range cohort {
		w.cohort[id] = true
	}
	return w
}

func (w *canaryWatch) onHealth(clientID string, h vpn.HealthReport) {
	w.mu.Lock()
	if !w.cohort[clientID] || h.Version != w.version {
		w.mu.Unlock()
		return
	}
	w.health[clientID] = h
	if h.OK {
		w.acked[clientID] = true
	}
	w.mu.Unlock()
	if !h.OK {
		w.fail(fmt.Sprintf("client %s unhealthy on version %d (element %s quarantined)",
			clientID, h.Version, h.Fault))
	}
}

func (w *canaryWatch) onNack(clientID string, n vpn.Nack) {
	w.mu.Lock()
	if !w.cohort[clientID] || n.Version != w.version {
		w.mu.Unlock()
		return
	}
	w.nacks[clientID] = n
	w.mu.Unlock()
	w.fail(fmt.Sprintf("client %s rejected version %d: %s", clientID, n.Version, n.Reason))
}

func (w *canaryWatch) fail(reason string) {
	w.once.Do(func() {
		w.mu.Lock()
		w.reason = reason
		w.mu.Unlock()
		close(w.failed)
	})
}

// verdict snapshots the watch for the result. missing lists cohort
// members that never acknowledged healthily.
func (w *canaryWatch) verdict() (health map[string]vpn.HealthReport, nacks map[string]vpn.Nack, missing []string, reason string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	health = make(map[string]vpn.HealthReport, len(w.health))
	for id, h := range w.health {
		health[id] = h
	}
	nacks = make(map[string]vpn.Nack, len(w.nacks))
	for id, n := range w.nacks {
		nacks[id] = n
	}
	for id := range w.cohort {
		if !w.acked[id] {
			missing = append(missing, id)
		}
	}
	return health, nacks, missing, w.reason
}

// RolloutCanary publishes a configuration to a canary cohort, gates it on
// the cohort's health, and self-heals on failure:
//
//  1. The Target selector picks the candidate set; the first Fraction of
//     it (sorted by ID — deterministic) becomes the cohort. The update is
//     published and announced to exactly the cohort (Server.PublishTargeted);
//     the rest of the fleet never sees the canary version.
//  2. Cohort clients fetch, apply, and acknowledge with a sealed health
//     report carrying the in-enclave swap timing. A client that cannot
//     apply pushes a typed nack; a client whose fresh pipeline trips
//     quarantine reports unhealthy (and self-reverts locally).
//  3. All cohort members healthy by the deadline: the version is promoted
//     fleet-wide (Server.AnnounceGlobal). Any nack or fault — or a missed
//     deadline — rolls the cohort back automatically: the last-known-good
//     configuration (from the publication journal) is republished under a
//     fresh version targeted at the cohort, which converges back onto
//     known-good content.
//
// The call blocks for at most the deadline (it returns early on failure).
// One canary runs at a time; a concurrent call errors. The context bounds
// the publication and announcement fan-outs; cancelling it mid-watch rolls
// the cohort back rather than stranding it on an unjudged version.
func (d *Deployment) RolloutCanary(ctx context.Context, r CanaryRollout) (CanaryResult, error) {
	if err := ctx.Err(); err != nil {
		return CanaryResult{}, err
	}
	if r.Version == 0 {
		return CanaryResult{}, fmt.Errorf("core: canary rollout needs a version")
	}
	if r.Fraction == 0 {
		r.Fraction = DefaultCanaryFraction
	}
	if r.Fraction < 0 || r.Fraction > 1 {
		return CanaryResult{}, fmt.Errorf("core: canary fraction %v outside (0, 1]", r.Fraction)
	}
	if r.Deadline == 0 {
		r.Deadline = DefaultCanaryDeadline
	}
	cfg, err := compileConfig(r.Pipeline, r.ClickConfig, mergedRuleSets(r.RuleSets))
	if err != nil {
		return CanaryResult{}, err
	}
	if cfg == "" {
		return CanaryResult{}, fmt.Errorf("%w: canary rollout selects no middlebox function (set Pipeline or ClickConfig)", ErrBadPipeline)
	}

	// The rollback point must exist before anything is staged: a canary
	// without a last-known-good configuration to return to is a gamble,
	// not a rollout.
	lkgVersion := d.Server.LatestGlobal()
	lkg, ok := d.Server.JournalEntry(lkgVersion)
	if !ok {
		return CanaryResult{}, fmt.Errorf("core: no last-known-good configuration to roll back to (publish a global version first)")
	}

	ids, seqs := d.selectClients(r.Target)
	if len(ids) == 0 {
		return CanaryResult{}, fmt.Errorf("core: canary selector matches no connected clients")
	}
	n := int(math.Ceil(r.Fraction * float64(len(ids))))
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	cohort := ids[:n]

	w := newCanaryWatch(r.Version, cohort)
	d.watchMu.Lock()
	if d.watch != nil {
		d.watchMu.Unlock()
		return CanaryResult{}, fmt.Errorf("core: a canary rollout is already in progress")
	}
	d.watch = w
	d.watchMu.Unlock()
	defer func() {
		d.watchMu.Lock()
		d.watch = nil
		d.watchMu.Unlock()
	}()

	u := &config.Update{
		Version:      r.Version,
		GraceSeconds: r.GraceSeconds,
		ClickConfig:  cfg,
		RuleSets:     r.RuleSets,
	}
	sealTo, sealed := d.sealTarget(r.Target)
	if sealed {
		err = d.Server.PublishTargetedSealed(ctx, u, cohort, sealTo)
	} else {
		err = d.Server.PublishTargeted(ctx, u, cohort)
	}
	if err != nil {
		return CanaryResult{}, err
	}
	// Same churn race as Rollout: an ID that turned over between the
	// selector snapshot and the announcement must not keep the target.
	d.mu.Lock()
	for _, id := range cohort {
		if d.joinSeq[id] != seqs[id] {
			d.Server.VPN().Policy().ForgetClient(id)
		}
	}
	d.mu.Unlock()

	res := CanaryResult{Version: r.Version, Canary: cohort}

	// The announcement fan-out is synchronous on the in-process transport:
	// acks, nacks, and early quarantine trips may already be in the watch.
	// Block for the rest of the window — faults from live traffic arrive
	// while we wait.
	timer := time.NewTimer(r.Deadline)
	defer timer.Stop()
	var reason string
	select {
	case <-w.failed:
		_, _, _, reason = w.verdict()
	case <-ctx.Done():
		reason = fmt.Sprintf("canary watch cancelled: %v", ctx.Err())
	case <-timer.C:
		health, nacks, missing, _ := w.verdict()
		res.Health, res.Nacks = health, nacks
		if len(missing) == 0 {
			// Every cohort member acknowledged healthily and nothing
			// faulted during the window: widen fleet-wide.
			if err := d.Server.AnnounceGlobal(ctx, r.Version, r.GracePeriod()); err != nil {
				return res, err
			}
			res.Promoted = true
			return res, nil
		}
		reason = fmt.Sprintf("clients %v missed the canary deadline", missing)
	}

	// Roll back: republish the last-known-good content under a fresh,
	// higher version targeted at the cohort. Clients that self-reverted
	// are already running the LKG content and simply converge onto its
	// new version number; clients still on the canary version are pulled
	// off it. The canary version itself is never announced again.
	res.Reason = reason
	res.RolledBack = true
	res.RollbackVersion = r.Version + 1
	rb := &config.Update{
		Version:      res.RollbackVersion,
		GraceSeconds: r.GraceSeconds,
		ClickConfig:  lkg.ClickConfig,
		RuleSets:     lkg.RuleSets,
	}
	// The rollback must go out even when the caller's context is done —
	// use a detached context so cancellation cannot strand the cohort. It
	// is sealed exactly like the staging publish: the cohort is all one
	// build, and the rollback content must stay as leak-free as the canary.
	if sealed {
		err = d.Server.PublishTargetedSealed(context.WithoutCancel(ctx), rb, cohort, sealTo)
	} else {
		err = d.Server.PublishTargeted(context.WithoutCancel(ctx), rb, cohort)
	}
	if err != nil {
		return res, fmt.Errorf("core: canary rollback failed: %w (cohort may be stranded on version %d)", err, r.Version)
	}
	health, nacks, _, _ := w.verdict()
	res.Health, res.Nacks = health, nacks
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}
